let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let q = QCheck_alcotest.to_alcotest

let test_construction_girth () =
  let rng = Random.State.make [| 1 |] in
  let c =
    Lowerbound.Construction.build rng ~n:400 ~avg_degree:8.0 ~girth_factor:1.2
  in
  (match c.Lowerbound.Construction.girth with
  | Some girth ->
      check cb "girth at least target" true
        (girth >= c.Lowerbound.Construction.girth_target)
  | None -> ());
  check cb "edges were removed" true (c.Lowerbound.Construction.removed > 0)

let test_construction_far () =
  let rng = Random.State.make [| 2 |] in
  let c =
    Lowerbound.Construction.build rng ~n:512 ~avg_degree:9.0 ~girth_factor:1.0
  in
  check cb "certified constant-far" true
    (c.Lowerbound.Construction.euler_far >= 0.05)

let test_blind_radius () =
  let rng = Random.State.make [| 3 |] in
  let c =
    Lowerbound.Construction.build rng ~n:300 ~avg_degree:6.0 ~girth_factor:1.5
  in
  let r = Lowerbound.Construction.indistinguishability_radius c in
  (match c.Lowerbound.Construction.girth with
  | Some girth -> check ci "radius from girth" ((girth - 1) / 2) r
  | None -> ());
  check cb "radius positive" true (r >= 1)

let test_tree_views () =
  (* Within the blind radius, every node's view really is cycle-free. *)
  let rng = Random.State.make [| 4 |] in
  let c =
    Lowerbound.Construction.build rng ~n:200 ~avg_degree:5.0 ~girth_factor:1.5
  in
  let g = c.Lowerbound.Construction.graph in
  let r = Lowerbound.Construction.indistinguishability_radius c in
  check cb "no cycle within radius ball" true
    (Graphlib.Girth.girth_upto g (2 * r) = None)

let test_girth_grows_qcheck =
  QCheck.Test.make
    ~name:"girth target grows with n at fixed degree" ~count:5
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let small =
        Lowerbound.Construction.build rng ~n:64 ~avg_degree:5.0
          ~girth_factor:1.5
      in
      let big =
        Lowerbound.Construction.build rng ~n:2048 ~avg_degree:5.0
          ~girth_factor:1.5
      in
      big.Lowerbound.Construction.girth_target
      >= small.Lowerbound.Construction.girth_target)

let () =
  Alcotest.run "lowerbound"
    [
      ( "construction",
        [
          Alcotest.test_case "girth" `Quick test_construction_girth;
          Alcotest.test_case "farness" `Quick test_construction_far;
          Alcotest.test_case "blind radius" `Quick test_blind_radius;
          Alcotest.test_case "tree views" `Quick test_tree_views;
          q test_girth_grows_qcheck;
        ] );
    ]
