open Graphlib

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let q = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Rotation systems                                                    *)
(* ------------------------------------------------------------------ *)

let test_darts () =
  let g = Graph.make ~n:3 [ (0, 1); (1, 2) ] in
  let d = Planarity.Rotation.dart_of g ~src:1 0 in
  check ci "src" 1 (Planarity.Rotation.src g d);
  check ci "dst" 0 (Planarity.Rotation.dst g d);
  check ci "edge of dart" 0 (Planarity.Rotation.edge_of_dart d);
  check ci "rev src" 0 (Planarity.Rotation.src g (Planarity.Rotation.rev d))

let test_face_count_cycle () =
  let g = Generators.cycle 5 in
  let rot = Planarity.Rotation.of_adjacency_order g in
  check ci "cycle faces" 2 (Planarity.Rotation.count_faces g rot);
  check cb "planar" true (Planarity.Rotation.is_planar_embedding g rot)

let test_face_count_tree () =
  let g = Generators.random_tree (Random.State.make [| 1 |]) 20 in
  let rot = Planarity.Rotation.of_adjacency_order g in
  check ci "tree has one face" 1 (Planarity.Rotation.count_faces g rot);
  check cb "planar" true (Planarity.Rotation.is_planar_embedding g rot)

let test_k4_adjacency_rotation_toroidal () =
  (* K4's adjacency-order rotation is a genus-1 (toroidal) embedding with
     two faces — a nice witness that [of_adjacency_order] is arbitrary. *)
  let g = Generators.complete 4 in
  let rot = Planarity.Rotation.of_adjacency_order g in
  check ci "genus" 1 (Planarity.Rotation.genus g rot);
  check ci "faces" 2 (Planarity.Rotation.count_faces g rot);
  (* ... while a planar embedding of K4 exists and has 4 faces. *)
  match Planarity.Lr.embed g with
  | Some planar -> check ci "planar faces" 4 (Planarity.Rotation.count_faces g planar)
  | None -> Alcotest.fail "K4 is planar" 

let test_k5_adjacency_rotation_nonplanar () =
  let g = Generators.complete 5 in
  let rot = Planarity.Rotation.of_adjacency_order g in
  check cb "K5 cannot embed" false (Planarity.Rotation.is_planar_embedding g rot);
  check cb "positive genus" true (Planarity.Rotation.genus g rot > 0)

let test_rotation_validation () =
  let g = Generators.cycle 3 in
  (try
     ignore (Planarity.Rotation.make g [| [| 0 |]; [| 1 |]; [| 3 |] |]);
     Alcotest.fail "expected rejection"
   with Invalid_argument _ -> ());
  try
    ignore (Planarity.Rotation.make g [| [| 0; 0 |]; [||]; [||] |]);
    Alcotest.fail "expected rejection"
  with Invalid_argument _ -> ()

let test_faces_partition_darts () =
  let g = Generators.grid 3 3 in
  let rot = Planarity.Rotation.of_adjacency_order g in
  let total =
    List.fold_left
      (fun acc f -> acc + List.length f)
      0
      (Planarity.Rotation.faces g rot)
  in
  check ci "darts partitioned" (2 * Graph.m g) total

let test_isolated_vertices () =
  let g = Graph.make ~n:5 [ (0, 1) ] in
  let rot = Planarity.Rotation.of_adjacency_order g in
  check cb "isolated vertices fine" true
    (Planarity.Rotation.is_planar_embedding g rot)

(* ------------------------------------------------------------------ *)
(* Left-right planarity test                                           *)
(* ------------------------------------------------------------------ *)

let planar_cases =
  [
    ("K4", Generators.complete 4, true);
    ("K5", Generators.complete 5, false);
    ("K5 minus edge", (let g = Generators.complete 5 in fst (Graph.remove_edges g (fun e -> e = 0))), true);
    ("K33", Generators.complete_bipartite 3 3, false);
    ("K33 minus edge", (let g = Generators.complete_bipartite 3 3 in fst (Graph.remove_edges g (fun e -> e = 0))), true);
    ("K24", Generators.complete_bipartite 2 4, true);
    ("petersen", Generators.petersen (), false);
    ("grid 8x8", Generators.grid 8 8, true);
    ("torus 4x4", Generators.torus 4 4, false);
    ("torus 3x3", Generators.torus 3 3, false);
    ("hypercube 3", Generators.hypercube 3, true);
    ("hypercube 4", Generators.hypercube 4, false);
    ("cycle 30", Generators.cycle 30, true);
    ("path 1", Generators.path 1, true);
    ("empty 5", Graph.make ~n:5 [], true);
    ("K6", Generators.complete 6, false);
    ("two K5s", Graph.disjoint_union (Generators.complete 5) (Generators.complete 5), false);
    ("K4 + K4", Graph.disjoint_union (Generators.complete 4) (Generators.complete 4), true);
    ("k5 necklace", Generators.k5_necklace 3, false);
  ]

let test_lr_known () =
  List.iter
    (fun (name, g, expect) ->
      check cb name expect (Planarity.Lr.is_planar g))
    planar_cases

let test_lr_embed_verifies () =
  List.iter
    (fun (name, g, expect) ->
      match Planarity.Lr.embed g with
      | Some rot ->
          check cb (name ^ " planar") true expect;
          check cb
            (name ^ " embedding verifies")
            true
            (Planarity.Rotation.is_planar_embedding g rot)
      | None -> check cb (name ^ " non-planar") false expect)
    planar_cases

let test_embed_or_adjacency () =
  let g = Generators.complete 5 in
  let rot, planar = Planarity.Lr.embed_or_adjacency g in
  check cb "flagged non-planar" false planar;
  check ci "rotation complete" 4 (Array.length (Planarity.Rotation.rotation rot 0))

let test_lr_apollonian_qcheck =
  QCheck.Test.make ~name:"lr accepts apollonian graphs with valid embedding"
    ~count:60
    QCheck.(pair (int_range 3 120) (int_range 0 10000))
    (fun (n, seed) ->
      let g = Generators.apollonian (Random.State.make [| seed |]) n in
      match Planarity.Lr.embed g with
      | Some rot -> Planarity.Rotation.is_planar_embedding g rot
      | None -> false)

let test_lr_vs_dmp_qcheck =
  QCheck.Test.make ~name:"lr agrees with dmp on random graphs" ~count:150
    QCheck.(triple (int_range 4 22) (int_range 0 10000) (int_range 5 45))
    (fun (n, seed, pct) ->
      let rng = Random.State.make [| seed |] in
      let g = Generators.gnp rng n (float_of_int pct /. 100.0) in
      Planarity.Lr.is_planar g = Planarity.Dmp.is_planar g)

let test_lr_monotone_qcheck =
  QCheck.Test.make
    ~name:"removing an edge never destroys planarity (lr monotone)" ~count:60
    QCheck.(pair (int_range 4 18) (int_range 0 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Generators.gnp rng n 0.35 in
      (not (Planarity.Lr.is_planar g)) || Graph.m g = 0
      ||
      let e = Random.State.int rng (Graph.m g) in
      Planarity.Lr.is_planar (fst (Graph.remove_edges g (fun e' -> e' = e))))

let test_lr_relabel_invariant_qcheck =
  QCheck.Test.make ~name:"planarity invariant under relabeling" ~count:60
    QCheck.(pair (int_range 4 25) (int_range 0 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Generators.gnp rng n 0.3 in
      Planarity.Lr.is_planar g
      = Planarity.Lr.is_planar (Generators.relabel rng g))

(* ------------------------------------------------------------------ *)
(* DMP                                                                 *)
(* ------------------------------------------------------------------ *)

let test_dmp_known () =
  List.iter
    (fun (name, g, expect) ->
      check cb name expect (Planarity.Dmp.is_planar g))
    planar_cases

let test_blocks () =
  (* Two triangles sharing a vertex: two blocks. *)
  let g = Graph.make ~n:5 [ (0, 1); (1, 2); (0, 2); (2, 3); (3, 4); (2, 4) ] in
  let bs = Planarity.Dmp.blocks g in
  check ci "two blocks" 2 (List.length bs);
  List.iter (fun b -> check ci "block size" 3 (List.length b)) bs

let test_blocks_bridges () =
  let g = Generators.path 5 in
  check ci "each edge a block" 4 (List.length (Planarity.Dmp.blocks g))

let test_blocks_cover_edges () =
  let rng = Random.State.make [| 3 |] in
  let g = Generators.gnp rng 30 0.1 in
  let covered = List.concat (Planarity.Dmp.blocks g) in
  check ci "blocks partition edges" (Graph.m g)
    (List.length (List.sort_uniq compare covered))

(* ------------------------------------------------------------------ *)
(* Distance to planarity                                               *)
(* ------------------------------------------------------------------ *)

let test_euler_bound () =
  check ci "K5" 1 (Planarity.Distance.euler_lower_bound (Generators.complete 5));
  check ci "K6" 3 (Planarity.Distance.euler_lower_bound (Generators.complete 6));
  check ci "planar is 0" 0
    (Planarity.Distance.euler_lower_bound (Generators.grid 5 5));
  (* triangle-free refinement: K33 has m = 9 > 2n - 4 = 8 *)
  check ci "K33 via bipartite bound" 1
    (Planarity.Distance.euler_lower_bound (Generators.complete_bipartite 3 3));
  check ci "K44" 4
    (Planarity.Distance.euler_lower_bound (Generators.complete_bipartite 4 4))

let test_greedy_upper () =
  let ub = Planarity.Distance.greedy_upper_bound (Generators.complete 5) in
  check ci "K5 exact" 1 ub;
  check ci "planar zero" 0
    (Planarity.Distance.greedy_upper_bound (Generators.grid 4 4))

let test_bounds_bracket_qcheck =
  QCheck.Test.make ~name:"euler lower <= greedy upper; zero iff planar"
    ~count:50
    QCheck.(pair (int_range 4 16) (int_range 0 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Generators.gnp rng n 0.4 in
      let lb = Planarity.Distance.euler_lower_bound g in
      let ub = Planarity.Distance.greedy_upper_bound ~rng g in
      lb <= ub && (ub = 0) = Planarity.Lr.is_planar g)

let test_far_eps () =
  let rng = Random.State.make [| 17 |] in
  let g = Generators.far_from_planar rng ~n:60 ~eps:0.25 in
  check cb "certified" true (Planarity.Distance.is_certified_far g ~eps:0.25);
  check cb "relative distance positive" true
    (Planarity.Distance.eps_far_lower_bound g >= 0.25)


(* ------------------------------------------------------------------ *)
(* Kuratowski witnesses                                                *)
(* ------------------------------------------------------------------ *)

let test_kuratowski_k5 () =
  let g = Generators.complete 5 in
  match Planarity.Kuratowski.find g with
  | Some w ->
      check cb "kind" true (w.Planarity.Kuratowski.kind = Planarity.Kuratowski.K5);
      check cb "verifies" true (Planarity.Kuratowski.verify g w)
  | None -> Alcotest.fail "K5 must have a witness"

let test_kuratowski_k33 () =
  let g = Generators.complete_bipartite 3 3 in
  match Planarity.Kuratowski.find g with
  | Some w ->
      check cb "kind" true (w.Planarity.Kuratowski.kind = Planarity.Kuratowski.K33);
      check cb "verifies" true (Planarity.Kuratowski.verify g w)
  | None -> Alcotest.fail "K33 must have a witness"

let test_kuratowski_planar_none () =
  check cb "no witness in planar" true
    (Planarity.Kuratowski.find (Generators.grid 5 5) = None)

let test_kuratowski_petersen () =
  let g = Generators.petersen () in
  match Planarity.Kuratowski.find g with
  | Some w -> check cb "verifies" true (Planarity.Kuratowski.verify g w)
  | None -> Alcotest.fail "petersen must have a witness"

let test_kuratowski_qcheck =
  QCheck.Test.make ~name:"every non-planar graph yields a verified witness"
    ~count:40
    QCheck.(pair (int_range 6 16) (int_range 0 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Generators.gnp rng n 0.5 in
      match Planarity.Kuratowski.find g with
      | Some w -> Planarity.Kuratowski.verify g w
      | None -> Planarity.Lr.is_planar g)

let () =
  Alcotest.run "planarity"
    [
      ( "rotation",
        [
          Alcotest.test_case "darts" `Quick test_darts;
          Alcotest.test_case "cycle faces" `Quick test_face_count_cycle;
          Alcotest.test_case "tree faces" `Quick test_face_count_tree;
          Alcotest.test_case "K4 adjacency toroidal" `Quick
            test_k4_adjacency_rotation_toroidal;
          Alcotest.test_case "K5 adjacency nonplanar" `Quick
            test_k5_adjacency_rotation_nonplanar;
          Alcotest.test_case "validation" `Quick test_rotation_validation;
          Alcotest.test_case "faces partition darts" `Quick
            test_faces_partition_darts;
          Alcotest.test_case "isolated vertices" `Quick test_isolated_vertices;
        ] );
      ( "left-right",
        [
          Alcotest.test_case "known graphs" `Quick test_lr_known;
          Alcotest.test_case "embeddings verify" `Quick test_lr_embed_verifies;
          Alcotest.test_case "embed_or_adjacency" `Quick
            test_embed_or_adjacency;
          q test_lr_apollonian_qcheck;
          q test_lr_vs_dmp_qcheck;
          q test_lr_monotone_qcheck;
          q test_lr_relabel_invariant_qcheck;
        ] );
      ( "dmp",
        [
          Alcotest.test_case "known graphs" `Quick test_dmp_known;
          Alcotest.test_case "blocks" `Quick test_blocks;
          Alcotest.test_case "bridges are blocks" `Quick test_blocks_bridges;
          Alcotest.test_case "blocks cover edges" `Quick
            test_blocks_cover_edges;
        ] );
      ( "kuratowski",
        [
          Alcotest.test_case "K5 witness" `Quick test_kuratowski_k5;
          Alcotest.test_case "K33 witness" `Quick test_kuratowski_k33;
          Alcotest.test_case "planar: none" `Quick test_kuratowski_planar_none;
          Alcotest.test_case "petersen" `Quick test_kuratowski_petersen;
          q test_kuratowski_qcheck;
        ] );
      ( "distance",
        [
          Alcotest.test_case "euler bound" `Quick test_euler_bound;
          Alcotest.test_case "greedy upper" `Quick test_greedy_upper;
          q test_bounds_bracket_qcheck;
          Alcotest.test_case "eps-far certification" `Quick test_far_eps;
        ] );
    ]
