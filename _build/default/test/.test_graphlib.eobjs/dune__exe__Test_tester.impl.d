test/test_tester.ml: Alcotest Array Generators Graph Graphlib List Option Partition Planarity QCheck QCheck_alcotest Random Tester Traversal
