test/test_planarity.ml: Alcotest Array Generators Graph Graphlib List Planarity QCheck QCheck_alcotest Random
