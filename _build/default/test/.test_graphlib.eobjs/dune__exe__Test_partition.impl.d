test/test_partition.ml: Alcotest Array Generators Graph Graphlib List Partition QCheck QCheck_alcotest Random Traversal
