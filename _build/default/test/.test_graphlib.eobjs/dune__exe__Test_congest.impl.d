test/test_congest.ml: Alcotest Array Congest Generators Graph Graphlib List QCheck QCheck_alcotest Random Traversal
