test/test_tester.mli:
