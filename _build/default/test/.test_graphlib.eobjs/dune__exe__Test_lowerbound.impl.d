test/test_lowerbound.ml: Alcotest Graphlib Lowerbound QCheck QCheck_alcotest Random
