test/test_graphlib.ml: Alcotest Array Degeneracy Generators Gio Girth Graph Graphlib List Planarity QCheck QCheck_alcotest Random Traversal Union_find
