open Graphlib
module S = Partition.State

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let q = QCheck_alcotest.to_alcotest

let fresh_state g =
  let st = S.create g in
  Partition.Prims.refresh_roots st;
  st

(* ------------------------------------------------------------------ *)
(* Prims                                                               *)
(* ------------------------------------------------------------------ *)

let test_refresh_roots () =
  let g = Generators.grid 3 3 in
  let st = fresh_state g in
  Array.iter
    (fun nd ->
      Array.iteri
        (fun port (nbr, _) ->
          check ci "initial part root = neighbor id" nbr
            nd.S.nbr_root.(port))
        (Graph.incident g nd.S.id))
    st.S.nodes

let test_bcast_converge_roundtrip () =
  (* Give node 0 the whole graph as one part with a path tree, broadcast a
     value down and sum ids back up. *)
  let g = Generators.path 6 in
  let st = fresh_state g in
  Array.iter
    (fun nd ->
      nd.S.part_root <- 0;
      nd.S.parent <- (if nd.S.id = 0 then -1 else nd.S.id - 1);
      nd.S.children <- (if nd.S.id = 5 then [] else [ nd.S.id + 1 ]))
    st.S.nodes;
  let got = Array.make 6 (-1) in
  Partition.Prims.bcast st ~budget:6 ~tag:1
    ~at_root:(fun _ -> Some [ 42 ])
    ~on_receive:(fun nd pl -> got.(nd.S.id) <- List.hd pl);
  Array.iter (fun v -> check ci "payload delivered" 42 v) got;
  let total = ref 0 in
  Partition.Prims.converge st ~budget:6 ~tag:2
    ~init:(fun nd -> nd.S.id)
    ~combine:( + )
    ~encode:(fun v -> [ v ])
    ~decode:(function [ v ] -> v | _ -> assert false)
    ~at_root:(fun _ v -> total := v);
  check ci "ids summed" 15 !total

let test_converge_budget_too_small () =
  let g = Generators.path 6 in
  let st = fresh_state g in
  Array.iter
    (fun nd ->
      nd.S.part_root <- 0;
      nd.S.parent <- (if nd.S.id = 0 then -1 else nd.S.id - 1);
      nd.S.children <- (if nd.S.id = 5 then [] else [ nd.S.id + 1 ]))
    st.S.nodes;
  try
    Partition.Prims.converge st ~budget:2 ~tag:3
      ~init:(fun nd -> nd.S.id)
      ~combine:( + )
      ~encode:(fun v -> [ v ])
      ~decode:(function [ v ] -> v | _ -> assert false)
      ~at_root:(fun _ _ -> ());
    Alcotest.fail "expected budget failure"
  with Failure _ -> ()

let test_boundary () =
  let g = Generators.path 3 in
  let st = fresh_state g in
  (* three singleton parts; everyone messages across every cut edge *)
  let seen = Array.make 3 [] in
  Partition.Prims.boundary st ~tag:4
    ~payload:(fun nd ~port:_ ~nbr:_ -> Some [ nd.S.id * 10 ])
    ~on_receive:(fun nd ~nbr pl -> seen.(nd.S.id) <- (nbr, List.hd pl) :: seen.(nd.S.id));
  check
    (Alcotest.list (Alcotest.pair ci ci))
    "middle node hears both" [ (0, 0); (2, 20) ]
    (List.sort compare seen.(1))

(* ------------------------------------------------------------------ *)
(* Forest decomposition                                                *)
(* ------------------------------------------------------------------ *)

let run_fd g =
  let st = fresh_state g in
  let sr = Partition.Forest_decomp.super_rounds_for (Graph.n g) in
  let _ =
    Partition.Forest_decomp.run st ~alpha:3 ~super_rounds:sr
      ~budget:(max 1 (S.max_depth st))
  in
  st

let test_fd_orients_each_edge_once () =
  let g = Generators.apollonian (Random.State.make [| 2 |]) 120 in
  let st = run_fd g in
  check cb "no rejection" true (st.S.rejections = []);
  Graph.iter_edges
    (fun _ u v ->
      let a = List.mem_assoc v st.S.nodes.(u).S.out_edges in
      let b = List.mem_assoc u st.S.nodes.(v).S.out_edges in
      check cb "exactly one direction" true (a <> b))
    g

let test_fd_outdegree_bound () =
  let g = Generators.apollonian (Random.State.make [| 3 |]) 150 in
  let st = run_fd g in
  Array.iter
    (fun nd ->
      check cb "outdeg <= 3 alpha" true (List.length nd.S.out_edges <= 9))
    st.S.nodes

let test_fd_acyclic_orientation () =
  let g = Generators.apollonian (Random.State.make [| 4 |]) 100 in
  let st = run_fd g in
  (* deactivation rounds strictly increase along out-edges (ties by id) *)
  Array.iter
    (fun nd ->
      List.iter
        (fun (target, _) ->
          let t = st.S.nodes.(target) in
          check cb "order respects rounds" true
            (t.S.deact_round > nd.S.deact_round
            || (t.S.deact_round = nd.S.deact_round && nd.S.id < t.S.id)))
        nd.S.out_edges)
    st.S.nodes

let test_fd_rejects_dense () =
  let st = run_fd (Generators.complete 12) in
  check cb "K12 rejected (arboricity 6 > 3)" true (st.S.rejections <> [])

let test_fd_accepts_k10 () =
  let st = run_fd (Generators.complete 10) in
  check cb "K10 accepted (degree 9 = 3 * 3 alpha)" true (st.S.rejections = [])

let test_fd_weights_are_multiplicities () =
  let g = Generators.grid 5 5 in
  let st = run_fd g in
  Array.iter
    (fun nd ->
      List.iter
        (fun (_, w) -> check ci "singleton parts have unit weights" 1 w)
        nd.S.out_edges)
    st.S.nodes

let test_fd_planar_never_rejects_qcheck =
  QCheck.Test.make ~name:"forest decomposition never rejects planar graphs"
    ~count:40
    QCheck.(pair (int_range 3 80) (int_range 0 10000))
    (fun (n, seed) ->
      let g = Generators.apollonian (Random.State.make [| seed |]) n in
      (run_fd g).S.rejections = [])

(* ------------------------------------------------------------------ *)
(* Cole-Vishkin coloring                                               *)
(* ------------------------------------------------------------------ *)

let coloring_after_selection g =
  let st = run_fd g in
  Alcotest.(check bool) "fd ok" true (st.S.rejections = []);
  Partition.Merge.reset_phase_fields st;
  Partition.Merge.select_heaviest st;
  let budget = max 1 (S.max_depth st) in
  Partition.Merge.designate st ~budget;
  Partition.Merge.announce_and_resolve st ~budget;
  Partition.Cv_coloring.run st ~budget;
  st

let check_proper_coloring st =
  Array.iter
    (fun nd ->
      check cb "color in 1..3" true (nd.S.color >= 1 && nd.S.color <= 3);
      if nd.S.fsel_target >= 0 then begin
        let parent = st.S.nodes.(nd.S.fsel_target) in
        check cb "proper vs F-parent" true (nd.S.color <> parent.S.color);
        check ci "parent color known" parent.S.color nd.S.parent_color
      end)
    st.S.nodes

let test_cv_on_grid () = check_proper_coloring (coloring_after_selection (Generators.grid 7 7))

let test_cv_on_triangulation () =
  check_proper_coloring
    (coloring_after_selection
       (Generators.apollonian (Random.State.make [| 5 |]) 90))

let test_cv_iterations_bound () =
  check cb "log* -ish iterations" true
    (Partition.Cv_coloring.iterations_for 1_000_000 <= 8);
  check cb "small universe" true (Partition.Cv_coloring.iterations_for 6 = 0)

let test_cv_qcheck =
  QCheck.Test.make ~name:"cole-vishkin yields a proper 3-coloring of F"
    ~count:25
    QCheck.(pair (int_range 4 60) (int_range 0 10000))
    (fun (n, seed) ->
      let g = Generators.apollonian (Random.State.make [| seed |]) n in
      let st = coloring_after_selection g in
      Array.for_all
        (fun nd ->
          nd.S.color >= 1 && nd.S.color <= 3
          && (nd.S.fsel_target < 0
             || st.S.nodes.(nd.S.fsel_target).S.color <> nd.S.color))
        st.S.nodes)

(* ------------------------------------------------------------------ *)
(* Stage I                                                             *)
(* ------------------------------------------------------------------ *)

let test_stage1_invariants_and_cut () =
  let g = Generators.apollonian (Random.State.make [| 6 |]) 250 in
  let eps = 0.4 in
  let r = Partition.Stage1.run g ~eps in
  check cb "no rejection" true (r.Partition.Stage1.rejected = []);
  S.check_invariants r.Partition.Stage1.state;
  let cut = S.cut_edges r.Partition.Stage1.state in
  check cb "cut below target" true
    (float_of_int cut <= eps *. float_of_int (Graph.m g) /. 2.0)

let test_stage1_parts_connected () =
  let g = Generators.grid 9 9 in
  let r = Partition.Stage1.run g ~eps:0.5 in
  List.iter
    (fun (_, members) ->
      let sub, _ = Graph.induced g members in
      check cb "part connected" true (Traversal.is_connected sub))
    (S.parts r.Partition.Stage1.state)

let test_stage1_claim1_weight_decay () =
  (* Claim 1: each phase removes at least a 1/(12 alpha) = 1/36 fraction of
     the cut weight. *)
  let g = Generators.apollonian (Random.State.make [| 7 |]) 300 in
  let r = Partition.Stage1.run g ~eps:0.3 in
  List.iter
    (fun (p : Partition.Stage1.phase_trace) ->
      check cb "decay >= 1/36" true
        (float_of_int p.Partition.Stage1.cut_after
        <= (1.0 -. (1.0 /. 36.0)) *. float_of_int p.Partition.Stage1.cut_before
           +. 1e-9))
    r.Partition.Stage1.phases

let test_stage1_claim4_diameter () =
  let g = Generators.grid 10 10 in
  let r = Partition.Stage1.run g ~eps:0.3 in
  List.iter
    (fun (p : Partition.Stage1.phase_trace) ->
      check cb "diameter <= 4^i" true
        (float_of_int p.Partition.Stage1.max_diameter
        <= 4.0 ** float_of_int p.Partition.Stage1.phase))
    r.Partition.Stage1.phases

let test_stage1_deterministic () =
  let g = Generators.apollonian (Random.State.make [| 8 |]) 120 in
  let r1 = Partition.Stage1.run g ~eps:0.3 in
  let r2 = Partition.Stage1.run g ~eps:0.3 in
  check
    (Alcotest.list (Alcotest.pair ci (Alcotest.list ci)))
    "identical partitions"
    (S.parts r1.Partition.Stage1.state)
    (S.parts r2.Partition.Stage1.state)

let test_stage1_rejects_dense () =
  let r = Partition.Stage1.run (Generators.complete 16) ~eps:0.2 in
  check cb "K16 rejected in stage I" true (r.Partition.Stage1.rejected <> [])

let test_stage1_full_schedule () =
  (* stop_when_met:false runs the full Theta (log 1/eps) schedule. *)
  let g = Generators.grid 6 6 in
  let r = Partition.Stage1.run ~stop_when_met:false g ~eps:0.5 in
  check ci "full phase count"
    (Partition.Stage1.phases_for ~eps:0.5 ~alpha:3)
    (List.length r.Partition.Stage1.phases)

let test_phases_for_monotone () =
  check cb "more phases for smaller eps" true
    (Partition.Stage1.phases_for ~eps:0.05 ~alpha:3
    > Partition.Stage1.phases_for ~eps:0.5 ~alpha:3)

let test_stage1_qcheck =
  QCheck.Test.make
    ~name:"stage I on planar: no rejection, invariants, cut target" ~count:15
    QCheck.(pair (int_range 10 120) (int_range 0 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g = Generators.apollonian rng n in
      let eps = 0.3 +. Random.State.float rng 0.4 in
      let r = Partition.Stage1.run g ~eps in
      S.check_invariants r.Partition.Stage1.state;
      r.Partition.Stage1.rejected = []
      && float_of_int (S.cut_edges r.Partition.Stage1.state)
         <= eps *. float_of_int (Graph.m g) /. 2.0)

let test_stage1_trees_qcheck =
  QCheck.Test.make ~name:"stage I on assorted planar families" ~count:10
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let g =
        match seed mod 4 with
        | 0 -> Generators.random_tree rng 80
        | 1 -> Generators.cycle 60
        | 2 -> Generators.grid 8 8
        | _ -> Generators.random_planar rng ~n:80 ~m:150
      in
      let r = Partition.Stage1.run g ~eps:0.4 in
      S.check_invariants r.Partition.Stage1.state;
      r.Partition.Stage1.rejected = [])

(* ------------------------------------------------------------------ *)
(* Randomized partition (Theorem 4)                                    *)
(* ------------------------------------------------------------------ *)

let test_random_partition_invariants () =
  let g = Generators.apollonian (Random.State.make [| 9 |]) 200 in
  let r = Partition.Random_partition.run g ~eps:0.5 ~delta:0.1 ~seed:3 in
  S.check_invariants r.Partition.Random_partition.state;
  List.iter
    (fun (_, members) ->
      let sub, _ = Graph.induced g members in
      check cb "part connected" true (Traversal.is_connected sub))
    (S.parts r.Partition.Random_partition.state)

let test_random_partition_success_rate () =
  (* With delta = 0.2 at least ~80% of seeds should meet the cut target;
     allow slack for small-sample noise. *)
  let g = Generators.grid 10 10 in
  let ok = ref 0 in
  for seed = 0 to 14 do
    let r = Partition.Random_partition.run g ~eps:0.5 ~delta:0.2 ~seed in
    if float_of_int r.Partition.Random_partition.cut
       <= 0.5 *. float_of_int (Graph.n g)
    then incr ok
  done;
  check cb "most seeds succeed" true (!ok >= 11)

let test_random_partition_mutual_selection () =
  (* On a cycle with unit weights mutual selections are frequent; the
     resolution must still leave a consistent pseudo-forest and valid
     state. *)
  let g = Generators.cycle 40 in
  for seed = 0 to 9 do
    let r = Partition.Random_partition.run g ~eps:0.4 ~delta:0.3 ~seed in
    S.check_invariants r.Partition.Random_partition.state
  done

let test_trials_for () =
  check cb "more trials for smaller delta" true
    (Partition.Random_partition.trials_for ~delta:0.01
    > Partition.Random_partition.trials_for ~delta:0.5)

let test_random_partition_qcheck =
  QCheck.Test.make ~name:"randomized partition keeps state invariants"
    ~count:10
    QCheck.(pair (int_range 20 100) (int_range 0 10000))
    (fun (n, seed) ->
      let g = Generators.apollonian (Random.State.make [| seed |]) n in
      let r = Partition.Random_partition.run g ~eps:0.5 ~delta:0.2 ~seed in
      S.check_invariants r.Partition.Random_partition.state;
      true)


(* ------------------------------------------------------------------ *)
(* Differential: distributed emulation vs centralized reference        *)
(* ------------------------------------------------------------------ *)

let reference_agreement g eps =
  let d = Partition.Stage1.run g ~eps ~measure_diameters:false in
  let r = Partition.Reference.run g ~eps in
  let dist_part =
    Array.map (fun nd -> nd.S.part_root)
      d.Partition.Stage1.state.S.nodes
  in
  let dist_cuts =
    List.map (fun p -> p.Partition.Stage1.cut_after) d.Partition.Stage1.phases
  in
  dist_part = r.Partition.Reference.part
  && dist_cuts = r.Partition.Reference.cuts
  && (d.Partition.Stage1.rejected <> []) = r.Partition.Reference.rejected

let test_reference_matches () =
  check cb "grid" true (reference_agreement (Generators.grid 9 9) 0.4);
  check cb "tree" true
    (reference_agreement (Generators.random_tree (Random.State.make [| 40 |]) 120) 0.5);
  check cb "triangulation" true
    (reference_agreement
       (Generators.apollonian (Random.State.make [| 41 |]) 150)
       0.35)

let test_reference_matches_qcheck =
  QCheck.Test.make
    ~name:"emulation and centralized reference build identical partitions"
    ~count:20
    QCheck.(pair (int_range 10 120) (int_range 0 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let g =
        match seed mod 3 with
        | 0 -> Generators.apollonian rng n
        | 1 -> Generators.random_tree rng n
        | _ -> Generators.random_planar rng ~n ~m:(max (n - 1) (2 * n))
      in
      let eps = 0.3 +. Random.State.float rng 0.4 in
      reference_agreement g eps)


(* ------------------------------------------------------------------ *)
(* Exponential-shift partition (Section 1.1 remark)                    *)
(* ------------------------------------------------------------------ *)

let test_en_partition_basic () =
  let g = Generators.apollonian (Random.State.make [| 50 |]) 300 in
  let r = Partition.En_partition.run g ~eps:0.4 ~seed:2 in
  S.check_invariants r.Partition.En_partition.state;
  check cb "cut below eps m" true
    (float_of_int r.Partition.En_partition.cut
    <= 0.4 *. float_of_int (Graph.m g));
  List.iter
    (fun (_, members) ->
      let sub, _ = Graph.induced g members in
      check cb "part connected" true (Traversal.is_connected sub))
    (S.parts r.Partition.En_partition.state)

let test_en_partition_qcheck =
  QCheck.Test.make ~name:"exp-shift partition: invariants on planar inputs"
    ~count:15
    QCheck.(pair (int_range 20 150) (int_range 0 10000))
    (fun (n, seed) ->
      let g = Generators.apollonian (Random.State.make [| seed |]) n in
      let r = Partition.En_partition.run g ~eps:0.5 ~seed in
      S.check_invariants r.Partition.En_partition.state;
      List.for_all
        (fun (_, members) ->
          Traversal.is_connected (fst (Graph.induced g members)))
        (S.parts r.Partition.En_partition.state))

let () =
  Alcotest.run "partition"
    [
      ( "prims",
        [
          Alcotest.test_case "refresh roots" `Quick test_refresh_roots;
          Alcotest.test_case "bcast/converge" `Quick
            test_bcast_converge_roundtrip;
          Alcotest.test_case "converge budget check" `Quick
            test_converge_budget_too_small;
          Alcotest.test_case "boundary" `Quick test_boundary;
        ] );
      ( "forest-decomposition",
        [
          Alcotest.test_case "orients each edge once" `Quick
            test_fd_orients_each_edge_once;
          Alcotest.test_case "outdegree bound" `Quick test_fd_outdegree_bound;
          Alcotest.test_case "acyclic orientation" `Quick
            test_fd_acyclic_orientation;
          Alcotest.test_case "rejects K12" `Quick test_fd_rejects_dense;
          Alcotest.test_case "accepts K10" `Quick test_fd_accepts_k10;
          Alcotest.test_case "weights" `Quick test_fd_weights_are_multiplicities;
          q test_fd_planar_never_rejects_qcheck;
        ] );
      ( "cole-vishkin",
        [
          Alcotest.test_case "grid" `Quick test_cv_on_grid;
          Alcotest.test_case "triangulation" `Quick test_cv_on_triangulation;
          Alcotest.test_case "iteration bound" `Quick test_cv_iterations_bound;
          q test_cv_qcheck;
        ] );
      ( "stage1",
        [
          Alcotest.test_case "invariants and cut" `Quick
            test_stage1_invariants_and_cut;
          Alcotest.test_case "parts connected" `Quick
            test_stage1_parts_connected;
          Alcotest.test_case "claim 1 weight decay" `Quick
            test_stage1_claim1_weight_decay;
          Alcotest.test_case "claim 4 diameter" `Quick
            test_stage1_claim4_diameter;
          Alcotest.test_case "deterministic" `Quick test_stage1_deterministic;
          Alcotest.test_case "rejects dense" `Quick test_stage1_rejects_dense;
          Alcotest.test_case "full schedule" `Quick test_stage1_full_schedule;
          Alcotest.test_case "phases_for monotone" `Quick
            test_phases_for_monotone;
          q test_stage1_qcheck;
          q test_stage1_trees_qcheck;
        ] );
      ( "reference",
        [
          Alcotest.test_case "matches emulation" `Quick test_reference_matches;
          q test_reference_matches_qcheck;
        ] );
      ( "exp-shift",
        [
          Alcotest.test_case "basic" `Quick test_en_partition_basic;
          q test_en_partition_qcheck;
        ] );
      ( "randomized",
        [
          Alcotest.test_case "invariants" `Quick
            test_random_partition_invariants;
          Alcotest.test_case "success rate" `Quick
            test_random_partition_success_rate;
          Alcotest.test_case "mutual selection" `Quick
            test_random_partition_mutual_selection;
          Alcotest.test_case "trials_for" `Quick test_trials_for;
          q test_random_partition_qcheck;
        ] );
    ]
