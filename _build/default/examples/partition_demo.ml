(* The Stage I partition on a planar road-network-like graph: watch the
   cut shrink geometrically (Claim 1) while part diameters stay small
   (Claim 4), then compare with the randomized Theorem 4 partition.

     dune exec examples/partition_demo.exe *)

open Graphlib

let () =
  let rng = Random.State.make [| 2024 |] in
  (* A "road network": a sparse random planar graph (grid-like sparsity,
     planar by construction). *)
  let g = Generators.random_planar rng ~n:600 ~m:1400 in
  let g =
    if Traversal.is_connected g then g
    else begin
      (* connect components along a path to keep the demo simple *)
      let comp, c = Traversal.components g in
      let first = Array.make c (-1) in
      Array.iteri (fun v ci -> if first.(ci) < 0 then first.(ci) <- v) comp;
      let extra = ref [] in
      for ci = 1 to c - 1 do
        extra := (first.(ci - 1), first.(ci)) :: !extra
      done;
      Graph.add_edges g !extra
    end
  in
  Printf.printf "input: n=%d m=%d planar=%b\n\n" (Graph.n g) (Graph.m g)
    (Planarity.Lr.is_planar g);
  let eps = 0.3 in
  let r = Partition.Stage1.run g ~eps in
  Printf.printf "deterministic Stage I (eps = %.2f, target cut <= %.0f):\n"
    eps
    (eps *. float_of_int (Graph.m g) /. 2.0);
  Printf.printf "  %-6s %-12s %-8s %-10s %-12s\n" "phase" "cut" "parts"
    "diameter" "4^i bound";
  List.iter
    (fun (p : Partition.Stage1.phase_trace) ->
      Printf.printf "  %-6d %4d -> %-4d %-8d %-10d %-12.0f\n"
        p.Partition.Stage1.phase p.Partition.Stage1.cut_before
        p.Partition.Stage1.cut_after p.Partition.Stage1.parts
        p.Partition.Stage1.max_diameter
        (4.0 ** float_of_int p.Partition.Stage1.phase))
    r.Partition.Stage1.phases;
  Printf.printf "  simulated rounds: %d\n\n" r.Partition.Stage1.rounds;
  (* The Theorem 4 variant trades certainty for rounds. *)
  List.iter
    (fun delta ->
      let rr = Partition.Random_partition.run g ~eps ~delta ~seed:5 in
      Printf.printf
        "randomized (delta = %.2f): cut=%d (target %.0f) phases=%d rounds=%d\n"
        delta rr.Partition.Random_partition.cut
        (eps *. float_of_int (Graph.n g))
        rr.Partition.Random_partition.phases
        rr.Partition.Random_partition.rounds)
    [ 0.5; 0.1; 0.01 ]
