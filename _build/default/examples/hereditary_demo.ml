(* Two extras built on the same partition machinery:

   1. the generic hereditary-property tester the paper sketches after
      Corollary 16 (here: outerplanarity, checked per part), and
   2. Kuratowski-witness extraction — concrete rejection evidence.

     dune exec examples/hereditary_demo.exe *)

open Graphlib

(* Outerplanar iff adding a universal apex vertex keeps the graph planar. *)
let outerplanar g =
  let n = Graph.n g in
  let apex = n in
  let edges =
    Graph.fold_edges (fun acc _ u v -> (u, v) :: acc) [] g
    @ List.init n (fun v -> (v, apex))
  in
  Planarity.Lr.is_planar (Graph.make ~n:(n + 1) edges)

let () =
  let rng = Random.State.make [| 77 |] in
  Printf.printf "hereditary tester (outerplanarity per part):\n";
  List.iter
    (fun (name, g) ->
      let o =
        Tester.Minor_free_testers.test_hereditary g ~eps:0.3
          ~check_part:outerplanar
      in
      Printf.printf "  %-22s accepted=%b (parts=%d, cut=%d)\n" name
        o.Tester.Minor_free_testers.accepted o.Tester.Minor_free_testers.parts
        o.Tester.Minor_free_testers.cut)
    [
      ("cycle 120 (outerplanar)", Generators.cycle 120);
      ("tree 120 (outerplanar)", Generators.random_tree rng 120);
      ("triangulation 120", Generators.apollonian rng 120);
    ];
  Printf.printf "\nKuratowski witnesses (rejection evidence):\n";
  List.iter
    (fun (name, g) ->
      match Planarity.Kuratowski.find g with
      | None -> Printf.printf "  %-22s planar, no witness\n" name
      | Some w ->
          Printf.printf "  %-22s contains a %s subdivision (%d edges, verified=%b)\n"
            name
            (match w.Planarity.Kuratowski.kind with
            | Planarity.Kuratowski.K5 -> "K5"
            | Planarity.Kuratowski.K33 -> "K3,3")
            (List.length w.Planarity.Kuratowski.edges)
            (Planarity.Kuratowski.verify g w))
    [
      ("petersen", Generators.petersen ());
      ("K6", Generators.complete 6);
      ("grid 8x8", Generators.grid 8 8);
      ("far(150, 0.2)", Generators.far_from_planar rng ~n:150 ~eps:0.2);
    ]
