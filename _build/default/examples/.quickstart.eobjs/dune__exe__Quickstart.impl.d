examples/quickstart.ml: Generators Graph Graphlib List Planarity Printf Random Tester
