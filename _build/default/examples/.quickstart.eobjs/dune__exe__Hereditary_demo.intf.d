examples/hereditary_demo.mli:
