examples/farness_demo.mli:
