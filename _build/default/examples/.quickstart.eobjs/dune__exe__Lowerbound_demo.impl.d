examples/lowerbound_demo.ml: Graphlib List Lowerbound Printf Random
