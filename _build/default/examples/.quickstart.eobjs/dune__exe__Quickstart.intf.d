examples/quickstart.mli:
