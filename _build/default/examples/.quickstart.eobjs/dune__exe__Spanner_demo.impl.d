examples/spanner_demo.ml: Generators Graph Graphlib List Printf Random Tester
