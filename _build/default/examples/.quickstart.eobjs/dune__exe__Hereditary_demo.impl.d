examples/hereditary_demo.ml: Generators Graph Graphlib List Planarity Printf Random Tester
