examples/partition_demo.ml: Array Generators Graph Graphlib List Partition Planarity Printf Random Traversal
