examples/lowerbound_demo.mli:
