(* Ultra-sparse spanners for minor-free graphs (Corollary 17) versus the
   Elkin–Neiman general-graph baseline (Section 1.2's comparison): on a
   planar input, the minor-free construction reaches (1 + eps) n edges
   with poly(1/eps) stretch, while the baseline needs many rounds (large
   k) before its size bound becomes sparse.

     dune exec examples/spanner_demo.exe *)

open Graphlib

let () =
  let rng = Random.State.make [| 99 |] in
  let g = Generators.apollonian rng 500 in
  Printf.printf "input: n=%d m=%d (planar triangulation)\n\n" (Graph.n g)
    (Graph.m g);
  Printf.printf "Corollary 17 spanner (minor-free promise):\n";
  List.iter
    (fun eps ->
      let r = Tester.Spanner.build g ~eps in
      let stretch = Tester.Spanner.measured_stretch g r.Tester.Spanner.spanner in
      Printf.printf
        "  eps=%.2f: edges=%4d (bound %4.0f) stretch measured=%2d bound=%d\n"
        eps
        (Graph.m r.Tester.Spanner.spanner)
        ((1.0 +. eps) *. float_of_int (Graph.n g))
        stretch r.Tester.Spanner.stretch_bound)
    [ 0.5; 0.25; 0.1 ];
  Printf.printf "\nElkin–Neiman baseline (general graphs, k rounds):\n";
  List.iter
    (fun k ->
      let r = Tester.Elkin_neiman.build g ~k ~delta:0.25 ~seed:3 in
      let stretch =
        Tester.Spanner.measured_stretch g r.Tester.Elkin_neiman.spanner
      in
      Printf.printf
        "  k=%2d: edges=%4d (size bound O(n^{1+1/k}/delta) = %7.0f) stretch \
         measured=%2d bound=%d\n"
        k r.Tester.Elkin_neiman.edges
        (float_of_int (Graph.n g) ** (1.0 +. (1.0 /. float_of_int k))
        /. 0.25)
        stretch
        ((2 * k) - 1))
    [ 2; 3; 5; 9; 15 ]
