(* How far from planar is a graph, and what does the tester's rejection
   probability look like as a function of eps?  Uses the certified Euler
   lower bound and the greedy maximal-planar-subgraph upper bound.

     dune exec examples/farness_demo.exe *)

open Graphlib

let rejection_rate g eps trials =
  let rejected = ref 0 in
  for seed = 1 to trials do
    if not (Tester.Planarity_tester.accepts g ~eps ~seed) then incr rejected
  done;
  float_of_int !rejected /. float_of_int trials

let () =
  let rng = Random.State.make [| 5150 |] in
  let base = Generators.apollonian rng 150 in
  Printf.printf
    "Apollonian triangulation (n=150, m=%d) plus k random chords:\n\n"
    (Graph.m base);
  Printf.printf "%-7s %-9s %-14s %-14s %-22s\n" "chords" "m" "dist>=(Euler)"
    "dist<=(greedy)" "reject rate (eps=0.1)";
  List.iter
    (fun chords ->
      let g = Generators.planar_plus_chords rng ~base ~extra:chords in
      Printf.printf "%-7d %-9d %-14d %-14d %.2f\n" chords (Graph.m g)
        (Planarity.Distance.euler_lower_bound g)
        (Planarity.Distance.greedy_upper_bound g)
        (rejection_rate g 0.1 10))
    [ 0; 5; 20; 60; 120 ];
  Printf.printf
    "\nThe tester's rejection rate tracks the certified distance: graphs\n\
     well past the eps threshold reject essentially always; graphs close\n\
     to planar may accept (allowed: one-sided error only).\n"
