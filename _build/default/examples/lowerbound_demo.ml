(* The Omega(log n) lower bound (Theorem 2): build graphs that are far
   from planar yet have girth Omega(log n), so any one-sided tester
   running fewer than (girth-1)/2 rounds sees only trees and must accept.

     dune exec examples/lowerbound_demo.exe *)

let () =
  let rng = Random.State.make [| 31337 |] in
  Printf.printf
    "%-6s %-6s %-9s %-6s %-7s %-18s\n" "n" "m" "removed" "girth" "eps-far"
    "blind radius (rounds)";
  List.iter
    (fun n ->
      let c =
        Lowerbound.Construction.build rng ~n ~avg_degree:6.0 ~girth_factor:1.5
      in
      Printf.printf "%-6d %-6d %-9d %-6s %-7.3f %d\n" n
        (Graphlib.Graph.m c.Lowerbound.Construction.graph)
        c.Lowerbound.Construction.removed
        (match c.Lowerbound.Construction.girth with
        | Some girth -> string_of_int girth
        | None -> ">")
        c.Lowerbound.Construction.euler_far
        (Lowerbound.Construction.indistinguishability_radius c))
    [ 128; 256; 512; 1024; 2048 ];
  Printf.printf
    "\nWithin the blind radius every node's view is a tree, so a one-sided\n\
     tester cannot reject — yet each graph is certifiably eps-far from\n\
     planar.  Rejection therefore needs Omega(log n) rounds (Theorem 2).\n"
