(* Benchmark / experiment harness.

   The paper (PODC 2018) has no tables or figures — it is a theory paper —
   so each experiment below regenerates the quantitative content of one
   theorem or claim (see DESIGN.md's per-experiment index and EXPERIMENTS.md
   for paper-vs-measured).  Run with --quick for reduced sizes. *)

open Graphlib

let quick =
  Array.exists (fun a -> a = "--quick" || a = "-q") Sys.argv

let header title claim =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "paper: %s\n" claim;
  Printf.printf "================================================================\n"

let row fmt = Printf.printf fmt

let log2 x = log (float_of_int (max x 2)) /. log 2.0

(* ------------------------------------------------------------------ *)

let e1_rounds_vs_n () =
  header "E1 — tester rounds vs n (planar inputs)"
    "Theorem 1: O(log n * poly(1/eps)) rounds";
  let sizes = if quick then [ 64; 128; 256; 512 ] else [ 64; 128; 256; 512; 1024; 2048 ] in
  row "%-12s %-6s %-7s %-9s %-10s %-11s %-14s\n" "family" "n" "m" "rounds"
    "nominal" "rounds/lg n" "nominal/lg n";
  List.iter
    (fun n ->
      let g = Generators.apollonian (Random.State.make [| n |]) n in
      let r = Tester.Planarity_tester.run g ~eps:0.3 ~seed:1 in
      row "%-12s %-6d %-7d %-9d %-10d %-11.1f %-14.1f\n" "apollonian" n
        (Graph.m g) r.Tester.Planarity_tester.rounds
        r.Tester.Planarity_tester.nominal_rounds
        (float_of_int r.Tester.Planarity_tester.rounds /. log2 n)
        (float_of_int r.Tester.Planarity_tester.nominal_rounds /. log2 n))
    sizes;
  List.iter
    (fun n ->
      let side = int_of_float (sqrt (float_of_int n)) in
      let g = Generators.grid side side in
      let r = Tester.Planarity_tester.run g ~eps:0.3 ~seed:1 in
      row "%-12s %-6d %-7d %-9d %-10d %-11.1f %-14.1f\n" "grid"
        (Graph.n g) (Graph.m g) r.Tester.Planarity_tester.rounds
        r.Tester.Planarity_tester.nominal_rounds
        (float_of_int r.Tester.Planarity_tester.rounds /. log2 (Graph.n g))
        (float_of_int r.Tester.Planarity_tester.nominal_rounds /. log2 (Graph.n g)))
    sizes

let e2_rounds_vs_eps () =
  header "E2 — tester rounds vs eps (fixed n)"
    "Theorem 1: poly(1/eps) dependence via t = O(log 1/eps) phases and 4^i diameters";
  let n = if quick then 256 else 512 in
  let g = Generators.apollonian (Random.State.make [| 77 |]) n in
  row "%-7s %-8s %-9s %-10s %-7s\n" "eps" "phases" "rounds" "nominal" "t_max";
  List.iter
    (fun eps ->
      let r = Tester.Planarity_tester.run g ~eps ~seed:1 in
      let phases =
        match r.Tester.Planarity_tester.stage1 with
        | Some s1 -> List.length s1.Partition.Stage1.phases
        | None -> 0
      in
      row "%-7.2f %-8d %-9d %-10d %-7d\n" eps phases
        r.Tester.Planarity_tester.rounds
        r.Tester.Planarity_tester.nominal_rounds
        (Partition.Stage1.phases_for ~eps ~alpha:3))
    [ 0.5; 0.4; 0.3; 0.2; 0.15; 0.1 ]

let e3_completeness () =
  header "E3 — completeness (one-sided error)"
    "Theorem 1: planar => every node outputs accept, always";
  let trials = if quick then 10 else 25 in
  let families =
    [
      ("apollonian", fun rng -> Generators.apollonian rng 200);
      ("rand planar", fun rng -> Generators.random_planar rng ~n:200 ~m:420);
      ("grid 14x14", fun _ -> Generators.grid 14 14);
      ("tree", fun rng -> Generators.random_tree rng 200);
      ("cycle", fun _ -> Generators.cycle 200);
    ]
  in
  row "%-14s %-8s %-9s\n" "family" "trials" "accepted";
  List.iter
    (fun (name, gen) ->
      let ok = ref 0 in
      for seed = 1 to trials do
        let g = gen (Random.State.make [| seed; 13 |]) in
        if Traversal.is_connected g
           && Tester.Planarity_tester.accepts g ~eps:0.3 ~seed
        then incr ok
        else if not (Traversal.is_connected g) then incr ok
      done;
      row "%-14s %-8d %-9d%s\n" name trials !ok
        (if !ok = trials then "  (100%)" else "  *** VIOLATION ***"))
    families

let e4_soundness () =
  header "E4 — soundness on certified eps-far inputs"
    "Theorem 1: eps-far => some node rejects w.p. 1 - 1/poly(n)";
  let trials = if quick then 8 else 20 in
  row "%-22s %-8s %-10s %-9s %-9s\n" "family" "trials" "cert. far" "eps used"
    "rejected";
  List.iter
    (fun (name, gen, eps) ->
      let rejected = ref 0 and farness = ref 1.0 in
      for seed = 1 to trials do
        let g : Graph.t = gen (Random.State.make [| seed; 29 |]) in
        farness := min !farness (Planarity.Distance.eps_far_lower_bound g);
        if not (Tester.Planarity_tester.accepts g ~eps ~seed) then
          incr rejected
      done;
      row "%-22s %-8d %-10.3f %-9.2f %d/%d\n" name trials !farness eps
        !rejected trials)
    [
      ( "far(n=150, 0.25)",
        (fun rng -> Generators.far_from_planar rng ~n:150 ~eps:0.25),
        0.2 );
      ( "far(n=300, 0.15)",
        (fun rng -> Generators.far_from_planar rng ~n:300 ~eps:0.15),
        0.1 );
      ("K33 x 20 necklace", (fun _ ->
           Generators.connected_copies (Generators.complete_bipartite 3 3) 20), 0.05);
      ("gnp(150, 8/n)", (fun rng -> Generators.gnp rng 150 (8.0 /. 150.0)), 0.15);
    ]

let e5_weight_decay () =
  header "E5 — per-phase cut-weight decay"
    "Claim 1: w(G_{i+1}) <= (1 - 1/(12 alpha)) w(G_i) = 0.9722 w(G_i)";
  let n = if quick then 300 else 800 in
  let g = Generators.apollonian (Random.State.make [| 5 |]) n in
  let r = Partition.Stage1.run ~stop_when_met:false g ~eps:0.35 in
  row "%-7s %-10s %-10s %-8s %-14s\n" "phase" "cut in" "cut out" "ratio"
    "bound (35/36)";
  let live, idle =
    List.partition
      (fun (p : Partition.Stage1.phase_trace) ->
        p.Partition.Stage1.cut_before > 0)
      r.Partition.Stage1.phases
  in
  List.iter
    (fun (p : Partition.Stage1.phase_trace) ->
      row "%-7d %-10d %-10d %-8.3f %-14s\n" p.Partition.Stage1.phase
        p.Partition.Stage1.cut_before p.Partition.Stage1.cut_after
        (float_of_int p.Partition.Stage1.cut_after
        /. float_of_int (max 1 p.Partition.Stage1.cut_before))
        (if
           float_of_int p.Partition.Stage1.cut_after
           <= (35.0 /. 36.0) *. float_of_int p.Partition.Stage1.cut_before +. 1e-9
         then "ok"
         else "*** VIOLATION ***"))
    live;
  if idle <> [] then
    row "(+ %d further scheduled phases with an already-empty cut)\n"
      (List.length idle)

let e6_diameter_growth () =
  header "E6 — part diameters across phases"
    "Claim 4: parts of P_i are connected with diameter <= 4^i";
  let side = if quick then 16 else 24 in
  let g = Generators.grid side side in
  let r = Partition.Stage1.run ~stop_when_met:false g ~eps:0.4 in
  row "%-7s %-10s %-12s %-10s %-8s\n" "phase" "parts" "max diam" "4^i" "ok?";
  let shown = ref 0 in
  List.iter
    (fun (p : Partition.Stage1.phase_trace) ->
      if p.Partition.Stage1.parts > 1 || !shown < 1 then begin
        if p.Partition.Stage1.parts = 1 then incr shown;
        let bound = 4.0 ** float_of_int p.Partition.Stage1.phase in
        row "%-7d %-10d %-12d %-10.0f %-8s\n" p.Partition.Stage1.phase
          p.Partition.Stage1.parts p.Partition.Stage1.max_diameter bound
          (if float_of_int p.Partition.Stage1.max_diameter <= bound then "ok"
           else "*** VIOLATION ***")
      end)
    r.Partition.Stage1.phases;
  row "(remaining scheduled phases keep a single part; bound holds trivially)\n"

let e7_cut_quality () =
  header "E7 — final cut vs target"
    "Claim 3 / Theorem 3: planar inputs always reach cut <= eps m / 2";
  let n = if quick then 400 else 1000 in
  let g = Generators.apollonian (Random.State.make [| 6 |]) n in
  row "%-7s %-9s %-11s %-9s %-8s\n" "eps" "phases" "target" "cut" "ok?";
  List.iter
    (fun eps ->
      let r = Partition.Stage1.run g ~eps in
      let cut = Partition.State.cut_edges r.Partition.Stage1.state in
      let target = eps *. float_of_int (Graph.m g) /. 2.0 in
      row "%-7.2f %-9d %-11.0f %-9d %-8s\n" eps
        (List.length r.Partition.Stage1.phases)
        target cut
        (if float_of_int cut <= target then "ok" else "*** VIOLATION ***"))
    [ 0.5; 0.4; 0.3; 0.2; 0.1 ]

let e8_randomized_partition () =
  header "E8 — randomized partition (Theorem 4)"
    "O(poly(1/eps)(log(1/delta) + log* n)) rounds; cut <= eps n w.p. 1 - delta";
  let side = if quick then 14 else 20 in
  let g = Generators.grid side side in
  let trials = if quick then 8 else 20 in
  let det = Partition.Stage1.run g ~eps:(2.0 *. 0.5 *. float_of_int (Graph.n g) /. float_of_int (Graph.m g)) in
  row "deterministic baseline: rounds=%d cut=%d\n\n"
    det.Partition.Stage1.rounds
    (Partition.State.cut_edges det.Partition.Stage1.state);
  row "%-8s %-8s %-10s %-12s %-12s\n" "delta" "trials" "success" "avg rounds"
    "avg cut";
  List.iter
    (fun delta ->
      let succ = ref 0 and rounds = ref 0 and cut = ref 0 in
      for seed = 1 to trials do
        let r = Partition.Random_partition.run g ~eps:0.5 ~delta ~seed in
        rounds := !rounds + r.Partition.Random_partition.rounds;
        cut := !cut + r.Partition.Random_partition.cut;
        if float_of_int r.Partition.Random_partition.cut
           <= 0.5 *. float_of_int (Graph.n g)
        then incr succ
      done;
      row "%-8.2f %-8d %d/%-8d %-12d %-12d\n" delta trials !succ trials
        (!rounds / trials) (!cut / trials))
    [ 0.5; 0.25; 0.1; 0.02 ]

let e9_spanner () =
  header "E9 — spanners: Corollary 17 vs Elkin–Neiman baseline"
    "Cor 17: (1 + O(eps)) n edges, poly(1/eps) stretch; EN: (2k-1)-spanner, O(n^{1+1/k}/delta) edges";
  let n = if quick then 300 else 800 in
  let g = Generators.apollonian (Random.State.make [| 7 |]) n in
  row "input: apollonian n=%d m=%d\n\n" (Graph.n g) (Graph.m g);
  row "ours   %-7s %-8s %-12s %-14s %-14s\n" "eps" "edges" "(1+eps)n"
    "stretch (meas)" "stretch bound";
  List.iter
    (fun eps ->
      let r = Tester.Spanner.build g ~eps in
      row "       %-7.2f %-8d %-12.0f %-14d %-14d\n" eps
        (Graph.m r.Tester.Spanner.spanner)
        ((1.0 +. eps) *. float_of_int n)
        (Tester.Spanner.measured_stretch g r.Tester.Spanner.spanner)
        r.Tester.Spanner.stretch_bound)
    [ 0.5; 0.25; 0.1 ];
  row "\nEN     %-7s %-8s %-12s %-14s %-14s\n" "k" "edges" "size bound"
    "stretch (meas)" "2k-1";
  List.iter
    (fun k ->
      let r = Tester.Elkin_neiman.build g ~k ~delta:0.25 ~seed:2 in
      row "       %-7d %-8d %-12.0f %-14d %-14d\n" k
        r.Tester.Elkin_neiman.edges
        (float_of_int n ** (1.0 +. (1.0 /. float_of_int k)) /. 0.25)
        (Tester.Spanner.measured_stretch g r.Tester.Elkin_neiman.spanner)
        ((2 * k) - 1))
    [ 2; 3; 5; 8; 12; 20 ]

let e10_lower_bound () =
  header "E10 — the Omega(log n) lower-bound construction"
    "Theorem 2 (Claims 11-12): constant-far graphs with girth Omega(log n) force Omega(log n) rounds";
  let sizes = if quick then [ 128; 256; 512 ] else [ 128; 256; 512; 1024; 2048 ] in
  row "%-6s %-7s %-9s %-7s %-9s %-13s %-10s\n" "n" "m" "removed" "girth"
    "eps-far" "blind radius" "rejected?";
  List.iter
    (fun n ->
      let rng = Random.State.make [| n; 41 |] in
      let c =
        Lowerbound.Construction.build rng ~n ~avg_degree:6.0 ~girth_factor:1.6
      in
      let g = c.Lowerbound.Construction.graph in
      let rejected =
        not (Tester.Planarity_tester.accepts g ~eps:0.1 ~seed:1)
      in
      row "%-6d %-7d %-9d %-7s %-9.3f %-13d %-10b\n" n (Graph.m g)
        c.Lowerbound.Construction.removed
        (match c.Lowerbound.Construction.girth with
        | Some girth -> string_of_int girth
        | None -> "inf")
        c.Lowerbound.Construction.euler_far
        (Lowerbound.Construction.indistinguishability_radius c)
        rejected)
    sizes;
  row "\n(blind radius r: any one-sided tester must accept if it runs < r rounds,\n";
  row " because every r-ball is a tree; the radius grows with log n.)\n"

let e11_minor_free_testers () =
  header "E11 — cycle-freeness and bipartiteness testers (minor-free promise)"
    "Corollary 16: O(poly(1/eps) log n) deterministic / O(poly(1/eps)(log 1/delta + log* n)) randomized";
  let rng = Random.State.make [| 51 |] in
  let n = if quick then 150 else 400 in
  let cases =
    [
      ("tree (cycle-free)", Generators.random_tree rng n, `Cyc, true);
      ("grid (far from forest)", Generators.grid 14 14, `Cyc, false);
      ("grid (bipartite)", Generators.grid 14 14, `Bip, true);
      ("triangulation (far)", Generators.apollonian rng n, `Bip, false);
    ]
  in
  row "%-26s %-14s %-8s %-9s %-9s %-9s\n" "input" "property" "expect"
    "det" "rand" "rounds";
  List.iter
    (fun (name, g, prop, expect) ->
      let det =
        match prop with
        | `Cyc -> Tester.Minor_free_testers.test_cycle_freeness g ~eps:0.3
        | `Bip -> Tester.Minor_free_testers.test_bipartiteness g ~eps:0.3
      in
      let rand =
        let mode = Tester.Minor_free_testers.Randomized 0.1 in
        match prop with
        | `Cyc -> Tester.Minor_free_testers.test_cycle_freeness ~mode g ~eps:0.3
        | `Bip -> Tester.Minor_free_testers.test_bipartiteness ~mode g ~eps:0.3
      in
      row "%-26s %-14s %-8b %-9b %-9b %-9d\n" name
        (match prop with `Cyc -> "cycle-free" | `Bip -> "bipartite")
        expect det.Tester.Minor_free_testers.accepted
        rand.Tester.Minor_free_testers.accepted
        det.Tester.Minor_free_testers.rounds)
    cases

let e12_emulation_cost () =
  header "E12 — emulation cost accounting"
    "Section 2.1.5: a super-round costs O(max part diameter) G-rounds; messages stay O(log n) bits";
  let n = if quick then 300 else 800 in
  let g = Generators.apollonian (Random.State.make [| 9 |]) n in
  let r = Partition.Stage1.run g ~eps:0.3 in
  let st = r.Partition.Stage1.state in
  let stats = st.Partition.State.stats in
  row "n=%d m=%d  phases=%d\n" (Graph.n g) (Graph.m g)
    (List.length r.Partition.Stage1.phases);
  row "simulated rounds      : %d\n" stats.Congest.Stats.rounds;
  row "bandwidth-charged     : %d\n" stats.Congest.Stats.charged_rounds;
  row "nominal (paper sched.): %d\n" r.Partition.Stage1.nominal_rounds;
  row "messages              : %d\n" stats.Congest.Stats.messages;
  row "max bits on one edge  : %d (bandwidth %d)\n"
    stats.Congest.Stats.max_edge_bits stats.Congest.Stats.bandwidth;
  row "oversized (edge,round): %d\n" stats.Congest.Stats.oversized;
  row "%-7s %-14s %-12s %-14s\n" "phase" "fd super-rnds" "max diam"
    "tree depth";
  List.iter
    (fun (p : Partition.Stage1.phase_trace) ->
      row "%-7d %-14d %-12d %-14d\n" p.Partition.Stage1.phase
        p.Partition.Stage1.fd_super_rounds p.Partition.Stage1.max_diameter
        p.Partition.Stage1.max_tree_depth)
    r.Partition.Stage1.phases

let e13_partition_alternatives () =
  header "E13 — Stage I vs the exponential-shift partition (Section 1.1 remark)"
    "replacing Stage I with the adapted Elkin-Neiman partition gives O(log^2 n poly(1/eps)) rounds";
  let sizes = if quick then [ 128; 256; 512 ] else [ 128; 256; 512; 1024; 2048 ] in
  row "%-6s | %-22s | %-26s\n" "" "Stage I (Theorem 1)" "exp. shifts (EN-style)";
  row "%-6s | %-9s %-6s %-5s | %-9s %-6s %-5s %-6s\n" "n" "rounds" "cut"
    "okay" "rounds" "cut" "okay" "R";
  List.iter
    (fun n ->
      let g = Generators.apollonian (Random.State.make [| n; 3 |]) n in
      let eps = 0.3 in
      let target = eps *. float_of_int (Graph.m g) in
      let s1 = Tester.Planarity_tester.run g ~eps ~seed:1 in
      let s1_cut =
        match s1.Tester.Planarity_tester.stage1 with
        | Some r -> Partition.State.cut_edges r.Partition.Stage1.state
        | None -> -1
      in
      let en_part = Partition.En_partition.run g ~eps ~seed:1 in
      let en =
        Tester.Planarity_tester.run
          ~partition:Tester.Planarity_tester.Exponential_shifts g ~eps ~seed:1
      in
      let verdict r =
        match r.Tester.Planarity_tester.verdict with
        | Tester.Planarity_tester.Accept -> true
        | _ -> false
      in
      row "%-6d | %-9d %-6d %-5b | %-9d %-6d %-5b %-6d\n" n
        s1.Tester.Planarity_tester.rounds s1_cut (verdict s1)
        en.Tester.Planarity_tester.rounds en_part.Partition.En_partition.cut
        (verdict en) en_part.Partition.En_partition.radius_bound;
      if (not (verdict s1)) || not (verdict en) then
        row "        *** COMPLETENESS VIOLATION ***\n";
      ignore target)
    sizes

let e14_embedding_modes () =
  header "E14 — what Ghaffari-Haeupler saves: oracle-charged vs collect-and-embed"
    "GH embeds in O(D + min(log n, D)) rounds; shipping each part to its root costs Omega(m_j log n / B)";
  let sizes = if quick then [ 200; 400 ] else [ 200; 400; 800; 1600 ] in
  row "%-6s %-24s %-24s\n" "" "oracle (GH cost)" "collect-and-embed";
  row "%-6s %-11s %-12s %-11s %-12s\n" "n" "rounds" "charged" "rounds" "charged";
  List.iter
    (fun n ->
      let g = Generators.apollonian (Random.State.make [| n; 7 |]) n in
      let run mode =
        let r = Tester.Planarity_tester.run ~embedding:mode g ~eps:0.3 ~seed:1 in
        let st =
          match r.Tester.Planarity_tester.stage1 with
          | Some s1 -> s1.Partition.Stage1.state
          | None -> assert false
        in
        ( r.Tester.Planarity_tester.rounds,
          st.Partition.State.stats.Congest.Stats.charged_rounds )
      in
      let o_rounds, o_charged = run Tester.Stage2.Oracle in
      let c_rounds, c_charged = run Tester.Stage2.Collect in
      row "%-6d %-11d %-12d %-11d %-12d\n" n o_rounds o_charged c_rounds
        c_charged)
    sizes;
  row "(the gap in charged rounds grows with part size: that gap is the\n";
  row " value of the Ghaffari-Haeupler distributed embedding algorithm.)\n"

(* ------------------------------------------------------------------ *)
(* Ablations of design choices (DESIGN.md)                             *)
(* ------------------------------------------------------------------ *)

let a1_selection_rule () =
  header "A1 — ablation: heaviest-edge vs random weighted selection"
    "Sub-step 1 (deterministic, Claim 1 rate 1/36) vs Section 4 selection (Claim 14 rate 1/192)";
  let n = if quick then 300 else 600 in
  let g = Generators.apollonian (Random.State.make [| 61 |]) n in
  let det = Partition.Stage1.run g ~eps:0.4 in
  let avg_ratio phases sel =
    let rs =
      List.filter_map
        (fun (p : Partition.Stage1.phase_trace) ->
          if p.Partition.Stage1.cut_before = 0 then None
          else
            Some
              (float_of_int p.Partition.Stage1.cut_after
              /. float_of_int p.Partition.Stage1.cut_before))
        phases
    in
    ignore sel;
    List.fold_left ( +. ) 0.0 rs /. float_of_int (max 1 (List.length rs))
  in
  row "heaviest (Stage I)  : phases=%-3d avg per-phase cut ratio=%.3f\n"
    (List.length det.Partition.Stage1.phases)
    (avg_ratio det.Partition.Stage1.phases ());
  let trials = if quick then 3 else 6 in
  let phases = ref 0 and ratio = ref 0.0 in
  for seed = 1 to trials do
    let r = Partition.Random_partition.run g ~eps:(0.4 *. float_of_int (Graph.m g) /. (2.0 *. float_of_int n)) ~delta:0.1 ~seed in
    phases := !phases + r.Partition.Random_partition.phases;
    ratio :=
      !ratio
      +. (float_of_int r.Partition.Random_partition.cut
          /. float_of_int (Graph.m g))
         ** (1.0 /. float_of_int (max 1 r.Partition.Random_partition.phases))
  done;
  row "random (Theorem 4)  : phases=%.1f avg per-phase cut ratio=%.3f (matched cut target, %d seeds)\n"
    (float_of_int !phases /. float_of_int trials)
    (!ratio /. float_of_int trials)
    trials;
  row "(heavier selections contract more weight per phase, as the constants\n";
  row " 1/(12 alpha) vs 1/(64 alpha) in Claims 1 and 14 predict.)\n"

let a2_corner_keys () =
  header "A2 — ablation: vertex-level labels vs corner keys (Definition 7)"
    "Claim 10 as stated fails with vertex-level labels; the corner refinement repairs it";
  let trials = if quick then 40 else 150 in
  let false_pos = ref 0 and total = ref 0 in
  for seed = 1 to trials do
    let rng = Random.State.make [| seed; 71 |] in
    let g = Generators.apollonian rng (10 + Random.State.int rng 80) in
    incr total;
    if Tester.Violation.count_violating_vertex_labels g > 0 then incr false_pos
  done;
  row "planar triangulations with false 'violating edges':\n";
  row "  vertex-level labels : %d / %d  (one-sidedness broken)\n" !false_pos
    !total;
  let corner = ref 0 in
  for seed = 1 to trials do
    let rng = Random.State.make [| seed; 71 |] in
    let g = Generators.apollonian rng (10 + Random.State.int rng 80) in
    if Tester.Violation.count_violating g > 0 then incr corner
  done;
  row "  corner keys         : %d / %d\n" !corner !total;
  row "on far graphs both detect plenty (n=100, eps=0.25):\n";
  let g = Generators.far_from_planar (Random.State.make [| 72 |]) ~n:100 ~eps:0.25 in
  row "  vertex-level=%d corner=%d (certified distance >= %d)\n"
    (Tester.Violation.count_violating_vertex_labels g)
    (Tester.Violation.count_violating g)
    (Planarity.Distance.euler_lower_bound g)

let a3_adaptive_schedule () =
  header "A3 — ablation: adaptive early stop vs the full fixed schedule"
    "stop_when_met skips provably idle phases; the worst-case analysis needs the full t = O(log 1/eps)";
  let n = if quick then 300 else 600 in
  let g = Generators.apollonian (Random.State.make [| 81 |]) n in
  row "%-7s %-18s %-18s %-7s\n" "eps" "adaptive (ph/rnds)" "full (ph/rnds)"
    "t_max";
  List.iter
    (fun eps ->
      let a = Partition.Stage1.run g ~eps in
      let f = Partition.Stage1.run ~stop_when_met:false g ~eps in
      row "%-7.2f %3d / %-12d %3d / %-12d %-7d\n" eps
        (List.length a.Partition.Stage1.phases)
        a.Partition.Stage1.rounds
        (List.length f.Partition.Stage1.phases)
        f.Partition.Stage1.rounds
        (Partition.Stage1.phases_for ~eps ~alpha:3))
    [ 0.5; 0.3 ]

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock micro-benchmarks                                 *)
(* ------------------------------------------------------------------ *)

let bechamel_section () =
  header "B — wall-clock micro-benchmarks (Bechamel)"
    "simulator throughput; not a paper claim";
  let open Bechamel in
  let g_small = Generators.apollonian (Random.State.make [| 3 |]) 150 in
  let g_planarity = Generators.apollonian (Random.State.make [| 4 |]) 1000 in
  let far = Generators.far_from_planar (Random.State.make [| 5 |]) ~n:150 ~eps:0.25 in
  let mk name f = Test.make ~name (Staged.stage f) in
  let tests =
    [
      mk "lr_planarity_n1000" (fun () -> ignore (Planarity.Lr.is_planar g_planarity));
      mk "lr_embed_n1000" (fun () -> ignore (Planarity.Lr.embed g_planarity));
      mk "stage1_n150" (fun () -> ignore (Partition.Stage1.run g_small ~eps:0.3));
      mk "full_tester_planar_n150" (fun () ->
          ignore (Tester.Planarity_tester.run g_small ~eps:0.3 ~seed:1));
      mk "full_tester_far_n150" (fun () ->
          ignore (Tester.Planarity_tester.run far ~eps:0.2 ~seed:1));
      mk "spanner_n150" (fun () -> ignore (Tester.Spanner.build g_small ~eps:0.3));
      mk "elkin_neiman_n150_k4" (fun () ->
          ignore (Tester.Elkin_neiman.build g_small ~k:4 ~delta:0.2 ~seed:1));
      mk "girth_n150" (fun () -> ignore (Girth.girth g_small));
    ]
  in
  let grouped = Test.make_grouped ~name:"repro" tests in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      instance raw
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  row "%-40s %-16s\n" "benchmark" "ns/run (ols)";
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> row "%-40s %-16.0f\n" name est
      | _ -> row "%-40s (no estimate)\n" name)
    (List.sort compare rows)

let () =
  e1_rounds_vs_n ();
  e2_rounds_vs_eps ();
  e3_completeness ();
  e4_soundness ();
  e5_weight_decay ();
  e6_diameter_growth ();
  e7_cut_quality ();
  e8_randomized_partition ();
  e9_spanner ();
  e10_lower_bound ();
  e11_minor_free_testers ();
  e12_emulation_cost ();
  e13_partition_alternatives ();
  e14_embedding_modes ();
  a1_selection_rule ();
  a2_corner_keys ();
  a3_adaptive_schedule ();
  bechamel_section ();
  Printf.printf "\nAll experiments completed.\n"
