(** The merging step of a Stage I phase (Sections 2.1.2 and 2.1.6):
    heaviest-out-edge selection, designated-edge election, Cole–Vishkin
    coloring (via {!Cv_coloring}), the Czygrinow–Hańckowiak–Wawrzyniak
    marking rules, shallow-tree levels with even/odd weight sums, and the
    star contraction that produces the next partition.

    Precondition: {!Forest_decomp.run} has filled [out_edges] at every part
    root and nothing rejected.  Postcondition: [part_root] / [parent] /
    [children] describe the coarsened partition [P_{i+1}] with the
    properties of Lemma 6. *)

(** Maximum height of a CHW marked tree (the paper proves 10; we give the
    level protocol two rounds of slack and assert). *)
val max_tree_height : int

(** Local step at each root: pick the heaviest out-edge (ties to the
    smaller root id).  Separated out so {!Random_partition} can substitute
    its weighted random selection. *)
val select_heaviest : State.t -> unit

(** Clear the per-phase fields (selection, colors, marks, levels). *)
val reset_phase_fields : State.t -> unit

(** The individual sub-steps, exposed for unit tests.  They must run in
    this order, after {!select_heaviest} (or the randomized selection). *)

val designate : State.t -> budget:int -> unit
val announce_and_resolve : State.t -> budget:int -> unit
val marking : State.t -> budget:int -> unit
val levels_and_decision : State.t -> budget:int -> unit
val contract : State.t -> budget:int -> unit

(** All remaining sub-steps, from designation through contraction.
    [budget] must be at least the maximum part-tree depth. *)
val run_after_selection : State.t -> budget:int -> unit

(** [select_heaviest] followed by [run_after_selection]. *)
val run : State.t -> budget:int -> unit
