(* Wire messages of the partition sub-protocols.  Payloads are flat int
   lists; the [tag] identifies the sub-step so that lockstep violations
   surface as assertion failures instead of silent cross-talk. *)

type t =
  | Root of int  (* neighbor-part-root refresh *)
  | Down of int * int list  (* tag, payload: broadcast along part trees *)
  | Up of int * int list  (* tag, payload: convergecast along part trees *)
  | Bdry of int * int list  (* tag, payload: across cut edges *)

let int_cost v = 2 + Congest.Bits.int_bits ~universe:(abs v + 2)

let list_cost l = List.fold_left (fun acc v -> acc + int_cost v) 0 l

let bits = function
  | Root r -> 4 + int_cost r
  | Down (t, l) | Up (t, l) | Bdry (t, l) -> 4 + int_cost t + list_cost l
