type agg = Many | Counts of (int * int) list

let super_rounds_for n =
  2 + int_of_float (ceil (log (float_of_int (max n 2)) /. log 1.5))

let add_count lst r x =
  let rec go = function
    | [] -> [ (r, x) ]
    | (r', c) :: rest when r' = r -> (r', c + x) :: rest
    | p :: rest -> p :: go rest
  in
  go lst

let cap alpha = function
  | Many -> Many
  | Counts lst -> if List.length lst > 3 * alpha then Many else Counts lst

let combine alpha a b =
  match (a, b) with
  | Many, _ | _, Many -> Many
  | Counts la, Counts lb ->
      cap alpha (Counts (List.fold_left (fun acc (r, x) -> add_count acc r x) la lb))

let encode = function
  | Many -> [ -1 ]
  | Counts lst -> List.concat_map (fun (r, x) -> [ r; x ]) lst

let decode = function
  | [ -1 ] -> Many
  | l ->
      let rec pairs = function
        | [] -> []
        | r :: x :: rest -> (r, x) :: pairs rest
        | [ _ ] -> failwith "Forest_decomp.decode: odd payload"
      in
      Counts (pairs l)

let root_logic ~can_deactivate (nd : State.node) a l =
  if nd.State.active then begin
    match a with
    | Many -> ()
    | Counts lst ->
        if can_deactivate then begin
          nd.State.active <- false;
          nd.State.deact_round <- l;
          nd.State.snapshot <- lst
        end
  end
  else if nd.State.deact_round = l - 1 then begin
    let still_active =
      match a with
      | Many ->
          (* Impossible: active neighbors of an inactive part only shrink,
             and were at most 3 alpha at deactivation. *)
          failwith "Forest_decomp: overflow at an inactive part"
      | Counts lst -> List.map fst lst
    in
    nd.State.out_edges <-
      List.filter
        (fun (r', _) -> List.mem r' still_active || nd.State.id < r')
        nd.State.snapshot
  end

let run st ~alpha ~super_rounds ~budget =
  Array.iter
    (fun nd ->
      nd.State.active <- true;
      nd.State.deact_round <- -1;
      nd.State.snapshot <- [];
      nd.State.out_edges <- [])
    st.State.nodes;
  let roots =
    Array.to_list st.State.nodes
    |> List.filter (fun nd -> State.is_root st nd.State.id)
  in
  let all_oriented l =
    List.for_all
      (fun nd -> (not nd.State.active) && nd.State.deact_round < l)
      roots
  in
  let l = ref 1 in
  let stop = ref false in
  while (not !stop) && !l <= super_rounds + 1 do
    (* Notices from boundary nodes of active parts. *)
    Array.iter (fun nd -> nd.State.scratch_list <- []) st.State.nodes;
    Prims.boundary st ~tag:((!l * 10) + 1)
      ~payload:(fun nd ~port:_ ~nbr:_ ->
        if nd.State.active then Some [ nd.State.part_root ] else None)
      ~on_receive:(fun nd ~nbr:_ pl ->
        match pl with
        | [ r ] -> nd.State.scratch_list <- add_count nd.State.scratch_list r 1
        | _ -> assert false);
    (* Aggregate per-part notice counts to the root. *)
    let sr = !l in
    Prims.converge st ~budget ~tag:((sr * 10) + 2)
      ~init:(fun nd -> cap alpha (Counts nd.State.scratch_list))
      ~combine:(combine alpha) ~encode ~decode
      ~at_root:(fun nd a ->
        root_logic ~can_deactivate:(sr <= super_rounds) nd a sr);
    (* Roots announce whether the part remains active. *)
    Prims.bcast st ~budget ~tag:((sr * 10) + 3)
      ~at_root:(fun nd ->
        if nd.State.active then Some [ 1 ]
        else if nd.State.deact_round = sr then Some [ 0 ]
        else None)
      ~on_receive:(fun nd pl -> nd.State.active <- pl = [ 1 ]);
    if all_oriented !l then stop := true;
    incr l
  done;
  let executed = !l - 1 in
  List.iter
    (fun nd ->
      if nd.State.active then
        st.State.rejections <-
          ( nd.State.id,
            Printf.sprintf
              "forest decomposition: part %d still active after %d \
               super-rounds (arboricity > %d evidence)"
              nd.State.id super_rounds alpha )
          :: st.State.rejections)
    roots;
  executed
