(* Bits needed to write any color in [0, u): ceil (log2 u). *)
let bits_for u =
  let rec count acc v = if v = 0 then acc else count (acc + 1) (v lsr 1) in
  count 0 (max (u - 1) 1)

let iterations_for n =
  let rec go acc u = if u <= 6 then acc else go (acc + 1) (2 * bits_for u) in
  go 0 (max n 2)

let steps_for n = iterations_for n + 6

(* Lowest bit position at which [a] and [b] differ. *)
let lowest_diff a b =
  let x = a lxor b in
  let rec go k v = if v land 1 = 1 then k else go (k + 1) (v lsr 1) in
  go 0 x

let cv_step own parent =
  assert (own <> parent);
  let k = lowest_diff own parent in
  (2 * k) + ((own lsr k) land 1)

(* One color exchange: every member learns its part color; every root
   learns its F-parent part's current color (or -1). *)
let exchange st ~budget ~tag =
  Prims.bcast st ~budget ~tag:(tag * 3)
    ~at_root:(fun nd -> Some [ nd.State.color ])
    ~on_receive:(fun nd pl ->
      match pl with [ c ] -> nd.State.color <- c | _ -> assert false);
  Array.iter
    (fun nd -> if State.is_root st nd.State.id then nd.State.parent_color <- -1)
    st.State.nodes;
  Prims.boundary st
    ~tag:((tag * 3) + 1)
    ~payload:(fun nd ~port:_ ~nbr:_ -> Some [ nd.State.color ])
    ~on_receive:(fun nd ~nbr pl ->
      match pl with
      | [ c ] ->
          if nd.State.charge_node = nd.State.id && nbr = nd.State.charge_nbr
          then nd.State.scratch <- c
      | _ -> assert false);
  Prims.converge st ~budget
    ~tag:((tag * 3) + 2)
    ~init:(fun nd ->
      if nd.State.charge_node = nd.State.id then Some nd.State.scratch else None)
    ~combine:(fun a b -> if a = None then b else a)
    ~encode:(function None -> [] | Some c -> [ c ])
    ~decode:(function [] -> None | [ c ] -> Some c | _ -> assert false)
    ~at_root:(fun nd v ->
      match v with Some c -> nd.State.parent_color <- c | None -> ())

let mex forbidden =
  let rec go c = if List.mem c forbidden then go (c + 1) else c in
  let r = go 0 in
  assert (r <= 2);
  r

let run st ~budget =
  let n = Graphlib.Graph.n st.State.graph in
  let roots =
    Array.to_list st.State.nodes
    |> List.filter (fun nd -> State.is_root st nd.State.id)
  in
  (* Initial colors: part root ids. *)
  List.iter (fun nd -> nd.State.color <- nd.State.id) roots;
  let tag = ref 2000 in
  let next_tag () =
    incr tag;
    !tag
  in
  (* Bit-shrinking iterations. *)
  for _ = 1 to iterations_for n do
    exchange st ~budget ~tag:(next_tag ());
    List.iter
      (fun nd ->
        let parent =
          if nd.State.fsel_target = -1 then nd.State.color lxor 1
          else nd.State.parent_color
        in
        nd.State.color <- cv_step nd.State.color parent)
      roots
  done;
  List.iter (fun nd -> assert (nd.State.color < 6)) roots;
  (* Three shift-down + recolor steps collapse {3, 4, 5}. *)
  List.iter
    (fun c ->
      exchange st ~budget ~tag:(next_tag ());
      List.iter
        (fun nd ->
          nd.State.scratch2 <- nd.State.color;
          (* prev = children's color after the shift *)
          nd.State.color <-
            (if nd.State.fsel_target = -1 then (nd.State.color + 1) mod 3
             else nd.State.parent_color))
        roots;
      exchange st ~budget ~tag:(next_tag ());
      List.iter
        (fun nd ->
          if nd.State.color = c then begin
            let forbidden =
              nd.State.scratch2
              ::
              (if nd.State.fsel_target = -1 then [] else [ nd.State.parent_color ])
            in
            nd.State.color <- mex forbidden
          end)
        roots)
    [ 5; 4; 3 ];
  (* Final propagation: every member and every root's parent_color now
     reflect the final {0,1,2} coloring, remapped to {1,2,3}. *)
  exchange st ~budget ~tag:(next_tag ());
  Array.iter
    (fun nd ->
      nd.State.color <- nd.State.color + 1;
      if State.is_root st nd.State.id && nd.State.fsel_target >= 0 then
        nd.State.parent_color <- nd.State.parent_color + 1)
    st.State.nodes
