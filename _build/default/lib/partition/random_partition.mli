(** The randomized partition algorithm for minor-free graphs (Theorem 4,
    Section 4): the forest-decomposition verification step is skipped
    (arboricity is promised), and each part selects an incident auxiliary
    edge by the weighted-edge selection — [s = Theta (log 1/delta)]
    independent draws, each uniform over the part's incident cut edges
    (Section 4.1's tree-sampling emulation), keeping the heaviest draw.
    The merge then proceeds exactly as in the deterministic algorithm
    (designation, Cole–Vishkin on the resulting pseudo-forest — mutual
    selections resolved toward the lower root id — marking, contraction).

    Round complexity [O(poly (1/eps) (log (1/delta) + log* n))] per the
    paper; with probability [1 - delta] the final cut is at most
    [eps * n] when the input is minor-free. *)

type result = {
  state : State.t;
  phases : int;
  rounds : int;
  nominal_rounds : int;
  cut : int;  (** inter-part edges at termination *)
}

(** Draws per phase: [ceil (ln (1/delta)) + 1]. *)
val trials_for : delta:float -> int

(** [run ?alpha ?stop_when_met g ~eps ~delta ~seed] executes the
    partition.  [alpha] is the promised arboricity bound (3 for planar). *)
val run :
  ?alpha:int ->
  ?stop_when_met:bool ->
  Graphlib.Graph.t ->
  eps:float ->
  delta:float ->
  seed:int ->
  result
