lib/partition/random_partition.ml: Array Congest Cv_coloring Graph Graphlib Hashtbl List Merge Msg Option Prims Random State
