lib/partition/forest_decomp.mli: State
