lib/partition/reference.ml: Array Cv_coloring Forest_decomp Graph Graphlib Hashtbl List Merge Option Stage1
