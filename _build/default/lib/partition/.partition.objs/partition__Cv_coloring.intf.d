lib/partition/cv_coloring.mli: State
