lib/partition/stage1.mli: Graphlib State
