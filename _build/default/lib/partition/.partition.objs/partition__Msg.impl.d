lib/partition/msg.ml: Congest List
