lib/partition/en_partition.mli: Graphlib State
