lib/partition/msg.mli:
