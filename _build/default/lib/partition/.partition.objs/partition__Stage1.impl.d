lib/partition/stage1.ml: Congest Cv_coloring Forest_decomp Graph Graphlib List Merge Prims State Traversal
