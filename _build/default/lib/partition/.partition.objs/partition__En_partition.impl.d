lib/partition/en_partition.ml: Array Graph Graphlib List Msg Prims Random State
