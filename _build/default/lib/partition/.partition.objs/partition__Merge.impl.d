lib/partition/merge.ml: Array Cv_coloring Graphlib List Msg Prims State
