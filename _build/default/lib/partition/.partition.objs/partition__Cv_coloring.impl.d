lib/partition/cv_coloring.ml: Array Graphlib List Prims State
