lib/partition/forest_decomp.ml: Array List Prims Printf State
