lib/partition/random_partition.mli: Graphlib State
