lib/partition/reference.mli: Graphlib
