lib/partition/state.ml: Array Congest Graph Graphlib Hashtbl List Option Printf
