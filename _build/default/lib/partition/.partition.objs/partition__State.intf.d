lib/partition/state.mli: Congest Graphlib
