lib/partition/merge.mli: State
