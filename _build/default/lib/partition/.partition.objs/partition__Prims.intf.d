lib/partition/prims.mli: Congest Msg Random State
