lib/partition/prims.ml: Array Congest Graph Graphlib List Msg Printf State
