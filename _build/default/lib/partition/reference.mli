(** Centralized reference implementation of Stage I, operating directly on
    the auxiliary weighted graphs [G_i] as the paper describes them
    (Sections 2.1.1–2.1.2), with the same deterministic tie-breaking as the
    distributed emulation: Barenboim–Elkin peeling with orientation by
    (deactivation round, root id), heaviest-out-edge selection with ties to
    the smaller root, the identical Cole–Vishkin iteration schedule, CHW
    marking, shallow-tree levels and star contraction.

    Because every choice is deterministic and mirrored, the emulation in
    {!Stage1} must produce *identical* partitions — the differential test
    the test suite runs on random planar inputs.  Disagreements indicate a
    bug in one of the two. *)

type result = {
  part : int array;  (** per vertex: part root id, [P_{t+1}] *)
  cuts : int list;  (** cut weight after each phase, chronological *)
  rejected : bool;  (** some auxiliary graph exceeded the arboricity bound *)
  phases : int;
}

(** Mirror of {!Stage1.run} (deterministic variant, [alpha = 3]). *)
val run :
  ?alpha:int -> ?stop_when_met:bool -> Graphlib.Graph.t -> eps:float -> result
