(** Wire messages shared by the partition and tester sub-protocols.
    Payloads are flat int lists; the [tag] identifies the sub-step so that
    lockstep violations surface as failures instead of silent
    cross-talk. *)

type t =
  | Root of int  (** neighbor-part-root refresh *)
  | Down of int * int list  (** (tag, payload): broadcast along part trees *)
  | Up of int * int list  (** (tag, payload): convergecast along part trees *)
  | Bdry of int * int list  (** (tag, payload): across cut or intra edges *)

(** Wire size: a small header plus the cost of each integer at its own
    magnitude. *)
val bits : t -> int

(** Bits of one payload integer. *)
val int_cost : int -> int

val list_cost : int list -> int
