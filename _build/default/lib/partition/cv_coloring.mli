(** Cole–Vishkin / Goldberg–Plotkin–Shannon 3-coloring of the selected
    pseudo-forest [F_i], emulated at the part level (Sub-step 2a of the
    merging step).

    Each part's F-parent is its [fsel_target]; colors travel from the
    parent part's root down its tree, across the designated boundary edge,
    and back up the child part's tree — three engine runs per iteration.
    After [O(log* n)] bit-shrinking iterations and three shift-down /
    recolor steps, every part's [color] lies in [{1, 2, 3}] and adjacent
    parts of [F_i] differ; [parent_color] is filled at every root.  Works
    on directed pseudo-forests (the randomized variant's selection can
    create directed cycles). *)

val run : State.t -> budget:int -> unit

(** Number of bit-shrinking iterations needed to go from id-colors over
    universe [n] to fewer than 8 colors. *)
val iterations_for : int -> int

(** One Cole–Vishkin color-shrinking step: [2k + bit] at the lowest
    differing bit position [k] (requires [own <> parent]).  Exposed so the
    centralized {!Reference} mirrors the emulation exactly. *)
val cv_step : int -> int -> int

(** Engine runs consumed by [run] (for nominal-schedule accounting):
    each iteration and each shift-down costs a broadcast, a boundary round
    and a convergecast. *)
val steps_for : int -> int
