(** The alternative Stage I mentioned at the end of Section 1.1: the
    Elkin–Neiman / Miller–Peng–Xu exponential-shift clustering, adapted (as
    in [13, 14]) to produce, with high probability, a partition into parts
    of diameter [O(log n / eps)] with at most [eps * m] edges between
    parts.  Plugging it into the tester gives an
    [O(log^2 n * poly(1/eps))]-round algorithm instead of Stage I's
    [O(log n * poly(1/eps))] — the comparison experiment in the bench
    harness.

    Every vertex draws an exponential shift [r_v] with rate [beta = eps/2];
    shifted BFS waves run for [R = O(log n / eps)] rounds; each vertex joins
    the cluster of the best wave it hears, its first-contact edge becoming
    the part-tree edge.  An edge ends up cut when its endpoints' best
    shifted distances differ by enough, which happens with probability
    [O(beta)] — so the expected cut is [O(eps * m)].

    Writes the resulting partition into a fresh {!State.t} (part roots,
    parent/children trees), ready for {!Tester.Stage2}. *)

type result = {
  state : State.t;
  cut : int;
  clusters : int;
  radius_bound : int;  (** the R rounds the waves were given *)
  capped : int;  (** vertices whose shift exceeded R (probability o(1)) *)
}

val run : ?seed:int -> Graphlib.Graph.t -> eps:float -> result
