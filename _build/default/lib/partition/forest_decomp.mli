(** The forest-decomposition step of each Stage I phase (Sections 2.1.1 and
    2.1.5): the Barenboim–Elkin peeling process run on the auxiliary graph
    [G_i], emulated on [G] with super-rounds.

    A part deactivates when at most [3 * alpha] of its neighboring parts
    are still active; on deactivation its root records the active-neighbor
    snapshot (with edge multiplicities — the weights of [G_i]), and one
    super-round later it orients its auxiliary edges: toward parts that
    outlived it, and by root id among parts that deactivated in the same
    super-round.  Parts still active after [super_rounds] super-rounds are
    evidence that [G_i] has arboricity exceeding [alpha]: their roots
    reject.

    On return, each deactivated part root [r] carries [deact_round],
    [snapshot] and [out_edges].  The simulation stops early once every part
    is oriented (the remaining super-rounds of the paper's fixed schedule
    would be no-ops); the caller accounts the nominal schedule.

    @return the number of super-rounds actually simulated. *)
val run : State.t -> alpha:int -> super_rounds:int -> budget:int -> int

(** [super_rounds_for n] is the [Theta (log n)] super-round bound under
    which every bounded-arboricity graph fully deactivates (a third of the
    live parts deactivate per super-round). *)
val super_rounds_for : int -> int
