(** The Theorem 2 lower-bound construction (Section 3): graphs that are
    [Omega (1)]-far from planarity (more generally from [K_k]-minor
    freeness) yet contain no cycle shorter than [Omega (log n)] — so every
    [o (log n)]-round one-sided tester sees a tree around each node and
    must accept.

    Claims 11–12 use [G (n, p)] with [p = 1000 k^2 / n] for the analysis'
    convenience; at laptop scale we take [p = c / n] with a moderate [c]
    and *certify* the two properties the proof needs by direct
    computation: farness via the Euler bound and girth by truncated BFS
    (see DESIGN.md). *)

type t = {
  graph : Graphlib.Graph.t;
  removed : int;  (** edges removed to kill short cycles *)
  girth : int option;  (** measured girth of the result *)
  girth_target : int;  (** the [log n / c] bound requested *)
  euler_far : float;  (** certified relative distance from planarity *)
}

(** [build rng ~n ~avg_degree ~girth_factor] samples [G (n, c/n)] with
    [c = avg_degree], removes one edge from each cycle shorter than
    [girth_factor * log2 n], and measures what remains. *)
val build :
  Random.State.t -> n:int -> avg_degree:float -> girth_factor:float -> t

(** Radius below which every node's view of [g] is a tree: [(girth-1)/2].
    A one-sided error algorithm running fewer rounds cannot distinguish
    the graph from a forest, hence must accept. *)
val indistinguishability_radius : t -> int
