lib/lowerbound/construction.mli: Graphlib Random
