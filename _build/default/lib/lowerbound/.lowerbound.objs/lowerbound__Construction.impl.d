lib/lowerbound/construction.ml: Generators Girth Graph Graphlib Planarity
