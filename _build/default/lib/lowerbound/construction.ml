open Graphlib

type t = {
  graph : Graph.t;
  removed : int;
  girth : int option;
  girth_target : int;
  euler_far : float;
}

let build rng ~n ~avg_degree ~girth_factor =
  let p = avg_degree /. float_of_int n in
  let g0 = Generators.gnp rng n p in
  (* Claim 12's short-cycle threshold is [log n / c (k)] with
     [c (k) = Theta (log k)]: logarithm base = the average degree, so that
     the expected number of removals stays a small fraction of [m]. *)
  let girth_target =
    max 4
      (int_of_float
         (ceil
            (girth_factor
            *. (log (float_of_int (max n 2)) /. log (max avg_degree 2.0)))))
  in
  let g, removed = Girth.break_short_cycles g0 girth_target in
  {
    graph = g;
    removed;
    girth = Girth.girth_upto g (4 * girth_target);
    girth_target;
    euler_far = Planarity.Distance.eps_far_lower_bound g;
  }

let indistinguishability_radius t =
  match t.girth with
  | None -> max_int
  | Some girth -> (girth - 1) / 2
