open Graphlib

type t = {
  rotations : int array array;
  succ_at_src : int array; (* dart -> next dart in rotation of its source *)
}

let rev d = d lxor 1
let edge_of_dart d = d / 2

let src g d =
  let u, v = Graph.edge g (edge_of_dart d) in
  if d land 1 = 0 then u else v

let dst g d = src g (rev d)

let dart_of g ~src:s e =
  let u, v = Graph.edge g e in
  if s = u then 2 * e
  else if s = v then (2 * e) + 1
  else invalid_arg "Rotation.dart_of: vertex not on edge"

let make g rotations =
  let n = Graph.n g and m = Graph.m g in
  if Array.length rotations <> n then
    invalid_arg "Rotation.make: wrong number of vertices";
  let seen = Array.make (2 * m) false in
  Array.iteri
    (fun v rot ->
      if Array.length rot <> Graph.degree g v then
        invalid_arg "Rotation.make: rotation size <> degree";
      Array.iter
        (fun d ->
          if d < 0 || d >= 2 * m then invalid_arg "Rotation.make: bad dart";
          if src g d <> v then
            invalid_arg "Rotation.make: dart does not leave its vertex";
          if seen.(d) then invalid_arg "Rotation.make: duplicate dart";
          seen.(d) <- true)
        rot)
    rotations;
  let succ_at_src = Array.make (2 * m) (-1) in
  Array.iter
    (fun rot ->
      let k = Array.length rot in
      for i = 0 to k - 1 do
        succ_at_src.(rot.(i)) <- rot.((i + 1) mod k)
      done)
    rotations;
  { rotations; succ_at_src }

let of_adjacency_order g =
  let rotations =
    Array.init (Graph.n g) (fun v ->
        Array.map (fun (_, e) -> dart_of g ~src:v e) (Graph.incident g v))
  in
  make g rotations

let rotation t v = t.rotations.(v)
let succ t d = t.succ_at_src.(d)

(* The face permutation: the dart after [d] on its face is the successor of
   [rev d] in the rotation at [dst d]. *)
let face_next t d = t.succ_at_src.(rev d)

let fold_faces f init g t =
  let m = Graph.m g in
  let visited = Array.make (2 * m) false in
  let acc = ref init in
  for d0 = 0 to (2 * m) - 1 do
    if not visited.(d0) then begin
      let face = ref [] in
      let d = ref d0 in
      let continue = ref true in
      while !continue do
        visited.(!d) <- true;
        face := !d :: !face;
        d := face_next t !d;
        if !d = d0 then continue := false
      done;
      acc := f !acc (List.rev !face)
    end
  done;
  !acc

let count_faces g t = fold_faces (fun acc _ -> acc + 1) 0 g t
let faces g t = List.rev (fold_faces (fun acc f -> f :: acc) [] g t)

(* Per-component Euler: a component with edges has n_i - m_i + f_i = 2 in a
   planar embedding (and strictly less otherwise, since higher genus only
   loses faces); an isolated vertex has no darts, hence no counted face, and
   contributes exactly 1 to n - m + f. *)
let is_planar_embedding g t =
  let comp, c = Traversal.components g in
  let has_edge = Array.make c false in
  Graph.iter_edges (fun _ u _ -> has_edge.(comp.(u)) <- true) g;
  let isolated = ref 0 and edged = ref 0 in
  Array.iter (fun b -> if b then incr edged) has_edge;
  for v = 0 to Graph.n g - 1 do
    if not has_edge.(comp.(v)) then incr isolated
  done;
  let f = count_faces g t in
  Graph.n g - Graph.m g + f = (2 * !edged) + !isolated

let genus g t =
  if not (Traversal.is_connected g) then
    invalid_arg "Rotation.genus: disconnected graph";
  let f = count_faces g t in
  (2 - (Graph.n g - Graph.m g + f)) / 2
