(** The left-right planarity test (de Fraysseix–Ossona de Mendez–
    Rosenstiehl, as presented by Brandes), with combinatorial-embedding
    extraction.  Linear time up to sorting adjacency lists by nesting
    depth. *)

(** [is_planar g] decides planarity. *)
val is_planar : Graphlib.Graph.t -> bool

(** [embed g] is a planar rotation system of [g], or [None] when [g] is not
    planar.  The returned embedding always satisfies
    [Rotation.is_planar_embedding]. *)
val embed : Graphlib.Graph.t -> Rotation.t option

(** [embed_or_adjacency g] is a planar embedding when one exists, and the
    arbitrary adjacency-order rotation otherwise — exactly the behaviour the
    tester's Stage II needs from the (substituted) Ghaffari–Haeupler
    embedding step.  The boolean tells whether the embedding is planar. *)
val embed_or_adjacency : Graphlib.Graph.t -> Rotation.t * bool
