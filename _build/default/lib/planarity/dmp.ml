open Graphlib

(* Biconnected components by the classic lowpoint algorithm, iterative. *)
let blocks g =
  let n = Graph.n g in
  let disc = Array.make n (-1) in
  let low = Array.make n 0 in
  let timer = ref 0 in
  let edge_stack = Stack.create () in
  let out = ref [] in
  let pop_block until_edge =
    let acc = ref [] in
    let continue = ref true in
    while !continue do
      let e = Stack.pop edge_stack in
      acc := e :: !acc;
      if e = until_edge then continue := false
    done;
    out := !acc :: !out
  in
  for start = 0 to n - 1 do
    if disc.(start) < 0 then begin
      (* Frame: (v, edge to parent, incidence index). *)
      let frames = Stack.create () in
      disc.(start) <- !timer;
      low.(start) <- !timer;
      incr timer;
      Stack.push (start, -1, ref 0) frames;
      while not (Stack.is_empty frames) do
        let v, pe, idx = Stack.top frames in
        let inc = Graph.incident g v in
        if !idx >= Array.length inc then begin
          ignore (Stack.pop frames);
          match Stack.top frames with
          | exception Stack.Empty -> ()
          | u, _, _ ->
              low.(u) <- min low.(u) low.(v);
              if low.(v) >= disc.(u) then pop_block pe
        end
        else begin
          let w, e = inc.(!idx) in
          incr idx;
          if e <> pe then
            if disc.(w) < 0 then begin
              Stack.push e edge_stack;
              disc.(w) <- !timer;
              low.(w) <- !timer;
              incr timer;
              Stack.push (w, e, ref 0) frames
            end
            else if disc.(w) < disc.(v) then begin
              Stack.push e edge_stack;
              low.(v) <- min low.(v) disc.(w)
            end
        end
      done
    end
  done;
  !out

(* A face of the partial embedding: a simple vertex cycle. *)
module Face = struct
  type t = { cycle : int list; verts : (int, unit) Hashtbl.t }

  let of_cycle cycle =
    let verts = Hashtbl.create (2 * List.length cycle) in
    List.iter (fun v -> Hashtbl.replace verts v ()) cycle;
    { cycle; verts }

  let contains f v = Hashtbl.mem f.verts v
end

(* Split face [f] along [path = a :: interior @ [b]] with [a <> b], both on
   [f] and [interior] disjoint from it. *)
let split_face f path =
  let a = List.hd path in
  let b = List.nth path (List.length path - 1) in
  let interior =
    List.filteri (fun i _ -> i > 0 && i < List.length path - 1) path
  in
  let rec rotate acc = function
    | [] -> invalid_arg "split_face: path start not on face"
    | x :: rest when x = a -> (x :: rest) @ List.rev acc
    | x :: rest -> rotate (x :: acc) rest
  in
  let cyc = rotate [] f.Face.cycle in
  let rec cut pre = function
    | [] -> invalid_arg "split_face: path end not on face"
    | x :: rest when x = b -> (List.rev pre, rest)
    | x :: rest -> cut (x :: pre) rest
  in
  let before_b, after_b = cut [] (List.tl cyc) in
  let f1 = Face.of_cycle ((a :: before_b) @ (b :: List.rev interior)) in
  let f2 = Face.of_cycle ((b :: after_b) @ (a :: interior)) in
  (f1, f2)

(* Find a cycle: grow a forest with union-find; the first edge closing a
   cycle, plus the forest path between its endpoints, is one. *)
let find_cycle g =
  let n = Graph.n g in
  let uf = Union_find.create n in
  let forest = ref [] in
  let closing = ref None in
  (try
     Graph.iter_edges
       (fun _ u v ->
         if Union_find.union uf u v then forest := (u, v) :: !forest
         else begin
           closing := Some (u, v);
           raise Exit
         end)
       g
   with Exit -> ());
  match !closing with
  | None -> None
  | Some (u, v) ->
      let forest_graph = Graph.make ~n !forest in
      let t = Traversal.bfs forest_graph u in
      let rec climb x acc =
        if x = u then u :: acc else climb t.Traversal.parent.(x) (x :: acc)
      in
      (* Cycle as vertex list [u; ...; v]; the closing edge joins v back to
         u. *)
      Some (climb v [])

(* One fragment of g relative to the embedded subgraph:
   [path] is a route between two distinct attachment vertices whose interior
   avoids embedded vertices, and [admissible] the faces containing all
   attachments. *)
type fragment = { attachments : int list; path : int list }

(* Fragments of g relative to (in_h, embedded_edge). *)
let fragments g in_h embedded_edge =
  let n = Graph.n g in
  let frags = ref [] in
  (* Singleton chord fragments. *)
  Graph.iter_edges
    (fun e u v ->
      if (not embedded_edge.(e)) && in_h.(u) && in_h.(v) then
        frags := { attachments = [ u; v ]; path = [ u; v ] } :: !frags)
    g;
  (* Component fragments: BFS over non-embedded vertices. *)
  let seen = Array.make n false in
  for start = 0 to n - 1 do
    if (not in_h.(start)) && not seen.(start) then begin
      let comp = ref [] in
      let attach = Hashtbl.create 8 in
      let q = Queue.create () in
      seen.(start) <- true;
      Queue.add start q;
      while not (Queue.is_empty q) do
        let v = Queue.pop q in
        comp := v :: !comp;
        Array.iter
          (fun (w, _) ->
            if in_h.(w) then Hashtbl.replace attach w ()
            else if not seen.(w) then begin
              seen.(w) <- true;
              Queue.add w q
            end)
          (Graph.incident g v)
      done;
      let attachments = Hashtbl.fold (fun v () acc -> v :: acc) attach [] in
      (* Path between two attachments through the component: BFS from an
         attachment [a], entering only component vertices, stopping at the
         first embedded vertex [b <> a]. *)
      let path =
        match attachments with
        | a :: _ :: _ ->
            let parent = Array.make n (-1) in
            let inside = Hashtbl.create 16 in
            List.iter (fun v -> Hashtbl.replace inside v ()) !comp;
            let q = Queue.create () in
            let found = ref None in
            Array.iter
              (fun (w, _) ->
                if Hashtbl.mem inside w && parent.(w) < 0 then begin
                  parent.(w) <- a;
                  Queue.add w q
                end)
              (Graph.incident g a);
            (try
               while not (Queue.is_empty q) do
                 let v = Queue.pop q in
                 Array.iter
                   (fun (w, _) ->
                     if in_h.(w) then begin
                       if w <> a && !found = None then begin
                         let rec climb x acc =
                           if x = a then a :: acc else climb parent.(x) (x :: acc)
                         in
                         found := Some (climb v [ w ]);
                         raise Exit
                       end
                     end
                     else if parent.(w) < 0 then begin
                       parent.(w) <- v;
                       Queue.add w q
                     end)
                   (Graph.incident g v)
               done
             with Exit -> ());
            (match !found with
            | Some p -> p
            | None ->
                (* Unreachable in biconnected inputs: >= 2 attachments are
                   always joined through the component. *)
                invalid_arg "Dmp: fragment path not found")
        | _ -> invalid_arg "Dmp: fragment with < 2 attachments (not 2-connected)"
      in
      frags := { attachments; path } :: !frags
    end
  done;
  !frags

(* DMP main loop on a biconnected graph with at least one cycle. *)
let planar_biconnected g =
  let n = Graph.n g and m = Graph.m g in
  if n >= 3 && m > (3 * n) - 6 then false
  else
    match find_cycle g with
    | None -> true (* forest *)
    | Some cyc ->
        let in_h = Array.make n false in
        let embedded_edge = Array.make m false in
        List.iter (fun v -> in_h.(v) <- true) cyc;
        let mark_path_edges path =
          let rec go = function
            | u :: (v :: _ as rest) ->
                embedded_edge.(Graph.find_edge g u v) <- true;
                go rest
            | _ -> ()
          in
          go path
        in
        mark_path_edges (cyc @ [ List.hd cyc ]);
        let faces = ref [ Face.of_cycle cyc; Face.of_cycle (List.rev cyc) ] in
        let embedded_count = ref (List.length cyc) in
        let result = ref None in
        while !result = None do
          if !embedded_count = m then result := Some true
          else begin
            let frags = fragments g in_h embedded_edge in
            (* Sanity: progress requires at least one fragment. *)
            assert (frags <> []);
            let with_admissible =
              List.map
                (fun fr ->
                  let adm =
                    List.filter
                      (fun f ->
                        List.for_all (Face.contains f) fr.attachments)
                      !faces
                  in
                  (fr, adm))
                frags
            in
            match
              List.find_opt (fun (_, adm) -> adm = []) with_admissible
            with
            | Some _ -> result := Some false
            | None ->
                let fr, adm =
                  match
                    List.find_opt
                      (fun (_, adm) -> List.length adm = 1)
                      with_admissible
                  with
                  | Some x -> x
                  | None -> List.hd with_admissible
                in
                let face = List.hd adm in
                let f1, f2 = split_face face fr.path in
                faces := f1 :: f2 :: List.filter (fun f -> f != face) !faces;
                mark_path_edges fr.path;
                List.iter
                  (fun v ->
                    if not in_h.(v) then in_h.(v) <- true)
                  fr.path;
                embedded_count :=
                  Graph.fold_edges
                    (fun acc e _ _ -> if embedded_edge.(e) then acc + 1 else acc)
                    0 g
          end
        done;
        Option.get !result

let is_planar g =
  let bs = blocks g in
  List.for_all
    (fun edge_ids ->
      match edge_ids with
      | [] | [ _ ] -> true
      | _ ->
          (* Build the local subgraph of this block. *)
          let verts = Hashtbl.create 16 in
          let order = ref [] in
          List.iter
            (fun e ->
              let u, v = Graph.edge g e in
              if not (Hashtbl.mem verts u) then begin
                Hashtbl.add verts u (Hashtbl.length verts);
                order := u :: !order
              end;
              if not (Hashtbl.mem verts v) then begin
                Hashtbl.add verts v (Hashtbl.length verts);
                order := v :: !order
              end)
            edge_ids;
          let local =
            Graph.make ~n:(Hashtbl.length verts)
              (List.map
                 (fun e ->
                   let u, v = Graph.edge g e in
                   (Hashtbl.find verts u, Hashtbl.find verts v))
                 edge_ids)
          in
          planar_biconnected local)
    bs
