open Graphlib

let has_triangle g =
  (* For each edge (u, v) intersect neighbor lists; fine at test scales. *)
  let result = ref false in
  (try
     Graph.iter_edges
       (fun _ u v ->
         let nu = Graph.neighbors g u and nv = Graph.neighbors g v in
         let i = ref 0 and j = ref 0 in
         while !i < Array.length nu && !j < Array.length nv do
           if nu.(!i) = nv.(!j) then begin
             result := true;
             raise Exit
           end
           else if nu.(!i) < nv.(!j) then incr i
           else incr j
         done)
       g
   with Exit -> ());
  !result

let euler_lower_bound g =
  let comp, c = Traversal.components g in
  let nv = Array.make c 0 and ne = Array.make c 0 in
  Array.iter (fun ci -> nv.(ci) <- nv.(ci) + 1) comp;
  Graph.iter_edges (fun _ u _ -> ne.(comp.(u)) <- ne.(comp.(u)) + 1) g;
  (* Component-wise: planar needs m_i <= 3 n_i - 6 (n_i >= 3); when the
     whole graph is triangle-free, m_i <= 2 n_i - 4 (n_i >= 3). *)
  let tf = not (has_triangle g) in
  let total = ref 0 in
  for ci = 0 to c - 1 do
    if nv.(ci) >= 3 then begin
      let cap = if tf then (2 * nv.(ci)) - 4 else (3 * nv.(ci)) - 6 in
      if ne.(ci) > cap then total := !total + (ne.(ci) - cap)
    end
  done;
  !total

let greedy_upper_bound ?rng g =
  let m = Graph.m g in
  let order = Array.init m (fun i -> i) in
  (match rng with
  | Some rng ->
      for i = m - 1 downto 1 do
        let j = Random.State.int rng (i + 1) in
        let t = order.(i) in
        order.(i) <- order.(j);
        order.(j) <- t
      done
  | None -> ());
  let kept = ref [] in
  let skipped = ref 0 in
  Array.iter
    (fun e ->
      let u, v = Graph.edge g e in
      let candidate = Graph.make ~n:(Graph.n g) ((u, v) :: !kept) in
      if Lr.is_planar candidate then kept := (u, v) :: !kept
      else incr skipped)
    order;
  !skipped

let eps_far_lower_bound g =
  if Graph.m g = 0 then 0.0
  else float_of_int (euler_lower_bound g) /. float_of_int (Graph.m g)

let is_certified_far g ~eps = eps_far_lower_bound g >= eps
