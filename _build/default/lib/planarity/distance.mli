(** Bounds on the edit distance to planarity (number of edges whose removal
    makes the graph planar), and the derived relative distance used by the
    [eps]-far definition of the paper (distance / m). *)

(** [euler_lower_bound g] is a certified lower bound: any simple planar
    graph on [n >= 3] vertices has at most [3n - 6] edges, so at least
    [m - (3n - 6)] edges must go.  Refined per connected component and, for
    triangle-free components, via the bipartite-style bound [2n - 4]. *)
val euler_lower_bound : Graphlib.Graph.t -> int

(** [greedy_upper_bound ?rng g] builds a maximal planar subgraph by greedy
    edge insertion (each insertion re-checked with the left-right test) and
    returns the number of edges left out — an upper bound on the distance.
    With [rng], edges are tried in random order. *)
val greedy_upper_bound : ?rng:Random.State.t -> Graphlib.Graph.t -> int

(** [eps_far_lower_bound g] is [euler_lower_bound g / m]: the graph is
    certified at least this far from planar.  [0.] when [m = 0]. *)
val eps_far_lower_bound : Graphlib.Graph.t -> float

(** [is_certified_far g ~eps] holds when the Euler bound alone proves the
    graph is [eps]-far from planar. *)
val is_certified_far : Graphlib.Graph.t -> eps:float -> bool
