open Graphlib

(* Darts follow the Rotation convention: dart [2e] leaves the smaller
   endpoint of edge [e], dart [2e + 1] the larger.  The algorithm orients
   every edge in DFS direction and works on those oriented darts. *)

type interval = { mutable low : int; mutable high : int } (* darts, -1 = none *)

type conflict_pair = { left : interval; right : interval }

exception Nonplanar

let interval_empty i = i.low = -1 && i.high = -1

let pair_empty p = interval_empty p.left && interval_empty p.right

let swap_pair p =
  let ll = p.left.low and lh = p.left.high in
  p.left.low <- p.right.low;
  p.left.high <- p.right.high;
  p.right.low <- ll;
  p.right.high <- lh

type state = {
  g : Graph.t;
  height : int array; (* per vertex, -1 = unvisited *)
  parent_edge : int array; (* per vertex, dart or -1 *)
  orient : int array; (* per undirected edge: its DFS-oriented dart, -1 *)
  lowpt : int array; (* per dart *)
  lowpt2 : int array;
  nesting_depth : int array;
  ref_edge : int array; (* per dart, dart or -1 *)
  side : int array; (* per dart, +1 / -1 *)
  lowpt_edge : int array; (* per dart, dart or -1 *)
  stack_bottom : conflict_pair option array; (* per dart *)
  mutable stack : conflict_pair list;
  ordered_adj : int array array; (* per vertex: outgoing darts by nesting *)
  roots : int list ref;
}

let dart_src s d = Rotation.src s.g d
let dart_dst s d = Rotation.dst s.g d

let make_state g =
  let n = Graph.n g and m = Graph.m g in
  {
    g;
    height = Array.make n (-1);
    parent_edge = Array.make n (-1);
    orient = Array.make m (-1);
    lowpt = Array.make (2 * m) 0;
    lowpt2 = Array.make (2 * m) 0;
    nesting_depth = Array.make (2 * m) 0;
    ref_edge = Array.make (2 * m) (-1);
    side = Array.make (2 * m) 1;
    lowpt_edge = Array.make (2 * m) (-1);
    stack_bottom = Array.make (2 * m) None;
    stack = [];
    ordered_adj = Array.make n [||];
    roots = ref [];
  }

(* Phase 1: DFS orientation; computes height, lowpt, lowpt2, nesting_depth.
   Iterative to survive deep DFS trees. *)
let dfs_orientation s root =
  let g = s.g in
  s.height.(root) <- 0;
  (* Frame: (v, incidence index).  Post-processing of a tree dart happens
     when control returns to the parent frame. *)
  let stack = Stack.create () in
  Stack.push (root, ref 0) stack;
  let update_parent_lowpts v vw =
    let e = s.parent_edge.(v) in
    if e >= 0 then
      if s.lowpt.(vw) < s.lowpt.(e) then begin
        s.lowpt2.(e) <- min s.lowpt.(e) s.lowpt2.(vw);
        s.lowpt.(e) <- s.lowpt.(vw)
      end
      else if s.lowpt.(vw) > s.lowpt.(e) then
        s.lowpt2.(e) <- min s.lowpt2.(e) s.lowpt.(vw)
      else s.lowpt2.(e) <- min s.lowpt2.(e) s.lowpt2.(vw)
  in
  let finish_dart v vw =
    s.nesting_depth.(vw) <- 2 * s.lowpt.(vw);
    if s.lowpt2.(vw) < s.height.(v) then
      s.nesting_depth.(vw) <- s.nesting_depth.(vw) + 1;
    update_parent_lowpts v vw
  in
  while not (Stack.is_empty stack) do
    let v, idx = Stack.top stack in
    let inc = Graph.incident g v in
    if !idx >= Array.length inc then begin
      ignore (Stack.pop stack);
      (* Returning into the parent: finish the tree dart into v. *)
      let pe = s.parent_edge.(v) in
      if pe >= 0 then finish_dart (dart_src s pe) pe
    end
    else begin
      let w, e = inc.(!idx) in
      incr idx;
      if s.orient.(e) = -1 then begin
        let vw = Rotation.dart_of g ~src:v e in
        s.orient.(e) <- vw;
        s.lowpt.(vw) <- s.height.(v);
        s.lowpt2.(vw) <- s.height.(v);
        if s.height.(w) = -1 then begin
          (* tree dart; finished when w's frame pops *)
          s.parent_edge.(w) <- vw;
          s.height.(w) <- s.height.(v) + 1;
          Stack.push (w, ref 0) stack
        end
        else begin
          (* back dart *)
          s.lowpt.(vw) <- s.height.(w);
          finish_dart v vw
        end
      end
    end
  done

let top_of_stack s = match s.stack with [] -> None | p :: _ -> Some p

let pop_stack s =
  match s.stack with
  | [] -> failwith "Lr: pop on empty conflict stack"
  | p :: rest ->
      s.stack <- rest;
      p

let conflicting s i b = (not (interval_empty i)) && s.lowpt.(i.high) > s.lowpt.(b)

let lowest s p =
  if interval_empty p.left then s.lowpt.(p.right.low)
  else if interval_empty p.right then s.lowpt.(p.left.low)
  else min s.lowpt.(p.left.low) s.lowpt.(p.right.low)

let add_constraints s ei e =
  let p = { left = { low = -1; high = -1 }; right = { low = -1; high = -1 } } in
  (* Merge return edges of e_i into p.right. *)
  let continue = ref true in
  while !continue do
    let q = pop_stack s in
    if not (interval_empty q.left) then swap_pair q;
    if not (interval_empty q.left) then raise Nonplanar;
    if s.lowpt.(q.right.low) > s.lowpt.(e) then begin
      (* merge intervals *)
      if interval_empty p.right then p.right.high <- q.right.high
      else s.ref_edge.(p.right.low) <- q.right.high;
      p.right.low <- q.right.low
    end
    else
      (* align *)
      s.ref_edge.(q.right.low) <- s.lowpt_edge.(e);
    (match (top_of_stack s, s.stack_bottom.(ei)) with
    | None, None -> continue := false
    | Some a, Some b when a == b -> continue := false
    | _ -> ())
  done;
  (* Merge conflicting return edges of e_1 .. e_{i-1} into p.left. *)
  let keeps_conflicting () =
    match top_of_stack s with
    | None -> false
    | Some q -> conflicting s q.left ei || conflicting s q.right ei
  in
  while keeps_conflicting () do
    let q = pop_stack s in
    if conflicting s q.right ei then swap_pair q;
    if conflicting s q.right ei then raise Nonplanar;
    (* merge interval below lowpt (e_i) into p.right *)
    if p.right.low <> -1 then s.ref_edge.(p.right.low) <- q.right.high;
    if q.right.low <> -1 then p.right.low <- q.right.low;
    if interval_empty p.left then p.left.high <- q.left.high
    else s.ref_edge.(p.left.low) <- q.left.high;
    p.left.low <- q.left.low
  done;
  if not (pair_empty p) then s.stack <- p :: s.stack

let remove_back_edges s e =
  let u = dart_src s e in
  (* Drop entire conflict pairs whose lowest return point is u. *)
  let continue = ref true in
  while !continue do
    match s.stack with
    | p :: _ when lowest s p = s.height.(u) ->
        let p = pop_stack s in
        if p.left.low <> -1 then s.side.(p.left.low) <- -1
    | _ -> continue := false
  done;
  (* Trim the next conflict pair. *)
  (match s.stack with
  | [] -> ()
  | _ ->
      let p = pop_stack s in
      while p.left.high <> -1 && dart_dst s p.left.high = u do
        p.left.high <- s.ref_edge.(p.left.high)
      done;
      if p.left.high = -1 && p.left.low <> -1 then begin
        s.ref_edge.(p.left.low) <- p.right.low;
        s.side.(p.left.low) <- -1;
        p.left.low <- -1
      end;
      while p.right.high <> -1 && dart_dst s p.right.high = u do
        p.right.high <- s.ref_edge.(p.right.high)
      done;
      if p.right.high = -1 && p.right.low <> -1 then begin
        s.ref_edge.(p.right.low) <- p.left.low;
        s.side.(p.right.low) <- -1;
        p.right.low <- -1
      end;
      s.stack <- p :: s.stack);
  (* The side of e is the side of a highest return edge. *)
  if s.lowpt.(e) < s.height.(u) then begin
    match top_of_stack s with
    | None -> ()
    | Some top ->
        let hl = top.left.high and hr = top.right.high in
        if hl <> -1 && (hr = -1 || s.lowpt.(hl) > s.lowpt.(hr)) then
          s.ref_edge.(e) <- hl
        else s.ref_edge.(e) <- hr
  end

(* Phase 2: testing.  Iterative DFS over [ordered_adj]. *)
let dfs_testing s root =
  (* Frame: (v, index into ordered_adj v, dart being expanded or -1). *)
  let stack = Stack.create () in
  Stack.push (root, ref 0, ref (-1)) stack;
  let after_child v ei =
    (* Steps shared by the tree- and back-dart cases once ei is done. *)
    if s.lowpt.(ei) < s.height.(v) then begin
      let e = s.parent_edge.(v) in
      if ei = s.ordered_adj.(v).(0) then
        (if e >= 0 then s.lowpt_edge.(e) <- s.lowpt_edge.(ei))
      else add_constraints s ei e
    end
  in
  while not (Stack.is_empty stack) do
    let v, idx, pending = Stack.top stack in
    if !pending >= 0 then begin
      (* A child's subtree just finished. *)
      let ei = !pending in
      pending := -1;
      after_child v ei
    end;
    let adj = s.ordered_adj.(v) in
    if !idx >= Array.length adj then begin
      ignore (Stack.pop stack);
      let e = s.parent_edge.(v) in
      if e >= 0 then begin
        remove_back_edges s e;
        match Stack.top stack with
        | exception Stack.Empty -> ()
        | _, _, parent_pending -> parent_pending := e
      end
    end
    else begin
      let ei = adj.(!idx) in
      incr idx;
      let w = dart_dst s ei in
      s.stack_bottom.(ei) <- top_of_stack s;
      if ei = s.parent_edge.(w) then
        (* tree dart: descend; [after_child] runs when w's frame pops *)
        Stack.push (w, ref 0, ref (-1)) stack
      else begin
        (* back dart *)
        s.lowpt_edge.(ei) <- ei;
        s.stack <-
          { left = { low = -1; high = -1 }; right = { low = ei; high = ei } }
          :: s.stack;
        after_child v ei
      end
    end
  done

(* Sign resolution: side (e) *= side (ref e), resolving ref chains.
   Iterative over the chain. *)
let sign s e =
  let chain = ref [] in
  let d = ref e in
  while !d <> -1 && s.ref_edge.(!d) <> -1 do
    chain := !d :: !chain;
    d := s.ref_edge.(!d)
  done;
  (* !d has no ref: its side is final.  Unwind. *)
  let acc = ref s.side.(!d) in
  List.iter
    (fun x ->
      s.side.(x) <- s.side.(x) * !acc;
      s.ref_edge.(x) <- -1;
      acc := s.side.(x))
    !chain;
  s.side.(e)

(* Doubly-linked rotations used while building the embedding. *)
type emb = {
  nxt : int array; (* per dart *)
  prv : int array;
  first : int array; (* per vertex, dart or -1 *)
  present : bool array;
}

let emb_create n m =
  {
    nxt = Array.make (2 * m) (-1);
    prv = Array.make (2 * m) (-1);
    first = Array.make n (-1);
    present = Array.make (2 * m) false;
  }

let emb_add_solo emb v d =
  emb.first.(v) <- d;
  emb.nxt.(d) <- d;
  emb.prv.(d) <- d;
  emb.present.(d) <- true

let emb_add_after emb ref_d d =
  (* insert d clockwise-after ref_d *)
  let nx = emb.nxt.(ref_d) in
  emb.nxt.(ref_d) <- d;
  emb.prv.(d) <- ref_d;
  emb.nxt.(d) <- nx;
  emb.prv.(nx) <- d;
  emb.present.(d) <- true

let emb_add_before emb ref_d d =
  let pv = emb.prv.(ref_d) in
  emb.nxt.(pv) <- d;
  emb.prv.(d) <- pv;
  emb.nxt.(d) <- ref_d;
  emb.prv.(ref_d) <- d;
  emb.present.(d) <- true

let emb_add_first emb v d =
  if emb.first.(v) = -1 then emb_add_solo emb v d
  else begin
    emb_add_before emb emb.first.(v) d;
    emb.first.(v) <- d
  end

let emb_add_last emb v d =
  if emb.first.(v) = -1 then emb_add_solo emb v d
  else emb_add_before emb emb.first.(v) d

(* Phase 3: embedding.  Iterative DFS following ordered_adj re-sorted by
   signed nesting depth. *)
let dfs_embedding s emb root =
  let left_ref = Array.make (Graph.n s.g) (-1) in
  let right_ref = Array.make (Graph.n s.g) (-1) in
  let stack = Stack.create () in
  Stack.push (root, ref 0) stack;
  while not (Stack.is_empty stack) do
    let v, idx = Stack.top stack in
    let adj = s.ordered_adj.(v) in
    if !idx >= Array.length adj then ignore (Stack.pop stack)
    else begin
      let ei = adj.(!idx) in
      incr idx;
      let w = dart_dst s ei in
      let back = Rotation.rev ei in
      if ei = s.parent_edge.(w) then begin
        (* tree dart: (w -> v) becomes first at w; v's refs point at its
           most recent child dart *)
        emb_add_first emb w back;
        left_ref.(v) <- ei;
        right_ref.(v) <- ei;
        Stack.push (w, ref 0) stack
      end
      else if s.side.(ei) = 1 then emb_add_after emb right_ref.(w) back
      else begin
        emb_add_before emb left_ref.(w) back;
        left_ref.(w) <- back
      end
    end
  done

let sort_ordered_adj s =
  let g = s.g in
  for v = 0 to Graph.n g - 1 do
    let outs = ref [] in
    Array.iter
      (fun (_, e) ->
        let d = s.orient.(e) in
        if d >= 0 && dart_src s d = v then outs := d :: !outs)
      (Graph.incident g v);
    let arr = Array.of_list !outs in
    Array.sort (fun a b -> compare s.nesting_depth.(a) s.nesting_depth.(b)) arr;
    s.ordered_adj.(v) <- arr
  done

(* Runs orientation and testing; raises Nonplanar when the conflict-pair
   constraints are unsatisfiable. *)
let tested_state g =
  let n = Graph.n g and m = Graph.m g in
  if n >= 3 && m > (3 * n) - 6 then raise Nonplanar;
  let s = make_state g in
  for v = 0 to n - 1 do
    if s.height.(v) = -1 then begin
      s.roots := v :: !(s.roots);
      dfs_orientation s v
    end
  done;
  sort_ordered_adj s;
  List.iter (dfs_testing s) !(s.roots);
  s

let is_planar g =
  match tested_state g with _ -> true | exception Nonplanar -> false

let embed g =
  match tested_state g with
  | exception Nonplanar -> None
  | s ->
      let m = Graph.m g in
      for e = 0 to m - 1 do
        let d = s.orient.(e) in
        s.nesting_depth.(d) <- s.nesting_depth.(d) * sign s d
      done;
      sort_ordered_adj s;
      let emb = emb_create (Graph.n g) m in
      for v = 0 to Graph.n g - 1 do
        Array.iter (fun d -> emb_add_last emb v d) s.ordered_adj.(v)
      done;
      List.iter (dfs_embedding s emb) !(s.roots);
      let rotations =
        Array.init (Graph.n g) (fun v ->
            let deg = Graph.degree g v in
            let rot = Array.make deg (-1) in
            let d = ref emb.first.(v) in
            for i = 0 to deg - 1 do
              assert (!d >= 0 && emb.present.(!d));
              rot.(i) <- !d;
              d := emb.nxt.(!d)
            done;
            assert (deg = 0 || !d = emb.first.(v));
            rot)
      in
      Some (Rotation.make g rotations)

let embed_or_adjacency g =
  match embed g with
  | Some rot -> (rot, true)
  | None -> (Rotation.of_adjacency_order g, false)
