(** Kuratowski witnesses: every non-planar graph contains a subdivision of
    [K_5] or [K_{3,3}]; this module extracts one as concrete evidence of
    non-planarity (the centralized analogue of the tester's rejection
    evidence).

    Extraction is by greedy minimization — repeatedly delete any edge whose
    removal keeps the graph non-planar, then drop isolated vertices; the
    remainder is an edge-minimal non-planar graph, which by Kuratowski's
    theorem is exactly a subdivision of [K_5] or [K_{3,3}].  Costs [O(m)]
    left-right tests. *)

type kind = K5 | K33

type witness = {
  kind : kind;
  edges : (int * int) list;  (** edges of the subdivision, original ids *)
  branch_vertices : int list;
      (** the 5 (resp. 6) vertices of degree 4 (resp. 3) *)
}

(** [find g] is a witness when [g] is non-planar, [None] otherwise. *)
val find : Graphlib.Graph.t -> witness option

(** [verify g w] checks that the witness is a subgraph of [g], is
    non-planar, and has the degree profile of a [K_5] / [K_{3,3}]
    subdivision. *)
val verify : Graphlib.Graph.t -> witness -> bool
