lib/planarity/rotation.mli: Graphlib
