lib/planarity/kuratowski.mli: Graphlib
