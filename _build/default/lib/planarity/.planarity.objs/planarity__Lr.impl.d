lib/planarity/lr.ml: Array Graph Graphlib List Rotation Stack
