lib/planarity/kuratowski.ml: Graph Graphlib List Lr
