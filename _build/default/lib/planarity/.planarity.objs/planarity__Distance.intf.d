lib/planarity/distance.mli: Graphlib Random
