lib/planarity/dmp.mli: Graphlib
