lib/planarity/distance.ml: Array Graph Graphlib Lr Random Traversal
