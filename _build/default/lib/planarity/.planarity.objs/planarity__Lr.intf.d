lib/planarity/lr.mli: Graphlib Rotation
