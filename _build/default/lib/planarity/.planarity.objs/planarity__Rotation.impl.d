lib/planarity/rotation.ml: Array Graph Graphlib List Traversal
