lib/planarity/dmp.ml: Array Graph Graphlib Hashtbl List Option Queue Stack Traversal Union_find
