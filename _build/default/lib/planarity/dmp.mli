(** Demoucron–Malgrange–Pertuiset planarity decision procedure.

    A slower ([O(n^2 m)] worst case) but conceptually independent algorithm
    used for differential testing of {!Lr}: faces are grown one fragment
    path at a time; a fragment with no admissible face certifies
    non-planarity.  The graph is decomposed into biconnected components
    first (a graph is planar iff all its blocks are). *)

val is_planar : Graphlib.Graph.t -> bool

(** The biconnected components (blocks) of the graph, each as a list of
    edge ids.  Exposed for testing. *)
val blocks : Graphlib.Graph.t -> int list list
