(** Rotation systems (combinatorial embeddings).

    A rotation system assigns to every vertex a circular (clockwise) order
    of its incident {e darts}.  The dart of edge [e] leaving its smaller
    endpoint is [2 * e]; the dart leaving the larger endpoint is
    [2 * e + 1].  A rotation system is a planar (combinatorial) embedding
    iff its face count satisfies the Euler formula. *)

type t

(** [dart_of g ~src e] is the dart of edge [e] leaving vertex [src]. *)
val dart_of : Graphlib.Graph.t -> src:int -> int -> int

(** Reverse dart. *)
val rev : int -> int

(** Edge id of a dart. *)
val edge_of_dart : int -> int

(** [src g d] / [dst g d] are the tail and head vertices of dart [d]. *)
val src : Graphlib.Graph.t -> int -> int
val dst : Graphlib.Graph.t -> int -> int

(** [make g rotations] builds a rotation system; [rotations.(v)] must list
    every dart leaving [v] exactly once.  Raises [Invalid_argument]
    otherwise. *)
val make : Graphlib.Graph.t -> int array array -> t

(** [of_adjacency_order g] is the rotation system given by neighbor-sorted
    incidence order (an arbitrary, usually non-planar, embedding). *)
val of_adjacency_order : Graphlib.Graph.t -> t

(** The circular order of darts leaving [v] (must not be mutated). *)
val rotation : t -> int -> int array

(** [succ rot v d] is the dart following [d] in the clockwise order at its
    source vertex [v]. *)
val succ : t -> int -> int

(** Number of faces of the embedding (orbits of the face permutation). *)
val count_faces : Graphlib.Graph.t -> t -> int

(** [faces g rot] lists the faces, each as its circular dart sequence. *)
val faces : Graphlib.Graph.t -> t -> int list list

(** [is_planar_embedding g rot] checks the (component-wise) Euler formula
    [n - m + f = 1 + c]. *)
val is_planar_embedding : Graphlib.Graph.t -> t -> bool

(** Genus of the embedding, from [n - m + f = 2 - 2 genus] (connected
    graphs only). *)
val genus : Graphlib.Graph.t -> t -> int
