open Graphlib

type kind = K5 | K33

type witness = {
  kind : kind;
  edges : (int * int) list;
  branch_vertices : int list;
}

(* Greedy edge-minimization preserving non-planarity. *)
let minimize g0 =
  let current = ref g0 in
  let progress = ref true in
  while !progress do
    progress := false;
    (try
       for e = 0 to Graph.m !current - 1 do
         let candidate, _ = Graph.remove_edges !current (fun e' -> e' = e) in
         if not (Lr.is_planar candidate) then begin
           current := candidate;
           progress := true;
           raise Exit
         end
       done
     with Exit -> ())
  done;
  !current

let classify g =
  (* In an edge-minimal non-planar graph every vertex has degree 0, 2 or
     the branch degree; branch vertices determine the kind. *)
  let branch = ref [] in
  for v = 0 to Graph.n g - 1 do
    if Graph.degree g v >= 3 then branch := v :: !branch
  done;
  let branch = List.rev !branch in
  match List.length branch with
  | 5 -> Some (K5, branch)
  | 6 -> Some (K33, branch)
  | _ -> None

let find g =
  if Lr.is_planar g then None
  else begin
    let core = minimize g in
    match classify core with
    | None -> None (* unreachable if minimization is correct *)
    | Some (kind, branch_vertices) ->
        let edges =
          Graph.fold_edges (fun acc _ u v -> (u, v) :: acc) [] core
        in
        Some { kind; edges; branch_vertices }
  end

let verify g w =
  let subgraph_ok =
    List.for_all (fun (u, v) -> Graph.has_edge g u v) w.edges
  in
  if not subgraph_ok then false
  else begin
    let h = Graph.make ~n:(Graph.n g) w.edges in
    let nonplanar = not (Lr.is_planar h) in
    let expected_branch_degree = match w.kind with K5 -> 4 | K33 -> 3 in
    let expected_branch_count = match w.kind with K5 -> 5 | K33 -> 6 in
    let branch_ok =
      List.length w.branch_vertices = expected_branch_count
      && List.for_all
           (fun v -> Graph.degree h v = expected_branch_degree)
           w.branch_vertices
    in
    let path_ok =
      (* every non-branch vertex of the witness has degree 0 or 2 *)
      let rec all v =
        v < 0
        || ((List.mem v w.branch_vertices
            || Graph.degree h v = 0
            || Graph.degree h v = 2)
           && all (v - 1))
      in
      all (Graph.n h - 1)
    in
    nonplanar && branch_ok && path_ok
  end
