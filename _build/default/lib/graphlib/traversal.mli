(** Breadth-first and depth-first traversals and derived quantities. *)

(** A rooted BFS tree.  [parent.(root) = -1]; unreachable vertices have
    [parent = -2] and [dist = -1]. *)
type bfs_tree = {
  root : int;
  parent : int array;  (** parent vertex in the tree *)
  parent_edge : int array;  (** edge id to the parent, [-1] at root *)
  dist : int array;  (** BFS level *)
  order : int array;  (** vertices in visit order (reachable only) *)
}

(** [bfs g root] explores the connected component of [root]. *)
val bfs : Graph.t -> int -> bfs_tree

(** Vertices reachable from [root], in visit order. *)
val component_of : Graph.t -> int -> int list

(** [components g] assigns each vertex a component id in [0 .. c-1] and
    returns the number [c] of components. *)
val components : Graph.t -> int array * int

val is_connected : Graph.t -> bool

(** [eccentricity g v] is the greatest BFS distance from [v] within its
    component. *)
val eccentricity : Graph.t -> int -> int

(** Exact diameter of a connected graph by all-sources BFS ([O(nm)]);
    raises [Invalid_argument] if the graph is disconnected or empty. *)
val diameter : Graph.t -> int

(** [dist_from g v] is the array of BFS distances from [v] ([-1] when
    unreachable). *)
val dist_from : Graph.t -> int -> int array

(** [is_forest g] holds iff [g] is acyclic. *)
val is_forest : Graph.t -> bool

(** [spanning_forest g] is the set of edge ids of a BFS spanning forest. *)
val spanning_forest : Graph.t -> int list

(** [odd_cycle_witness g] is [Some (u, v)] for an edge joining two vertices
    at equal BFS parity (certifying an odd cycle), or [None] when [g] is
    bipartite. *)
val odd_cycle_witness : Graph.t -> (int * int) option

val is_bipartite : Graph.t -> bool
