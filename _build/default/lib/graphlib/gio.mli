(** Plain-text edge-list serialization.

    Format: first line [n m], then one [u v] pair per line.  Lines starting
    with [#] and blank lines are ignored. *)

val to_string : Graph.t -> string

val of_string : string -> Graph.t
(** @raise Invalid_argument on malformed input. *)

val to_channel : out_channel -> Graph.t -> unit

val of_channel : in_channel -> Graph.t

val load : string -> Graph.t
(** Read a graph from a file path. *)

val save : string -> Graph.t -> unit
(** Write a graph to a file path. *)
