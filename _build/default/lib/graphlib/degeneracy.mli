(** Degeneracy (k-core peeling) and arboricity bounds.

    A graph's degeneracy d is the smallest value such that every subgraph
    has a vertex of degree at most d.  It sandwiches the arboricity a —
    the quantity the paper's forest-decomposition step verifies:
    [a <= d <= 2a - 1].  Planar graphs have degeneracy at most 5 and
    arboricity at most 3. *)

(** [degeneracy g] with a peeling order (a vertex order in which each
    vertex has at most [degeneracy] neighbors after it). *)
val degeneracy : Graph.t -> int * int array

(** [arboricity_bounds g] is [(lower, upper)]: the Nash-Williams density
    lower bound [max ceil(m_H / (n_H - 1))] over the peeling suffixes, and
    the degeneracy upper bound. *)
val arboricity_bounds : Graph.t -> int * int
