(** Girth (length of the shortest cycle) computations. *)

(** [girth g] is the length of the shortest cycle of [g], or [None] if [g]
    is a forest.  Runs BFS from every vertex: [O(nm)]. *)
val girth : Graph.t -> int option

(** [girth_upto g limit] is [Some l] for the shortest cycle length
    [l <= limit], [None] if every cycle is longer than [limit] (or there is
    none).  BFS is truncated at depth [limit/2 + 1], so this is fast for
    small limits. *)
val girth_upto : Graph.t -> int -> int option

(** [shortest_cycle_through g v ~limit] is the length of the shortest cycle
    through [v] of length at most [limit], if any. *)
val shortest_cycle_through : Graph.t -> int -> limit:int -> int option

(** [break_short_cycles g len] removes one edge from every cycle shorter
    than [len], repeatedly, until the girth is at least [len]; it returns
    the new graph and the number of edges removed.  (Used by the Section 3
    lower-bound construction.) *)
val break_short_cycles : Graph.t -> int -> Graph.t * int
