lib/graphlib/generators.ml: Array Graph Hashtbl List Random Traversal
