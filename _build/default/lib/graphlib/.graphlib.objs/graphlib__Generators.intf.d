lib/graphlib/generators.mli: Graph Random
