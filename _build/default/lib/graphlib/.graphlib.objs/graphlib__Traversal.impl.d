lib/graphlib/traversal.ml: Array Graph Queue Union_find
