lib/graphlib/girth.mli: Graph
