lib/graphlib/graph.ml: Array Format Hashtbl List Printf
