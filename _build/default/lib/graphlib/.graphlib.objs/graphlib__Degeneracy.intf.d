lib/graphlib/degeneracy.mli: Graph
