lib/graphlib/gio.mli: Graph
