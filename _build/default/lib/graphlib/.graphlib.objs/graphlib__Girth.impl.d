lib/graphlib/girth.ml: Array Graph Queue
