lib/graphlib/graph.mli: Format
