lib/graphlib/gio.ml: Buffer Fun Graph List Printf String
