lib/graphlib/degeneracy.ml: Array Graph
