(** Static simple undirected graphs.

    Vertices are integers [0 .. n-1].  Edges are undirected, stored once with
    endpoints [(u, v)] such that [u < v], and carry a stable edge identifier
    [0 .. m-1].  The structure is immutable; modification functions return a
    new graph. *)

type t

(** [make ~n edges] builds a graph on [n] vertices from the given endpoint
    pairs.  Self-loops and duplicate edges (in either orientation) raise
    [Invalid_argument], as does an endpoint outside [0 .. n-1]. *)
val make : n:int -> (int * int) list -> t

(** [of_edges_dedup ~n edges] is [make], except that self-loops are dropped
    and duplicate edges are kept once. *)
val of_edges_dedup : n:int -> (int * int) list -> t

(** Number of vertices. *)
val n : t -> int

(** Number of edges. *)
val m : t -> int

(** [neighbors g v] is the sorted array of neighbors of [v].  The returned
    array is owned by the graph and must not be mutated. *)
val neighbors : t -> int -> int array

(** [incident g v] lists [(u, e)] for every edge [e] joining [v] to [u],
    sorted by neighbor id.  The array must not be mutated. *)
val incident : t -> int -> (int * int) array

(** Degree of a vertex. *)
val degree : t -> int -> int

(** Maximum degree over all vertices ([0] for an empty graph). *)
val max_degree : t -> int

(** [edge g e] is the endpoint pair [(u, v)], [u < v], of edge id [e]. *)
val edge : t -> int -> int * int

(** [endpoints g] is the array of all endpoint pairs indexed by edge id.
    The array must not be mutated. *)
val endpoints : t -> (int * int) array

(** [has_edge g u v] tests adjacency in [O(log (degree u))]. *)
val has_edge : t -> int -> int -> bool

(** [find_edge g u v] is the edge id joining [u] and [v].
    @raise Not_found if they are not adjacent. *)
val find_edge : t -> int -> int -> int

(** [other_endpoint g e v] is the endpoint of [e] that is not [v].
    Raises [Invalid_argument] if [v] is not an endpoint of [e]. *)
val other_endpoint : t -> int -> int -> int

val iter_edges : (int -> int -> int -> unit) -> t -> unit
(** [iter_edges f g] calls [f e u v] for every edge [e = (u, v)], [u < v]. *)

val fold_edges : ('a -> int -> int -> int -> 'a) -> 'a -> t -> 'a
(** [fold_edges f init g] folds [f acc e u v] over all edges. *)

(** [add_edges g edges] returns a graph with the extra edges appended.  Edge
    ids of existing edges are preserved; duplicates raise
    [Invalid_argument]. *)
val add_edges : t -> (int * int) list -> t

(** [remove_edges g pred] keeps only edges [e] with [pred e = false].  Edge
    ids are renumbered; the second component maps old ids to new ids (or
    [-1] when removed). *)
val remove_edges : t -> (int -> bool) -> t * int array

(** [induced g vs] is the subgraph induced by the vertex list [vs] (which
    must not contain duplicates), together with the map from new vertex ids
    to original ids. *)
val induced : t -> int list -> t * int array

(** [disjoint_union g1 g2] places [g2]'s vertices after [g1]'s. *)
val disjoint_union : t -> t -> t

(** Pretty-printer showing [n], [m] and the edge list (for small graphs). *)
val pp : Format.formatter -> t -> unit

(** Structural equality: same [n] and same edge set. *)
val equal : t -> t -> bool
