let to_buffer buf g =
  Buffer.add_string buf (Printf.sprintf "%d %d\n" (Graph.n g) (Graph.m g));
  Graph.iter_edges
    (fun _ u v -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v))
    g

let to_string g =
  let buf = Buffer.create 1024 in
  to_buffer buf g;
  Buffer.contents buf

let of_lines lines =
  let relevant =
    List.filter
      (fun line ->
        let line = String.trim line in
        line <> "" && line.[0] <> '#')
      lines
  in
  match relevant with
  | [] -> invalid_arg "Gio: empty input"
  | header :: rest ->
      let parse_pair line =
        match String.split_on_char ' ' (String.trim line) with
        | [ a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some a, Some b -> (a, b)
            | _ -> invalid_arg ("Gio: bad line: " ^ line))
        | _ -> invalid_arg ("Gio: bad line: " ^ line)
      in
      let n, m = parse_pair header in
      let edges = List.map parse_pair rest in
      if List.length edges <> m then
        invalid_arg
          (Printf.sprintf "Gio: header says %d edges, found %d" m
             (List.length edges));
      Graph.make ~n edges

let of_string s = of_lines (String.split_on_char '\n' s)

let to_channel oc g = output_string oc (to_string g)

let of_channel ic =
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  of_lines (List.rev !lines)

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_channel ic)

let save path g =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc g)
