type t = {
  n : int;
  m : int;
  inc : (int * int) array array;
  endpoints : (int * int) array;
}

let norm u v = if u < v then (u, v) else (v, u)

let check_endpoint n v =
  if v < 0 || v >= n then
    invalid_arg (Printf.sprintf "Graph: endpoint %d outside [0, %d)" v n)

let build ~n pairs =
  let m = Array.length pairs in
  let deg = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    pairs;
  let inc = Array.init n (fun v -> Array.make deg.(v) (0, 0)) in
  let fill = Array.make n 0 in
  Array.iteri
    (fun e (u, v) ->
      inc.(u).(fill.(u)) <- (v, e);
      fill.(u) <- fill.(u) + 1;
      inc.(v).(fill.(v)) <- (u, e);
      fill.(v) <- fill.(v) + 1)
    pairs;
  Array.iter (fun a -> Array.sort compare a) inc;
  { n; m; inc; endpoints = pairs }

let make ~n edges =
  let seen = Hashtbl.create (List.length edges * 2) in
  let pairs =
    List.map
      (fun (u, v) ->
        check_endpoint n u;
        check_endpoint n v;
        if u = v then
          invalid_arg (Printf.sprintf "Graph.make: self-loop at %d" u);
        let p = norm u v in
        if Hashtbl.mem seen p then
          invalid_arg
            (Printf.sprintf "Graph.make: duplicate edge (%d, %d)" (fst p)
               (snd p));
        Hashtbl.add seen p ();
        p)
      edges
  in
  build ~n (Array.of_list pairs)

let of_edges_dedup ~n edges =
  let seen = Hashtbl.create (List.length edges * 2) in
  let pairs =
    List.filter_map
      (fun (u, v) ->
        check_endpoint n u;
        check_endpoint n v;
        if u = v then None
        else
          let p = norm u v in
          if Hashtbl.mem seen p then None
          else begin
            Hashtbl.add seen p ();
            Some p
          end)
      edges
  in
  build ~n (Array.of_list pairs)

let n g = g.n
let m g = g.m
let incident g v = g.inc.(v)
let neighbors g v = Array.map fst g.inc.(v)
let degree g v = Array.length g.inc.(v)

let max_degree g =
  Array.fold_left (fun acc a -> max acc (Array.length a)) 0 g.inc

let edge g e = g.endpoints.(e)
let endpoints g = g.endpoints

(* Binary search over the neighbor-sorted incidence array. *)
let find_incident g u v =
  let a = g.inc.(u) in
  let rec go lo hi =
    if lo >= hi then raise Not_found
    else
      let mid = (lo + hi) / 2 in
      let w, e = a.(mid) in
      if w = v then e else if w < v then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length a)

let find_edge g u v = find_incident g u v
let has_edge g u v = match find_incident g u v with _ -> true | exception Not_found -> false

let other_endpoint g e v =
  let u, w = g.endpoints.(e) in
  if v = u then w
  else if v = w then u
  else invalid_arg "Graph.other_endpoint: vertex not on edge"

let iter_edges f g = Array.iteri (fun e (u, v) -> f e u v) g.endpoints

let fold_edges f init g =
  let acc = ref init in
  iter_edges (fun e u v -> acc := f !acc e u v) g;
  !acc

let add_edges g edges =
  let extra =
    List.map
      (fun (u, v) ->
        check_endpoint g.n u;
        check_endpoint g.n v;
        if u = v then invalid_arg "Graph.add_edges: self-loop";
        if has_edge g u v then invalid_arg "Graph.add_edges: duplicate edge";
        norm u v)
      edges
  in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun p ->
      if Hashtbl.mem seen p then invalid_arg "Graph.add_edges: duplicate edge";
      Hashtbl.add seen p ())
    extra;
  build ~n:g.n (Array.append g.endpoints (Array.of_list extra))

let remove_edges g pred =
  let remap = Array.make g.m (-1) in
  let kept = ref [] in
  let count = ref 0 in
  Array.iteri
    (fun e p ->
      if not (pred e) then begin
        kept := p :: !kept;
        remap.(e) <- !count;
        incr count
      end)
    g.endpoints;
  (build ~n:g.n (Array.of_list (List.rev !kept)), remap)

let induced g vs =
  let vs = Array.of_list vs in
  let k = Array.length vs in
  let back = Hashtbl.create (2 * k) in
  Array.iteri
    (fun i v ->
      check_endpoint g.n v;
      if Hashtbl.mem back v then invalid_arg "Graph.induced: duplicate vertex";
      Hashtbl.add back v i)
    vs;
  let pairs = ref [] in
  iter_edges
    (fun _ u v ->
      match (Hashtbl.find_opt back u, Hashtbl.find_opt back v) with
      | Some iu, Some iv -> pairs := norm iu iv :: !pairs
      | _ -> ())
    g;
  (build ~n:k (Array.of_list (List.rev !pairs)), vs)

let disjoint_union g1 g2 =
  let shift = g1.n in
  let pairs =
    Array.append g1.endpoints
      (Array.map (fun (u, v) -> (u + shift, v + shift)) g2.endpoints)
  in
  build ~n:(g1.n + g2.n) pairs

let pp fmt g =
  Format.fprintf fmt "@[<v>graph n=%d m=%d@," g.n g.m;
  iter_edges (fun e u v -> Format.fprintf fmt "  e%d: (%d, %d)@," e u v) g;
  Format.fprintf fmt "@]"

let equal g1 g2 =
  g1.n = g2.n && g1.m = g2.m
  &&
  let s1 = Array.copy g1.endpoints and s2 = Array.copy g2.endpoints in
  Array.sort compare s1;
  Array.sort compare s2;
  s1 = s2
