(* Linear-time peeling with bucket queues. *)
let degeneracy g =
  let n = Graph.n g in
  if n = 0 then (0, [||])
  else begin
    let deg = Array.init n (Graph.degree g) in
    let maxdeg = Array.fold_left max 0 deg in
    let buckets = Array.make (maxdeg + 1) [] in
    Array.iteri (fun v d -> buckets.(d) <- v :: buckets.(d)) deg;
    let removed = Array.make n false in
    let order = Array.make n 0 in
    let core = ref 0 in
    let cursor = ref 0 in
    for i = 0 to n - 1 do
      (* find the lowest non-empty bucket holding a live vertex *)
      let rec next_bucket b =
        match buckets.(b) with
        | [] -> next_bucket (b + 1)
        | v :: rest ->
            buckets.(b) <- rest;
            if removed.(v) || deg.(v) <> b then next_bucket b else (b, v)
      in
      let b, v = next_bucket 0 in
      core := max !core b;
      removed.(v) <- true;
      order.(!cursor) <- v;
      incr cursor;
      ignore i;
      Array.iter
        (fun w ->
          if not removed.(w) then begin
            deg.(w) <- deg.(w) - 1;
            buckets.(deg.(w)) <- w :: buckets.(deg.(w))
          end)
        (Graph.neighbors g v)
    done;
    (!core, order)
  end

let arboricity_bounds g =
  let d, order = degeneracy g in
  (* Nash-Williams: a >= ceil (m_H / (n_H - 1)) for any subgraph H; use the
     peeling suffixes (the densest cores) as candidates. *)
  let n = Graph.n g in
  let lower = ref (if Graph.m g > 0 then 1 else 0) in
  if n >= 2 then begin
    let position = Array.make n 0 in
    Array.iteri (fun i v -> position.(v) <- i) order;
    (* m_k = edges with both endpoints at position >= k *)
    let suffix_edges = Array.make (n + 1) 0 in
    Graph.iter_edges
      (fun _ u v ->
        let p = min position.(u) position.(v) in
        suffix_edges.(p) <- suffix_edges.(p) + 1)
      g;
    let running = ref 0 in
    for k = n - 1 downto 0 do
      running := !running + suffix_edges.(k);
      let nh = n - k in
      if nh >= 2 then begin
        let cand = (!running + nh - 2) / (nh - 1) in
        if cand > !lower then lower := cand
      end
    done
  end;
  (!lower, max d !lower)
