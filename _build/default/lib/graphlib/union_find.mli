(** Disjoint-set forest with union by rank and path compression. *)

type t

(** [create n] makes [n] singleton sets [0 .. n-1]. *)
val create : int -> t

(** Representative of the set containing the element. *)
val find : t -> int -> int

(** [union t a b] merges the sets of [a] and [b]; returns [true] iff they
    were previously distinct. *)
val union : t -> int -> int -> bool

(** [same t a b] tests whether [a] and [b] are in the same set. *)
val same : t -> int -> int -> bool

(** Number of disjoint sets remaining. *)
val count : t -> int

(** Size of the set containing the element. *)
val size : t -> int -> int
