(* BFS-based girth: for every start vertex, the first non-tree edge (u, x)
   scanned gives a closed walk of length dist(u) + dist(x) + 1 through the
   start; every such walk contains a cycle no longer than itself, and a
   shortest cycle is reported exactly when the start lies on it. *)

(* [cycle_via g s depth_limit] is [Some (len, e)] for the shortest closed
   walk through [s] detected by truncated BFS, where [e] is the non-tree
   edge closing it. *)
let cycle_via g s depth_limit =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let parent_edge = Array.make n (-1) in
  let q = Queue.create () in
  dist.(s) <- 0;
  Queue.add s q;
  let best = ref None in
  (try
     while not (Queue.is_empty q) do
       let u = Queue.pop q in
       if dist.(u) >= depth_limit then raise Exit;
       Array.iter
         (fun (x, e) ->
           if e <> parent_edge.(u) then
             if dist.(x) < 0 then begin
               dist.(x) <- dist.(u) + 1;
               parent_edge.(x) <- e;
               Queue.add x q
             end
             else
               let cand = dist.(u) + dist.(x) + 1 in
               match !best with
               | Some (b, _) when b <= cand -> ()
               | _ -> best := Some (cand, e))
         (Graph.incident g u)
     done
   with Exit -> ());
  !best

let girth_witness_upto g limit =
  if limit < 3 then None
  else begin
    let depth = (limit / 2) + 1 in
    let best = ref None in
    for s = 0 to Graph.n g - 1 do
      match cycle_via g s depth with
      | Some (l, e) when l <= limit -> (
          match !best with
          | Some (b, _) when b <= l -> ()
          | _ -> best := Some (l, e))
      | _ -> ()
    done;
    !best
  end

let girth_upto g limit =
  match girth_witness_upto g limit with
  | Some (l, _) -> Some l
  | None -> None

let girth g =
  (* Any cycle has length at most n. *)
  girth_upto g (Graph.n g)

let shortest_cycle_through g v ~limit =
  match cycle_via g v ((limit / 2) + 1) with
  | Some (l, _) when l <= limit -> Some l
  | _ -> None

(* Process one start vertex at a time: repeatedly remove the closing edge
   of the shortest cycle through it until none remains below the
   threshold.  Removals never create cycles, so one pass over all starts
   leaves girth >= len.  Each step is one truncated BFS. *)
let break_short_cycles g len =
  let removed = ref 0 in
  let depth = ((len - 1) / 2) + 1 in
  let current = ref g in
  for s = 0 to Graph.n g - 1 do
    let continue = ref true in
    while !continue do
      match cycle_via !current s depth with
      | Some (l, e) when l <= len - 1 ->
          incr removed;
          current := fst (Graph.remove_edges !current (fun e' -> e' = e))
      | _ -> continue := false
    done
  done;
  (!current, !removed)
