type bfs_tree = {
  root : int;
  parent : int array;
  parent_edge : int array;
  dist : int array;
  order : int array;
}

let bfs g root =
  let n = Graph.n g in
  let parent = Array.make n (-2) in
  let parent_edge = Array.make n (-1) in
  let dist = Array.make n (-1) in
  let order = Queue.create () in
  let q = Queue.create () in
  parent.(root) <- -1;
  dist.(root) <- 0;
  Queue.add root q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Queue.add u order;
    Array.iter
      (fun (v, e) ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          parent.(v) <- u;
          parent_edge.(v) <- e;
          Queue.add v q
        end)
      (Graph.incident g u)
  done;
  {
    root;
    parent;
    parent_edge;
    dist;
    order = Array.of_seq (Queue.to_seq order);
  }

let component_of g root = Array.to_list (bfs g root).order

let components g =
  let n = Graph.n g in
  let comp = Array.make n (-1) in
  let c = ref 0 in
  for v = 0 to n - 1 do
    if comp.(v) < 0 then begin
      let t = bfs g v in
      Array.iter (fun u -> comp.(u) <- !c) t.order;
      incr c
    end
  done;
  (comp, !c)

let is_connected g = Graph.n g = 0 || Array.length (bfs g 0).order = Graph.n g

let dist_from g v = (bfs g v).dist

let eccentricity g v =
  Array.fold_left (fun acc d -> max acc d) 0 (bfs g v).dist

let diameter g =
  if Graph.n g = 0 then invalid_arg "Traversal.diameter: empty graph";
  if not (is_connected g) then
    invalid_arg "Traversal.diameter: disconnected graph";
  let best = ref 0 in
  for v = 0 to Graph.n g - 1 do
    best := max !best (eccentricity g v)
  done;
  !best

let is_forest g =
  let uf = Union_find.create (Graph.n g) in
  Graph.fold_edges (fun ok _ u v -> ok && Union_find.union uf u v) true g

let spanning_forest g =
  let n = Graph.n g in
  let seen = Array.make n false in
  let acc = ref [] in
  for v = 0 to n - 1 do
    if not seen.(v) then begin
      let t = bfs g v in
      Array.iter
        (fun u ->
          seen.(u) <- true;
          if t.parent_edge.(u) >= 0 then acc := t.parent_edge.(u) :: !acc)
        t.order
    end
  done;
  !acc

let odd_cycle_witness g =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  for v = 0 to n - 1 do
    if dist.(v) < 0 then begin
      let t = bfs g v in
      Array.iter (fun u -> dist.(u) <- t.dist.(u)) t.order
    end
  done;
  Graph.fold_edges
    (fun acc _ u v ->
      match acc with
      | Some _ -> acc
      | None -> if (dist.(u) - dist.(v)) mod 2 = 0 then Some (u, v) else None)
    None g

let is_bipartite g = odd_cycle_witness g = None
