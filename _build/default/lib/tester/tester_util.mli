(** Rotation walk for a node of the Stage II state: the rotation is stored
    as neighbor ids, the tree lives in the node's parent/children fields.
    [scan nd rotation f] calls [f nbr rank t] as in
    {!Violation.scan_neighbor_rotation}. *)
val scan :
  Partition.State.node -> int array array -> (int -> int -> int -> unit) ->
  unit
