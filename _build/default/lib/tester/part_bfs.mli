(** Distributed BFS-tree construction inside every part of a Stage I
    partition (the preprocessing step of Section 2.2.1), shared by the
    planarity tester's Stage II, the minor-free property testers of
    Corollary 16 and the spanner construction of Corollary 17.

    Replaces the Stage I trees in the node state with BFS trees rooted at
    each part root and returns the BFS levels.  A second exchange round
    gives every node its intra-part neighbors' levels (used for edge
    assignment and odd-cycle detection). *)

type t = {
  dist : int array;  (** BFS level within the part *)
  nbr_level : (int * int) list array;
      (** per node: (intra-part neighbor, its level) *)
  depth_bound : int;  (** max root eccentricity over parts (the budget) *)
}

val build : Partition.State.t -> t

(** [is_tree_edge st v w] after {!build}: the edge [(v, w)] belongs to the
    part's BFS tree. *)
val is_tree_edge : Partition.State.t -> int -> int -> bool

(** [assigned_to t st v w] — the paper's edge-assignment rule: the edge
    goes to the deeper endpoint, ties to the larger id. *)
val assigned_to : t -> Partition.State.t -> int -> int -> bool

(** Iterate the intra-part (port, neighbor) pairs of a node. *)
val iter_intra :
  Partition.State.t -> Partition.State.node -> (int -> int -> unit) -> unit
