(** Centralized reference implementation of the Stage II labeling and the
    violating-edge condition (Definition 7): used by the distributed tester
    for its per-part logic and by the test suite to validate Claims 8–10.

    Given a BFS tree and a rotation system of a connected graph, every
    vertex gets a label: the sequence of child-edge ranks (clockwise
    position after the parent edge) along its tree path.  Labels are
    compared lexicographically, a prefix ordering first. *)

type label = int list

(** Lexicographic comparison (a proper prefix is smaller). *)
val compare_label : label -> label -> int

(** [labels g tree rot] computes every vertex's label.  The graph must be
    connected and [tree] rooted in it. *)
val labels :
  Graphlib.Graph.t -> Graphlib.Traversal.bfs_tree -> Planarity.Rotation.t ->
  label array

(** [scan_rotation g tree rot v f] walks [v]'s rotation clockwise starting
    after the parent edge (arbitrary fixed start at the root), calling
    [f dart rank t]: [rank] counts tree-child edges passed so far (child
    darts are reported with their own rank and [t = 0]); non-tree darts get
    the position [t >= 1] within the current corner. *)
val scan_rotation :
  Graphlib.Graph.t ->
  Graphlib.Traversal.bfs_tree ->
  Planarity.Rotation.t ->
  int ->
  (int -> int -> int -> unit) ->
  unit

(** The same walk on a plain neighbor-id rotation (used by the distributed
    Stage II): calls [f nbr rank t]. *)
val scan_neighbor_rotation :
  rotation:int array ->
  parent:int ->
  children:int list ->
  (int -> int -> int -> unit) ->
  unit

(** The reserved "infinity" wire symbol used in corner keys: [2n + 1]. *)
val infinity_symbol : Graphlib.Graph.t -> int

(** Corner keys of the non-tree edges at vertex [v], indexed by edge id:
    the vertex label extended by [rank; deg v + 1; t].  Two non-tree edges
    cross in every drawing consistent with [rot] iff their sorted key pairs
    interleave — the corner refinement the Claim 8/10 proofs need (the
    paper's vertex-level labels admit false violations on planar inputs;
    see DESIGN.md). *)
val corner_key :
  Graphlib.Graph.t ->
  Graphlib.Traversal.bfs_tree ->
  Planarity.Rotation.t ->
  label array ->
  int ->
  (int, label) Hashtbl.t

(** Sorted corner-key pairs of every non-tree edge, with edge ids. *)
val edge_keys :
  Graphlib.Graph.t -> Graphlib.Traversal.bfs_tree -> Planarity.Rotation.t ->
  (int * (label * label)) list

(** [intersects (a, b) (c, d)] is the Definition 7 condition on two
    (label-sorted) non-tree edges: after ordering so that the pair with the
    smaller lower endpoint comes first, strict interleaving
    [la < lc < lb < ld]. *)
val intersects : label * label -> label * label -> bool

(** Non-tree edge ids of the BFS tree. *)
val non_tree_edges :
  Graphlib.Graph.t -> Graphlib.Traversal.bfs_tree -> int list

(** [violating_edges g tree rot] is the set of non-tree edges intersecting
    at least one other non-tree edge.  Quadratic; for tests and small
    parts. *)
val violating_edges :
  Graphlib.Graph.t -> Graphlib.Traversal.bfs_tree -> Planarity.Rotation.t ->
  int list

(** [count_violating g] builds a BFS tree from vertex 0 and an embedding
    via {!Planarity.Lr.embed_or_adjacency}, then counts violating edges —
    the quantity Claims 8–10 reason about. *)
val count_violating : Graphlib.Graph.t -> int

(** The paper's original vertex-level labeling rule, kept only for the
    ablation (bench A2): it produces false violations on planar inputs,
    which is why the implementation uses corner keys. *)
val violating_edges_vertex_labels :
  Graphlib.Graph.t -> Graphlib.Traversal.bfs_tree -> Planarity.Rotation.t ->
  int list

val count_violating_vertex_labels : Graphlib.Graph.t -> int
