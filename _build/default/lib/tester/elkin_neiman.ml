open Graphlib

module M = struct
  type t = Wave of int * float  (* cluster source, shifted value *)

  (* One id plus a fixed-point payload. *)
  let bits (Wave _) = 64
end

module E = Congest.Engine.Make (M)

type result = {
  spanner : Graph.t;
  edges : int;
  rounds : int;
  failed : bool;
}

(* Miller–Peng–Xu-style exponential-shift clustering, as used by
   Elkin–Neiman: every vertex starts a wave with value [r_v] (exponential
   with rate [ln (n/delta) / k]); waves decay by 1 per hop and only the
   best wave at each vertex keeps propagating.  Each vertex keeps the tree
   edge to the neighbor that delivered its best wave, plus one edge toward
   every other cluster heard within 1 of its own value. *)
let build ?(seed = 0) g ~k ~delta =
  let n = Graph.n g in
  if n = 0 then
    { spanner = Graph.make ~n:0 []; edges = 0; rounds = 0; failed = false }
  else begin
    let beta = log (float_of_int n /. delta) /. float_of_int k in
    let failed = ref false in
    let keep = Hashtbl.create (4 * n) in
    let keep_edge u v = Hashtbl.replace keep (min u v, max u v) () in
    let res =
      E.run ~seed g (fun ctx ->
          let v = E.my_id ctx in
          let rng = E.rng ctx in
          let r_v = -.log (1.0 -. Random.State.float rng 1.0) /. beta in
          if r_v >= float_of_int k then failed := true;
          (* Best wave so far: (source, value); own wave to start. *)
          let src = ref v and m = ref r_v in
          let tree_nbr = ref (-1) in
          (* Per (neighbor cluster) best delivery: cluster -> (value,
             neighbor). *)
          let foreign = Hashtbl.create 8 in
          let last_sent = ref neg_infinity in
          let maybe_broadcast () =
            if !m > !last_sent then begin
              last_sent := !m;
              E.broadcast ctx (M.Wave (!src, !m -. 1.0))
            end
          in
          maybe_broadcast ();
          for _ = 1 to k do
            let inbox = E.sync ctx in
            List.iter
              (fun (from, M.Wave (s, x)) ->
                (if x > !m then begin
                   src := s;
                   m := x;
                   tree_nbr := from
                 end);
                let cur =
                  Option.value ~default:neg_infinity
                    (Option.map fst (Hashtbl.find_opt foreign s))
                in
                if x > cur then Hashtbl.replace foreign s (x, from))
              inbox;
            maybe_broadcast ()
          done;
          (* Tree edge into the cluster. *)
          if !tree_nbr >= 0 then keep_edge v !tree_nbr;
          (* One edge per foreign cluster heard within 1 of our value. *)
          Hashtbl.iter
            (fun s (x, from) ->
              if s <> !src && x >= !m -. 1.0 then keep_edge v from)
            foreign)
    in
    let edges = Hashtbl.fold (fun e () acc -> e :: acc) keep [] in
    let spanner = Graph.make ~n edges in
    {
      spanner;
      edges = Graph.m spanner;
      rounds = res.E.stats.Congest.Stats.rounds;
      failed = !failed;
    }
  end
