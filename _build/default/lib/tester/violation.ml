open Graphlib

type label = int list

let compare_label = compare

(* Walks [v]'s rotation clockwise starting just after the parent edge (for
   the root: after an arbitrary fixed dart) and calls [f] on every dart
   with the current tree-child rank [r] (children passed so far) and the
   position [t] within the current corner (non-tree darts since the last
   child edge).  Child darts are reported with their own (fresh) rank and
   [t = 0]. *)
let scan_rotation g (tree : Traversal.bfs_tree) rot v f =
  let rotation = Planarity.Rotation.rotation rot v in
  let deg = Array.length rotation in
  if deg > 0 then begin
    let start =
      if tree.Traversal.parent.(v) >= 0 then begin
        let pd =
          Planarity.Rotation.dart_of g ~src:v tree.Traversal.parent_edge.(v)
        in
        let idx = ref (-1) in
        Array.iteri (fun i d -> if d = pd then idx := i) rotation;
        assert (!idx >= 0);
        !idx
      end
      else deg (* root: start before index 0 *)
    in
    let is_child_dart d =
      let e = Planarity.Rotation.edge_of_dart d in
      let w = Graph.other_endpoint g e v in
      tree.Traversal.parent.(w) = v && tree.Traversal.parent_edge.(w) = e
    in
    let rank = ref 0 and t = ref 0 in
    for k = 1 to deg do
      let d = rotation.((start + k) mod deg) in
      let pd_skip =
        tree.Traversal.parent.(v) >= 0
        && Planarity.Rotation.edge_of_dart d = tree.Traversal.parent_edge.(v)
      in
      if not pd_skip then
        if is_child_dart d then begin
          incr rank;
          t := 0;
          f d !rank 0
        end
        else begin
          incr t;
          f d !rank !t
        end
    done
  end

(* The same walk on a plain neighbor-id rotation (used by the distributed
   Stage II, where each node holds its rotation as neighbor ids): calls
   [f nbr rank t]. *)
let scan_neighbor_rotation ~rotation ~parent ~children f =
  let deg = Array.length rotation in
  if deg > 0 then begin
    let start =
      if parent >= 0 then begin
        let idx = ref (-1) in
        Array.iteri (fun i w -> if w = parent then idx := i) rotation;
        assert (!idx >= 0);
        !idx
      end
      else deg
    in
    let rank = ref 0 and t = ref 0 in
    for k = 1 to deg do
      let w = rotation.((start + k) mod deg) in
      if w <> parent then
        if List.mem w children then begin
          incr rank;
          t := 0;
          f w !rank 0
        end
        else begin
          incr t;
          f w !rank !t
        end
    done
  end

let labels g tree rot =
  let n = Graph.n g in
  let out = Array.make n [] in
  Array.iter
    (fun v ->
      scan_rotation g tree rot v (fun d rank t ->
          if t = 0 then begin
            let e = Planarity.Rotation.edge_of_dart d in
            let w = Graph.other_endpoint g e v in
            out.(w) <- out.(v) @ [ rank ]
          end))
    tree.Traversal.order
  |> fun () -> out

(* Corner key of a non-tree dart (v -> w): the vertex label of [v] extended
   by the corner it sits in — [rank] children passed, the global infinity
   symbol (any value exceeding every child rank; one reserved symbol on the
   wire), and the position within the corner.  The infinity symbol makes
   the corner sort after the entire subtree of child [rank], aligning keys
   of corners at different tree depths.  Keys then order exactly like the
   attachment points on the contour (Euler tour) of the embedded tree,
   which is what the Claim 8/10 proofs need; the paper's vertex-level
   labels admit false positives on planar inputs (see DESIGN.md). *)
let infinity_symbol g = (2 * Graph.n g) + 1

let corner_key g tree rot lab v =
  let inf = infinity_symbol g in
  let keys = Hashtbl.create 4 in
  scan_rotation g tree rot v (fun d rank t ->
      if t > 0 then
        Hashtbl.replace keys
          (Planarity.Rotation.edge_of_dart d)
          (lab.(v) @ [ rank; inf; t ]));
  keys

let non_tree_edges g (tree : Traversal.bfs_tree) =
  Graph.fold_edges
    (fun acc e u v ->
      let is_tree =
        (tree.Traversal.parent.(u) = v && tree.Traversal.parent_edge.(u) = e)
        || (tree.Traversal.parent.(v) = u && tree.Traversal.parent_edge.(v) = e)
      in
      if is_tree then acc else e :: acc)
    [] g

(* Sorted corner-key pairs of every non-tree edge. *)
let edge_keys g tree rot =
  let lab = labels g tree rot in
  let per_vertex = Hashtbl.create 64 in
  let key_at v e =
    let keys =
      match Hashtbl.find_opt per_vertex v with
      | Some k -> k
      | None ->
          let k = corner_key g tree rot lab v in
          Hashtbl.add per_vertex v k;
          k
    in
    Hashtbl.find keys e
  in
  List.map
    (fun e ->
      let u, v = Graph.edge g e in
      let ku = key_at u e and kv = key_at v e in
      (e, if compare_label ku kv <= 0 then (ku, kv) else (kv, ku)))
    (non_tree_edges g tree)

let sort_pair (a, b) = if compare_label a b <= 0 then (a, b) else (b, a)

let intersects p q =
  let la, lb = sort_pair p in
  let lc, ld = sort_pair q in
  let (la, lb), (lc, ld) =
    if compare_label la lc <= 0 then ((la, lb), (lc, ld))
    else ((lc, ld), (la, lb))
  in
  compare_label la lc < 0
  && compare_label lc lb < 0
  && compare_label lb ld < 0

let violating_edges g tree rot =
  let keyed = Array.of_list (edge_keys g tree rot) in
  let k = Array.length keyed in
  let bad = Array.make k false in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      if
        (not (bad.(i) && bad.(j)))
        && intersects (snd keyed.(i)) (snd keyed.(j))
      then begin
        bad.(i) <- true;
        bad.(j) <- true
      end
    done
  done;
  let acc = ref [] in
  for i = k - 1 downto 0 do
    if bad.(i) then acc := fst keyed.(i) :: !acc
  done;
  !acc

let count_violating g =
  if Graph.n g = 0 then 0
  else begin
    let tree = Traversal.bfs g 0 in
    let rot, _ = Planarity.Lr.embed_or_adjacency g in
    List.length (violating_edges g tree rot)
  end

(* The paper's original vertex-level rule, kept for the ablation that
   motivates the corner refinement: compare endpoint labels only. *)
let violating_edges_vertex_labels g tree rot =
  let lab = labels g tree rot in
  let nts = Array.of_list (non_tree_edges g tree) in
  let pairs =
    Array.map
      (fun e ->
        let u, v = Graph.edge g e in
        sort_pair (lab.(u), lab.(v)))
      nts
  in
  let k = Array.length nts in
  let bad = Array.make k false in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      if (not (bad.(i) && bad.(j))) && intersects pairs.(i) pairs.(j) then begin
        bad.(i) <- true;
        bad.(j) <- true
      end
    done
  done;
  let acc = ref [] in
  for i = k - 1 downto 0 do
    if bad.(i) then acc := nts.(i) :: !acc
  done;
  !acc

let count_violating_vertex_labels g =
  if Graph.n g = 0 then 0
  else begin
    let tree = Traversal.bfs g 0 in
    let rot, _ = Planarity.Lr.embed_or_adjacency g in
    List.length (violating_edges_vertex_labels g tree rot)
  end
