(** Spanner construction for unweighted minor-free graphs (Corollary 17).

    Run a partitioning algorithm with edge-cut target [eps * n], then keep
    the BFS tree of every part plus every inter-part edge.  The result has
    at most [(1 + eps) n] edges (deterministically for the Stage I
    partition; with probability [1 - delta] for the Theorem 4 variant) and
    stretch at most [2 D + 1] where [D] is the maximum part diameter —
    [poly (1/eps)]. *)

type mode = Deterministic | Randomized of float  (** confidence [delta] *)

type result = {
  spanner : Graphlib.Graph.t;
  tree_edges : int;
  cut_edges : int;
  stretch_bound : int;  (** [2 * max part eccentricity + 1] *)
  rounds : int;
  nominal_rounds : int;
}

val build : ?mode:mode -> ?seed:int -> Graphlib.Graph.t -> eps:float -> result

(** [measured_stretch ?samples ?rng g spanner] — the maximum over (sampled)
    edges [(u, v)] of [g] of the spanner distance from [u] to [v] (exact
    when [samples] covers all edges; default samples all edges up to
    2000, then random). *)
val measured_stretch :
  ?samples:int -> ?rng:Random.State.t -> Graphlib.Graph.t -> Graphlib.Graph.t -> int
