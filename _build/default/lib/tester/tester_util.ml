(* Rotation walk for a node of the Stage II state: the rotation is stored
   as neighbor ids, the tree is in the node's parent/children fields. *)
let scan (nd : Partition.State.node) rotation f =
  Violation.scan_neighbor_rotation
    ~rotation:rotation.(nd.Partition.State.id)
    ~parent:nd.Partition.State.parent
    ~children:nd.Partition.State.children f
