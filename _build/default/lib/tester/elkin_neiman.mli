(** The Elkin–Neiman spanner (SODA 2017), the baseline the paper compares
    its minor-free spanner against in Section 1.2.

    A [k]-round randomized CONGEST algorithm for general unweighted
    graphs: every vertex draws an exponential radius [r_v] with rate
    [ln (n / delta) / k] (failing, with probability at most [delta], when
    some draw reaches [k]); shifted BFS waves [(r_v - dist)] propagate for
    [k] rounds; each vertex keeps the edge to the first wave it hears and
    to every neighbor whose best wave value is within 1 of its own.  With
    probability [1 - delta] the result is a (2k - 1)-spanner with
    [O (n^{1 + 1/k} / delta)] edges in expectation. *)

type result = {
  spanner : Graphlib.Graph.t;
  edges : int;
  rounds : int;
  failed : bool;  (** some radius reached [k] (probability <= delta) *)
}

val build :
  ?seed:int -> Graphlib.Graph.t -> k:int -> delta:float -> result
