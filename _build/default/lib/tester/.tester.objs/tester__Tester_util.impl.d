lib/tester/tester_util.ml: Array Partition Violation
