lib/tester/part_bfs.ml: Array Graph Graphlib List Partition Traversal
