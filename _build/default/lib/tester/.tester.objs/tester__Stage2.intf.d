lib/tester/stage2.mli: Partition
