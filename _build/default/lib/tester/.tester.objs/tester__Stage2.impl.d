lib/tester/stage2.ml: Array Congest Fun Graph Graphlib Hashtbl List Part_bfs Partition Planarity Printf Random Tester_util Traversal Violation
