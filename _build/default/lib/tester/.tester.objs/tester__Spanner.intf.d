lib/tester/spanner.mli: Graphlib Random
