lib/tester/tester_util.mli: Partition
