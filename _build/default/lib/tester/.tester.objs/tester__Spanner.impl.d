lib/tester/spanner.ml: Array Congest Graph Graphlib Hashtbl List Option Part_bfs Partition Random Traversal
