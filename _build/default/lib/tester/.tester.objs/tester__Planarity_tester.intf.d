lib/tester/planarity_tester.mli: Graphlib Partition Stage2
