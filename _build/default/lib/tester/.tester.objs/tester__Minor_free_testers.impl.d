lib/tester/minor_free_testers.ml: Array Congest Graph Graphlib List Part_bfs Partition Printf
