lib/tester/violation.ml: Array Graph Graphlib Hashtbl List Planarity Traversal
