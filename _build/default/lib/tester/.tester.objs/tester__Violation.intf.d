lib/tester/violation.mli: Graphlib Hashtbl Planarity
