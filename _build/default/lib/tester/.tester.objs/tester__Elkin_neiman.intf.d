lib/tester/elkin_neiman.mli: Graphlib
