lib/tester/part_bfs.mli: Partition
