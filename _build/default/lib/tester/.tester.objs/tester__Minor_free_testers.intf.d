lib/tester/minor_free_testers.mli: Graphlib
