lib/tester/planarity_tester.ml: Congest List Partition Stage2
