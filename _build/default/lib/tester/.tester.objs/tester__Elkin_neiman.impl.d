lib/tester/elkin_neiman.ml: Congest Graph Graphlib Hashtbl List Option Random
