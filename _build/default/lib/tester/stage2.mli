(** Stage II of the tester (Section 2.2): per-part planarity testing.

    Takes the Stage I state (partition into connected low-diameter parts,
    Lemma 6 trees) and, concurrently in every part [G^j]:

    + builds a BFS tree [T_B^j] from the part root (replacing the Stage I
      tree in the node state),
    + counts [n (G^j)] and [m (G^j)] and rejects when
      [m (G^j) > 3 n (G^j) - 6],
    + obtains a combinatorial embedding — the substituted
      Ghaffari–Haeupler step: a centralized left-right embedding of the
      part, charged [O(D + min (log n, D))] rounds (arbitrary rotations
      when the part is not planar, exactly the case the paper's detection
      step must catch),
    + distributes the tree labels and corner keys, samples
      [Theta (log n / eps)] non-tree edges per part, broadcasts them, and
      rejects on any Definition 7 (corner-refined) intersection.

    One-sided: a planar input never rejects. *)

type part_info = {
  root : int;
  n_nodes : int;
  m_edges : int;
  non_tree : int;
  euler_rejected : bool;  (** rejected by the [m > 3n - 6] check *)
  embedding_planar : bool;  (** the substituted embedding step succeeded *)
  sampled : int;  (** non-tree edges sampled in this part *)
  truncated : bool;  (** sample exceeded the cap and was truncated *)
}

(** How the combinatorial-embedding step (the substituted
    Ghaffari–Haeupler call) is realized:
    - [Oracle]: a centralized left-right embedding per part, charged the
      GH round cost [O(D + min (log n, D))] — the default, matching the
      paper's complexity.
    - [Collect]: fully in-model — every part's root gathers the part's
      edge list by convergecast, computes the embedding locally and
      broadcasts all rotations back down; every bit crosses simulated
      edges and oversized payloads are charged extra rounds, costing
      [Omega (m_j log n / B)] rounds per part.  Exists to measure what the
      GH algorithm saves (bench E14). *)
type embedding_mode = Oracle | Collect

type result = {
  accepted : bool;
  rejections : (int * string) list;
      (** rejections raised during Stage II (on top of any from Stage I) *)
  parts : part_info list;
  sample_target : int;  (** the Theta (log n / eps) per-part sample size *)
}

(** [run st ~eps ~seed] executes Stage II on the Stage I state; round and
    message statistics accumulate into [st.stats]. *)
val run :
  ?embedding:embedding_mode ->
  Partition.State.t ->
  eps:float ->
  seed:int ->
  result

(** The per-part sample size [ceil (4 ln (n + 2) / eps)]. *)
val sample_target : n:int -> eps:float -> int
