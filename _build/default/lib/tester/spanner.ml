open Graphlib
module S = Partition.State

type mode = Deterministic | Randomized of float

type result = {
  spanner : Graph.t;
  tree_edges : int;
  cut_edges : int;
  stretch_bound : int;
  rounds : int;
  nominal_rounds : int;
}

let build ?(mode = Deterministic) ?(seed = 0) g ~eps =
  let n = Graph.n g in
  let st =
    match mode with
    | Deterministic ->
        (* Stage1 target is eps' * m / 2 edges; we want eps * n. *)
        let eps' =
          if Graph.m g = 0 then eps
          else
            min 0.999 (2.0 *. eps *. float_of_int n /. float_of_int (Graph.m g))
        in
        let eps' = max eps' 1e-9 in
        (Partition.Stage1.run g ~eps:eps').Partition.Stage1.state
    | Randomized delta ->
        (Partition.Random_partition.run g ~eps ~delta ~seed)
          .Partition.Random_partition.state
  in
  let bfs = Part_bfs.build st in
  (* Every node contributes its BFS parent edge and its incident cut
     edges; the orchestrator assembles the edge set. *)
  let edges = Hashtbl.create (2 * n) in
  let add u v =
    Hashtbl.replace edges (min u v, max u v) ()
  in
  let tree_count = ref 0 in
  Array.iter
    (fun nd ->
      if nd.S.parent >= 0 then begin
        add nd.S.id nd.S.parent;
        incr tree_count
      end;
      Array.iteri
        (fun port (nbr, _) ->
          if nd.S.nbr_root.(port) <> nd.S.part_root then add nd.S.id nbr)
        (Graph.incident g nd.S.id))
    st.S.nodes;
  let cut = S.cut_edges st in
  let spanner =
    Graph.make ~n (Hashtbl.fold (fun e () acc -> e :: acc) edges [])
  in
  {
    spanner;
    tree_edges = !tree_count;
    cut_edges = cut;
    stretch_bound = (2 * bfs.Part_bfs.depth_bound) + 1;
    rounds = st.S.stats.Congest.Stats.rounds;
    nominal_rounds = st.S.nominal_rounds + (2 * bfs.Part_bfs.depth_bound) + 3;
  }

let measured_stretch ?(samples = 2000) ?rng g spanner =
  let m = Graph.m g in
  let check = Array.make m false in
  (if m <= samples then Array.fill check 0 m true
   else
     let rng =
       match rng with Some r -> r | None -> Random.State.make [| 0xbeef |]
     in
     for _ = 1 to samples do
       check.(Random.State.int rng m) <- true
     done);
  (* Group sampled edges by an endpoint to share BFS runs. *)
  let by_src = Hashtbl.create 64 in
  Graph.iter_edges
    (fun e u v ->
      if check.(e) then
        Hashtbl.replace by_src u ((v, e) :: Option.value ~default:[] (Hashtbl.find_opt by_src u)))
    g;
  Hashtbl.fold
    (fun u targets acc ->
      let dist = Traversal.dist_from spanner u in
      List.fold_left
        (fun acc (v, _) ->
          if dist.(v) < 0 then max_int else max acc dist.(v))
        acc targets)
    by_src 1
