(** Helpers for message-size accounting in the CONGEST model. *)

(** [int_bits ~universe] is the number of bits needed to address a value in
    [0 .. universe - 1] (at least 1). *)
val int_bits : universe:int -> int

(** Bits of one vertex id in an [n]-vertex network. *)
val id_bits : int -> int

(** [default_bandwidth n] is the per-edge per-round budget used when the
    caller does not pass one: [Theta (log n)]. *)
val default_bandwidth : int -> int
