lib/congest/protocols.mli: Graphlib
