lib/congest/engine.ml: Array Bits Effect Graph Graphlib Hashtbl List Option Printf Random Stats
