lib/congest/stats.mli: Format
