lib/congest/bits.mli:
