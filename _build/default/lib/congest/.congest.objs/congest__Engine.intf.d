lib/congest/engine.mli: Graphlib Random Stats
