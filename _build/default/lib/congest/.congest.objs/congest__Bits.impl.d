lib/congest/bits.ml:
