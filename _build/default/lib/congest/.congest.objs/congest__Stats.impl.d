lib/congest/stats.ml: Format
