lib/congest/protocols.ml: Array Bits Engine Graph Graphlib List Stats
