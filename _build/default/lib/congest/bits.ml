let int_bits ~universe =
  let u = max universe 2 in
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  go 0 (u - 1)

let id_bits n = int_bits ~universe:(max n 2)

let default_bandwidth n = (8 * id_bits n) + 64
