open Graphlib

module M = struct
  type t = Level of int | Leader of int | Count of int | Child of bool

  let bits = function
    | Level v | Leader v | Count v -> 4 + Bits.int_bits ~universe:(abs v + 2)
    | Child _ -> 5
end

module E = Engine.Make (M)

type bfs_result = { parent : int array; level : int array; rounds : int }

let bfs_tree g ~root ~rounds_bound =
  let n = Graph.n g in
  let parent = Array.make n (-1) in
  let level = Array.make n (-1) in
  let res =
    E.run g (fun ctx ->
        let v = E.my_id ctx in
        (if v = root then begin
           level.(v) <- 0;
           E.broadcast ctx (M.Level 0)
         end);
        for _ = 1 to rounds_bound do
          List.iter
            (fun (from, msg) ->
              match msg with
              | M.Level d ->
                  if level.(v) < 0 then begin
                    level.(v) <- d + 1;
                    parent.(v) <- from;
                    E.broadcast ctx (M.Level (d + 1))
                  end
              | _ -> assert false)
            (E.sync ctx)
        done)
  in
  { parent; level; rounds = res.E.stats.Stats.rounds }

let elect_min_id g ~rounds_bound =
  let n = Graph.n g in
  let leader = Array.init n (fun v -> v) in
  ignore
    (E.run g (fun ctx ->
         let v = E.my_id ctx in
         E.broadcast ctx (M.Leader v);
         for _ = 1 to rounds_bound do
           let improved = ref false in
           List.iter
             (fun (_, msg) ->
               match msg with
               | M.Leader c ->
                   if c < leader.(v) then begin
                     leader.(v) <- c;
                     improved := true
                   end
               | _ -> assert false)
             (E.sync ctx);
           if !improved then E.broadcast ctx (M.Leader leader.(v))
         done));
  leader

(* Flood-echo on a general graph: the wave builds a BFS tree; on adoption a
   node tells its parent [Child true] and every other neighbor
   [Child false], so each node knows when all neighbor relations are
   resolved and all child counts are in. *)
let count_nodes g ~root ~rounds_bound =
  let n = Graph.n g in
  let parent = Array.make n (-2) in
  let total = ref 0 in
  let res =
    E.run g (fun ctx ->
        let v = E.my_id ctx in
        let unknown = ref (E.degree ctx) in
        let children_pending = ref 0 in
        let sum = ref 1 in
        let sent = ref false in
        (* Every neighbor sends exactly one [Child] message (when it
           adopts); [unknown] resolves purely by receiving them. *)
        let adopt from d =
          parent.(v) <- from;
          E.broadcast ctx (M.Level (d + 1));
          Array.iter
            (fun w ->
              if w = from then E.send ctx ~dest:w (M.Child true)
              else E.send ctx ~dest:w (M.Child false))
            (E.neighbors ctx)
        in
        (if v = root then adopt (-1) (-1));
        for _ = 1 to rounds_bound do
          List.iter
            (fun (from, msg) ->
              match msg with
              | M.Level d -> if parent.(v) = -2 then adopt from d
              | M.Child true ->
                  decr unknown;
                  incr children_pending
              | M.Child false -> decr unknown
              | M.Count c ->
                  sum := !sum + c;
                  decr children_pending
              | _ -> assert false)
            (E.sync ctx);
          if
            !unknown = 0 && !children_pending = 0 && (not !sent)
            && parent.(v) >= -1
          then begin
            sent := true;
            if parent.(v) >= 0 then E.send ctx ~dest:parent.(v) (M.Count !sum)
            else total := !sum
          end
        done)
  in
  (!total, res.E.stats.Stats.rounds)
