open Graphlib

module type MESSAGE = sig
  type t

  val bits : t -> int
end

module Make (Msg : MESSAGE) = struct
  type engine = {
    graph : Graph.t;
    estats : Stats.t;
    reject_log : (int * string) list ref;
    mutable current_round : int;
    (* outgoing.(v) holds (dest, msg) queued by v this round *)
    outgoing : (int * Msg.t) list array;
    incoming : (int * Msg.t) list array;
  }

  type ctx = { id : int; crng : Random.State.t; eng : engine }

  type _ Effect.t += Sync : (int * Msg.t) list Effect.t

  let my_id c = c.id
  let n_nodes c = Graph.n c.eng.graph
  let degree c = Graph.degree c.eng.graph c.id
  let neighbors c = Graph.neighbors c.eng.graph c.id
  let incident c = Graph.incident c.eng.graph c.id
  let rng c = c.crng
  let round c = c.eng.current_round
  let stats c = c.eng.estats

  let send c ~dest msg =
    if not (Graph.has_edge c.eng.graph c.id dest) then
      invalid_arg
        (Printf.sprintf "Engine.send: %d is not a neighbor of %d" dest c.id);
    c.eng.outgoing.(c.id) <- (dest, msg) :: c.eng.outgoing.(c.id)

  let broadcast c msg =
    Array.iter
      (fun dest -> c.eng.outgoing.(c.id) <- (dest, msg) :: c.eng.outgoing.(c.id))
      (neighbors c)

  let sync _c = Effect.perform Sync

  let idle c k =
    for _ = 1 to k do
      ignore (sync c)
    done

  let reject c reason =
    c.eng.reject_log := (c.id, reason) :: !(c.eng.reject_log)

  type 'o result = {
    outputs : 'o option array;
    rejections : (int * string) list;
    stats : Stats.t;
    completed : bool;
  }

  let run ?(seed = 0) ?bandwidth ?(strict = false) ?(max_rounds = 1_000_000) g
      program =
    let n = Graph.n g in
    let bw =
      match bandwidth with Some b -> b | None -> Bits.default_bandwidth n
    in
    let eng =
      {
        graph = g;
        estats = Stats.create ~bandwidth:bw;
        reject_log = ref [];
        current_round = 0;
        outgoing = Array.make n [];
        incoming = Array.make n [];
      }
    in
    let outputs = Array.make n None in
    let conts :
        ((int * Msg.t) list, unit) Effect.Deep.continuation option array =
      Array.make n None
    in
    let start v =
      let ctx = { id = v; crng = Random.State.make [| seed; v; 0x5eed |]; eng } in
      Effect.Deep.match_with
        (fun () -> outputs.(v) <- Some (program ctx))
        ()
        {
          retc = (fun () -> ());
          exnc = (fun e -> raise e);
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Sync ->
                  Some
                    (fun (k : (a, unit) Effect.Deep.continuation) ->
                      conts.(v) <- Some k)
              | _ -> None);
        }
    in
    for v = 0 to n - 1 do
      start v
    done;
    let any_live () = Array.exists Option.is_some conts in
    let stop = ref false in
    while (not !stop) && any_live () do
      if eng.estats.Stats.rounds >= max_rounds then stop := true
      else begin
        eng.estats.rounds <- eng.estats.rounds + 1;
        eng.current_round <- eng.current_round + 1;
        (* Deliver: move outboxes to inboxes, accounting per directed
           edge. *)
        let max_frames = ref 1 in
        for v = 0 to n - 1 do
          match eng.outgoing.(v) with
          | [] -> ()
          | msgs ->
              eng.outgoing.(v) <- [];
              (* Per-destination bit totals for this source. *)
              let per_dest = Hashtbl.create 8 in
              List.iter
                (fun (dest, msg) ->
                  let b = Msg.bits msg in
                  eng.estats.messages <- eng.estats.messages + 1;
                  eng.estats.total_bits <- eng.estats.total_bits + b;
                  Hashtbl.replace per_dest dest
                    (b
                    + Option.value ~default:0 (Hashtbl.find_opt per_dest dest));
                  eng.incoming.(dest) <- (v, msg) :: eng.incoming.(dest))
                (List.rev msgs);
              Hashtbl.iter
                (fun _ b ->
                  if b > eng.estats.max_edge_bits then
                    eng.estats.max_edge_bits <- b;
                  if b > bw then begin
                    if strict then
                      failwith
                        (Printf.sprintf
                           "Engine: %d bits on one edge in one round exceeds \
                            the %d-bit bandwidth (strict mode)"
                           b bw);
                    eng.estats.oversized <- eng.estats.oversized + 1;
                    let frames = (b + bw - 1) / bw in
                    if frames > !max_frames then max_frames := frames
                  end)
                per_dest
        done;
        eng.estats.charged_rounds <- eng.estats.charged_rounds + !max_frames;
        (* Resume every live node with its inbox. *)
        for v = 0 to n - 1 do
          match conts.(v) with
          | None -> eng.incoming.(v) <- []
          | Some k ->
              conts.(v) <- None;
              let inbox =
                List.sort (fun (a, _) (b, _) -> compare a b) eng.incoming.(v)
              in
              eng.incoming.(v) <- [];
              Effect.Deep.continue k inbox
        done
      end
    done;
    {
      outputs;
      rejections =
        List.sort_uniq compare !(eng.reject_log);
      stats = eng.estats;
      completed = not !stop;
    }
end
