(** Round-synchronous CONGEST simulator.

    Node programs are ordinary OCaml functions written in direct style; the
    effect handler behind {!Make.sync} suspends a node until the next round
    and delivers its inbox.  All nodes run in lockstep: a round consists of
    every live node executing until its next [sync], with the messages it
    sent becoming visible to its neighbors when their [sync] returns.

    Bandwidth is accounted per directed edge per round.  Rather than
    fragmenting payloads, the engine charges a round in which some edge
    carried [k] frames as [k] rounds in {!Stats.t.charged_rounds} — the cost
    an actual CONGEST execution would pay by pipelining. *)

module type MESSAGE = sig
  type t

  (** Size of the message on the wire, in bits. *)
  val bits : t -> int
end

module Make (Msg : MESSAGE) : sig
  type ctx
  (** Handle to a node's identity and mailboxes, usable only inside a node
      program. *)

  val my_id : ctx -> int
  val n_nodes : ctx -> int
  val degree : ctx -> int

  (** Sorted neighbor ids (shared array — do not mutate). *)
  val neighbors : ctx -> int array

  (** [(neighbor, edge id)] pairs, sorted by neighbor. *)
  val incident : ctx -> (int * int) array

  (** Per-node deterministic random state (derived from the run seed). *)
  val rng : ctx -> Random.State.t

  (** [send ctx ~dest msg] queues [msg] on the edge to neighbor [dest] for
      delivery at the end of the current round.  Raises [Invalid_argument]
      if [dest] is not a neighbor. *)
  val send : ctx -> dest:int -> Msg.t -> unit

  (** [broadcast ctx msg] sends [msg] to every neighbor. *)
  val broadcast : ctx -> Msg.t -> unit

  (** Ends the node's round.  Returns the messages received this round as
      [(sender, message)] pairs sorted by sender. *)
  val sync : ctx -> (int * Msg.t) list

  (** [idle ctx k] syncs [k] times, discarding inboxes. *)
  val idle : ctx -> int -> unit

  (** Current round number (starts at 0, increments at each [sync]). *)
  val round : ctx -> int

  (** Record a one-sided-error rejection at this node; the program may keep
      running. *)
  val reject : ctx -> string -> unit

  val stats : ctx -> Stats.t

  type 'o result = {
    outputs : 'o option array;
        (** per node; [None] if the node did not finish before [max_rounds] *)
    rejections : (int * string) list;  (** (node, reason), by node id *)
    stats : Stats.t;
    completed : bool;  (** all nodes ran to completion *)
  }

  (** [run g program] executes [program] at every node of [g].

      @param seed     determinism seed for the per-node random states.
      @param bandwidth per-edge per-round bit budget
             (default {!Bits.default_bandwidth}).
      @param strict raise [Failure] on the first (edge, round) pair whose
             traffic exceeds [bandwidth], instead of charging extra rounds
             (default [false]).
      @param max_rounds safety limit; exceeding it stops the run with
             [completed = false]. *)
  val run :
    ?seed:int ->
    ?bandwidth:int ->
    ?strict:bool ->
    ?max_rounds:int ->
    Graphlib.Graph.t ->
    (ctx -> 'o) ->
    'o result
end
