(* Benchmark / experiment harness.

   The paper (PODC 2018) has no tables or figures — it is a theory paper —
   so each experiment below regenerates the quantitative content of one
   theorem or claim (see DESIGN.md's per-experiment index and EXPERIMENTS.md
   for paper-vs-measured).

   Usage:  bench [--quick|-q] [--jobs N] [--domains D] [--no-timings]
                 [--mode fiber|compiled|auto] [--json PATH]
                 [--faults SPEC] [--trace PATH]

   Independent (family, n, eps, seed) points inside each experiment are
   fanned across [--jobs] domains (default: the recommended domain count);
   results are reassembled in input order, so the report is identical to a
   serial run.  [--domains D] additionally shards node stepping *inside*
   each tester/partition run across D engine domains — every statistic is
   identical for any D, only wall-clock changes.  [--mode] selects the
   execution engine for the lockstep Stage I primitives (default fiber;
   compiled runs them as fiber-free array passes — every statistic and
   the whole report are byte-identical across modes, see
   Congest.Compiled).  [--no-timings] skips the
   serial Bechamel micro-benchmark section and suppresses every printed
   wall-clock column (A3's ff off/on set included): the remaining output
   depends only on simulated accounting, so it is stable for CI diffing.
   [--trace PATH] records a Congest.Trace of P1's sharded tester run and
   writes it as a binary .ctrace file for the planartrace analyzer.
   [--json PATH] additionally writes every experiment's data as a
   machine-readable document (schema "bench.planarity/v1"; '-' = stdout).
   [--faults SPEC] adds one extra user-chosen fault policy row to the R1
   verdict-stability experiment (see Congest.Faults.of_spec for the SPEC
   grammar); the built-in drop-probability sweep always runs. *)

open Graphlib
module J = Report.Json

(* --- command line ---------------------------------------------------- *)

let quick = ref false
let jobs = ref (max 1 (Domain.recommended_domain_count () - 1))
let domains = ref 1
let timings = ref true
let json_path = ref None
let faults_spec = ref None
let trace_path = ref None
let only = ref None
let mode = ref Congest.Compiled.Fiber
let log_level = ref "info"
let log_json = ref None
let ledger_path = ref None

(* Every experiment id `--only` accepts, in run order. *)
let known_ids =
  [ "E1"; "E2"; "E3"; "E4"; "E5"; "E6"; "E7"; "E8"; "E9"; "E10"; "E11";
    "E12"; "E13"; "E14"; "A1"; "A2"; "A3"; "P1"; "R1"; "M1"; "C1"; "T1";
    "L1"; "B" ]

let () =
  let argv = Sys.argv in
  let usage () =
    prerr_endline
      "usage: bench [--quick|-q] [--jobs N] [--domains D] [--no-timings] \
       [--mode fiber|compiled|auto] [--json PATH] [--faults SPEC] \
       [--trace PATH] [--only IDS] [--ledger PATH] [--log-level LEVEL] \
       [--log-json PATH]";
    exit 2
  in
  let rec parse i =
    if i < Array.length argv then
      match argv.(i) with
      | "--quick" | "-q" ->
          quick := true;
          parse (i + 1)
      | "--jobs" when i + 1 < Array.length argv ->
          (match int_of_string_opt argv.(i + 1) with
          | Some n when n >= 1 -> jobs := n
          | _ -> usage ());
          parse (i + 2)
      | "--domains" when i + 1 < Array.length argv ->
          (match int_of_string_opt argv.(i + 1) with
          | Some n when n >= 1 -> domains := n
          | _ -> usage ());
          parse (i + 2)
      | "--no-timings" ->
          timings := false;
          parse (i + 1)
      | "--json" when i + 1 < Array.length argv ->
          json_path := Some argv.(i + 1);
          parse (i + 2)
      | "--trace" when i + 1 < Array.length argv ->
          trace_path := Some argv.(i + 1);
          parse (i + 2)
      | "--faults" when i + 1 < Array.length argv ->
          (match Congest.Faults.of_spec argv.(i + 1) with
          | Ok p -> faults_spec := Some p
          | Error msg ->
              Printf.eprintf "bench: --faults: %s\n" msg;
              exit 2);
          parse (i + 2)
      | "--mode" when i + 1 < Array.length argv ->
          (match Congest.Compiled.mode_of_string argv.(i + 1) with
          | Some m -> mode := m
          | None ->
              Printf.eprintf
                "bench: --mode: unknown mode %S (expected fiber, compiled or \
                 auto)\n"
                argv.(i + 1);
              exit 2);
          parse (i + 2)
      | "--only" when i + 1 < Array.length argv ->
          let ids =
            String.split_on_char ',' argv.(i + 1)
            |> List.map String.trim
            |> List.filter (fun s -> s <> "")
            |> List.map String.uppercase_ascii
          in
          List.iter
            (fun id ->
              if not (List.mem id known_ids) then begin
                Printf.eprintf "bench: --only: unknown experiment %S (known: %s)\n"
                  id (String.concat "," known_ids);
                exit 2
              end)
            ids;
          if ids = [] then usage ();
          only := Some ids;
          parse (i + 2)
      | "--ledger" when i + 1 < Array.length argv ->
          ledger_path := Some argv.(i + 1);
          parse (i + 2)
      | "--log-level" when i + 1 < Array.length argv ->
          log_level := argv.(i + 1);
          parse (i + 2)
      | "--log-json" when i + 1 < Array.length argv ->
          log_json := Some argv.(i + 1);
          parse (i + 2)
      | _ -> usage ()
  in
  parse 1;
  (match Obs.Log.level_of_string !log_level with
  | Ok l -> Obs.Log.set_level l
  | Error msg ->
      Printf.eprintf "bench: %s\n" msg;
      exit 2);
  match !log_json with
  | None -> ()
  | Some path -> (
      match Obs.Log.set_json path with
      | Ok () -> at_exit Obs.Log.close_json
      | Error msg ->
          Printf.eprintf "bench: cannot open --log-json %s: %s\n" path msg;
          exit 2)

let bench_t0 = Unix.gettimeofday ()
let quick = !quick
let jobs = !jobs
let domains = !domains
let timings = !timings
let faults_spec = !faults_spec
let trace_path = !trace_path
let only = !only
let ledger_path = !ledger_path

(* The execution mode threaded into every tester / Stage I run below.
   The dispatcher falls back to the fiber engine on runs with faults or
   tracing attached, and all statistics are byte-identical across modes,
   so the whole report is mode-invariant (C1 checks that claim on the
   spot, timing both modes). *)
let mode = !mode

let want id = match only with None -> true | Some ids -> List.mem id ids

(* With --json -, stdout carries exactly the JSON document and the
   human-readable report moves to stderr (mirroring planartest
   --stats-json -). *)
let report_oc = if !json_path = Some "-" then stderr else stdout

(* --- parallel point driver ------------------------------------------- *)

(* Map [f] over [xs] using up to [jobs] domains pulling indices from a
   shared [Atomic] counter.  Results land in their input slot, so order —
   and therefore the printed report — matches a serial run.  Each point
   must be self-contained (every tester run builds its own state and
   engine pool), which all experiments below satisfy. *)
let parmap f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let out = Array.make n None in
  let w = max 1 (min jobs n) in
  if w = 1 then Array.iteri (fun i x -> out.(i) <- Some (f x)) arr
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          out.(i) <- Some (f arr.(i));
          loop ()
        end
      in
      loop ()
    in
    let doms = List.init (w - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join doms
  end;
  Array.to_list (Array.map Option.get out)

(* --- report helpers --------------------------------------------------- *)

let header title claim =
  Printf.fprintf report_oc "\n================================================================\n";
  Printf.fprintf report_oc "%s\n" title;
  Printf.fprintf report_oc "paper: %s\n" claim;
  Printf.fprintf report_oc "================================================================\n"

let row fmt = Printf.fprintf report_oc fmt

let log2 x = log (float_of_int (max x 2)) /. log 2.0

let sections : (string * J.t) list ref = ref []

(* [experiment id title claim data] prints the section header, stores the
   JSON section, and returns [data] for the caller to print rows from. *)
let emit id ~title ~claim data =
  header (id ^ " — " ^ title) claim;
  sections := (id, J.Obj [ ("title", J.String title); ("claim", J.String claim); ("data", data) ]) :: !sections

(* ------------------------------------------------------------------ *)

let e1_rounds_vs_n () =
  let sizes =
    if quick then [ 64; 128; 256; 512 ] else [ 64; 128; 256; 512; 1024; 2048 ]
  in
  let points =
    List.map (fun n -> ("apollonian", n)) sizes
    @ List.map (fun n -> ("grid", n)) sizes
  in
  let results =
    parmap
      (fun (family, n) ->
        let g =
          match family with
          | "apollonian" ->
              Generators.apollonian (Random.State.make [| n |]) n
          | _ ->
              let side = int_of_float (sqrt (float_of_int n)) in
              Generators.grid side side
        in
        let r = Tester.Planarity_tester.run ~domains ~mode g ~eps:0.3 ~seed:1 in
        ( family,
          Graph.n g,
          Graph.m g,
          r.Tester.Planarity_tester.rounds,
          r.Tester.Planarity_tester.nominal_rounds,
          r.Tester.Planarity_tester.fast_forwarded_rounds ))
      points
  in
  emit "E1" ~title:"tester rounds vs n (planar inputs)"
    ~claim:"Theorem 1: O(log n * poly(1/eps)) rounds"
    (J.List
       (List.map
          (fun (family, n, m, rounds, nominal, ff) ->
            J.Obj
              [
                ("family", J.String family);
                ("n", J.Int n);
                ("m", J.Int m);
                ("rounds", J.Int rounds);
                ("nominal", J.Int nominal);
                ("fast_forwarded_rounds", J.Int ff);
              ])
          results));
  row "%-12s %-6s %-7s %-9s %-10s %-9s %-11s %-14s\n" "family" "n" "m"
    "rounds" "nominal" "fast-fwd" "rounds/lg n" "nominal/lg n";
  List.iter
    (fun (family, n, m, rounds, nominal, ff) ->
      row "%-12s %-6d %-7d %-9d %-10d %-9d %-11.1f %-14.1f\n" family n m
        rounds nominal ff
        (float_of_int rounds /. log2 n)
        (float_of_int nominal /. log2 n))
    results

let e2_rounds_vs_eps () =
  let n = if quick then 256 else 512 in
  let g = Generators.apollonian (Random.State.make [| 77 |]) n in
  let epss = [ 0.5; 0.4; 0.3; 0.2; 0.15; 0.1 ] in
  let results =
    parmap
      (fun eps ->
        let r = Tester.Planarity_tester.run ~domains ~mode g ~eps ~seed:1 in
        let phases =
          match r.Tester.Planarity_tester.stage1 with
          | Some s1 -> List.length s1.Partition.Stage1.phases
          | None -> 0
        in
        ( eps,
          phases,
          r.Tester.Planarity_tester.rounds,
          r.Tester.Planarity_tester.nominal_rounds,
          Partition.Stage1.phases_for ~eps ~alpha:3 ))
      epss
  in
  emit "E2" ~title:"tester rounds vs eps (fixed n)"
    ~claim:
      "Theorem 1: poly(1/eps) dependence via t = O(log 1/eps) phases and 4^i \
       diameters"
    (J.Obj
       [
         ("n", J.Int n);
         ( "rows",
           J.List
             (List.map
                (fun (eps, phases, rounds, nominal, t_max) ->
                  J.Obj
                    [
                      ("eps", J.Float eps);
                      ("phases", J.Int phases);
                      ("rounds", J.Int rounds);
                      ("nominal", J.Int nominal);
                      ("t_max", J.Int t_max);
                    ])
                results) );
       ]);
  row "%-7s %-8s %-9s %-10s %-7s\n" "eps" "phases" "rounds" "nominal" "t_max";
  List.iter
    (fun (eps, phases, rounds, nominal, t_max) ->
      row "%-7.2f %-8d %-9d %-10d %-7d\n" eps phases rounds nominal t_max)
    results

let e3_completeness () =
  let trials = if quick then 10 else 25 in
  let families =
    [
      ("apollonian", fun rng -> Generators.apollonian rng 200);
      ("rand planar", fun rng -> Generators.random_planar rng ~n:200 ~m:420);
      ("grid 14x14", fun _ -> Generators.grid 14 14);
      ("tree", fun rng -> Generators.random_tree rng 200);
      ("cycle", fun _ -> Generators.cycle 200);
    ]
  in
  let points =
    List.concat_map
      (fun (name, gen) -> List.init trials (fun i -> (name, gen, i + 1)))
      families
  in
  let oks =
    parmap
      (fun (name, gen, seed) ->
        let g = gen (Random.State.make [| seed; 13 |]) in
        let ok =
          (not (Traversal.is_connected g))
          || Tester.Planarity_tester.accepts g ~eps:0.3 ~seed
        in
        (name, ok))
      points
  in
  let results =
    List.map
      (fun (name, _) ->
        let ok =
          List.length (List.filter (fun (f, ok) -> f = name && ok) oks)
        in
        (name, ok))
      families
  in
  emit "E3" ~title:"completeness (one-sided error)"
    ~claim:"Theorem 1: planar => every node outputs accept, always"
    (J.List
       (List.map
          (fun (name, ok) ->
            J.Obj
              [
                ("family", J.String name);
                ("trials", J.Int trials);
                ("accepted", J.Int ok);
              ])
          results));
  row "%-14s %-8s %-9s\n" "family" "trials" "accepted";
  List.iter
    (fun (name, ok) ->
      row "%-14s %-8d %-9d%s\n" name trials ok
        (if ok = trials then "  (100%)" else "  *** VIOLATION ***"))
    results

let e4_soundness () =
  let trials = if quick then 8 else 20 in
  let families =
    [
      ( "far(n=150, 0.25)",
        (fun rng -> Generators.far_from_planar rng ~n:150 ~eps:0.25),
        0.2 );
      ( "far(n=300, 0.15)",
        (fun rng -> Generators.far_from_planar rng ~n:300 ~eps:0.15),
        0.1 );
      ( "K33 x 20 necklace",
        (fun _ ->
          Generators.connected_copies (Generators.complete_bipartite 3 3) 20),
        0.05 );
      ("gnp(150, 8/n)", (fun rng -> Generators.gnp rng 150 (8.0 /. 150.0)), 0.15);
    ]
  in
  let points =
    List.concat_map
      (fun (name, gen, eps) ->
        List.init trials (fun i -> (name, gen, eps, i + 1)))
      families
  in
  let outcomes =
    parmap
      (fun (name, gen, eps, seed) ->
        let g : Graph.t = gen (Random.State.make [| seed; 29 |]) in
        let far = Planarity.Distance.eps_far_lower_bound g in
        let rejected = not (Tester.Planarity_tester.accepts g ~eps ~seed) in
        (name, far, rejected))
      points
  in
  let results =
    List.map
      (fun (name, _, eps) ->
        let mine = List.filter (fun (f, _, _) -> f = name) outcomes in
        let farness =
          List.fold_left (fun acc (_, far, _) -> min acc far) 1.0 mine
        in
        let rejected =
          List.length (List.filter (fun (_, _, r) -> r) mine)
        in
        (name, farness, eps, rejected))
      families
  in
  emit "E4" ~title:"soundness on certified eps-far inputs"
    ~claim:"Theorem 1: eps-far => some node rejects w.p. 1 - 1/poly(n)"
    (J.List
       (List.map
          (fun (name, farness, eps, rejected) ->
            J.Obj
              [
                ("family", J.String name);
                ("trials", J.Int trials);
                ("certified_far", J.Float farness);
                ("eps", J.Float eps);
                ("rejected", J.Int rejected);
              ])
          results));
  row "%-22s %-8s %-10s %-9s %-9s\n" "family" "trials" "cert. far" "eps used"
    "rejected";
  List.iter
    (fun (name, farness, eps, rejected) ->
      row "%-22s %-8d %-10.3f %-9.2f %d/%d\n" name trials farness eps rejected
        trials)
    results

let e5_weight_decay () =
  let n = if quick then 300 else 800 in
  let g = Generators.apollonian (Random.State.make [| 5 |]) n in
  let r = Partition.Stage1.run ~stop_when_met:false ~domains ~mode g ~eps:0.35 in
  let live, idle =
    List.partition
      (fun (p : Partition.Stage1.phase_trace) ->
        p.Partition.Stage1.cut_before > 0)
      r.Partition.Stage1.phases
  in
  let phase_row (p : Partition.Stage1.phase_trace) =
    let ratio =
      float_of_int p.Partition.Stage1.cut_after
      /. float_of_int (max 1 p.Partition.Stage1.cut_before)
    in
    let ok =
      float_of_int p.Partition.Stage1.cut_after
      <= (35.0 /. 36.0) *. float_of_int p.Partition.Stage1.cut_before +. 1e-9
    in
    (p, ratio, ok)
  in
  let rows = List.map phase_row live in
  emit "E5" ~title:"per-phase cut-weight decay"
    ~claim:"Claim 1: w(G_{i+1}) <= (1 - 1/(12 alpha)) w(G_i) = 0.9722 w(G_i)"
    (J.Obj
       [
         ("n", J.Int n);
         ( "phases",
           J.List
             (List.map
                (fun ((p : Partition.Stage1.phase_trace), ratio, ok) ->
                  J.Obj
                    [
                      ("phase", J.Int p.Partition.Stage1.phase);
                      ("cut_before", J.Int p.Partition.Stage1.cut_before);
                      ("cut_after", J.Int p.Partition.Stage1.cut_after);
                      ("ratio", J.Float ratio);
                      ("ok", J.Bool ok);
                    ])
                rows) );
         ("idle_phases", J.Int (List.length idle));
       ]);
  row "%-7s %-10s %-10s %-8s %-14s\n" "phase" "cut in" "cut out" "ratio"
    "bound (35/36)";
  List.iter
    (fun ((p : Partition.Stage1.phase_trace), ratio, ok) ->
      row "%-7d %-10d %-10d %-8.3f %-14s\n" p.Partition.Stage1.phase
        p.Partition.Stage1.cut_before p.Partition.Stage1.cut_after ratio
        (if ok then "ok" else "*** VIOLATION ***"))
    rows;
  if idle <> [] then
    row "(+ %d further scheduled phases with an already-empty cut)\n"
      (List.length idle)

let e6_diameter_growth () =
  let side = if quick then 16 else 24 in
  let g = Generators.grid side side in
  let r = Partition.Stage1.run ~stop_when_met:false ~domains ~mode g ~eps:0.4 in
  let shown = ref 0 in
  let rows =
    List.filter_map
      (fun (p : Partition.Stage1.phase_trace) ->
        if p.Partition.Stage1.parts > 1 || !shown < 1 then begin
          if p.Partition.Stage1.parts = 1 then incr shown;
          let bound = 4.0 ** float_of_int p.Partition.Stage1.phase in
          Some (p, bound, float_of_int p.Partition.Stage1.max_diameter <= bound)
        end
        else None)
      r.Partition.Stage1.phases
  in
  emit "E6" ~title:"part diameters across phases"
    ~claim:"Claim 4: parts of P_i are connected with diameter <= 4^i"
    (J.List
       (List.map
          (fun ((p : Partition.Stage1.phase_trace), bound, ok) ->
            J.Obj
              [
                ("phase", J.Int p.Partition.Stage1.phase);
                ("parts", J.Int p.Partition.Stage1.parts);
                ("max_diameter", J.Int p.Partition.Stage1.max_diameter);
                ("bound", J.Float bound);
                ("ok", J.Bool ok);
              ])
          rows));
  row "%-7s %-10s %-12s %-10s %-8s\n" "phase" "parts" "max diam" "4^i" "ok?";
  List.iter
    (fun ((p : Partition.Stage1.phase_trace), bound, ok) ->
      row "%-7d %-10d %-12d %-10.0f %-8s\n" p.Partition.Stage1.phase
        p.Partition.Stage1.parts p.Partition.Stage1.max_diameter bound
        (if ok then "ok" else "*** VIOLATION ***"))
    rows;
  row "(remaining scheduled phases keep a single part; bound holds trivially)\n"

let e7_cut_quality () =
  let n = if quick then 400 else 1000 in
  let g = Generators.apollonian (Random.State.make [| 6 |]) n in
  let results =
    parmap
      (fun eps ->
        let r = Partition.Stage1.run ~domains ~mode g ~eps in
        let cut = Partition.State.cut_edges r.Partition.Stage1.state in
        let target = eps *. float_of_int (Graph.m g) /. 2.0 in
        ( eps,
          List.length r.Partition.Stage1.phases,
          target,
          cut,
          float_of_int cut <= target ))
      [ 0.5; 0.4; 0.3; 0.2; 0.1 ]
  in
  emit "E7" ~title:"final cut vs target"
    ~claim:"Claim 3 / Theorem 3: planar inputs always reach cut <= eps m / 2"
    (J.Obj
       [
         ("n", J.Int n);
         ( "rows",
           J.List
             (List.map
                (fun (eps, phases, target, cut, ok) ->
                  J.Obj
                    [
                      ("eps", J.Float eps);
                      ("phases", J.Int phases);
                      ("target", J.Float target);
                      ("cut", J.Int cut);
                      ("ok", J.Bool ok);
                    ])
                results) );
       ]);
  row "%-7s %-9s %-11s %-9s %-8s\n" "eps" "phases" "target" "cut" "ok?";
  List.iter
    (fun (eps, phases, target, cut, ok) ->
      row "%-7.2f %-9d %-11.0f %-9d %-8s\n" eps phases target cut
        (if ok then "ok" else "*** VIOLATION ***"))
    results

let e8_randomized_partition () =
  let side = if quick then 14 else 20 in
  let g = Generators.grid side side in
  let trials = if quick then 8 else 20 in
  let det =
    Partition.Stage1.run ~domains ~mode g
      ~eps:(2.0 *. 0.5 *. float_of_int (Graph.n g) /. float_of_int (Graph.m g))
  in
  let det_rounds = det.Partition.Stage1.rounds in
  let det_cut = Partition.State.cut_edges det.Partition.Stage1.state in
  let deltas = [ 0.5; 0.25; 0.1; 0.02 ] in
  let points =
    List.concat_map
      (fun delta -> List.init trials (fun i -> (delta, i + 1)))
      deltas
  in
  let outcomes =
    parmap
      (fun (delta, seed) ->
        let r = Partition.Random_partition.run g ~eps:0.5 ~delta ~seed in
        ( delta,
          r.Partition.Random_partition.rounds,
          r.Partition.Random_partition.cut,
          float_of_int r.Partition.Random_partition.cut
          <= 0.5 *. float_of_int (Graph.n g) ))
      points
  in
  let results =
    List.map
      (fun delta ->
        let mine = List.filter (fun (d, _, _, _) -> d = delta) outcomes in
        let succ = List.length (List.filter (fun (_, _, _, ok) -> ok) mine) in
        let rounds = List.fold_left (fun a (_, r, _, _) -> a + r) 0 mine in
        let cut = List.fold_left (fun a (_, _, c, _) -> a + c) 0 mine in
        (delta, succ, rounds / trials, cut / trials))
      deltas
  in
  emit "E8" ~title:"randomized partition (Theorem 4)"
    ~claim:
      "O(poly(1/eps)(log(1/delta) + log* n)) rounds; cut <= eps n w.p. 1 - \
       delta"
    (J.Obj
       [
         ( "baseline",
           J.Obj [ ("rounds", J.Int det_rounds); ("cut", J.Int det_cut) ] );
         ( "rows",
           J.List
             (List.map
                (fun (delta, succ, avg_rounds, avg_cut) ->
                  J.Obj
                    [
                      ("delta", J.Float delta);
                      ("trials", J.Int trials);
                      ("success", J.Int succ);
                      ("avg_rounds", J.Int avg_rounds);
                      ("avg_cut", J.Int avg_cut);
                    ])
                results) );
       ]);
  row "deterministic baseline: rounds=%d cut=%d\n\n" det_rounds det_cut;
  row "%-8s %-8s %-10s %-12s %-12s\n" "delta" "trials" "success" "avg rounds"
    "avg cut";
  List.iter
    (fun (delta, succ, avg_rounds, avg_cut) ->
      row "%-8.2f %-8d %d/%-8d %-12d %-12d\n" delta trials succ trials
        avg_rounds avg_cut)
    results

let e9_spanner () =
  let n = if quick then 300 else 800 in
  let g = Generators.apollonian (Random.State.make [| 7 |]) n in
  let ours =
    List.map
      (fun eps ->
        let r = Tester.Spanner.build g ~eps in
        ( eps,
          Graph.m r.Tester.Spanner.spanner,
          (1.0 +. eps) *. float_of_int n,
          Tester.Spanner.measured_stretch g r.Tester.Spanner.spanner,
          r.Tester.Spanner.stretch_bound ))
      [ 0.5; 0.25; 0.1 ]
  in
  let en =
    List.map
      (fun k ->
        let r = Tester.Elkin_neiman.build g ~k ~delta:0.25 ~seed:2 in
        ( k,
          r.Tester.Elkin_neiman.edges,
          float_of_int n ** (1.0 +. (1.0 /. float_of_int k)) /. 0.25,
          Tester.Spanner.measured_stretch g r.Tester.Elkin_neiman.spanner,
          (2 * k) - 1 ))
      [ 2; 3; 5; 8; 12; 20 ]
  in
  emit "E9" ~title:"spanners: Corollary 17 vs Elkin-Neiman baseline"
    ~claim:
      "Cor 17: (1 + O(eps)) n edges, poly(1/eps) stretch; EN: (2k-1)-spanner, \
       O(n^{1+1/k}/delta) edges"
    (J.Obj
       [
         ("n", J.Int n);
         ("m", J.Int (Graph.m g));
         ( "ours",
           J.List
             (List.map
                (fun (eps, edges, bound, stretch, stretch_bound) ->
                  J.Obj
                    [
                      ("eps", J.Float eps);
                      ("edges", J.Int edges);
                      ("size_bound", J.Float bound);
                      ("stretch", J.Int stretch);
                      ("stretch_bound", J.Int stretch_bound);
                    ])
                ours) );
         ( "elkin_neiman",
           J.List
             (List.map
                (fun (k, edges, bound, stretch, stretch_bound) ->
                  J.Obj
                    [
                      ("k", J.Int k);
                      ("edges", J.Int edges);
                      ("size_bound", J.Float bound);
                      ("stretch", J.Int stretch);
                      ("stretch_bound", J.Int stretch_bound);
                    ])
                en) );
       ]);
  row "input: apollonian n=%d m=%d\n\n" (Graph.n g) (Graph.m g);
  row "ours   %-7s %-8s %-12s %-14s %-14s\n" "eps" "edges" "(1+eps)n"
    "stretch (meas)" "stretch bound";
  List.iter
    (fun (eps, edges, bound, stretch, stretch_bound) ->
      row "       %-7.2f %-8d %-12.0f %-14d %-14d\n" eps edges bound stretch
        stretch_bound)
    ours;
  row "\nEN     %-7s %-8s %-12s %-14s %-14s\n" "k" "edges" "size bound"
    "stretch (meas)" "2k-1";
  List.iter
    (fun (k, edges, bound, stretch, stretch_bound) ->
      row "       %-7d %-8d %-12.0f %-14d %-14d\n" k edges bound stretch
        stretch_bound)
    en

let e10_lower_bound () =
  let sizes =
    if quick then [ 128; 256; 512 ] else [ 128; 256; 512; 1024; 2048 ]
  in
  let results =
    parmap
      (fun n ->
        let rng = Random.State.make [| n; 41 |] in
        let c =
          Lowerbound.Construction.build rng ~n ~avg_degree:6.0
            ~girth_factor:1.6
        in
        let g = c.Lowerbound.Construction.graph in
        let rejected =
          not (Tester.Planarity_tester.accepts g ~eps:0.1 ~seed:1)
        in
        (n, Graph.m g, c, rejected))
      sizes
  in
  emit "E10" ~title:"the Omega(log n) lower-bound construction"
    ~claim:
      "Theorem 2 (Claims 11-12): constant-far graphs with girth Omega(log n) \
       force Omega(log n) rounds"
    (J.List
       (List.map
          (fun (n, m, c, rejected) ->
            J.Obj
              [
                ("n", J.Int n);
                ("m", J.Int m);
                ("removed", J.Int c.Lowerbound.Construction.removed);
                ( "girth",
                  match c.Lowerbound.Construction.girth with
                  | Some girth -> J.Int girth
                  | None -> J.Null );
                ("eps_far", J.Float c.Lowerbound.Construction.euler_far);
                ( "blind_radius",
                  J.Int (Lowerbound.Construction.indistinguishability_radius c)
                );
                ("rejected", J.Bool rejected);
              ])
          results));
  row "%-6s %-7s %-9s %-7s %-9s %-13s %-10s\n" "n" "m" "removed" "girth"
    "eps-far" "blind radius" "rejected?";
  List.iter
    (fun (n, m, c, rejected) ->
      row "%-6d %-7d %-9d %-7s %-9.3f %-13d %-10b\n" n m
        c.Lowerbound.Construction.removed
        (match c.Lowerbound.Construction.girth with
        | Some girth -> string_of_int girth
        | None -> "inf")
        c.Lowerbound.Construction.euler_far
        (Lowerbound.Construction.indistinguishability_radius c)
        rejected)
    results;
  row "\n(blind radius r: any one-sided tester must accept if it runs < r rounds,\n";
  row " because every r-ball is a tree; the radius grows with log n.)\n"

let e11_minor_free_testers () =
  let rng = Random.State.make [| 51 |] in
  let n = if quick then 150 else 400 in
  let cases =
    [
      ("tree (cycle-free)", Generators.random_tree rng n, `Cyc, true);
      ("grid (far from forest)", Generators.grid 14 14, `Cyc, false);
      ("grid (bipartite)", Generators.grid 14 14, `Bip, true);
      ("triangulation (far)", Generators.apollonian rng n, `Bip, false);
    ]
  in
  let results =
    parmap
      (fun (name, g, prop, expect) ->
        let det =
          match prop with
          | `Cyc -> Tester.Minor_free_testers.test_cycle_freeness g ~eps:0.3
          | `Bip -> Tester.Minor_free_testers.test_bipartiteness g ~eps:0.3
        in
        let rand =
          let mode = Tester.Minor_free_testers.Randomized 0.1 in
          match prop with
          | `Cyc ->
              Tester.Minor_free_testers.test_cycle_freeness ~mode g ~eps:0.3
          | `Bip ->
              Tester.Minor_free_testers.test_bipartiteness ~mode g ~eps:0.3
        in
        (name, prop, expect, det, rand))
      cases
  in
  emit "E11" ~title:"cycle-freeness and bipartiteness testers (minor-free promise)"
    ~claim:
      "Corollary 16: O(poly(1/eps) log n) deterministic / \
       O(poly(1/eps)(log 1/delta + log* n)) randomized"
    (J.List
       (List.map
          (fun (name, prop, expect, det, rand) ->
            J.Obj
              [
                ("input", J.String name);
                ( "property",
                  J.String
                    (match prop with `Cyc -> "cycle-free" | `Bip -> "bipartite")
                );
                ("expect", J.Bool expect);
                ("det", J.Bool det.Tester.Minor_free_testers.accepted);
                ("rand", J.Bool rand.Tester.Minor_free_testers.accepted);
                ("rounds", J.Int det.Tester.Minor_free_testers.rounds);
              ])
          results));
  row "%-26s %-14s %-8s %-9s %-9s %-9s\n" "input" "property" "expect" "det"
    "rand" "rounds";
  List.iter
    (fun (name, prop, expect, det, rand) ->
      row "%-26s %-14s %-8b %-9b %-9b %-9d\n" name
        (match prop with `Cyc -> "cycle-free" | `Bip -> "bipartite")
        expect det.Tester.Minor_free_testers.accepted
        rand.Tester.Minor_free_testers.accepted
        det.Tester.Minor_free_testers.rounds)
    results

let e12_emulation_cost () =
  let n = if quick then 300 else 800 in
  let g = Generators.apollonian (Random.State.make [| 9 |]) n in
  let r = Partition.Stage1.run ~domains ~mode g ~eps:0.3 in
  let st = r.Partition.Stage1.state in
  let stats = st.Partition.State.stats in
  emit "E12" ~title:"emulation cost accounting"
    ~claim:
      "Section 2.1.5: a super-round costs O(max part diameter) G-rounds; \
       messages stay O(log n) bits"
    (J.Obj
       [
         ("n", J.Int (Graph.n g));
         ("m", J.Int (Graph.m g));
         ("phases", J.Int (List.length r.Partition.Stage1.phases));
         ("stats", Congest.Telemetry.stats_json stats);
         ("nominal", J.Int r.Partition.Stage1.nominal_rounds);
         ( "phase_table",
           J.List
             (List.map
                (fun (p : Partition.Stage1.phase_trace) ->
                  J.Obj
                    [
                      ("phase", J.Int p.Partition.Stage1.phase);
                      ("fd_super_rounds", J.Int p.Partition.Stage1.fd_super_rounds);
                      ("max_diameter", J.Int p.Partition.Stage1.max_diameter);
                      ("max_tree_depth", J.Int p.Partition.Stage1.max_tree_depth);
                    ])
                r.Partition.Stage1.phases) );
       ]);
  row "n=%d m=%d  phases=%d\n" (Graph.n g) (Graph.m g)
    (List.length r.Partition.Stage1.phases);
  row "simulated rounds      : %d\n" stats.Congest.Stats.rounds;
  row "bandwidth-charged     : %d\n" stats.Congest.Stats.charged_rounds;
  row "nominal (paper sched.): %d\n" r.Partition.Stage1.nominal_rounds;
  row "messages              : %d\n" stats.Congest.Stats.messages;
  row "max bits on one edge  : %d (bandwidth %d)\n"
    stats.Congest.Stats.max_edge_bits stats.Congest.Stats.bandwidth;
  row "oversized (edge,round): %d\n" stats.Congest.Stats.oversized;
  row "%-7s %-14s %-12s %-14s\n" "phase" "fd super-rnds" "max diam"
    "tree depth";
  List.iter
    (fun (p : Partition.Stage1.phase_trace) ->
      row "%-7d %-14d %-12d %-14d\n" p.Partition.Stage1.phase
        p.Partition.Stage1.fd_super_rounds p.Partition.Stage1.max_diameter
        p.Partition.Stage1.max_tree_depth)
    r.Partition.Stage1.phases

let e13_partition_alternatives () =
  let sizes =
    if quick then [ 128; 256; 512 ] else [ 128; 256; 512; 1024; 2048 ]
  in
  let results =
    parmap
      (fun n ->
        let g = Generators.apollonian (Random.State.make [| n; 3 |]) n in
        let eps = 0.3 in
        let s1 = Tester.Planarity_tester.run ~domains ~mode g ~eps ~seed:1 in
        let s1_cut =
          match s1.Tester.Planarity_tester.stage1 with
          | Some r -> Partition.State.cut_edges r.Partition.Stage1.state
          | None -> -1
        in
        let en_part = Partition.En_partition.run g ~eps ~seed:1 in
        let en =
          Tester.Planarity_tester.run
            ~partition:Tester.Planarity_tester.Exponential_shifts ~domains
            ~mode g ~eps ~seed:1
        in
        let verdict r =
          match r.Tester.Planarity_tester.verdict with
          | Tester.Planarity_tester.Accept -> true
          | _ -> false
        in
        ( n,
          (s1.Tester.Planarity_tester.rounds, s1_cut, verdict s1),
          ( en.Tester.Planarity_tester.rounds,
            en_part.Partition.En_partition.cut,
            verdict en,
            en_part.Partition.En_partition.radius_bound ) ))
      sizes
  in
  emit "E13" ~title:"Stage I vs the exponential-shift partition (Section 1.1 remark)"
    ~claim:
      "replacing Stage I with the adapted Elkin-Neiman partition gives \
       O(log^2 n poly(1/eps)) rounds"
    (J.List
       (List.map
          (fun (n, (s1r, s1c, s1ok), (enr, enc, enok, radius)) ->
            J.Obj
              [
                ("n", J.Int n);
                ( "stage1",
                  J.Obj
                    [
                      ("rounds", J.Int s1r);
                      ("cut", J.Int s1c);
                      ("ok", J.Bool s1ok);
                    ] );
                ( "exp_shifts",
                  J.Obj
                    [
                      ("rounds", J.Int enr);
                      ("cut", J.Int enc);
                      ("ok", J.Bool enok);
                      ("radius_bound", J.Int radius);
                    ] );
              ])
          results));
  row "%-6s | %-22s | %-26s\n" "" "Stage I (Theorem 1)" "exp. shifts (EN-style)";
  row "%-6s | %-9s %-6s %-5s | %-9s %-6s %-5s %-6s\n" "n" "rounds" "cut"
    "okay" "rounds" "cut" "okay" "R";
  List.iter
    (fun (n, (s1r, s1c, s1ok), (enr, enc, enok, radius)) ->
      row "%-6d | %-9d %-6d %-5b | %-9d %-6d %-5b %-6d\n" n s1r s1c s1ok enr
        enc enok radius;
      if (not s1ok) || not enok then
        row "        *** COMPLETENESS VIOLATION ***\n")
    results

let e14_embedding_modes () =
  let sizes = if quick then [ 200; 400 ] else [ 200; 400; 800; 1600 ] in
  let points =
    List.concat_map
      (fun n -> [ (n, Tester.Stage2.Oracle); (n, Tester.Stage2.Collect) ])
      sizes
  in
  let outcomes =
    parmap
      (fun (n, mode) ->
        let g = Generators.apollonian (Random.State.make [| n; 7 |]) n in
        let r =
          Tester.Planarity_tester.run ~embedding:mode ~domains g ~eps:0.3
            ~seed:1
        in
        let st =
          match r.Tester.Planarity_tester.stage1 with
          | Some s1 -> s1.Partition.Stage1.state
          | None -> assert false
        in
        ( n,
          mode,
          r.Tester.Planarity_tester.rounds,
          st.Partition.State.stats.Congest.Stats.charged_rounds ))
      points
  in
  let results =
    List.map
      (fun n ->
        let find mode =
          let _, _, rounds, charged =
            List.find (fun (n', m, _, _) -> n' = n && m = mode) outcomes
          in
          (rounds, charged)
        in
        (n, find Tester.Stage2.Oracle, find Tester.Stage2.Collect))
      sizes
  in
  emit "E14" ~title:"what Ghaffari-Haeupler saves: oracle-charged vs collect-and-embed"
    ~claim:
      "GH embeds in O(D + min(log n, D)) rounds; shipping each part to its \
       root costs Omega(m_j log n / B)"
    (J.List
       (List.map
          (fun (n, (o_rounds, o_charged), (c_rounds, c_charged)) ->
            J.Obj
              [
                ("n", J.Int n);
                ( "oracle",
                  J.Obj
                    [ ("rounds", J.Int o_rounds); ("charged", J.Int o_charged) ]
                );
                ( "collect",
                  J.Obj
                    [ ("rounds", J.Int c_rounds); ("charged", J.Int c_charged) ]
                );
              ])
          results));
  row "%-6s %-24s %-24s\n" "" "oracle (GH cost)" "collect-and-embed";
  row "%-6s %-11s %-12s %-11s %-12s\n" "n" "rounds" "charged" "rounds"
    "charged";
  List.iter
    (fun (n, (o_rounds, o_charged), (c_rounds, c_charged)) ->
      row "%-6d %-11d %-12d %-11d %-12d\n" n o_rounds o_charged c_rounds
        c_charged)
    results;
  row "(the gap in charged rounds grows with part size: that gap is the\n";
  row " value of the Ghaffari-Haeupler distributed embedding algorithm.)\n"

(* ------------------------------------------------------------------ *)
(* Ablations of design choices (DESIGN.md)                             *)
(* ------------------------------------------------------------------ *)

let a1_selection_rule () =
  let n = if quick then 300 else 600 in
  let g = Generators.apollonian (Random.State.make [| 61 |]) n in
  let det = Partition.Stage1.run ~domains ~mode g ~eps:0.4 in
  let avg_ratio phases =
    let rs =
      List.filter_map
        (fun (p : Partition.Stage1.phase_trace) ->
          if p.Partition.Stage1.cut_before = 0 then None
          else
            Some
              (float_of_int p.Partition.Stage1.cut_after
              /. float_of_int p.Partition.Stage1.cut_before))
        phases
    in
    List.fold_left ( +. ) 0.0 rs /. float_of_int (max 1 (List.length rs))
  in
  let det_phases = List.length det.Partition.Stage1.phases in
  let det_ratio = avg_ratio det.Partition.Stage1.phases in
  let trials = if quick then 3 else 6 in
  let outcomes =
    parmap
      (fun seed ->
        let r =
          Partition.Random_partition.run g
            ~eps:(0.4 *. float_of_int (Graph.m g) /. (2.0 *. float_of_int n))
            ~delta:0.1 ~seed
        in
        ( r.Partition.Random_partition.phases,
          (float_of_int r.Partition.Random_partition.cut
          /. float_of_int (Graph.m g))
          ** (1.0 /. float_of_int (max 1 r.Partition.Random_partition.phases))
        ))
      (List.init trials (fun i -> i + 1))
  in
  let rnd_phases = List.fold_left (fun a (p, _) -> a + p) 0 outcomes in
  let rnd_ratio = List.fold_left (fun a (_, r) -> a +. r) 0.0 outcomes in
  let rnd_phases = float_of_int rnd_phases /. float_of_int trials in
  let rnd_ratio = rnd_ratio /. float_of_int trials in
  emit "A1" ~title:"ablation: heaviest-edge vs random weighted selection"
    ~claim:
      "Sub-step 1 (deterministic, Claim 1 rate 1/36) vs Section 4 selection \
       (Claim 14 rate 1/192)"
    (J.Obj
       [
         ( "heaviest",
           J.Obj
             [ ("phases", J.Int det_phases); ("avg_ratio", J.Float det_ratio) ]
         );
         ( "random",
           J.Obj
             [
               ("phases", J.Float rnd_phases);
               ("avg_ratio", J.Float rnd_ratio);
               ("trials", J.Int trials);
             ] );
       ]);
  row "heaviest (Stage I)  : phases=%-3d avg per-phase cut ratio=%.3f\n"
    det_phases det_ratio;
  row
    "random (Theorem 4)  : phases=%.1f avg per-phase cut ratio=%.3f (matched \
     cut target, %d seeds)\n"
    rnd_phases rnd_ratio trials;
  row "(heavier selections contract more weight per phase, as the constants\n";
  row " 1/(12 alpha) vs 1/(64 alpha) in Claims 1 and 14 predict.)\n"

let a2_corner_keys () =
  let trials = if quick then 40 else 150 in
  let outcomes =
    parmap
      (fun seed ->
        let rng = Random.State.make [| seed; 71 |] in
        let g = Generators.apollonian rng (10 + Random.State.int rng 80) in
        ( Tester.Violation.count_violating_vertex_labels g > 0,
          Tester.Violation.count_violating g > 0 ))
      (List.init trials (fun i -> i + 1))
  in
  let false_pos =
    List.length (List.filter (fun (v, _) -> v) outcomes)
  in
  let corner = List.length (List.filter (fun (_, c) -> c) outcomes) in
  let far =
    Generators.far_from_planar (Random.State.make [| 72 |]) ~n:100 ~eps:0.25
  in
  let far_vertex = Tester.Violation.count_violating_vertex_labels far in
  let far_corner = Tester.Violation.count_violating far in
  let far_dist = Planarity.Distance.euler_lower_bound far in
  emit "A2" ~title:"ablation: vertex-level labels vs corner keys (Definition 7)"
    ~claim:
      "Claim 10 as stated fails with vertex-level labels; the corner \
       refinement repairs it"
    (J.Obj
       [
         ("trials", J.Int trials);
         ("vertex_label_false_positives", J.Int false_pos);
         ("corner_key_false_positives", J.Int corner);
         ( "far_input",
           J.Obj
             [
               ("vertex", J.Int far_vertex);
               ("corner", J.Int far_corner);
               ("certified_distance", J.Int far_dist);
             ] );
       ]);
  row "planar triangulations with false 'violating edges':\n";
  row "  vertex-level labels : %d / %d  (one-sidedness broken)\n" false_pos
    trials;
  row "  corner keys         : %d / %d\n" corner trials;
  row "on far graphs both detect plenty (n=100, eps=0.25):\n";
  row "  vertex-level=%d corner=%d (certified distance >= %d)\n" far_vertex
    far_corner far_dist

(* Wall-clock one thunk, serially (never inside [parmap]: concurrent
   workers would distort the clock). *)
let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let a3_adaptive_schedule () =
  let n = if quick then 300 else 600 in
  let g = Generators.apollonian (Random.State.make [| 81 |]) n in
  let results =
    (* Timed serially: the whole point of the slow/fast columns is the
       wall-clock effect of quiescent-round fast-forwarding on the full
       fixed schedule. *)
    List.map
      (fun eps ->
        let a = Partition.Stage1.run ~domains ~mode g ~eps in
        let f_slow, slow_s =
          time (fun () ->
              Partition.Stage1.run ~stop_when_met:false ~domains ~mode
                ~fast_forward:false g ~eps)
        in
        let f, fast_s =
          time (fun () ->
              Partition.Stage1.run ~stop_when_met:false ~domains ~mode g ~eps)
        in
        let stats r =
          r.Partition.Stage1.state.Partition.State.stats
        in
        assert (Congest.Stats.(
          (stats f_slow).rounds = (stats f).rounds
          && (stats f_slow).charged_rounds = (stats f).charged_rounds
          && (stats f_slow).messages = (stats f).messages
          && (stats f_slow).total_bits = (stats f).total_bits));
        ( eps,
          (List.length a.Partition.Stage1.phases, a.Partition.Stage1.rounds),
          (List.length f.Partition.Stage1.phases, f.Partition.Stage1.rounds),
          Partition.Stage1.phases_for ~eps ~alpha:3,
          (stats f).Congest.Stats.fast_forwarded_rounds,
          slow_s,
          fast_s ))
      [ 0.5; 0.3 ]
  in
  emit "A3" ~title:"ablation: adaptive early stop vs the full fixed schedule"
    ~claim:
      "stop_when_met skips provably idle phases; the worst-case analysis \
       needs the full t = O(log 1/eps); fast-forward makes the idle tail \
       O(1) per quiet span"
    (J.List
       (List.map
          (fun (eps, (ap, ar), (fp, fr), t_max, ff, slow_s, fast_s) ->
            J.Obj
              [
                ("eps", J.Float eps);
                ( "adaptive",
                  J.Obj [ ("phases", J.Int ap); ("rounds", J.Int ar) ] );
                ("full", J.Obj [ ("phases", J.Int fp); ("rounds", J.Int fr) ]);
                ("t_max", J.Int t_max);
                ("fast_forwarded_rounds", J.Int ff);
                ("full_no_ff_seconds", J.Float slow_s);
                ("full_ff_seconds", J.Float fast_s);
                ("ff_speedup", J.Float (slow_s /. max 1e-9 fast_s));
              ])
          results));
  (* The wall-clock column set rides on the same [--no-timings] switch as
     the Bechamel section: with it off, every printed cell is a pure
     function of simulated accounting. *)
  if timings then
    row "%-7s %-18s %-18s %-7s %-9s %-22s\n" "eps" "adaptive (ph/rnds)"
      "full (ph/rnds)" "t_max" "fast-fwd" "full wall-clock (ff off/on)"
  else
    row "%-7s %-18s %-18s %-7s %-9s\n" "eps" "adaptive (ph/rnds)"
      "full (ph/rnds)" "t_max" "fast-fwd";
  List.iter
    (fun (eps, (ap, ar), (fp, fr), t_max, ff, slow_s, fast_s) ->
      if timings then
        row "%-7.2f %3d / %-12d %3d / %-12d %-7d %-9d %.3fs / %.3fs (%.1fx)\n"
          eps ap ar fp fr t_max ff slow_s fast_s (slow_s /. max 1e-9 fast_s)
      else row "%-7.2f %3d / %-12d %3d / %-12d %-7d %-9d\n" eps ap ar fp fr t_max ff)
    results

(* ------------------------------------------------------------------ *)
(* Engine wall-clock: domain sharding and fast-forward (tentpole PR)    *)
(* ------------------------------------------------------------------ *)

let p1_engine_wallclock () =
  let n = if quick then 512 else 2048 in
  let g = Generators.apollonian (Random.State.make [| n |]) n in
  (* Serial timing on purpose; [parmap] concurrency would distort it. *)
  let baseline, base_s =
    time (fun () ->
        Tester.Planarity_tester.run ~domains:1 ~fast_forward:false ~mode g ~eps:0.3
          ~seed:1)
  in
  let run_d d =
    let r, s =
      time (fun () ->
          Tester.Planarity_tester.run ~domains:d ~mode g ~eps:0.3 ~seed:1)
    in
    (* The determinism contract, checked on the spot: every statistic is
       independent of the domain count and of fast-forwarding. *)
    assert (
      r.Tester.Planarity_tester.rounds
      = baseline.Tester.Planarity_tester.rounds
      && r.Tester.Planarity_tester.messages
         = baseline.Tester.Planarity_tester.messages
      && r.Tester.Planarity_tester.total_bits
         = baseline.Tester.Planarity_tester.total_bits);
    (d, r, s)
  in
  let runs = List.map run_d [ 1; 2; 4 ] in
  let cores = Domain.recommended_domain_count () in
  emit "P1"
    ~title:"engine wall-clock: E1 tester under --domains and fast-forward"
    ~claim:
      "identical stats for any domain count; wall-clock gains come from \
       sharded stepping (needs real cores) and O(1) quiescent-round skips"
    (J.Obj
       [
         ("family", J.String "apollonian");
         ("n", J.Int n);
         ("host_cores", J.Int cores);
         ("baseline_no_ff_seconds", J.Float base_s);
         ( "runs",
           J.List
             (List.map
                (fun (d, r, s) ->
                  J.Obj
                    [
                      ("domains", J.Int d);
                      ("seconds", J.Float s);
                      ("speedup_vs_no_ff", J.Float (base_s /. max 1e-9 s));
                      ( "fast_forwarded_rounds",
                        J.Int r.Tester.Planarity_tester.fast_forwarded_rounds
                      );
                      ("rounds", J.Int r.Tester.Planarity_tester.rounds);
                    ])
                runs) );
       ]);
  row "input: apollonian n=%d; host cores available: %d\n" n cores;
  if timings then begin
    row "baseline (domains=1, fast-forward off): %.3fs\n\n" base_s;
    row "%-9s %-10s %-18s %-12s\n" "domains" "seconds" "speedup vs no-ff"
      "fast-fwd rounds";
    List.iter
      (fun (d, r, s) ->
        row "%-9d %-10.3f %-18.2f %-12d\n" d s
          (base_s /. max 1e-9 s)
          r.Tester.Planarity_tester.fast_forwarded_rounds)
      runs
  end
  else begin
    row "%-9s %-12s\n" "domains" "fast-fwd rounds";
    List.iter
      (fun (d, r, _) ->
        row "%-9d %-12d\n" d r.Tester.Planarity_tester.fast_forwarded_rounds)
      runs
  end;
  (match trace_path with
  | Some path ->
      (* One extra traced run of the same point: the recording hooks stay
         out of the timed runs above, so [--trace] cannot distort them. *)
      let tr = Congest.Trace.create () in
      ignore (Tester.Planarity_tester.run ~domains ~trace:tr g ~eps:0.3 ~seed:1);
      Congest.Trace.finish tr;
      (try Report.Ctrace.write path tr
       with Sys_error msg ->
         Obs.Log.errorf "bench: cannot write trace %s: %s" path msg;
         exit 1);
      row "trace written to %s (planartrace info/edges/phases/export)\n" path
  | None -> ());
  if cores < 4 then
    row
      "(host exposes %d core(s): domain sharding cannot yield wall-clock \
       gains here;\n the speedups above come from quiescent-round \
       fast-forwarding, which is\n exact — every statistic matches the \
       baseline run.)\n"
      cores

(* ------------------------------------------------------------------ *)
(* Fault injection: verdict stability (tentpole PR)                     *)
(* ------------------------------------------------------------------ *)

let r1_fault_stability () =
  let n = if quick then 96 else 200 in
  let trials = if quick then 3 else 5 in
  let drops = if quick then [ 0.0; 0.01; 0.05; 0.2 ] else [ 0.0; 0.002; 0.01; 0.05; 0.2 ] in
  let families =
    [
      ( "apollonian (planar)",
        (fun seed -> Generators.apollonian (Random.State.make [| seed; 91 |]) n),
        true );
      ( "far-from-planar",
        (fun seed ->
          Generators.far_from_planar
            (Random.State.make [| seed; 92 |])
            ~n ~eps:0.25),
        false );
    ]
  in
  (* The built-in sweep varies only the drop probability; [--faults SPEC]
     appends one user-chosen policy column (label = its canonical spec). *)
  let policies =
    List.map
      (fun drop ->
        ( Printf.sprintf "drop=%.3f" drop,
          (fun seed ->
            if drop = 0.0 then None
            else Some (Congest.Faults.make ~seed ~drop ())) ))
      drops
    @
    match faults_spec with
    | None -> []
    | Some p ->
        [
          ( Congest.Faults.to_spec p,
            fun seed -> Some { p with Congest.Faults.seed } );
        ]
  in
  let points =
    List.concat_map
      (fun (fname, gen, planar) ->
        List.concat_map
          (fun (pname, pol) ->
            List.init trials (fun i -> (fname, gen, planar, pname, pol, i + 1)))
          policies)
      families
  in
  let outcomes =
    parmap
      (fun (fname, gen, planar, pname, pol, seed) ->
        let g = gen seed in
        let r =
          Tester.Planarity_tester.run ~domains ?faults:(pol seed) ~mode g
            ~eps:(if planar then 0.3 else 0.15)
            ~seed
        in
        let verdict =
          match r.Tester.Planarity_tester.verdict with
          | Tester.Planarity_tester.Accept -> `Accept
          | Tester.Planarity_tester.Reject _ -> `Reject
          | Tester.Planarity_tester.Degraded _ -> `Degraded
        in
        (* The invariant under test: faults must never manufacture
           rejection evidence on a planar input (one-sided error is
           preserved by construction — Reject downgrades to Degraded
           whenever a fault fired). *)
        if planar && verdict = `Reject then
          failwith
            (Printf.sprintf
               "R1 VIOLATION: planar input rejected under faults (%s, %s, \
                seed %d)"
               fname pname seed);
        (fname, pname, verdict, r.Tester.Planarity_tester.dropped))
      points
  in
  let results =
    List.concat_map
      (fun (fname, _, planar) ->
        List.map
          (fun (pname, _) ->
            let mine =
              List.filter (fun (f, p, _, _) -> f = fname && p = pname) outcomes
            in
            let count v =
              List.length (List.filter (fun (_, _, v', _) -> v' = v) mine)
            in
            let dropped =
              List.fold_left (fun a (_, _, _, d) -> a + d) 0 mine
            in
            ( fname,
              planar,
              pname,
              count `Accept,
              count `Degraded,
              count `Reject,
              dropped / max 1 (List.length mine) ))
          policies)
      families
  in
  emit "R1" ~title:"verdict stability vs fault rate"
    ~claim:
      "one-sided error survives benign faults: a planar input accepts or \
       degrades, never rejects; an eps-far input's rejection evidence \
       degrades to an explicit 'no verdict' once faults interfere"
    (J.Obj
       [
         ("n", J.Int n);
         ("trials", J.Int trials);
         ( "rows",
           J.List
             (List.map
                (fun (fname, planar, pname, acc, degr, rej, avg_dropped) ->
                  J.Obj
                    [
                      ("family", J.String fname);
                      ("planar", J.Bool planar);
                      ("policy", J.String pname);
                      ("accept", J.Int acc);
                      ("degraded", J.Int degr);
                      ("reject", J.Int rej);
                      ("avg_dropped", J.Int avg_dropped);
                      ("one_sided_ok", J.Bool (not (planar && rej > 0)));
                    ])
                results) );
       ]);
  row "n=%d, %d fault seeds per point; verdict counts per policy\n\n" n trials;
  row "%-22s %-22s %-8s %-10s %-8s %-12s\n" "family" "policy" "accept"
    "degraded" "reject" "avg dropped";
  List.iter
    (fun (fname, planar, pname, acc, degr, rej, avg_dropped) ->
      row "%-22s %-22s %-8d %-10d %-8d %-12d%s\n" fname pname acc degr rej
        avg_dropped
        (if planar && rej > 0 then "  *** ONE-SIDED ERROR VIOLATION ***"
         else ""))
    results

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock micro-benchmarks                                 *)
(* ------------------------------------------------------------------ *)

let bechamel_section () =
  let open Bechamel in
  let g_small = Generators.apollonian (Random.State.make [| 3 |]) 150 in
  let g_planarity = Generators.apollonian (Random.State.make [| 4 |]) 1000 in
  let far =
    Generators.far_from_planar (Random.State.make [| 5 |]) ~n:150 ~eps:0.25
  in
  let mk name f = Test.make ~name (Staged.stage f) in
  let tests =
    [
      mk "lr_planarity_n1000" (fun () ->
          ignore (Planarity.Lr.is_planar g_planarity));
      mk "lr_embed_n1000" (fun () -> ignore (Planarity.Lr.embed g_planarity));
      mk "stage1_n150" (fun () -> ignore (Partition.Stage1.run ~mode g_small ~eps:0.3));
      mk "full_tester_planar_n150" (fun () ->
          ignore (Tester.Planarity_tester.run ~mode g_small ~eps:0.3 ~seed:1));
      mk "full_tester_far_n150" (fun () ->
          ignore (Tester.Planarity_tester.run ~mode far ~eps:0.2 ~seed:1));
      mk "spanner_n150" (fun () -> ignore (Tester.Spanner.build g_small ~eps:0.3));
      mk "elkin_neiman_n150_k4" (fun () ->
          ignore (Tester.Elkin_neiman.build g_small ~k:4 ~delta:0.2 ~seed:1));
      mk "girth_n150" (fun () -> ignore (Girth.girth g_small));
    ]
  in
  let grouped = Test.make_grouped ~name:"repro" tests in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:20
      ~quota:(Time.second (if quick then 0.25 else 1.0))
      ()
  in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      instance raw
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort compare rows in
  let estimates =
    List.filter_map
      (fun (name, ols) ->
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> Some (name, est)
        | _ -> None)
      rows
  in
  emit "B" ~title:"wall-clock micro-benchmarks (Bechamel)"
    ~claim:"simulator throughput; not a paper claim"
    (J.List
       (List.map
          (fun (name, est) ->
            J.Obj [ ("name", J.String name); ("ns_per_run", J.Float est) ])
          estimates));
  row "%-40s %-16s\n" "benchmark" "ns/run (ols)";
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> row "%-40s %-16.0f\n" name est
      | _ -> row "%-40s (no estimate)\n" name)
    rows

(* ------------------------------------------------------------------ *)

(* M1: the million-node memory substrate.  The resident cost of a tester
   run splits into the CSR graph (8 B/node + 32 B/edge), the engine
   pool's per-edge accounting (16 B/edge fault-free), and growable slabs
   sized by peak per-round traffic, not by the graph.  All byte figures
   are analytic ({!Graph.storage_bytes}, {!Engine.footprint}) and thus
   deterministic; wall time is the only host-dependent column.  Serial
   on purpose — parmap concurrency would distort the timings. *)
let m1_memory_substrate () =
  let sizes = if quick then [ 2_500; 10_000 ] else [ 65_536; 1_000_000 ] in
  let points =
    List.concat_map (fun n -> [ ("grid", n); ("far", n) ]) sizes
  in
  let results =
    List.map
      (fun (family, n) ->
        let g =
          match family with
          | "grid" ->
              let r, c = Generators.grid_dims n in
              Generators.grid r c
          | _ ->
              Generators.far_from_planar
                (Random.State.make [| 97; n |])
                ~n ~eps:0.1
        in
        let gnode, gedge = Graph.storage_bytes g in
        let r, wall =
          time (fun () ->
              Tester.Planarity_tester.run ~domains ~mode g ~eps:0.3 ~seed:1)
        in
        let st =
          match r.Tester.Planarity_tester.stage1 with
          | Some s -> s.Partition.Stage1.state
          | None -> assert false
        in
        let fp = Partition.State.Eng.footprint st.Partition.State.pool in
        let nn = Graph.n g and m = Graph.m g in
        let per_node =
          float_of_int (gnode + fp.Partition.State.Eng.node_bytes)
          /. float_of_int nn
        and per_edge =
          float_of_int (gedge + fp.Partition.State.Eng.edge_bytes)
          /. float_of_int (max 1 m)
        in
        let verdict =
          match r.Tester.Planarity_tester.verdict with
          | Tester.Planarity_tester.Accept -> "accept"
          | Tester.Planarity_tester.Reject _ -> "reject"
          | Tester.Planarity_tester.Degraded _ -> "degraded"
        in
        ( family,
          nn,
          m,
          gnode + fp.Partition.State.Eng.node_bytes,
          gedge + fp.Partition.State.Eng.edge_bytes,
          fp.Partition.State.Eng.slab_bytes,
          per_node,
          per_edge,
          wall,
          r.Tester.Planarity_tester.rounds,
          verdict ))
      points
  in
  emit "M1" ~title:"memory substrate: bytes per node / edge at scale"
    ~claim:
      "engineering target, not a paper claim: flat per-edge state keeps \
       the substrate at <= 64 bytes/edge so 10^6..10^7-node runs fit in \
       RAM"
    (J.List
       (List.map
          (fun (family, n, m, nb, eb, slab, pn, pe, wall, rounds, verdict) ->
            J.Obj
              [
                ("family", J.String family);
                ("n", J.Int n);
                ("m", J.Int m);
                ("node_bytes", J.Int nb);
                ("edge_bytes", J.Int eb);
                ("slab_bytes", J.Int slab);
                ("bytes_per_node", J.Float pn);
                ("bytes_per_edge", J.Float pe);
                ("wall_seconds", J.Float wall);
                ("rounds", J.Int rounds);
                ("verdict", J.String verdict);
              ])
          results));
  row "%-8s %-9s %-9s %-8s %-8s %-10s %-9s %-9s %-8s\n" "family" "n" "m"
    "B/node" "B/edge" "slab(MB)" "wall(s)" "rounds" "verdict";
  List.iter
    (fun (family, n, m, _, _, slab, pn, pe, wall, rounds, verdict) ->
      row "%-8s %-9d %-9d %-8.1f %-8.1f %-10.2f %-9.2f %-9d %-8s\n" family n
        m pn pe
        (float_of_int slab /. 1.048576e6)
        wall rounds verdict)
    results

(* ------------------------------------------------------------------ *)
(* Compiled hot path: fiber vs compiled execution (tentpole PR)         *)
(* ------------------------------------------------------------------ *)

(* C1 times the E1 workloads (planar apollonian and grid at the largest
   E1 size) under both execution modes and both fast-forward settings,
   asserting on the spot that every statistic in the report is
   byte-identical across modes.  The headline metric is per-round
   throughput — executed rounds per second, measured with fast-forward
   off so every simulated round is an actual array pass / fiber round —
   for the compiled path against the fiber reference.  The ff-on rows
   give the end-to-end wall-clock view of the same runs (there the
   remaining fiber work — Stage II, general node programs — bounds the
   ratio by Amdahl's law).

   C1_MIN_SPEEDUP=<x> turns the grid ff-off per-round speedup into a
   hard gate (exit 1 below x) — the CI compiled leg sets it; unset, C1
   only reports. *)
let c1_compiled_hot_path () =
  let n = if quick then 512 else 2048 in
  let mk_g family =
    match family with
    | "apollonian" -> Generators.apollonian (Random.State.make [| n |]) n
    | _ ->
        let side = int_of_float (sqrt (float_of_int n)) in
        Generators.grid side side
  in
  (* Serial timing on purpose; [parmap] concurrency would distort it.
     Stage I only: that is where the compiled hot path runs (Stage II is
     a constant number of rounds per part and always uses the fiber
     engine, so folding it in would just dilute the measurement). *)
  let point family ff =
    let g = mk_g family in
    let run1 m =
      time (fun () ->
          Partition.Stage1.run ~measure_diameters:false ~domains:1
            ~fast_forward:ff ~mode:m g ~eps:0.1)
    in
    (* Best-of-3: the per-round gate below compares two wall-clock
       measurements, so take the minimum over a few reps to keep
       scheduler noise out of the ratio. *)
    let run m =
      let r, s = run1 m in
      let best = ref s in
      for _ = 2 to 3 do
        let _, s' = run1 m in
        if s' < !best then best := s'
      done;
      (r, !best)
    in
    ignore (run1 Congest.Compiled.Compiled) (* warm the allocator *);
    let rf, sf = run Congest.Compiled.Fiber in
    let rc, sc = run Congest.Compiled.Compiled in
    let stats (r : Partition.Stage1.result) =
      r.Partition.Stage1.state.Partition.State.stats
    in
    (* The byte-identity contract, checked on the spot. *)
    assert (
      rf.Partition.Stage1.rejected = rc.Partition.Stage1.rejected
      && rf.Partition.Stage1.rounds = rc.Partition.Stage1.rounds
      && (stats rf).Congest.Stats.messages = (stats rc).Congest.Stats.messages
      && (stats rf).Congest.Stats.total_bits
         = (stats rc).Congest.Stats.total_bits
      && (stats rf).Congest.Stats.fast_forwarded_rounds
         = (stats rc).Congest.Stats.fast_forwarded_rounds
      && rf.Partition.Stage1.nominal_rounds
         = rc.Partition.Stage1.nominal_rounds);
    let executed =
      rf.Partition.Stage1.rounds
      - (stats rf).Congest.Stats.fast_forwarded_rounds
    in
    (family, ff, Graph.n g, Graph.m g, rf, executed, sf, sc)
  in
  let points =
    [
      point "apollonian" false;
      point "grid" false;
      point "apollonian" true;
      point "grid" true;
    ]
  in
  emit "C1" ~title:"compiled hot path: fiber vs compiled execution modes"
    ~claim:
      "Stage I lockstep primitives as fiber-free array passes: \
       byte-identical stats, >=10x per-round throughput on the peeling \
       rounds (ff off = every simulated round executed individually)"
    (J.List
       (List.map
          (fun (family, ff, gn, gm, rf, executed, sf, sc) ->
            J.Obj
              ([
                 ("family", J.String family);
                 ("n", J.Int gn);
                 ("m", J.Int gm);
                 ("fast_forward", J.Bool ff);
                 ("rounds", J.Int rf.Partition.Stage1.rounds);
                 ("executed_rounds", J.Int executed);
                 ( "messages",
                   J.Int
                     rf.Partition.Stage1.state.Partition.State.stats
                       .Congest.Stats.messages );
                 ("stats_identical", J.Bool true);
               ]
              @
              if timings then
                [
                  ("fiber_seconds", J.Float sf);
                  ("compiled_seconds", J.Float sc);
                  ( "fiber_rounds_per_sec",
                    J.Float (float_of_int executed /. max 1e-9 sf) );
                  ( "compiled_rounds_per_sec",
                    J.Float (float_of_int executed /. max 1e-9 sc) );
                  ("speedup", J.Float (sf /. max 1e-9 sc));
                ]
              else []))
          points));
  (* eps = 0.1 rather than E1's 0.3: more phases means more peeling
     super-rounds, which is exactly the hot path this experiment
     measures (per-phase setup is shared between the modes). *)
  row
    "input: E1 graph families at n=%d, eps=0.1 (planar; Stage I partition \
     only)\n"
    n;
  if timings then begin
    row "%-12s %-5s %-9s %-10s %-10s %-12s %-12s %-8s\n" "family" "ff"
      "executed" "fiber(s)" "compiled(s)" "fiber r/s" "compiled r/s" "speedup";
    List.iter
      (fun (family, ff, _, _, _, executed, sf, sc) ->
        row "%-12s %-5s %-9d %-10.3f %-10.3f %-12.0f %-12.0f %-8.2fx\n" family
          (if ff then "on" else "off")
          executed sf sc
          (float_of_int executed /. max 1e-9 sf)
          (float_of_int executed /. max 1e-9 sc)
          (sf /. max 1e-9 sc))
      points
  end
  else begin
    row "%-12s %-5s %-9s %-10s %-16s\n" "family" "ff" "rounds" "executed"
      "stats identical";
    List.iter
      (fun (family, ff, _, _, rf, executed, _, _) ->
        row "%-12s %-5s %-9d %-10d %-16s\n" family
          (if ff then "on" else "off")
          rf.Partition.Stage1.rounds executed "yes")
      points
  end;
  match Sys.getenv_opt "C1_MIN_SPEEDUP" with
  | None -> ()
  | Some v -> (
      match float_of_string_opt v with
      | None ->
          Printf.eprintf "bench: C1_MIN_SPEEDUP must be a number, got %S\n" v;
          exit 2
      | Some min_speedup ->
          List.iter
            (fun (family, ff, _, _, _, _, sf, sc) ->
              if family = "grid" && not ff then begin
                let speedup = sf /. max 1e-9 sc in
                if speedup < min_speedup then begin
                  Printf.eprintf
                    "bench: C1: grid ff-off per-round speedup %.2fx below \
                     required %.2fx\n"
                    speedup min_speedup;
                  exit 1
                end
                else
                  row
                    "C1 gate: grid ff-off per-round speedup %.2fx >= %.2fx\n"
                    speedup min_speedup
              end)
            points)

(* T1: the property portfolio on the shared Stage I harness.  One
   holding and one certified-far instance per property; the far
   instances are constructed so rejection is deterministic (planted
   violations outnumber eps*m/2, the most edges Stage I's cut can
   remove), so every verdict below is a hard expectation, not a
   statistical one. *)
let t1_property_portfolio () =
  let rng = Random.State.make [| 81 |] in
  let n = if quick then 128 else 256 in
  let eps = 0.1 in
  (* Mirror odd_cycle_planted's square count: diagonals sit in
     vertex-disjoint unit squares anchored at even (i, j). *)
  let side = max 3 (int_of_float (sqrt (float_of_int n))) in
  let per_axis = ((side - 2) / 2) + 1 in
  let planted = per_axis * per_axis in
  let cases =
    [
      ("planarity", "apollonian", Generators.apollonian rng n, true);
      ( "planarity", "far_from_planar",
        Generators.far_from_planar rng ~n ~eps:0.3, false );
      ( "bipartite", "bipartite_perturbed",
        Generators.bipartite_perturbed rng n, true );
      ( "bipartite", "odd_cycle_planted",
        Generators.odd_cycle_planted rng ~n ~k:planted, false );
      ("cycle-free", "forest_close", Generators.forest_close rng n, true);
      ( "cycle-free", "forest_plus_edges",
        Generators.forest_plus_edges rng ~n ~k:(n / 2), false );
    ]
  in
  let verdict_name (v : Tester.Harness.verdict) =
    match v with
    | Tester.Harness.Accept -> "accept"
    | Tester.Harness.Reject _ -> "reject"
    | Tester.Harness.Degraded _ -> "degraded"
  in
  let results =
    parmap
      (fun (prop, inst, g, expect) ->
        let verdict, rounds, nominal, messages, bits =
          match prop with
          | "planarity" ->
              let r =
                Tester.Planarity_tester.run ~domains ~mode g ~eps ~seed:1
              in
              ( verdict_name r.Tester.Planarity_tester.verdict,
                r.Tester.Planarity_tester.rounds,
                r.Tester.Planarity_tester.nominal_rounds,
                r.Tester.Planarity_tester.messages,
                r.Tester.Planarity_tester.total_bits )
          | "bipartite" ->
              let _, t =
                Tester.Bipartite_tester.run ~domains ~mode ~seed:1 g ~eps
              in
              ( verdict_name t.Tester.Harness.verdict,
                t.Tester.Harness.rounds,
                t.Tester.Harness.nominal_rounds,
                t.Tester.Harness.messages,
                t.Tester.Harness.total_bits )
          | _ ->
              let _, t =
                Tester.Cycle_free_tester.run ~domains ~mode ~seed:1 g ~eps
              in
              ( verdict_name t.Tester.Harness.verdict,
                t.Tester.Harness.rounds,
                t.Tester.Harness.nominal_rounds,
                t.Tester.Harness.messages,
                t.Tester.Harness.total_bits )
        in
        ( prop, inst, Graph.n g, Graph.m g, expect, verdict, rounds, nominal,
          messages, bits ))
      cases
  in
  emit "T1" ~title:"property portfolio on the shared Stage I harness"
    ~claim:
      "Section 1 framework: one Stage I partition serves planarity, \
       bipartiteness and cycle-freeness Stage II checks (one-sided error)"
    (J.List
       (List.map
          (fun (prop, inst, n, m, expect, verdict, rounds, nominal, messages,
                bits) ->
            J.Obj
              [
                ("property", J.String prop);
                ("instance", J.String inst);
                ("n", J.Int n);
                ("m", J.Int m);
                ("expect_accept", J.Bool expect);
                ("verdict", J.String verdict);
                ("rounds", J.Int rounds);
                ("nominal_rounds", J.Int nominal);
                ("messages", J.Int messages);
                ("total_bits", J.Int bits);
              ])
          results));
  row "%-12s %-20s %-6s %-6s %-8s %-9s %-9s %-12s %-10s\n" "property"
    "instance" "n" "m" "expect" "verdict" "rounds" "nominal" "messages";
  List.iter
    (fun (prop, inst, n, m, expect, verdict, rounds, nominal, messages, _) ->
      row "%-12s %-20s %-6d %-6d %-8s %-9s %-9d %-12d %-10d\n" prop inst n m
        (if expect then "accept" else "reject")
        verdict rounds nominal messages)
    results;
  (* Hard gate (like C1's): every row's verdict is deterministic by
     construction, so any mismatch is a real regression, not noise. *)
  List.iter
    (fun (prop, inst, _, _, expect, verdict, _, _, _, _) ->
      let expected = if expect then "accept" else "reject" in
      if verdict <> expected then begin
        Printf.eprintf "bench: T1: %s on %s expected %s, got %s\n" prop inst
          expected verdict;
        exit 1
      end)
    results

(* ------------------------------------------------------------------ *)

(* L1: live-observability overhead.  The heartbeat contract is that
   attaching one changes nothing in the simulated stream and costs a
   negligible slice of wall-clock: publication is host-side, runs at
   quiescent round boundaries only, and its cadence is bounded (every
   8192 charged rounds and at most ~1/s).  L1 measures the grid
   workload with and without a heartbeat publishing to a scratch file
   (best-of-3 wall both ways, C1's protocol) and asserts on the spot
   that the simulated totals are identical.

   L1_MAX_OVERHEAD_PCT=<x> turns the wall overhead into a hard gate
   (exit 1 above x percent) — the CI live leg sets it to 2; unset, L1
   only reports (the ratio of two sub-second timings is noisy on a
   loaded machine). *)
let l1_heartbeat_overhead () =
  let n = if quick then 512 else 2048 in
  let side = int_of_float (sqrt (float_of_int n)) in
  let g = Generators.grid side side in
  let eps = 0.2 in
  let hb_file = Filename.temp_file "planar-l1-hb" ".json" in
  let publishes = ref 0 in
  let run_once hb =
    time (fun () ->
        Tester.Planarity_tester.run ~domains:1 ~mode g ~eps ~seed:1
          ?heartbeat:hb)
  in
  (* Serial, best-of-3 (see C1): the gate compares two wall-clock
     measurements, so take minima to keep scheduler noise out. *)
  let best_of_3 mk =
    let r, s = run_once (mk ()) in
    let best = ref s in
    for _ = 2 to 3 do
      let _, s' = run_once (mk ()) in
      if s' < !best then best := s'
    done;
    (r, !best)
  in
  ignore (run_once None) (* warm the allocator *);
  let r_off, s_off = best_of_3 (fun () -> None) in
  let r_on, s_on =
    best_of_3 (fun () ->
        (* Fresh heartbeat per rep: seq / cadence state is per-run. *)
        publishes := 0;
        Some
          (Obs.Heartbeat.create ~path:hb_file
             ~on_publish:(fun _ -> incr publishes)
             ~run_id:"bench:L1" ~fingerprint:"bench:L1"
             ~property:"planarity" ()))
  in
  (try Sys.remove hb_file with Sys_error _ -> ());
  (* The tentpole contract, checked on the spot: a heartbeat is
     invisible to the simulated accounting. *)
  let module T = Tester.Planarity_tester in
  assert (
    r_off.T.rounds = r_on.T.rounds
    && r_off.T.nominal_rounds = r_on.T.nominal_rounds
    && r_off.T.messages = r_on.T.messages
    && r_off.T.total_bits = r_on.T.total_bits
    && r_off.T.fast_forwarded_rounds = r_on.T.fast_forwarded_rounds);
  let overhead_pct =
    if s_off > 0.0 then 100.0 *. (s_on -. s_off) /. s_off else 0.0
  in
  emit "L1" ~title:"heartbeat overhead: live telemetry vs bare run"
    ~claim:
      "host-side heartbeat publication (8192-round / 1s cadence) leaves the \
       simulated stream byte-identical and costs < 2% wall-clock"
    (J.Obj
       ([
          ("family", J.String "grid");
          ("n", J.Int (Graph.n g));
          ("m", J.Int (Graph.m g));
          ("eps", J.Float eps);
          ("rounds", J.Int r_off.T.rounds);
          ("messages", J.Int r_off.T.messages);
          ("publishes_per_run", J.Int !publishes);
          ("stats_identical", J.Bool true);
        ]
       @
       if timings then
         [
           ("bare_seconds", J.Float s_off);
           ("heartbeat_seconds", J.Float s_on);
           ("overhead_pct", J.Float overhead_pct);
         ]
       else []));
  row "input: grid n=%d, eps=%g; heartbeat at default cadence to %s\n"
    (Graph.n g) eps "a scratch file";
  if timings then begin
    row "%-10s %-12s %-14s %-10s %s\n" "rounds" "bare(s)" "heartbeat(s)"
      "overhead" "publishes/run";
    row "%-10d %-12.4f %-14.4f %-9.2f%% %d\n" r_off.T.rounds s_off s_on
      overhead_pct !publishes
  end
  else
    row "rounds=%d publishes/run=%d stats identical\n" r_off.T.rounds
      !publishes;
  match Sys.getenv_opt "L1_MAX_OVERHEAD_PCT" with
  | None -> ()
  | Some v -> (
      match float_of_string_opt v with
      | None ->
          Printf.eprintf "bench: L1_MAX_OVERHEAD_PCT must be a number, got %S\n"
            v;
          exit 2
      | Some max_pct ->
          if overhead_pct > max_pct then begin
            Printf.eprintf
              "bench: L1: heartbeat overhead %.2f%% above allowed %.2f%%\n"
              overhead_pct max_pct;
            exit 1
          end
          else
            row "L1 gate: heartbeat overhead %.2f%% <= %.2f%%\n" overhead_pct
              max_pct)

let () =
  if want "E1" then e1_rounds_vs_n ();
  if want "E2" then e2_rounds_vs_eps ();
  if want "E3" then e3_completeness ();
  if want "E4" then e4_soundness ();
  if want "E5" then e5_weight_decay ();
  if want "E6" then e6_diameter_growth ();
  if want "E7" then e7_cut_quality ();
  if want "E8" then e8_randomized_partition ();
  if want "E9" then e9_spanner ();
  if want "E10" then e10_lower_bound ();
  if want "E11" then e11_minor_free_testers ();
  if want "E12" then e12_emulation_cost ();
  if want "E13" then e13_partition_alternatives ();
  if want "E14" then e14_embedding_modes ();
  if want "A1" then a1_selection_rule ();
  if want "A2" then a2_corner_keys ();
  if want "A3" then a3_adaptive_schedule ();
  if want "P1" then p1_engine_wallclock ();
  if want "R1" then r1_fault_stability ();
  if want "M1" then m1_memory_substrate ();
  if want "C1" then c1_compiled_hot_path ();
  if want "T1" then t1_property_portfolio ();
  if want "L1" then l1_heartbeat_overhead ();
  if timings && want "B" then bechamel_section ();
  (match !json_path with
  | Some path ->
      let experiments =
        List.rev_map
          (fun (id, body) ->
            match body with
            | J.Obj fields -> J.Obj (("id", J.String id) :: fields)
            | other -> J.Obj [ ("id", J.String id); ("data", other) ])
          !sections
      in
      let doc = Report.bench_envelope ~quick ~jobs ~domains experiments in
      (try Report.write path doc
       with Sys_error msg ->
         Obs.Log.errorf "bench: cannot write %s: %s" path msg;
         exit 1);
      if path <> "-" then Printf.fprintf report_oc "\nwrote %s\n" path
  | None -> ());
  (* One provenance record per invocation.  The digest covers the
     simulated core of the report — every section except the bechamel
     timing section, with wall-clock-derived members stripped by key —
     so repeat runs of one configuration must digest identically
     regardless of --domains / --mode / machine load, and [planarmon
     history] flags any mismatch as determinism drift. *)
  (match ledger_path with
  | None -> ()
  | Some path ->
      let timing_key k =
        let lk = String.lowercase_ascii k in
        List.exists
          (fun s ->
            let n = String.length lk and m = String.length s in
            let rec at i = i + m <= n && (String.sub lk i m = s || at (i + 1)) in
            at 0)
          [ "seconds"; "wall"; "per_sec"; "speedup"; "overhead"; "publishes" ]
      in
      let rec strip = function
        | J.Obj fields ->
            J.Obj
              (List.filter_map
                 (fun (k, v) ->
                   if timing_key k then None else Some (k, strip v))
                 fields)
        | J.List xs -> J.List (List.map strip xs)
        | x -> x
      in
      let core =
        List.rev !sections
        |> List.filter (fun (id, _) -> id <> "B")
        |> List.map (fun (id, body) -> (id, strip body))
      in
      (* Simulated totals summed over the report, for the record's
         summary columns (each summand is engine-deterministic). *)
      let sum key =
        let total = ref 0 in
        let rec walk = function
          | J.Obj fields ->
              List.iter
                (fun (k, v) ->
                  (match v with
                  | J.Int i when k = key -> total := !total + i
                  | _ -> ());
                  walk v)
                fields
          | J.List xs -> List.iter walk xs
          | _ -> ()
        in
        walk (J.Obj core);
        !total
      in
      let ids =
        match only with None -> "all" | Some l -> String.concat "," l
      in
      let faults_str = if faults_spec = None then "none" else "on" in
      let record =
        {
          Report.Ledger.ts = Unix.gettimeofday ();
          tool = "bench";
          run_id = "bench:" ^ ids;
          fingerprint =
            Printf.sprintf "bench ids=%s quick=%b faults=%s" ids quick
              faults_str;
          property = "bench";
          config =
            [
              ("quick", string_of_bool quick);
              ("jobs", string_of_int jobs);
              ("domains", string_of_int domains);
              ("mode", Congest.Compiled.mode_to_string mode);
              ("faults", faults_str);
              ("only", ids);
            ];
          verdict = "completed";
          digest = Digest.to_hex (Digest.string (J.to_string (J.Obj core)));
          rounds = sum "rounds";
          nominal_rounds = sum "nominal_rounds";
          messages = sum "messages";
          total_bits = sum "total_bits";
          wall_s = Unix.gettimeofday () -. bench_t0;
          host = Unix.gethostname ();
        }
      in
      (try
         Report.Ledger.append ~path record;
         Obs.Log.infof "ledger record appended to %s" path
       with
      | Sys_error msg ->
          Obs.Log.errorf "bench: cannot append to --ledger %s: %s" path msg;
          exit 1
      | Unix.Unix_error (e, _, _) ->
          Obs.Log.errorf "bench: cannot append to --ledger %s: %s" path
            (Unix.error_message e);
          exit 1));
  Printf.fprintf report_oc "\nAll experiments completed.\n"
