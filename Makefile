.PHONY: all build test bench fuzz ci clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Property-based / fuzz suite (qcheck with shrinking): the Stage I
# differential against the centralized reference, the one-sided-error
# invariant under fault injection, the domains x fast-forward x fault-seed
# accounting invariant, and the Bits fragmentation fuzz.  QCHECK_SEED pins
# the random state (CI sets it per matrix leg); PROP_DOMAINS caps the
# domain sweep (default 4).  On failure qcheck prints the shrunk
# counterexample — paste it into a regression test.
#   make fuzz                           # fresh random seed
#   make fuzz QCHECK_SEED=1234          # reproduce a CI leg
fuzz: build
	env $(if $(QCHECK_SEED),QCHECK_SEED=$(QCHECK_SEED)) \
	  ./_build/default/test/test_prop.exe

# What CI runs: full build, the whole test suite, and a quick pass of the
# experiment harness with machine-readable output (also validates the
# --json emitter end to end).  CI additionally runs a 2-domain matrix leg
# (see .github/workflows/ci.yml); the engine contract makes its stats
# output identical to this serial one.
ci: build test
	dune exec bench/main.exe -- --quick --no-timings --json /tmp/bench.json

clean:
	dune clean
