.PHONY: all build test bench ci clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# What CI runs: full build, the whole test suite, and a quick pass of the
# experiment harness with machine-readable output (also validates the
# --json emitter end to end).  CI additionally runs a 2-domain matrix leg
# (see .github/workflows/ci.yml); the engine contract makes its stats
# output identical to this serial one.
ci: build test
	dune exec bench/main.exe -- --quick --no-timings --json /tmp/bench.json

clean:
	dune clean
