.PHONY: all build test bench fuzz trace critpath monitor monitor-baseline \
  scale compiled testers live ci clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Property-based / fuzz suite (qcheck with shrinking): the Stage I
# differential against the centralized reference, the one-sided-error
# invariant under fault injection, the domains x fast-forward x fault-seed
# accounting invariant, and the Bits fragmentation fuzz.  QCHECK_SEED pins
# the random state (CI sets it per matrix leg); PROP_DOMAINS caps the
# domain sweep (default 4).  On failure qcheck prints the shrunk
# counterexample — paste it into a regression test.
#   make fuzz                           # fresh random seed
#   make fuzz QCHECK_SEED=1234          # reproduce a CI leg
fuzz: build
	env $(if $(QCHECK_SEED),QCHECK_SEED=$(QCHECK_SEED)) \
	  ./_build/default/test/test_prop.exe

# End-to-end tracing check (also a CI leg): record the same tester run
# under --domains 1, --domains 4 and --no-fast-forward, assert with
# `planartrace diff` that the simulated accounting is byte-identical in
# all three traces (only host metrics may differ), and validate the
# Perfetto export round-trip — the export is a pure function of the
# .ctrace bytes, so exporting the golden trace twice must be
# byte-identical.  TRACE_DIR (default /tmp/planartrace) keeps the
# artifacts for upload on CI failure.
TRACE_DIR ?= /tmp/planartrace
trace: build
	mkdir -p $(TRACE_DIR)
	./_build/default/bin/planartest.exe gen --family grid --n 256 \
	  > $(TRACE_DIR)/input.txt
	./_build/default/bin/planartest.exe test $(TRACE_DIR)/input.txt \
	  --eps 0.3 --domains 1 --trace $(TRACE_DIR)/d1.ctrace \
	  --stats-json $(TRACE_DIR)/d1.stats.json
	./_build/default/bin/planartest.exe test $(TRACE_DIR)/input.txt \
	  --eps 0.3 --domains 4 --trace $(TRACE_DIR)/d4.ctrace
	./_build/default/bin/planartest.exe test $(TRACE_DIR)/input.txt \
	  --eps 0.3 --no-fast-forward --trace $(TRACE_DIR)/noff.ctrace
	./_build/default/bin/planartrace.exe info $(TRACE_DIR)/d1.ctrace
	./_build/default/bin/planartrace.exe diff $(TRACE_DIR)/d1.ctrace \
	  $(TRACE_DIR)/d4.ctrace
	./_build/default/bin/planartrace.exe diff $(TRACE_DIR)/d1.ctrace \
	  $(TRACE_DIR)/noff.ctrace
	./_build/default/bin/planartrace.exe export $(TRACE_DIR)/d1.ctrace \
	  -o $(TRACE_DIR)/d1.perfetto.json
	./_build/default/bin/planartrace.exe export $(TRACE_DIR)/d1.ctrace \
	  -o $(TRACE_DIR)/d1.perfetto.json.again
	cmp $(TRACE_DIR)/d1.perfetto.json $(TRACE_DIR)/d1.perfetto.json.again

# Causal critical-path gate (also a CI leg).  Five parts:
#   1. delay-free exact gate — record a pinned-seed traced planartest
#      run with a ring sized to hold every event, then `planartrace
#      critpath --gate exact`: the causal chain must explain every
#      round (path length = total traced rounds, zero excess, ring
#      complete), and the JSON must carry the locked critpath/v1 tag.
#   2. invariance — the critpath JSON of the same (smaller) workload
#      must be byte-identical under --domains 1/4, --no-fast-forward
#      and --mode compiled (the ff-off leg records every per-round spin
#      resume, so it needs the bigger share of the ring; the analyzer's
#      timer-collapse folds them back into the same path).
#   3. delay-storm attribution — the tester is deadline-scheduled, so a
#      delay storm shows up as slack absorption, never path excess: the
#      storm leg locks the path's excess at zero.  The complementary
#      half — a delivery-driven workload whose inflation IS excess,
#      with contracted_rounds recovering the clean run exactly — is the
#      relay-chain unit pair in test_trace.exe (critpath group), run as
#      part 4.
#   5. the Perfetto export with the --critpath overlay is a pure
#      function of the .ctrace bytes: exporting twice must be
#      byte-identical.
# CRITPATH_DIR keeps the artifacts for upload on CI failure.  None of
# the gated commands sit behind a pipe, so their exit codes reach make.
CRITPATH_DIR ?= /tmp/planarcritpath
critpath: build
	mkdir -p $(CRITPATH_DIR)
	./_build/default/bin/planartest.exe gen --family grid --n 256 \
	  > $(CRITPATH_DIR)/g256.txt
	./_build/default/bin/planartest.exe test $(CRITPATH_DIR)/g256.txt \
	  --eps 0.3 --seed 3 --trace $(CRITPATH_DIR)/exact.ctrace \
	  --trace-capacity 1048576 --log-level warn > /dev/null
	./_build/default/bin/planartrace.exe critpath \
	  $(CRITPATH_DIR)/exact.ctrace --gate exact \
	  --json $(CRITPATH_DIR)/exact.critpath.json
	grep -q '"schema":"critpath/v1"' $(CRITPATH_DIR)/exact.critpath.json
	./_build/default/bin/planartest.exe gen --family grid --n 64 \
	  > $(CRITPATH_DIR)/g64.txt
	./_build/default/bin/planartest.exe test $(CRITPATH_DIR)/g64.txt \
	  --eps 0.1 --seed 3 --trace $(CRITPATH_DIR)/d1.ctrace \
	  --trace-capacity 1048576 --log-level warn > /dev/null
	./_build/default/bin/planartest.exe test $(CRITPATH_DIR)/g64.txt \
	  --eps 0.1 --seed 3 --domains 4 --trace $(CRITPATH_DIR)/d4.ctrace \
	  --trace-capacity 1048576 --log-level warn > /dev/null
	./_build/default/bin/planartest.exe test $(CRITPATH_DIR)/g64.txt \
	  --eps 0.1 --seed 3 --no-fast-forward \
	  --trace $(CRITPATH_DIR)/noff.ctrace \
	  --trace-capacity 1048576 --log-level warn > /dev/null
	./_build/default/bin/planartest.exe test $(CRITPATH_DIR)/g64.txt \
	  --eps 0.1 --seed 3 --mode compiled \
	  --trace $(CRITPATH_DIR)/comp.ctrace \
	  --trace-capacity 1048576 --log-level warn > /dev/null
	./_build/default/bin/planartrace.exe critpath $(CRITPATH_DIR)/d1.ctrace \
	  --gate exact --json $(CRITPATH_DIR)/d1.critpath.json > /dev/null
	./_build/default/bin/planartrace.exe critpath $(CRITPATH_DIR)/d4.ctrace \
	  --json $(CRITPATH_DIR)/d4.critpath.json > /dev/null
	./_build/default/bin/planartrace.exe critpath \
	  $(CRITPATH_DIR)/noff.ctrace \
	  --json $(CRITPATH_DIR)/noff.critpath.json > /dev/null
	./_build/default/bin/planartrace.exe critpath \
	  $(CRITPATH_DIR)/comp.ctrace \
	  --json $(CRITPATH_DIR)/comp.critpath.json > /dev/null
	cmp $(CRITPATH_DIR)/d1.critpath.json $(CRITPATH_DIR)/d4.critpath.json
	cmp $(CRITPATH_DIR)/d1.critpath.json $(CRITPATH_DIR)/noff.critpath.json
	cmp $(CRITPATH_DIR)/d1.critpath.json $(CRITPATH_DIR)/comp.critpath.json
	./_build/default/bin/planartest.exe test $(CRITPATH_DIR)/g256.txt \
	  --eps 0.3 --seed 3 --faults "delay=0.2,maxdelay=8,seed=7" \
	  --trace $(CRITPATH_DIR)/storm.ctrace --trace-capacity 1048576 \
	  --log-level warn > /dev/null
	./_build/default/bin/planartrace.exe critpath \
	  $(CRITPATH_DIR)/storm.ctrace \
	  --json $(CRITPATH_DIR)/storm.critpath.json > /dev/null
	grep -q '"excess_rounds":0,"stitch_rounds"' \
	  $(CRITPATH_DIR)/storm.critpath.json
	./_build/default/test/test_trace.exe test critpath \
	  > $(CRITPATH_DIR)/units.txt 2>&1; \
	  code=$$?; cat $(CRITPATH_DIR)/units.txt; exit $$code
	./_build/default/bin/planartrace.exe export $(CRITPATH_DIR)/d1.ctrace \
	  --critpath -o $(CRITPATH_DIR)/overlay.json
	./_build/default/bin/planartrace.exe export $(CRITPATH_DIR)/d1.ctrace \
	  --critpath -o $(CRITPATH_DIR)/overlay.json.again
	cmp $(CRITPATH_DIR)/overlay.json $(CRITPATH_DIR)/overlay.json.again

# Metrics regression gate (also a CI leg): take a fresh stable-only
# metrics/v1 snapshot of planarmon's default workload (grid n=512,
# eps=0.2, seed=0) and compare it field-by-field against the committed
# baseline.  The stable projection is machine-independent by contract —
# no wall clock, no GC, byte-identical across --domains and
# fast-forward — so the compare is exact and portable.  Exit 1 means
# the simulated behaviour changed: either a regression crept into the
# engine/tester, or the change is intentional and the baseline must be
# refreshed deliberately with
#   make monitor-baseline
# and the refreshed MONITOR_baseline.json committed alongside the
# change that explains it (see EXPERIMENTS.md).  MONITOR_DIR keeps the
# candidate snapshot and OpenMetrics text for upload on CI failure.
MONITOR_DIR ?= /tmp/planarmon
monitor: build
	mkdir -p $(MONITOR_DIR)
	./_build/default/bin/planarmon.exe snapshot --stable-only \
	  --json $(MONITOR_DIR)/current.json \
	  --openmetrics $(MONITOR_DIR)/current.om
	./_build/default/bin/planarmon.exe compare MONITOR_baseline.json \
	  $(MONITOR_DIR)/current.json > $(MONITOR_DIR)/compare.txt 2>&1; \
	  code=$$?; cat $(MONITOR_DIR)/compare.txt; exit $$code

monitor-baseline: build
	./_build/default/bin/planarmon.exe snapshot --stable-only \
	  --json MONITOR_baseline.json --openmetrics /dev/null

# Million-node substrate gate (also a CI leg).  Two halves:
#   1. quick M1 — the memory-substrate experiment; its bytes/node and
#      bytes/edge columns are analytic (Graph.storage_bytes + the engine
#      pool footprint), so they are deterministic and meaningful even on
#      a loaded CI box.
#   2. checkpoint round trip — run planartest to completion for a
#      reference stats JSON, rerun with --checkpoint --checkpoint-exit 1
#      (must exit 3 after the first phase-boundary save, simulating a
#      kill), resume from the checkpoint file, and require the resumed
#      stats JSON to be byte-identical (cmp) to the uninterrupted one.
SCALE_DIR ?= /tmp/planarscale
scale: build
	mkdir -p $(SCALE_DIR)
	dune exec bench/main.exe -- --quick --no-timings --only M1 \
	  --json $(SCALE_DIR)/m1.json
	./_build/default/bin/planartest.exe gen --family far -n 4000 \
	  --param 0.3 --seed 5 > $(SCALE_DIR)/g.txt
	./_build/default/bin/planartest.exe test $(SCALE_DIR)/g.txt --eps 0.05 \
	  --stats-json $(SCALE_DIR)/full.json --log-level warn > /dev/null
	rm -f $(SCALE_DIR)/ck.bin
	./_build/default/bin/planartest.exe test $(SCALE_DIR)/g.txt --eps 0.05 \
	  --checkpoint $(SCALE_DIR)/ck.bin --checkpoint-exit 1 \
	  --log-level warn > /dev/null; test $$? -eq 3
	./_build/default/bin/planartest.exe test $(SCALE_DIR)/g.txt --eps 0.05 \
	  --checkpoint $(SCALE_DIR)/ck.bin \
	  --stats-json $(SCALE_DIR)/resumed.json --log-level warn > /dev/null
	cmp $(SCALE_DIR)/full.json $(SCALE_DIR)/resumed.json
	# 3. same kill/resume, now with --trace: snapshots carry the event-trace
	#    state, so the resumed .ctrace must agree with an uninterrupted one
	#    on every simulated aggregate (planartrace diff ignores host-side
	#    wall-clock/GC, which legitimately restart at the resume point; the
	#    v3 stats JSON embeds host profiles, so cmp is only valid on the
	#    trace-free legs above).
	./_build/default/bin/planartest.exe test $(SCALE_DIR)/g.txt --eps 0.05 \
	  --trace $(SCALE_DIR)/full.ctrace --log-level warn > /dev/null
	rm -f $(SCALE_DIR)/ck-trace.bin
	./_build/default/bin/planartest.exe test $(SCALE_DIR)/g.txt --eps 0.05 \
	  --trace $(SCALE_DIR)/killed.ctrace \
	  --checkpoint $(SCALE_DIR)/ck-trace.bin --checkpoint-exit 1 \
	  --log-level warn > /dev/null; test $$? -eq 3
	./_build/default/bin/planartest.exe test $(SCALE_DIR)/g.txt --eps 0.05 \
	  --trace $(SCALE_DIR)/resumed.ctrace \
	  --checkpoint $(SCALE_DIR)/ck-trace.bin --log-level warn > /dev/null
	./_build/default/bin/planartrace.exe diff $(SCALE_DIR)/full.ctrace \
	  $(SCALE_DIR)/resumed.ctrace

# Compiled execution-mode gate (also a CI leg).  Three halves:
#   1. byte-identity — the same planartest run under --mode fiber and
#      --mode compiled must produce cmp-identical stats JSON, and the
#      same quick bench E1 sweep must produce cmp-identical BENCH JSON
#      (--no-timings strips the only legitimately host-dependent
#      fields).
#   2. the differential property suite under a pinned QCHECK_SEED (the
#      compiled-vs-fiber invariance property lives in test_prop.exe).
#   3. the full-size C1 experiment with its throughput gate: grid
#      ff-off per-round speedup must reach C1_MIN_SPEEDUP (default 10,
#      the headline claim; measured 10.2-12.4x on the reference box).
#      C1 also hard-asserts fiber/compiled stats equality internally.
# COMPILED_DIR keeps the artifacts for upload on CI failure.
COMPILED_DIR ?= /tmp/planarcompiled
C1_MIN_SPEEDUP ?= 10
compiled: build
	mkdir -p $(COMPILED_DIR)
	./_build/default/bin/planartest.exe gen --family grid --n 1024 \
	  > $(COMPILED_DIR)/g.txt
	./_build/default/bin/planartest.exe test $(COMPILED_DIR)/g.txt \
	  --eps 0.3 --mode fiber --stats-json $(COMPILED_DIR)/fiber.json \
	  --log-level warn > /dev/null
	./_build/default/bin/planartest.exe test $(COMPILED_DIR)/g.txt \
	  --eps 0.3 --mode compiled --stats-json $(COMPILED_DIR)/compiled.json \
	  --log-level warn > /dev/null
	cmp $(COMPILED_DIR)/fiber.json $(COMPILED_DIR)/compiled.json
	./_build/default/bench/main.exe --quick --no-timings --only E1 \
	  --mode fiber --json $(COMPILED_DIR)/e1-fiber.json > /dev/null
	./_build/default/bench/main.exe --quick --no-timings --only E1 \
	  --mode compiled --json $(COMPILED_DIR)/e1-compiled.json > /dev/null
	cmp $(COMPILED_DIR)/e1-fiber.json $(COMPILED_DIR)/e1-compiled.json
	env QCHECK_SEED=20260809 ./_build/default/test/test_prop.exe
	env C1_MIN_SPEEDUP=$(C1_MIN_SPEEDUP) ./_build/default/bench/main.exe \
	  --only C1 --json $(COMPILED_DIR)/c1.json

# Tester-portfolio gate (also a CI leg).  Three parts:
#   1. the harness unit suite: verdict plumbing, Degraded propagation
#      under faults, checkpoint validation, eps-clamp boundaries for
#      both budgets.
#   2. the portfolio differential suite under a pinned QCHECK_SEED:
#      bipartiteness / cycle-freeness testers vs the centralized
#      references, never-reject on holding inputs (faults off or on),
#      certified-far instances rejecting deterministically, and the
#      domains x ff x mode totals invariance.  On failure the shrunk
#      qcheck counterexample is in the captured log under TESTERS_DIR
#      for CI artifact upload — paste it into a regression test.
#   3. a quick T1 portfolio run (T1 hard-asserts every
#      (property, instance) verdict internally and exits 1 on any
#      mismatch), plus CLI byte-identity of the new testers' stats JSON
#      across --mode fiber/compiled.
TESTERS_DIR ?= /tmp/planartesters
testers: build
	mkdir -p $(TESTERS_DIR)
	./_build/default/test/test_tester_harness.exe \
	  > $(TESTERS_DIR)/harness.txt 2>&1; \
	  code=$$?; cat $(TESTERS_DIR)/harness.txt; exit $$code
	env QCHECK_SEED=20260809 \
	  ./_build/default/test/test_prop.exe test portfolio \
	  > $(TESTERS_DIR)/portfolio.txt 2>&1; \
	  code=$$?; cat $(TESTERS_DIR)/portfolio.txt; exit $$code
	dune exec bench/main.exe -- --quick --no-timings --only T1 \
	  --json $(TESTERS_DIR)/t1.json
	./_build/default/bin/planartest.exe gen --family grid --n 256 \
	  > $(TESTERS_DIR)/g.txt
	./_build/default/bin/planartest.exe test $(TESTERS_DIR)/g.txt --eps 0.3 \
	  --property bipartite --mode fiber \
	  --stats-json $(TESTERS_DIR)/bip-fiber.json --log-level warn > /dev/null
	./_build/default/bin/planartest.exe test $(TESTERS_DIR)/g.txt --eps 0.3 \
	  --property bipartite --mode compiled \
	  --stats-json $(TESTERS_DIR)/bip-compiled.json --log-level warn > /dev/null
	cmp $(TESTERS_DIR)/bip-fiber.json $(TESTERS_DIR)/bip-compiled.json
	./_build/default/bin/planartest.exe test $(TESTERS_DIR)/g.txt --eps 0.3 \
	  --property cycle-free --mode fiber \
	  --stats-json $(TESTERS_DIR)/cyc-fiber.json --log-level warn > /dev/null
	./_build/default/bin/planartest.exe test $(TESTERS_DIR)/g.txt --eps 0.3 \
	  --property cycle-free --mode compiled \
	  --stats-json $(TESTERS_DIR)/cyc-compiled.json --log-level warn > /dev/null
	cmp $(TESTERS_DIR)/cyc-fiber.json $(TESTERS_DIR)/cyc-compiled.json

# Live-observability gate (also a CI leg).  Four parts:
#   1. kill detection — run with --heartbeat --checkpoint
#      --checkpoint-exit 1 (exit 3 simulates a kill at the first
#      phase-boundary save).  The orphaned heartbeat still says
#      state=running, so `planarmon attach --stall-after` must declare
#      the run dead (exit 1).
#   2. resume provenance — resume from the checkpoint with --heartbeat
#      and --ledger; attach now exits 0 with the verdict.  A second,
#      uninterrupted run appends to the same ledger: its stats JSON is
#      cmp-identical to the resumed one, both records carry one
#      fingerprint and one digest (the engine determinism contract,
#      checked from the provenance trail), and `planarmon history`
#      stays green over them.
#   3. observer-effect matrix — heartbeat-on vs heartbeat-off stats
#      JSON must be cmp-identical across --domains 1/4 x fast-forward
#      on/off x --mode fiber/compiled (the heartbeat runs host-side
#      from quiescent boundaries, so it must not perturb one simulated
#      byte), and a traced pair must agree under `planartrace diff`
#      (only host wall-clock/GC may differ).
#   4. L1 with its overhead gate: heartbeat publication at the default
#      cadence costs < L1_MAX_OVERHEAD_PCT % wall on the n=2048 grid
#      (L1 also hard-asserts on/off stats identity internally).
LIVE_DIR ?= /tmp/planarlive
L1_MAX_OVERHEAD_PCT ?= 2
live: build
	mkdir -p $(LIVE_DIR)
	rm -f $(LIVE_DIR)/ck.bin $(LIVE_DIR)/runs.jsonl
	./_build/default/bin/planartest.exe gen --family far -n 4000 \
	  --param 0.3 --seed 5 > $(LIVE_DIR)/g.txt
	./_build/default/bin/planartest.exe test $(LIVE_DIR)/g.txt --eps 0.05 \
	  --heartbeat $(LIVE_DIR)/hb.json --checkpoint $(LIVE_DIR)/ck.bin \
	  --checkpoint-exit 1 --log-level warn > /dev/null; test $$? -eq 3
	grep -q '"state":"running"' $(LIVE_DIR)/hb.json
	./_build/default/bin/planarmon.exe attach $(LIVE_DIR)/hb.json \
	  --stall-after 1 --interval 0.2 > /dev/null 2>&1; test $$? -eq 1
	./_build/default/bin/planartest.exe test $(LIVE_DIR)/g.txt --eps 0.05 \
	  --heartbeat $(LIVE_DIR)/hb.json --checkpoint $(LIVE_DIR)/ck.bin \
	  --ledger $(LIVE_DIR)/runs.jsonl \
	  --stats-json $(LIVE_DIR)/resumed.json --log-level warn > /dev/null
	./_build/default/bin/planarmon.exe attach $(LIVE_DIR)/hb.json
	./_build/default/bin/planartest.exe test $(LIVE_DIR)/g.txt --eps 0.05 \
	  --ledger $(LIVE_DIR)/runs.jsonl \
	  --stats-json $(LIVE_DIR)/full.json --log-level warn > /dev/null
	cmp $(LIVE_DIR)/full.json $(LIVE_DIR)/resumed.json
	./_build/default/bin/planarmon.exe history $(LIVE_DIR)/runs.jsonl
	test $$(grep -o '"fingerprint":"[^"]*"' $(LIVE_DIR)/runs.jsonl \
	  | sort -u | wc -l) -eq 1
	test $$(grep -o '"digest":"[0-9a-f]*"' $(LIVE_DIR)/runs.jsonl \
	  | sort -u | wc -l) -eq 1
	./_build/default/bin/planartest.exe gen --family grid --n 256 \
	  > $(LIVE_DIR)/gm.txt
	set -e; for d in 1 4; do for ff in "" "--no-fast-forward"; do \
	  for m in fiber compiled; do \
	    tag="d$$d$${ff:+-noff}-$$m"; \
	    ./_build/default/bin/planartest.exe test $(LIVE_DIR)/gm.txt \
	      --eps 0.3 --domains $$d $$ff --mode $$m \
	      --stats-json $(LIVE_DIR)/off-$$tag.json \
	      --log-level warn > /dev/null; \
	    ./_build/default/bin/planartest.exe test $(LIVE_DIR)/gm.txt \
	      --eps 0.3 --domains $$d $$ff --mode $$m \
	      --heartbeat $(LIVE_DIR)/hb-m.json --heartbeat-every 64 \
	      --stats-json $(LIVE_DIR)/on-$$tag.json \
	      --log-level warn > /dev/null; \
	    cmp $(LIVE_DIR)/off-$$tag.json $(LIVE_DIR)/on-$$tag.json; \
	  done; done; done
	./_build/default/bin/planartest.exe test $(LIVE_DIR)/gm.txt --eps 0.3 \
	  --trace $(LIVE_DIR)/off.ctrace --log-level warn > /dev/null
	./_build/default/bin/planartest.exe test $(LIVE_DIR)/gm.txt --eps 0.3 \
	  --heartbeat $(LIVE_DIR)/hb-m.json --heartbeat-every 64 \
	  --trace $(LIVE_DIR)/on.ctrace --log-level warn > /dev/null
	./_build/default/bin/planartrace.exe diff $(LIVE_DIR)/off.ctrace \
	  $(LIVE_DIR)/on.ctrace
	env L1_MAX_OVERHEAD_PCT=$(L1_MAX_OVERHEAD_PCT) \
	  ./_build/default/bench/main.exe --only L1 \
	  --ledger $(LIVE_DIR)/runs.jsonl --json $(LIVE_DIR)/l1.json

# What CI runs: full build, the whole test suite, and a quick pass of the
# experiment harness with machine-readable output (also validates the
# --json emitter end to end).  CI additionally runs a 2-domain matrix leg
# (see .github/workflows/ci.yml); the engine contract makes its stats
# output identical to this serial one.
ci: build test trace critpath monitor scale compiled testers live
	dune exec bench/main.exe -- --quick --no-timings --json /tmp/bench.json

clean:
	dune clean
