module M = struct
  type t = Int of int
  let bits (Int v) = 1 + abs v
end

module E = Congest.Engine.Make (M)

let () =
  let g = Graphlib.Generators.cycle 20 in
  let prog ctx =
    E.broadcast ctx (M.Int 1);
    ignore (E.sync ctx);
    ignore (E.sync ctx);
    E.my_id ctx
  in
  let run d =
    let res = E.run ~domains:d g prog in
    let missing =
      Array.to_list res.E.outputs
      |> List.mapi (fun i o -> (i, o))
      |> List.filter (fun (_, o) -> o = None)
      |> List.map fst
    in
    Printf.printf "domains=%2d completed=%b rounds=%d missing-outputs=[%s]\n"
      d res.E.completed res.E.stats.Congest.Stats.rounds
      (String.concat ";" (List.map string_of_int missing))
  in
  run 1; run 4; run 24
