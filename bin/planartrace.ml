(* planartrace — analyzer for .ctrace files recorded by `planartest test
   --trace` / `bench --trace`.

     planartrace info run.ctrace
     planartrace edges run.ctrace --top 10
     planartrace phases run.ctrace
     planartrace imbalance run.ctrace
     planartrace faults run.ctrace
     planartrace critpath run.ctrace --top 10 --json cp.json
     planartrace export run.ctrace -o run.json --critpath
     planartrace diff a.ctrace b.ctrace *)

open Cmdliner
module Trace = Congest.Trace
module Ctrace = Report.Ctrace

let load path =
  try Ctrace.read path
  with
  | Failure msg ->
      Printf.eprintf "planartrace: %s: %s\n" path msg;
      exit 2
  | Sys_error msg ->
      Printf.eprintf "planartrace: %s\n" msg;
      exit 2
  | End_of_file | Invalid_argument _ ->
      Printf.eprintf "planartrace: %s: corrupt or truncated .ctrace file\n"
        path;
      exit 2

let trace_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"TRACE" ~doc:"Input .ctrace file.")

(* An analysis over ring events is only complete when the ring never
   overflowed and nothing was sampled out; say so instead of silently
   presenting a partial profile as the whole run. *)
let coverage_warning (v : Ctrace.view) =
  let t = v.Ctrace.totals in
  if t.Trace.overwritten > 0 then
    Printf.printf
      "WARNING: ring overflowed — %d of %d events evicted; per-event \
       profiles below cover only the surviving suffix (aggregates are \
       exact).\n"
      t.Trace.overwritten t.Trace.recorded;
  if t.Trace.sampled_out > 0 then
    Printf.printf
      "WARNING: sampling skipped %d events; per-event profiles below are \
       a sample (aggregates are exact).\n"
      t.Trace.sampled_out

let fault_name = function
  | Trace.Drop -> "drop"
  | Trace.Duplicate -> "duplicate"
  | Trace.Delay -> "delay"
  | Trace.Truncate -> "truncate"
  | Trace.Crash -> "crash"
  | Trace.Down_drop -> "down-drop"

(* --- info -------------------------------------------------------------- *)

let info_cmd =
  let run path =
    let v = load path in
    let t = v.Ctrace.totals in
    Printf.printf "format          : ctrace v%d\n" v.Ctrace.version;
    if v.Ctrace.n >= 0 then
      Printf.printf "graph           : n=%d m=%d bandwidth=%d\n" v.Ctrace.n
        v.Ctrace.m v.Ctrace.bandwidth
    else Printf.printf "graph           : (no engine run recorded)\n";
    Printf.printf
      "config          : capacity=%d sample: messages=1/%d fibers=1/%d \
       spans=1/%d\n"
      v.Ctrace.config.Trace.capacity v.Ctrace.config.Trace.sample_messages
      v.Ctrace.config.Trace.sample_fibers v.Ctrace.config.Trace.sample_spans;
    Printf.printf "rounds          : %d (%d fast-forwarded)\n" t.Trace.rounds
      t.Trace.fast_forwarded;
    Printf.printf "frames          : %d\n" t.Trace.frames;
    Printf.printf "bits            : %d\n" t.Trace.bits;
    Printf.printf "messages        : %d\n" t.Trace.messages;
    if t.Trace.dropped + t.Trace.duplicated + t.Trace.delayed + t.Trace.crashed
       > 0
    then
      Printf.printf
        "faults          : dropped=%d duplicated=%d delayed=%d crashed=%d\n"
        t.Trace.dropped t.Trace.duplicated t.Trace.delayed t.Trace.crashed;
    Printf.printf "events          : %d recorded, %d surviving in ring, %d \
                   overwritten, %d sampled out\n"
      t.Trace.recorded
      (Array.length v.Ctrace.events)
      t.Trace.overwritten t.Trace.sampled_out;
    Printf.printf "phases          : %d\n" (List.length v.Ctrace.sim_phases)
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Header, totals and ring health of a trace")
    Term.(const run $ trace_arg)

(* --- edges ------------------------------------------------------------- *)

let edges_cmd =
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"K" ~doc:"Show the $(docv) hottest edges.")
  in
  let run path top =
    let v = load path in
    coverage_warning v;
    let bw = max 1 v.Ctrace.bandwidth in
    (* frames per edge need per-(edge, round) bit totals first: several
       messages share a frame until the B-bit budget is exceeded. *)
    let per_round : (int * int, int) Hashtbl.t = Hashtbl.create 1024 in
    let msgs : (int, int * int * int * int) Hashtbl.t = Hashtbl.create 256 in
    Array.iter
      (function
        | Trace.Message { round; sender; dest; edge; bits; _ } ->
            let key = (edge, round) in
            Hashtbl.replace per_round key
              (bits + Option.value ~default:0 (Hashtbl.find_opt per_round key));
            let m, b, s, d =
              Option.value ~default:(0, 0, sender, dest)
                (Hashtbl.find_opt msgs edge)
            in
            Hashtbl.replace msgs edge (m + 1, b + bits, s, d)
        | _ -> ())
      v.Ctrace.events;
    let frames : (int, int) Hashtbl.t = Hashtbl.create 256 in
    Hashtbl.iter
      (fun (edge, _) bits ->
        let f = (bits + bw - 1) / bw in
        Hashtbl.replace frames edge
          (f + Option.value ~default:0 (Hashtbl.find_opt frames edge)))
      per_round;
    let rows =
      Hashtbl.fold
        (fun edge (m, b, s, d) acc ->
          (Option.value ~default:0 (Hashtbl.find_opt frames edge), b, m, edge,
           s, d)
          :: acc)
        msgs []
    in
    (* Rank by charged frames, then bits, then messages (all
       descending); exhausted counts tie-break by ascending (src, dst)
       so the table is stable and reproducible rather than falling back
       to descending edge ids. *)
    let rows =
      List.sort
        (fun (f1, b1, m1, e1, s1, d1) (f2, b2, m2, e2, s2, d2) ->
          if f1 <> f2 then compare f2 f1
          else if b1 <> b2 then compare b2 b1
          else if m1 <> m2 then compare m2 m1
          else compare (s1, d1, e1) (s2, d2, e2))
        rows
    in
    Printf.printf "%-8s %-12s %8s %10s %10s\n" "edge" "direction" "frames"
      "bits" "messages";
    List.iteri
      (fun i (f, b, m, edge, s, d) ->
        if i < top then
          Printf.printf "%-8d %5d->%-5d %8d %10d %10d\n" edge s d f b m)
      rows;
    if rows = [] then print_endline "(no message events in ring)"
  in
  Cmd.v
    (Cmd.info "edges"
       ~doc:"Top-k hottest directed edges by charged frames")
    Term.(const run $ trace_arg $ top_arg)

(* --- phases ------------------------------------------------------------ *)

let phases_cmd =
  let run path =
    let v = load path in
    let phases = v.Ctrace.sim_phases in
    let width = 32 in
    let max_frames =
      List.fold_left (fun a (p : Trace.sim_phase) -> max a p.Trace.frames) 1
        phases
    in
    Printf.printf "%-18s %8s %8s %10s %10s %8s  %s\n" "phase" "rounds"
      "frames" "bits" "messages" "ff" "load";
    List.iter
      (fun (p : Trace.sim_phase) ->
        let bar = p.Trace.frames * width / max_frames in
        Printf.printf "%-18s %8d %8d %10d %10d %8d  %s\n" p.Trace.label
          p.Trace.rounds p.Trace.frames p.Trace.bits p.Trace.messages
          p.Trace.fast_forwarded
          (String.make bar '#'))
      phases;
    if phases = [] then print_endline "(no phases recorded)"
  in
  Cmd.v
    (Cmd.info "phases" ~doc:"Per-phase round/frame heatmap")
    Term.(const run $ trace_arg)

(* --- imbalance --------------------------------------------------------- *)

let imbalance_cmd =
  let run path =
    let v = load path in
    Printf.printf "%-18s %8s %10s %10s %8s %10s %12s\n" "phase" "wall_s"
      "stepped" "par_rnds" "domains" "imbalance" "minor_words";
    List.iter
      (fun (p : Trace.host_phase) ->
        (* Imbalance of the sharded rounds: most-loaded-domain work over
           ideal (stepped / domains); 1.00 = perfectly even. *)
        let imb =
          if p.Trace.par_rounds = 0 || p.Trace.stepped = 0 then Float.nan
          else
            float_of_int (p.Trace.max_stepped * p.Trace.max_domains)
            /. float_of_int p.Trace.stepped
        in
        Printf.printf "%-18s %8.4f %10d %10d %8d %10s %12.0f\n" p.Trace.label
          p.Trace.wall_s p.Trace.stepped p.Trace.par_rounds
          p.Trace.max_domains
          (if Float.is_nan imb then "-" else Printf.sprintf "%.2f" imb)
          p.Trace.minor_words)
      v.Ctrace.host_phases;
    if v.Ctrace.host_phases = [] then print_endline "(no host profile)"
  in
  Cmd.v
    (Cmd.info "imbalance"
       ~doc:"Per-phase host profile: wall-clock, GC, shard load imbalance")
    Term.(const run $ trace_arg)

(* --- faults ------------------------------------------------------------ *)

let faults_cmd =
  let run path =
    let v = load path in
    coverage_warning v;
    let any = ref false in
    Array.iter
      (function
        | Trace.Fault { round; kind; sender; dest; edge; info } ->
            any := true;
            (match kind with
            | Trace.Crash ->
                Printf.printf "round %-8d crash      node %d %s\n" round
                  sender
                  (if info < 0 then "(never recovers)"
                   else Printf.sprintf "(recovers after %d rounds)" info)
            | k ->
                Printf.printf "round %-8d %-10s %d->%d edge %d%s\n" round
                  (fault_name k) sender dest edge
                  (match k with
                  | Trace.Delay -> Printf.sprintf " (+%d rounds)" info
                  | _ -> ""))
        | _ -> ())
      v.Ctrace.events;
    if not !any then print_endline "(no fault events in ring)"
  in
  Cmd.v
    (Cmd.info "faults" ~doc:"Chronological fault-event timeline")
    Term.(const run $ trace_arg)

(* --- critpath ---------------------------------------------------------- *)

(* The recorder tracks every loss (ring overwrite, sampling) in its
   exact totals; a causal analysis over a lossy ring may be missing the
   parents of early steps, so say so loudly — through Obs.Log so the
   warning also lands in a --log-json stream — and count it. *)
let m_lossy_analyses =
  Obs.Metrics.counter ~stable:false
    ~help:"Critical-path analyses run over a lossy (overwritten/sampled) ring"
    "critpath_lossy_analyses"

let warn_lossy (v : Ctrace.view) =
  if Report.Critpath_report.lossy_view v then begin
    let t = v.Ctrace.totals in
    Obs.Metrics.inc m_lossy_analyses;
    Obs.Log.warnf
      ~fields:
        [
          ("overwritten", Obs.Log.I t.Trace.overwritten);
          ("sampled_out", Obs.Log.I t.Trace.sampled_out);
          ("recorded", Obs.Log.I t.Trace.recorded);
        ]
      "critpath: ring is lossy — causal chain may terminate early and \
       blame below covers only the surviving suffix"
  end

let critpath_cmd =
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"K"
          ~doc:"Show the $(docv) most-blamed causal edges.")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Also write the critpath/v1 JSON document ('-' = stdout).")
  in
  let gate_arg =
    Arg.(
      value
      & opt (some (enum [ ("exact", `Exact); ("delayed", `Delayed) ])) None
      & info [ "gate" ] ~docv:"MODE"
          ~doc:
            "Assert the profile's invariants and exit non-zero when they \
             fail: $(b,exact) requires the path to span the whole run \
             with zero excess (delay-free runs); $(b,delayed) requires \
             the path to span the run with positive excess attributed to \
             injected delays.")
  in
  let run path top json gate =
    let v = load path in
    warn_lossy v;
    let r = Report.Critpath_report.analyze v in
    let module C = Obs.Critpath in
    Printf.printf
      "critical path   : %d rounds over %d steps (rounds %d..%d of %d \
       traced)\n"
      r.C.path_rounds r.C.steps r.C.start_round r.C.end_round
      r.C.total_rounds;
    Printf.printf "deliver hops    : %d (%d nominal rounds, %d excess)\n"
      r.C.deliver_hops r.C.deliver_rounds r.C.excess_rounds;
    Printf.printf "slack           : %d rounds of deadline waits\n"
      r.C.timer_rounds;
    if r.C.stitch_rounds > 0 then
      Printf.printf "run stitches    : %d rounds\n" r.C.stitch_rounds;
    Printf.printf
      "contracted      : %d rounds with injected delays contracted\n"
      r.C.contracted_rounds;
    if r.C.lossy then print_endline "coverage        : LOSSY (see warning)";
    if r.C.phases <> [] then begin
      Printf.printf "\n%-18s %6s %8s %8s %8s\n" "phase" "hops" "deliver"
        "slack" "excess";
      List.iter
        (fun (p : C.phase_profile) ->
          Printf.printf "%-18s %6d %8d %8d %8d\n" p.C.phase p.C.hops
            p.C.deliver_rounds p.C.timer_rounds p.C.excess_rounds)
        r.C.phases
    end;
    if r.C.edges <> [] then begin
      Printf.printf "\n%-14s %-8s %6s %8s %8s\n" "causal edge" "edge" "hops"
        "rounds" "excess";
      List.iteri
        (fun i (b : C.edge_blame) ->
          if i < top then
            Printf.printf "%5d->%-7d %-8s %6d %8d %8d\n" b.C.src b.C.dst
              (if b.C.edge >= 0 then string_of_int b.C.edge else "?")
              b.C.hops b.C.rounds b.C.excess)
        r.C.edges
    end
    else print_endline "\n(no deliver hops on the path)";
    (match json with
    | Some out -> (
        try Report.write out (Report.Critpath_report.to_json ~top r)
        with Sys_error msg ->
          Printf.eprintf "planartrace critpath: %s\n" msg;
          exit 1)
    | None -> ());
    match gate with
    | None -> ()
    | Some `Exact ->
        if r.C.path_rounds <> r.C.total_rounds then begin
          Printf.eprintf
            "GATE exact: path %d rounds does not span the %d traced rounds\n"
            r.C.path_rounds r.C.total_rounds;
          exit 1
        end;
        if r.C.excess_rounds <> 0 then begin
          Printf.eprintf
            "GATE exact: %d excess rounds on a run declared delay-free\n"
            r.C.excess_rounds;
          exit 1
        end;
        if r.C.lossy then begin
          Printf.eprintf "GATE exact: ring is lossy\n";
          exit 1
        end
    | Some `Delayed ->
        if r.C.path_rounds <> r.C.total_rounds then begin
          Printf.eprintf
            "GATE delayed: path %d rounds does not span the %d traced \
             rounds\n"
            r.C.path_rounds r.C.total_rounds;
          exit 1
        end;
        if r.C.excess_rounds <= 0 then begin
          Printf.eprintf
            "GATE delayed: no excess rounds attributed under an injected \
             delay storm\n";
          exit 1
        end;
        if r.C.contracted_rounds >= r.C.path_rounds then begin
          Printf.eprintf
            "GATE delayed: contraction did not shorten the path (%d >= %d)\n"
            r.C.contracted_rounds r.C.path_rounds;
          exit 1
        end
  in
  Cmd.v
    (Cmd.info "critpath"
       ~doc:
         "Causal critical path: why the run took as many rounds as it did")
    Term.(const run $ trace_arg $ top_arg $ json_arg $ gate_arg)

(* --- export ------------------------------------------------------------ *)

let export_cmd =
  let out_arg =
    Arg.(
      value & opt string "-"
      & info [ "o"; "output" ] ~docv:"PATH"
          ~doc:"Output JSON path ('-' = stdout).")
  in
  let overlay_arg =
    Arg.(
      value & flag
      & info [ "critpath" ]
          ~doc:
            "Overlay the causal critical path as its own track, chained \
             by flow arrows.")
  in
  let run path out overlay =
    let v = load path in
    let critpath =
      if overlay then begin
        warn_lossy v;
        Some (Report.Critpath_report.analyze v)
      end
      else None
    in
    (try Report.Perfetto.write ?critpath out v
     with Sys_error msg ->
       Printf.eprintf "planartrace export: %s\n" msg;
       exit 1);
    if out <> "-" then Printf.eprintf "wrote %s\n" out
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Export as Chrome/Perfetto trace_event JSON")
    Term.(const run $ trace_arg $ out_arg $ overlay_arg)

(* --- diff -------------------------------------------------------------- *)

let diff_cmd =
  let trace_b_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"TRACE2" ~doc:"Second .ctrace file.")
  in
  let run path_a path_b =
    let a = load path_a and b = load path_b in
    let bad = ref 0 in
    let check name va vb =
      if va <> vb then begin
        incr bad;
        Printf.printf "SIM MISMATCH %-28s %d vs %d\n" name va vb
      end
    in
    let ta = a.Ctrace.totals and tb = b.Ctrace.totals in
    check "graph.n" a.Ctrace.n b.Ctrace.n;
    check "graph.m" a.Ctrace.m b.Ctrace.m;
    check "graph.bandwidth" a.Ctrace.bandwidth b.Ctrace.bandwidth;
    check "totals.rounds" ta.Trace.rounds tb.Trace.rounds;
    check "totals.frames" ta.Trace.frames tb.Trace.frames;
    check "totals.bits" ta.Trace.bits tb.Trace.bits;
    check "totals.messages" ta.Trace.messages tb.Trace.messages;
    check "totals.dropped" ta.Trace.dropped tb.Trace.dropped;
    check "totals.duplicated" ta.Trace.duplicated tb.Trace.duplicated;
    check "totals.delayed" ta.Trace.delayed tb.Trace.delayed;
    check "totals.crashed" ta.Trace.crashed tb.Trace.crashed;
    (* Per-phase simulated accounting, the fine-grained anchor.  A trace
       with fast-forward off legitimately has fast_forwarded = 0, so ff
       counts are reported but not failed on; every other sim field must
       match exactly. *)
    let pa = a.Ctrace.sim_phases and pb = b.Ctrace.sim_phases in
    if List.length pa <> List.length pb then begin
      incr bad;
      Printf.printf "SIM MISMATCH phase count: %d vs %d\n" (List.length pa)
        (List.length pb)
    end
    else
      List.iter2
        (fun (x : Trace.sim_phase) (y : Trace.sim_phase) ->
          if x.Trace.label <> y.Trace.label then begin
            incr bad;
            Printf.printf "SIM MISMATCH phase label: %s vs %s\n" x.Trace.label
              y.Trace.label
          end
          else begin
            let f name vx vy = check (x.Trace.label ^ "." ^ name) vx vy in
            f "rounds" x.Trace.rounds y.Trace.rounds;
            f "bits" x.Trace.bits y.Trace.bits;
            f "frames" x.Trace.frames y.Trace.frames;
            f "messages" x.Trace.messages y.Trace.messages
          end)
        pa pb;
    if ta.Trace.fast_forwarded <> tb.Trace.fast_forwarded then
      Printf.printf
        "note: fast_forwarded differs (%d vs %d) — accounting above is \
         identical regardless\n"
        ta.Trace.fast_forwarded tb.Trace.fast_forwarded;
    (* Host metrics are expected to differ — report, never fail. *)
    let wall (v : Ctrace.view) =
      List.fold_left
        (fun acc (p : Trace.host_phase) -> acc +. p.Trace.wall_s)
        0.0 v.Ctrace.host_phases
    in
    let par (v : Ctrace.view) =
      List.fold_left
        (fun acc (p : Trace.host_phase) -> acc + p.Trace.par_rounds)
        0 v.Ctrace.host_phases
    in
    let doms (v : Ctrace.view) =
      List.fold_left
        (fun acc (p : Trace.host_phase) -> max acc p.Trace.max_domains)
        1 v.Ctrace.host_phases
    in
    Printf.printf
      "host: wall %.4fs vs %.4fs | sharded rounds %d vs %d | max domains %d \
       vs %d\n"
      (wall a) (wall b) (par a) (par b) (doms a) (doms b);
    if !bad = 0 then begin
      print_endline "simulated accounting identical";
      exit 0
    end
    else begin
      Printf.printf "%d simulated-accounting mismatches\n" !bad;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Assert two traces' simulated accounting is identical (host \
          metrics may differ)")
    Term.(const run $ trace_arg $ trace_b_arg)

let () =
  let doc = "analyze .ctrace recordings of the CONGEST planarity tester" in
  let code =
    try
      Cmd.eval
        (Cmd.group
           (Cmd.info "planartrace" ~doc)
           [
             info_cmd; edges_cmd; phases_cmd; imbalance_cmd; faults_cmd;
             critpath_cmd; export_cmd; diff_cmd;
           ])
    with Failure msg | Sys_error msg ->
      (* A subcommand body leaked an exception: that is a bad-input
         problem, not a crash — report it and use the usage exit code. *)
      Printf.eprintf "planartrace: %s\n" msg;
      2
  in
  (* cmdliner reports parse errors (unknown subcommand, bad option) with
     its own cli_error code 124; this tool's documented contract is
     "usage errors exit 2". *)
  exit (if code = Cmd.Exit.cli_error then 2 else code)
