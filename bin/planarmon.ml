(* planarmon — run-level monitor and regression gate.

     planarmon snapshot --family grid --n 512 --openmetrics - --json m.json
     planarmon compare BENCH_planarity.json /tmp/bench-new.json
     planarmon watch --family grid --n 512 --iters 10
     planarmon attach /tmp/hb.json --stall-after 30
     planarmon history runs.jsonl

   `snapshot` runs a tester workload with the Obs.Metrics registry
   enabled and emits the OpenMetrics text exposition plus the
   `metrics/v1` JSON document.  `compare` diffs two reports emitted by
   this repo (`bench.planarity/v1`, `metrics/v1` or
   `planartest.stats/v*`): simulated fields must match exactly,
   wall-clock fields are gated by a threshold, and regressions exit 1
   with a table of offenders.  `watch` loops a workload, checks the
   simulated accounting never drifts across iterations, aggregates the
   histograms and flags wall-clock outliers.  `attach` tails a live
   run's heartbeat/v1 status file (progress, rounds/s, phase-aware ETA)
   with a --stall-after liveness gate.  `history` summarizes a
   runs.ledger/v1 provenance ledger and flags determinism drift across
   runs of the same fingerprint.

   Exit codes: 0 ok (attach: run finished), 1 regression / mismatch /
   outlier / stalled / drift, 2 usage or IO error. *)

open Cmdliner
open Graphlib
module PT = Tester.Planarity_tester
module Json = Report.Json
module M = Obs.Metrics

let log_level_arg =
  let doc = "Log verbosity: error, warn, info or debug." in
  Arg.(value & opt string "info" & info [ "log-level" ] ~docv:"LEVEL" ~doc)

let log_json_arg =
  let doc =
    "Also emit every log record as one JSON object per line to $(docv) \
     ('-' for stderr)."
  in
  Arg.(value & opt (some string) None & info [ "log-json" ] ~docv:"PATH" ~doc)

let setup_logs level json =
  (match Obs.Log.level_of_string level with
  | Ok l -> Obs.Log.set_level l
  | Error msg ->
      Printf.eprintf "planarmon: %s\n" msg;
      exit 2);
  match json with
  | None -> ()
  | Some path -> (
      match Obs.Log.set_json path with
      | Ok () -> at_exit Obs.Log.close_json
      | Error msg ->
          Printf.eprintf "planarmon: cannot open --log-json %s: %s\n" path msg;
          exit 2)

(* ---------- workload ---------------------------------------------------- *)

(* Kept in sync with `planartest gen`. *)
let make_graph ~family ~n ~param ~seed =
  let rng = Random.State.make [| seed |] in
  match family with
  | "grid" ->
      let rows, cols = Generators.grid_dims n in
      Generators.grid rows cols
  | "torus" ->
      let rows, cols = Generators.grid_dims ~min_side:3 n in
      Generators.torus rows cols
  | "cycle" -> Generators.cycle n
  | "path" -> Generators.path n
  | "tree" -> Generators.random_tree rng n
  | "apollonian" -> Generators.apollonian rng n
  | "planar" ->
      let mmax = (3 * n) - 6 in
      Generators.random_planar rng ~n
        ~m:(max (n - 1) (int_of_float (param *. float_of_int mmax)))
  | "far" -> Generators.far_from_planar rng ~n ~eps:param
  | "gnp" -> Generators.gnp rng n (param /. float_of_int n)
  | "complete" -> Generators.complete n
  | "kbipartite" -> Generators.complete_bipartite (n / 2) (n - (n / 2))
  | "k5necklace" -> Generators.k5_necklace (max 1 (n / 5))
  | f -> failwith ("unknown family: " ^ f)

type workload = {
  family : string;
  n : int;
  param : float;
  eps : float;
  seed : int;
  domains : int;
  fast_forward : bool;
}

let family_arg =
  let doc =
    "Workload graph family: grid, torus, cycle, path, tree, apollonian, \
     planar, far, gnp, complete, kbipartite, k5necklace."
  in
  Arg.(value & opt string "grid" & info [ "family" ] ~doc)

let n_arg = Arg.(value & opt int 512 & info [ "n" ] ~doc:"Number of vertices.")

let param_arg =
  Arg.(
    value & opt float 0.2
    & info [ "param" ]
        ~doc:
          "Family parameter: eps for 'far', p*n for 'gnp', edge fraction for \
           'planar'.")

let eps_arg =
  Arg.(value & opt float 0.2 & info [ "eps" ] ~doc:"Tester epsilon.")

let seed_arg = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Random seed.")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Shard engine node stepping across $(docv) OCaml domains.  Every \
           stable metric is identical for any value.")

let no_ff_arg =
  Arg.(
    value & flag
    & info [ "no-fast-forward" ]
        ~doc:"Disable the engine's quiescent-round fast-forward.")

let workload_term =
  let mk family n param eps seed domains no_ff =
    { family; n; param; eps; seed; domains; fast_forward = not no_ff }
  in
  Term.(
    const mk $ family_arg $ n_arg $ param_arg $ eps_arg $ seed_arg
    $ domains_arg $ no_ff_arg)

(* Host-side gauges sampled once per snapshot/watch iteration.  Never
   stable: wall clock and GC state are scheduling artifacts. *)
let m_workload_wall =
  M.gauge ~stable:false ~help:"Wall clock of the last workload run, seconds"
    "host_workload_wall_s"

let m_gc_minor_words =
  M.gauge ~stable:false ~help:"Gc.quick_stat minor_words"
    "host_gc_minor_words"

let m_gc_major_collections =
  M.gauge ~stable:false ~help:"Gc.quick_stat major_collections"
    "host_gc_major_collections"

let m_gc_heap_words =
  M.gauge ~stable:false ~help:"Gc.quick_stat heap_words" "host_gc_heap_words"

let sample_host_gauges () =
  let s = Gc.quick_stat () in
  M.set m_gc_minor_words s.Gc.minor_words;
  M.set m_gc_major_collections (float_of_int s.Gc.major_collections);
  M.set m_gc_heap_words (float_of_int s.Gc.heap_words)

(* Runs the tester once with metrics enabled; returns the report and the
   wall-clock seconds spent.  Every run is traced into a large ring (so
   the causal analysis is never lossy at monitor scales) and fed to the
   critical-path analyzer: critpath_rounds / critpath_slack_rounds are
   ~stable, so the monitor baseline locks them alongside the engine's
   own counters. *)
let run_workload w =
  let g =
    try make_graph ~family:w.family ~n:w.n ~param:w.param ~seed:w.seed
    with Invalid_argument msg | Failure msg ->
      Obs.Log.errorf "planarmon: %s" msg;
      exit 2
  in
  Obs.Log.set_context
    ~run_id:
      (Printf.sprintf "planarmon:%s:n=%d:seed=%d" w.family w.n w.seed)
    ();
  (* The ring must hold the whole run: critpath metrics are only stable
     when no causal parent was evicted.  The default workload records
     ~1.9M events fast-forwarded; without fast-forward every parked
     node's per-round spin resume lands in the ring too (~11.2M), so
     the diagnostic ff-off mode pays for the bigger ring rather than
     lose the stable families. *)
  let capacity = if w.fast_forward then 1 lsl 21 else 1 lsl 24 in
  let trace =
    Congest.Trace.create
      ~config:{ Congest.Trace.default_config with capacity }
      ()
  in
  let t0 = Unix.gettimeofday () in
  let r =
    PT.run ~trace ~domains:w.domains ~fast_forward:w.fast_forward ~seed:w.seed
      g ~eps:w.eps
  in
  let wall = Unix.gettimeofday () -. t0 in
  Congest.Trace.finish trace;
  let view = Report.Ctrace.of_trace trace in
  (* A lossy ring's surviving suffix depends on the host event mix
     (Shard events vary with --domains), so a path computed from it is
     not machine-independent: skip the stable families rather than
     poison the baseline. *)
  if Report.Critpath_report.lossy_view view then
    Obs.Log.warn
      "critpath: monitor trace ring overflowed; skipping critpath metrics \
       (raise the workload size only alongside a bigger ring)"
  else Obs.Critpath.record_metrics (Report.Critpath_report.analyze view);
  M.set m_workload_wall wall;
  sample_host_gauges ();
  (r, wall)

(* ---------- snapshot ---------------------------------------------------- *)

let write_text path s =
  if path = "-" then print_string s
  else begin
    (* Atomic tmp+rename via the shared lib/report helper: a concurrent
       scraper tailing the exposition file never reads a torn document
       (same path the run ledger and checkpoints publish through). *)
    Report.write_atomic path s;
    Obs.Log.infof "wrote %s" path
  end

let snapshot_cmd =
  let openmetrics_arg =
    Arg.(
      value & opt string "-"
      & info [ "openmetrics" ] ~docv:"PATH"
          ~doc:
            "Write the OpenMetrics text exposition to $(docv) ('-' for \
             stdout).")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:
            "Also write the metrics/v1 JSON snapshot to $(docv) ('-' for \
             stdout; the OpenMetrics text then defaults to stderr-less \
             silence unless --openmetrics names a file).")
  in
  let runs_arg =
    Arg.(
      value & opt int 1
      & info [ "runs" ] ~docv:"R" ~doc:"Run the workload $(docv) times.")
  in
  let stable_only_arg =
    Arg.(
      value & flag
      & info [ "stable-only" ]
          ~doc:
            "Emit only simulated-deterministic metric families (drop wall \
             clock and GC).  This projection is byte-identical across \
             --domains and fast-forward.")
  in
  let run w runs openmetrics json stable_only log_level log_json =
    setup_logs log_level log_json;
    if runs < 1 then begin
      Obs.Log.error "planarmon snapshot: --runs must be >= 1";
      exit 2
    end;
    M.set_enabled true;
    M.reset ();
    for _ = 1 to runs do
      ignore (run_workload w)
    done;
    let stable_only = if stable_only then Some true else None in
    (match json with
    | Some out -> (
        try Report.write out (Report.metrics_json ?stable_only ())
        with Sys_error msg ->
          Obs.Log.errorf "planarmon snapshot: cannot write %s: %s" out msg;
          exit 2)
    | None -> ());
    (* With --json - on stdout, suppress the default '-' exposition so
       stdout stays a single parseable document. *)
    let om_suppressed = json = Some "-" && openmetrics = "-" in
    if not om_suppressed then (
      try write_text openmetrics (M.expose ?stable_only ())
      with Sys_error msg ->
        Obs.Log.errorf "planarmon snapshot: cannot write %s: %s" openmetrics
          msg;
        exit 2)
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:"Run a tester workload and emit OpenMetrics + metrics/v1 JSON")
    Term.(
      const run $ workload_term $ runs_arg $ openmetrics_arg $ json_arg
      $ stable_only_arg $ log_level_arg $ log_json_arg)

(* ---------- compare ----------------------------------------------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Keys that are configuration, not measurement: the determinism
   contract says stable numbers agree across jobs/domains, so two
   reports from different parallelism configs must still gate. *)
let ignored_key k =
  List.mem k [ "jobs"; "host_cores"; "domains" ] || contains k "speedup"

(* Wall-clock-like leaves: gated by threshold instead of exact match. *)
let wall_key k = contains k "seconds" || contains k "wall" || k = "ns_per_run"

type cmp = {
  mutable det : (string * string * string) list;  (* path, old, new *)
  mutable wall : (string * float * float) list;   (* path, old, new *)
  mutable n_det : int;   (* deterministic leaves compared *)
  mutable n_wall : int;  (* wall leaves gated *)
}

let num_of = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

let leaf_str j = Json.to_string j

(* Structural walk.  [key] is the member name the value sits under
   (inherited through lists); [host] is true inside a "host" block,
   where everything that is not wall-like is scheduling noise and is
   skipped. *)
let rec walk c ~host ~key path a b =
  match (a, b) with
  | Json.Obj ma, Json.Obj mb ->
      let ka = List.map fst ma and kb = List.map fst mb in
      if List.sort compare ka <> List.sort compare kb then begin
        c.det <-
          ( path,
            "keys {" ^ String.concat "," ka ^ "}",
            "keys {" ^ String.concat "," kb ^ "}" )
          :: c.det;
        c.n_det <- c.n_det + 1
      end
      else
        List.iter
          (fun (k, va) ->
            if not (ignored_key k) then
              let vb = List.assoc k mb in
              walk c
                ~host:(host || k = "host")
                ~key:k
                (path ^ "." ^ k)
                va vb)
          ma
  | Json.List la, Json.List lb ->
      if List.length la <> List.length lb then begin
        c.det <-
          ( path,
            Printf.sprintf "%d elements" (List.length la),
            Printf.sprintf "%d elements" (List.length lb) )
          :: c.det;
        c.n_det <- c.n_det + 1
      end
      else
        List.iteri
          (fun i (va, vb) ->
            walk c ~host ~key (Printf.sprintf "%s[%d]" path i) va vb)
          (List.combine la lb)
  | _ ->
      if wall_key key then begin
        match (num_of a, num_of b) with
        | Some x, Some y ->
            c.n_wall <- c.n_wall + 1;
            c.wall <- (path, x, y) :: c.wall
        | _ ->
            if a <> b then c.det <- (path, leaf_str a, leaf_str b) :: c.det;
            c.n_det <- c.n_det + 1
      end
      else if host then ()  (* scheduling noise: stepped counts, GC, ... *)
      else begin
        c.n_det <- c.n_det + 1;
        if a <> b then c.det <- (path, leaf_str a, leaf_str b) :: c.det
      end

(* metrics/v1: stable families must be structurally identical; families
   whose name smells like wall clock gate series-by-series (matched on
   labels, series present on one side only are host artifacts and
   skipped); everything else host-side is ignored. *)
let compare_metrics c old_j new_j =
  let fams j =
    match j with
    | Json.Obj members -> (
        match List.assoc_opt "metrics" members with
        | Some (Json.List l) ->
            List.filter_map
              (fun f ->
                match f with
                | Json.Obj fm -> (
                    match
                      (List.assoc_opt "name" fm, List.assoc_opt "stable" fm)
                    with
                    | Some (Json.String name), Some (Json.Bool stable) ->
                        Some (name, (stable, f))
                    | _ -> None)
                | _ -> None)
              l
        | _ -> [])
    | _ -> []
  in
  let fa = fams old_j and fb = fams new_j in
  let stable_names side =
    List.filter_map (fun (n, (s, _)) -> if s then Some n else None) side
  in
  let sa = stable_names fa and sb = stable_names fb in
  List.iter
    (fun n ->
      if not (List.mem n sb) then begin
        c.det <- ("metrics." ^ n, "present", "missing") :: c.det;
        c.n_det <- c.n_det + 1
      end)
    sa;
  List.iter
    (fun n ->
      if not (List.mem n sa) then begin
        c.det <- ("metrics." ^ n, "missing", "present") :: c.det;
        c.n_det <- c.n_det + 1
      end)
    sb;
  List.iter
    (fun (name, (stable, f_old)) ->
      match List.assoc_opt name fb with
      | None -> ()
      | Some (_, f_new) ->
          if stable then
            walk c ~host:false ~key:name ("metrics." ^ name) f_old f_new
          else if contains name "wall" then begin
            let series f =
              match f with
              | Json.Obj fm -> (
                  match List.assoc_opt "series" fm with
                  | Some (Json.List l) ->
                      List.filter_map
                        (fun s ->
                          match s with
                          | Json.Obj sm -> (
                              match
                                ( List.assoc_opt "labels" sm,
                                  List.assoc_opt "value" sm )
                              with
                              | Some labels, Some v -> (
                                  match num_of v with
                                  | Some x -> Some (Json.to_string labels, x)
                                  | None -> None)
                              | _ -> None)
                          | _ -> None)
                        l
                  | _ -> [])
              | _ -> []
            in
            List.iter
              (fun (labels, x) ->
                match List.assoc_opt labels (series f_new) with
                | Some y ->
                    c.n_wall <- c.n_wall + 1;
                    c.wall <-
                      (Printf.sprintf "metrics.%s%s" name labels, x, y)
                      :: c.wall
                | None -> ())
              (series f_old)
          end)
    fa

let compare_cmd =
  let old_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OLD" ~doc:"Baseline report.")
  in
  let new_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW" ~doc:"Candidate report.")
  in
  let threshold_arg =
    Arg.(
      value & opt float 25.0
      & info [ "wall-threshold" ] ~docv:"PCT"
          ~doc:
            "Flag a wall-clock field as a regression when NEW exceeds OLD \
             by more than $(docv) percent (and by a small absolute floor, \
             to ignore sub-10ms noise).")
  in
  let no_wall_arg =
    Arg.(
      value & flag
      & info [ "no-wall" ]
          ~doc:
            "Skip wall-clock gating entirely (compare only deterministic \
             fields).  Use when OLD and NEW come from different machines.")
  in
  let run old_path new_path threshold no_wall log_level log_json =
    setup_logs log_level log_json;
    let load path =
      match Report.Json_parse.of_file path with
      | Ok j -> j
      | Error msg ->
          Obs.Log.errorf "planarmon compare: %s" msg;
          exit 2
    in
    let old_j = load old_path and new_j = load new_path in
    let tag path j =
      match Report.check_schema j with
      | Ok t -> t
      | Error msg ->
          Obs.Log.errorf "planarmon compare: %s: %s" path msg;
          exit 2
    in
    let ta = tag old_path old_j and tb = tag new_path new_j in
    let c = { det = []; wall = []; n_det = 0; n_wall = 0 } in
    if ta <> tb then begin
      c.det <- ("schema", ta, tb) :: c.det;
      c.n_det <- c.n_det + 1
    end
    else if ta = Report.metrics_schema then compare_metrics c old_j new_j
    else walk c ~host:false ~key:"" "$" old_j new_j;
    let det = List.rev c.det in
    let floor_for path =
      (* congest_run_wall_us counters are microseconds; everything else
         wall-like in this repo is seconds or ns/run. *)
      if contains path "_us" then 10_000.0
      else if contains path "ns_per_run" then 1000.0
      else 0.01
    in
    let wall_offenders =
      if no_wall then []
      else
        List.rev c.wall
        |> List.filter (fun (path, x, y) ->
               x > 0.0
               && y > x *. (1.0 +. (threshold /. 100.0))
               && y -. x > floor_for path)
    in
    if det <> [] then begin
      Printf.printf "DETERMINISTIC MISMATCH (%d field(s)):\n"
        (List.length det);
      let shown = ref 0 in
      List.iter
        (fun (path, o, n) ->
          incr shown;
          if !shown <= 50 then
            Printf.printf "  %-60s old=%s new=%s\n" path o n)
        det;
      if !shown > 50 then Printf.printf "  ... and %d more\n" (!shown - 50)
    end;
    if wall_offenders <> [] then begin
      Printf.printf "WALL-CLOCK REGRESSION (> %g%%):\n" threshold;
      List.iter
        (fun (path, x, y) ->
          Printf.printf "  %-60s old=%.6g new=%.6g (+%.1f%%)\n" path x y
            ((y -. x) /. x *. 100.0))
        wall_offenders
    end;
    if det = [] && wall_offenders = [] then begin
      Printf.printf
        "OK: %d deterministic field(s) identical, %d wall-clock field(s) %s\n"
        c.n_det c.n_wall
        (if no_wall then "ignored (--no-wall)"
         else Printf.sprintf "within %g%%" threshold);
      exit 0
    end
    else exit 1
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Diff two reports: deterministic fields exactly, wall clock by \
          threshold")
    Term.(
      const run $ old_arg $ new_arg $ threshold_arg $ no_wall_arg
      $ log_level_arg $ log_json_arg)

(* ---------- watch ------------------------------------------------------- *)

let watch_cmd =
  let iters_arg =
    Arg.(
      value & opt int 5
      & info [ "iters" ] ~docv:"N" ~doc:"Number of workload iterations.")
  in
  let outlier_arg =
    Arg.(
      value & opt float 2.0
      & info [ "outlier-factor" ] ~docv:"X"
          ~doc:
            "Flag an iteration as an outlier when its wall clock exceeds \
             $(docv) times the median.")
  in
  let openmetrics_arg =
    Arg.(
      value & opt (some string) None
      & info [ "openmetrics" ] ~docv:"PATH"
          ~doc:
            "After the loop, write the aggregated OpenMetrics exposition \
             (histograms accumulated over all iterations) to $(docv).")
  in
  let run w iters outlier_factor openmetrics log_level log_json =
    setup_logs log_level log_json;
    if iters < 1 then begin
      Obs.Log.error "planarmon watch: --iters must be >= 1";
      exit 2
    end;
    M.set_enabled true;
    M.reset ();
    let sims = Array.make iters (0, 0, 0, "") in
    let walls = Array.make iters 0.0 in
    for i = 0 to iters - 1 do
      let r, wall = run_workload w in
      let verdict =
        match r.PT.verdict with
        | PT.Accept -> "accept"
        | PT.Reject _ -> "reject"
        | PT.Degraded _ -> "degraded"
      in
      sims.(i) <- (r.PT.rounds, r.PT.messages, r.PT.total_bits, verdict);
      walls.(i) <- wall
    done;
    let sorted = Array.copy walls in
    Array.sort compare sorted;
    let median = sorted.(iters / 2) in
    let drift = ref false in
    Printf.printf "%-5s %-10s %-12s %-14s %-9s %-10s %s\n" "iter" "rounds"
      "messages" "bits" "verdict" "wall_s" "flags";
    Array.iteri
      (fun i (rounds, messages, bits, verdict) ->
        let flags = ref [] in
        if sims.(i) <> sims.(0) then begin
          drift := true;
          flags := "SIM-DRIFT" :: !flags
        end;
        if median > 0.0 && walls.(i) > outlier_factor *. median then
          flags := "WALL-OUTLIER" :: !flags;
        Printf.printf "%-5d %-10d %-12d %-14d %-9s %-10.6f %s\n" i rounds
          messages bits verdict
          walls.(i)
          (String.concat "," !flags))
      sims;
    Printf.printf "median wall_s: %.6f\n" median;
    (match openmetrics with
    | Some path -> (
        try write_text path (M.expose ())
        with Sys_error msg ->
          Obs.Log.errorf "planarmon watch: cannot write %s: %s" path msg;
          exit 2)
    | None -> ());
    if !drift then begin
      Obs.Log.error
        "planarmon watch: simulated accounting drifted across iterations \
         (same seed must give identical rounds/messages/bits)";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Loop a workload, aggregate histograms, flag wall outliers and \
          simulated drift")
    Term.(
      const run $ workload_term $ iters_arg $ outlier_arg $ openmetrics_arg
      $ log_level_arg $ log_json_arg)

(* ---------- attach ------------------------------------------------------ *)

(* The fields `attach` consumes from a heartbeat/v1 document.  The
   writer publishes atomically (tmp+rename), so every successful read
   sees a complete document; a parse failure means the file is not a
   heartbeat at all. *)
type hb = {
  hb_seq : int;
  hb_state : string;
  hb_verdict : string option;
  hb_run_id : string;
  hb_property : string;
  hb_phase : string;
  hb_done : int;
  hb_total : int;
  hb_rounds : int;
  hb_messages : int;
  hb_wall : float;
}

let parse_heartbeat s =
  match Report.Json_parse.of_string s with
  | Error msg -> Error msg
  | Ok (Json.Obj m) -> (
      let str k =
        match List.assoc_opt k m with Some (Json.String s) -> Some s | _ -> None
      in
      let int k =
        match List.assoc_opt k m with Some (Json.Int i) -> Some i | _ -> None
      in
      let num k =
        match List.assoc_opt k m with
        | Some (Json.Float f) -> Some f
        | Some (Json.Int i) -> Some (float_of_int i)
        | _ -> None
      in
      match str "schema" with
      | Some sch when sch = Report.heartbeat_schema -> (
          match
            (str "state", int "seq", int "phases_done", int "phases_total",
             int "rounds", int "messages", num "wall_s")
          with
          | ( Some state, Some seq, Some done_, Some total, Some rounds,
              Some messages, Some wall ) ->
              Ok
                {
                  hb_seq = seq;
                  hb_state = state;
                  hb_verdict = str "verdict";
                  hb_run_id = Option.value (str "run_id") ~default:"?";
                  hb_property = Option.value (str "property") ~default:"?";
                  hb_phase = Option.value (str "phase") ~default:"";
                  hb_done = done_;
                  hb_total = total;
                  hb_rounds = rounds;
                  hb_messages = messages;
                  hb_wall = wall;
                }
          | _ -> Error "missing heartbeat member")
      | Some sch -> Error (Printf.sprintf "unexpected schema %S" sch)
      | None -> Error "no \"schema\" member")
  | Ok _ -> Error "not a JSON object"

let attach_cmd =
  let file_arg =
    let doc = "Heartbeat status file published by a live run." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let stall_arg =
    let doc =
      "Declare the run dead and exit 1 when the heartbeat sequence number \
       does not advance for $(docv) seconds.  0 (the default) follows \
       forever."
    in
    Arg.(value & opt float 0.0 & info [ "stall-after" ] ~docv:"SECS" ~doc)
  in
  let interval_arg =
    let doc = "Poll interval in seconds." in
    Arg.(value & opt float 0.5 & info [ "interval" ] ~docv:"SECS" ~doc)
  in
  let run file stall_after interval log_level log_json =
    setup_logs log_level log_json;
    if stall_after < 0.0 then begin
      Obs.Log.error "planarmon attach: --stall-after must be >= 0";
      exit 2
    end;
    if interval <= 0.0 then begin
      Obs.Log.error "planarmon attach: --interval must be > 0";
      exit 2
    end;
    let read_file () =
      try Some (In_channel.with_open_bin file In_channel.input_all)
      with Sys_error _ -> None
    in
    let tty = Unix.isatty Unix.stdout in
    let print_done hb =
      if tty then print_string "\r";
      Printf.printf "[%s] done: verdict=%s phases=%d/%d rounds=%d messages=%d \
                     wall=%.3fs\n"
        hb.hb_run_id
        (Option.value hb.hb_verdict ~default:"?")
        hb.hb_done hb.hb_total hb.hb_rounds hb.hb_messages hb.hb_wall;
      exit 0
    in
    (* Rounds/s over a sliding window of the writer's own (wall_s,
       rounds) stamps — immune to our polling jitter.  ETA is
       phase-based: phases are the only monotone progress measure whose
       total is known up front (the round budget is data-dependent). *)
    let window = Queue.create () in
    let progress hb =
      Queue.push (hb.hb_wall, hb.hb_rounds) window;
      while Queue.length window > 32 do
        ignore (Queue.pop window)
      done;
      let rps =
        if Queue.length window >= 2 then begin
          let w0, r0 = Queue.peek window in
          let w1, r1 =
            Queue.fold (fun _ x -> x) (Queue.peek window) window
          in
          if w1 > w0 then
            Printf.sprintf " %.0f rounds/s" (float_of_int (r1 - r0) /. (w1 -. w0))
          else ""
        end
        else ""
      in
      let eta =
        if hb.hb_done > 0 && hb.hb_total > hb.hb_done then
          Printf.sprintf " eta~%.0fs"
            (hb.hb_wall
            *. float_of_int (hb.hb_total - hb.hb_done)
            /. float_of_int hb.hb_done)
        else ""
      in
      let pct =
        if hb.hb_total > 0 then 100 * hb.hb_done / hb.hb_total else 0
      in
      let line =
        Printf.sprintf "[%s] %3d%% %s phases=%d/%d rounds=%d messages=%d \
                        wall=%.1fs%s%s"
          hb.hb_run_id pct
          (if hb.hb_phase = "" then hb.hb_property else hb.hb_phase)
          hb.hb_done hb.hb_total hb.hb_rounds hb.hb_messages hb.hb_wall rps eta
      in
      if tty then Printf.printf "\r%s   %!" line
      else begin
        print_endline line;
        flush stdout
      end
    in
    (* First read gates the input contract: missing or unparseable at
       attach time is a usage error (2), not a stall (1). *)
    (match read_file () with
    | None ->
        Obs.Log.errorf "planarmon attach: %s: cannot read" file;
        exit 2
    | Some s -> (
        match parse_heartbeat s with
        | Error msg ->
            Obs.Log.errorf "planarmon attach: %s: %s" file msg;
            exit 2
        | Ok hb ->
            if hb.hb_state = "done" then print_done hb;
            progress hb;
            let last_seq = ref hb.hb_seq in
            let last_advance = ref (Unix.gettimeofday ()) in
            let rec loop () =
              Unix.sleepf interval;
              (match read_file () with
              | None ->
                  (* The file existed when we attached; its writer (or a
                     cleanup) removed it without publishing "done". *)
                  if tty then print_newline ();
                  Obs.Log.errorf
                    "planarmon attach: %s disappeared before completion" file;
                  exit 1
              | Some s -> (
                  match parse_heartbeat s with
                  | Error msg ->
                      if tty then print_newline ();
                      Obs.Log.errorf "planarmon attach: %s: %s" file msg;
                      exit 2
                  | Ok hb ->
                      if hb.hb_state = "done" then print_done hb;
                      if hb.hb_seq <> !last_seq then begin
                        last_seq := hb.hb_seq;
                        last_advance := Unix.gettimeofday ();
                        progress hb
                      end
                      else if
                        stall_after > 0.0
                        && Unix.gettimeofday () -. !last_advance > stall_after
                      then begin
                        if tty then print_newline ();
                        Obs.Log.errorf
                          "planarmon attach: no heartbeat from [%s] for %.1fs \
                           (last seq %d, phase %d/%d) — declaring the run dead"
                          hb.hb_run_id stall_after hb.hb_seq hb.hb_done
                          hb.hb_total;
                        exit 1
                      end));
              loop ()
            in
            loop ()))
  in
  Cmd.v
    (Cmd.info "attach"
       ~doc:
         "Tail a live run's heartbeat file: progress, rounds/s and \
          phase-aware ETA.  Exits 0 when the run finishes, 1 when the \
          heartbeat stalls past --stall-after or the file disappears, 2 on \
          missing or malformed input.")
    Term.(
      const run $ file_arg $ stall_arg $ interval_arg $ log_level_arg
      $ log_json_arg)

(* ---------- history ----------------------------------------------------- *)

let history_cmd =
  let file_arg =
    let doc = "Run ledger (runs.ledger/v1 JSONL) written via --ledger." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"LEDGER" ~doc)
  in
  let property_arg =
    let doc = "Only show runs of this property." in
    Arg.(
      value
      & opt (some string) None
      & info [ "property" ] ~docv:"NAME" ~doc)
  in
  let run file property_filter log_level log_json =
    setup_logs log_level log_json;
    if not (Sys.file_exists file) then begin
      Obs.Log.errorf "planarmon history: %s: no such file" file;
      exit 2
    end;
    let records, skipped = Report.Ledger.load file in
    if skipped > 0 then
      Obs.Log.warnf "planarmon history: skipped %d unparseable line(s)" skipped;
    let records =
      match property_filter with
      | None -> records
      | Some p ->
          List.filter (fun r -> r.Report.Ledger.property = p) records
    in
    if records = [] then begin
      print_endline "no ledger records";
      exit 0
    end;
    (* Group by fingerprint, preserving first-seen order.  Every run of
       a fingerprint must agree on the simulated outcome — the digest
       already folds verdict/rounds/messages/bits into one value, so a
       digest mismatch IS determinism drift. *)
    let groups : (string, Report.Ledger.record list ref) Hashtbl.t =
      Hashtbl.create 16
    in
    let order = ref [] in
    List.iter
      (fun r ->
        let fp = r.Report.Ledger.fingerprint in
        match Hashtbl.find_opt groups fp with
        | Some l -> l := r :: !l
        | None ->
            Hashtbl.add groups fp (ref [ r ]);
            order := fp :: !order)
      records;
    let drift = ref false in
    Printf.printf "%-12s %-5s %-9s %-10s %-12s %-10s %-8s %s\n" "property"
      "runs" "verdict" "rounds" "messages" "wall_med" "trend" "fingerprint";
    List.iter
      (fun fp ->
        let rows = List.rev !(Hashtbl.find groups fp) in
        let r0 = List.hd rows in
        let group_drift =
          List.exists
            (fun r ->
              r.Report.Ledger.digest <> r0.Report.Ledger.digest
              || r.Report.Ledger.verdict <> r0.Report.Ledger.verdict)
            rows
        in
        if group_drift then drift := true;
        let walls =
          List.map (fun r -> r.Report.Ledger.wall_s) rows
          |> List.sort compare |> Array.of_list
        in
        let median = walls.(Array.length walls / 2) in
        let first_wall = (List.hd rows).Report.Ledger.wall_s in
        let last_wall =
          (List.nth rows (List.length rows - 1)).Report.Ledger.wall_s
        in
        let trend =
          if List.length rows < 2 || first_wall <= 0.0 then "-"
          else
            Printf.sprintf "%+.0f%%"
              (100.0 *. (last_wall -. first_wall) /. first_wall)
        in
        Printf.printf "%-12s %-5d %-9s %-10d %-12d %-10.4f %-8s %s%s\n"
          r0.Report.Ledger.property (List.length rows)
          r0.Report.Ledger.verdict r0.Report.Ledger.rounds
          r0.Report.Ledger.messages median trend fp
          (if group_drift then "  DRIFT" else "");
        if group_drift then
          List.iteri
            (fun i r ->
              Printf.printf
                "  run %d: tool=%s verdict=%s rounds=%d messages=%d bits=%d \
                 digest=%s\n"
                i r.Report.Ledger.tool r.Report.Ledger.verdict
                r.Report.Ledger.rounds r.Report.Ledger.messages
                r.Report.Ledger.total_bits r.Report.Ledger.digest)
            rows)
      (List.rev !order);
    if !drift then begin
      Obs.Log.error
        "planarmon history: determinism drift — runs with the same \
         fingerprint disagree on the simulated outcome";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "history"
       ~doc:
         "Summarize a provenance run ledger: runs per fingerprint, wall-time \
          trend, and determinism drift (same fingerprint, different \
          simulated outcome — exit 1).")
    Term.(const run $ file_arg $ property_arg $ log_level_arg $ log_json_arg)

(* ---------- entry ------------------------------------------------------- *)

let () =
  let doc = "run-level metrics monitor and bench regression gate" in
  (* [n] is a single-character option, which cmdliner only accepts as
     [-n]; keep the documented [--n N] spelling working too (same
     rewrite as planartest). *)
  let argv = Array.map (fun a -> if a = "--n" then "-n" else a) Sys.argv in
  let code =
    try
      Cmd.eval ~argv
        (Cmd.group
           (Cmd.info "planarmon" ~doc)
           [ snapshot_cmd; compare_cmd; watch_cmd; attach_cmd; history_cmd ])
    with
    | Sys_error msg | Failure msg ->
        Printf.eprintf "planarmon: %s\n" msg;
        2
  in
  (* cmdliner's cli_error is 124; this tool's contract is 2 for usage
     errors (same sweep as planartrace). *)
  exit (if code = Cmd.Exit.cli_error then 2 else code)
