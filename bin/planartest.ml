(* planartest — command-line front end to the distributed planarity tester
   and its companion algorithms.

     planartest gen --family grid --n 100 > g.txt
     planartest test g.txt --eps 0.2
     planartest partition g.txt --eps 0.3 [--randomized --delta 0.1]
     planartest spanner g.txt --eps 0.25
     planartest info g.txt *)

open Cmdliner
open Graphlib

let read_graph path =
  match path with "-" -> Gio.of_channel stdin | p -> Gio.load p

(* Structured logging (Obs.Log).  The CLI defaults to info so progress
   messages ("wrote …") stay visible; --log-level debug opens up engine
   internals and --log-json captures the same records as JSONL. *)

let log_level_arg =
  let doc = "Log verbosity: error, warn, info or debug." in
  Arg.(value & opt string "info" & info [ "log-level" ] ~docv:"LEVEL" ~doc)

let log_json_arg =
  let doc =
    "Also emit every log record as one JSON object per line to $(docv) \
     ('-' for stderr).  Records carry a timestamp, level, run id, phase \
     and node context."
  in
  Arg.(value & opt (some string) None & info [ "log-json" ] ~docv:"PATH" ~doc)

let setup_logs level json =
  (* Error-level records are never suppressed and reach the JSONL sink
     too (when one is open), so even CLI-level failures land in
     --log-json instead of bypassing it via bare eprintf. *)
  (match Obs.Log.level_of_string level with
  | Ok l -> Obs.Log.set_level l
  | Error msg ->
      Obs.Log.errorf "planartest: %s" msg;
      exit 2);
  match json with
  | None -> ()
  | Some path -> (
      match Obs.Log.set_json path with
      | Ok () -> at_exit Obs.Log.close_json
      | Error msg ->
          Obs.Log.errorf "planartest: cannot open --log-json %s: %s" path msg;
          exit 2)

let graph_arg =
  let doc = "Input graph file (edge list; '-' for stdin)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"GRAPH" ~doc)

let eps_arg =
  let doc = "Distance / edge-cut parameter epsilon." in
  Arg.(value & opt float 0.2 & info [ "eps" ] ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 0 & info [ "seed" ] ~doc)

(* --- gen ------------------------------------------------------------- *)

let gen_cmd =
  let family =
    let doc =
      "Family: grid, torus, cycle, path, tree, apollonian, planar, far, \
       gnp, complete, kbipartite, petersen, hypercube, k5necklace."
    in
    Arg.(value & opt string "grid" & info [ "family" ] ~doc)
  in
  let n_arg =
    Arg.(value & opt int 100 & info [ "n" ] ~doc:"Number of vertices.")
  in
  let extra =
    Arg.(
      value & opt float 0.2
      & info [ "param" ]
          ~doc:
            "Family parameter: eps for 'far', p*n for 'gnp', edge fraction \
             for 'planar'.")
  in
  let run family n param seed log_level log_json =
    setup_logs log_level log_json;
    let rng = Random.State.make [| seed |] in
    let g =
      try
        match family with
        | "grid" ->
            (* Exactly n vertices: factor n as rows * cols instead of the
               old sqrt-and-round, which silently generated a different
               size for non-squares. *)
            let rows, cols = Generators.grid_dims n in
            Generators.grid rows cols
        | "torus" ->
            let rows, cols = Generators.grid_dims ~min_side:3 n in
            Generators.torus rows cols
        | "cycle" -> Generators.cycle n
        | "path" -> Generators.path n
        | "tree" -> Generators.random_tree rng n
        | "apollonian" -> Generators.apollonian rng n
        | "planar" ->
            let mmax = (3 * n) - 6 in
            Generators.random_planar rng ~n
              ~m:(max (n - 1) (int_of_float (param *. float_of_int mmax)))
        | "far" -> Generators.far_from_planar rng ~n ~eps:param
        | "gnp" -> Generators.gnp rng n (param /. float_of_int n)
        | "complete" -> Generators.complete n
        | "kbipartite" -> Generators.complete_bipartite (n / 2) (n - (n / 2))
        | "petersen" -> Generators.petersen ()
        | "hypercube" ->
            Generators.hypercube
              (int_of_float (log (float_of_int n) /. log 2.0))
        | "k5necklace" -> Generators.k5_necklace (max 1 (n / 5))
        | f -> failwith ("unknown family: " ^ f)
      with Invalid_argument msg | Failure msg ->
        Obs.Log.errorf "planartest gen: %s" msg;
        exit 1
    in
    Obs.Log.infof
      ~fields:[ ("n", Obs.Log.I (Graph.n g)); ("m", Obs.Log.I (Graph.m g)) ]
      "generated %s" family;
    print_string (Gio.to_string g)
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a graph from a synthetic family")
    Term.(
      const run $ family $ n_arg $ extra $ seed_arg $ log_level_arg
      $ log_json_arg)

(* --- test ------------------------------------------------------------ *)

let test_cmd =
  let stats_json_arg =
    let doc =
      "Write a machine-readable JSON report (verdict, rejections, round / \
       message / bit totals, per-phase telemetry series) to $(docv); '-' \
       writes it to stdout (the human-readable summary then goes to \
       stderr)."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-json" ] ~docv:"PATH" ~doc)
  in
  let domains_arg =
    let doc =
      "Shard engine node stepping across $(docv) OCaml domains.  The \
       verdict and every round/message/bit statistic are identical for \
       any value; only wall-clock time changes."
    in
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"D" ~doc)
  in
  let faults_arg =
    let doc =
      "Inject a deterministic fault schedule into every engine run.  \
       $(docv) is a comma-separated key=value list: drop, dup, delay, \
       trunc (probabilities), maxdelay (rounds), seed (fault PRNG seed), \
       and crash=NODE@FROM or crash=NODE@FROM-UNTIL (repeatable).  \
       Example: 'drop=0.05,delay=0.02,seed=7,crash=3@10-20'.  With faults \
       active the verdict may be DEGRADED; a planar input never flips to \
       REJECT (one-sided error is preserved by construction)."
    in
    Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC" ~doc)
  in
  let run path eps seed domains stats_json faults_spec trace_out
      trace_capacity no_ff mode_name checkpoint_path checkpoint_every
      checkpoint_exit no_gt property heartbeat_path heartbeat_every
      heartbeat_secs progress ledger_path log_level log_json =
    setup_logs log_level log_json;
    let run_id = Printf.sprintf "planartest:%s:seed=%d" path seed in
    Obs.Log.set_context ~run_id ();
    (match property with
    | "planarity" | "bipartite" | "cycle-free" -> ()
    | p ->
        Obs.Log.errorf
          "planartest test: unknown --property %S (expected planarity, \
           bipartite or cycle-free)"
          p;
        exit 2);
    let g = read_graph path in
    let mode =
      match Congest.Compiled.mode_of_string mode_name with
      | Some m -> m
      | None ->
          Obs.Log.errorf
            "planartest test: unknown --mode %S (expected fiber, compiled or \
             auto)"
            mode_name;
          exit 2
    in
    let faults =
      match faults_spec with
      | None -> None
      | Some spec -> (
          match Congest.Faults.of_spec spec with
          | Ok p -> Some p
          | Error msg ->
              Obs.Log.errorf "planartest test: %s" msg;
              exit 2)
    in
    let fingerprint =
      Report.Checkpoint.fingerprint ~property g ~eps ~seed ~alpha:3 ~faults
    in
    (* --progress draws on stderr only when a human is watching: not a
       tty, or --log-json - sharing the stream, disables it silently. *)
    let progress_live =
      progress && Unix.isatty Unix.stderr && log_json <> Some "-"
    in
    let on_publish =
      if not progress_live then None
      else
        Some
          (fun (p : Obs.Heartbeat.progress) ->
            let pct =
              if p.Obs.Heartbeat.phases_total > 0 then
                100 * p.Obs.Heartbeat.phases_done
                / p.Obs.Heartbeat.phases_total
              else 0
            in
            Printf.eprintf
              "\r[planartest] %3d%% | phase %d/%d | rounds %d | messages %d   \
               %!"
              pct p.Obs.Heartbeat.phases_done p.Obs.Heartbeat.phases_total
              p.Obs.Heartbeat.rounds p.Obs.Heartbeat.messages)
    in
    (if heartbeat_every < 1 then begin
       Obs.Log.errorf "planartest test: --heartbeat-every must be >= 1 (got %d)"
         heartbeat_every;
       exit 2
     end);
    (if heartbeat_secs <= 0.0 then begin
       Obs.Log.errorf "planartest test: --heartbeat-secs must be > 0 (got %g)"
         heartbeat_secs;
       exit 2
     end);
    let heartbeat =
      if heartbeat_path = None && not progress_live then None
      else
        Some
          (Obs.Heartbeat.create ?path:heartbeat_path
             ~every_rounds:heartbeat_every ~every_secs:heartbeat_secs
             ?on_publish ~run_id ~fingerprint ~property ())
    in
    (* Checkpointed runs always record telemetry, even without
       --stats-json: the snapshot carries the series, so a later resume
       that does ask for --stats-json still gets the full history. *)
    let telemetry =
      if stats_json <> None || checkpoint_path <> None then
        Some (Congest.Telemetry.create ())
      else None
    in
    let trace =
      Option.map
        (fun _ ->
          match trace_capacity with
          | None -> Congest.Trace.create ()
          | Some cap when cap >= 1 ->
              Congest.Trace.create
                ~config:
                  { Congest.Trace.default_config with
                    Congest.Trace.capacity = cap }
                ()
          | Some cap ->
              Obs.Log.errorf
                "planartest test: --trace-capacity must be >= 1 (got %d)" cap;
              exit 2)
        trace_out
    in
    let checkpoint =
      match checkpoint_path with
      | None -> None
      | Some ck_path ->
          let after_save saves =
            Obs.Log.infof "checkpoint %d written to %s" saves ck_path;
            Option.iter
              (fun hb -> Obs.Heartbeat.set_checkpoint hb ck_path)
              heartbeat;
            match checkpoint_exit with
            | Some k when saves >= k ->
                Obs.Log.infof
                  "exiting after checkpoint %d as requested (--checkpoint-exit)"
                  saves;
                exit 3
            | _ -> ()
          in
          Some
            (Report.Checkpoint.stage1 ~path:ck_path ~every:checkpoint_every
               ~after_save ~property g ~eps ~seed ~alpha:3 ~faults)
    in
    (* Planarity keeps its dedicated path (and [Report.tester_stats]) so
       its human output and stats JSON stay byte-identical to pre-harness
       builds; the newer properties run through the harness directly and
       emit the property-tagged document. *)
    let totals_of_report (r : Tester.Planarity_tester.report) =
      {
        Tester.Harness.verdict = r.Tester.Planarity_tester.verdict;
        stage1 = r.Tester.Planarity_tester.stage1;
        rounds = r.Tester.Planarity_tester.rounds;
        nominal_rounds = r.Tester.Planarity_tester.nominal_rounds;
        messages = r.Tester.Planarity_tester.messages;
        total_bits = r.Tester.Planarity_tester.total_bits;
        fast_forwarded_rounds =
          r.Tester.Planarity_tester.fast_forwarded_rounds;
        dropped = r.Tester.Planarity_tester.dropped;
        duplicated = r.Tester.Planarity_tester.duplicated;
        delayed = r.Tester.Planarity_tester.delayed;
        crashed_nodes = r.Tester.Planarity_tester.crashed_nodes;
      }
    in
    let n = Graph.n g and m = Graph.m g in
    let wall_t0 = Unix.gettimeofday () in
    let t, stats_doc =
      try
        match property with
        | "planarity" ->
            let r =
              Tester.Planarity_tester.run ?telemetry ?trace ~domains
                ~fast_forward:(not no_ff) ?faults ~mode ?checkpoint
                ?heartbeat g ~eps ~seed
            in
            ( totals_of_report r,
              fun host ->
                Report.tester_stats ~n ~m ~eps ~seed ~domains ?telemetry
                  ?faults ?host r )
        | "bipartite" ->
            let _, t =
              Tester.Bipartite_tester.run ?telemetry ?trace ~domains
                ~fast_forward:(not no_ff) ?faults ~mode ?checkpoint
                ?heartbeat g ~eps ~seed
            in
            ( t,
              fun host ->
                Report.harness_stats ~n ~m ~eps ~seed ~domains ~property
                  ?telemetry ?faults ?host t )
        | _ ->
            let _, t =
              Tester.Cycle_free_tester.run ?telemetry ?trace ~domains
                ~fast_forward:(not no_ff) ?faults ~mode ?checkpoint
                ?heartbeat g ~eps ~seed
            in
            ( t,
              fun host ->
                Report.harness_stats ~n ~m ~eps ~seed ~domains ~property
                  ?telemetry ?faults ?host t )
      with Failure msg when checkpoint_path <> None ->
        Obs.Log.errorf "planartest test: %s" msg;
        exit 2
    in
    let wall_s = Unix.gettimeofday () -. wall_t0 in
    let verdict_str =
      match t.Tester.Harness.verdict with
      | Tester.Harness.Accept -> "accept"
      | Tester.Harness.Reject _ -> "reject"
      | Tester.Harness.Degraded _ -> "degraded"
    in
    Option.iter (fun hb -> Obs.Heartbeat.finish hb ~verdict:verdict_str)
      heartbeat;
    if progress_live then prerr_newline ();
    (match ledger_path with
    | None -> ()
    | Some lp -> (
        let record =
          {
            Report.Ledger.ts = Unix.gettimeofday ();
            tool = "planartest";
            run_id;
            fingerprint;
            property;
            config =
              [
                ("graph", path);
                ("eps", Printf.sprintf "%g" eps);
                ("seed", string_of_int seed);
                ("domains", string_of_int domains);
                ("mode", mode_name);
                ("fast_forward", string_of_bool (not no_ff));
                ("faults", Option.value ~default:"none" faults_spec);
              ];
            verdict = verdict_str;
            digest =
              Report.Ledger.digest_core ~property ~verdict:verdict_str
                ~rounds:t.Tester.Harness.rounds
                ~nominal_rounds:t.Tester.Harness.nominal_rounds
                ~messages:t.Tester.Harness.messages
                ~total_bits:t.Tester.Harness.total_bits
                ~fast_forwarded_rounds:t.Tester.Harness.fast_forwarded_rounds
                ~dropped:t.Tester.Harness.dropped
                ~duplicated:t.Tester.Harness.duplicated
                ~delayed:t.Tester.Harness.delayed
                ~crashed_nodes:t.Tester.Harness.crashed_nodes;
            rounds = t.Tester.Harness.rounds;
            nominal_rounds = t.Tester.Harness.nominal_rounds;
            messages = t.Tester.Harness.messages;
            total_bits = t.Tester.Harness.total_bits;
            wall_s;
            host = Unix.gethostname ();
          }
        in
        try
          Report.Ledger.append ~path:lp record;
          Obs.Log.infof "ledger record appended to %s" lp
        with
        | Sys_error msg ->
            Obs.Log.errorf "planartest test: cannot append to ledger: %s" msg;
            exit 1
        | Unix.Unix_error (e, _, _) ->
            Obs.Log.errorf "planartest test: cannot append to ledger: %s"
              (Unix.error_message e);
            exit 1));
    Option.iter Congest.Trace.finish trace;
    (match (trace_out, trace) with
    | Some path, Some tr -> (
        try
          Report.Ctrace.write path tr;
          Obs.Log.infof "wrote %s" path
        with Sys_error msg ->
          Obs.Log.errorf "planartest test: cannot write trace: %s" msg;
          exit 1)
    | _ -> ());
    (* Traced runs feed the ~stable critpath counters — but only when a
       metrics registry is live (planarmon-style embedding); the
       analysis is skipped entirely otherwise, so plain runs pay
       nothing. *)
    (match trace with
    | Some tr when Obs.Metrics.enabled () ->
        Obs.Critpath.record_metrics
          (Report.Critpath_report.analyze (Report.Ctrace.of_trace tr))
    | _ -> ());
    (* With --stats-json -, stdout carries exactly the JSON document; the
       human-readable summary moves to stderr. *)
    let hum = if stats_json = Some "-" then stderr else stdout in
    let human fmt = Printf.fprintf hum fmt in
    (match t.Tester.Harness.verdict with
    | Tester.Harness.Accept -> human "ACCEPT (all nodes)\n"
    | Tester.Harness.Reject l ->
        human "REJECT (%d nodes)\n" (List.length l);
        List.iteri
          (fun i (node, reason) ->
            if i < 5 then human "  node %d: %s\n" node reason)
          l
    | Tester.Harness.Degraded msg ->
        human "DEGRADED (no trustworthy verdict under faults)\n  %s\n" msg);
    human
      "rounds (simulated) : %d\nrounds (nominal)   : %d\nrounds \
       (fast-fwd)  : %d\nmessages           : %d\ntotal bits         : %d\n"
      t.Tester.Harness.rounds t.Tester.Harness.nominal_rounds
      t.Tester.Harness.fast_forwarded_rounds t.Tester.Harness.messages
      t.Tester.Harness.total_bits;
    if faults <> None then
      human
        "faults             : dropped=%d duplicated=%d delayed=%d \
         crashed=%d\n"
        t.Tester.Harness.dropped t.Tester.Harness.duplicated
        t.Tester.Harness.delayed t.Tester.Harness.crashed_nodes;
    if not no_gt then
      (match property with
      | "planarity" ->
          human "ground truth (LR)  : %s\n"
            (if Planarity.Lr.is_planar g then "planar" else "non-planar")
      | "bipartite" ->
          human "ground truth       : %s\n"
            (if Partition.Reference.is_bipartite g then "bipartite"
             else "non-bipartite")
      | _ ->
          let excess = Partition.Reference.excess_edges g in
          human "ground truth       : %s\n"
            (if excess = 0 then "cycle-free"
             else Printf.sprintf "has cycles (excess %d)" excess));
    match stats_json with
    | Some out ->
        let j = stats_doc trace in
        (try Report.write out j
         with Sys_error msg ->
           Obs.Log.errorf "planartest test: cannot write stats: %s" msg;
           exit 1);
        if out <> "-" then Obs.Log.infof "wrote %s" out
    | None -> ()
  in
  let trace_arg =
    let doc =
      "Record an event-level trace (message deliveries, fault firings, \
       fiber resume/park, fast-forward spans, domain-shard boundaries) \
       and write it as a binary .ctrace file to $(docv).  Analyze or \
       export it with $(b,planartrace).  Also switches --stats-json to \
       the planartest.stats/v3 schema, whose 'host' block carries \
       per-phase wall-clock / GC / load-imbalance profiles."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let trace_capacity_arg =
    let doc =
      "Trace ring capacity in events (with --trace; default 65536).  \
       Aggregates are exact at any capacity, but per-event analyses — \
       $(b,planartrace critpath) in particular — need the ring to hold \
       the whole run; size it above the expected event count (roughly \
       messages + 2 steps per node per active round) to avoid a lossy \
       profile."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "trace-capacity" ] ~docv:"N" ~doc)
  in
  let no_ff_arg =
    let doc =
      "Disable the engine's quiescent-round fast-forward (the measurement \
       baseline).  The verdict and all round/message/bit accounting are \
       identical either way — compare with $(b,planartrace diff)."
    in
    Arg.(value & flag & info [ "no-fast-forward" ] ~doc)
  in
  let mode_arg =
    let doc =
      "Execution engine for the lockstep Stage I primitives: $(b,fiber) \
       (the effect-handler reference engine), $(b,compiled) (fiber-free \
       array passes; falls back to fiber when faults are active), or \
       $(b,auto) (compiled whenever eligible).  The verdict, statistics, \
       telemetry and --trace event stream are byte-identical across \
       modes."
    in
    Arg.(value & opt string "fiber" & info [ "mode" ] ~docv:"MODE" ~doc)
  in
  let checkpoint_arg =
    let doc =
      "Checkpoint the run to $(docv) at Stage I phase boundaries and \
       resume from it when the file already exists.  The file is \
       checksummed and parameter-fingerprinted (graph, eps, seed, faults); \
       resuming with different parameters is refused.  A resumed run's \
       final statistics, per-round telemetry and .ctrace aggregates are \
       byte-identical to an uninterrupted one's (host wall-clock \
       profiles restart at the resume point)."
    in
    Arg.(
      value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)
  in
  let checkpoint_every_arg =
    let doc = "Save a checkpoint every $(docv)-th completed Stage I phase." in
    Arg.(value & opt int 1 & info [ "checkpoint-every" ] ~docv:"K" ~doc)
  in
  let checkpoint_exit_arg =
    let doc =
      "Testing hook: exit with status 3 right after the $(docv)-th \
       checkpoint save, simulating an interruption.  Rerun with the same \
       --checkpoint to resume."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "checkpoint-exit" ] ~docv:"N" ~doc)
  in
  let no_gt_arg =
    let doc =
      "Skip the centralized left-right planarity check printed as 'ground \
       truth' (it is diagnostic only; skipping it saves a full \
       centralized pass on multi-million-node inputs)."
    in
    Arg.(value & flag & info [ "no-ground-truth" ] ~doc)
  in
  let property_arg =
    let doc =
      "Property to test: $(b,planarity) (the paper's tester), \
       $(b,bipartite) (odd-cycle detection via per-part 2-coloring) or \
       $(b,cycle-free) (per-part excess-edge counting).  All three share \
       the Stage I partition harness and its accounting guarantees \
       (byte-identical stats across --domains, fast-forward and --mode)."
    in
    Arg.(value & opt string "planarity" & info [ "property" ] ~docv:"PROP" ~doc)
  in
  let heartbeat_arg =
    let doc =
      "Publish a live heartbeat/v1 status document to $(docv), atomically \
       replaced (tmp+rename) every --heartbeat-every charged rounds and/or \
       --heartbeat-secs wall-seconds, plus at every phase boundary.  Tail \
       it with $(b,planarmon attach).  Purely host-side: the verdict, \
       stats JSON, stable metrics and --trace stream are byte-identical \
       with or without it."
    in
    Arg.(
      value & opt (some string) None & info [ "heartbeat" ] ~docv:"FILE" ~doc)
  in
  let heartbeat_every_arg =
    let doc = "Heartbeat republication cadence in charged rounds." in
    Arg.(value & opt int 8192 & info [ "heartbeat-every" ] ~docv:"K" ~doc)
  in
  let heartbeat_secs_arg =
    let doc = "Heartbeat republication cadence in wall-clock seconds." in
    Arg.(value & opt float 1.0 & info [ "heartbeat-secs" ] ~docv:"SECS" ~doc)
  in
  let progress_arg =
    let doc =
      "Draw a single-line progress bar on stderr, driven by the heartbeat \
       callback (works with or without --heartbeat).  Auto-disabled when \
       stderr is not a tty or --log-json - would share the stream."
    in
    Arg.(value & flag & info [ "progress" ] ~doc)
  in
  let ledger_arg =
    let doc =
      "Append one runs.ledger/v1 JSONL provenance record (fingerprint, \
       config, verdict, deterministic stats digest, wall time, host) to \
       $(docv) when the run completes.  Summarize with $(b,planarmon \
       history)."
    in
    Arg.(value & opt (some string) None & info [ "ledger" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "test" ~doc:"Run a distributed property tester")
    Term.(
      const run $ graph_arg $ eps_arg $ seed_arg $ domains_arg
      $ stats_json_arg $ faults_arg $ trace_arg $ trace_capacity_arg
      $ no_ff_arg $ mode_arg
      $ checkpoint_arg $ checkpoint_every_arg $ checkpoint_exit_arg
      $ no_gt_arg $ property_arg $ heartbeat_arg $ heartbeat_every_arg
      $ heartbeat_secs_arg $ progress_arg $ ledger_arg $ log_level_arg
      $ log_json_arg)

(* --- partition -------------------------------------------------------- *)

let partition_cmd =
  let randomized =
    Arg.(value & flag & info [ "randomized" ] ~doc:"Use the Theorem 4 variant.")
  in
  let delta =
    Arg.(value & opt float 0.1 & info [ "delta" ] ~doc:"Confidence parameter.")
  in
  let run path eps seed randomized delta =
    let g = read_graph path in
    if randomized then begin
      let r = Partition.Random_partition.run g ~eps ~delta ~seed in
      Printf.printf
        "randomized partition: phases=%d cut=%d (target %.0f) rounds=%d\n"
        r.Partition.Random_partition.phases r.Partition.Random_partition.cut
        (eps *. float_of_int (Graph.n g))
        r.Partition.Random_partition.rounds
    end
    else begin
      let r = Partition.Stage1.run g ~eps in
      Printf.printf "deterministic partition (Stage I):\n";
      List.iter
        (fun (p : Partition.Stage1.phase_trace) ->
          Printf.printf
            "  phase %d: cut %d -> %d, parts=%d, max diameter=%d, depth=%d\n"
            p.Partition.Stage1.phase p.Partition.Stage1.cut_before
            p.Partition.Stage1.cut_after p.Partition.Stage1.parts
            p.Partition.Stage1.max_diameter p.Partition.Stage1.max_tree_depth)
        r.Partition.Stage1.phases;
      match r.Partition.Stage1.rejected with
      | [] ->
          Printf.printf "final cut=%d (target %.0f), rounds=%d, nominal=%d\n"
            (Partition.State.cut_edges r.Partition.Stage1.state)
            (eps *. float_of_int (Graph.m g) /. 2.0)
            r.Partition.Stage1.rounds r.Partition.Stage1.nominal_rounds
      | (node, reason) :: _ ->
          Printf.printf "REJECTED during partition: node %d: %s\n" node reason
    end
  in
  Cmd.v
    (Cmd.info "partition" ~doc:"Run the Stage I / Theorem 4 partition")
    Term.(const run $ graph_arg $ eps_arg $ seed_arg $ randomized $ delta)

(* --- spanner ----------------------------------------------------------- *)

let spanner_cmd =
  let run path eps seed =
    let g = read_graph path in
    let r = Tester.Spanner.build g ~eps ~seed in
    let stretch = Tester.Spanner.measured_stretch g r.Tester.Spanner.spanner in
    Printf.printf
      "spanner: %d edges (input %d, bound (1+eps)n = %.0f)\n\
       tree edges=%d cut edges=%d\nstretch: measured=%d bound=%d\n"
      (Graph.m r.Tester.Spanner.spanner)
      (Graph.m g)
      ((1.0 +. eps) *. float_of_int (Graph.n g))
      r.Tester.Spanner.tree_edges r.Tester.Spanner.cut_edges stretch
      r.Tester.Spanner.stretch_bound
  in
  Cmd.v
    (Cmd.info "spanner" ~doc:"Build the Corollary 17 spanner")
    Term.(const run $ graph_arg $ eps_arg $ seed_arg)

(* --- witness ------------------------------------------------------------ *)

let witness_cmd =
  let run path =
    let g = read_graph path in
    match Planarity.Kuratowski.find g with
    | None -> print_endline "planar: no Kuratowski witness exists"
    | Some w ->
        Printf.printf "non-planar: contains a subdivision of %s\n"
          (match w.Planarity.Kuratowski.kind with
          | Planarity.Kuratowski.K5 -> "K5"
          | Planarity.Kuratowski.K33 -> "K3,3");
        Printf.printf "branch vertices: %s\n"
          (String.concat " "
             (List.map string_of_int w.Planarity.Kuratowski.branch_vertices));
        Printf.printf "subdivision edges (%d):\n"
          (List.length w.Planarity.Kuratowski.edges);
        List.iter
          (fun (u, v) -> Printf.printf "  %d %d\n" u v)
          w.Planarity.Kuratowski.edges;
        Printf.printf "witness verifies: %b\n" (Planarity.Kuratowski.verify g w)
  in
  Cmd.v
    (Cmd.info "witness"
       ~doc:"Extract a Kuratowski (K5 / K3,3 subdivision) witness")
    Term.(const run $ graph_arg)

(* --- info -------------------------------------------------------------- *)

let info_cmd =
  let run path =
    let g = read_graph path in
    Printf.printf "n=%d m=%d max degree=%d connected=%b\n" (Graph.n g)
      (Graph.m g) (Graph.max_degree g) (Traversal.is_connected g);
    Printf.printf "planar (left-right test): %b\n" (Planarity.Lr.is_planar g);
    Printf.printf "distance to planarity: >= %d (Euler), <= %d (greedy)\n"
      (Planarity.Distance.euler_lower_bound g)
      (Planarity.Distance.greedy_upper_bound g);
    match Girth.girth_upto g 24 with
    | Some girth -> Printf.printf "girth: %d\n" girth
    | None -> Printf.printf "girth: > 24 (or acyclic)\n"
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Centralized diagnostics for a graph")
    Term.(const run $ graph_arg)

let () =
  let doc = "distributed property testing of planarity (PODC 2018)" in
  (* [n] is a single-character option, which cmdliner only accepts as
     [-n]; keep the documented [--n N] spelling working too. *)
  let argv = Array.map (fun a -> if a = "--n" then "-n" else a) Sys.argv in
  exit
    (Cmd.eval ~argv
       (Cmd.group (Cmd.info "planartest" ~doc)
          [ gen_cmd; test_cmd; partition_cmd; spanner_cmd; witness_cmd; info_cmd ]))
