(* Quickstart: test one planar and one far-from-planar graph with the
   distributed tester, and cross-check against the centralized left-right
   planarity test.

     dune exec examples/quickstart.exe *)

open Graphlib

let describe name g eps =
  let report = Tester.Planarity_tester.run g ~eps ~seed:42 in
  let verdict =
    match report.Tester.Planarity_tester.verdict with
    | Tester.Planarity_tester.Accept -> "every node accepted"
    | Tester.Planarity_tester.Reject rejecting ->
        Printf.sprintf "%d node(s) rejected" (List.length rejecting)
    | Tester.Planarity_tester.Degraded msg ->
        (* Only reachable with a --faults-style policy; none is used here. *)
        Printf.sprintf "degraded: %s" msg
  in
  Printf.printf "%s: n=%d, m=%d, eps=%.2f\n" name (Graph.n g) (Graph.m g) eps;
  Printf.printf "  distributed tester : %s\n" verdict;
  Printf.printf "  simulated rounds   : %d (paper schedule: %d)\n"
    report.Tester.Planarity_tester.rounds
    report.Tester.Planarity_tester.nominal_rounds;
  Printf.printf "  centralized check  : %s\n\n"
    (if Planarity.Lr.is_planar g then "planar" else "not planar")

let () =
  let rng = Random.State.make [| 7 |] in
  (* A random planar triangulation: the tester must accept at every node
     (one-sided error). *)
  describe "Apollonian triangulation" (Generators.apollonian rng 250) 0.30;
  (* The same triangulation plus enough random chords to be certifiably
     0.2-far from planar: some node must reject (w.h.p.). *)
  describe "triangulation + chords"
    (Generators.far_from_planar rng ~n:250 ~eps:0.20)
    0.15;
  (* A 16x16 grid — planar, high diameter: note the round count stays
     polylogarithmic in n, not linear in the diameter. *)
  describe "16x16 grid" (Generators.grid 16 16) 0.30
