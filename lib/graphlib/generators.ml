let path n =
  if n < 1 then invalid_arg "Generators.path";
  Graph.make ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Generators.cycle";
  Graph.make ~n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let star n =
  if n < 1 then invalid_arg "Generators.star";
  Graph.make ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let complete n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.make ~n !edges

let complete_bipartite a b =
  let edges = ref [] in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.make ~n:(a + b) !edges

let grid rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Generators.grid";
  let id i j = (i * cols) + j in
  let edges = ref [] in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if j + 1 < cols then edges := (id i j, id i (j + 1)) :: !edges;
      if i + 1 < rows then edges := (id i j, id (i + 1) j) :: !edges
    done
  done;
  Graph.make ~n:(rows * cols) !edges

let grid_dims ?(min_side = 2) n =
  if min_side < 1 then invalid_arg "Generators.grid_dims: min_side < 1";
  let best = ref None in
  let r = ref (int_of_float (sqrt (float_of_int n))) in
  while !best = None && !r >= min_side do
    if n mod !r = 0 then best := Some (!r, n / !r);
    decr r
  done;
  match !best with
  | Some rc -> rc
  | None ->
      invalid_arg
        (Printf.sprintf
           "Generators.grid_dims: %d is not a product r * c with r, c >= %d"
           n min_side)

let torus rows cols =
  if rows < 3 || cols < 3 then invalid_arg "Generators.torus";
  let id i j = (i * cols) + j in
  let edges = ref [] in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      edges := (id i j, id i ((j + 1) mod cols)) :: !edges;
      edges := (id i j, id ((i + 1) mod rows) j) :: !edges
    done
  done;
  Graph.of_edges_dedup ~n:(rows * cols) !edges

let hypercube d =
  if d < 0 then invalid_arg "Generators.hypercube";
  let n = 1 lsl d in
  let edges = ref [] in
  for v = 0 to n - 1 do
    for b = 0 to d - 1 do
      let u = v lxor (1 lsl b) in
      if u > v then edges := (v, u) :: !edges
    done
  done;
  Graph.make ~n !edges

let petersen () =
  let outer = List.init 5 (fun i -> (i, (i + 1) mod 5)) in
  let spokes = List.init 5 (fun i -> (i, i + 5)) in
  let inner = List.init 5 (fun i -> (i + 5, ((i + 2) mod 5) + 5)) in
  Graph.make ~n:10 (outer @ spokes @ inner)

let binary_tree n =
  if n < 1 then invalid_arg "Generators.binary_tree";
  Graph.make ~n (List.init (n - 1) (fun i -> ((i + 1 - 1) / 2, i + 1)))

let random_tree rng n =
  if n < 1 then invalid_arg "Generators.random_tree";
  Graph.make ~n
    (List.init (n - 1) (fun i ->
         let v = i + 1 in
         (Random.State.int rng v, v)))

let apollonian rng n =
  if n < 3 then invalid_arg "Generators.apollonian";
  let edges = ref [ (0, 1); (0, 2); (1, 2) ] in
  (* Faces are stored in a growable array; subdividing face f into three
     replaces slot f and appends two. *)
  let faces = ref [| (0, 1, 2) |] in
  let nfaces = ref 1 in
  let push f =
    let cap = Array.length !faces in
    if !nfaces = cap then begin
      let bigger = Array.make (2 * cap) (0, 0, 0) in
      Array.blit !faces 0 bigger 0 cap;
      faces := bigger
    end;
    !faces.(!nfaces) <- f;
    incr nfaces
  in
  for v = 3 to n - 1 do
    let i = Random.State.int rng !nfaces in
    let a, b, c = !faces.(i) in
    edges := (a, v) :: (b, v) :: (c, v) :: !edges;
    !faces.(i) <- (a, b, v);
    push (a, c, v);
    push (b, c, v)
  done;
  Graph.make ~n !edges

let random_planar rng ~n ~m =
  let g = apollonian rng n in
  let total = Graph.m g in
  if m > total then invalid_arg "Generators.random_planar: m > 3n - 6";
  let drop = total - m in
  (* Choose [drop] distinct edge ids to delete. *)
  let ids = Array.init total (fun i -> i) in
  for i = total - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = ids.(i) in
    ids.(i) <- ids.(j);
    ids.(j) <- t
  done;
  let doomed = Hashtbl.create (2 * drop) in
  for i = 0 to drop - 1 do
    Hashtbl.add doomed ids.(i) ()
  done;
  fst (Graph.remove_edges g (Hashtbl.mem doomed))

let gnp rng n p =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < p then edges := (u, v) :: !edges
    done
  done;
  Graph.make ~n !edges

let random_bipartite_planar rng n =
  let side = max 2 (int_of_float (sqrt (float_of_int n))) in
  let g = grid side side in
  (* Remove a random 15% of the edges, but keep the graph connected by only
     committing deletions that do not disconnect it (checked via the
     spanning forest of the remainder). *)
  let m = Graph.m g in
  let keep = Array.make m true in
  let attempts = m * 15 / 100 in
  let g_ref = ref g in
  for _ = 1 to attempts do
    let e = Random.State.int rng m in
    if keep.(e) then begin
      keep.(e) <- false;
      let candidate, _ = Graph.remove_edges g (fun e' -> not keep.(e')) in
      if Traversal.is_connected candidate then g_ref := candidate
      else keep.(e) <- true
    end
  done;
  !g_ref

let random_non_edge rng g =
  let n = Graph.n g in
  if n < 2 then invalid_arg "random_non_edge: too few vertices";
  let rec go fuel =
    if fuel = 0 then raise Not_found
    else
      let u = Random.State.int rng n and v = Random.State.int rng n in
      if u <> v && not (Graph.has_edge g u v) then
        (min u v, max u v)
      else go (fuel - 1)
  in
  go 10_000

let planar_plus_chords rng ~base ~extra =
  let g = ref base in
  for _ = 1 to extra do
    let u, v = random_non_edge rng !g in
    g := Graph.add_edges !g [ (u, v) ]
  done;
  !g

let far_from_planar rng ~n ~eps =
  if not (eps > 0.0 && eps < 1.0) then invalid_arg "Generators.far_from_planar";
  let base = apollonian rng n in
  let m0 = float_of_int (Graph.m base) in
  let extra = 1 + int_of_float (ceil (eps *. m0 /. (1.0 -. eps))) in
  planar_plus_chords rng ~base ~extra

let k5_necklace k =
  if k < 1 then invalid_arg "Generators.k5_necklace";
  let copies = ref (complete 5) in
  for _ = 2 to k do
    copies := Graph.disjoint_union !copies (complete 5)
  done;
  let g = !copies in
  let links =
    List.init k (fun i ->
        let a = (i * 5) + 4 and b = ((i + 1) mod k) * 5 in
        (min a b, max a b))
  in
  let links = List.sort_uniq compare links in
  let links = List.filter (fun (a, b) -> not (Graph.has_edge g a b)) links in
  Graph.add_edges g links

let connected_copies g k =
  if k < 1 then invalid_arg "Generators.connected_copies";
  let size = Graph.n g in
  let acc = ref g in
  for i = 2 to k do
    acc := Graph.disjoint_union !acc g;
    let prev_last = ((i - 1) * size) - 1 in
    let next_first = (i - 1) * size in
    acc := Graph.add_edges !acc [ (prev_last, next_first) ]
  done;
  !acc

let relabel rng g =
  let n = Graph.n g in
  let perm = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  Graph.make ~n
    (Graph.fold_edges (fun acc _ u v -> (perm.(u), perm.(v)) :: acc) [] g)
