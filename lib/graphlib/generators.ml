(* Every family streams its edges straight into a {!Graph.Builder} —
   no intermediate boxed edge list — so generating a 10^6-node graph
   allocates only the flat CSR arrays plus O(1) scratch.

   Edge-id compatibility: the previous implementations accumulated
   edges by *prepending* to a list, so the edge-id order was the
   reverse of discovery order.  Fault schedules and traces are keyed by
   edge id, so that order is part of observable behaviour; the loops
   below therefore emit in the same final order (usually by iterating
   in reverse), while every [Random.State] draw still happens in the
   original forward order. *)

let path n =
  if n < 1 then invalid_arg "Generators.path";
  let b = Graph.Builder.create ~hint:(max 1 (n - 1)) ~n () in
  for i = 0 to n - 2 do
    Graph.Builder.add b i (i + 1)
  done;
  Graph.Builder.finish b

let cycle n =
  if n < 3 then invalid_arg "Generators.cycle";
  let b = Graph.Builder.create ~hint:n ~n () in
  Graph.Builder.add b (n - 1) 0;
  for i = 0 to n - 2 do
    Graph.Builder.add b i (i + 1)
  done;
  Graph.Builder.finish b

let star n =
  if n < 1 then invalid_arg "Generators.star";
  let b = Graph.Builder.create ~hint:(max 1 (n - 1)) ~n () in
  for i = 1 to n - 1 do
    Graph.Builder.add b 0 i
  done;
  Graph.Builder.finish b

let complete n =
  let b = Graph.Builder.create ~hint:(n * (n - 1) / 2) ~n () in
  for u = n - 1 downto 0 do
    for v = n - 1 downto u + 1 do
      Graph.Builder.add b u v
    done
  done;
  Graph.Builder.finish b

let complete_bipartite a b_ =
  let n = a + b_ in
  let b = Graph.Builder.create ~hint:(a * b_) ~n () in
  for u = a - 1 downto 0 do
    for v = a + b_ - 1 downto a do
      Graph.Builder.add b u v
    done
  done;
  Graph.Builder.finish b

let grid rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Generators.grid";
  let n = rows * cols in
  let id i j = (i * cols) + j in
  let b = Graph.Builder.create ~hint:(2 * n) ~n () in
  for i = rows - 1 downto 0 do
    for j = cols - 1 downto 0 do
      if i + 1 < rows then Graph.Builder.add b (id i j) (id (i + 1) j);
      if j + 1 < cols then Graph.Builder.add b (id i j) (id i (j + 1))
    done
  done;
  Graph.Builder.finish b

let grid_dims ?(min_side = 2) n =
  if min_side < 1 then invalid_arg "Generators.grid_dims: min_side < 1";
  let best = ref None in
  let r = ref (int_of_float (sqrt (float_of_int n))) in
  while !best = None && !r >= min_side do
    if n mod !r = 0 then best := Some (!r, n / !r);
    decr r
  done;
  match !best with
  | Some rc -> rc
  | None ->
      invalid_arg
        (Printf.sprintf
           "Generators.grid_dims: %d is not a product r * c with r, c >= %d"
           n min_side)

let torus rows cols =
  if rows < 3 || cols < 3 then invalid_arg "Generators.torus";
  let n = rows * cols in
  let id i j = (i * cols) + j in
  let b = Graph.Builder.create ~hint:(2 * n) ~n () in
  for i = rows - 1 downto 0 do
    for j = cols - 1 downto 0 do
      Graph.Builder.add b (id i j) (id ((i + 1) mod rows) j);
      Graph.Builder.add b (id i j) (id i ((j + 1) mod cols))
    done
  done;
  Graph.Builder.finish_dedup b

let hypercube d =
  if d < 0 then invalid_arg "Generators.hypercube";
  let n = 1 lsl d in
  let b = Graph.Builder.create ~hint:(n * d / 2) ~n () in
  for v = n - 1 downto 0 do
    for bit = d - 1 downto 0 do
      let u = v lxor (1 lsl bit) in
      if u > v then Graph.Builder.add b v u
    done
  done;
  Graph.Builder.finish b

let petersen () =
  let outer = List.init 5 (fun i -> (i, (i + 1) mod 5)) in
  let spokes = List.init 5 (fun i -> (i, i + 5)) in
  let inner = List.init 5 (fun i -> (i + 5, ((i + 2) mod 5) + 5)) in
  Graph.make ~n:10 (outer @ spokes @ inner)

let binary_tree n =
  if n < 1 then invalid_arg "Generators.binary_tree";
  let b = Graph.Builder.create ~hint:(max 1 (n - 1)) ~n () in
  for v = 1 to n - 1 do
    Graph.Builder.add b ((v - 1) / 2) v
  done;
  Graph.Builder.finish b

let random_tree rng n =
  if n < 1 then invalid_arg "Generators.random_tree";
  let b = Graph.Builder.create ~hint:(max 1 (n - 1)) ~n () in
  for v = 1 to n - 1 do
    Graph.Builder.add b (Random.State.int rng v) v
  done;
  Graph.Builder.finish b

let apollonian rng n =
  if n < 3 then invalid_arg "Generators.apollonian";
  (* Faces live in a flat growable int array, three slots per face;
     subdividing face f into three replaces slot f and appends two.
     The (a, b, c) corner triple attached to each new vertex is kept in
     flat per-vertex arrays so the edges can be replayed in reverse
     discovery order afterwards. *)
  let faces = ref (Array.make 24 0) in
  let nfaces = ref 1 in
  !faces.(0) <- 0;
  !faces.(1) <- 1;
  !faces.(2) <- 2;
  let push a b c =
    let cap = Array.length !faces in
    if 3 * !nfaces = cap then begin
      let bigger = Array.make (2 * cap) 0 in
      Array.blit !faces 0 bigger 0 cap;
      faces := bigger
    end;
    let base = 3 * !nfaces in
    !faces.(base) <- a;
    !faces.(base + 1) <- b;
    !faces.(base + 2) <- c;
    incr nfaces
  in
  let ca = Array.make n 0 and cb = Array.make n 0 and cc = Array.make n 0 in
  for v = 3 to n - 1 do
    let i = Random.State.int rng !nfaces in
    let base = 3 * i in
    let a = !faces.(base) and b = !faces.(base + 1) and c = !faces.(base + 2) in
    ca.(v) <- a;
    cb.(v) <- b;
    cc.(v) <- c;
    !faces.(base + 2) <- v;
    push a c v;
    push b c v
  done;
  let b = Graph.Builder.create ~hint:((3 * n) - 6) ~n () in
  for v = n - 1 downto 3 do
    Graph.Builder.add b ca.(v) v;
    Graph.Builder.add b cb.(v) v;
    Graph.Builder.add b cc.(v) v
  done;
  Graph.Builder.add b 0 1;
  Graph.Builder.add b 0 2;
  Graph.Builder.add b 1 2;
  Graph.Builder.finish b

let random_planar rng ~n ~m =
  let g = apollonian rng n in
  let total = Graph.m g in
  if m > total then invalid_arg "Generators.random_planar: m > 3n - 6";
  let drop = total - m in
  (* Choose [drop] distinct edge ids to delete. *)
  let ids = Array.init total (fun i -> i) in
  for i = total - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = ids.(i) in
    ids.(i) <- ids.(j);
    ids.(j) <- t
  done;
  let doomed = Array.make (max 1 total) false in
  for i = 0 to drop - 1 do
    doomed.(ids.(i)) <- true
  done;
  fst (Graph.remove_edges g (fun e -> doomed.(e)))

let gnp rng n p =
  (* The rng must be consulted in forward (u, v) order but the edges
     must land in reverse order; buffer the hits flat and replay. *)
  let hits = ref (Array.make 16 0) in
  let len = ref 0 in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < p then begin
        if 2 * !len = Array.length !hits then begin
          let bigger = Array.make (2 * Array.length !hits) 0 in
          Array.blit !hits 0 bigger 0 (2 * !len);
          hits := bigger
        end;
        !hits.(2 * !len) <- u;
        !hits.((2 * !len) + 1) <- v;
        incr len
      end
    done
  done;
  let b = Graph.Builder.create ~hint:(max 1 !len) ~n () in
  for i = !len - 1 downto 0 do
    Graph.Builder.add b !hits.(2 * i) !hits.((2 * i) + 1)
  done;
  Graph.Builder.finish b

let random_bipartite_planar rng n =
  let side = max 2 (int_of_float (sqrt (float_of_int n))) in
  let g = grid side side in
  (* Remove a random 15% of the edges, but keep the graph connected by only
     committing deletions that do not disconnect it (checked via the
     spanning forest of the remainder). *)
  let m = Graph.m g in
  let keep = Array.make m true in
  let attempts = m * 15 / 100 in
  let g_ref = ref g in
  for _ = 1 to attempts do
    let e = Random.State.int rng m in
    if keep.(e) then begin
      keep.(e) <- false;
      let candidate, _ = Graph.remove_edges g (fun e' -> not keep.(e')) in
      if Traversal.is_connected candidate then g_ref := candidate
      else keep.(e) <- true
    end
  done;
  !g_ref

let planar_plus_chords rng ~base ~extra =
  (* One batched rebuild instead of a full O(m) rebuild per chord.  The
     rejection sampling consults the base graph plus the chords chosen
     so far, so the rng stream — and therefore the resulting edge set —
     is identical to adding the chords one at a time. *)
  let n = Graph.n base in
  if extra > 0 && n < 2 then invalid_arg "random_non_edge: too few vertices";
  let chosen = Hashtbl.create (2 * extra) in
  let chords = ref [] in
  for _ = 1 to extra do
    let rec go fuel =
      if fuel = 0 then raise Not_found
      else
        let u = Random.State.int rng n and v = Random.State.int rng n in
        if
          u <> v
          && (not (Graph.has_edge base u v))
          && not (Hashtbl.mem chosen (min u v, max u v))
        then (min u v, max u v)
        else go (fuel - 1)
    in
    let p = go 10_000 in
    Hashtbl.add chosen p ();
    chords := p :: !chords
  done;
  Graph.add_edges base (List.rev !chords)

let far_from_planar rng ~n ~eps =
  if not (eps > 0.0 && eps < 1.0) then invalid_arg "Generators.far_from_planar";
  let base = apollonian rng n in
  let m0 = float_of_int (Graph.m base) in
  let extra = 1 + int_of_float (ceil (eps *. m0 /. (1.0 -. eps))) in
  planar_plus_chords rng ~base ~extra

let k5_necklace k =
  if k < 1 then invalid_arg "Generators.k5_necklace";
  let copies = ref (complete 5) in
  for _ = 2 to k do
    copies := Graph.disjoint_union !copies (complete 5)
  done;
  let g = !copies in
  let links =
    List.init k (fun i ->
        let a = (i * 5) + 4 and b = ((i + 1) mod k) * 5 in
        (min a b, max a b))
  in
  let links = List.sort_uniq compare links in
  let links = List.filter (fun (a, b) -> not (Graph.has_edge g a b)) links in
  Graph.add_edges g links

let connected_copies g k =
  if k < 1 then invalid_arg "Generators.connected_copies";
  let size = Graph.n g in
  let acc = ref g in
  for i = 2 to k do
    acc := Graph.disjoint_union !acc g;
    let prev_last = ((i - 1) * size) - 1 in
    let next_first = (i - 1) * size in
    acc := Graph.add_edges !acc [ (prev_last, next_first) ]
  done;
  !acc

let odd_cycle_planted rng ~n ~k =
  if n < 9 then invalid_arg "Generators.odd_cycle_planted: n < 9";
  let side = max 3 (int_of_float (sqrt (float_of_int n))) in
  let base = grid side side in
  let id i j = (i * side) + j in
  (* Unit squares whose top-left corner has even coordinates are
     pairwise vertex-disjoint, so the k planted diagonals certify k
     vertex-disjoint triangles: every one needs its own edge deletion,
     putting the graph at bipartite distance >= k.  Each diagonal lies
     inside a grid face, so the graph stays planar. *)
  let squares = ref [] in
  let i = ref 0 in
  while !i + 1 < side do
    let j = ref 0 in
    while !j + 1 < side do
      squares := (!i, !j) :: !squares;
      j := !j + 2
    done;
    i := !i + 2
  done;
  let squares = Array.of_list !squares in
  let avail = Array.length squares in
  if k < 1 || k > avail then
    invalid_arg
      (Printf.sprintf
         "Generators.odd_cycle_planted: k = %d not in [1, %d] for side %d" k
         avail side);
  for idx = 0 to k - 1 do
    let j = idx + Random.State.int rng (avail - idx) in
    let t = squares.(idx) in
    squares.(idx) <- squares.(j);
    squares.(j) <- t
  done;
  let diags =
    List.init k (fun t ->
        let i, j = squares.(t) in
        (id i j, id (i + 1) (j + 1)))
  in
  Graph.add_edges base (List.sort compare diags)

let forest_plus_edges rng ~n ~k =
  if n < 2 then invalid_arg "Generators.forest_plus_edges: n < 2";
  (* A spanning tree has zero excess, so the k distinct extra non-edges
     put the excess (= deletions to cycle-freeness) at exactly k. *)
  planar_plus_chords rng ~base:(random_tree rng n) ~extra:k

let forest_close rng n =
  if n < 1 then invalid_arg "Generators.forest_close";
  (* Random-attachment forest: each vertex joins a random earlier vertex
     with probability 0.9, else starts a new component.  Cycle-free by
     construction; possibly disconnected, which the testers handle. *)
  let b = Graph.Builder.create ~hint:(max 1 (n - 1)) ~n () in
  for v = 1 to n - 1 do
    if Random.State.float rng 1.0 < 0.9 then
      Graph.Builder.add b (Random.State.int rng v) v
  done;
  Graph.Builder.finish b

let relabel rng g =
  let n = Graph.n g in
  let perm = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  let b = Graph.Builder.create ~hint:(Graph.m g) ~n () in
  for e = Graph.m g - 1 downto 0 do
    let u, v = Graph.edge g e in
    Graph.Builder.add b perm.(u) perm.(v)
  done;
  Graph.Builder.finish b

let bipartite_perturbed rng n =
  (* Property-holding counterpart of [odd_cycle_planted]: a connected
     planar bipartite graph (perturbed grid) under a random relabeling,
     so id-based tie-breaking in the testers sees no grid structure. *)
  relabel rng (random_bipartite_planar rng n)
