(** Static simple undirected graphs, stored flat (CSR).

    Vertices are integers [0 .. n-1].  Edges are undirected, stored once with
    endpoints [(u, v)] such that [u < v], and carry a stable edge identifier
    [0 .. m-1].  The structure is immutable; modification functions return a
    new graph.

    Internally the graph is four unboxed int arrays (offsets, packed
    neighbor/edge-id arcs, and the two endpoint columns): 8 bytes per vertex
    plus 32 bytes per edge, independent of degree distribution — see
    {!storage_bytes}.  Vertex and edge counts are limited to [2^31]. *)

type t

(** [make ~n edges] builds a graph on [n] vertices from the given endpoint
    pairs.  Self-loops and duplicate edges (in either orientation) raise
    [Invalid_argument], as does an endpoint outside [0 .. n-1]. *)
val make : n:int -> (int * int) list -> t

(** [of_edges_dedup ~n edges] is [make], except that self-loops are dropped
    and duplicate edges are kept once (the first occurrence keeps its place
    in the edge-id order). *)
val of_edges_dedup : n:int -> (int * int) list -> t

(** Streaming construction: feed endpoints one at a time into flat growable
    storage and build the CSR arrays in one pass at the end, never holding a
    boxed edge list.  Edge ids are assigned in [add] order (after dropping,
    for {!Builder.finish_dedup}, self-loops and duplicate repeats), exactly
    as if the same list had been passed to {!make} / {!of_edges_dedup}. *)
module Builder : sig
  type graph := t
  type t

  (** [create ?hint ~n ()] starts a builder for a graph on [n] vertices;
      [hint] pre-sizes the edge storage. *)
  val create : ?hint:int -> n:int -> unit -> t

  (** [add b u v] appends an edge.  Endpoints outside [0 .. n-1] raise
      [Invalid_argument] immediately; self-loops are recorded and
      resolved by the finisher (error for {!finish}, dropped for
      {!finish_dedup}). *)
  val add : t -> int -> int -> unit

  (** Number of (non-self-loop) edges added so far. *)
  val count : t -> int

  (** {!make} semantics: self-loops and duplicates raise. *)
  val finish : t -> graph

  (** {!of_edges_dedup} semantics: self-loops dropped, duplicates kept
      once. *)
  val finish_dedup : t -> graph
end

(** Number of vertices. *)
val n : t -> int

(** Number of edges. *)
val m : t -> int

(** [neighbors g v] is the sorted array of neighbors of [v], freshly
    allocated on every call.  Hot paths should use {!iter_incident} /
    {!nbr} instead. *)
val neighbors : t -> int -> int array

(** [incident g v] lists [(u, e)] for every edge [e] joining [v] to [u],
    sorted by neighbor id.  Freshly allocated on every call; hot paths
    should use {!iter_incident} / {!nbr} / {!incident_eid}. *)
val incident : t -> int -> (int * int) array

(** Degree of a vertex. *)
val degree : t -> int -> int

(** [nbr g v i] is the neighbor at port [i] of [v] — the [i]-th entry,
    [0 <= i < degree g v], of the neighbor-sorted incidence order.
    Allocation-free; bounds are not checked. *)
val nbr : t -> int -> int -> int

(** [incident_eid g v i] is the edge id at port [i] of [v] (the edge
    joining [v] to [nbr g v i]).  Allocation-free; bounds unchecked. *)
val incident_eid : t -> int -> int -> int

(** [iter_incident g v f] calls [f u e] for every incident edge [e]
    joining [v] to [u], in neighbor-sorted (port) order, without
    allocating. *)
val iter_incident : t -> int -> (int -> int -> unit) -> unit

(** Maximum degree over all vertices ([0] for an empty graph). *)
val max_degree : t -> int

(** [edge g e] is the endpoint pair [(u, v)], [u < v], of edge id [e]. *)
val edge : t -> int -> int * int

(** [endpoints g] is the array of all endpoint pairs indexed by edge id,
    freshly allocated on every call.  Prefer {!edge} / {!iter_edges}. *)
val endpoints : t -> (int * int) array

(** [has_edge g u v] tests adjacency in [O(log (degree u))]. *)
val has_edge : t -> int -> int -> bool

(** [find_edge g u v] is the edge id joining [u] and [v].
    @raise Not_found if they are not adjacent. *)
val find_edge : t -> int -> int -> int

(** [other_endpoint g e v] is the endpoint of [e] that is not [v].
    Raises [Invalid_argument] if [v] is not an endpoint of [e]. *)
val other_endpoint : t -> int -> int -> int

val iter_edges : (int -> int -> int -> unit) -> t -> unit
(** [iter_edges f g] calls [f e u v] for every edge [e = (u, v)], [u < v]. *)

val fold_edges : ('a -> int -> int -> int -> 'a) -> 'a -> t -> 'a
(** [fold_edges f init g] folds [f acc e u v] over all edges. *)

(** [add_edges g edges] returns a graph with the extra edges appended.  Edge
    ids of existing edges are preserved; duplicates raise
    [Invalid_argument]. *)
val add_edges : t -> (int * int) list -> t

(** [remove_edges g pred] keeps only edges [e] with [pred e = false].  Edge
    ids are renumbered; the second component maps old ids to new ids (or
    [-1] when removed). *)
val remove_edges : t -> (int -> bool) -> t * int array

(** [induced g vs] is the subgraph induced by the vertex list [vs] (which
    must not contain duplicates), together with the map from new vertex ids
    to original ids. *)
val induced : t -> int list -> t * int array

(** [disjoint_union g1 g2] places [g2]'s vertices after [g1]'s. *)
val disjoint_union : t -> t -> t

(** Pretty-printer showing [n], [m] and the edge list (for small graphs). *)
val pp : Format.formatter -> t -> unit

(** Structural equality: same [n] and same edge set. *)
val equal : t -> t -> bool

(** [storage_bytes g] is the analytic resident cost [(node_bytes,
    edge_bytes)] of the graph's own arrays: [8 * (n + 1)] bytes of
    vertex-indexed storage and [32 * m] bytes of edge-indexed storage
    (two packed arcs plus the two endpoint columns).  Deterministic — a
    pure function of [n] and [m] — so it is safe to gate in CI. *)
val storage_bytes : t -> int * int

(** Order-sensitive structural identity: an FNV-1a hash of [(n, m)] and
    the endpoint pairs in edge-id order.  Two graphs compare equal under
    [fingerprint] iff they have the same vertices, the same edges, and
    the same edge-id assignment — the property checkpoint resume and the
    streaming-vs-materialized generator tests need. *)
val fingerprint : t -> int64
