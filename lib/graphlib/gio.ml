(* Plain-text edge lists, streamed in both directions: reading feeds
   each parsed line straight into a {!Graph.Builder} and writing emits
   line by line, so neither direction ever materializes a boxed edge
   list or a whole-file string (a 10^6-edge file is ~25 MB of text). *)

let to_buffer buf g =
  Buffer.add_string buf (Printf.sprintf "%d %d\n" (Graph.n g) (Graph.m g));
  Graph.iter_edges
    (fun _ u v -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v))
    g

let to_string g =
  let buf = Buffer.create 1024 in
  to_buffer buf g;
  Buffer.contents buf

let to_channel oc g =
  Printf.fprintf oc "%d %d\n" (Graph.n g) (Graph.m g);
  Graph.iter_edges (fun _ u v -> Printf.fprintf oc "%d %d\n" u v) g

(* Incremental reader: hand it lines one at a time, then [finish]. *)
type reader = {
  mutable header : (int * int) option;
  mutable builder : Graph.Builder.t option;
  mutable edges_seen : int;
}

let reader_create () = { header = None; builder = None; edges_seen = 0 }

let parse_pair line =
  match String.split_on_char ' ' (String.trim line) with
  | [ a; b ] -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some a, Some b -> (a, b)
      | _ -> invalid_arg ("Gio: bad line: " ^ line))
  | _ -> invalid_arg ("Gio: bad line: " ^ line)

let reader_line r line =
  let trimmed = String.trim line in
  if trimmed = "" || trimmed.[0] = '#' then ()
  else
    match r.header with
    | None ->
        let n, m = parse_pair trimmed in
        r.header <- Some (n, m);
        (* Clamp the pre-size so a hostile header cannot force a huge
           allocation before the count check has a chance to fire. *)
        r.builder <-
          Some (Graph.Builder.create ~hint:(max 1 (min m 1_000_000)) ~n ())
    | Some _ ->
        let u, v = parse_pair trimmed in
        let b = Option.get r.builder in
        r.edges_seen <- r.edges_seen + 1;
        Graph.Builder.add b u v

let reader_finish r =
  match r.header with
  | None -> invalid_arg "Gio: empty input"
  | Some (_, m) ->
      if r.edges_seen <> m then
        invalid_arg
          (Printf.sprintf "Gio: header says %d edges, found %d" m r.edges_seen);
      Graph.Builder.finish (Option.get r.builder)

let of_string s =
  let r = reader_create () in
  List.iter (reader_line r) (String.split_on_char '\n' s);
  reader_finish r

let of_channel ic =
  let r = reader_create () in
  (try
     while true do
       reader_line r (input_line ic)
     done
   with End_of_file -> ());
  reader_finish r

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_channel ic)

let save path g =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc g)
