(** Synthetic graph families used by the examples, tests and benchmark
    harness.  Random generators take an explicit [Random.State.t] so every
    experiment is reproducible from a seed. *)

val path : int -> Graph.t
(** Path on [n >= 1] vertices. *)

val cycle : int -> Graph.t
(** Cycle on [n >= 3] vertices. *)

val star : int -> Graph.t
(** Star: center [0] joined to [n - 1] leaves. *)

val complete : int -> Graph.t
(** Complete graph [K_n]. *)

val complete_bipartite : int -> int -> Graph.t
(** [K_{a,b}] with sides [0..a-1] and [a..a+b-1]. *)

val grid : int -> int -> Graph.t
(** [rows x cols] planar grid; vertex [(i, j)] is [i * cols + j]. *)

val grid_dims : ?min_side:int -> int -> int * int
(** [grid_dims ?min_side n] factors [n] as [(rows, cols)] with
    [min_side <= rows <= cols] (default [min_side = 2]) and [rows] as
    close to [sqrt n] as possible, so [grid rows cols] (or
    [torus rows cols] with [~min_side:3]) has exactly [n] vertices.
    Raises [Invalid_argument] when no such factorization exists (e.g.
    [n] prime). *)

val torus : int -> int -> Graph.t
(** Toroidal grid (non-planar for [rows, cols >= 3]); requires
    [rows >= 3] and [cols >= 3] so wrap-around edges are simple. *)

val hypercube : int -> Graph.t
(** [d]-dimensional hypercube on [2^d] vertices. *)

val petersen : unit -> Graph.t
(** The Petersen graph (non-planar, girth 5). *)

val binary_tree : int -> Graph.t
(** Complete binary tree shape on [n] vertices (heap numbering). *)

val random_tree : Random.State.t -> int -> Graph.t
(** Uniform random attachment tree on [n] vertices. *)

val apollonian : Random.State.t -> int -> Graph.t
(** Random Apollonian network on [n >= 3] vertices: a maximal planar graph
    ([m = 3n - 6]) grown by repeated random face subdivision. *)

val random_planar : Random.State.t -> n:int -> m:int -> Graph.t
(** Random planar graph: an Apollonian network on [n] vertices with random
    edges deleted down to [m] edges (requires [m <= 3n - 6]). *)

val gnp : Random.State.t -> int -> float -> Graph.t
(** Erdős–Rényi [G(n, p)]. *)

val random_bipartite_planar : Random.State.t -> int -> Graph.t
(** A random planar bipartite graph: the square grid with a random subset of
    edges removed (stays bipartite and planar, may be disconnected edges
    trimmed to keep it connected). *)

(** Planar graph plus [extra] random chords.  When the base is a maximal
    planar graph, the Euler formula certifies that at least [extra] edges
    must be removed to restore planarity. *)
val planar_plus_chords : Random.State.t -> base:Graph.t -> extra:int -> Graph.t

(** [far_from_planar rng ~n ~eps] is a graph certified (via the Euler bound)
    to be at least [eps]-far from planar: an Apollonian triangulation plus
    [ceil (eps * m0 / (1 - eps)) + 1] random chords. *)
val far_from_planar : Random.State.t -> n:int -> eps:float -> Graph.t

val k5_necklace : int -> Graph.t
(** [k] disjoint copies of [K_5] strung together in a cycle by single edges:
    connected, and every copy must lose an edge for planarity. *)

val connected_copies : Graph.t -> int -> Graph.t
(** [k] disjoint copies of a connected graph joined in a path by one edge
    between consecutive copies (vertex 0 of copy [i+1] to the last vertex of
    copy [i]).  Preserves planarity. *)

val relabel : Random.State.t -> Graph.t -> Graph.t
(** Random permutation of vertex ids (to de-bias id-based tie-breaking). *)
