(** Synthetic graph families used by the examples, tests and benchmark
    harness.  Random generators take an explicit [Random.State.t] so every
    experiment is reproducible from a seed. *)

val path : int -> Graph.t
(** Path on [n >= 1] vertices. *)

val cycle : int -> Graph.t
(** Cycle on [n >= 3] vertices. *)

val star : int -> Graph.t
(** Star: center [0] joined to [n - 1] leaves. *)

val complete : int -> Graph.t
(** Complete graph [K_n]. *)

val complete_bipartite : int -> int -> Graph.t
(** [K_{a,b}] with sides [0..a-1] and [a..a+b-1]. *)

val grid : int -> int -> Graph.t
(** [rows x cols] planar grid; vertex [(i, j)] is [i * cols + j]. *)

val grid_dims : ?min_side:int -> int -> int * int
(** [grid_dims ?min_side n] factors [n] as [(rows, cols)] with
    [min_side <= rows <= cols] (default [min_side = 2]) and [rows] as
    close to [sqrt n] as possible, so [grid rows cols] (or
    [torus rows cols] with [~min_side:3]) has exactly [n] vertices.
    Raises [Invalid_argument] when no such factorization exists (e.g.
    [n] prime). *)

val torus : int -> int -> Graph.t
(** Toroidal grid (non-planar for [rows, cols >= 3]); requires
    [rows >= 3] and [cols >= 3] so wrap-around edges are simple. *)

val hypercube : int -> Graph.t
(** [d]-dimensional hypercube on [2^d] vertices. *)

val petersen : unit -> Graph.t
(** The Petersen graph (non-planar, girth 5). *)

val binary_tree : int -> Graph.t
(** Complete binary tree shape on [n] vertices (heap numbering). *)

val random_tree : Random.State.t -> int -> Graph.t
(** Uniform random attachment tree on [n] vertices. *)

val apollonian : Random.State.t -> int -> Graph.t
(** Random Apollonian network on [n >= 3] vertices: a maximal planar graph
    ([m = 3n - 6]) grown by repeated random face subdivision. *)

val random_planar : Random.State.t -> n:int -> m:int -> Graph.t
(** Random planar graph: an Apollonian network on [n] vertices with random
    edges deleted down to [m] edges (requires [m <= 3n - 6]). *)

val gnp : Random.State.t -> int -> float -> Graph.t
(** Erdős–Rényi [G(n, p)]. *)

val random_bipartite_planar : Random.State.t -> int -> Graph.t
(** A random planar bipartite graph: the square grid with a random subset of
    edges removed (stays bipartite and planar, may be disconnected edges
    trimmed to keep it connected). *)

(** Planar graph plus [extra] random chords.  When the base is a maximal
    planar graph, the Euler formula certifies that at least [extra] edges
    must be removed to restore planarity. *)
val planar_plus_chords : Random.State.t -> base:Graph.t -> extra:int -> Graph.t

(** [far_from_planar rng ~n ~eps] is a graph certified (via the Euler bound)
    to be at least [eps]-far from planar: an Apollonian triangulation plus
    [ceil (eps * m0 / (1 - eps)) + 1] random chords. *)
val far_from_planar : Random.State.t -> n:int -> eps:float -> Graph.t

val k5_necklace : int -> Graph.t
(** [k] disjoint copies of [K_5] strung together in a cycle by single edges:
    connected, and every copy must lose an edge for planarity. *)

val connected_copies : Graph.t -> int -> Graph.t
(** [k] disjoint copies of a connected graph joined in a path by one edge
    between consecutive copies (vertex 0 of copy [i+1] to the last vertex of
    copy [i]).  Preserves planarity. *)

val odd_cycle_planted : Random.State.t -> n:int -> k:int -> Graph.t
(** Far-from-bipartite workload: the [side x side] grid
    ([side = max 3 (floor (sqrt n))]) plus [k] diagonals planted in
    pairwise vertex-disjoint unit squares.  The [k] resulting triangles
    are vertex-disjoint odd cycles, certifying bipartite distance
    [>= k]; the diagonals lie inside grid faces, so the graph stays
    planar.  Raises [Invalid_argument] unless
    [1 <= k <= ceil ((side - 1) / 2) ^ 2] (the number of disjoint
    squares). *)

val bipartite_perturbed : Random.State.t -> int -> Graph.t
(** Close (property-holding) counterpart of {!odd_cycle_planted}: a
    connected planar bipartite graph — the grid with random
    connectivity-preserving edge deletions — under a random vertex
    relabeling. *)

val forest_plus_edges : Random.State.t -> n:int -> k:int -> Graph.t
(** Far-from-cycle-free workload: a uniform random attachment tree on
    [n] vertices plus [k] distinct random non-edges, so the excess over
    a spanning forest — the exact deletion distance to cycle-freeness —
    is [k].  Requires [n >= 2]. *)

val forest_close : Random.State.t -> int -> Graph.t
(** Cycle-free (property-holding) workload: a random-attachment forest —
    each vertex joins a random earlier vertex with probability 0.9,
    else starts a new component.  Possibly disconnected. *)

val relabel : Random.State.t -> Graph.t -> Graph.t
(** Random permutation of vertex ids (to de-bias id-based tie-breaking). *)
