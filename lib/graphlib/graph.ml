(* Flat CSR representation.

   The graph is four unboxed int arrays:

     xadj : n+1     arc range of vertex v is xadj.(v) .. xadj.(v+1) - 1
     adj  : 2m      packed arc (nbr lsl eid_shift) lor eid, sorted per vertex
     esrc : m       endpoints by edge id, esrc.(e) < edst.(e)
     edst : m

   Packing the neighbor in the high bits means sorting the packed ints
   per vertex reproduces exactly the (neighbor, edge id) lexicographic
   order the previous boxed representation used, so port numbering — and
   therefore every protocol decision keyed on it — is unchanged.

   Analytic storage cost: 8 bytes per vertex (xadj) and 32 bytes per
   edge (two arcs in adj + esrc + edst); see [storage_bytes]. *)

type t = {
  n : int;
  m : int;
  xadj : int array;
  adj : int array;
  esrc : int array;
  edst : int array;
}

let eid_shift = 31
let eid_mask = (1 lsl eid_shift) - 1
let max_size = 1 lsl eid_shift

let check_endpoint n v =
  if v < 0 || v >= n then
    invalid_arg (Printf.sprintf "Graph: endpoint %d outside [0, %d)" v n)

(* In-place quicksort (median-of-three, insertion sort below 16) on a
   slice of an int array; Stdlib.Array.sort cannot sort slices without
   copying them out. *)
let sort_slice (a : int array) lo hi =
  let rec qsort lo hi =
    if hi - lo > 16 then begin
      let mid = (lo + hi) / 2 in
      let x = a.(lo) and y = a.(mid) and z = a.(hi - 1) in
      let pivot =
        if x < y then if y < z then y else if x < z then z else x
        else if x < z then x
        else if y < z then z
        else y
      in
      let i = ref lo and j = ref (hi - 1) in
      while !i <= !j do
        while a.(!i) < pivot do incr i done;
        while a.(!j) > pivot do decr j done;
        if !i <= !j then begin
          let tmp = a.(!i) in
          a.(!i) <- a.(!j);
          a.(!j) <- tmp;
          incr i;
          decr j
        end
      done;
      qsort lo (!j + 1);
      qsort !i hi
    end
    else
      for i = lo + 1 to hi - 1 do
        let x = a.(i) in
        let j = ref (i - 1) in
        while !j >= lo && a.(!j) > x do
          a.(!j + 1) <- a.(!j);
          decr j
        done;
        a.(!j + 1) <- x
      done
  in
  qsort lo hi

(* Core constructor from edge-id-indexed endpoint arrays ([esrc.(e) <
   edst.(e)] already enforced, no self-loops).  Duplicate edges are
   detected after the per-vertex sort — equal neighbors land adjacent —
   so no hash table is ever needed.  [on_dup] decides the policy: raise
   ([`Error]) or compact them away keeping the smallest edge id
   ([`Dedup]). *)
let rec of_flat ~on_dup ~n ~m esrc edst =
  if n > max_size || m > max_size then
    invalid_arg "Graph: more than 2^31 vertices or edges";
  let xadj = Array.make (n + 1) 0 in
  for e = 0 to m - 1 do
    xadj.(esrc.(e)) <- xadj.(esrc.(e)) + 1;
    xadj.(edst.(e)) <- xadj.(edst.(e)) + 1
  done;
  let acc = ref 0 in
  for v = 0 to n do
    let d = xadj.(v) in
    xadj.(v) <- !acc;
    acc := !acc + d
  done;
  let adj = Array.make (2 * m) 0 in
  let next = Array.sub xadj 0 n in
  for e = 0 to m - 1 do
    let u = esrc.(e) and v = edst.(e) in
    adj.(next.(u)) <- (v lsl eid_shift) lor e;
    next.(u) <- next.(u) + 1;
    adj.(next.(v)) <- (u lsl eid_shift) lor e;
    next.(v) <- next.(v) + 1
  done;
  for v = 0 to n - 1 do
    sort_slice adj xadj.(v) xadj.(v + 1)
  done;
  (* Duplicate scan: arcs with equal neighbor are now adjacent. *)
  let doomed = ref [||] in
  let dups = ref 0 in
  for v = 0 to n - 1 do
    for i = xadj.(v) + 1 to xadj.(v + 1) - 1 do
      let a = adj.(i - 1) and b = adj.(i) in
      if a lsr eid_shift = b lsr eid_shift then begin
        (match on_dup with
        | `Error ->
            let w = b lsr eid_shift in
            let u, w = if v < w then (v, w) else (w, v) in
            invalid_arg
              (Printf.sprintf "Graph.make: duplicate edge (%d, %d)" u w)
        | `Dedup -> ());
        if !doomed = [||] then doomed := Array.make m false;
        let e = b land eid_mask in
        if not !doomed.(e) then begin
          !doomed.(e) <- true;
          incr dups
        end
      end
    done
  done;
  if !dups = 0 then { n; m; xadj; adj; esrc; edst }
  else begin
    (* Keep the first occurrence of each duplicated pair (the smallest
       edge id survives — sorting put it first) and renumber compactly,
       preserving relative order. *)
    let doomed = !doomed in
    let m' = m - !dups in
    let esrc' = Array.make m' 0 and edst' = Array.make m' 0 in
    let k = ref 0 in
    for e = 0 to m - 1 do
      if not doomed.(e) then begin
        esrc'.(!k) <- esrc.(e);
        edst'.(!k) <- edst.(e);
        incr k
      end
    done;
    of_flat ~on_dup:`Error ~n ~m:m' esrc' edst'
  end

(* --- streaming builder ------------------------------------------------ *)

module Builder = struct
  type t = {
    bn : int;
    mutable bsrc : int array;
    mutable bdst : int array;
    mutable blen : int;
    mutable self_loop : int; (* first self-loop vertex, or -1 *)
  }

  let create ?(hint = 16) ~n () =
    if n < 0 then invalid_arg "Graph.Builder.create: negative n";
    let cap = max 1 hint in
    {
      bn = n;
      bsrc = Array.make cap 0;
      bdst = Array.make cap 0;
      blen = 0;
      self_loop = -1;
    }

  let add b u v =
    check_endpoint b.bn u;
    check_endpoint b.bn v;
    if u = v then begin
      if b.self_loop < 0 then b.self_loop <- u
    end
    else begin
      let cap = Array.length b.bsrc in
      if b.blen = cap then begin
        let cap' = 2 * cap in
        let s = Array.make cap' 0 and d = Array.make cap' 0 in
        Array.blit b.bsrc 0 s 0 b.blen;
        Array.blit b.bdst 0 d 0 b.blen;
        b.bsrc <- s;
        b.bdst <- d
      end;
      if u < v then begin
        b.bsrc.(b.blen) <- u;
        b.bdst.(b.blen) <- v
      end
      else begin
        b.bsrc.(b.blen) <- v;
        b.bdst.(b.blen) <- u
      end;
      b.blen <- b.blen + 1
    end

  let count b = b.blen

  let shrunk b =
    if Array.length b.bsrc = b.blen then (b.bsrc, b.bdst)
    else (Array.sub b.bsrc 0 b.blen, Array.sub b.bdst 0 b.blen)

  let finish b =
    if b.self_loop >= 0 then
      invalid_arg
        (Printf.sprintf "Graph.make: self-loop at %d" b.self_loop);
    let esrc, edst = shrunk b in
    of_flat ~on_dup:`Error ~n:b.bn ~m:b.blen esrc edst

  let finish_dedup b =
    let esrc, edst = shrunk b in
    of_flat ~on_dup:`Dedup ~n:b.bn ~m:b.blen esrc edst
end

let make ~n edges =
  let b = Builder.create ~hint:(List.length edges) ~n () in
  List.iter (fun (u, v) -> Builder.add b u v) edges;
  Builder.finish b

let of_edges_dedup ~n edges =
  let b = Builder.create ~hint:(max 1 (List.length edges)) ~n () in
  List.iter (fun (u, v) -> Builder.add b u v) edges;
  Builder.finish_dedup b

(* --- accessors -------------------------------------------------------- *)

let n g = g.n
let m g = g.m
let degree g v = g.xadj.(v + 1) - g.xadj.(v)

(* Zero-allocation port-indexed access: port [i] of [v] is the [i]-th
   (neighbor, edge id) pair in neighbor-sorted order. *)
let nbr g v i = g.adj.(g.xadj.(v) + i) lsr eid_shift
let incident_eid g v i = g.adj.(g.xadj.(v) + i) land eid_mask

let iter_incident g v f =
  for i = g.xadj.(v) to g.xadj.(v + 1) - 1 do
    let a = g.adj.(i) in
    f (a lsr eid_shift) (a land eid_mask)
  done

let neighbors g v =
  Array.init (degree g v) (fun i -> g.adj.(g.xadj.(v) + i) lsr eid_shift)

let incident g v =
  Array.init (degree g v) (fun i ->
      let a = g.adj.(g.xadj.(v) + i) in
      (a lsr eid_shift, a land eid_mask))

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    let d = degree g v in
    if d > !best then best := d
  done;
  !best

let edge g e = (g.esrc.(e), g.edst.(e))

let endpoints g = Array.init g.m (fun e -> (g.esrc.(e), g.edst.(e)))

(* Binary search over the neighbor-sorted arc slice. *)
let find_incident g u v =
  let a = g.adj in
  let rec go lo hi =
    if lo >= hi then raise Not_found
    else
      let mid = (lo + hi) / 2 in
      let w = a.(mid) lsr eid_shift in
      if w = v then a.(mid) land eid_mask
      else if w < v then go (mid + 1) hi
      else go lo mid
  in
  go g.xadj.(u) g.xadj.(u + 1)

let find_edge g u v = find_incident g u v

let has_edge g u v =
  match find_incident g u v with _ -> true | exception Not_found -> false

let other_endpoint g e v =
  let u = g.esrc.(e) and w = g.edst.(e) in
  if v = u then w
  else if v = w then u
  else invalid_arg "Graph.other_endpoint: vertex not on edge"

let iter_edges f g =
  for e = 0 to g.m - 1 do
    f e g.esrc.(e) g.edst.(e)
  done

let fold_edges f init g =
  let acc = ref init in
  iter_edges (fun e u v -> acc := f !acc e u v) g;
  !acc

(* --- modification (rebuilds) ------------------------------------------ *)

let norm u v = if u < v then (u, v) else (v, u)

let add_edges g edges =
  let extra =
    List.map
      (fun (u, v) ->
        check_endpoint g.n u;
        check_endpoint g.n v;
        if u = v then invalid_arg "Graph.add_edges: self-loop";
        if has_edge g u v then invalid_arg "Graph.add_edges: duplicate edge";
        norm u v)
      edges
  in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun p ->
      if Hashtbl.mem seen p then invalid_arg "Graph.add_edges: duplicate edge";
      Hashtbl.add seen p ())
    extra;
  let k = List.length extra in
  let m' = g.m + k in
  let esrc = Array.make m' 0 and edst = Array.make m' 0 in
  Array.blit g.esrc 0 esrc 0 g.m;
  Array.blit g.edst 0 edst 0 g.m;
  List.iteri
    (fun i (u, v) ->
      esrc.(g.m + i) <- u;
      edst.(g.m + i) <- v)
    extra;
  of_flat ~on_dup:`Error ~n:g.n ~m:m' esrc edst

let remove_edges g pred =
  let remap = Array.make g.m (-1) in
  let count = ref 0 in
  for e = 0 to g.m - 1 do
    if not (pred e) then begin
      remap.(e) <- !count;
      incr count
    end
  done;
  let m' = !count in
  let esrc = Array.make m' 0 and edst = Array.make m' 0 in
  for e = 0 to g.m - 1 do
    let e' = remap.(e) in
    if e' >= 0 then begin
      esrc.(e') <- g.esrc.(e);
      edst.(e') <- g.edst.(e)
    end
  done;
  (of_flat ~on_dup:`Error ~n:g.n ~m:m' esrc edst, remap)

let induced g vs =
  let vs = Array.of_list vs in
  let k = Array.length vs in
  let back = Hashtbl.create (2 * k) in
  Array.iteri
    (fun i v ->
      check_endpoint g.n v;
      if Hashtbl.mem back v then invalid_arg "Graph.induced: duplicate vertex";
      Hashtbl.add back v i)
    vs;
  let b = Builder.create ~hint:(2 * k) ~n:k () in
  iter_edges
    (fun _ u v ->
      match (Hashtbl.find_opt back u, Hashtbl.find_opt back v) with
      | Some iu, Some iv -> Builder.add b iu iv
      | _ -> ())
    g;
  (Builder.finish b, vs)

let disjoint_union g1 g2 =
  let shift = g1.n in
  let m' = g1.m + g2.m in
  let esrc = Array.make m' 0 and edst = Array.make m' 0 in
  Array.blit g1.esrc 0 esrc 0 g1.m;
  Array.blit g1.edst 0 edst 0 g1.m;
  for e = 0 to g2.m - 1 do
    esrc.(g1.m + e) <- g2.esrc.(e) + shift;
    edst.(g1.m + e) <- g2.edst.(e) + shift
  done;
  of_flat ~on_dup:`Error ~n:(g1.n + g2.n) ~m:m' esrc edst

let pp fmt g =
  Format.fprintf fmt "@[<v>graph n=%d m=%d@," g.n g.m;
  iter_edges (fun e u v -> Format.fprintf fmt "  e%d: (%d, %d)@," e u v) g;
  Format.fprintf fmt "@]"

let equal g1 g2 =
  g1.n = g2.n && g1.m = g2.m
  &&
  let s1 = endpoints g1 and s2 = endpoints g2 in
  Array.sort compare s1;
  Array.sort compare s2;
  s1 = s2

(* --- accounting and identity ------------------------------------------ *)

let word = 8

let storage_bytes g =
  let node_bytes = word * (g.n + 1) in
  let edge_bytes = word * ((2 * g.m) + g.m + g.m) in
  (node_bytes, edge_bytes)

(* FNV-1a over (n, m, endpoints by edge id).  Edge-id order is part of
   the identity on purpose: two graphs with the same edge set but
   different id assignment behave differently under id-keyed fault
   schedules, and checkpoint resume must reject them. *)
let fingerprint g =
  let h = ref 0xcbf29ce484222325L in
  let mix x =
    let x = Int64.of_int x in
    h := Int64.mul (Int64.logxor !h x) 0x100000001b3L
  in
  mix g.n;
  mix g.m;
  for e = 0 to g.m - 1 do
    mix g.esrc.(e);
    mix g.edst.(e)
  done;
  !h
