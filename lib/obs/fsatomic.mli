(** Crash-safe file publication primitives.

    Two patterns, for two kinds of live files:

    - {!write}: whole-document replace via temp file + [rename].  A
      reader never observes a torn document — it sees the previous
      contents or the new ones, nothing in between — and a crash
      mid-write leaves the previous version intact.  Used by the
      heartbeat status file, the checkpoint container and planarmon's
      exposition output (all through this one helper, so there is a
      single rename path to audit).

    - {!append_line}: append-only record streams (JSONL ledgers).  The
      line plus its newline go down in a single [write(2)] on an
      [O_APPEND] descriptor, so concurrent appenders never interleave
      bytes; a crash can tear at most the final line, which readers
      must skip (see [Report.Ledger.load]). *)

val write : string -> string -> unit
(** [write path contents] atomically replaces [path] with [contents]
    via [path ^ ".tmp"] + rename.  Raises [Sys_error] on IO failure
    (the temp file is removed, [path] is untouched). *)

val with_channel : string -> (out_channel -> unit) -> unit
(** Streaming variant of {!write}: [with_channel path f] opens the
    temp file in binary mode, hands the channel to [f], then closes
    and renames.  Same atomicity and cleanup contract; use when the
    document is too large to build as one string (checkpoints). *)

val append_line : string -> string -> unit
(** [append_line path line] appends [line ^ "\n"] to [path] (creating
    it at 0o644) in one [write(2)].  [line] must not contain a
    newline.  Raises [Sys_error] / [Unix.Unix_error] on failure. *)
