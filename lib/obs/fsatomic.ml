(* Crash-safe file publication, shared by every writer in this repo
   that a concurrent reader may be tailing: the heartbeat status file
   (whole-document replace), the run ledger (append-only JSONL) and,
   via [Report.write_atomic], the checkpoint container and planarmon's
   exposition files.  Living in [obs] keeps the dependency direction
   clean — report depends on obs, never the reverse. *)

let with_channel path f =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     f oc;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let write path contents = with_channel path (fun oc -> output_string oc contents)

let append_line path line =
  let buf = line ^ "\n" in
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let b = Bytes.of_string buf in
      let len = Bytes.length b in
      let written = Unix.write fd b 0 len in
      if written <> len then
        raise
          (Sys_error
             (Printf.sprintf "%s: short append (%d of %d bytes)" path written
                len)))
