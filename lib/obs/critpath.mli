(** Causal critical-path analysis of traced runs.

    Reconstructs the happens-before DAG of a recorded run from its
    resume events' causal wake slots and walks the unique causal chain
    ending at the run's last step — the chain that {e explains} why the
    run took as many rounds as it did.  Every hop on the chain is one of:

    - a {b deliver} hop: the child step was woken by a frame; its
      nominal cost is one round, and anything beyond ([excess]) is
      wire-latency inflation injected by delay faults;
    - a {b timer} hop: the child step waited out its own park deadline —
      slack rounds during which the path was not message-driven;
    - a {b run stitch}: the child is the first activity of a later
      engine run, causally after the previous run's completion
      (zero rounds unless the earlier run was truncated mid-span).

    Consecutive timer hops of one node are collapsed into a single hop,
    which makes the reported path {e identical} whether the engine
    fast-forwarded quiescent spans or stepped them one by one — the
    fiber baseline's per-round spin resumes fold into the one deadline
    wait they implement.  Recording is coordinator-serial, so the
    report is also byte-identical across [--domains] and across the
    fiber/compiled execution modes.

    This module is deliberately independent of the engine: callers
    (in [lib/report] / [bin]) map their trace events into {!event}.
    The analyzer is offline and allocation-relaxed; nothing here runs
    on the recording hot path. *)

(** Why a step's fiber woke (the trace's wake-cause, decoupled from the
    engine's type).  [Unknown] comes from pre-causal (v1) traces; the
    analyzer then infers a deliver cause when the step's round saw a
    recorded first delivery. *)
type cause = Unknown | Deliver | Deadline

(** Analyzer input, in recorded (chronological) order.  [round] and
    [sent] are absolute simulated rounds. *)
type event =
  | Message of { round : int; sent : int; sender : int; dest : int;
                 edge : int }
      (** a frame delivery (used to attach directed-edge ids to deliver
          hops and to back-fill [Unknown] causes) *)
  | Resume of { round : int; node : int; cause : cause; sender : int;
                sent : int }
      (** a step: [node] ran at [round]; on [Deliver], [sender]/[sent]
          name the causally-first frame it woke on *)
  | Phase of string  (** the current phase label switches *)
  | Run_end of { round : int }
      (** one engine run finished at absolute round [round] *)

type hop_kind = Deliver_hop | Timer_hop | Run_hop

(** One hop of the critical path, parent step to child step.
    [rounds = round - from_round]; for deliver hops [excess] is the
    recorded wire latency beyond the nominal round
    ([delivery - sent - 1]) — the delay-fault inflation.  On a lossy
    ring a deliver hop's [rounds] can exceed [1 + excess]; the
    remainder is a sender-side history hole, counted as slack. *)
type hop = {
  kind : hop_kind;
  from_node : int;
  from_round : int;
  node : int;
  round : int;
  edge : int;  (** directed edge id of a deliver hop, [-1] if unknown *)
  rounds : int;
  excess : int;
  phase : string;  (** phase of the child step *)
}

(** Per-phase decomposition of the path's rounds. *)
type phase_profile = {
  phase : string;
  hops : int;
  deliver_rounds : int;  (** nominal one-round deliver costs *)
  timer_rounds : int;  (** slack: deadline waits on the path *)
  excess_rounds : int;  (** delay-fault inflation on the path *)
}

(** Causal-edge blame: deliver hops of the path grouped by directed
    (src, dst) pair, ranked by rounds (then hops, then (src, dst)). *)
type edge_blame = {
  src : int;
  dst : int;
  edge : int;  (** directed edge id, [-1] if unknown *)
  hops : int;
  rounds : int;
  excess : int;
}

type report = {
  path_rounds : int;  (** total rounds along the path (telescoped) *)
  start_round : int;
  end_round : int;  (** the last step's absolute round *)
  total_rounds : int;  (** rounds covered by the trace's run ends *)
  steps : int;  (** path steps after timer collapsing *)
  deliver_hops : int;
  deliver_rounds : int;
  timer_rounds : int;
  excess_rounds : int;
  stitch_rounds : int;  (** run-stitch rounds (truncated earlier runs) *)
  contracted_rounds : int;
      (** [path_rounds - excess_rounds]: the counterfactual path length
          with injected delays contracted to nominal wire latency —
          exact for delay faults, a lower-bound estimate when drops or
          crashes changed the control flow *)
  lossy : bool;  (** ring overflow or sampling holes may hide parents *)
  phases : phase_profile list;  (** in first-seen order *)
  edges : edge_blame list;  (** blame-ranked, full list *)
  hops : hop list;  (** the path, start to end *)
}

(** [analyze ~n events] reconstructs the DAG and returns the causal
    chain report.  [n] is the node count (per-node state); when [n <= 0]
    it is derived from the events.  [~lossy] marks the report as
    computed over an incomplete ring (the caller knows the recorder's
    overwrite/sampling totals).  An event list with no resumes yields
    an empty report (zero path). *)
val analyze : ?lossy:bool -> n:int -> event list -> report

(** Record the ~stable critpath metric families from a report:
    [critpath_rounds] (total path rounds) and
    [critpath_slack_rounds{phase}] (per-phase timer slack).  No-op when
    metrics are disabled. *)
val record_metrics : report -> unit
