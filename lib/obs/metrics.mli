(** Process-wide run-level metrics: counters, gauges and fixed-bucket
    histograms with exact (integer, overflow-safe) sums.

    Design constraints, in order:

    - {b Zero cost when disabled.}  Every recording entry point is a
      single [Atomic.get] branch away from a no-op; the registry ships
      disabled and is only switched on by tools that scrape it
      ([planarmon], tests).  The instrumented hot paths in the engine
      additionally check {!enabled} before computing label values.

    - {b Deterministic scrape.}  Simulated metrics (marked
      [~stable:true] at registration) depend only on the program, the
      graph and the seed — never on [?domains], fast-forward, wall
      clock or scheduling.  {!snapshot} and {!expose} emit families
      sorted by name and series sorted by label values, so two runs
      with identical simulated behaviour produce byte-identical
      stable output.

    - {b Lock-free recording.}  Counter and histogram cells are arrays
      of [Atomic.t] indexed by [Domain.self () mod n_shards]; domains
      never contend on a CAS unless they hash to the same shard.
      Shards are summed at scrape time.

    - {b Bounded label cardinality.}  Each family caps its number of
      label-value series ([?max_series], default {!default_max_series}).
      Past the cap new label combinations are routed to a single
      ["_overflow"] series, a warning is printed once per family, and
      the registry-wide {!overflow_count} is bumped — loud, but never
      unbounded memory. *)

type t
(** A metrics registry. *)

val create : unit -> t

val default : t
(** The process-wide registry used when [?registry] is omitted.
    All instrumentation in this repo records here. *)

val set_enabled : ?registry:t -> bool -> unit
val enabled : ?registry:t -> unit -> bool

val reset : ?registry:t -> unit -> unit
(** Zero every cell, forget every label series and clear overflow
    state.  Registered families survive (handles stay valid). *)

val default_max_series : int

(** {1 Instrument handles} *)

type counter
type gauge
type histogram

val counter :
  ?registry:t -> ?stable:bool -> ?label_names:string list ->
  ?max_series:int -> ?help:string -> string -> counter
(** [counter name] registers (or retrieves, if [name] is already
    registered with the same kind) an integer counter family.
    [~stable] (default [true]) marks the family as
    simulated-deterministic; host-side families (wall clock, GC)
    must pass [~stable:false].
    @raise Invalid_argument if [name] is already registered with a
    different kind or label names. *)

val gauge :
  ?registry:t -> ?stable:bool -> ?label_names:string list ->
  ?max_series:int -> ?help:string -> string -> gauge

val histogram :
  ?registry:t -> ?stable:bool -> ?label_names:string list ->
  ?max_series:int -> ?help:string -> buckets:int list -> string -> histogram
(** [buckets] are the inclusive upper bounds ([le]) of the finite
    buckets, strictly increasing; a [+Inf] bucket is implicit.
    An observation [v] lands in the first bucket with [v <= le]. *)

val exponential_buckets : start:int -> factor:int -> count:int -> int list
(** [exponential_buckets ~start:1 ~factor:2 ~count:5] = [[1;2;4;8;16]]. *)

val inc : ?labels:string list -> ?by:int -> counter -> unit
(** No-op when the registry is disabled.  [by] defaults to 1 and must
    be [>= 0]. *)

val set : ?labels:string list -> gauge -> float -> unit
val observe : ?labels:string list -> histogram -> int -> unit

(** {1 Scraping} *)

type hist_snapshot = {
  le : int array;            (** finite bucket upper bounds *)
  cumulative : int array;    (** cumulative counts per finite bucket *)
  total : int;               (** observation count incl. +Inf bucket *)
  sum : int;                 (** exact sum of all observations *)
}

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of hist_snapshot

type series = {
  labels : (string * string) list;  (** [(name, value)] pairs, in registration order *)
  value : value;
}

type kind = Counter_k | Gauge_k | Histogram_k

type family = {
  name : string;
  help : string;
  kind : kind;
  stable : bool;
  overflowed : bool;  (** true once label cardinality exceeded the cap *)
  series : series list;
}

val snapshot : ?stable_only:bool -> ?registry:t -> unit -> family list
(** Merge all shards and return families sorted by name, series sorted
    by label values.  [?stable_only] drops [~stable:false] families. *)

val expose : ?stable_only:bool -> ?registry:t -> unit -> string
(** OpenMetrics text exposition of {!snapshot}, ending in [# EOF]. *)

val escape_label_value : string -> string
(** OpenMetrics label-value escaping of backslash, double quote and
    newline (exposed for tests). *)

val overflow_count : ?registry:t -> unit -> int
(** Number of label-series rejections recorded since the last {!reset}. *)
