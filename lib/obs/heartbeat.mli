(** Live-run heartbeat publication.

    A heartbeat is a single small JSON document (locked schema
    ["heartbeat/v1"]) republished in place — atomic tmp+rename via
    {!Fsatomic.write} — every K charged rounds and/or T wall-seconds.
    A tailing reader ([planarmon attach], a future daemon supervisor)
    always sees a complete document and can derive progress, ETA and
    liveness from [seq]/[wall_s]/[rounds] deltas.

    {b Determinism.}  All hooks run on the host coordinator at
    quiescent round or phase boundaries; nothing here reads or writes
    simulated state.  A run with a heartbeat attached produces
    byte-identical stats / telemetry / trace / stable-metrics output
    to the same run without one, across [--domains], fast-forward and
    execution mode.

    {b Not thread-safe.}  [tick]/[publish]/[finish] must be called
    from the coordinator only (they are — via the engine's [?on_round]
    and Stage I's [?on_phase] hooks).

    Document key set, in order: [schema seq state verdict run_id
    fingerprint property phase phases_done phases_total rounds
    charged_rounds messages total_bits checkpoint wall_s gc metrics],
    with [gc = {minor_words, major_collections, heap_words}] and
    [metrics] either [null] (registry disabled) or a flat
    [{name, value}] list of the stable projection. *)

val schema : string
(** ["heartbeat/v1"]. *)

type progress = {
  rounds : int;            (** engine rounds completed (live, per tick) *)
  charged_rounds : int;    (** charged rounds (live, per tick) *)
  messages : int;          (** messages so far (primitive-run granularity) *)
  total_bits : int;        (** bits so far (primitive-run granularity) *)
  phases_done : int;       (** Stage I phases completed (+1 for Stage II) *)
  phases_total : int;      (** total phases incl. Stage II *)
}

type t

val create :
  ?path:string ->
  ?every_rounds:int ->
  ?every_secs:float ->
  ?on_publish:(progress -> unit) ->
  run_id:string ->
  fingerprint:string ->
  property:string ->
  unit ->
  t
(** [create ~run_id ~fingerprint ~property ()] builds a heartbeat.
    [?path] is the status file; when omitted nothing is written and
    only [?on_publish] fires (that is how [planartest --progress]
    works without [--heartbeat]).  [?every_rounds] (default 8192)
    and [?every_secs] (default 1.0) bound the republication cadence
    from below; phase boundaries force-publish regardless.  Write
    failures are logged once via {!Log} and never raised — a full
    disk must not kill a long run. *)

val attach : t -> sample:(unit -> progress) -> unit
(** Connect the source of truth: [sample ()] reads the run's
    accumulated stats (harness-side).  Called once the partition
    state exists, before stepping starts; the totals sampled here
    become the base that live {!tick}s extend, so resumed runs
    report checkpointed totals rather than zero. *)

val set_checkpoint : t -> string -> unit
(** Record the latest checkpoint path; appears in the document as
    [checkpoint] (null until first set). *)

val tick : t -> rounds:int -> unit
(** [tick t ~rounds] accounts [rounds] freshly completed engine
    rounds (1 per stepped round, the span length after a
    fast-forward skip) and republishes if a cadence bound is due.
    O(1); checks the wall clock only every 64 calls. *)

val publish : t -> unit
(** Force a republication now (phase boundaries).  No-op after
    {!finish}. *)

val finish : t -> verdict:string -> unit
(** Final publication with [state = "done"] and the given verdict;
    subsequent ticks/publishes are no-ops. *)

val path : t -> string option

val current : t -> progress
(** The progress that would be published now (exposed for tests and
    the progress bar). *)
