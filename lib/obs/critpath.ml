(* Offline causal critical-path analysis.  See critpath.mli for the
   model; the short version: resume events are steps, each step records
   the one cause that woke it (a first frame delivery or its own park
   deadline), and the chain from the last step back to the run's start
   is the causal explanation of the run's length.  Hop weights telescope
   (child round - parent round), so the path length equals the last
   step's absolute round whenever the chain reaches round 0. *)

type cause = Unknown | Deliver | Deadline

type event =
  | Message of { round : int; sent : int; sender : int; dest : int;
                 edge : int }
  | Resume of { round : int; node : int; cause : cause; sender : int;
                sent : int }
  | Phase of string
  | Run_end of { round : int }

type hop_kind = Deliver_hop | Timer_hop | Run_hop

type hop = {
  kind : hop_kind;
  from_node : int;
  from_round : int;
  node : int;
  round : int;
  edge : int;
  rounds : int;
  excess : int;
  phase : string;
}

type phase_profile = {
  phase : string;
  hops : int;
  deliver_rounds : int;
  timer_rounds : int;
  excess_rounds : int;
}

type edge_blame = {
  src : int;
  dst : int;
  edge : int;
  hops : int;
  rounds : int;
  excess : int;
}

type report = {
  path_rounds : int;
  start_round : int;
  end_round : int;
  total_rounds : int;
  steps : int;
  deliver_hops : int;
  deliver_rounds : int;
  timer_rounds : int;
  excess_rounds : int;
  stitch_rounds : int;
  contracted_rounds : int;
  lossy : bool;
  phases : phase_profile list;
  edges : edge_blame list;
  hops : hop list;
}

(* Step store: one record per resume event plus lazily synthesised
   run-start anchors.  [parent] is a step id (-1 for the global root);
   [kind] describes the hop from the parent to this step. *)
type step = {
  id : int;
  s_node : int;
  s_round : int;
  parent : int;
  s_kind : hop_kind;
  s_edge : int;
  s_sent : int;  (* absolute send round of a deliver step, -1 otherwise *)
  s_phase : int;
}

let empty_report =
  { path_rounds = 0; start_round = 0; end_round = 0; total_rounds = 0;
    steps = 0; deliver_hops = 0; deliver_rounds = 0; timer_rounds = 0;
    excess_rounds = 0; stitch_rounds = 0; contracted_rounds = 0;
    lossy = false; phases = []; edges = []; hops = [] }

let analyze ?(lossy = false) ~n events =
  let n =
    if n > 0 then n
    else
      List.fold_left
        (fun acc ev ->
          match ev with
          | Message { sender; dest; _ } -> max acc (max sender dest + 1)
          | Resume { node; sender; _ } -> max acc (max node sender + 1)
          | Phase _ | Run_end _ -> acc)
        1 events
  in
  (* Phase label interning, in first-seen order.  The implicit initial
     phase (before any explicit switch) is "run", matching the trace
     recorder's implicit whole-run phase. *)
  let phase_tbl = Hashtbl.create 8 in
  let phase_names = ref [] and phase_count = ref 0 in
  let intern l =
    match Hashtbl.find_opt phase_tbl l with
    | Some i -> i
    | None ->
        let i = !phase_count in
        incr phase_count;
        Hashtbl.add phase_tbl l i;
        phase_names := l :: !phase_names;
        i
  in
  let cur_phase = ref (intern "run") in
  (* Growable step store. *)
  let steps = ref (Array.make 1024 None) in
  let n_steps = ref 0 in
  let push_step s_node s_round parent s_kind s_edge s_sent =
    let id = !n_steps in
    if id = Array.length !steps then begin
      let bigger = Array.make (2 * id) None in
      Array.blit !steps 0 bigger 0 id;
      steps := bigger
    end;
    (!steps).(id) <-
      Some { id; s_node; s_round; parent; s_kind; s_edge; s_sent;
             s_phase = !cur_phase };
    incr n_steps;
    id
  in
  let get id = match (!steps).(id) with Some s -> s | None -> assert false in
  (* Per-node state, epoch-tagged so run boundaries reset it without an
     O(n) sweep per run.  [hist] holds a node's step ids, latest first,
     for the current epoch only; [start_id] memoises the synthesised
     run-start step. *)
  let hist = Array.make n [] in
  let hist_epoch = Array.make n (-1) in
  let start_id = Array.make n (-1) in
  let start_epoch = Array.make n (-1) in
  (* First delivery of the current round per destination: the causally
     first frame, used to attach edge ids and to back-fill v1 traces. *)
  let msg_round = Array.make n (-1) in
  let msg_sender = Array.make n (-1) in
  let msg_sent = Array.make n (-1) in
  let msg_edge = Array.make n (-1) in
  let epoch = ref 0 in
  let base = ref 0 in
  let anchor = ref (-1) in
  let last_step = ref (-1) in
  let total_rounds = ref 0 in
  let node_hist v = if hist_epoch.(v) = !epoch then hist.(v) else [] in
  let add_hist v id =
    if hist_epoch.(v) = !epoch then hist.(v) <- id :: hist.(v)
    else begin
      hist_epoch.(v) <- !epoch;
      hist.(v) <- [ id ]
    end
  in
  let start_of v =
    if start_epoch.(v) = !epoch then start_id.(v)
    else begin
      let id = push_step v !base !anchor Run_hop (-1) (-1) in
      start_epoch.(v) <- !epoch;
      start_id.(v) <- id;
      id
    end
  in
  (* Latest step of [v] at round <= [t] in the current epoch, or the
     synthesised run start.  The scan is almost always one entry deep:
     a sender's send round is its latest step unless delay faults let
     it run again before the frame landed. *)
  let resolve v t =
    let rec scan = function
      | [] -> start_of v
      | id :: rest -> if (get id).s_round <= t then id else scan rest
    in
    if v < 0 || v >= n then start_of (max 0 (min v (n - 1)))
    else scan (node_hist v)
  in
  List.iter
    (fun ev ->
      match ev with
      | Phase l -> cur_phase := intern l
      | Run_end { round } ->
          total_rounds := max !total_rounds round;
          incr epoch;
          base := round;
          anchor := !last_step
      | Message { round; sent; sender; dest; edge } ->
          if dest >= 0 && dest < n && msg_round.(dest) <> round then begin
            msg_round.(dest) <- round;
            msg_sender.(dest) <- sender;
            msg_sent.(dest) <- sent;
            msg_edge.(dest) <- edge
          end
      | Resume { round; node; cause; sender; sent } ->
          if node >= 0 && node < n then begin
            let cause, sender, sent =
              match cause with
              | Unknown ->
                  if msg_round.(node) = round then
                    (Deliver, msg_sender.(node), msg_sent.(node))
                  else (Deadline, -1, -1)
              | c -> (c, sender, sent)
            in
            let parent, kind, edge =
              match cause with
              | Deliver ->
                  let edge =
                    if
                      msg_round.(node) = round
                      && msg_sender.(node) = sender
                      && msg_sent.(node) = sent
                    then msg_edge.(node)
                    else -1
                  in
                  (resolve sender sent, Deliver_hop, edge)
              | Deadline | Unknown ->
                  let p =
                    match node_hist node with
                    | latest :: _ -> latest
                    | [] -> start_of node
                  in
                  (p, Timer_hop, -1)
            in
            let id =
              push_step node round parent kind edge
                (if kind = Deliver_hop then sent else -1)
            in
            add_hist node id;
            last_step := id
          end)
    events;
  if !last_step < 0 then { empty_report with lossy }
  else begin
    let phase_name =
      let arr = Array.of_list (List.rev !phase_names) in
      fun i -> arr.(i)
    in
    (* Walk the chain backwards, collapsing consecutive timer hops of
       the same node (the ff-off spin resumes) into one hop. *)
    let hops = ref [] in
    let cur = ref (get !last_step) in
    while (!cur).parent >= 0 do
      let child = !cur in
      let p = ref (get child.parent) in
      if child.s_kind = Timer_hop then
        while (!p).parent >= 0 && (!p).s_kind = Timer_hop do
          p := get (!p).parent
        done;
      let parent = !p in
      let rounds = child.s_round - parent.s_round in
      (* Excess is the recorded wire latency beyond the nominal round
         (round - sent - 1), never the parent gap: on a lossy ring the
         resolved parent can predate the send (its intervening steps
         were evicted), and that hole is slack, not fault inflation. *)
      let excess =
        if child.s_kind = Deliver_hop then
          if child.s_sent >= 0 then
            max 0 (min (rounds - 1) (child.s_round - child.s_sent - 1))
          else max 0 (rounds - 1)
        else 0
      in
      hops :=
        { kind = child.s_kind;
          from_node = parent.s_node;
          from_round = parent.s_round;
          node = child.s_node;
          round = child.s_round;
          edge = child.s_edge;
          rounds;
          excess;
          phase = phase_name child.s_phase }
        :: !hops;
      cur := parent
    done;
    let hops = !hops in
    let root = !cur in
    let last = get !last_step in
    let deliver_hops = ref 0 and deliver_rounds = ref 0 in
    let timer_rounds = ref 0 and excess_rounds = ref 0 in
    let stitch_rounds = ref 0 in
    List.iter
      (fun (h : hop) ->
        match h.kind with
        | Deliver_hop ->
            incr deliver_hops;
            deliver_rounds := !deliver_rounds + 1;
            excess_rounds := !excess_rounds + h.excess;
            (* Any remainder is a sender-side hole (lossy rings only) —
               slack, by the comment above. *)
            timer_rounds := !timer_rounds + (h.rounds - 1 - h.excess)
        | Timer_hop -> timer_rounds := !timer_rounds + h.rounds
        | Run_hop -> stitch_rounds := !stitch_rounds + h.rounds)
      hops;
    (* Per-phase decomposition, in first-seen phase order. *)
    let np = !phase_count in
    let ph_hops = Array.make np 0 in
    let ph_deliver = Array.make np 0 in
    let ph_timer = Array.make np 0 in
    let ph_excess = Array.make np 0 in
    List.iter
      (fun (h : hop) ->
        let i =
          match Hashtbl.find_opt phase_tbl h.phase with
          | Some i -> i
          | None -> 0
        in
        ph_hops.(i) <- ph_hops.(i) + 1;
        match h.kind with
        | Deliver_hop ->
            ph_deliver.(i) <- ph_deliver.(i) + 1;
            ph_excess.(i) <- ph_excess.(i) + h.excess;
            ph_timer.(i) <- ph_timer.(i) + (h.rounds - 1 - h.excess)
        | Timer_hop -> ph_timer.(i) <- ph_timer.(i) + h.rounds
        | Run_hop -> ())
      hops;
    let phases =
      List.filter_map
        (fun i ->
          if ph_hops.(i) = 0 then None
          else
            Some
              { phase = phase_name i;
                hops = ph_hops.(i);
                deliver_rounds = ph_deliver.(i);
                timer_rounds = ph_timer.(i);
                excess_rounds = ph_excess.(i) })
        (List.init np (fun i -> i))
    in
    (* Blame: deliver hops grouped by directed (src, dst). *)
    let blame = Hashtbl.create 16 in
    List.iter
      (fun (h : hop) ->
        if h.kind = Deliver_hop then begin
          let key = (h.from_node, h.node) in
          let b =
            match Hashtbl.find_opt blame key with
            | Some b -> b
            | None ->
                let b =
                  { src = h.from_node; dst = h.node; edge = h.edge;
                    hops = 0; rounds = 0; excess = 0 }
                in
                Hashtbl.add blame key b;
                b
          in
          Hashtbl.replace blame key
            { b with
              edge = (if b.edge >= 0 then b.edge else h.edge);
              hops = b.hops + 1;
              rounds = b.rounds + h.rounds;
              excess = b.excess + h.excess }
        end)
      hops;
    let edges =
      Hashtbl.fold (fun _ b acc -> b :: acc) blame []
      |> List.sort (fun a b ->
             if a.rounds <> b.rounds then compare b.rounds a.rounds
             else if a.hops <> b.hops then compare b.hops a.hops
             else compare (a.src, a.dst) (b.src, b.dst))
    in
    let path_rounds = last.s_round - root.s_round in
    { path_rounds;
      start_round = root.s_round;
      end_round = last.s_round;
      total_rounds = max !total_rounds last.s_round;
      steps = List.length hops + 1;
      deliver_hops = !deliver_hops;
      deliver_rounds = !deliver_rounds;
      timer_rounds = !timer_rounds;
      excess_rounds = !excess_rounds;
      stitch_rounds = !stitch_rounds;
      contracted_rounds = path_rounds - !excess_rounds;
      lossy;
      phases;
      edges;
      hops }
  end

(* ~stable: the collapsed path is ff-, domain- and mode-invariant, so
   these totals belong in the machine-independent stable projection
   (gated by planarmon / MONITOR_baseline.json). *)
let m_rounds =
  Metrics.counter
    ~help:"Causal critical-path length of traced runs, in rounds"
    "critpath_rounds"

let m_slack =
  Metrics.counter ~label_names:[ "phase" ]
    ~help:"Critical-path slack (deadline waits) per phase, in rounds"
    "critpath_slack_rounds"

let record_metrics r =
  Metrics.inc ~by:r.path_rounds m_rounds;
  List.iter
    (fun (p : phase_profile) ->
      if p.timer_rounds > 0 then
        Metrics.inc ~labels:[ p.phase ] ~by:p.timer_rounds m_slack)
    r.phases
