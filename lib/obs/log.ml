type level = Error | Warn | Info | Debug

let severity = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

let string_of_level = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string s =
  match String.lowercase_ascii s with
  | "error" -> Ok Error
  | "warn" | "warning" -> Ok Warn
  | "info" -> Ok Info
  | "debug" -> Ok Debug
  | _ ->
    Result.Error
      (Printf.sprintf "unknown log level %S (expected error|warn|info|debug)" s)

type field_value = S of string | I of int | F of float | B of bool
type field = string * field_value

type state = {
  mutable lvl : level;
  mutable json : out_channel option;
  mutable json_is_stderr : bool;
  mutable run_id : string;
  mutable phase : string;
  mutex : Mutex.t;
}

let st = {
  lvl = Warn;
  json = None;
  json_is_stderr = false;
  run_id = "";
  phase = "";
  mutex = Mutex.create ();
}

let set_level l = st.lvl <- l
let level () = st.lvl
let would_log l = severity l <= severity st.lvl

let close_json () =
  Mutex.lock st.mutex;
  (match st.json with
   | Some oc when not st.json_is_stderr -> (try close_out oc with Sys_error _ -> ())
   | Some oc -> (try flush oc with Sys_error _ -> ())
   | None -> ());
  st.json <- None;
  st.json_is_stderr <- false;
  Mutex.unlock st.mutex

let set_json path =
  close_json ();
  Mutex.lock st.mutex;
  let r =
    if path = "-" then begin
      st.json <- Some stderr;
      st.json_is_stderr <- true;
      Ok ()
    end else
      match open_out path with
      | oc -> st.json <- Some oc; Ok ()
      | exception Sys_error msg -> Result.Error msg
  in
  Mutex.unlock st.mutex;
  r

let set_context ?run_id ?phase () =
  Mutex.lock st.mutex;
  (match run_id with Some r -> st.run_id <- r | None -> ());
  (match phase with Some p -> st.phase <- p | None -> ());
  Mutex.unlock st.mutex

let context () =
  Mutex.lock st.mutex;
  let r = (st.run_id, st.phase) in
  Mutex.unlock st.mutex;
  r

(* Minimal RFC 8259 string escaping; obs cannot depend on
   Congest.Telemetry.Json (congest depends on obs). *)
let json_escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  json_escape b s;
  Buffer.contents b

let add_field_value b = function
  | S s -> json_escape b s
  | I i -> Buffer.add_string b (string_of_int i)
  | F f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string b (Printf.sprintf "%.1f" f)
    else Buffer.add_string b (Printf.sprintf "%.17g" f)
  | B v -> Buffer.add_string b (if v then "true" else "false")

let human_field_value = function
  | S s -> s
  | I i -> string_of_int i
  | F f -> Printf.sprintf "%g" f
  | B v -> string_of_bool v

let emit lvl node fields msg =
  Mutex.lock st.mutex;
  (* Human line on stderr. *)
  let b = Buffer.create 128 in
  Buffer.add_string b (Printf.sprintf "[%s] %s" (string_of_level lvl) msg);
  let human_extras =
    (match node with Some n -> [ ("node", I n) ] | None -> []) @ fields
  in
  if human_extras <> [] then begin
    Buffer.add_string b " (";
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_string b ", ";
         Buffer.add_string b k;
         Buffer.add_char b '=';
         Buffer.add_string b (human_field_value v))
      human_extras;
    Buffer.add_char b ')'
  end;
  Printf.eprintf "%s\n%!" (Buffer.contents b);
  (* JSONL record. *)
  (match st.json with
   | None -> ()
   | Some oc ->
     let b = Buffer.create 256 in
     Buffer.add_string b "{\"ts\":";
     Buffer.add_string b (Printf.sprintf "%.6f" (Unix.gettimeofday ()));
     Buffer.add_string b ",\"level\":";
     json_escape b (string_of_level lvl);
     if st.run_id <> "" then begin
       Buffer.add_string b ",\"run\":";
       json_escape b st.run_id
     end;
     if st.phase <> "" then begin
       Buffer.add_string b ",\"phase\":";
       json_escape b st.phase
     end;
     (match node with
      | Some n -> Buffer.add_string b (Printf.sprintf ",\"node\":%d" n)
      | None -> ());
     Buffer.add_string b ",\"msg\":";
     json_escape b msg;
     if fields <> [] then begin
       Buffer.add_string b ",\"fields\":{";
       List.iteri
         (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            json_escape b k;
            Buffer.add_char b ':';
            add_field_value b v)
         fields;
       Buffer.add_char b '}'
     end;
     Buffer.add_string b "}\n";
     output_string oc (Buffer.contents b);
     flush oc);
  Mutex.unlock st.mutex

let log lvl ?node ?(fields = []) msg =
  if would_log lvl then emit lvl node fields msg

let error ?node ?fields msg = log Error ?node ?fields msg
let warn ?node ?fields msg = log Warn ?node ?fields msg
let info ?node ?fields msg = log Info ?node ?fields msg
let debug ?node ?fields msg = log Debug ?node ?fields msg

let errorf ?node ?fields fmt = Printf.ksprintf (error ?node ?fields) fmt
let warnf ?node ?fields fmt = Printf.ksprintf (warn ?node ?fields) fmt
let infof ?node ?fields fmt = Printf.ksprintf (info ?node ?fields) fmt
let debugf ?node ?fields fmt = Printf.ksprintf (debug ?node ?fields) fmt
