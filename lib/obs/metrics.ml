(* Run-level metrics registry.  See metrics.mli for the contract.

   Layout: every counter/histogram cell is an [int Atomic.t array] of
   [n_shards] slots; a recording domain touches only slot
   [Domain.self () land (n_shards - 1)], so domains never contend
   unless they hash together.  Scrapes sum the shards.  Gauges are a
   single [float Atomic.t] (set-semantics, coordinator-only in this
   repo).  All label interning goes through a per-family mutex — fine
   because instrumentation records at run/phase granularity, not
   per-message. *)

let n_shards = 8

type cells = int Atomic.t array

let new_cells () : cells = Array.init n_shards (fun _ -> Atomic.make 0)

let shard () = (Domain.self () :> int) land (n_shards - 1)

let cells_add (c : cells) v = ignore (Atomic.fetch_and_add c.(shard ()) v)

let cells_sum (c : cells) = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c

let cells_zero (c : cells) = Array.iter (fun a -> Atomic.set a 0) c

type hdata = {
  bounds : int array;
  bcells : cells array;   (* one per finite bucket, non-cumulative *)
  hinf : cells;
  hsum : cells;
  hcount : cells;
}

type data =
  | Dcounter of cells
  | Dgauge of float Atomic.t
  | Dhist of hdata

type kind = Counter_k | Gauge_k | Histogram_k

type fam = {
  fname : string;
  fhelp : string;
  fkind : kind;
  fstable : bool;
  flabel_names : string list;
  fmax_series : int;
  fbounds : int array;                       (* empty unless histogram *)
  ftable : (string list, data) Hashtbl.t;    (* label values -> cells *)
  fmutex : Mutex.t;
  mutable foverflowed : bool;
  fdefault : data option;                    (* pre-interned [] series *)
  fenabled : bool Atomic.t;                  (* shared with the registry *)
  foverflow : int Atomic.t;                  (* shared with the registry *)
}

type t = {
  mutable rfams : fam list;                  (* reverse registration order *)
  rmutex : Mutex.t;
  renabled : bool Atomic.t;
  roverflow : int Atomic.t;
}

let create () = {
  rfams = [];
  rmutex = Mutex.create ();
  renabled = Atomic.make false;
  roverflow = Atomic.make 0;
}

let default = create ()

let set_enabled ?(registry = default) b = Atomic.set registry.renabled b
let enabled ?(registry = default) () = Atomic.get registry.renabled
let overflow_count ?(registry = default) () = Atomic.get registry.roverflow

let default_max_series = 64

type counter = fam
type gauge = fam
type histogram = fam

(* ---------- registration ---------- *)

let valid_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       s

let make_data kind bounds =
  match kind with
  | Counter_k -> Dcounter (new_cells ())
  | Gauge_k -> Dgauge (Atomic.make 0.0)
  | Histogram_k ->
    Dhist {
      bounds;
      bcells = Array.init (Array.length bounds) (fun _ -> new_cells ());
      hinf = new_cells ();
      hsum = new_cells ();
      hcount = new_cells ();
    }

let register ?(registry = default) ?(stable = true) ?(label_names = [])
    ?(max_series = default_max_series) ?(help = "") ~kind ~bounds name =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Obs.Metrics: invalid metric name %S" name);
  if kind = Counter_k
     && String.length name >= 6
     && String.sub name (String.length name - 6) 6 = "_total" then
    invalid_arg
      (Printf.sprintf
         "Obs.Metrics: counter %S must not end in _total (the suffix is added \
          at exposition time)" name);
  List.iter
    (fun l ->
       if not (valid_name l) || l = "le" then
         invalid_arg (Printf.sprintf "Obs.Metrics: invalid label name %S" l))
    label_names;
  let bounds = Array.of_list bounds in
  if kind = Histogram_k then begin
    if Array.length bounds = 0 then
      invalid_arg "Obs.Metrics: histogram needs at least one bucket";
    Array.iteri
      (fun i le ->
         if i > 0 && bounds.(i - 1) >= le then
           invalid_arg
             (Printf.sprintf
                "Obs.Metrics: histogram %S buckets must be strictly increasing"
                name))
      bounds
  end;
  Mutex.lock registry.rmutex;
  let existing = List.find_opt (fun f -> f.fname = name) registry.rfams in
  let fam =
    match existing with
    | Some f ->
      Mutex.unlock registry.rmutex;
      if f.fkind <> kind || f.flabel_names <> label_names
         || f.fstable <> stable || f.fbounds <> bounds then
        invalid_arg
          (Printf.sprintf
             "Obs.Metrics: %S already registered with a different shape" name);
      f
    | None ->
      let fdefault = if label_names = [] then Some (make_data kind bounds) else None in
      let f = {
        fname = name; fhelp = help; fkind = kind; fstable = stable;
        flabel_names = label_names; fmax_series = max_series; fbounds = bounds;
        ftable = Hashtbl.create 8; fmutex = Mutex.create ();
        foverflowed = false; fdefault;
        fenabled = registry.renabled; foverflow = registry.roverflow;
      } in
      (match fdefault with Some d -> Hashtbl.add f.ftable [] d | None -> ());
      registry.rfams <- f :: registry.rfams;
      Mutex.unlock registry.rmutex;
      f
  in
  fam

let counter ?registry ?stable ?label_names ?max_series ?help name : counter =
  register ?registry ?stable ?label_names ?max_series ?help
    ~kind:Counter_k ~bounds:[] name

let gauge ?registry ?stable ?label_names ?max_series ?help name : gauge =
  register ?registry ?stable ?label_names ?max_series ?help
    ~kind:Gauge_k ~bounds:[] name

let histogram ?registry ?stable ?label_names ?max_series ?help ~buckets name
  : histogram =
  register ?registry ?stable ?label_names ?max_series ?help
    ~kind:Histogram_k ~bounds:buckets name

let exponential_buckets ~start ~factor ~count =
  if start <= 0 || factor < 2 || count <= 0 then
    invalid_arg "Obs.Metrics.exponential_buckets";
  List.init count (fun i ->
      let rec pow acc n = if n = 0 then acc else pow (acc * factor) (n - 1) in
      pow start i)

(* ---------- recording ---------- *)

let get_series f labels =
  match f.fdefault, labels with
  | Some d, [] -> d
  | _ ->
    if List.length labels <> List.length f.flabel_names then
      invalid_arg
        (Printf.sprintf "Obs.Metrics: %S expects %d label value(s)" f.fname
           (List.length f.flabel_names));
    Mutex.lock f.fmutex;
    let d =
      match Hashtbl.find_opt f.ftable labels with
      | Some d -> d
      | None ->
        if Hashtbl.length f.ftable < f.fmax_series then begin
          let d = make_data f.fkind f.fbounds in
          Hashtbl.add f.ftable labels d;
          d
        end else begin
          ignore (Atomic.fetch_and_add f.foverflow 1);
          if not f.foverflowed then begin
            f.foverflowed <- true;
            Printf.eprintf
              "obs: metric %S exceeded %d label series; further label values \
               collapse into \"_overflow\"\n%!"
              f.fname f.fmax_series
          end;
          let key = List.map (fun _ -> "_overflow") labels in
          match Hashtbl.find_opt f.ftable key with
          | Some d -> d
          | None ->
            let d = make_data f.fkind f.fbounds in
            Hashtbl.add f.ftable key d;
            d
        end
    in
    Mutex.unlock f.fmutex;
    d

let inc ?(labels = []) ?(by = 1) (f : counter) =
  if Atomic.get f.fenabled then begin
    if by < 0 then invalid_arg "Obs.Metrics.inc: negative increment";
    match get_series f labels with
    | Dcounter c -> cells_add c by
    | _ -> assert false
  end

let set ?(labels = []) (f : gauge) v =
  if Atomic.get f.fenabled then
    match get_series f labels with
    | Dgauge g -> Atomic.set g v
    | _ -> assert false

let observe ?(labels = []) (f : histogram) v =
  if Atomic.get f.fenabled then
    match get_series f labels with
    | Dhist h ->
      let n = Array.length h.bounds in
      let rec place i =
        if i >= n then cells_add h.hinf 1
        else if v <= h.bounds.(i) then cells_add h.bcells.(i) 1
        else place (i + 1)
      in
      place 0;
      cells_add h.hsum v;
      cells_add h.hcount 1
    | _ -> assert false

(* ---------- scraping ---------- *)

type hist_snapshot = {
  le : int array;
  cumulative : int array;
  total : int;
  sum : int;
}

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of hist_snapshot

type series = {
  labels : (string * string) list;
  value : value;
}

type family = {
  name : string;
  help : string;
  kind : kind;
  stable : bool;
  overflowed : bool;
  series : series list;
}

let value_of_data = function
  | Dcounter c -> Counter_v (cells_sum c)
  | Dgauge g -> Gauge_v (Atomic.get g)
  | Dhist h ->
    let n = Array.length h.bounds in
    let cumulative = Array.make n 0 in
    let acc = ref 0 in
    for i = 0 to n - 1 do
      acc := !acc + cells_sum h.bcells.(i);
      cumulative.(i) <- !acc
    done;
    Histogram_v {
      le = Array.copy h.bounds;
      cumulative;
      total = !acc + cells_sum h.hinf;
      sum = cells_sum h.hsum;
    }

let snapshot ?(stable_only = false) ?(registry = default) () =
  Mutex.lock registry.rmutex;
  let fams = registry.rfams in
  Mutex.unlock registry.rmutex;
  fams
  |> List.filter (fun f -> (not stable_only) || f.fstable)
  |> List.map (fun f ->
      Mutex.lock f.fmutex;
      let rows = Hashtbl.fold (fun k d acc -> (k, d) :: acc) f.ftable [] in
      Mutex.unlock f.fmutex;
      let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
      {
        name = f.fname;
        help = f.fhelp;
        kind = f.fkind;
        stable = f.fstable;
        overflowed = f.foverflowed;
        series =
          List.map
            (fun (lv, d) ->
               { labels = List.combine f.flabel_names lv;
                 value = value_of_data d })
            rows;
      })
  |> List.sort (fun a b -> compare a.name b.name)

let reset ?(registry = default) () =
  Mutex.lock registry.rmutex;
  let fams = registry.rfams in
  Atomic.set registry.roverflow 0;
  Mutex.unlock registry.rmutex;
  List.iter
    (fun f ->
       Mutex.lock f.fmutex;
       Hashtbl.reset f.ftable;
       f.foverflowed <- false;
       (match f.fdefault with
        | Some d ->
          (match d with
           | Dcounter c -> cells_zero c
           | Dgauge g -> Atomic.set g 0.0
           | Dhist h ->
             Array.iter cells_zero h.bcells;
             cells_zero h.hinf; cells_zero h.hsum; cells_zero h.hcount);
          Hashtbl.add f.ftable [] d
        | None -> ());
       Mutex.unlock f.fmutex)
    fams

(* ---------- OpenMetrics text exposition ---------- *)

let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let kind_str = function
  | Counter_k -> "counter"
  | Gauge_k -> "gauge"
  | Histogram_k -> "histogram"

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let render_labels buf = function
  | [] -> ()
  | labels ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_char buf ',';
         Buffer.add_string buf k;
         Buffer.add_string buf "=\"";
         Buffer.add_string buf (escape_label_value v);
         Buffer.add_char buf '"')
      labels;
    Buffer.add_char buf '}'

let expose ?stable_only ?registry () =
  let fams = snapshot ?stable_only ?registry () in
  let buf = Buffer.create 4096 in
  let line name labels v =
    Buffer.add_string buf name;
    render_labels buf labels;
    Buffer.add_char buf ' ';
    Buffer.add_string buf v;
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun f ->
       if f.help <> "" then
         Buffer.add_string buf
           (Printf.sprintf "# HELP %s %s\n" f.name (escape_help f.help));
       Buffer.add_string buf
         (Printf.sprintf "# TYPE %s %s\n" f.name (kind_str f.kind));
       List.iter
         (fun s ->
            match s.value with
            | Counter_v v ->
              line (f.name ^ "_total") s.labels (string_of_int v)
            | Gauge_v v -> line f.name s.labels (float_str v)
            | Histogram_v h ->
              Array.iteri
                (fun i le ->
                   line (f.name ^ "_bucket")
                     (s.labels @ [ ("le", string_of_int le) ])
                     (string_of_int h.cumulative.(i)))
                h.le;
              line (f.name ^ "_bucket")
                (s.labels @ [ ("le", "+Inf") ])
                (string_of_int h.total);
              line (f.name ^ "_sum") s.labels (string_of_int h.sum);
              line (f.name ^ "_count") s.labels (string_of_int h.total))
         f.series)
    fams;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf
