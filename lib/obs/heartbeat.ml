(* Live-run heartbeat: a small status document republished atomically
   (tmp+rename, via [Fsatomic.write]) every K charged rounds and/or T
   wall-seconds.  Everything here runs on the host coordinator between
   quiescent engine rounds — the simulated stream (stats, telemetry,
   trace, metrics) is never touched, so a run with a heartbeat is
   byte-identical to one without, across domains / fast-forward /
   execution mode.

   JSON is hand-rolled on purpose: obs cannot depend on
   Congest.Telemetry.Json (congest depends on obs).  The key set and
   order are locked — test_report.ml carries the golden. *)

let schema = "heartbeat/v1"

type progress = {
  rounds : int;
  charged_rounds : int;
  messages : int;
  total_bits : int;
  phases_done : int;
  phases_total : int;
}

let zero_progress =
  {
    rounds = 0;
    charged_rounds = 0;
    messages = 0;
    total_bits = 0;
    phases_done = 0;
    phases_total = 0;
  }

type t = {
  path : string option;
  every_rounds : int;
  every_secs : float;
  on_publish : (progress -> unit) option;
  run_id : string;
  fingerprint : string;
  property : string;
  created : float;
  mutable sample : (unit -> progress) option;
  mutable base_rounds : int;
  mutable base_charged : int;
  mutable ticks : int;  (* live round ticks accumulated since [attach] *)
  mutable since_publish : int;
  mutable tick_calls : int;  (* stride counter for the wall-clock check *)
  mutable last_wall : float;
  mutable seq : int;
  mutable checkpoint : string option;
  mutable finished : bool;
  mutable warned : bool;
}

let create ?path ?(every_rounds = 8192) ?(every_secs = 1.0) ?on_publish
    ~run_id ~fingerprint ~property () =
  if every_rounds < 1 then invalid_arg "Heartbeat.create: every_rounds < 1";
  let now = Unix.gettimeofday () in
  {
    path;
    every_rounds;
    every_secs;
    on_publish;
    run_id;
    fingerprint;
    property;
    created = now;
    sample = None;
    base_rounds = 0;
    base_charged = 0;
    ticks = 0;
    since_publish = 0;
    tick_calls = 0;
    last_wall = now;
    seq = 0;
    checkpoint = None;
    finished = false;
    warned = false;
  }

let path t = t.path
let set_checkpoint t p = t.checkpoint <- Some p

let attach t ~sample =
  let s = sample () in
  t.sample <- Some sample;
  (* The sample only advances at primitive-run granularity; live engine
     ticks fill in between.  Recording the bases here makes resumed runs
     start from the checkpointed totals rather than zero. *)
  t.base_rounds <- s.rounds;
  t.base_charged <- s.charged_rounds;
  t.ticks <- 0

let current t =
  match t.sample with
  | None -> zero_progress
  | Some f ->
    let s = f () in
    {
      s with
      rounds = max s.rounds (t.base_rounds + t.ticks);
      charged_rounds = max s.charged_rounds (t.base_charged + t.ticks);
    }

let add_float b f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.1f" f)
  else Buffer.add_string b (Printf.sprintf "%.17g" f)

let add_metric_entries b =
  (* Stable families only: the projection is deterministic, so the
     heartbeat stays diffable across hosts.  Histograms flatten to
     [name_sum] / [name_count]; label sets render into the name the way
     the exposition format does. *)
  let first = ref true in
  let entry name v =
    if not !first then Buffer.add_char b ',';
    first := false;
    Buffer.add_string b "{\"name\":";
    Buffer.add_string b (Log.json_string name);
    Buffer.add_string b ",\"value\":";
    v ();
    Buffer.add_char b '}'
  in
  let series_name fam_name labels =
    match labels with
    | [] -> fam_name
    | labels ->
      let parts =
        List.map
          (fun (k, v) ->
            Printf.sprintf "%s=\"%s\"" k (Metrics.escape_label_value v))
          labels
      in
      Printf.sprintf "%s{%s}" fam_name (String.concat "," parts)
  in
  List.iter
    (fun (fam : Metrics.family) ->
      List.iter
        (fun (s : Metrics.series) ->
          let name = series_name fam.Metrics.name s.Metrics.labels in
          match s.Metrics.value with
          | Metrics.Counter_v n ->
            entry name (fun () -> Buffer.add_string b (string_of_int n))
          | Metrics.Gauge_v g -> entry name (fun () -> add_float b g)
          | Metrics.Histogram_v h ->
            entry (name ^ "_sum") (fun () ->
                Buffer.add_string b (string_of_int h.Metrics.sum));
            entry (name ^ "_count") (fun () ->
                Buffer.add_string b (string_of_int h.Metrics.total)))
        fam.Metrics.series)
    (Metrics.snapshot ~stable_only:true ())

let render t ~state ~verdict ~now (p : progress) =
  let b = Buffer.create 1024 in
  let _, phase = Log.context () in
  Buffer.add_string b "{\"schema\":";
  Buffer.add_string b (Log.json_string schema);
  Buffer.add_string b (Printf.sprintf ",\"seq\":%d" t.seq);
  Buffer.add_string b ",\"state\":";
  Buffer.add_string b (Log.json_string state);
  Buffer.add_string b ",\"verdict\":";
  (match verdict with
   | None -> Buffer.add_string b "null"
   | Some v -> Buffer.add_string b (Log.json_string v));
  Buffer.add_string b ",\"run_id\":";
  Buffer.add_string b (Log.json_string t.run_id);
  Buffer.add_string b ",\"fingerprint\":";
  Buffer.add_string b (Log.json_string t.fingerprint);
  Buffer.add_string b ",\"property\":";
  Buffer.add_string b (Log.json_string t.property);
  Buffer.add_string b ",\"phase\":";
  Buffer.add_string b (Log.json_string phase);
  Buffer.add_string b (Printf.sprintf ",\"phases_done\":%d" p.phases_done);
  Buffer.add_string b (Printf.sprintf ",\"phases_total\":%d" p.phases_total);
  Buffer.add_string b (Printf.sprintf ",\"rounds\":%d" p.rounds);
  Buffer.add_string b
    (Printf.sprintf ",\"charged_rounds\":%d" p.charged_rounds);
  Buffer.add_string b (Printf.sprintf ",\"messages\":%d" p.messages);
  Buffer.add_string b (Printf.sprintf ",\"total_bits\":%d" p.total_bits);
  Buffer.add_string b ",\"checkpoint\":";
  (match t.checkpoint with
   | None -> Buffer.add_string b "null"
   | Some c -> Buffer.add_string b (Log.json_string c));
  Buffer.add_string b ",\"wall_s\":";
  Buffer.add_string b (Printf.sprintf "%.6f" (now -. t.created));
  let gc = Gc.quick_stat () in
  Buffer.add_string b ",\"gc\":{\"minor_words\":";
  add_float b gc.Gc.minor_words;
  Buffer.add_string b
    (Printf.sprintf ",\"major_collections\":%d" gc.Gc.major_collections);
  Buffer.add_string b (Printf.sprintf ",\"heap_words\":%d" gc.Gc.heap_words);
  Buffer.add_string b "},\"metrics\":";
  if Metrics.enabled () then begin
    Buffer.add_char b '[';
    add_metric_entries b;
    Buffer.add_char b ']'
  end
  else Buffer.add_string b "null";
  Buffer.add_string b "}\n";
  Buffer.contents b

let publish_at t ~state ~verdict now =
  t.seq <- t.seq + 1;
  t.since_publish <- 0;
  t.last_wall <- now;
  let p = current t in
  (match t.path with
   | None -> ()
   | Some path -> (
     try Fsatomic.write path (render t ~state ~verdict ~now p)
     with Sys_error msg ->
       if not t.warned then begin
         t.warned <- true;
         Log.warnf ~fields:[ ("path", Log.S path) ]
           "heartbeat write failed: %s" msg
       end));
  match t.on_publish with None -> () | Some f -> f p

let publish t =
  if not t.finished then
    publish_at t ~state:"running" ~verdict:None (Unix.gettimeofday ())

let tick t ~rounds =
  if not t.finished then begin
    t.ticks <- t.ticks + rounds;
    t.since_publish <- t.since_publish + rounds;
    t.tick_calls <- t.tick_calls + 1;
    if t.since_publish >= t.every_rounds then publish t
    else if t.tick_calls land 63 = 0 then begin
      (* Check the clock only every 64 ticks: gettimeofday per round
         would be the dominant cost of the whole hook. *)
      let now = Unix.gettimeofday () in
      if now -. t.last_wall >= t.every_secs then
        publish_at t ~state:"running" ~verdict:None now
    end
  end

let finish t ~verdict =
  if not t.finished then begin
    publish_at t ~state:"done" ~verdict:(Some verdict) (Unix.gettimeofday ());
    t.finished <- true
  end
