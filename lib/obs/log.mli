(** Leveled structured logging.

    Two sinks, independently switchable:

    - a human line on [stderr] for every record at or above the
      current level (default {!Warn}), formatted
      [ [level] message (key=value, ...) ];
    - an optional JSONL stream ({!set_json}) carrying the same records
      plus timestamp, run id, phase and node context — one JSON object
      per line, safe to tail and to parse with [Report.Json_parse].

    The level gate applies to both sinks.  [Error] records are never
    suppressed.  All writes are mutex-serialised, so logging from
    worker domains is safe (the engine only logs from the
    coordinator, but tools need not care). *)

type level = Error | Warn | Info | Debug

val level_of_string : string -> (level, string) result
(** Accepts ["error"|"warn"|"warning"|"info"|"debug"] (case-insensitive). *)

val string_of_level : level -> string

val set_level : level -> unit
val level : unit -> level

val would_log : level -> bool
(** True when a record at this level would reach at least one sink —
    use to skip expensive message construction. *)

val set_json : string -> (unit, string) result
(** [set_json path] opens (truncates) [path] as the JSONL sink;
    ["-"] means stderr.  Returns [Error msg] if the file cannot be
    opened. *)

val close_json : unit -> unit
(** Flush and close the JSONL sink, if any.  Idempotent. *)

val set_context : ?run_id:string -> ?phase:string -> unit -> unit
(** Set (or, with [""], clear) the ambient run id / phase stamped on
    every subsequent JSONL record.  Omitted arguments are left
    unchanged. *)

val context : unit -> string * string
(** The current ambient [(run_id, phase)] pair — [""] for unset.
    {!Heartbeat} samples the phase from here, so the status file and
    the JSONL log always agree on where the run is. *)

val json_string : string -> string
(** Minimal RFC 8259 escaping of [s], double quotes included — the
    JSON string writer shared by obs modules that hand-roll their
    documents ([obs] cannot depend on [Congest.Telemetry.Json];
    congest depends on obs). *)

type field_value = S of string | I of int | F of float | B of bool
type field = string * field_value

val log : level -> ?node:int -> ?fields:field list -> string -> unit

val error : ?node:int -> ?fields:field list -> string -> unit
val warn : ?node:int -> ?fields:field list -> string -> unit
val info : ?node:int -> ?fields:field list -> string -> unit
val debug : ?node:int -> ?fields:field list -> string -> unit

val errorf :
  ?node:int -> ?fields:field list -> ('a, unit, string, unit) format4 -> 'a
val warnf :
  ?node:int -> ?fields:field list -> ('a, unit, string, unit) format4 -> 'a
val infof :
  ?node:int -> ?fields:field list -> ('a, unit, string, unit) format4 -> 'a
val debugf :
  ?node:int -> ?fields:field list -> ('a, unit, string, unit) format4 -> 'a
