open Graphlib

type phase_trace = {
  phase : int;
  cut_before : int;
  cut_after : int;
  max_diameter : int;
  max_tree_depth : int;
  parts : int;
  fd_super_rounds : int;
}

type result = {
  state : State.t;
  rejected : (int * string) list;
  phases : phase_trace list;
  rounds : int;
  nominal_rounds : int;
  degraded : string option;
}

(* Stable metrics: phase counts and durations are measured in simulated
   rounds, never wall clock. *)
let m_phases =
  Obs.Metrics.counter ~help:"Stage I phases executed" "stage1_phases"

let m_phase_rounds =
  Obs.Metrics.histogram
    ~help:"Simulated rounds per Stage I phase"
    ~buckets:(Obs.Metrics.exponential_buckets ~start:1 ~factor:2 ~count:20)
    "stage1_phase_rounds"

let phases_for ~eps ~alpha =
  let rate = 1.0 -. (1.0 /. float_of_int (12 * alpha)) in
  let t = log (eps /. 2.0) /. log rate in
  max 1 (int_of_float (ceil t))

(* Exact maximum induced-subgraph diameter over the current parts: BFS
   from every node, restricted to its part by comparing part roots.  The
   stamp array makes the scratch state reusable across sources without
   clearing, so the whole sweep allocates three arrays total instead of an
   induced subgraph per part. *)
let max_part_diameter st =
  let g = st.State.graph in
  let n = Graph.n g in
  let dist = Array.make n 0 in
  let stamp = Array.make n (-1) in
  let queue = Array.make n 0 in
  let best = ref 0 in
  for src = 0 to n - 1 do
    let root = (State.node st src).State.part_root in
    stamp.(src) <- src;
    dist.(src) <- 0;
    queue.(0) <- src;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      if dist.(u) > !best then best := dist.(u);
      Array.iter
        (fun v ->
          if stamp.(v) <> src && (State.node st v).State.part_root = root
          then begin
            stamp.(v) <- src;
            dist.(v) <- dist.(u) + 1;
            queue.(!tail) <- v;
            incr tail
          end)
        (Graph.neighbors g u)
    done
  done;
  !best

(* The fixed schedule of the paper for phase [i] (1-based): Theta (log n)
   super-rounds plus the merging sub-steps, each budgeted by the 4^(i-1)
   diameter bound. *)
let nominal_phase_rounds ~n ~phase =
  let d_nom = int_of_float (4.0 ** float_of_int (phase - 1)) in
  let per_step = (2 * d_nom) + 1 in
  let fd = Forest_decomp.super_rounds_for n in
  let cv = Cv_coloring.steps_for n in
  let merge_steps = (3 * (Merge.max_tree_height + 1)) + 12 in
  (fd + cv + merge_steps) * per_step

let run ?(alpha = 3) ?(stop_when_met = true) ?(measure_diameters = true)
    ?telemetry ?trace ?(domains = 1) ?(fast_forward = true) ?faults
    ?(mode = Congest.Compiled.Fiber) ?on_round ?state ?resume ?on_phase g ~eps
    =
  if not (eps > 0.0 && eps < 1.0) then invalid_arg "Stage1.run: eps in (0,1)";
  let st = match state with Some st -> st | None -> State.create g in
  st.State.telemetry <- telemetry;
  st.State.trace <- trace;
  st.State.domains <- domains;
  st.State.fast_forward <- fast_forward;
  st.State.faults <- faults;
  st.State.mode <- mode;
  st.State.on_round <- on_round;
  let faults_active = Congest.Faults.active faults in
  let n = Graph.n g and m = Graph.m g in
  let target = eps *. float_of_int m /. 2.0 in
  let t = phases_for ~eps ~alpha in
  let sr = Forest_decomp.super_rounds_for n in
  let phases = ref [] in
  let phase = ref 1 in
  (match resume with
  | Some (next_phase, phases_rev) ->
      if next_phase < 1 then invalid_arg "Stage1.run: resume phase < 1";
      phase := next_phase;
      phases := phases_rev
  | None -> ());
  let stop = ref false in
  let degraded = ref None in
  (try
     while (not !stop) && !phase <= t do
       let phase_label = Printf.sprintf "stage1-phase-%d" !phase in
       Option.iter
         (fun tel -> Congest.Telemetry.phase tel phase_label)
         telemetry;
       Option.iter (fun tr -> Congest.Trace.phase tr phase_label) trace;
       Obs.Log.set_context ~phase:phase_label ();
       let rounds_before = st.State.stats.Congest.Stats.rounds in
       let cut_before = State.cut_edges st in
       Prims.refresh_roots st;
       let budget = max 1 (State.max_depth st) in
       let fd_super_rounds =
         Forest_decomp.run st ~alpha ~super_rounds:sr ~budget
       in
       st.State.nominal_rounds <-
         st.State.nominal_rounds + nominal_phase_rounds ~n ~phase:!phase;
       if st.State.rejections <> [] then stop := true
       else begin
         Merge.run st ~budget;
         let cut_after = State.cut_edges st in
         phases :=
           {
             phase = !phase;
             cut_before;
             cut_after;
             max_diameter = (if measure_diameters then max_part_diameter st else -1);
             max_tree_depth = State.max_depth st;
             parts = List.length (State.parts st);
             fd_super_rounds;
           }
           :: !phases;
         if stop_when_met && float_of_int cut_after <= target then stop := true;
         incr phase;
         (* Phase boundary: every engine pool/arena is drained here (each
            primitive runs to quiescence), so the only live state is
            [st]'s plain data — the safe point for checkpoint hooks. *)
         match on_phase with
         | Some f when (not !stop) && !phase <= t -> f !phase !phases
         | _ -> ()
       end;
       (* Phase duration in *simulated* rounds — deterministic across
          [?domains] and fast-forward, so the histogram is a stable
          metric. *)
       if Obs.Metrics.enabled () then begin
         Obs.Metrics.inc m_phases;
         Obs.Metrics.observe m_phase_rounds
           (st.State.stats.Congest.Stats.rounds - rounds_before)
       end
     done
   with
  | Congest.Faults.Degraded msg -> degraded := Some msg
  | e when faults_active ->
      (* Under an active fault policy the emulation's lockstep assumptions
         no longer hold: a dropped or duplicated tree message surfaces as a
         protocol-level failure ([failwith]/[assert]) somewhere inside a
         primitive.  That is a degraded execution, never a verdict. *)
      degraded :=
        Some ("Stage I interrupted under faults: " ^ Printexc.to_string e));
  Obs.Log.set_context ~phase:"" ();
  {
    state = st;
    rejected = st.State.rejections;
    phases = List.rev !phases;
    rounds = st.State.stats.Congest.Stats.rounds;
    nominal_rounds = st.State.nominal_rounds;
    degraded = !degraded;
  }
