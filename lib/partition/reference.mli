(** Centralized reference implementation of Stage I, operating directly on
    the auxiliary weighted graphs [G_i] as the paper describes them
    (Sections 2.1.1–2.1.2), with the same deterministic tie-breaking as the
    distributed emulation: Barenboim–Elkin peeling with orientation by
    (deactivation round, root id), heaviest-out-edge selection with ties to
    the smaller root, the identical Cole–Vishkin iteration schedule, CHW
    marking, shallow-tree levels and star contraction.

    Because every choice is deterministic and mirrored, the emulation in
    {!Stage1} must produce *identical* partitions — the differential test
    the test suite runs on random planar inputs.  Disagreements indicate a
    bug in one of the two. *)

type result = {
  part : int array;  (** per vertex: part root id, [P_{t+1}] *)
  cuts : int list;  (** cut weight after each phase, chronological *)
  rejected : bool;  (** some auxiliary graph exceeded the arboricity bound *)
  phases : int;
}

(** Mirror of {!Stage1.run} (deterministic variant, [alpha = 3]). *)
val run :
  ?alpha:int -> ?stop_when_met:bool -> Graphlib.Graph.t -> eps:float -> result

(** {2 Centralized references for the property portfolio}

    Exact whole-graph decision procedures the tester differential suites
    compare against: one-sidedness (the property holds => the tester
    never Rejects) and evidence soundness (the tester Rejects => the
    property fails). *)

(** BFS 2-coloring over every component. *)
val is_bipartite : Graphlib.Graph.t -> bool

(** [m - (n - components)]: edges beyond a spanning forest — the exact
    number of deletions to reach cycle-freeness. *)
val excess_edges : Graphlib.Graph.t -> int

(** [excess_edges g = 0]. *)
val is_cycle_free : Graphlib.Graph.t -> bool
