(** Persistent per-node state threaded through the sub-protocols of the
    partition algorithm (Stage I of the tester, Section 2.1 of the paper).

    Each part [P_i^j] is identified by the id of its root node [r_i^j]; the
    spanning tree [T_i^j] is stored as parent pointers plus children lists
    (Lemma 6).  The forest-decomposition fields mirror the super-round
    emulation of Section 2.1.5 and are only meaningful at part roots. *)

(** The simulator engine instance all partition/tester code shares (so one
    preallocated {!Congest.Engine.Make.pool} serves every run). *)
module Eng : module type of Congest.Engine.Make (Msg)

(** The compiled (fiber-free) twin over the same message type; the
    lockstep {!Prims} primitives dispatch to it when {!t.mode} selects
    the compiled path (see {!Congest.Compiled}). *)
module Cmp : module type of Congest.Compiled.Make (Msg)

type node = {
  id : int;
  mutable part_root : int;
  mutable parent : int;  (** parent vertex in the part tree, [-1] at root *)
  mutable children : int list;
  mutable nbr_root : int array;
      (** per incidence index: the neighbor's part root, refreshed at each
          phase start *)
  (* Forest-decomposition (root-only) fields: *)
  mutable active : bool;
  mutable deact_round : int;  (** super-round at which the part deactivated *)
  mutable snapshot : (int * int) list;
      (** (neighbor part root, edge multiplicity) of parts active when this
          part deactivated — the out-edge candidates with weights *)
  mutable out_edges : (int * int) list;
      (** oriented out-edges (target part root, weight) *)
  (* Merging-step fields: *)
  mutable fsel_target : int;  (** selected out-edge target root, -1 = none *)
  mutable fsel_weight : int;
  mutable charge_node : int;
      (** designated node [u_i^j] in charge of the selected out-edge *)
  mutable charge_nbr : int;  (** its chosen neighbor [v_i^j] across the cut *)
  mutable charge_weight : int;
      (** at the charge node: the selected out-edge's weight *)
  mutable color : int;
      (** Cole–Vishkin color of the part; held by every member after the
          coloring's final broadcast *)
  mutable parent_color : int;  (** color of the F-parent part (root-only) *)
  mutable out_marked : bool;  (** the selected out-edge got marked *)
  mutable bdry_children : (int * int * int * int * bool) list;
      (** at a boundary node [v]: one entry per designated child edge whose
          cross endpoint is [v] —
          (child charge node, child part root, weight, child color,
           marked) *)
  mutable tlevel : int;  (** level within the shallow marked tree, -1 unset *)
  mutable w0 : int;  (** accumulated weight of even edges below (root-only) *)
  mutable w1 : int;  (** accumulated weight of odd edges below (root-only) *)
  mutable tbit : int;  (** contraction decision bit of this part's T-tree *)
  mutable contract : bool;  (** this part merges into its T-parent *)
  (* Scratch fields used by individual node programs: *)
  mutable scratch : int;
  mutable scratch2 : int;
  mutable scratch_list : (int * int) list;
}

type t = {
  graph : Graphlib.Graph.t;
  nodes : node array;
  stats : Congest.Stats.t;  (** accumulated over every engine run *)
  pool : Eng.pool;
      (** reusable engine delivery state — every {!Prims.run_program} over
          [graph] draws on it instead of allocating per run *)
  mutable rejections : (int * string) list;
      (** one-sided-error evidence collected so far, newest first *)
  mutable nominal_rounds : int;
      (** rounds the paper's fixed 4^i / Theta (log n) schedule would use
          for the work simulated so far (the simulator itself runs each
          sub-step only for the true part depth, for feasibility) *)
  mutable telemetry : Congest.Telemetry.t option;
      (** when set, every engine run through {!Prims} records its
          per-round series here (see {!Congest.Telemetry}) *)
  mutable trace : Congest.Trace.t option;
      (** when set, every engine run through {!Prims} appends its typed
          event records here on one continuous absolute-round timeline
          (see {!Congest.Trace}), and each primitive wraps itself in a
          labelled span *)
  mutable domains : int;
      (** OCaml domains every engine run through {!Prims} shards node
          stepping across (default 1 = serial; accounting is identical
          for any value — see {!Congest.Engine}) *)
  mutable fast_forward : bool;
      (** when [true] (the default) engine runs skip provably quiescent
          rounds in O(1); disable only to measure the optimisation's
          effect — accounting is identical either way *)
  mutable faults : Congest.Faults.policy option;
      (** when set to an active policy, every engine run through {!Prims}
          injects the deterministic fault schedule it describes; a run
          that cannot complete under it raises {!Congest.Faults.Degraded}
          rather than failing silently *)
  mutable mode : Congest.Compiled.mode;
      (** execution mode for the lockstep {!Prims} primitives (default
          [Fiber]); [Compiled]/[Auto] run them as fiber-free array passes
          when no faults and no trace are attached — accounting is
          byte-identical either way (see {!Congest.Compiled}).  General
          {!Prims.run_program} node programs always use the fiber
          engine. *)
  mutable cpool : Cmp.pool option;
      (** reusable compiled-path delivery state, allocated lazily by
          {!cmp_pool} on the first compiled run *)
  mutable on_round : (int -> unit) option;
      (** host-side per-round observer threaded to every engine run
          through {!Prims} (fiber and compiled alike): [f 1] per stepped
          round, [f delta] per fast-forwarded span.  Must not touch
          simulated state — drives {!Obs.Heartbeat} ticks. *)
}

(** Fresh state: singleton parts, every node the root of its own part. *)
val create : Graphlib.Graph.t -> t

(** Rebuild a state around [g] from previously captured pieces — the
    constructor behind checkpoint/resume.  The [nodes] array is adopted
    as-is (it must have been built against a graph with the same CSR
    layout, e.g. the same file reloaded); a fresh engine {!Eng.pool} is
    allocated, and the observer fields ([telemetry], [trace], [domains],
    [fast_forward], [faults]) reset to their {!create} defaults — callers
    reconfigure them afterwards exactly as after [create].

    Raises [Invalid_argument] if [Array.length nodes <> Graph.n g]. *)
val restore :
  Graphlib.Graph.t ->
  nodes:node array ->
  stats:Congest.Stats.t ->
  rejections:(int * string) list ->
  nominal_rounds:int ->
  t

(** The state's compiled-path pool, allocating it on first use. *)
val cmp_pool : t -> Cmp.pool

val node : t -> int -> node

(** [is_root st v] holds when [v] is its part's root. *)
val is_root : t -> int -> bool

(** Maximum depth of any part tree (0 for singleton parts). *)
val max_depth : t -> int

(** [parts st] lists the current parts as (root, members). *)
val parts : t -> (int * int list) list

(** Number of edges of the graph crossing between distinct parts. *)
val cut_edges : t -> int

(** Checks structural invariants: parent pointers form in-part trees rooted
    at the declared part roots, children lists are consistent, and every
    part is connected in the graph.  Raises [Failure] with a description on
    violation.  (Used heavily by the test suite.) *)
val check_invariants : t -> unit
