open Graphlib

type result = {
  part : int array;
  cuts : int list;
  rejected : bool;
  phases : int;
}

(* Auxiliary graph of a partition: adjacency with edge multiplicities,
   keyed by part roots. *)
let aux_graph g part =
  let w = Hashtbl.create 256 in
  Graph.iter_edges
    (fun _ u v ->
      let a = part.(u) and b = part.(v) in
      if a <> b then begin
        let key = (min a b, max a b) in
        Hashtbl.replace w key
          (1 + Option.value ~default:0 (Hashtbl.find_opt w key))
      end)
    g;
  let nbrs = Hashtbl.create 256 in
  let add a b x =
    Hashtbl.replace nbrs a
      ((b, x) :: Option.value ~default:[] (Hashtbl.find_opt nbrs a))
  in
  Hashtbl.iter
    (fun (a, b) x ->
      add a b x;
      add b a x)
    w;
  nbrs

let roots_of part =
  Array.to_list part |> List.sort_uniq compare

(* Barenboim–Elkin peeling: returns per-root (deact_round, out_edges) or
   None on rejection. *)
let peel nbrs roots ~alpha ~super_rounds =
  let deact = Hashtbl.create 64 in
  let degree_active r =
    List.filter
      (fun (q, _) -> not (Hashtbl.mem deact q))
      (Option.value ~default:[] (Hashtbl.find_opt nbrs r))
  in
  let l = ref 1 in
  let live = ref roots in
  while !live <> [] && !l <= super_rounds do
    let now =
      List.filter (fun r -> List.length (degree_active r) <= 3 * alpha) !live
    in
    (* snapshot first, deactivate simultaneously *)
    let snapshots = List.map (fun r -> (r, degree_active r)) now in
    List.iter (fun (r, snap) -> Hashtbl.replace deact r (!l, snap)) snapshots;
    live := List.filter (fun r -> not (Hashtbl.mem deact r)) !live;
    incr l
  done;
  if !live <> [] then None
  else
    Some
      (List.map
         (fun r ->
           let round, snap = Hashtbl.find deact r in
           let out =
             List.filter
               (fun (q, _) ->
                 let round_q, _ = Hashtbl.find deact q in
                 round_q > round || (round_q = round && r < q))
               snap
           in
           (r, round, out))
         roots)

(* The identical Cole–Vishkin schedule on the selected pseudo-forest. *)
let cv_colors n fsel roots =
  let color = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace color r r) roots;
  let parent_color r =
    match Hashtbl.find_opt fsel r with
    | Some (t, _) -> Hashtbl.find color t
    | None -> Hashtbl.find color r lxor 1
  in
  for _ = 1 to Cv_coloring.iterations_for n do
    let next =
      List.map
        (fun r -> (r, Cv_coloring.cv_step (Hashtbl.find color r) (parent_color r)))
        roots
    in
    List.iter (fun (r, c) -> Hashtbl.replace color r c) next
  done;
  List.iter
    (fun c ->
      (* shift-down *)
      let prev = Hashtbl.copy color in
      let shifted =
        List.map
          (fun r ->
            ( r,
              match Hashtbl.find_opt fsel r with
              | Some (t, _) -> Hashtbl.find prev t
              | None -> (Hashtbl.find prev r + 1) mod 3 ))
          roots
      in
      List.iter (fun (r, x) -> Hashtbl.replace color r x) shifted;
      (* recolor class c *)
      let cur = Hashtbl.copy color in
      List.iter
        (fun r ->
          if Hashtbl.find cur r = c then begin
            let forbidden =
              Hashtbl.find prev r
              ::
              (match Hashtbl.find_opt fsel r with
              | Some (t, _) -> [ Hashtbl.find cur t ]
              | None -> [])
            in
            let rec mex x = if List.mem x forbidden then mex (x + 1) else x in
            Hashtbl.replace color r (mex 0)
          end)
        roots)
    [ 5; 4; 3 ];
  let final = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace final r (Hashtbl.find color r + 1)) roots;
  final

let one_phase g ~alpha ~super_rounds part =
  let nbrs = aux_graph g part in
  let roots = roots_of part in
  match peel nbrs roots ~alpha ~super_rounds with
  | None -> None
  | Some oriented ->
      (* Sub-step 1: heaviest out-edge, ties to the smaller root id. *)
      let fsel = Hashtbl.create 64 in
      List.iter
        (fun (r, _, out) ->
          let best =
            List.fold_left
              (fun acc (q, x) ->
                match acc with
                | None -> Some (q, x)
                | Some (q', x') ->
                    if x > x' || (x = x' && q < q') then Some (q, x) else acc)
              None out
          in
          match best with
          | Some sel -> Hashtbl.replace fsel r sel
          | None -> ())
        oriented;
      (* Sub-step 2: coloring then marking. *)
      let color = cv_colors (Graph.n g) fsel roots in
      let in_children r =
        List.filter_map
          (fun q ->
            match Hashtbl.find_opt fsel q with
            | Some (t, x) when t = r -> Some (q, x)
            | _ -> None)
          roots
      in
      let out_marked = Hashtbl.create 64 in
      let in_marked = Hashtbl.create 64 in
      List.iter
        (fun r ->
          let children = in_children r in
          let sum_color c =
            List.fold_left
              (fun acc (q, x) ->
                if Hashtbl.find color q = c then acc + x else acc)
              0 children
          in
          match Hashtbl.find color r with
          | 1 ->
              let total = sum_color 1 + sum_color 2 + sum_color 3 in
              (match Hashtbl.find_opt fsel r with
              | Some (_, w_out) when w_out >= total ->
                  Hashtbl.replace out_marked r ()
              | _ ->
                  List.iter
                    (fun (q, _) -> Hashtbl.replace in_marked (q, r) ())
                    children)
          | 2 -> (
              let parent_is_3 =
                match Hashtbl.find_opt fsel r with
                | Some (t, _) -> Hashtbl.find color t = 3
                | None -> false
              in
              let s3 = sum_color 3 in
              match Hashtbl.find_opt fsel r with
              | Some (_, w_out) when parent_is_3 && w_out >= s3 ->
                  Hashtbl.replace out_marked r ()
              | _ ->
                  List.iter
                    (fun (q, _) ->
                      if Hashtbl.find color q = 3 then
                        Hashtbl.replace in_marked (q, r) ())
                    children)
          | _ -> ())
        roots;
      let edge_marked q =
        (* q's selected out-edge *)
        match Hashtbl.find_opt fsel q with
        | None -> false
        | Some (t, _) ->
            Hashtbl.mem out_marked q || Hashtbl.mem in_marked (q, t)
      in
      (* Sub-step 3: levels in the marked trees (T-root = unmarked out). *)
      let tlevel = Hashtbl.create 64 in
      List.iter
        (fun r -> if not (edge_marked r) then Hashtbl.replace tlevel r 0)
        roots;
      for step = 0 to Merge.max_tree_height do
        List.iter
          (fun q ->
            if (not (Hashtbl.mem tlevel q)) && edge_marked q then
              let t, _ = Hashtbl.find fsel q in
              match Hashtbl.find_opt tlevel t with
              | Some l when l = step -> Hashtbl.replace tlevel q (l + 1)
              | _ -> ())
          roots
      done;
      (* Even/odd sums per T-root, then the decision bit. *)
      let rec troot q =
        if edge_marked q then troot (fst (Hashtbl.find fsel q)) else q
      in
      let w0 = Hashtbl.create 64 and w1 = Hashtbl.create 64 in
      List.iter
        (fun q ->
          if edge_marked q then begin
            let root = troot q in
            let _, x = Hashtbl.find fsel q in
            let tbl = if Hashtbl.find tlevel q mod 2 = 0 then w0 else w1 in
            Hashtbl.replace tbl root
              (x + Option.value ~default:0 (Hashtbl.find_opt tbl root))
          end)
        roots;
      let bit root =
        let a = Option.value ~default:0 (Hashtbl.find_opt w0 root) in
        let b = Option.value ~default:0 (Hashtbl.find_opt w1 root) in
        if a > b then 0 else 1
      in
      (* Sub-step 4: contract matching-parity marked edges. *)
      let merges = Hashtbl.create 64 in
      List.iter
        (fun q ->
          if edge_marked q then begin
            let even_edge = Hashtbl.find tlevel q mod 2 = 0 in
            let b = bit (troot q) in
            if (even_edge && b = 0) || ((not even_edge) && b = 1) then
              Hashtbl.replace merges q (fst (Hashtbl.find fsel q))
          end)
        roots;
      let new_part = Array.copy part in
      Array.iteri
        (fun v r ->
          match Hashtbl.find_opt merges r with
          | Some target -> new_part.(v) <- target
          | None -> ())
        part;
      Some new_part

let cut_weight g part =
  Graph.fold_edges
    (fun acc _ u v -> if part.(u) <> part.(v) then acc + 1 else acc)
    0 g

let run ?(alpha = 3) ?(stop_when_met = true) g ~eps =
  let n = Graph.n g and m = Graph.m g in
  let super_rounds = Forest_decomp.super_rounds_for n in
  let t = Stage1.phases_for ~eps ~alpha in
  let target = eps *. float_of_int m /. 2.0 in
  let part = ref (Array.init n (fun v -> v)) in
  let cuts = ref [] in
  let rejected = ref false in
  let phase = ref 1 in
  let stop = ref false in
  while (not !stop) && !phase <= t do
    (match one_phase g ~alpha ~super_rounds !part with
    | None ->
        rejected := true;
        stop := true
    | Some next ->
        part := next;
        let cut = cut_weight g next in
        cuts := cut :: !cuts;
        if stop_when_met && float_of_int cut <= target then stop := true);
    incr phase
  done;
  {
    part = !part;
    cuts = List.rev !cuts;
    rejected = !rejected;
    phases = List.length !cuts;
  }

(* --- Centralized references for the property portfolio ------------- *)
(* Whole-graph, non-distributed decision procedures the differential
   suites compare the testers against.  All three are exact (no eps):
   the tester contract under test is one-sidedness (holds => the tester
   never Rejects) and evidence soundness (the tester Rejects => the
   exact property fails here). *)

let is_bipartite g =
  let n = Graph.n g in
  let color = Array.make n (-1) in
  let ok = ref true in
  let q = Queue.create () in
  for s = 0 to n - 1 do
    if color.(s) = -1 then begin
      color.(s) <- 0;
      Queue.add s q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        Array.iter
          (fun (v, _) ->
            if color.(v) = -1 then begin
              color.(v) <- 1 - color.(u);
              Queue.add v q
            end
            else if color.(v) = color.(u) then ok := false)
          (Graph.incident g u)
      done
    end
  done;
  !ok

let excess_edges g =
  let n = Graph.n g in
  let seen = Array.make (max 1 n) false in
  let components = ref 0 in
  let q = Queue.create () in
  for s = 0 to n - 1 do
    if not seen.(s) then begin
      incr components;
      seen.(s) <- true;
      Queue.add s q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        Array.iter
          (fun (v, _) ->
            if not seen.(v) then begin
              seen.(v) <- true;
              Queue.add v q
            end)
          (Graph.incident g u)
      done
    end
  done;
  (* m - (n - c) edges beyond a spanning forest: the exact number of
     deletions to reach cycle-freeness. *)
  Graph.m g - (n - !components)

let is_cycle_free g = excess_edges g = 0
