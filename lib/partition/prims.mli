(** Tree and boundary communication primitives of the Stage I emulation.

    Every function executes one complete CONGEST protocol over the whole
    network (an {!Congest.Engine.Make.run}) in which all nodes follow the
    same fixed round schedule, so chaining primitives keeps every node in
    lockstep — exactly the fixed-budget scheduling the paper uses (it
    budgets each emulated super-round by the [4^i] diameter bound; we
    budget by the true maximum part depth and account the nominal schedule
    separately).

    Round statistics accumulate into [st.stats].  When [st.trace] is set,
    each primitive wraps its engine run in a {!Congest.Trace.span} named
    after itself ("refresh_roots", "bcast", "converge", "boundary"), and
    the run's events land on the trace's continuous timeline. *)

module Eng : sig
  type ctx

  type 'o result = {
    outputs : 'o option array;
    rejections : (int * int * string) list;  (** (round, node, reason) *)
    failures : (int * int * exn) list;  (** (round, node, exn) *)
    stats : Congest.Stats.t;
    completed : bool;
  }
end

(** One round: every node tells every neighbor its current part root;
    updates [nbr_root]. *)
val refresh_roots : State.t -> unit

(** [bcast st ~budget ~tag ~at_root ~on_receive] sends a payload from each
    part root down its tree.  [at_root nd] produces the part's payload
    ([None] = this part stays silent); [on_receive] fires at every node of
    a broadcasting part, the root included.  [budget] must be at least the
    maximum part-tree depth. *)
val bcast :
  State.t ->
  budget:int ->
  tag:int ->
  at_root:(State.node -> int list option) ->
  on_receive:(State.node -> int list -> unit) ->
  unit

(** [converge st ~budget ~tag ~init ~combine ~encode ~decode ~at_root]
    aggregates a value from the leaves of every part tree to its root:
    each node starts from [init nd], combines in its children's values, and
    forwards; the root's total is delivered to [at_root].  [budget] must be
    at least the maximum part-tree depth. *)
val converge :
  State.t ->
  budget:int ->
  tag:int ->
  init:(State.node -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  encode:('a -> int list) ->
  decode:(int list -> 'a) ->
  at_root:(State.node -> 'a -> unit) ->
  unit

(** One round of cross-part messaging: [payload nd ~port ~nbr] is consulted
    for every incident edge leading outside the part; deliveries invoke
    [on_receive nd ~nbr payload]. *)
val boundary :
  State.t ->
  tag:int ->
  payload:(State.node -> port:int -> nbr:int -> int list option) ->
  on_receive:(State.node -> nbr:int -> int list -> unit) ->
  unit

(** [run_program st program] escape hatch: run an arbitrary node program
    over the state's graph, accumulating stats.  [program] receives the
    engine context and this node's state.  [seed] feeds the per-node
    random states.  When [st.faults] is an active policy the engine
    injects its fault schedule; a run that cannot complete under it (a
    crash-stopped node, or [max_rounds]) raises
    {!Congest.Faults.Degraded} after still accumulating the run's stats. *)
val run_program :
  ?seed:int -> State.t -> (Eng.ctx -> State.node -> unit) -> unit

(** Per-node random state (valid inside [run_program]). *)
val rng : Eng.ctx -> Random.State.t

(** Node-level API usable inside [run_program]. *)
val sync : Eng.ctx -> (int * Msg.t) list

(** [wait ctx k]: park until the first arrival or for [k] rounds,
    whichever comes first (see {!Congest.Engine.Make.wait}); prefer it
    over a [k]-iteration [sync] loop so quiet spans can be
    fast-forwarded. *)
val wait : Eng.ctx -> int -> (int * Msg.t) list

(** Current round number inside a run. *)
val round : Eng.ctx -> int

(** [wait_rounds ctx ~budget on_inbox] runs the node for exactly [budget]
    further rounds, invoking [on_inbox] on every non-empty inbox and
    parking it in between.  Drop-in replacement for a [budget]-iteration
    [sync] loop whose empty-inbox iterations are no-ops: the node observes
    the same arrivals in the same rounds and finishes in the same round,
    but quiet spans become fast-forwardable. *)
val wait_rounds :
  Eng.ctx -> budget:int -> ((int * Msg.t) list -> unit) -> unit

val send : Eng.ctx -> dest:int -> Msg.t -> unit

val reject : Eng.ctx -> string -> unit
