open Graphlib

module Eng = State.Eng
module Cmp = State.Cmp

let sync = Eng.sync
let wait = Eng.wait
let round = Eng.round
let send = Eng.send
let reject = Eng.reject
let rng = Eng.rng

(* Arrival-driven budget loop: call [on_inbox] for each non-empty inbox
   until [budget] rounds have passed, parking the node in between (so the
   engine can fast-forward network-wide quiet spans).  Observationally
   identical to [budget] iterations of [sync] when the processing of an
   empty inbox is a no-op — which is the only sound way to use it. *)
let wait_rounds ctx ~budget on_inbox =
  let deadline = Eng.round ctx + budget in
  let rec pump () =
    let left = deadline - Eng.round ctx in
    if left > 0 then begin
      (match Eng.wait ctx left with [] -> () | inbox -> on_inbox inbox);
      pump ()
    end
  in
  pump ()

(* [traced st label f] wraps one primitive's engine run in a trace span
   when the state carries a trace; spans nest under the current trace
   phase and cost nothing when tracing is off. *)
let traced (st : State.t) label f =
  match st.State.trace with
  | Some tr -> Congest.Trace.span tr label f
  | None -> f ()

let run_program ?(seed = 0) (st : State.t) program =
  let res =
    Eng.run ~seed ?telemetry:st.State.telemetry ?trace:st.State.trace
      ~domains:st.State.domains ~fast_forward:st.State.fast_forward
      ?faults:st.State.faults ?on_round:st.State.on_round
      ~pool:st.State.pool st.State.graph
      (fun ctx -> program ctx (State.node st (Eng.my_id ctx)))
  in
  (* Charge before judging completion: a degraded run's rounds and fault
     counters must still land in [st.stats] so higher layers can report
     honestly what happened on the wire. *)
  Congest.Stats.add_into st.State.stats res.Eng.stats;
  if not res.Eng.completed then
    if Congest.Faults.active st.State.faults then
      raise
        (Congest.Faults.Degraded
           "Prims: node program did not complete under fault injection")
    else failwith "Prims: node program did not complete";
  (* Keep every (round, node, reason) entry: identical rejections from
     different rounds must not collapse (display paths dedup later). *)
  st.State.rejections <-
    List.map (fun (_, v, reason) -> (v, reason)) res.Eng.rejections
    @ st.State.rejections

(* The four lockstep primitives below ([refresh_roots], [bcast],
   [converge], [boundary]) each exist twice: the fiber program above is
   the reference, and a compiled twin runs the same per-round logic
   through [Congest.Compiled] — flat array passes, no fibers — with
   byte-identical Stats/Telemetry (the dispatch is invisible to
   callers).  General [run_program] node programs always stay on the
   fiber engine: they can wait at arbitrary nesting depths, which is
   exactly what the compiled shape gives up. *)
let compiled_active (st : State.t) =
  Congest.Compiled.pick st.State.mode
    ~faults:(Congest.Faults.active st.State.faults)

(* [run_program]'s compiled counterpart.  Faults are never active here
   ([compiled_active] excludes them), so an incomplete run is a plain
   budget failure, never a Degraded verdict. *)
let run_compiled (st : State.t) ~start ~resume =
  let res =
    Cmp.run ?telemetry:st.State.telemetry ?trace:st.State.trace
      ~fast_forward:st.State.fast_forward ?on_round:st.State.on_round
      ~pool:(State.cmp_pool st) st.State.graph ~start ~resume
  in
  Congest.Stats.add_into st.State.stats res.Cmp.stats;
  if not res.Cmp.completed then failwith "Prims: node program did not complete";
  st.State.rejections <-
    List.map (fun (_, v, reason) -> (v, reason)) res.Cmp.rejections
    @ st.State.rejections

let refresh_roots_compiled (st : State.t) =
  let g = st.State.graph in
  run_compiled st
    ~start:(fun ctx v ->
      let nd = State.node st v in
      Graph.iter_incident g v (fun nbr e ->
          Cmp.send_port ctx ~dest:nbr ~eid:e (Msg.Root nd.State.part_root));
      Cmp.Park 1)
    ~resume:(fun _ctx v inbox ->
      let nd = State.node st v in
      (* Inbox senders arrive in ascending order, matching port order, so
         one pointer walks both in a single merged pass (no [incident]
         allocation on this path). *)
      let port = ref 0 in
      List.iter
        (fun (from, msg) ->
          match msg with
          | Msg.Root r ->
              while Graph.nbr g v !port <> from do
                incr port
              done;
              nd.State.nbr_root.(!port) <- r
          | _ -> assert false)
        inbox;
      Cmp.Halt)

let refresh_roots st =
  traced st "refresh_roots" @@ fun () ->
  if compiled_active st then refresh_roots_compiled st
  else
    run_program st (fun ctx nd ->
      Array.iter
        (fun (nbr, _) -> Eng.send ctx ~dest:nbr (Msg.Root nd.State.part_root))
        (Graph.incident st.State.graph nd.State.id);
      let inbox = Eng.sync ctx in
      let inc = Graph.incident st.State.graph nd.State.id in
      (* Inbox senders arrive in ascending order, matching [inc]'s sort
         order, so one pointer walks both in a single merged pass. *)
      let port = ref 0 in
      List.iter
        (fun (from, msg) ->
          match msg with
          | Msg.Root r ->
              while fst inc.(!port) <> from do
                incr port
              done;
              nd.State.nbr_root.(!port) <- r
          | _ -> assert false)
        inbox)

let bcast_compiled (st : State.t) ~budget ~tag ~at_root ~on_receive =
  let relay ctx nd payload =
    List.iter
      (fun c -> Cmp.send ctx ~dest:c (Msg.Down (tag, payload)))
      nd.State.children
  in
  run_compiled st
    ~start:(fun ctx v ->
      let nd = State.node st v in
      (if State.is_root st v then
         match at_root nd with
         | Some payload ->
             on_receive nd payload;
             relay ctx nd payload
         | None -> ());
      if budget > 0 then Cmp.Park budget else Cmp.Halt)
    ~resume:(fun ctx v inbox ->
      let nd = State.node st v in
      List.iter
        (fun (from, msg) ->
          match msg with
          | Msg.Down (t, payload) ->
              if t <> tag then
                failwith
                  (Printf.sprintf "bcast: lockstep violation (tag %d vs %d)" t
                     tag);
              assert (from = nd.State.parent);
              on_receive nd payload;
              relay ctx nd payload
          | _ -> assert false)
        inbox;
      let left = budget - Cmp.round ctx in
      if left > 0 then Cmp.Park left else Cmp.Halt)

let bcast st ~budget ~tag ~at_root ~on_receive =
  traced st "bcast" @@ fun () ->
  if compiled_active st then bcast_compiled st ~budget ~tag ~at_root ~on_receive
  else
    run_program st (fun ctx nd ->
      let relay payload =
        List.iter
          (fun c -> Eng.send ctx ~dest:c (Msg.Down (tag, payload)))
          nd.State.children
      in
      (if State.is_root st nd.State.id then
         match at_root nd with
         | Some payload ->
             on_receive nd payload;
             relay payload
         | None -> ());
      (* Wait out the budget instead of syncing [budget] times: the only
         rounds that change anything are the ones a [Down] arrives in, so
         the engine may park this node (and fast-forward whole-network
         quiet spans) without altering the round schedule — every node
         still finishes exactly at round [budget]. *)
      wait_rounds ctx ~budget
        (List.iter (fun (from, msg) ->
             match msg with
             | Msg.Down (t, payload) ->
                 if t <> tag then
                   failwith
                     (Printf.sprintf "bcast: lockstep violation (tag %d vs %d)"
                        t tag);
                 assert (from = nd.State.parent);
                 on_receive nd payload;
                 relay payload
             | _ -> assert false)))

let converge_compiled (st : State.t) ~budget ~tag ~init ~combine ~encode
    ~decode ~at_root =
  let n = Graph.n st.State.graph in
  let pending = Array.make n 0 in
  let accs = Array.make n None in
  let sent = Bytes.make n '\000' in
  let maybe_send ctx v nd =
    if pending.(v) = 0 && Bytes.get sent v = '\000' then begin
      Bytes.set sent v '\001';
      let acc = Option.get accs.(v) in
      if nd.State.parent >= 0 then
        Cmp.send ctx ~dest:nd.State.parent (Msg.Up (tag, encode acc))
      else at_root nd acc
    end
  in
  run_compiled st
    ~start:(fun ctx v ->
      let nd = State.node st v in
      pending.(v) <- List.length nd.State.children;
      accs.(v) <- Some (init nd);
      maybe_send ctx v nd;
      if budget > 0 then Cmp.Park budget
      else if Bytes.get sent v = '\000' then
        failwith "converge: budget too small for tree depth"
      else Cmp.Halt)
    ~resume:(fun ctx v inbox ->
      let nd = State.node st v in
      (* As in the fiber twin's [wait_rounds]: the processing hook only
         runs on a non-empty inbox (a deadline wake-up with no traffic
         changes nothing). *)
      (if inbox <> [] then begin
         List.iter
           (fun (from, msg) ->
             match msg with
             | Msg.Up (t, payload) ->
                 if t <> tag then
                   failwith
                     (Printf.sprintf
                        "converge: lockstep violation (tag %d vs %d)" t tag);
                 if not (List.mem from nd.State.children) then
                   failwith "converge: message from non-child";
                 accs.(v) <- Some (combine (Option.get accs.(v)) (decode payload));
                 pending.(v) <- pending.(v) - 1
             | _ -> assert false)
           inbox;
         maybe_send ctx v nd
       end);
      let left = budget - Cmp.round ctx in
      if left > 0 then Cmp.Park left
      else if Bytes.get sent v = '\000' then
        failwith "converge: budget too small for tree depth"
      else Cmp.Halt)

let converge st ~budget ~tag ~init ~combine ~encode ~decode ~at_root =
  traced st "converge" @@ fun () ->
  if compiled_active st then
    converge_compiled st ~budget ~tag ~init ~combine ~encode ~decode ~at_root
  else
    run_program st (fun ctx nd ->
      let pending = ref (List.length nd.State.children) in
      let acc = ref (init nd) in
      let sent = ref false in
      let maybe_send () =
        if !pending = 0 && not !sent then begin
          sent := true;
          if nd.State.parent >= 0 then
            Eng.send ctx ~dest:nd.State.parent (Msg.Up (tag, encode !acc))
          else at_root nd !acc
        end
      in
      maybe_send ();
      (* As in [bcast]: [maybe_send] can only newly fire on a round an
         [Up] arrives (the initial call above covers leaves), so waiting
         until the next arrival or the deadline preserves the message
         schedule exactly. *)
      wait_rounds ctx ~budget (fun inbox ->
          List.iter
            (fun (from, msg) ->
              match msg with
              | Msg.Up (t, payload) ->
                  if t <> tag then
                    failwith
                      (Printf.sprintf
                         "converge: lockstep violation (tag %d vs %d)" t tag);
                  if not (List.mem from nd.State.children) then
                    failwith "converge: message from non-child";
                  acc := combine !acc (decode payload);
                  decr pending
              | _ -> assert false)
            inbox;
          maybe_send ());
      if not !sent then failwith "converge: budget too small for tree depth")

let boundary_compiled (st : State.t) ~tag ~payload ~on_receive =
  let g = st.State.graph in
  run_compiled st
    ~start:(fun ctx v ->
      let nd = State.node st v in
      let deg = Graph.degree g v in
      for port = 0 to deg - 1 do
        if nd.State.nbr_root.(port) <> nd.State.part_root then begin
          let nbr = Graph.nbr g v port in
          match payload nd ~port ~nbr with
          | Some pl ->
              Cmp.send_port ctx ~dest:nbr
                ~eid:(Graph.incident_eid g v port)
                (Msg.Bdry (tag, pl))
          | None -> ()
        end
      done;
      Cmp.Park 1)
    ~resume:(fun _ctx v inbox ->
      let nd = State.node st v in
      List.iter
        (fun (from, msg) ->
          match msg with
          | Msg.Bdry (t, pl) ->
              if t <> tag then
                failwith
                  (Printf.sprintf "boundary: lockstep violation (tag %d vs %d)"
                     t tag);
              on_receive nd ~nbr:from pl
          | _ -> assert false)
        inbox;
      Cmp.Halt)

let boundary st ~tag ~payload ~on_receive =
  traced st "boundary" @@ fun () ->
  if compiled_active st then boundary_compiled st ~tag ~payload ~on_receive
  else
    run_program st (fun ctx nd ->
      let inc = Graph.incident st.State.graph nd.State.id in
      Array.iteri
        (fun port (nbr, _) ->
          if nd.State.nbr_root.(port) <> nd.State.part_root then
            match payload nd ~port ~nbr with
            | Some pl -> Eng.send ctx ~dest:nbr (Msg.Bdry (tag, pl))
            | None -> ())
        inc;
      let inbox = Eng.sync ctx in
      List.iter
        (fun (from, msg) ->
          match msg with
          | Msg.Bdry (t, pl) ->
              if t <> tag then
                failwith
                  (Printf.sprintf "boundary: lockstep violation (tag %d vs %d)"
                     t tag);
              on_receive nd ~nbr:from pl
          | _ -> assert false)
        inbox)
