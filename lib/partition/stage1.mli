(** Stage I of the tester (Section 2.1): the deterministic partition
    algorithm.  Runs [t = O(log 1/eps)] phases of forest decomposition plus
    merging, producing connected parts of poly(1/eps) diameter such that —
    when the input graph is planar, or more generally of auxiliary
    arboricity at most [alpha] throughout — the number of edges crossing
    between parts is at most [eps * m / 2].

    When some auxiliary graph has arboricity above [alpha], at least one
    part root rejects; the returned trace says which.  (One-sided: planar
    inputs never reject.) *)

type phase_trace = {
  phase : int;
  cut_before : int;  (** inter-part edges entering the phase *)
  cut_after : int;
  max_diameter : int;  (** max part diameter after the phase *)
  max_tree_depth : int;
  parts : int;  (** parts after the phase *)
  fd_super_rounds : int;  (** super-rounds the peeling actually took *)
}

type result = {
  state : State.t;  (** final per-node state (partition + trees) *)
  rejected : (int * string) list;  (** non-empty = evidence found *)
  phases : phase_trace list;  (** chronological *)
  rounds : int;  (** simulator rounds actually executed *)
  nominal_rounds : int;
      (** rounds of the paper's fixed schedule ([Theta (log n)] super-rounds
          per phase, each budgeted by the [4^i] diameter bound) *)
  degraded : string option;
      (** [Some reason] when an active fault policy prevented the emulation
          from completing (crash-stopped node, broken lockstep assumption);
          the partial [state]/[phases] describe the work done before the
          breakdown, and [rejected] must not be trusted as evidence *)
}

(** Maximum number of phases for a distance parameter [eps]:
    [(1 - 1/(12 alpha))^t <= eps / 2]. *)
val phases_for : eps:float -> alpha:int -> int

(** [run ?alpha ?stop_when_met g ~eps] executes Stage I.

    @param alpha arboricity bound to verify (default 3 — planar).
    @param stop_when_met stop as soon as the cut is at most
           [eps * m / 2] (default [true]; the paper always runs the full
           [t] phases, which its worst-case analysis needs, but stopping
           early only removes no-op phases on real inputs — set [false]
           to force the full schedule).
    @param measure_diameters compute each phase's exact maximum part
           diameter for the trace (default [true]; all-pairs BFS per part
           — disable on large inputs, the trace then records [-1]).
    @param telemetry record a per-round series for every engine run, with
           one {!Congest.Telemetry} phase per partition phase
           (["stage1-phase-<i>"]).
    @param trace record typed per-event data for every engine run (see
           {!Congest.Trace}), with one trace phase per partition phase
           (same ["stage1-phase-<i>"] labels as telemetry) and one span
           per primitive.
    @param domains shard every engine run's node stepping across this many
           OCaml domains (default 1; the result is identical for any
           value — see {!Congest.Engine}).
    @param fast_forward skip provably quiescent rounds in O(1) (default
           [true]; accounting is identical either way — disable only to
           measure the optimisation).
    @param faults inject a deterministic fault schedule into every engine
           run (see {!Congest.Faults}).  A fault-broken execution returns
           with [degraded = Some _] instead of raising; rejections found
           under faults are not trustworthy evidence.
    @param on_round host-side observer forwarded to every engine run (see
           {!Congest.Engine.Make.run}): [f 1] per stepped round,
           [f delta] per fast-forwarded span.  Must not touch simulated
           state; drives {!Obs.Heartbeat} ticks.
    @param mode execution mode for the lockstep primitives (default
           [Fiber]): [Compiled]/[Auto] run them as fiber-free array
           passes when no faults and no trace are attached, with
           byte-identical results, Stats and Telemetry (see
           {!Congest.Compiled}).
    @param state run on this pre-built {!State.t} instead of
           [State.create g] — the resume half of checkpointing (restore a
           state with {!State.restore}, then pass it here together with
           [?resume]).  The observer fields of [state] are overwritten
           from this call's [?telemetry]/[?trace]/[?domains]/
           [?fast_forward]/[?faults] arguments as usual.
    @param resume [(next_phase, phases_rev)]: start the phase loop at
           [next_phase] (1-based) with the reverse-chronological phase
           traces accumulated so far — exactly the pair an [?on_phase]
           callback received.  Only meaningful together with [?state].
    @param on_phase called at the end of every completed phase (after
           merging, before the next phase starts) with [(next_phase,
           phases_rev)] — the arguments that, fed back through [?resume]
           on a state captured at that moment, continue the run
           identically.  Not called for the final phase of a run that is
           about to return (target met, rejection, or phase budget
           exhausted).  At the callback point all engine pools are
           quiescent, so the {!State.t} contains only plain marshal-safe
           data. *)
val run :
  ?alpha:int ->
  ?stop_when_met:bool ->
  ?measure_diameters:bool ->
  ?telemetry:Congest.Telemetry.t ->
  ?trace:Congest.Trace.t ->
  ?domains:int ->
  ?fast_forward:bool ->
  ?faults:Congest.Faults.policy ->
  ?mode:Congest.Compiled.mode ->
  ?on_round:(int -> unit) ->
  ?state:State.t ->
  ?resume:int * phase_trace list ->
  ?on_phase:(int -> phase_trace list -> unit) ->
  Graphlib.Graph.t ->
  eps:float ->
  result
