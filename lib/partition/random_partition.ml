open Graphlib

type result = {
  state : State.t;
  phases : int;
  rounds : int;
  nominal_rounds : int;
  cut : int;
}

let trials_for ~delta =
  1 + int_of_float (ceil (log (1.0 /. delta)))

(* One uniform draw of a cut edge incident to each part (Section 4.1):
   every boundary node proposes a uniform choice among its own cut edges,
   and proposals merge up the tree with probability proportional to the
   number of edges they represent.  The root learns (edge endpoint inside,
   endpoint outside, target part root, total cut degree). *)
let uniform_draw st ~budget ~trial ~seed =
  let tag = 9000 + trial in
  Array.iter (fun nd -> nd.State.scratch_list <- []) st.State.nodes;
  Prims.run_program st ~seed (fun ctx nd ->
      let rng = Random.State.make [| seed; nd.State.id; trial; 0xd4aa |] in
      (* Local uniform choice among this node's cut edges. *)
      let cut_edges = ref [] in
      Array.iteri
        (fun port (nbr, _) ->
          if nd.State.nbr_root.(port) <> nd.State.part_root then
            cut_edges := (nbr, nd.State.nbr_root.(port)) :: !cut_edges)
        (Graph.incident st.State.graph nd.State.id);
      let own =
        match !cut_edges with
        | [] -> None
        | l ->
            let k = List.length l in
            let nbr, troot = List.nth l (Random.State.int rng k) in
            Some (nd.State.id, nbr, troot, k)
      in
      let pending = ref (List.length nd.State.children) in
      let acc = ref own in
      let sent = ref false in
      let merge a b =
        match (a, b) with
        | None, x | x, None -> x
        | Some (_, _, _, ca), Some (_, _, _, cb) ->
            let total = ca + cb in
            let pick_a = Random.State.int rng total < ca in
            let u, v, t, _ = if pick_a then Option.get a else Option.get b in
            Some (u, v, t, total)
      in
      let payload = function
        | None -> []
        | Some (u, v, t, c) -> [ u; v; t; c ]
      in
      let maybe_send () =
        if !pending = 0 && not !sent then begin
          sent := true;
          if nd.State.parent >= 0 then
            Prims.send ctx ~dest:nd.State.parent (Msg.Up (tag, payload !acc))
          else
            (* Root: record the draw. *)
            nd.State.scratch_list <-
              (match !acc with
              | None -> []
              | Some (u, v, t, c) -> [ (u, v); (t, c) ])
        end
      in
      maybe_send ();
      Prims.wait_rounds ctx ~budget (fun inbox ->
          List.iter
            (fun (_, msg) ->
              match msg with
              | Msg.Up (t, pl) when t = tag ->
                  let v =
                    match pl with
                    | [] -> None
                    | [ u; v; tr; c ] -> Some (u, v, tr, c)
                    | _ -> assert false
                  in
                  acc := merge !acc v;
                  decr pending
              | _ -> assert false)
            inbox;
          maybe_send ());
      if not !sent then failwith "Random_partition: draw budget too small")

(* Weighted-edge selection: [s] uniform draws per part, then the heaviest
   drawn auxiliary edge (weight = cut multiplicity to that target part)
   becomes the part's selection. *)
let weighted_selection st ~budget ~trials ~seed =
  let draws = Hashtbl.create 64 in
  for trial = 1 to trials do
    uniform_draw st ~budget ~trial ~seed;
    Array.iter
      (fun nd ->
        if State.is_root st nd.State.id then
          match nd.State.scratch_list with
          | [ _; (troot, _) ] ->
              let cur =
                Option.value ~default:[] (Hashtbl.find_opt draws nd.State.id)
              in
              if not (List.mem troot cur) then
                Hashtbl.replace draws nd.State.id (troot :: cur)
          | [] -> ()
          | _ -> assert false)
      st.State.nodes
  done;
  (* Weigh the drawn candidates: broadcast the candidate list, count
     matching cut edges per candidate, sum up the tree. *)
  Array.iter (fun nd -> nd.State.scratch_list <- [] ) st.State.nodes;
  Prims.bcast st ~budget ~tag:9500
    ~at_root:(fun nd ->
      match Hashtbl.find_opt draws nd.State.id with
      | Some (_ :: _ as cands) -> Some cands
      | _ -> None)
    ~on_receive:(fun nd cands ->
      nd.State.scratch_list <- List.map (fun t -> (t, 0)) cands);
  let count_for nd troot =
    let c = ref 0 in
    Array.iteri
      (fun port _ -> if nd.State.nbr_root.(port) = troot then incr c)
      nd.State.nbr_root;
    !c
  in
  Prims.converge st ~budget ~tag:9501
    ~init:(fun nd ->
      List.map (fun (t, _) -> (t, count_for nd t)) nd.State.scratch_list)
    ~combine:(fun a b ->
      if a = [] then b
      else if b = [] then a
      else
        List.map (fun (t, ca) -> (t, ca + List.assoc t b)) a)
    ~encode:(fun l -> List.concat_map (fun (t, c) -> [ t; c ]) l)
    ~decode:(fun l ->
      let rec go = function
        | [] -> []
        | t :: c :: rest -> (t, c) :: go rest
        | [ _ ] -> assert false
      in
      go l)
    ~at_root:(fun nd weighted ->
      let best =
        List.fold_left
          (fun acc (t, w) ->
            match acc with
            | None -> Some (t, w)
            | Some (t', w') ->
                if w > w' || (w = w' && t < t') then Some (t, w) else acc)
          None weighted
      in
      match best with
      | Some (t, w) ->
          nd.State.fsel_target <- t;
          nd.State.fsel_weight <- w
      | None -> ())

let run ?(alpha = 3) ?(stop_when_met = true) g ~eps ~delta ~seed =
  if not (eps > 0.0 && eps < 1.0) then
    invalid_arg "Random_partition.run: eps in (0,1)";
  let st = State.create g in
  let n = Graph.n g and m = Graph.m g in
  let target = eps *. float_of_int n in
  let trials = trials_for ~delta in
  let rate = 1.0 -. (1.0 /. float_of_int (64 * alpha)) in
  let t_max =
    if float_of_int m <= target then 0
    else
      max 1
        (int_of_float
           (ceil (log (target /. float_of_int m) /. log rate)))
  in
  let phase = ref 1 in
  let stop = ref (t_max = 0) in
  while (not !stop) && !phase <= t_max do
    Prims.refresh_roots st;
    let budget = max 1 (State.max_depth st) in
    Merge.reset_phase_fields st;
    weighted_selection st ~budget ~trials ~seed:(seed + (1000 * !phase));
    Merge.run_after_selection st ~budget;
    st.State.nominal_rounds <-
      st.State.nominal_rounds
      + ((trials + Cv_coloring.steps_for n + (3 * (Merge.max_tree_height + 1)) + 12)
         * ((2 * budget) + 1));
    if stop_when_met && float_of_int (State.cut_edges st) <= target then
      stop := true;
    incr phase
  done;
  {
    state = st;
    phases = !phase - 1;
    rounds = st.State.stats.Congest.Stats.rounds;
    nominal_rounds = st.State.nominal_rounds;
    cut = State.cut_edges st;
  }
