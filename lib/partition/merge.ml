let max_tree_height = 12

let roots_of st =
  Array.to_list st.State.nodes
  |> List.filter (fun nd -> State.is_root st nd.State.id)

let reset_phase_fields st =
  Array.iter
    (fun nd ->
      nd.State.fsel_target <- -1;
      nd.State.fsel_weight <- 0;
      nd.State.charge_node <- -1;
      nd.State.charge_nbr <- -1;
      nd.State.charge_weight <- 0;
      nd.State.color <- 0;
      nd.State.parent_color <- -1;
      nd.State.out_marked <- false;
      nd.State.bdry_children <- [];
      nd.State.tlevel <- -1;
      nd.State.w0 <- 0;
      nd.State.w1 <- 0;
      nd.State.tbit <- -1;
      nd.State.contract <- false;
      nd.State.scratch <- -1;
      nd.State.scratch2 <- -1;
      nd.State.scratch_list <- [])
    st.State.nodes

let select_heaviest st =
  Array.iter
    (fun nd ->
      let best =
        List.fold_left
          (fun acc (r, w) ->
            match acc with
            | None -> Some (r, w)
            | Some (r', w') -> if w > w' || (w = w' && r < r') then Some (r, w) else acc)
          None nd.State.out_edges
      in
      match best with
      | Some (r, w) ->
          nd.State.fsel_target <- r;
          nd.State.fsel_weight <- w
      | None -> ())
    st.State.nodes

(* Sub-step 1 (second half): elect the designated node u_i^j in charge of
   the selected out-edge, and its cross neighbor v_i^j. *)
let designate st ~budget =
  (* Every member learns the part's target and selected weight. *)
  Array.iter (fun nd -> nd.State.scratch <- -1) st.State.nodes;
  Prims.bcast st ~budget ~tag:3001
    ~at_root:(fun nd ->
      if nd.State.fsel_target >= 0 then
        Some [ nd.State.fsel_target; nd.State.fsel_weight ]
      else None)
    ~on_receive:(fun nd pl ->
      match pl with
      | [ t; w ] ->
          nd.State.scratch <- t;
          nd.State.scratch2 <- w
      | _ -> assert false);
  (* Minimum-id candidate with a neighbor in the target part. *)
  let candidate nd =
    nd.State.scratch >= 0
    && Array.exists (fun r -> r = nd.State.scratch) nd.State.nbr_root
  in
  Prims.converge st ~budget ~tag:3002
    ~init:(fun nd -> if candidate nd then nd.State.id else max_int)
    ~combine:min
    ~encode:(fun v -> [ v ])
    ~decode:(function [ v ] -> v | _ -> assert false)
    ~at_root:(fun nd v ->
      if nd.State.fsel_target >= 0 then begin
        if v = max_int then
          failwith "Merge.designate: no candidate for a selected out-edge";
        nd.State.charge_node <- v
      end);
  (* Announce the elected node; it picks the concrete cross edge. *)
  Prims.bcast st ~budget ~tag:3003
    ~at_root:(fun nd ->
      if nd.State.fsel_target >= 0 then Some [ nd.State.charge_node ] else None)
    ~on_receive:(fun nd pl ->
      match pl with
      | [ u ] ->
          if u = nd.State.id then begin
            nd.State.charge_node <- nd.State.id;
            nd.State.charge_weight <- nd.State.scratch2;
            let best = ref max_int in
            Array.iteri
              (fun port r ->
                if r = nd.State.scratch then
                  let nbr, _ =
                    (Graphlib.Graph.incident st.State.graph nd.State.id).(port)
                  in
                  if nbr < !best then best := nbr)
              nd.State.nbr_root;
            assert (!best < max_int);
            nd.State.charge_nbr <- !best
          end
      | _ -> assert false)

let is_charge (nd : State.node) = nd.State.charge_node = nd.State.id

(* Announce designated edges across the cut, populate [bdry_children] on
   the parent side, and resolve mutual (2-cycle) selections by dropping the
   higher root's edge — only the randomized variant can produce them. *)
let announce_and_resolve st ~budget =
  Array.iter (fun nd -> nd.State.w0 <- 0) st.State.nodes;
  (* w0 reused briefly as a "my part must drop" flag accumulator. *)
  Prims.boundary st ~tag:3004
    ~payload:(fun nd ~port:_ ~nbr ->
      if is_charge nd && nbr = nd.State.charge_nbr then
        Some [ nd.State.part_root; nd.State.charge_weight ]
      else None)
    ~on_receive:(fun nd ~nbr pl ->
      match pl with
      | [ croot; w ] ->
          let my_target = nd.State.scratch in
          let mutual = croot = my_target in
          if mutual && croot > nd.State.part_root then
            (* The child's selection is the dropped side of a 2-cycle. *)
            ()
          else begin
            nd.State.bdry_children <-
              (nbr, croot, w, 0, false) :: nd.State.bdry_children;
            if mutual && croot < nd.State.part_root then
              (* Our own selection is the dropped side. *)
              nd.State.w0 <- 1
          end
      | _ -> assert false);
  Prims.converge st ~budget ~tag:3005
    ~init:(fun nd -> nd.State.w0)
    ~combine:max
    ~encode:(fun v -> [ v ])
    ~decode:(function [ v ] -> v | _ -> assert false)
    ~at_root:(fun nd drop ->
      if drop = 1 then begin
        nd.State.fsel_target <- -1;
        nd.State.fsel_weight <- 0;
        nd.State.charge_node <- -1
      end);
  (* Tell the members (the charge node must stand down). *)
  Prims.bcast st ~budget ~tag:3006
    ~at_root:(fun nd -> Some [ (if nd.State.fsel_target >= 0 then 1 else 0) ])
    ~on_receive:(fun nd pl ->
      match pl with
      | [ 0 ] ->
          nd.State.scratch <- -1;
          if is_charge nd then begin
            nd.State.charge_node <- -1;
            nd.State.charge_nbr <- -1
          end
      | [ 1 ] -> ()
      | _ -> assert false);
  Array.iter (fun nd -> nd.State.w0 <- 0) st.State.nodes

(* CHW marking rules (Sub-step 2b). *)
let marking st ~budget =
  (* Children report their final color across the designated edges. *)
  Prims.boundary st ~tag:4001
    ~payload:(fun nd ~port:_ ~nbr ->
      if is_charge nd && nbr = nd.State.charge_nbr then Some [ nd.State.color ]
      else None)
    ~on_receive:(fun nd ~nbr pl ->
      match pl with
      | [ c ] ->
          nd.State.bdry_children <-
            List.map
              (fun (u, croot, w, cc, m) ->
                if u = nbr then (u, croot, w, c, m) else (u, croot, w, cc, m))
              nd.State.bdry_children
      | _ -> assert false);
  (* Sum incoming weights per child color class up to the root. *)
  let add (a1, a2, a3) (b1, b2, b3) = (a1 + b1, a2 + b2, a3 + b3) in
  Prims.converge st ~budget ~tag:4002
    ~init:(fun nd ->
      List.fold_left
        (fun acc (_, _, w, c, _) ->
          match c with
          | 1 -> add acc (w, 0, 0)
          | 2 -> add acc (0, w, 0)
          | 3 -> add acc (0, 0, w)
          | _ -> failwith "Merge.marking: child color missing")
        (0, 0, 0) nd.State.bdry_children)
    ~combine:add
    ~encode:(fun (a, b, c) -> [ a; b; c ])
    ~decode:(function [ a; b; c ] -> (a, b, c) | _ -> assert false)
    ~at_root:(fun nd (s1, s2, s3) ->
      let has_out = nd.State.fsel_target >= 0 in
      let w_out = nd.State.fsel_weight in
      let mark_out, in_rule =
        match nd.State.color with
        | 1 ->
            if has_out && w_out >= s1 + s2 + s3 then (true, 0)
            else (false, 1 (* mark all incoming *))
        | 2 ->
            if has_out && nd.State.parent_color = 3 && w_out >= s3 then (true, 0)
            else (false, 2 (* mark incoming from color-3 children *))
        | 3 -> (false, 0)
        | _ -> failwith "Merge.marking: part color out of range"
      in
      nd.State.out_marked <- mark_out;
      nd.State.tbit <- in_rule (* reuse tbit as in-rule transport *));
  (* Roots announce (own-out-marked, in-rule); boundary nodes apply the
     in-rule to their child edges and charge nodes notify the parent side. *)
  Prims.bcast st ~budget ~tag:4003
    ~at_root:(fun nd ->
      Some [ (if nd.State.out_marked then 1 else 0); nd.State.tbit ])
    ~on_receive:(fun nd pl ->
      match pl with
      | [ om; rule ] ->
          if is_charge nd then nd.State.out_marked <- om = 1;
          nd.State.bdry_children <-
            List.map
              (fun (u, croot, w, cc, m) ->
                let marked = m || rule = 1 || (rule = 2 && cc = 3) in
                (u, croot, w, cc, marked))
              nd.State.bdry_children
      | _ -> assert false);
  (* Cross-edge notifications: child-marked (u -> v) and parent-marked
     (v -> u). *)
  Prims.run_program st (fun ctx nd ->
      (if is_charge nd && nd.State.out_marked then
         Prims.send ctx ~dest:nd.State.charge_nbr (Msg.Bdry (4004, [ 1 ])));
      List.iter
        (fun (u, _, _, _, m) ->
          if m then Prims.send ctx ~dest:u (Msg.Bdry (4004, [ 2 ])))
        nd.State.bdry_children;
      let inbox = Prims.sync ctx in
      List.iter
        (fun (from, msg) ->
          match msg with
          | Msg.Bdry (4004, [ 1 ]) ->
              nd.State.bdry_children <-
                List.map
                  (fun (u, croot, w, cc, m) ->
                    if u = from then (u, croot, w, cc, true)
                    else (u, croot, w, cc, m))
                  nd.State.bdry_children
          | Msg.Bdry (4004, [ 2 ]) ->
              assert (is_charge nd);
              nd.State.out_marked <- true
          | _ -> assert false)
        inbox);
  (* The root learns whether the parent marked our out-edge. *)
  Prims.converge st ~budget ~tag:4005
    ~init:(fun nd -> if is_charge nd && nd.State.out_marked then 1 else 0)
    ~combine:max
    ~encode:(fun v -> [ v ])
    ~decode:(function [ v ] -> v | _ -> assert false)
    ~at_root:(fun nd v -> if v = 1 then nd.State.out_marked <- true)

(* Levels within the marked shallow trees, then even/odd weight sums up and
   the contraction decision down (Sub-step 3). *)
let levels_and_decision st ~budget =
  Array.iter
    (fun nd ->
      nd.State.tlevel <- -1;
      nd.State.w0 <- 0;
      nd.State.w1 <- 0;
      nd.State.tbit <- -1)
    st.State.nodes;
  List.iter
    (fun nd -> if not nd.State.out_marked then nd.State.tlevel <- 0)
    (roots_of st);
  (* Levels flow down the marked trees, one part-layer per iteration. *)
  for step = 0 to max_tree_height do
    Array.iter (fun nd -> nd.State.scratch <- -1) st.State.nodes;
    Prims.bcast st ~budget
      ~tag:(5000 + (step * 10))
      ~at_root:(fun nd ->
        if nd.State.tlevel = step then Some [ step ] else None)
      ~on_receive:(fun nd pl ->
        match pl with [ l ] -> nd.State.tlevel <- l | _ -> assert false);
    Prims.boundary st
      ~tag:(5001 + (step * 10))
      ~payload:(fun nd ~port:_ ~nbr ->
        if
          nd.State.tlevel = step
          && List.exists
               (fun (u, _, _, _, m) -> m && u = nbr)
               nd.State.bdry_children
        then Some [ step + 1 ]
        else None)
      ~on_receive:(fun nd ~nbr pl ->
        match pl with
        | [ l ] ->
            if is_charge nd && nbr = nd.State.charge_nbr then
              nd.State.scratch <- l
        | _ -> assert false);
    Prims.converge st ~budget
      ~tag:(5002 + (step * 10))
      ~init:(fun nd ->
        if is_charge nd && nd.State.out_marked && nd.State.scratch >= 0 then
          nd.State.scratch
        else -1)
      ~combine:max
      ~encode:(fun v -> [ v ])
      ~decode:(function [ v ] -> v | _ -> assert false)
      ~at_root:(fun nd v ->
        if nd.State.tlevel = -1 && v >= 0 then nd.State.tlevel <- v)
  done;
  List.iter
    (fun nd ->
      if nd.State.tlevel = -1 then
        failwith
          "Merge.levels: marked tree deeper than the CHW height bound")
    (roots_of st);
  (* Weight sums travel up the marked trees, deepest layer first. *)
  for step = max_tree_height + 1 downto 1 do
    Array.iter (fun nd -> nd.State.scratch <- -1; nd.State.scratch2 <- -1)
      st.State.nodes;
    Prims.bcast st ~budget
      ~tag:(5500 + (step * 10))
      ~at_root:(fun nd ->
        if nd.State.tlevel = step && nd.State.out_marked then begin
          let w0, w1 =
            if nd.State.tlevel mod 2 = 0 then
              (nd.State.w0 + nd.State.fsel_weight, nd.State.w1)
            else (nd.State.w0, nd.State.w1 + nd.State.fsel_weight)
          in
          Some [ w0; w1 ]
        end
        else None)
      ~on_receive:(fun nd pl ->
        match pl with
        | [ w0; w1 ] ->
            if is_charge nd then begin
              nd.State.scratch <- w0;
              nd.State.scratch2 <- w1
            end
        | _ -> assert false);
    Prims.boundary st
      ~tag:(5501 + (step * 10))
      ~payload:(fun nd ~port:_ ~nbr ->
        if is_charge nd && nbr = nd.State.charge_nbr && nd.State.scratch >= 0
        then Some [ nd.State.scratch; nd.State.scratch2 ]
        else None)
      ~on_receive:(fun nd ~nbr pl ->
        match pl with
        | [ w0; w1 ] ->
            if
              List.exists
                (fun (u, _, _, _, m) -> m && u = nbr)
                nd.State.bdry_children
            then begin
              nd.State.w0 <- nd.State.w0 + w0;
              nd.State.w1 <- nd.State.w1 + w1
            end
        | _ -> assert false);
    Prims.converge st ~budget
      ~tag:(5502 + (step * 10))
      ~init:(fun nd ->
        if State.is_root st nd.State.id then (0, 0) else (nd.State.w0, nd.State.w1))
      ~combine:(fun (a0, a1) (b0, b1) -> (a0 + b0, a1 + b1))
      ~encode:(fun (a, b) -> [ a; b ])
      ~decode:(function [ a; b ] -> (a, b) | _ -> assert false)
      ~at_root:(fun nd (w0, w1) ->
        nd.State.w0 <- nd.State.w0 + w0;
        nd.State.w1 <- nd.State.w1 + w1);
    (* Non-root members hand their accumulators upward, so clear them. *)
    Array.iter
      (fun nd ->
        if not (State.is_root st nd.State.id) then begin
          nd.State.w0 <- 0;
          nd.State.w1 <- 0
        end)
      st.State.nodes
  done;
  (* T-roots decide; the bit flows down the marked trees. *)
  List.iter
    (fun nd ->
      if nd.State.tlevel = 0 then
        nd.State.tbit <- (if nd.State.w0 > nd.State.w1 then 0 else 1))
    (roots_of st);
  for step = 0 to max_tree_height do
    Array.iter
      (fun nd ->
        nd.State.scratch <- -1;
        nd.State.scratch2 <- -1)
      st.State.nodes;
    Prims.bcast st ~budget
      ~tag:(6000 + (step * 10))
      ~at_root:(fun nd ->
        if nd.State.tlevel = step && nd.State.tbit >= 0 then
          Some [ nd.State.tbit ]
        else None)
      ~on_receive:(fun nd pl ->
        match pl with [ b ] -> nd.State.scratch <- b | _ -> assert false);
    Prims.boundary st
      ~tag:(6001 + (step * 10))
      ~payload:(fun nd ~port:_ ~nbr ->
        if
          nd.State.scratch >= 0
          && nd.State.tlevel = step
          && List.exists
               (fun (u, _, _, _, m) -> m && u = nbr)
               nd.State.bdry_children
        then Some [ nd.State.scratch ]
        else None)
      ~on_receive:(fun nd ~nbr pl ->
        match pl with
        | [ b ] ->
            if is_charge nd && nbr = nd.State.charge_nbr then
              nd.State.scratch2 <- b
        | _ -> assert false);
    Prims.converge st ~budget
      ~tag:(6002 + (step * 10))
      ~init:(fun nd ->
        if is_charge nd && nd.State.out_marked then nd.State.scratch2 else -1)
      ~combine:max
      ~encode:(fun v -> [ v ])
      ~decode:(function [ v ] -> v | _ -> assert false)
      ~at_root:(fun nd v -> if nd.State.tbit = -1 && v >= 0 then nd.State.tbit <- v)
  done;
  (* Contraction flag: our out-edge parity matches the tree's decision. *)
  List.iter
    (fun nd ->
      if nd.State.out_marked && nd.State.tlevel >= 1 then begin
        if nd.State.tbit < 0 then
          failwith "Merge.decision: no contraction bit reached a marked part";
        let even_edge = nd.State.tlevel mod 2 = 0 in
        nd.State.contract <-
          (even_edge && nd.State.tbit = 0) || ((not even_edge) && nd.State.tbit = 1)
      end)
    (roots_of st)

(* Star contraction (Sub-step 4 / Section 2.1.6 "Contracting edges"). *)
let contract st ~budget =
  (* Members learn whether their part contracts. *)
  Array.iter (fun nd -> nd.State.scratch <- 0) st.State.nodes;
  Prims.bcast st ~budget ~tag:7001
    ~at_root:(fun nd -> Some [ (if nd.State.contract then 1 else 0) ])
    ~on_receive:(fun nd pl ->
      match pl with [ b ] -> nd.State.scratch <- b | _ -> assert false);
  (* The charge node reports the new root id up the old tree. *)
  Prims.converge st ~budget ~tag:7002
    ~init:(fun nd ->
      if nd.State.scratch = 1 && is_charge nd then begin
        let port = ref (-1) in
        Array.iteri
          (fun i (nbr, _) ->
            if nbr = nd.State.charge_nbr then port := i)
          (Graphlib.Graph.incident st.State.graph nd.State.id);
        assert (!port >= 0);
        nd.State.nbr_root.(!port)
      end
      else -1)
    ~combine:max
    ~encode:(fun v -> [ v ])
    ~decode:(function [ v ] -> v | _ -> assert false)
    ~at_root:(fun nd v -> if nd.State.contract then nd.State.scratch2 <- v);
  (* Everyone in a contracting part adopts the new root id. *)
  Prims.bcast st ~budget ~tag:7003
    ~at_root:(fun nd ->
      if nd.State.contract then begin
        assert (nd.State.scratch2 >= 0);
        Some [ nd.State.scratch2 ]
      end
      else None)
    ~on_receive:(fun nd pl ->
      match pl with [ r ] -> nd.State.part_root <- r | _ -> assert false);
  (* Flip the tree path from the charge node to the old root, and hook the
     charge node across the cut. *)
  Prims.run_program st (fun ctx nd ->
      let forward_flip dest = Prims.send ctx ~dest (Msg.Bdry (7004, [])) in
      (if nd.State.scratch = 1 && is_charge nd then begin
         let old_parent = nd.State.parent in
         nd.State.parent <- nd.State.charge_nbr;
         if old_parent >= 0 then begin
           nd.State.children <- old_parent :: nd.State.children;
           forward_flip old_parent
         end
       end);
      Prims.wait_rounds ctx ~budget
        (List.iter (fun (from, msg) ->
             match msg with
             | Msg.Bdry (7004, []) ->
                 let old_parent = nd.State.parent in
                 nd.State.children <-
                   List.filter (fun c -> c <> from) nd.State.children;
                 nd.State.parent <- from;
                 if old_parent >= 0 then begin
                   nd.State.children <- old_parent :: nd.State.children;
                   forward_flip old_parent
                 end
             | _ -> assert false)));
  (* Attach: the parent-side endpoints adopt the charge nodes as children. *)
  Prims.run_program st (fun ctx nd ->
      (if nd.State.scratch = 1 && is_charge nd then
         Prims.send ctx ~dest:nd.State.charge_nbr (Msg.Bdry (7005, [])));
      let inbox = Prims.sync ctx in
      List.iter
        (fun (from, msg) ->
          match msg with
          | Msg.Bdry (7005, []) ->
              nd.State.children <- from :: nd.State.children
          | _ -> assert false)
        inbox)

let run_after_selection st ~budget =
  designate st ~budget;
  announce_and_resolve st ~budget;
  Cv_coloring.run st ~budget;
  marking st ~budget;
  levels_and_decision st ~budget;
  contract st ~budget

let run st ~budget =
  reset_phase_fields st;
  select_heaviest st;
  run_after_selection st ~budget
