open Graphlib

type result = {
  state : State.t;
  cut : int;
  clusters : int;
  radius_bound : int;
  capped : int;
}

(* Shifted values travel as fixed-point integers so the wire format stays
   integral: value = (r_v - dist) * scale. *)
let scale = 1 lsl 16

let run ?(seed = 0) g ~eps =
  if not (eps > 0.0 && eps < 1.0) then invalid_arg "En_partition.run: eps";
  let n = Graph.n g in
  let st = State.create g in
  if n = 0 then { state = st; cut = 0; clusters = 0; radius_bound = 0; capped = 0 }
  else begin
    let beta = eps /. 2.0 in
    (* All shifts are below R = (2/eps) ln n + O(1/eps) w.p. 1 - 1/n. *)
    let radius_bound =
      2 + int_of_float (ceil (log (float_of_int (max n 2)) /. beta))
    in
    let capped = ref 0 in
    (* best wave per node: (value, source, delivering neighbor) *)
    let best_val = Array.make n neg_infinity in
    let best_src = Array.make n (-1) in
    let best_from = Array.make n (-1) in
    Prims.run_program st ~seed (fun ctx nd ->
        let v = nd.State.id in
        let rng = Random.State.make [| seed; v; 0xe14 |] in
        let r_v = -.log (1.0 -. Random.State.float rng 1.0) /. beta in
        let r_v =
          if r_v >= float_of_int radius_bound then begin
            incr capped;
            float_of_int radius_bound -. 1.0
          end
          else r_v
        in
        best_val.(v) <- r_v;
        best_src.(v) <- v;
        (* Lexicographic maximum on (value, -source): ties in the scaled
           arithmetic resolve toward the smaller source everywhere, which
           makes the quiescent parent pointers cluster-consistent. *)
        let better x src =
          x > best_val.(v) || (x = best_val.(v) && src < best_src.(v))
        in
        let last_sent = ref (neg_infinity, max_int) in
        let maybe_broadcast () =
          if
            best_val.(v) > fst !last_sent
            || (best_val.(v) = fst !last_sent && best_src.(v) < snd !last_sent)
          then begin
            last_sent := (best_val.(v), best_src.(v));
            let payload =
              [ best_src.(v); int_of_float ((best_val.(v) -. 1.0) *. float_of_int scale) ]
            in
            Array.iter
              (fun (nbr, _) -> Prims.send ctx ~dest:nbr (Msg.Bdry (95, payload)))
              (Graph.incident g v)
          end
        in
        maybe_broadcast ();
        Prims.wait_rounds ctx ~budget:(2 * radius_bound) (fun inbox ->
            List.iter
              (fun (from, msg) ->
                match msg with
                | Msg.Bdry (95, [ src; scaled ]) ->
                    let x = float_of_int scaled /. float_of_int scale in
                    if better x src then begin
                      best_val.(v) <- x;
                      best_src.(v) <- src;
                      best_from.(v) <- from
                    end
                | _ -> assert false)
              inbox;
            maybe_broadcast ()));
    (* Install the partition: part root = cluster source, tree = the
       first-contact (best-delivery) edges; children via one more round. *)
    Array.iter
      (fun nd ->
        let v = nd.State.id in
        nd.State.part_root <- best_src.(v);
        nd.State.parent <- best_from.(v);
        nd.State.children <- [])
      st.State.nodes;
    Prims.run_program st (fun ctx nd ->
        (if nd.State.parent >= 0 then
           Prims.send ctx ~dest:nd.State.parent (Msg.Bdry (96, [])));
        let inbox = Prims.sync ctx in
        List.iter
          (fun (from, msg) ->
            match msg with
            | Msg.Bdry (96, []) -> nd.State.children <- from :: nd.State.children
            | _ -> assert false)
          inbox);
    Prims.refresh_roots st;
    State.check_invariants st;
    {
      state = st;
      cut = State.cut_edges st;
      clusters = List.length (State.parts st);
      radius_bound;
      capped = !capped;
    }
  end
