open Graphlib

module Eng = Congest.Engine.Make (Msg)
module Cmp = Congest.Compiled.Make (Msg)

type node = {
  id : int;
  mutable part_root : int;
  mutable parent : int;
  mutable children : int list;
  mutable nbr_root : int array;
  mutable active : bool;
  mutable deact_round : int;
  mutable snapshot : (int * int) list;
  mutable out_edges : (int * int) list;
  mutable fsel_target : int;
  mutable fsel_weight : int;
  mutable charge_node : int;
  mutable charge_nbr : int;
  mutable charge_weight : int;
  mutable color : int;
  mutable parent_color : int;
  mutable out_marked : bool;
  mutable bdry_children : (int * int * int * int * bool) list;
  mutable tlevel : int;
  mutable w0 : int;
  mutable w1 : int;
  mutable tbit : int;
  mutable contract : bool;
  mutable scratch : int;
  mutable scratch2 : int;
  mutable scratch_list : (int * int) list;
}

type t = {
  graph : Graph.t;
  nodes : node array;
  stats : Congest.Stats.t;
  pool : Eng.pool;
  mutable rejections : (int * string) list;
  mutable nominal_rounds : int;
  mutable telemetry : Congest.Telemetry.t option;
  mutable trace : Congest.Trace.t option;
  mutable domains : int;
  mutable fast_forward : bool;
  mutable faults : Congest.Faults.policy option;
  mutable mode : Congest.Compiled.mode;
  mutable cpool : Cmp.pool option;  (* lazily allocated on first compiled run *)
  mutable on_round : (int -> unit) option;
}

let create g =
  let make_node v =
    {
      id = v;
      part_root = v;
      parent = -1;
      children = [];
      nbr_root = Array.map fst (Graph.incident g v);
      active = true;
      deact_round = -1;
      snapshot = [];
      out_edges = [];
      fsel_target = -1;
      fsel_weight = 0;
      charge_node = -1;
      charge_nbr = -1;
      charge_weight = 0;
      color = 0;
      parent_color = -1;
      out_marked = false;
      bdry_children = [];
      tlevel = -1;
      w0 = 0;
      w1 = 0;
      tbit = -1;
      contract = false;
      scratch = 0;
      scratch2 = 0;
      scratch_list = [];
    }
  in
  {
    graph = g;
    nodes = Array.init (Graph.n g) make_node;
    stats =
      Congest.Stats.create ~bandwidth:(Congest.Bits.default_bandwidth (Graph.n g));
    pool = Eng.pool g;
    rejections = [];
    nominal_rounds = 0;
    telemetry = None;
    trace = None;
    domains = 1;
    fast_forward = true;
    faults = None;
    mode = Congest.Compiled.Fiber;
    cpool = None;
    on_round = None;
  }

let restore g ~nodes ~stats ~rejections ~nominal_rounds =
  if Array.length nodes <> Graph.n g then
    invalid_arg "State.restore: node count does not match the graph";
  {
    graph = g;
    nodes;
    stats;
    pool = Eng.pool g;
    rejections;
    nominal_rounds;
    telemetry = None;
    trace = None;
    domains = 1;
    fast_forward = true;
    faults = None;
    mode = Congest.Compiled.Fiber;
    cpool = None;
    on_round = None;
  }

let cmp_pool st =
  match st.cpool with
  | Some p -> p
  | None ->
      let p = Cmp.pool st.graph in
      st.cpool <- Some p;
      p

let node st v = st.nodes.(v)
let is_root st v = st.nodes.(v).part_root = v

let depth_array st =
  let n = Array.length st.nodes in
  let depth = Array.make n (-1) in
  let rec compute v =
    if depth.(v) >= 0 then depth.(v)
    else begin
      let d =
        if st.nodes.(v).parent < 0 then 0 else 1 + compute st.nodes.(v).parent
      in
      depth.(v) <- d;
      d
    end
  in
  for v = 0 to n - 1 do
    ignore (compute v)
  done;
  depth

let max_depth st = Array.fold_left max 0 (depth_array st)

let parts st =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun nd ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt tbl nd.part_root) in
      Hashtbl.replace tbl nd.part_root (nd.id :: cur))
    st.nodes;
  Hashtbl.fold (fun root members acc -> (root, List.rev members) :: acc) tbl []
  |> List.sort compare

let cut_edges st =
  Graph.fold_edges
    (fun acc _ u v ->
      if st.nodes.(u).part_root <> st.nodes.(v).part_root then acc + 1 else acc)
    0 st.graph

let check_invariants st =
  let g = st.graph in
  let fail fmt = Printf.ksprintf failwith fmt in
  Array.iter
    (fun nd ->
      let v = nd.id in
      if nd.parent < 0 then begin
        if nd.part_root <> v then
          fail "node %d has no parent but root is %d" v nd.part_root
      end
      else begin
        if not (Graph.has_edge g v nd.parent) then
          fail "node %d: parent %d is not a graph neighbor" v nd.parent;
        if st.nodes.(nd.parent).part_root <> nd.part_root then
          fail "node %d and its parent %d are in different parts" v nd.parent;
        if not (List.mem v st.nodes.(nd.parent).children) then
          fail "node %d missing from children of its parent %d" v nd.parent
      end;
      List.iter
        (fun c ->
          if st.nodes.(c).parent <> v then
            fail "node %d lists child %d whose parent is %d" v c
              st.nodes.(c).parent)
        nd.children)
    st.nodes;
  (* Acyclicity and root-reachability via depth computation with cycle
     detection. *)
  let n = Array.length st.nodes in
  let mark = Array.make n 0 in
  let rec walk v trail =
    if mark.(v) = 1 then fail "parent cycle through node %d" v;
    if mark.(v) = 0 then begin
      mark.(v) <- 1;
      (if st.nodes.(v).parent >= 0 then walk st.nodes.(v).parent (v :: trail)
       else if st.nodes.(v).part_root <> v then
         fail "tree above %d ends at %d, not the part root" (List.hd trail) v);
      mark.(v) <- 2
    end
  in
  for v = 0 to n - 1 do
    walk v []
  done
