open Graphlib
module S = Partition.State

type mode = Deterministic | Randomized of float

type outcome = {
  accepted : bool;
  rejections : (int * string) list;
  cut : int;
  parts : int;
  rounds : int;
  nominal_rounds : int;
}

(* The clamp now lives in {!Harness.effective_eps}, parameterized by how
   the property counts its distance budget.  Every tester in this module
   (cycle-freeness, bipartiteness, hereditary minor-closed properties)
   measures farness in edge edits out of [m] — the general sparse-graph
   model — so [Edge_budget] is the correct rescaling for all of them; a
   vertex-normalized property would pass [Vertex_budget] instead. *)
let effective_eps g ~eps = Harness.effective_eps ~budget:Harness.Edge_budget g ~eps

(* Partition with an absolute edge-cut target of [eps * m]. *)
let partition_for mode seed g ~eps =
  match mode with
  | Deterministic ->
      (* Stage1's target is eps' * m / 2; eps' = eps gives eps * m / 2 <=
         eps * m. *)
      (Partition.Stage1.run g ~eps).Partition.Stage1.state
  | Randomized delta ->
      let eps' = effective_eps g ~eps in
      (Partition.Random_partition.run g ~eps:eps' ~delta ~seed)
        .Partition.Random_partition.state

let finish st check =
  let bfs = Part_bfs.build st in
  Array.iter
    (fun nd ->
      let v = nd.S.id in
      Part_bfs.iter_intra st nd (fun _ w ->
          if
            Part_bfs.assigned_to bfs st v w
            && not (Part_bfs.is_tree_edge st v w)
          then
            match check bfs v w with
            | Some reason -> st.S.rejections <- (v, reason) :: st.S.rejections
            | None -> ()))
    st.S.nodes;
  {
    accepted = st.S.rejections = [];
    rejections = List.sort_uniq compare st.S.rejections;
    cut = S.cut_edges st;
    parts = List.length (S.parts st);
    rounds = st.S.stats.Congest.Stats.rounds;
    nominal_rounds = st.S.nominal_rounds + (2 * bfs.Part_bfs.depth_bound) + 3;
  }

let test_cycle_freeness ?(mode = Deterministic) ?(seed = 0) g ~eps =
  let st = partition_for mode seed g ~eps in
  finish st (fun _ v w ->
      Some
        (Printf.sprintf "node %d: non-tree edge (%d, %d) closes a cycle" v v w))

let test_hereditary ?(mode = Deterministic) ?(seed = 0) g ~eps ~check_part =
  let st = partition_for mode seed g ~eps in
  let bfs = Part_bfs.build st in
  List.iter
    (fun (root, members) ->
      let sub, _ = Graph.induced g members in
      if not (check_part sub) then
        st.S.rejections <-
          (root, Printf.sprintf "part %d fails the hereditary property" root)
          :: st.S.rejections)
    (S.parts st);
  {
    accepted = st.S.rejections = [];
    rejections = List.sort_uniq compare st.S.rejections;
    cut = S.cut_edges st;
    parts = List.length (S.parts st);
    rounds = st.S.stats.Congest.Stats.rounds;
    nominal_rounds = st.S.nominal_rounds + (2 * bfs.Part_bfs.depth_bound) + 3;
  }

let test_bipartiteness ?(mode = Deterministic) ?(seed = 0) g ~eps =
  let st = partition_for mode seed g ~eps in
  finish st (fun bfs v w ->
      let dv = bfs.Part_bfs.dist.(v)
      and dw = List.assoc w bfs.Part_bfs.nbr_level.(v) in
      if (dv - dw) mod 2 = 0 then
        Some
          (Printf.sprintf
             "node %d: non-tree edge (%d, %d) joins equal BFS parities (odd \
              cycle)"
             v v w)
      else None)
