type verdict = Accept | Reject of (int * string) list

type partition_mode = Stage_one | Exponential_shifts

type report = {
  verdict : verdict;
  stage1 : Partition.Stage1.result option;
  stage2 : Stage2.result option;
  rounds : int;
  nominal_rounds : int;
  messages : int;
  total_bits : int;
  fast_forwarded_rounds : int;
}

let run ?(seed = 0) ?(alpha = 3) ?(partition = Stage_one)
    ?(embedding = Stage2.Oracle) ?(measure_diameters = false) ?telemetry
    ?(domains = 1) ?(fast_forward = true) g ~eps =
  let stage1, st =
    match partition with
    | Stage_one ->
        let r =
          Partition.Stage1.run ~alpha ~measure_diameters ?telemetry ~domains
            ~fast_forward g ~eps
        in
        (Some r, r.Partition.Stage1.state)
    | Exponential_shifts ->
        let r = Partition.En_partition.run ~seed g ~eps in
        let st = r.Partition.En_partition.state in
        st.Partition.State.telemetry <- telemetry;
        st.Partition.State.domains <- domains;
        st.Partition.State.fast_forward <- fast_forward;
        (None, st)
  in
  let partition_rejected =
    match stage1 with
    | Some r -> r.Partition.Stage1.rejected <> []
    | None -> false
  in
  let stage2 =
    if not partition_rejected then begin
      Option.iter
        (fun tel -> Congest.Telemetry.phase tel "stage2")
        telemetry;
      Some (Stage2.run ~embedding st ~eps ~seed)
    end
    else None
  in
  let rejections = st.Partition.State.rejections in
  {
    verdict =
      (if rejections = [] then Accept
       else Reject (List.sort_uniq compare rejections));
    stage1;
    stage2;
    rounds = st.Partition.State.stats.Congest.Stats.rounds;
    nominal_rounds = st.Partition.State.nominal_rounds;
    messages = st.Partition.State.stats.Congest.Stats.messages;
    total_bits = st.Partition.State.stats.Congest.Stats.total_bits;
    fast_forwarded_rounds =
      st.Partition.State.stats.Congest.Stats.fast_forwarded_rounds;
  }

let accepts ?seed ?partition g ~eps =
  match (run ?seed ?partition g ~eps).verdict with
  | Accept -> true
  | Reject _ -> false
