(* The paper's planarity tester as a Harness instantiation: Stage II is
   {!Stage2.run}, everything else — Stage I invocation, checkpoint/resume,
   fault degradation, verdict plumbing, metrics — lives in {!Harness}.
   The type equations below are transparent so existing callers (CLI,
   Report.Checkpoint, tests) keep pattern-matching and building these
   records directly. *)

type verdict = Harness.verdict =
  | Accept
  | Reject of (int * string) list
  | Degraded of string

type partition_mode = Harness.partition_mode =
  | Stage_one
  | Exponential_shifts

type snapshot = Harness.snapshot = {
  ck_phase : int;
  ck_phases_rev : Partition.Stage1.phase_trace list;
  ck_nodes : Partition.State.node array;
  ck_stats : Congest.Stats.t;
  ck_rejections : (int * string) list;
  ck_nominal_rounds : int;
  ck_telemetry : Congest.Telemetry.t option;
  ck_trace : Congest.Trace.t option;
}

type checkpoint = Harness.checkpoint = {
  save : snapshot -> unit;
  load : unit -> snapshot option;
  every : int;
}

type report = {
  verdict : verdict;
  stage1 : Partition.Stage1.result option;
  stage2 : Stage2.result option;
  rounds : int;
  nominal_rounds : int;
  messages : int;
  total_bits : int;
  fast_forwarded_rounds : int;
  dropped : int;
  duplicated : int;
  delayed : int;
  crashed_nodes : int;
}

let run ?seed ?alpha ?partition ?(embedding = Stage2.Oracle)
    ?measure_diameters ?telemetry ?trace ?domains ?fast_forward ?faults
    ?mode ?checkpoint ?heartbeat g ~eps =
  let stage2, t =
    Harness.run ?seed ?alpha ?partition ?measure_diameters ?telemetry ?trace
      ?domains ?fast_forward ?faults ?mode ?checkpoint ?heartbeat
      ~property:"planarity"
      ~stage2:(fun st ~eps ~seed -> Stage2.run ~embedding st ~eps ~seed)
      g ~eps
  in
  {
    verdict = t.Harness.verdict;
    stage1 = t.Harness.stage1;
    stage2;
    rounds = t.Harness.rounds;
    nominal_rounds = t.Harness.nominal_rounds;
    messages = t.Harness.messages;
    total_bits = t.Harness.total_bits;
    fast_forwarded_rounds = t.Harness.fast_forwarded_rounds;
    dropped = t.Harness.dropped;
    duplicated = t.Harness.duplicated;
    delayed = t.Harness.delayed;
    crashed_nodes = t.Harness.crashed_nodes;
  }

let accepts ?seed ?partition g ~eps =
  match (run ?seed ?partition g ~eps).verdict with
  | Accept -> true
  | Reject _ | Degraded _ -> false
