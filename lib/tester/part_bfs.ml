open Graphlib
module S = Partition.State
module P = Partition.Prims
module M = Partition.Msg

type t = {
  dist : int array;
  nbr_level : (int * int) list array;
  depth_bound : int;
}

let iter_intra st (nd : S.node) f =
  Array.iteri
    (fun port (nbr, _) ->
      if nd.S.nbr_root.(port) = nd.S.part_root then f port nbr)
    (Graph.incident st.S.graph nd.S.id)

let build st =
  let g = st.S.graph in
  let n = Graph.n g in
  P.refresh_roots st;
  let depth_bound =
    List.fold_left
      (fun acc (root, members) ->
        let sub, back = Graph.induced g members in
        let local_root = ref (-1) in
        Array.iteri (fun i v -> if v = root then local_root := i) back;
        max acc (Traversal.eccentricity sub !local_root))
      1 (S.parts st)
  in
  let budget = depth_bound + 2 in
  Array.iter
    (fun nd ->
      nd.S.parent <- -1;
      nd.S.children <- [])
    st.S.nodes;
  let dist = Array.make n (-1) in
  P.run_program st (fun ctx nd ->
      let send_intra msg = iter_intra st nd (fun _ nbr -> P.send ctx ~dest:nbr msg) in
      (if S.is_root st nd.S.id then begin
         dist.(nd.S.id) <- 0;
         send_intra (M.Bdry (81, [ 0 ]))
       end);
      P.wait_rounds ctx ~budget
        (List.iter (fun (from, msg) ->
             match msg with
             | M.Bdry (81, [ d ]) ->
                 if nd.S.parent = -1 && not (S.is_root st nd.S.id) then begin
                   nd.S.parent <- from;
                   dist.(nd.S.id) <- d + 1;
                   P.send ctx ~dest:from (M.Bdry (82, []));
                   send_intra (M.Bdry (81, [ d + 1 ]))
                 end
             | M.Bdry (82, []) -> nd.S.children <- from :: nd.S.children
             | _ -> assert false)));
  let nbr_level = Array.make n [] in
  P.run_program st (fun ctx nd ->
      iter_intra st nd (fun _ nbr ->
          P.send ctx ~dest:nbr (M.Bdry (83, [ dist.(nd.S.id) ])));
      let inbox = P.sync ctx in
      List.iter
        (fun (from, msg) ->
          match msg with
          | M.Bdry (83, [ d ]) ->
              nbr_level.(nd.S.id) <- (from, d) :: nbr_level.(nd.S.id)
          | _ -> assert false)
        inbox);
  { dist; nbr_level; depth_bound }

let is_tree_edge st v w =
  let nd = S.node st v in
  nd.S.parent = w || List.mem w nd.S.children

let assigned_to t st v w =
  ignore st;
  let dw = List.assoc w t.nbr_level.(v) in
  t.dist.(v) > dw || (t.dist.(v) = dw && v > w)
