open Graphlib
module S = Partition.State
module P = Partition.Prims
module M = Partition.Msg

type embedding_mode = Oracle | Collect

type part_info = {
  root : int;
  n_nodes : int;
  m_edges : int;
  non_tree : int;
  euler_rejected : bool;
  embedding_planar : bool;
  sampled : int;
  truncated : bool;
}

type result = {
  accepted : bool;
  rejections : (int * string) list;
  parts : part_info list;
  sample_target : int;
}

let sample_target ~n ~eps =
  int_of_float (ceil (4.0 *. log (float_of_int (n + 2)) /. eps))

let encode_pairs pairs =
  List.concat_map
    (fun (a, b) -> (List.length a :: a) @ (List.length b :: b))
    pairs

let rec take k = function
  | [] -> []
  | _ when k = 0 -> []
  | x :: rest -> x :: take (k - 1) rest

let decode_pairs l =
  let rec split k l =
    if k = 0 then ([], l)
    else
      match l with
      | x :: rest ->
          let a, b = split (k - 1) rest in
          (x :: a, b)
      | [] -> failwith "Stage2.decode_pairs: short payload"
  in
  let rec go = function
    | [] -> []
    | la :: rest ->
        let a, rest = split la rest in
        (match rest with
        | lb :: rest ->
            let b, rest = split lb rest in
            (a, b) :: go rest
        | [] -> failwith "Stage2.decode_pairs: missing second label")
  in
  go l

let run ?(embedding = Oracle) st ~eps ~seed =
  let g = st.S.graph in
  let n = Graph.n g in
  let stage2_rejections_before = List.length st.S.rejections in
  (* Orchestrator-side per-part data for the embedding substitution. *)
  let induced_parts =
    List.map
      (fun (root, members) ->
        let sub, back = Graph.induced g members in
        let local_root = ref (-1) in
        Array.iteri (fun i v -> if v = root then local_root := i) back;
        (root, members, sub, back, !local_root))
      (S.parts st)
  in
  (* Steps 1–2: per-part BFS trees and level exchange. *)
  let bfs = Part_bfs.build st in
  let budget = bfs.Part_bfs.depth_bound + 2 in
  let iter_intra = Part_bfs.iter_intra in
  let assigned_to (nd : S.node) w = Part_bfs.assigned_to bfs st nd.S.id w in
  let is_tree_edge (nd : S.node) w = Part_bfs.is_tree_edge st nd.S.id w in
  (* Step 3: per-part node / edge / non-tree-edge counts; Euler check. *)
  let counts = Hashtbl.create 16 in
  P.converge st ~budget ~tag:84
    ~init:(fun nd ->
      let edges = ref 0 and nt = ref 0 in
      iter_intra st nd (fun _ w ->
          if assigned_to nd w then begin
            incr edges;
            if not (is_tree_edge nd w) then incr nt
          end);
      (1, !edges, !nt))
    ~combine:(fun (a, b, c) (x, y, z) -> (a + x, b + y, c + z))
    ~encode:(fun (a, b, c) -> [ a; b; c ])
    ~decode:(function [ a; b; c ] -> (a, b, c) | _ -> assert false)
    ~at_root:(fun nd (nj, mj, ntj) ->
      Hashtbl.replace counts nd.S.id (nj, mj, ntj));
  let euler_rejected = Hashtbl.create 4 in
  List.iter
    (fun (root, _, _, _, _) ->
      let nj, mj, _ = Hashtbl.find counts root in
      if nj >= 3 && mj > (3 * nj) - 6 then begin
        Hashtbl.replace euler_rejected root ();
        st.S.rejections <-
          ( root,
            Printf.sprintf "part %d: m = %d > 3n - 6 = %d (Euler bound)" root
              mj ((3 * nj) - 6) )
          :: st.S.rejections
      end)
    induced_parts;
  (* Step 4 (substituted Ghaffari–Haeupler): obtain a combinatorial
     embedding of each part. *)
  let rotation = Array.make n [||] in
  let embedding_ok = Hashtbl.create 16 in
  (match embedding with
  | Oracle ->
      (* Centralized embedding per part, charged the GH round cost
         O(D + min (log n_j, D)). *)
      let max_embed_charge = ref 0 in
      List.iter
        (fun (root, _, sub, back, local_root) ->
          let rot, planar = Planarity.Lr.embed_or_adjacency sub in
          Hashtbl.replace embedding_ok root planar;
          for lv = 0 to Graph.n sub - 1 do
            rotation.(back.(lv)) <-
              Array.map
                (fun d -> back.(Planarity.Rotation.dst sub d))
                (Planarity.Rotation.rotation rot lv)
          done;
          let d_j = Traversal.eccentricity sub local_root in
          let log_nj = Congest.Bits.id_bits (Graph.n sub) in
          max_embed_charge := max !max_embed_charge (d_j + min log_nj d_j))
        induced_parts;
      Congest.Stats.charge st.S.stats !max_embed_charge;
      st.S.nominal_rounds <- st.S.nominal_rounds + !max_embed_charge
  | Collect ->
      (* In-model: each root convergecasts its part's edge list, embeds
         locally, and broadcasts every vertex's rotation back down.  The
         payloads are large; the engine's bandwidth accounting charges the
         pipelining rounds. *)
      let edges_at_root = Hashtbl.create 16 in
      P.converge st ~budget ~tag:90
        ~init:(fun nd ->
          let acc = ref [] in
          iter_intra st nd (fun _ w ->
              if assigned_to nd w then acc := (nd.S.id, w) :: !acc);
          !acc)
        ~combine:( @ )
        ~encode:(fun pairs ->
          List.concat_map (fun (u, v) -> [ u; v ]) pairs)
        ~decode:(fun l ->
          let rec go = function
            | [] -> []
            | u :: v :: rest -> (u, v) :: go rest
            | [ _ ] -> assert false
          in
          go l)
        ~at_root:(fun nd pairs -> Hashtbl.replace edges_at_root nd.S.id pairs);
      (* Local computation at each root. *)
      let rotations_at_root = Hashtbl.create 16 in
      List.iter
        (fun (root, members, _, _, _) ->
          let pairs = Hashtbl.find edges_at_root root in
          let back = Array.of_list members in
          let fwd = Hashtbl.create 16 in
          Array.iteri (fun i v -> Hashtbl.add fwd v i) back;
          let sub =
            Graph.make ~n:(Array.length back)
              (List.map
                 (fun (u, v) -> (Hashtbl.find fwd u, Hashtbl.find fwd v))
                 pairs)
          in
          let rot, planar = Planarity.Lr.embed_or_adjacency sub in
          Hashtbl.replace embedding_ok root planar;
          let payload =
            List.concat_map
              (fun lv ->
                let r =
                  Array.to_list
                    (Array.map
                       (fun d -> back.(Planarity.Rotation.dst sub d))
                       (Planarity.Rotation.rotation rot lv))
                in
                (back.(lv) :: List.length r :: r))
              (List.init (Graph.n sub) Fun.id)
          in
          Hashtbl.replace rotations_at_root root payload)
        induced_parts;
      (* Broadcast the full rotation table; each node keeps its row. *)
      P.bcast st ~budget ~tag:91
        ~at_root:(fun nd -> Some (Hashtbl.find rotations_at_root nd.S.id))
        ~on_receive:(fun nd pl ->
          let rec scan = function
            | [] -> ()
            | v :: deg :: rest ->
                let rec split k l =
                  if k = 0 then ([], l)
                  else
                    match l with
                    | x :: tl ->
                        let a, b = split (k - 1) tl in
                        (x :: a, b)
                    | [] -> assert false
                in
                let row, rest = split deg rest in
                if v = nd.S.id then rotation.(v) <- Array.of_list row;
                scan rest
            | [ _ ] -> assert false
          in
          scan pl));
  (* Step 5: label distribution down the BFS trees. *)
  let label = Array.make n [] in
  P.run_program st (fun ctx nd ->
      let send_child_labels mylab =
        Tester_util.scan nd rotation (fun w rank t ->
            if t = 0 then P.send ctx ~dest:w (M.Down (85, mylab @ [ rank ])))
      in
      (if S.is_root st nd.S.id then begin
         label.(nd.S.id) <- [];
         send_child_labels []
       end);
      P.wait_rounds ctx ~budget
        (List.iter (fun (from, msg) ->
             match msg with
             | M.Down (85, lab) ->
                 assert (from = nd.S.parent);
                 label.(nd.S.id) <- lab;
                 send_child_labels lab
             | _ -> assert false)));
  (* Step 6: corner keys of incident non-tree edges; exchange across each
     edge so the assigned endpoint holds the sorted key pair. *)
  let inf = (2 * n) + 1 in
  let my_keys = Array.make n [] in
  Array.iter
    (fun nd ->
      Tester_util.scan nd rotation (fun w rank t ->
          if t > 0 then
            my_keys.(nd.S.id) <-
              (w, label.(nd.S.id) @ [ rank; inf; t ]) :: my_keys.(nd.S.id)))
    st.S.nodes;
  let assigned_pairs = Array.make n [] in
  P.run_program st (fun ctx nd ->
      List.iter
        (fun (w, key) -> P.send ctx ~dest:w (M.Bdry (86, key)))
        my_keys.(nd.S.id);
      let inbox = P.sync ctx in
      List.iter
        (fun (from, msg) ->
          match msg with
          | M.Bdry (86, key_other) ->
              if assigned_to nd from then begin
                let key_mine = List.assoc from my_keys.(nd.S.id) in
                let pair =
                  if compare key_mine key_other <= 0 then (key_mine, key_other)
                  else (key_other, key_mine)
                in
                assigned_pairs.(nd.S.id) <- pair :: assigned_pairs.(nd.S.id)
              end
          | _ -> assert false)
        inbox);
  (* Step 7: roots broadcast the part's non-tree edge count. *)
  let nt_count = Array.make n 0 in
  P.bcast st ~budget ~tag:87
    ~at_root:(fun nd ->
      let _, _, ntj = Hashtbl.find counts nd.S.id in
      Some [ ntj ])
    ~on_receive:(fun nd pl ->
      match pl with [ ntj ] -> nt_count.(nd.S.id) <- ntj | _ -> assert false);
  (* Step 8: sample Theta (log n / eps) non-tree edges per part. *)
  let starget = sample_target ~n ~eps in
  let cap = (4 * starget) + 8 in
  let samples = Hashtbl.create 16 in
  P.converge st ~budget ~tag:88
    ~init:(fun nd ->
      let ntj = nt_count.(nd.S.id) in
      if ntj = 0 then ([], false)
      else begin
        let p = min 1.0 (float_of_int starget /. float_of_int ntj) in
        let rng = Random.State.make [| seed; nd.S.id; 0x7a11 |] in
        let chosen =
          List.filter (fun _ -> Random.State.float rng 1.0 < p)
            assigned_pairs.(nd.S.id)
        in
        (chosen, false)
      end)
    ~combine:(fun (a, ta) (b, tb) ->
      let all = a @ b in
      if List.length all > cap then (take cap all, true)
      else (all, ta || tb))
    ~encode:(fun (pairs, t) -> (if t then 1 else 0) :: encode_pairs pairs)
    ~decode:(function
      | t :: rest -> (decode_pairs rest, t = 1)
      | [] -> assert false)
    ~at_root:(fun nd (pairs, t) -> Hashtbl.replace samples nd.S.id (pairs, t));
  (* Step 9: broadcast the sample; every node checks its assigned edges. *)
  let sample_at = Array.make n [] in
  P.bcast st ~budget ~tag:89
    ~at_root:(fun nd ->
      let pairs, _ = Hashtbl.find samples nd.S.id in
      Some (encode_pairs pairs))
    ~on_receive:(fun nd pl -> sample_at.(nd.S.id) <- decode_pairs pl);
  Array.iter
    (fun nd ->
      let found =
        List.exists
          (fun mine ->
            List.exists (Violation.intersects mine) sample_at.(nd.S.id))
          assigned_pairs.(nd.S.id)
      in
      if found then
        st.S.rejections <-
          ( nd.S.id,
            Printf.sprintf
              "node %d: a non-tree edge intersects a sampled non-tree edge \
               (Definition 7)"
              nd.S.id )
          :: st.S.rejections)
    st.S.nodes;
  st.S.nominal_rounds <- st.S.nominal_rounds + (12 * budget) + 6;
  let parts_info =
    List.map
      (fun (root, _, _, _, _) ->
        let nj, mj, ntj = Hashtbl.find counts root in
        let pairs, trunc =
          try Hashtbl.find samples root with Not_found -> ([], false)
        in
        {
          root;
          n_nodes = nj;
          m_edges = mj;
          non_tree = ntj;
          euler_rejected = Hashtbl.mem euler_rejected root;
          embedding_planar = Hashtbl.find embedding_ok root;
          sampled = List.length pairs;
          truncated = trunc;
        })
      induced_parts
  in
  {
    accepted = List.length st.S.rejections = stage2_rejections_before;
    rejections = st.S.rejections;
    parts = parts_info;
    sample_target = starget;
  }
