(** Property testers for minor-free graphs (Corollary 16): cycle-freeness
    and bipartiteness under a minor-free promise.

    Both first run a partitioning algorithm — the deterministic Stage I
    ([O(poly (1/eps) log n)] rounds) or the randomized Theorem 4 variant
    ([O(poly (1/eps) (log (1/delta) + log* n))] rounds) — with the edge-cut
    target [eps * m], then verify the property inside every part with a
    BFS tree: any intra-part non-tree edge certifies a cycle; one joining
    equal BFS parities certifies an odd cycle.

    One-sided: a graph with the property is always accepted; an [eps]-far
    minor-free graph is rejected (always for the deterministic partition,
    with probability [1 - delta] for the randomized one). *)

type mode = Deterministic | Randomized of float  (** confidence [delta] *)

type outcome = {
  accepted : bool;
  rejections : (int * string) list;
  cut : int;  (** inter-part edges of the partition used *)
  parts : int;
  rounds : int;
  nominal_rounds : int;
}

(** The eps the randomized partition actually runs with: the edge-cut
    budget [eps * m] rescaled into Random_partition's vertex units,
    [eps * m / n], clamped into [[1/n, 0.999]].

    Invariant: for [n > 0] the result [eps'] satisfies [eps' *. float n
    >= 1.0], so the partition's cut target never rounds below one edge —
    without the floor, a large sparse graph (m << n / eps) would get a
    vacuous target and a degenerate partition.  Exposed for boundary
    tests. *)
val effective_eps : Graphlib.Graph.t -> eps:float -> float

val test_cycle_freeness :
  ?mode:mode -> ?seed:int -> Graphlib.Graph.t -> eps:float -> outcome

val test_bipartiteness :
  ?mode:mode -> ?seed:int -> Graphlib.Graph.t -> eps:float -> outcome

(** The paper's remark after Corollary 16: the same scheme tests any
    hereditary property whose per-part verification runs in rounds
    polynomial in the part diameter.  [check_part] receives each part's
    induced subgraph (a substitution for that per-part verification; the
    round cost charged is the part-BFS cost, i.e. O(diameter)).  A graph
    all of whose parts satisfy the property is accepted; rejection evidence
    names the part root. *)
val test_hereditary :
  ?mode:mode ->
  ?seed:int ->
  Graphlib.Graph.t ->
  eps:float ->
  check_part:(Graphlib.Graph.t -> bool) ->
  outcome
