(** Reusable property-tester harness.

    Every tester in this library follows the same two-stage recipe from
    the paper: Stage I partitions the graph into low-diameter parts with
    few cut edges (rejecting on the way if the auxiliary-graph arboricity
    exceeds [alpha]), then a property-specific Stage II checks each part
    locally.  This module owns everything that is common to the recipe —
    the Stage I invocation (including checkpoint/resume and the
    centralized [Exponential_shifts] baseline), the Accept / Reject /
    Degraded verdict plumbing with its one-sided-error guarantee under
    faults, the eps-rescaling clamp, and the Stats / Telemetry / metrics
    wiring — so a concrete tester ({!Planarity_tester},
    {!Bipartite_tester}, {!Cycle_free_tester}) is just a Stage II
    callback plus a report type.

    The harness preserves the engine contract: for a fixed
    (graph, seed, eps, faults), the verdict and every accounting total in
    {!totals} are byte-identical across [?domains], [?fast_forward] and
    [?mode] — instantiations must keep their Stage II deterministic in
    the same sense (all the {!Partition.Prims} primitives are). *)

(** Tester verdict.  [Reject] carries per-node evidence as
    [(node, reason)] pairs, sorted and deduplicated.  [Degraded] is the
    honest third verdict under fault injection: evidence was found, or
    the run was damaged, while faults were actively firing, so neither
    Accept nor Reject would be trustworthy.  On a fault-free run the
    verdict is always [Accept] or [Reject], and on an input that has the
    property it is never [Reject] (one-sided error). *)
type verdict =
  | Accept
  | Reject of (int * string) list
  | Degraded of string

(** How to obtain the partition for Stage II.

    [Stage_one] is the paper's distributed Stage I.  [Exponential_shifts]
    is the centralized exponential-shifts clustering used as a baseline;
    it performs no distributed rounds itself, so checkpointing is
    unavailable with it. *)
type partition_mode = Stage_one | Exponential_shifts

(** A resumable snapshot of Stage I at a phase boundary.  Contains only
    marshal-safe data (no closures, no fibers); see {!Report.Checkpoint}
    for the on-disk format. *)
type snapshot = {
  ck_phase : int;  (** next phase to run (1-based) *)
  ck_phases_rev : Partition.Stage1.phase_trace list;
      (** phase traces so far, reverse-chronological *)
  ck_nodes : Partition.State.node array;
  ck_stats : Congest.Stats.t;
  ck_rejections : (int * string) list;
  ck_nominal_rounds : int;
  ck_telemetry : Congest.Telemetry.t option;
      (** per-round series recorded up to the snapshot, when the
          checkpointed run had a telemetry recorder attached *)
  ck_trace : Congest.Trace.t option;
      (** event-trace state recorded up to the snapshot, when the
          checkpointed run had a trace recorder attached *)
}

(** Checkpoint hooks: [save] is called after every [every]-th completed
    Stage I phase; [load] is consulted once at the start of the run and
    resumes from the returned snapshot if any.  Only valid with
    [Stage_one]; [run] raises [Invalid_argument] otherwise, or if
    [every < 1]. *)
type checkpoint = {
  save : snapshot -> unit;
  load : unit -> snapshot option;
  every : int;
}

(** Accounting totals for a complete run, identical in meaning to the
    fields of {!Congest.Stats.t} plus the verdict and the Stage I result
    ([None] when [Exponential_shifts] was used).  [nominal_rounds] is
    the CONGEST-model round count (what the paper bounds);  [rounds] is
    the rounds actually simulated (smaller when fast-forward skips
    quiescent rounds). *)
type totals = {
  verdict : verdict;
  stage1 : Partition.Stage1.result option;
  rounds : int;
  nominal_rounds : int;
  messages : int;
  total_bits : int;
  fast_forwarded_rounds : int;
  dropped : int;
  duplicated : int;
  delayed : int;
  crashed_nodes : int;
}

(** How a property counts its distance budget, for {!effective_eps}.

    [Edge_budget]: eps-far means ≥ eps·m edge edits (general sparse
    model; planarity, bipartiteness and cycle-freeness all use this), so
    the partition target rescales by m/n.  [Vertex_budget]: eps already
    speaks vertex units and passes through unrescaled. *)
type eps_budget = Edge_budget | Vertex_budget

(** [effective_eps ?budget g ~eps] is the eps actually handed to the
    randomized partition: rescaled per [budget] (default [Edge_budget]),
    then clamped into [\[1/n, 0.999\]] so the cut-edge target
    [eps' * n] never rounds below one edge and never reaches the
    degenerate 1.0.  On an empty graph [eps] is returned unchanged.
    Invariant (exposed for boundary tests): for n ≥ 1,
    [effective_eps g ~eps *. float n >= 1.0] up to floating-point
    rounding of [1/n]. *)
val effective_eps : ?budget:eps_budget -> Graphlib.Graph.t -> eps:float -> float

(** [run ~property ~stage2 g ~eps] executes the two-stage recipe and
    returns [(stage2_result, totals)].

    [stage2 st ~eps ~seed] is the property-specific per-part check; it
    runs only when Stage I neither rejected nor degraded, receives the
    final partition state, and communicates violations by pushing
    [(node, reason)] pairs into [st.rejections] (typically via
    {!Partition.Prims.reject}).  Its return value is surfaced as
    [fst (run ...)] — [None] when Stage II was skipped or was
    interrupted by faults.  [property] is a short name ("planarity",
    "bipartite", …) used in error messages and by callers for report
    labeling; it does not influence execution.

    All other parameters are shared knobs with the same defaults and
    byte-identical-accounting guarantees as {!Partition.Stage1.run}:
    [seed] (default 0; Stage II randomness and [Exponential_shifts]
    clustering), [alpha] (default 3), [partition] (default [Stage_one]),
    [measure_diameters], [telemetry], [trace], [domains] (default 1),
    [fast_forward] (default [true]), [faults], [mode] (default [Fiber]),
    [checkpoint].

    [heartbeat]: attach an {!Obs.Heartbeat.t} to the run.  The harness
    connects its sample source to the partition state's accumulated
    stats and phase progress ([phases_total] counts the Stage I phase
    budget plus one for Stage II), ticks it from the engine's quiescent
    round boundaries, and force-publishes at every phase boundary.
    Entirely host-side: the simulated stream — verdict, stats,
    telemetry, trace, stable metrics — is byte-identical with or
    without it.  The caller owns the final {!Obs.Heartbeat.finish}.

    Verdict semantics: Stage I or Stage II rejection evidence yields
    [Reject] on a fault-free run; under an active fault policy that
    actually fired, evidence yields [Degraded] instead (one-sided error
    is preserved — property-holding inputs never Reject), as does a
    corrupted partition state or a [Congest.Faults.Degraded] escape from
    Stage II. *)
val run :
  ?seed:int ->
  ?alpha:int ->
  ?partition:partition_mode ->
  ?measure_diameters:bool ->
  ?telemetry:Congest.Telemetry.t ->
  ?trace:Congest.Trace.t ->
  ?domains:int ->
  ?fast_forward:bool ->
  ?faults:Congest.Faults.policy ->
  ?mode:Congest.Compiled.mode ->
  ?checkpoint:checkpoint ->
  ?heartbeat:Obs.Heartbeat.t ->
  property:string ->
  stage2:(Partition.State.t -> eps:float -> seed:int -> 'a) ->
  Graphlib.Graph.t ->
  eps:float ->
  'a option * totals
