(** Distributed cycle-freeness tester on the shared {!Harness}.

    Stage I partitions the graph into low-diameter parts cutting at most
    [eps * m / 2] edges; Stage II convergecasts each part's node and
    intra-part edge counts up its BFS tree (built by {!Part_bfs}) and the
    root rejects iff [m_j >= n_j] — a connected part is a tree exactly
    when [m_j = n_j - 1], so any excess certifies a cycle.

    One-sided error: a forest never rejects (every part of a forest is a
    sub-forest).  If the input is [eps]-far from cycle-free (its excess
    over a spanning forest is at least [eps * m]), the cut removes at
    most [eps * m / 2] of that excess, so some part retains an excess
    edge and its root rejects — with certainty on a fault-free run, not
    merely with high probability.

    Accounting inherits the harness contract: verdict and totals are
    byte-identical across [?domains], [?fast_forward] and [?mode]. *)

(** Per-part summary gathered by convergecast at each part root. *)
type part_info = {
  root : int;
  n_nodes : int;
  m_edges : int;  (** intra-part edges (each counted once, at its owner) *)
  excess : int;  (** [max 0 (m_edges - (n_nodes - 1))] — cycles certified *)
}

(** Stage II outcome, [fst] of {!run}'s result ([None] when Stage II was
    skipped because Stage I rejected or the run degraded). *)
type details = {
  parts : part_info list;
  excess_edges : int;  (** total excess across all parts *)
  depth_bound : int;  (** maximum part-tree depth used as the BFS budget *)
}

(** Same knobs, defaults and guarantees as {!Harness.run} (and hence as
    {!Planarity_tester.run}, minus the embedding option). *)
val run :
  ?seed:int ->
  ?alpha:int ->
  ?partition:Harness.partition_mode ->
  ?measure_diameters:bool ->
  ?telemetry:Congest.Telemetry.t ->
  ?trace:Congest.Trace.t ->
  ?domains:int ->
  ?fast_forward:bool ->
  ?faults:Congest.Faults.policy ->
  ?mode:Congest.Compiled.mode ->
  ?checkpoint:Harness.checkpoint ->
  ?heartbeat:Obs.Heartbeat.t ->
  Graphlib.Graph.t ->
  eps:float ->
  details option * Harness.totals

(** Convenience: [accepts] a graph iff the verdict is [Accept]. *)
val accepts :
  ?seed:int ->
  ?partition:Harness.partition_mode ->
  Graphlib.Graph.t ->
  eps:float ->
  bool
