open Graphlib

type verdict = Accept | Reject of (int * string) list | Degraded of string

(* Stable run-level metrics, shared by every property tester built on the
   harness.  Verdicts and stage durations are a pure function of
   (graph, seed, eps, faults) — wall clock never enters.  The family
   names predate the harness (they are pinned by MONITOR_baseline.json),
   so they keep the planartest_ prefix. *)
let m_verdicts =
  Obs.Metrics.counter ~label_names:[ "verdict" ]
    ~help:"Tester verdicts by outcome" "planartest_verdicts"

let m_stage2_rounds =
  Obs.Metrics.histogram
    ~help:"Simulated rounds spent in Stage II per tester run"
    ~buckets:(Obs.Metrics.exponential_buckets ~start:1 ~factor:2 ~count:20)
    "planartest_stage2_rounds"

type partition_mode = Stage_one | Exponential_shifts

(* Everything Stage I needs to continue from a phase boundary.  Plain
   marshal-safe data only: [State.node] is ints/bools/lists/arrays, and
   {!Congest.Stats.t} is a flat record — no closures, no fibers (engine
   pools are quiescent at phase boundaries and are rebuilt on restore). *)
type snapshot = {
  ck_phase : int;  (** next phase to run (1-based) *)
  ck_phases_rev : Partition.Stage1.phase_trace list;
      (** phase traces so far, reverse-chronological *)
  ck_nodes : Partition.State.node array;
  ck_stats : Congest.Stats.t;
  ck_rejections : (int * string) list;
  ck_nominal_rounds : int;
  ck_telemetry : Congest.Telemetry.t option;
      (** per-round series recorded up to the snapshot, when the
          checkpointed run had a telemetry recorder attached *)
  ck_trace : Congest.Trace.t option;
      (** event-trace state recorded up to the snapshot, when the
          checkpointed run had a trace recorder attached *)
}

type checkpoint = {
  save : snapshot -> unit;
  load : unit -> snapshot option;
  every : int;
}

type totals = {
  verdict : verdict;
  stage1 : Partition.Stage1.result option;
  rounds : int;
  nominal_rounds : int;
  messages : int;
  total_bits : int;
  fast_forwarded_rounds : int;
  dropped : int;
  duplicated : int;
  delayed : int;
  crashed_nodes : int;
}

type eps_budget = Edge_budget | Vertex_budget

(* Random_partition's target is [eps' * n] vertices' worth of cut edges.
   An edge-budget property (distance counted in edge edits out of [m],
   which is what planarity, bipartiteness and cycle-freeness all use in
   the general-graph model) rescales its [eps * m] budget to
   [eps' = eps * m / n]; a vertex-budget property already speaks vertex
   units and only needs the clamp.  Either way, for a large sparse graph
   the ratio can land below [1 / n], at which point the target [eps' * n]
   rounds below one edge and the partition goal is vacuous; clamp so
   [eps' * n >= 1] always holds (and below the degenerate 1.0). *)
let effective_eps ?(budget = Edge_budget) g ~eps =
  let n = Graph.n g in
  if n = 0 then eps
  else
    let raw =
      match budget with
      | Edge_budget -> eps *. float_of_int (Graph.m g) /. float_of_int n
      | Vertex_budget -> eps
    in
    min 0.999 (max raw (1.0 /. float_of_int n))

let run ?(seed = 0) ?(alpha = 3) ?(partition = Stage_one)
    ?(measure_diameters = false) ?telemetry ?trace ?(domains = 1)
    ?(fast_forward = true) ?faults ?(mode = Congest.Compiled.Fiber)
    ?checkpoint ?heartbeat ~property ~stage2 g ~eps =
  let faults_active = Congest.Faults.active faults in
  (match (checkpoint, partition) with
  | Some ck, _ when ck.every < 1 ->
      invalid_arg
        (Printf.sprintf "Tester.Harness.run (%s): checkpoint.every must be \
                         >= 1" property)
  | Some _, Exponential_shifts ->
      invalid_arg
        (Printf.sprintf
           "Tester.Harness.run (%s): checkpointing requires the Stage_one \
            partition (Exponential_shifts clusters centrally, with no phase \
            boundaries to checkpoint at)"
           property)
  | _ -> ());
  (* Heartbeat plumbing — all host-side.  [hb_on_round] ticks from the
     engine's quiescent round boundaries; the sample closure reads the
     state's accumulated stats (primitive-run granularity) plus the
     phase counters below; phase boundaries force a publication. *)
  let hb_phases_done = ref 0 in
  let hb_phases_total =
    ref
      (match partition with
      | Stage_one -> Partition.Stage1.phases_for ~eps ~alpha + 1
      | Exponential_shifts -> 1 (* centralized clustering; Stage II only *))
  in
  let hb_on_round =
    Option.map (fun hb rounds -> Obs.Heartbeat.tick hb ~rounds) heartbeat
  in
  let attach_heartbeat st =
    Option.iter
      (fun hb ->
        let stats = st.Partition.State.stats in
        Obs.Heartbeat.attach hb ~sample:(fun () ->
            {
              Obs.Heartbeat.rounds = stats.Congest.Stats.rounds;
              charged_rounds = stats.Congest.Stats.charged_rounds;
              messages = stats.Congest.Stats.messages;
              total_bits = stats.Congest.Stats.total_bits;
              phases_done = !hb_phases_done;
              phases_total = !hb_phases_total;
            });
        Obs.Heartbeat.publish hb)
      heartbeat
  in
  let hb_publish () = Option.iter Obs.Heartbeat.publish heartbeat in
  let stage1, st =
    match partition with
    | Stage_one ->
        (* The state pre-exists the run so the [on_phase] closure can
           capture it for checkpoint snapshots and so the heartbeat can
           sample it; with neither feature in use this is exactly
           [Stage1.run]'s own [State.create g] hoisted out. *)
        let st0, resume =
          match checkpoint with
          | None -> (Partition.State.create g, None)
          | Some ck -> (
              match ck.load () with
              | Some s ->
                  (* Splice the pre-interruption per-round series into
                     this run's recorder, so the final stats JSON is
                     byte-identical to an uninterrupted run's. *)
                  (match (s.ck_telemetry, telemetry) with
                  | Some src, Some dst ->
                      Congest.Telemetry.restore_into dst ~from:src
                  | _ -> ());
                  (* Same splice for the event trace: the resumed run's
                     .ctrace then carries the pre-interruption rounds,
                     phases and aggregate totals as if never stopped
                     (host-clock deltas restart — see
                     {!Congest.Trace.restore_into}). *)
                  (match (s.ck_trace, trace) with
                  | Some src, Some dst -> Congest.Trace.restore_into dst ~from:src
                  | _ -> ());
                  ( Partition.State.restore g ~nodes:s.ck_nodes
                      ~stats:s.ck_stats ~rejections:s.ck_rejections
                      ~nominal_rounds:s.ck_nominal_rounds,
                    Some (s.ck_phase, s.ck_phases_rev) )
              | None -> (Partition.State.create g, None))
        in
        (match resume with
        | Some (next_phase, _) -> hb_phases_done := next_phase - 1
        | None -> ());
        attach_heartbeat st0;
        let completed = ref 0 in
        let on_phase next_phase phases_rev =
          incr completed;
          hb_phases_done := next_phase - 1;
          (match checkpoint with
          | Some ck when !completed mod ck.every = 0 ->
              ck.save
                {
                  ck_phase = next_phase;
                  ck_phases_rev = phases_rev;
                  ck_nodes = st0.Partition.State.nodes;
                  ck_stats = Congest.Stats.copy st0.Partition.State.stats;
                  ck_rejections = st0.Partition.State.rejections;
                  ck_nominal_rounds = st0.Partition.State.nominal_rounds;
                  ck_telemetry = Option.map Congest.Telemetry.copy telemetry;
                  ck_trace = Option.map Congest.Trace.copy trace;
                }
          | _ -> ());
          hb_publish ()
        in
        let r =
          Partition.Stage1.run ~alpha ~measure_diameters ?telemetry ?trace
            ~domains ~fast_forward ?faults ~mode ?on_round:hb_on_round
            ~state:st0 ?resume ~on_phase g ~eps
        in
        hb_phases_done := List.length r.Partition.Stage1.phases;
        (Some r, r.Partition.Stage1.state)
    | Exponential_shifts ->
        let r = Partition.En_partition.run ~seed g ~eps in
        let st = r.Partition.En_partition.state in
        st.Partition.State.telemetry <- telemetry;
        st.Partition.State.trace <- trace;
        st.Partition.State.domains <- domains;
        st.Partition.State.fast_forward <- fast_forward;
        (* Like telemetry/domains, faults apply to the engine runs issued
           from here on (Stage II); the centralized En clustering above
           already ran. *)
        st.Partition.State.faults <- faults;
        st.Partition.State.mode <- mode;
        st.Partition.State.on_round <- hb_on_round;
        attach_heartbeat st;
        (None, st)
  in
  let degraded = ref None in
  (match stage1 with
  | Some r -> degraded := r.Partition.Stage1.degraded
  | None -> ());
  let partition_rejected =
    match stage1 with
    | Some r -> r.Partition.Stage1.rejected <> []
    | None -> false
  in
  (* Under an active policy, a fault can corrupt the partition state in
     ways Stage II would misread as property violations; verify the
     state centrally and degrade loudly instead of testing on garbage. *)
  if !degraded = None && faults_active && not partition_rejected then (
    try Partition.State.check_invariants st
    with Failure msg ->
      degraded := Some (Printf.sprintf "partition state corrupted: %s" msg));
  let stage2_result =
    if !degraded = None && not partition_rejected then begin
      Option.iter
        (fun tel -> Congest.Telemetry.phase tel "stage2")
        telemetry;
      Option.iter (fun tr -> Congest.Trace.phase tr "stage2") trace;
      Obs.Log.set_context ~phase:"stage2" ();
      hb_publish ();
      let rounds_before = st.Partition.State.stats.Congest.Stats.rounds in
      let r =
        try Some (stage2 st ~eps ~seed) with
        | Congest.Faults.Degraded msg ->
            degraded := Some msg;
            None
        | e when faults_active ->
            degraded :=
              Some
                ("Stage II interrupted under faults: " ^ Printexc.to_string e);
            None
      in
      if Obs.Metrics.enabled () then
        Obs.Metrics.observe m_stage2_rounds
          (st.Partition.State.stats.Congest.Stats.rounds - rounds_before);
      Obs.Log.set_context ~phase:"" ();
      if Option.is_some r then hb_phases_done := !hb_phases_total;
      r
    end
    else None
  in
  let stats = st.Partition.State.stats in
  let rejections = st.Partition.State.rejections in
  let verdict =
    match !degraded with
    | Some msg -> Degraded msg
    | None ->
        if rejections = [] then Accept
        else if faults_active && Congest.Stats.faults_fired stats then
          (* One-sided error by construction: rejection evidence gathered
             while the fault layer was interfering could be an artifact of
             a lost or duplicated message, so it is not trustworthy.  An
             input with the property therefore never outputs [Reject]
             under faults — it accepts, or degrades explicitly. *)
          Degraded
            (Printf.sprintf
               "rejection evidence found while faults were active (%d \
                dropped, %d duplicated, %d delayed, %d crashed) — not \
                trustworthy"
               stats.Congest.Stats.dropped stats.Congest.Stats.duplicated
               stats.Congest.Stats.delayed stats.Congest.Stats.crashed_nodes)
        else Reject (List.sort_uniq compare rejections)
  in
  if Obs.Metrics.enabled () then
    Obs.Metrics.inc m_verdicts
      ~labels:
        [ (match verdict with
          | Accept -> "accept"
          | Reject _ -> "reject"
          | Degraded _ -> "degraded") ];
  ( stage2_result,
    {
      verdict;
      stage1;
      rounds = stats.Congest.Stats.rounds;
      nominal_rounds = st.Partition.State.nominal_rounds;
      messages = stats.Congest.Stats.messages;
      total_bits = stats.Congest.Stats.total_bits;
      fast_forwarded_rounds = stats.Congest.Stats.fast_forwarded_rounds;
      dropped = stats.Congest.Stats.dropped;
      duplicated = stats.Congest.Stats.duplicated;
      delayed = stats.Congest.Stats.delayed;
      crashed_nodes = stats.Congest.Stats.crashed_nodes;
    } )
