(** Distributed bipartiteness tester on the shared {!Harness}.

    Stage I partitions the graph into low-diameter parts cutting at most
    [eps * m / 2] edges; Stage II 2-colors each part along its BFS tree
    (built by {!Part_bfs}) and rejects at any node owning an intra-part
    edge that joins equal BFS parities — the local certificate of an odd
    cycle.

    One-sided error: a bipartite input never rejects (every part of a
    bipartite graph is bipartite, and within a part the BFS parities are
    exact).  If the input is [eps]-far from bipartite (more than
    [eps * m] edge deletions needed), removing the cut still leaves some
    part non-bipartite, and its BFS exposes an equal-parity edge
    deterministically — so far inputs reject with certainty on a
    fault-free run, not merely with high probability.

    Accounting inherits the harness contract: verdict and totals are
    byte-identical across [?domains], [?fast_forward] and [?mode]. *)

(** Per-part summary gathered by convergecast at each part root. *)
type part_info = {
  root : int;
  n_nodes : int;
  m_edges : int;  (** intra-part edges (each counted once, at its owner) *)
  odd_edges : int;  (** equal-parity intra-part edges found in this part *)
}

(** Stage II outcome, [fst] of {!run}'s result ([None] when Stage II was
    skipped because Stage I rejected or the run degraded). *)
type details = {
  parts : part_info list;
  odd_edges : int;  (** total equal-parity edges across all parts *)
  depth_bound : int;  (** maximum part-tree depth used as the BFS budget *)
}

(** Same knobs, defaults and guarantees as {!Harness.run} (and hence as
    {!Planarity_tester.run}, minus the embedding option). *)
val run :
  ?seed:int ->
  ?alpha:int ->
  ?partition:Harness.partition_mode ->
  ?measure_diameters:bool ->
  ?telemetry:Congest.Telemetry.t ->
  ?trace:Congest.Trace.t ->
  ?domains:int ->
  ?fast_forward:bool ->
  ?faults:Congest.Faults.policy ->
  ?mode:Congest.Compiled.mode ->
  ?checkpoint:Harness.checkpoint ->
  ?heartbeat:Obs.Heartbeat.t ->
  Graphlib.Graph.t ->
  eps:float ->
  details option * Harness.totals

(** Convenience: [accepts] a graph iff the verdict is [Accept]. *)
val accepts :
  ?seed:int ->
  ?partition:Harness.partition_mode ->
  Graphlib.Graph.t ->
  eps:float ->
  bool
