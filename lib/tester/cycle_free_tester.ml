module S = Partition.State
module P = Partition.Prims

type part_info = {
  root : int;
  n_nodes : int;
  m_edges : int;
  excess : int;
}

type details = {
  parts : part_info list;
  excess_edges : int;
  depth_bound : int;
}

(* Stage II for cycle-freeness: each part root learns its part's node and
   edge counts by convergecast and rejects iff [m_j >= n_j] — a connected
   part is a tree exactly when [m_j = n_j - 1], so any excess edge closes
   a cycle.  Edge ownership (deeper endpoint, ties by id) makes every
   intra-part edge count exactly once.

   Completeness: in a forest every part is a sub-forest, so
   [m_j <= n_j - 1] at every root and no one rejects.  Soundness: the
   excess of [g] (edges beyond a spanning forest) is exactly the number
   of deletions to cycle-freeness, so an eps-far input has excess
   >= eps * m; the cut removes <= eps * m / 2 edges, leaving total
   intra-part excess >= eps * m / 2 > 0 — some part root sees
   [m_j >= n_j] and rejects with certainty on a fault-free run. *)
let stage2 st ~eps:_ ~seed:_ =
  let bfs = Part_bfs.build st in
  let budget = bfs.Part_bfs.depth_bound + 2 in
  let counts = Hashtbl.create 16 in
  P.converge st ~budget ~tag:93
    ~init:(fun nd ->
      let edges = ref 0 in
      Part_bfs.iter_intra st nd (fun _ w ->
          if Part_bfs.assigned_to bfs st nd.S.id w then incr edges);
      (1, !edges))
    ~combine:(fun (a, b) (x, y) -> (a + x, b + y))
    ~encode:(fun (a, b) -> [ a; b ])
    ~decode:(function [ a; b ] -> (a, b) | _ -> assert false)
    ~at_root:(fun nd (nj, mj) ->
      Hashtbl.replace counts nd.S.id (nj, mj);
      if mj >= nj then
        st.S.rejections <-
          ( nd.S.id,
            Printf.sprintf
              "part %d: %d intra-part edges >= %d nodes — contains a cycle"
              nd.S.id mj nj )
          :: st.S.rejections);
  (* Nominal schedule: refresh_roots (1) + BFS flood (budget) + level
     exchange (1) + convergecast (budget); [budget] is a function of the
     partition alone, so invariant across domains / ff / mode. *)
  st.S.nominal_rounds <- st.S.nominal_rounds + (2 * budget) + 2;
  let parts =
    List.map
      (fun (root, _) ->
        let nj, mj = Hashtbl.find counts root in
        { root; n_nodes = nj; m_edges = mj; excess = max 0 (mj - (nj - 1)) })
      (S.parts st)
  in
  {
    parts;
    excess_edges = List.fold_left (fun acc p -> acc + p.excess) 0 parts;
    depth_bound = bfs.Part_bfs.depth_bound;
  }

let run ?seed ?alpha ?partition ?measure_diameters ?telemetry ?trace ?domains
    ?fast_forward ?faults ?mode ?checkpoint ?heartbeat g ~eps =
  Harness.run ?seed ?alpha ?partition ?measure_diameters ?telemetry ?trace
    ?domains ?fast_forward ?faults ?mode ?checkpoint ?heartbeat
    ~property:"cycle-free" ~stage2 g ~eps

let accepts ?seed ?partition g ~eps =
  match (snd (run ?seed ?partition g ~eps)).Harness.verdict with
  | Harness.Accept -> true
  | Harness.Reject _ | Harness.Degraded _ -> false
