open Graphlib
module S = Partition.State
module P = Partition.Prims

type part_info = {
  root : int;
  n_nodes : int;
  m_edges : int;
  odd_edges : int;
}

type details = {
  parts : part_info list;
  odd_edges : int;
  depth_bound : int;
}

(* Stage II for bipartiteness: 2-color each part along its BFS tree and
   look for an intra-part edge joining equal parities — the certificate
   of an odd cycle.  Tree edges always join adjacent (hence
   opposite-parity) levels, so only assigned non-tree edges are checked;
   the deeper endpoint (ties: larger id) owns each edge, so every edge is
   examined exactly once.

   Completeness: a bipartite graph has bipartite parts, and in a
   bipartite part every edge joins opposite BFS parities — no node ever
   rejects.  Soundness: if [g] is eps-far from bipartite (>= eps * m
   edge deletions needed), deleting the <= eps * m / 2 cut edges leaves
   parts that still need >= eps * m / 2 deletions in total, so some part
   is non-bipartite and its (exact, within-part) BFS exposes an
   equal-parity edge deterministically. *)
let stage2 st ~eps:_ ~seed:_ =
  let n = Graph.n st.S.graph in
  let bfs = Part_bfs.build st in
  let budget = bfs.Part_bfs.depth_bound + 2 in
  (* Local parity check: [build] already delivered every neighbor's BFS
     level ([nbr_level]), so no further rounds are needed to decide. *)
  let odd_at = Array.make n 0 in
  Array.iter
    (fun nd ->
      let v = nd.S.id in
      Part_bfs.iter_intra st nd (fun _ w ->
          if
            Part_bfs.assigned_to bfs st v w
            && not (Part_bfs.is_tree_edge st v w)
          then
            let dv = bfs.Part_bfs.dist.(v)
            and dw = List.assoc w bfs.Part_bfs.nbr_level.(v) in
            if (dv - dw) mod 2 = 0 then begin
              odd_at.(v) <- odd_at.(v) + 1;
              st.S.rejections <-
                ( v,
                  Printf.sprintf
                    "node %d: intra-part edge (%d, %d) joins equal BFS \
                     parities (odd cycle)"
                    v v w )
                :: st.S.rejections
            end))
    st.S.nodes;
  (* Convergecast per-part totals to the roots, for the report (the
     verdict is already decided above). *)
  let counts = Hashtbl.create 16 in
  P.converge st ~budget ~tag:92
    ~init:(fun nd ->
      let edges = ref 0 in
      Part_bfs.iter_intra st nd (fun _ w ->
          if Part_bfs.assigned_to bfs st nd.S.id w then incr edges);
      (1, !edges, odd_at.(nd.S.id)))
    ~combine:(fun (a, b, c) (x, y, z) -> (a + x, b + y, c + z))
    ~encode:(fun (a, b, c) -> [ a; b; c ])
    ~decode:(function [ a; b; c ] -> (a, b, c) | _ -> assert false)
    ~at_root:(fun nd t -> Hashtbl.replace counts nd.S.id t);
  (* Nominal schedule: refresh_roots (1) + BFS flood (budget) + level
     exchange (1) + convergecast (budget).  [budget] depends only on the
     partition, so this is invariant across domains / ff / mode. *)
  st.S.nominal_rounds <- st.S.nominal_rounds + (2 * budget) + 2;
  let parts =
    List.map
      (fun (root, _) ->
        let nj, mj, oj = Hashtbl.find counts root in
        { root; n_nodes = nj; m_edges = mj; odd_edges = oj })
      (S.parts st)
  in
  {
    parts;
    odd_edges =
      List.fold_left (fun acc (p : part_info) -> acc + p.odd_edges) 0 parts;
    depth_bound = bfs.Part_bfs.depth_bound;
  }

let run ?seed ?alpha ?partition ?measure_diameters ?telemetry ?trace ?domains
    ?fast_forward ?faults ?mode ?checkpoint ?heartbeat g ~eps =
  Harness.run ?seed ?alpha ?partition ?measure_diameters ?telemetry ?trace
    ?domains ?fast_forward ?faults ?mode ?checkpoint ?heartbeat
    ~property:"bipartite" ~stage2 g ~eps

let accepts ?seed ?partition g ~eps =
  match (snd (run ?seed ?partition g ~eps)).Harness.verdict with
  | Harness.Accept -> true
  | Harness.Reject _ | Harness.Degraded _ -> false
