(** The complete distributed planarity tester of Theorem 1: Stage I
    (partition, {!Partition.Stage1}) followed by Stage II (per-part testing,
    {!Stage2}), instantiated on the shared {!Harness}.

    Guarantee: if the input graph is planar, every node accepts; if it is
    [eps]-far from planar (more than [eps * m] edge deletions needed), some
    node rejects with probability [1 - 1/poly n].

    The verdict/snapshot/checkpoint types are transparent equations with
    {!Harness} — they are the harness types, re-exported here so callers
    that predate the harness keep working unchanged. *)

type verdict = Harness.verdict =
  | Accept
  | Reject of (int * string) list
  | Degraded of string
      (** an active fault policy (see {!Congest.Faults}) prevented a
          trustworthy verdict: a crash-stopped node, a broken lockstep
          assumption, a corrupted partition state, or rejection evidence
          gathered while faults were interfering.  The one-sided-error
          guarantee is preserved by construction: a planar input under
          faults accepts or degrades — it never flips to [Reject]. *)

(** Which partitioning algorithm feeds Stage II.  [Stage_one] is the
    paper's deterministic Stage I (Theorem 1); [Exponential_shifts] is the
    Section 1.1 alternative (the Elkin–Neiman-style clustering of
    {!Partition.En_partition}), giving [O(log^2 n poly(1/eps))] rounds and
    losing the deterministic completeness of the partition step (the
    planarity verdict stays one-sided either way). *)
type partition_mode = Harness.partition_mode =
  | Stage_one
  | Exponential_shifts

(** A resumable image of a [Stage_one] run, captured at a Stage I phase
    boundary — the only points where every engine pool is quiescent, so
    the whole tester state is the plain data below (no fibers, no
    continuations; all of it marshal-safe).  Stage II is not covered: it
    is a constant number of rounds per part and re-runs from the restored
    partition. *)
type snapshot = Harness.snapshot = {
  ck_phase : int;  (** next Stage I phase to run (1-based) *)
  ck_phases_rev : Partition.Stage1.phase_trace list;
      (** completed phase traces, reverse-chronological (the shape
          {!Partition.Stage1.run}'s [?on_phase]/[?resume] use) *)
  ck_nodes : Partition.State.node array;
  ck_stats : Congest.Stats.t;
  ck_rejections : (int * string) list;
  ck_nominal_rounds : int;
  ck_telemetry : Congest.Telemetry.t option;
      (** the per-round series recorded up to the snapshot (deep copy);
          restored into the resuming run's recorder so the final
          telemetry — and hence the whole stats JSON — matches an
          uninterrupted run *)
  ck_trace : Congest.Trace.t option;
      (** the event-trace state recorded up to the snapshot (deep copy);
          restored into the resuming run's recorder so the resumed
          .ctrace carries the pre-interruption rounds, phase records and
          aggregate totals — [planartrace diff] then matches an
          uninterrupted run (host wall-clock/GC deltas restart at the
          resume point; see {!Congest.Trace.restore_into}) *)
}

(** Checkpoint control, storage-agnostic: the tester calls [load] once at
    startup (a [Some] snapshot resumes the run from that phase boundary;
    [None] starts fresh) and [save] after every [every]-th completed
    phase.  [save] must capture the snapshot before returning — the
    arrays inside are live state the run keeps mutating (the provided
    {!Report.Checkpoint} implementation marshals to disk immediately).
    A run resumed from a snapshot produces byte-identical statistics to
    an uninterrupted run with the same parameters. *)
type checkpoint = Harness.checkpoint = {
  save : snapshot -> unit;
  load : unit -> snapshot option;
  every : int;  (** save every [every]-th completed phase; >= 1 *)
}

type report = {
  verdict : verdict;
  stage1 : Partition.Stage1.result option;
      (** present in [Stage_one] mode *)
  stage2 : Stage2.result option;  (** [None] when Stage I already rejected *)
  rounds : int;  (** simulator rounds over both stages *)
  nominal_rounds : int;  (** the paper's fixed-schedule round count *)
  messages : int;
  total_bits : int;
  fast_forwarded_rounds : int;
      (** of [rounds], how many the engine advanced in O(1) as provably
          quiescent (included in [rounds]; see {!Congest.Engine}) *)
  dropped : int;  (** fault layer: messages destroyed (0 without faults) *)
  duplicated : int;  (** fault layer: extra copies injected *)
  delayed : int;  (** fault layer: messages deferred by >= 1 round *)
  crashed_nodes : int;  (** fault layer: crash events that took effect *)
}

(** [run ?seed ?alpha ?partition g ~eps] executes the tester on the
    simulator.  [seed] drives the randomized steps (Stage II's edge
    sampling, and the shifts in [Exponential_shifts] mode).  [telemetry]
    records per-round series, with one {!Congest.Telemetry} phase per
    Stage I phase plus a ["stage2"] phase.  [trace] records typed
    per-event data (see {!Congest.Trace}) with the same phase labels; in
    [Exponential_shifts] mode it covers the engine runs issued from
    Stage II on, like telemetry.  [measure_diameters] (default
    [false]) fills the exact per-phase part diameters in the Stage I
    trace — a centralized diagnostic the tester itself never consults,
    and an all-pairs-BFS sweep per phase, so it is off unless asked
    for.  [domains] shards every engine run across that many OCaml
    domains; the report is identical for any value (see
    {!Congest.Engine}).  [fast_forward] (default [true]) lets the engine
    skip provably quiescent rounds in O(1); accounting is identical
    either way, so disabling it is only useful to measure the
    optimisation.  [faults] injects a deterministic fault schedule into
    every engine run (in [Exponential_shifts] mode the centralized
    clustering itself is unaffected, like telemetry): the verdict is then
    [Accept], [Degraded] — or [Reject] only when no fault actually fired,
    so the report is identical for any [domains] and [fast_forward]
    setting, faults included.  [mode] selects the execution engine for the
    lockstep Stage I primitives (default [Fiber]): [Compiled]/[Auto] run
    them as fiber-free array passes when no faults and no trace are
    attached, with a byte-identical report, Stats and Telemetry (see
    {!Congest.Compiled}); Stage II and general node programs always use
    the fiber engine.  [checkpoint] enables phase-boundary
    checkpoint/resume (see {!checkpoint}); it requires the [Stage_one]
    partition and raises [Invalid_argument] with [Exponential_shifts].
    Snapshots carry the telemetry series and the event-trace state, so a
    resumed run's stats JSON (verdict, totals and per-round telemetry)
    is byte-identical to an uninterrupted run's, and a resumed run's
    .ctrace aggregates match an uninterrupted run's under [planartrace
    diff] (host wall-clock/GC deltas restart at the resume point).
    [heartbeat] attaches a live {!Obs.Heartbeat.t} (purely host-side —
    see {!Harness.run}; the caller owns the final
    {!Obs.Heartbeat.finish}). *)
val run :
  ?seed:int ->
  ?alpha:int ->
  ?partition:partition_mode ->
  ?embedding:Stage2.embedding_mode ->
  ?measure_diameters:bool ->
  ?telemetry:Congest.Telemetry.t ->
  ?trace:Congest.Trace.t ->
  ?domains:int ->
  ?fast_forward:bool ->
  ?faults:Congest.Faults.policy ->
  ?mode:Congest.Compiled.mode ->
  ?checkpoint:checkpoint ->
  ?heartbeat:Obs.Heartbeat.t ->
  Graphlib.Graph.t ->
  eps:float ->
  report

(** Convenience: [accepts] a graph iff no node rejected. *)
val accepts :
  ?seed:int -> ?partition:partition_mode -> Graphlib.Graph.t -> eps:float ->
  bool
