module Json = Congest.Telemetry.Json

exception Fail of int * string

let fail pos msg = raise (Fail (pos, msg))

type st = { s : string; mutable pos : int }

let peek t = if t.pos < String.length t.s then Some t.s.[t.pos] else None

let skip_ws t =
  let n = String.length t.s in
  while
    t.pos < n
    && match t.s.[t.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    t.pos <- t.pos + 1
  done

let expect t c =
  match peek t with
  | Some c' when c' = c -> t.pos <- t.pos + 1
  | Some c' -> fail t.pos (Printf.sprintf "expected %c, found %c" c c')
  | None -> fail t.pos (Printf.sprintf "expected %c, found end of input" c)

let literal t word v =
  let n = String.length word in
  if t.pos + n <= String.length t.s && String.sub t.s t.pos n = word then begin
    t.pos <- t.pos + n;
    v
  end
  else fail t.pos (Printf.sprintf "expected %s" word)

(* UTF-8 encode one scalar value. *)
let add_utf8 b u =
  if u < 0x80 then Buffer.add_char b (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex4 t =
  if t.pos + 4 > String.length t.s then fail t.pos "truncated \\u escape";
  let v = ref 0 in
  for i = 0 to 3 do
    let c = t.s.[t.pos + i] in
    let d =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail (t.pos + i) "bad hex digit in \\u escape"
    in
    v := (!v * 16) + d
  done;
  t.pos <- t.pos + 4;
  !v

let parse_string t =
  expect t '"';
  let b = Buffer.create 16 in
  let rec go () =
    if t.pos >= String.length t.s then fail t.pos "unterminated string";
    match t.s.[t.pos] with
    | '"' -> t.pos <- t.pos + 1
    | '\\' ->
        t.pos <- t.pos + 1;
        (if t.pos >= String.length t.s then fail t.pos "unterminated escape";
         (match t.s.[t.pos] with
         | '"' -> Buffer.add_char b '"'; t.pos <- t.pos + 1
         | '\\' -> Buffer.add_char b '\\'; t.pos <- t.pos + 1
         | '/' -> Buffer.add_char b '/'; t.pos <- t.pos + 1
         | 'b' -> Buffer.add_char b '\b'; t.pos <- t.pos + 1
         | 'f' -> Buffer.add_char b '\012'; t.pos <- t.pos + 1
         | 'n' -> Buffer.add_char b '\n'; t.pos <- t.pos + 1
         | 'r' -> Buffer.add_char b '\r'; t.pos <- t.pos + 1
         | 't' -> Buffer.add_char b '\t'; t.pos <- t.pos + 1
         | 'u' ->
             t.pos <- t.pos + 1;
             let u = hex4 t in
             if u >= 0xD800 && u <= 0xDBFF then begin
               (* high surrogate: require a low surrogate next *)
               if t.pos + 2 <= String.length t.s
                  && t.s.[t.pos] = '\\'
                  && t.s.[t.pos + 1] = 'u'
               then begin
                 t.pos <- t.pos + 2;
                 let lo = hex4 t in
                 if lo < 0xDC00 || lo > 0xDFFF then
                   fail t.pos "unpaired surrogate in \\u escape";
                 add_utf8 b
                   (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
               end
               else fail t.pos "unpaired surrogate in \\u escape"
             end
             else if u >= 0xDC00 && u <= 0xDFFF then
               fail t.pos "unpaired surrogate in \\u escape"
             else add_utf8 b u
         | c -> fail t.pos (Printf.sprintf "bad escape \\%c" c)));
        go ()
    | c when Char.code c < 0x20 -> fail t.pos "raw control byte in string"
    | c ->
        Buffer.add_char b c;
        t.pos <- t.pos + 1;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number t =
  let start = t.pos in
  let n = String.length t.s in
  let is_float = ref false in
  if peek t = Some '-' then t.pos <- t.pos + 1;
  while
    t.pos < n
    && match t.s.[t.pos] with
       | '0' .. '9' -> true
       | '.' | 'e' | 'E' | '+' | '-' ->
           (match t.s.[t.pos] with
           | '.' | 'e' | 'E' -> is_float := true
           | _ -> ());
           true
       | _ -> false
  do
    t.pos <- t.pos + 1
  done;
  let lit = String.sub t.s start (t.pos - start) in
  if lit = "" || lit = "-" then fail start "malformed number";
  if !is_float then
    match float_of_string_opt lit with
    | Some f -> Json.Float f
    | None -> fail start (Printf.sprintf "malformed number %S" lit)
  else
    match int_of_string_opt lit with
    | Some i -> Json.Int i
    | None -> (
        (* out of int range: fall back to float *)
        match float_of_string_opt lit with
        | Some f -> Json.Float f
        | None -> fail start (Printf.sprintf "malformed number %S" lit))

let rec parse_value t =
  skip_ws t;
  match peek t with
  | None -> fail t.pos "unexpected end of input"
  | Some '{' ->
      t.pos <- t.pos + 1;
      skip_ws t;
      if peek t = Some '}' then begin
        t.pos <- t.pos + 1;
        Json.Obj []
      end
      else begin
        let members = ref [] in
        let rec members_loop () =
          skip_ws t;
          let k = parse_string t in
          skip_ws t;
          expect t ':';
          let v = parse_value t in
          members := (k, v) :: !members;
          skip_ws t;
          match peek t with
          | Some ',' ->
              t.pos <- t.pos + 1;
              members_loop ()
          | Some '}' -> t.pos <- t.pos + 1
          | _ -> fail t.pos "expected , or } in object"
        in
        members_loop ();
        Json.Obj (List.rev !members)
      end
  | Some '[' ->
      t.pos <- t.pos + 1;
      skip_ws t;
      if peek t = Some ']' then begin
        t.pos <- t.pos + 1;
        Json.List []
      end
      else begin
        let items = ref [] in
        let rec items_loop () =
          let v = parse_value t in
          items := v :: !items;
          skip_ws t;
          match peek t with
          | Some ',' ->
              t.pos <- t.pos + 1;
              items_loop ()
          | Some ']' -> t.pos <- t.pos + 1
          | _ -> fail t.pos "expected , or ] in array"
        in
        items_loop ();
        Json.List (List.rev !items)
      end
  | Some '"' -> Json.String (parse_string t)
  | Some 't' -> literal t "true" (Json.Bool true)
  | Some 'f' -> literal t "false" (Json.Bool false)
  | Some 'n' -> literal t "null" Json.Null
  | Some ('-' | '0' .. '9') -> parse_number t
  | Some c -> fail t.pos (Printf.sprintf "unexpected character %c" c)

let of_string s =
  let t = { s; pos = 0 } in
  match parse_value t with
  | v ->
      skip_ws t;
      if t.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at byte %d" t.pos)
      else Ok v
  | exception Fail (pos, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" pos msg)

let of_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> (
      match of_string s with
      | Ok v -> Ok v
      | Error e -> Error (Printf.sprintf "%s: %s" path e))
  | exception Sys_error msg -> Error msg
