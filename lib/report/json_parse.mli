(** Recursive-descent parser for the JSON this repo emits
    ({!Congest.Telemetry.Json} has only a printer).

    RFC 8259 subset, strict: one top-level value, no trailing garbage,
    no comments.  Numbers without [.], [e] or [E] parse as [Int]
    (mirroring the printer, which never writes an [Int] in float
    form); everything else parses as [Float].  String escapes,
    including [\uXXXX] (encoded to UTF-8, surrogate pairs supported),
    are handled.  Errors carry a byte offset. *)

val of_string : string -> (Congest.Telemetry.Json.t, string) result

val of_file : string -> (Congest.Telemetry.Json.t, string) result
(** Reads the whole file; IO failures come back as [Error]. *)
