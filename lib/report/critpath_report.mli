(** Critical-path analysis of a {!Ctrace.view} and its locked JSON form.

    {!Obs.Critpath} is deliberately engine-agnostic; this module maps a
    trace's surviving ring into its input events, runs the analyzer with
    the view's node count and loss flags, and renders the report as the
    [critpath/v1] schema document. *)

val schema : string
(** ["critpath/v1"], registered in {!Report.known_schemas}. *)

(** Analyzer input from a view's ring: deliveries, causal resumes,
    phase switches and run boundaries. *)
val events_of_view : Ctrace.view -> Obs.Critpath.event list

(** True when the recording lost events to ring overwrite or sampling —
    the analyzer may then be missing causal parents. *)
val lossy_view : Ctrace.view -> bool

val analyze : Ctrace.view -> Obs.Critpath.report

(** [to_json ?top r] renders [critpath/v1].  [top] (default 10) bounds
    the blame-ranked edge table; the hop list is always complete. *)
val to_json : ?top:int -> Obs.Critpath.report -> Congest.Telemetry.Json.t
