(* On-disk container for tester checkpoints (see planarity_tester.mli's
   [checkpoint] for the in-process protocol).

   Layout, all bytes big-endian-free (no integers outside the marshalled
   payload):

     bytes 0..7    magic "PLNRCK02" (version in the last two digits;
                   02 added the optional event-trace state to the
                   snapshot, so 01 files no longer load)
     bytes 8..23   MD5 digest of the body
     bytes 24..    body = Marshal.to_string (fingerprint, snapshot)

   The fingerprint is a canonical string of every parameter that must
   match for a resume to be sound: the graph fingerprint plus eps, seed,
   alpha and the fault spec.  Parameters that provably do not change the
   result — [domains], [fast_forward], telemetry/trace observers — are
   deliberately excluded, so a run checkpointed with 1 domain can resume
   with 8.

   Writes go through a temp file + rename so a crash mid-save leaves the
   previous checkpoint intact rather than a torn file. *)

module PT = Tester.Planarity_tester

let magic = "PLNRCK02"

let fingerprint ?(property = "planarity") g ~eps ~seed ~alpha ~faults =
  (* The property name guards against resuming one tester's Stage I into
     another (the partition is property-independent, but the snapshot's
     accounting is about to diverge).  Planarity contributes no suffix so
     its fingerprints — and hence existing checkpoint files — are
     byte-identical to pre-harness builds. *)
  Printf.sprintf "graph=%Lx eps=%h seed=%d alpha=%d faults=%s%s"
    (Graphlib.Graph.fingerprint g)
    eps seed alpha
    (match faults with
    | None -> "none"
    | Some p -> Congest.Faults.to_spec p)
    (if property = "planarity" then "" else " property=" ^ property)

let save path ~fingerprint:fp (s : PT.snapshot) =
  let body = Marshal.to_string (fp, s) [] in
  let digest = Digest.string body in
  (* Atomic tmp+rename via the shared helper: a crash mid-save leaves
     the previous checkpoint intact rather than a torn file. *)
  Obs.Fsatomic.with_channel path (fun oc ->
      output_string oc magic;
      output_string oc digest;
      output_string oc body)

let load path ~fingerprint:fp =
  if not (Sys.file_exists path) then None
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let len = in_channel_length ic in
        let header = String.length magic + 16 in
        if len < header then
          failwith
            (Printf.sprintf "Checkpoint: %s is truncated (%d bytes)" path len);
        let mg = really_input_string ic (String.length magic) in
        if mg <> magic then
          failwith
            (Printf.sprintf
               "Checkpoint: %s is not a checkpoint file (bad magic %S)" path
               mg);
        let digest = really_input_string ic 16 in
        let body = really_input_string ic (len - header) in
        if Digest.string body <> digest then
          failwith
            (Printf.sprintf "Checkpoint: %s failed its checksum (corrupt)"
               path);
        let stored_fp, (s : PT.snapshot) =
          try (Marshal.from_string body 0 : string * PT.snapshot)
          with Failure _ ->
            failwith
              (Printf.sprintf
                 "Checkpoint: %s has an unreadable payload (written by an \
                  incompatible build?)"
                 path)
        in
        if stored_fp <> fp then
          failwith
            (Printf.sprintf
               "Checkpoint: %s was written for different parameters\n\
               \  stored:  %s\n\
               \  current: %s" path stored_fp fp);
        Some s)

let stage1 ~path ?(every = 1) ?after_save ?property g ~eps ~seed ~alpha
    ~faults =
  if every < 1 then invalid_arg "Checkpoint.stage1: every must be >= 1";
  let fp = fingerprint ?property g ~eps ~seed ~alpha ~faults in
  let saves = ref 0 in
  {
    PT.every;
    save =
      (fun s ->
        save path ~fingerprint:fp s;
        incr saves;
        match after_save with Some f -> f !saves | None -> ());
    load = (fun () -> load path ~fingerprint:fp);
  }
