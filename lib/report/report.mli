(** Machine-readable JSON reports shared by [planartest] and [bench].

    Both tools emit versioned envelopes — {!stats_schema} for a single
    tester run, {!bench_schema} for a benchmark sweep — that downstream
    tooling parses; the schema test suite locks the key sets and value
    types, so widen them here (and bump the version on breaking changes)
    rather than inline in the binaries. *)

module Json = Congest.Telemetry.Json

(** ["planartest.stats/v1"] *)
val stats_schema : string

(** ["planartest.stats/v2"] *)
val stats_schema_v2 : string

(** ["bench.planarity/v1"] *)
val bench_schema : string

(** [tester_stats ~n ~m ~eps ~seed ~domains ?telemetry ?faults report] is
    the stats document for one tester run.  The ["telemetry"] member is
    [null] when no telemetry was recorded.

    {b v1 → v2 compatibility.}  Without [?faults] the emitted document is
    the unchanged [planartest.stats/v1] — same keys, same order, same
    types, two-value ["verdict"] ([accept] / [reject]).  With [?faults]
    the schema tag becomes [planartest.stats/v2], which is v1 plus one
    additional ["faults"] object (keys [spec], [seed], [dropped],
    [duplicated], [delayed], [crashed_nodes], [degraded_reason]) inserted
    before ["telemetry"], and the ["verdict"] member may additionally be
    ["degraded"] (in which case ["rejections"] is empty and
    [faults.degraded_reason] is a string instead of [null]).  A v1
    consumer that ignores unknown keys reads every v1 field of a v2
    document unchanged. *)
val tester_stats :
  n:int ->
  m:int ->
  eps:float ->
  seed:int ->
  domains:int ->
  ?telemetry:Congest.Telemetry.t ->
  ?faults:Congest.Faults.policy ->
  Tester.Planarity_tester.report ->
  Json.t

(** [bench_envelope ~quick ~jobs ~domains experiments] is the
    [bench.planarity/v1] document; [experiments] are the per-experiment
    objects ([{"id", "title", "claim", "data"}]). *)
val bench_envelope : quick:bool -> jobs:int -> domains:int -> Json.t list -> Json.t

(** [write path j] writes [j] plus a trailing newline to [path], or to
    stdout when [path] is ["-"]. *)
val write : string -> Json.t -> unit
