(** Machine-readable JSON reports shared by [planartest] and [bench].

    Both tools emit versioned envelopes — {!stats_schema} for a single
    tester run, {!bench_schema} for a benchmark sweep — that downstream
    tooling parses; the schema test suite locks the key sets and value
    types, so widen them here (and bump the version on breaking changes)
    rather than inline in the binaries. *)

module Json = Congest.Telemetry.Json

(** Strict RFC 8259 parser for the documents this module emits. *)
module Json_parse = Json_parse

(** Binary [.ctrace] serialization of {!Congest.Trace} recordings. *)
module Ctrace = Ctrace

(** Chrome/Perfetto [trace_event] JSON export of a {!Ctrace.view}. *)
module Perfetto = Perfetto

(** Versioned binary checkpoint files for the tester (atomic saves,
    checksummed, parameter-fingerprinted loads). *)
module Checkpoint = Checkpoint

(** Causal critical-path analysis of a {!Ctrace.view} and the
    [critpath/v1] JSON document. *)
module Critpath_report = Critpath_report

(** Append-only provenance ledger of completed runs
    ([runs.ledger/v1] JSONL records, crash-safe appends). *)
module Ledger = Ledger

(** ["planartest.stats/v1"] *)
val stats_schema : string

(** ["planartest.stats/v2"] *)
val stats_schema_v2 : string

(** ["planartest.stats/v3"] *)
val stats_schema_v3 : string

(** ["bench.planarity/v1"] *)
val bench_schema : string

(** ["metrics/v1"] *)
val metrics_schema : string

(** ["critpath/v1"] *)
val critpath_schema : string

(** ["heartbeat/v1"] (emitted by {!Obs.Heartbeat}; registered here so
    {!check_schema} recognizes status files). *)
val heartbeat_schema : string

(** ["runs.ledger/v1"] *)
val ledger_schema : string

(** Every schema tag this build can emit or validate. *)
val known_schemas : string list

(** [check_schema j] validates a document's ["schema"] member against
    {!known_schemas}: [Ok tag] when recognized, [Error reason] when the
    member is missing, not a string, or an unknown version.  Golden
    comparisons must call this before comparing key sets, so a document
    from a newer (or corrupted) producer fails loudly instead of being
    silently diffed field-by-field. *)
val check_schema : Json.t -> (string, string) result

(** [tester_stats ~n ~m ~eps ~seed ~domains ?telemetry ?faults report] is
    the stats document for one tester run.  The ["telemetry"] member is
    [null] when no telemetry was recorded.

    {b v1 → v2 compatibility.}  Without [?faults] the emitted document is
    the unchanged [planartest.stats/v1] — same keys, same order, same
    types, two-value ["verdict"] ([accept] / [reject]).  With [?faults]
    the schema tag becomes [planartest.stats/v2], which is v1 plus one
    additional ["faults"] object (keys [spec], [seed], [dropped],
    [duplicated], [delayed], [crashed_nodes], [degraded_reason]) inserted
    before ["telemetry"], and the ["verdict"] member may additionally be
    ["degraded"] (in which case ["rejections"] is empty and
    [faults.degraded_reason] is a string instead of [null]).  A v1
    consumer that ignores unknown keys reads every v1 field of a v2
    document unchanged.

    {b v2 → v3.}  With [?host] (a finished {!Congest.Trace.t}) the schema
    tag becomes [planartest.stats/v3]: v2 plus one ["host"] object
    (per-phase wall-clock/GC/shard profiles under [phases], ring health
    under [trace]) inserted before ["telemetry"].  Host profiling data
    never contaminates the simulated accounting fields; with [?host]
    omitted the v1/v2 output is byte-identical to earlier builds. *)
val tester_stats :
  n:int ->
  m:int ->
  eps:float ->
  seed:int ->
  domains:int ->
  ?telemetry:Congest.Telemetry.t ->
  ?faults:Congest.Faults.policy ->
  ?host:Congest.Trace.t ->
  Tester.Planarity_tester.report ->
  Json.t

(** [harness_stats ~property totals] is the same stats document built
    from a {!Tester.Harness.totals} (any harness-based tester), plus one
    ["property"] string member inserted after ["seed"].  The v1/v2/v3
    tagging rules are identical to {!tester_stats}; planarity runs keep
    using {!tester_stats} so their documents stay byte-identical to
    pre-harness builds, while a consumer that ignores unknown keys reads
    both document shapes interchangeably. *)
val harness_stats :
  n:int ->
  m:int ->
  eps:float ->
  seed:int ->
  domains:int ->
  property:string ->
  ?telemetry:Congest.Telemetry.t ->
  ?faults:Congest.Faults.policy ->
  ?host:Congest.Trace.t ->
  Tester.Harness.totals ->
  Json.t

(** [bench_envelope ~quick ~jobs ~domains experiments] is the
    [bench.planarity/v1] document; [experiments] are the per-experiment
    objects ([{"id", "title", "claim", "data"}]). *)
val bench_envelope : quick:bool -> jobs:int -> domains:int -> Json.t list -> Json.t

(** [metrics_json ()] is the ["metrics/v1"] snapshot of an
    {!Obs.Metrics} registry (default: the process-wide one): families
    sorted by name, series by label values, histogram buckets carrying
    cumulative counts with ["count"] including the implicit [+Inf]
    bucket.  With [~stable_only:true] only simulated-deterministic
    families are emitted — that projection is byte-identical across
    [?domains] and fast-forward. *)
val metrics_json :
  ?stable_only:bool -> ?registry:Obs.Metrics.t -> unit -> Json.t

(** [write path j] writes [j] plus a trailing newline to [path], or to
    stdout when [path] is ["-"]. *)
val write : string -> Json.t -> unit

(** [write_atomic path contents] atomically replaces [path] via
    temp file + rename ({!Obs.Fsatomic.write}) — the one publication
    path for whole documents a concurrent reader may be tailing
    ([planarmon watch --out], checkpoints, the heartbeat). *)
val write_atomic : string -> string -> unit

(** {!write_atomic} of [Json.to_string j ^ "\n"]. *)
val write_atomic_json : string -> Json.t -> unit
