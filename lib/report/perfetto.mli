(** Chrome/Perfetto [trace_event] JSON export of a {!Ctrace.view}.

    The emitted document is the standard JSON Object Format
    ([{"traceEvents": [...], ...}]) readable by [chrome://tracing] and
    [ui.perfetto.dev].  One simulated round maps to one microsecond of
    trace time.  Track layout:

    - pid 0 "simulation": phase duration spans (tid 0) and primitive
      span pairs (tid 1), fast-forward spans, and per-round counter
      series (bits / frames / messages / stepped);
    - pid 1 "network": per-sender message slices with flow arrows from
      send to delivery (so convergecast causality renders as arrows),
      and fault instants;
    - pid 2 "fibers": per-node park slices and resume instants;
    - pid 3 "host": domain-shard counter series (domains, max_stepped) —
      host-side data, clearly separated from simulated tracks.

    The export is a pure function of the view: byte-identical JSON for
    byte-identical [.ctrace] input. *)

val of_view : Ctrace.view -> Congest.Telemetry.Json.t

(** [write path view] writes {!of_view} to [path] ([-] = stdout). *)
val write : string -> Ctrace.view -> unit
