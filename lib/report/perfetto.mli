(** Chrome/Perfetto [trace_event] JSON export of a {!Ctrace.view}.

    The emitted document is the standard JSON Object Format
    ([{"traceEvents": [...], ...}]) readable by [chrome://tracing] and
    [ui.perfetto.dev].  One simulated round maps to one microsecond of
    trace time.  Track layout:

    - pid 0 "simulation": phase duration spans (tid 0) and primitive
      span pairs (tid 1), fast-forward spans, and per-round counter
      series (bits / frames / messages / stepped);
    - pid 1 "network": per-sender message slices with flow arrows from
      send to delivery (so convergecast causality renders as arrows),
      and fault instants;
    - pid 2 "fibers": per-node park slices and resume instants (the
      instants carry the causal wake slots — cause / sender / sent —
      in their args);
    - pid 3 "host": domain-shard counter series (domains, max_stepped) —
      host-side data, clearly separated from simulated tracks;
    - pid 4 "critical path" (only with [?critpath]): one slice per
      causal hop, chained head-to-tail by [cat:"critpath"] flow arrows,
      so the explanation of the run's length renders as a single lane
      over the message and fiber tracks.

    The export is a pure function of the view (and overlay report):
    byte-identical JSON for byte-identical [.ctrace] input. *)

val of_view : ?critpath:Obs.Critpath.report -> Ctrace.view -> Congest.Telemetry.Json.t

(** [write path view] writes {!of_view} to [path] ([-] = stdout). *)
val write : ?critpath:Obs.Critpath.report -> string -> Ctrace.view -> unit
