module Trace = Congest.Trace
module Json = Congest.Telemetry.Json

let ev fields = Json.Obj fields

let meta_event ~pid ~name what =
  ev
    [
      ("name", Json.String what);
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int 0);
      ("args", Json.Obj [ ("name", Json.String name) ]);
    ]

let common ~name ~cat ~ph ~ts ~pid ~tid rest =
  ("name", Json.String name)
  :: ("cat", Json.String cat)
  :: ("ph", Json.String ph)
  :: ("ts", Json.Int ts)
  :: ("pid", Json.Int pid)
  :: ("tid", Json.Int tid)
  :: rest

let fault_name = function
  | Trace.Drop -> "drop"
  | Trace.Duplicate -> "duplicate"
  | Trace.Delay -> "delay"
  | Trace.Truncate -> "truncate"
  | Trace.Crash -> "crash"
  | Trace.Down_drop -> "down-drop"

(* The critical-path overlay gets its own pid so the causal chain reads
   as one lane of hop slices, chained head-to-tail by flow arrows.  Flow
   ids live far above the per-message ids so the two families can never
   collide. *)
let critpath_events (r : Obs.Critpath.report) =
  let out = ref [ meta_event ~pid:4 ~name:"critical path" "process_name" ] in
  let emit e = out := e :: !out in
  List.iteri
    (fun i (h : Obs.Critpath.hop) ->
      let name =
        match h.kind with
        | Obs.Critpath.Deliver_hop ->
            Printf.sprintf "deliver %d->%d" h.from_node h.node
        | Obs.Critpath.Timer_hop -> Printf.sprintf "wait %d" h.node
        | Obs.Critpath.Run_hop -> "run-stitch"
      in
      emit
        (ev
           (common ~name ~cat:"critpath" ~ph:"X" ~ts:h.from_round ~pid:4
              ~tid:0
              [
                ("dur", Json.Int (max 1 h.rounds));
                ( "args",
                  Json.Obj
                    [
                      ("edge", Json.Int h.edge);
                      ("excess", Json.Int h.excess);
                      ("phase", Json.String h.phase);
                    ] );
              ]));
      let id = 1_000_000_000 + i in
      emit
        (ev
           (common ~name:"critpath" ~cat:"critpath" ~ph:"s" ~ts:h.from_round
              ~pid:4 ~tid:0
              [ ("id", Json.Int id) ]));
      emit
        (ev
           (common ~name:"critpath" ~cat:"critpath" ~ph:"f" ~ts:h.round
              ~pid:4 ~tid:0
              [ ("id", Json.Int id); ("bp", Json.String "e") ])))
    r.Obs.Critpath.hops;
  List.rev !out

let of_view ?critpath (v : Ctrace.view) =
  let out = ref [] in
  let emit e = out := e :: !out in
  emit (meta_event ~pid:0 ~name:"simulation" "process_name");
  emit (meta_event ~pid:1 ~name:"network" "process_name");
  emit (meta_event ~pid:2 ~name:"fibers" "process_name");
  emit (meta_event ~pid:3 ~name:"host" "process_name");
  (match critpath with
  | Some r -> List.iter emit (critpath_events r)
  | None -> ());
  let flow_id = ref 0 in
  Array.iter
    (fun e ->
      match e with
      | Trace.Round { round; bits; frames; messages; stepped } ->
          emit
            (ev
               (common ~name:"round" ~cat:"sim" ~ph:"C" ~ts:round ~pid:0
                  ~tid:0
                  [
                    ( "args",
                      Json.Obj
                        [
                          ("bits", Json.Int bits);
                          ("frames", Json.Int frames);
                          ("messages", Json.Int messages);
                          ("stepped", Json.Int stepped);
                        ] );
                  ]))
      | Trace.Message { round; sent; sender; dest; edge; bits } ->
          let id = !flow_id in
          incr flow_id;
          let dur = max 1 (round - sent) in
          emit
            (ev
               (common
                  ~name:(Printf.sprintf "edge-%d" edge)
                  ~cat:"message" ~ph:"X" ~ts:sent ~pid:1 ~tid:sender
                  [
                    ("dur", Json.Int dur);
                    ( "args",
                      Json.Obj
                        [
                          ("dest", Json.Int dest);
                          ("bits", Json.Int bits);
                          ("delivered", Json.Int round);
                        ] );
                  ]));
          emit
            (ev
               (common ~name:"msg" ~cat:"message" ~ph:"s" ~ts:sent ~pid:1
                  ~tid:sender
                  [ ("id", Json.Int id) ]));
          emit
            (ev
               (common ~name:"msg" ~cat:"message" ~ph:"f" ~ts:round ~pid:1
                  ~tid:dest
                  [ ("id", Json.Int id); ("bp", Json.String "e") ]))
      | Trace.Fault { round; kind; sender; dest; edge; info } ->
          emit
            (ev
               (common ~name:(fault_name kind) ~cat:"fault" ~ph:"i" ~ts:round
                  ~pid:1 ~tid:sender
                  [
                    ("s", Json.String "t");
                    ( "args",
                      Json.Obj
                        [
                          ("dest", Json.Int dest);
                          ("edge", Json.Int edge);
                          ("info", Json.Int info);
                        ] );
                  ]))
      | Trace.Resume { round; node; cause; sender; sent } ->
          let cause_s =
            match cause with
            | Trace.Wake_unknown -> "unknown"
            | Trace.Wake_deliver -> "deliver"
            | Trace.Wake_deadline -> "deadline"
          in
          emit
            (ev
               (common ~name:"resume" ~cat:"fiber" ~ph:"i" ~ts:round ~pid:2
                  ~tid:node
                  [
                    ("s", Json.String "t");
                    ( "args",
                      Json.Obj
                        [
                          ("cause", Json.String cause_s);
                          ("sender", Json.Int sender);
                          ("sent", Json.Int sent);
                        ] );
                  ]))
      | Trace.Park { round; node; wake } ->
          emit
            (ev
               (common ~name:"parked" ~cat:"fiber" ~ph:"X" ~ts:round ~pid:2
                  ~tid:node
                  [
                    ("dur", Json.Int (max 1 (wake - round)));
                    ("args", Json.Obj [ ("wake", Json.Int wake) ]);
                  ]))
      | Trace.Phase_open { round; label } ->
          emit
            (ev (common ~name:label ~cat:"phase" ~ph:"B" ~ts:round ~pid:0
                   ~tid:0 []))
      | Trace.Phase_close { round; label } ->
          emit
            (ev (common ~name:label ~cat:"phase" ~ph:"E" ~ts:round ~pid:0
                   ~tid:0 []))
      | Trace.Span_open { round; label } ->
          emit
            (ev (common ~name:label ~cat:"span" ~ph:"B" ~ts:round ~pid:0
                   ~tid:1 []))
      | Trace.Span_close { round; label } ->
          emit
            (ev (common ~name:label ~cat:"span" ~ph:"E" ~ts:round ~pid:0
                   ~tid:1 []))
      | Trace.Fast_forward { round; rounds } ->
          emit
            (ev
               (common ~name:"fast-forward" ~cat:"sim" ~ph:"X" ~ts:round
                  ~pid:0 ~tid:0
                  [
                    ("dur", Json.Int rounds);
                    ("args", Json.Obj [ ("rounds", Json.Int rounds) ]);
                  ]))
      | Trace.Shard { round; domains; max_stepped; stepped } ->
          emit
            (ev
               (common ~name:"shard" ~cat:"host" ~ph:"C" ~ts:round ~pid:3
                  ~tid:0
                  [
                    ( "args",
                      Json.Obj
                        [
                          ("domains", Json.Int domains);
                          ("max_stepped", Json.Int max_stepped);
                          ("stepped", Json.Int stepped);
                        ] );
                  ]))
      | Trace.Run_end { round; rounds } ->
          emit
            (ev
               (common ~name:"run-end" ~cat:"sim" ~ph:"i" ~ts:round ~pid:0
                  ~tid:0
                  [
                    ("s", Json.String "p");
                    ("args", Json.Obj [ ("rounds", Json.Int rounds) ]);
                  ])))
    v.Ctrace.events;
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev !out));
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("format", Json.String "planartrace/perfetto");
            ("n", Json.Int v.Ctrace.n);
            ("m", Json.Int v.Ctrace.m);
            ("bandwidth", Json.Int v.Ctrace.bandwidth);
            ("recorded", Json.Int v.Ctrace.totals.Trace.recorded);
            ("overwritten", Json.Int v.Ctrace.totals.Trace.overwritten);
            ("sampled_out", Json.Int v.Ctrace.totals.Trace.sampled_out);
          ] );
    ]

let write ?critpath path view =
  let j = of_view ?critpath view in
  if path = "-" then begin
    print_string (Json.to_string j);
    print_newline ()
  end
  else Json.write_file path j
