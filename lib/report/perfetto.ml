module Trace = Congest.Trace
module Json = Congest.Telemetry.Json

let ev fields = Json.Obj fields

let meta_event ~pid ~name what =
  ev
    [
      ("name", Json.String what);
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int 0);
      ("args", Json.Obj [ ("name", Json.String name) ]);
    ]

let common ~name ~cat ~ph ~ts ~pid ~tid rest =
  ("name", Json.String name)
  :: ("cat", Json.String cat)
  :: ("ph", Json.String ph)
  :: ("ts", Json.Int ts)
  :: ("pid", Json.Int pid)
  :: ("tid", Json.Int tid)
  :: rest

let fault_name = function
  | Trace.Drop -> "drop"
  | Trace.Duplicate -> "duplicate"
  | Trace.Delay -> "delay"
  | Trace.Truncate -> "truncate"
  | Trace.Crash -> "crash"
  | Trace.Down_drop -> "down-drop"

let of_view (v : Ctrace.view) =
  let out = ref [] in
  let emit e = out := e :: !out in
  emit (meta_event ~pid:0 ~name:"simulation" "process_name");
  emit (meta_event ~pid:1 ~name:"network" "process_name");
  emit (meta_event ~pid:2 ~name:"fibers" "process_name");
  emit (meta_event ~pid:3 ~name:"host" "process_name");
  let flow_id = ref 0 in
  Array.iter
    (fun e ->
      match e with
      | Trace.Round { round; bits; frames; messages; stepped } ->
          emit
            (ev
               (common ~name:"round" ~cat:"sim" ~ph:"C" ~ts:round ~pid:0
                  ~tid:0
                  [
                    ( "args",
                      Json.Obj
                        [
                          ("bits", Json.Int bits);
                          ("frames", Json.Int frames);
                          ("messages", Json.Int messages);
                          ("stepped", Json.Int stepped);
                        ] );
                  ]))
      | Trace.Message { round; sent; sender; dest; edge; bits } ->
          let id = !flow_id in
          incr flow_id;
          let dur = max 1 (round - sent) in
          emit
            (ev
               (common
                  ~name:(Printf.sprintf "edge-%d" edge)
                  ~cat:"message" ~ph:"X" ~ts:sent ~pid:1 ~tid:sender
                  [
                    ("dur", Json.Int dur);
                    ( "args",
                      Json.Obj
                        [
                          ("dest", Json.Int dest);
                          ("bits", Json.Int bits);
                          ("delivered", Json.Int round);
                        ] );
                  ]));
          emit
            (ev
               (common ~name:"msg" ~cat:"message" ~ph:"s" ~ts:sent ~pid:1
                  ~tid:sender
                  [ ("id", Json.Int id) ]));
          emit
            (ev
               (common ~name:"msg" ~cat:"message" ~ph:"f" ~ts:round ~pid:1
                  ~tid:dest
                  [ ("id", Json.Int id); ("bp", Json.String "e") ]))
      | Trace.Fault { round; kind; sender; dest; edge; info } ->
          emit
            (ev
               (common ~name:(fault_name kind) ~cat:"fault" ~ph:"i" ~ts:round
                  ~pid:1 ~tid:sender
                  [
                    ("s", Json.String "t");
                    ( "args",
                      Json.Obj
                        [
                          ("dest", Json.Int dest);
                          ("edge", Json.Int edge);
                          ("info", Json.Int info);
                        ] );
                  ]))
      | Trace.Resume { round; node } ->
          emit
            (ev
               (common ~name:"resume" ~cat:"fiber" ~ph:"i" ~ts:round ~pid:2
                  ~tid:node
                  [ ("s", Json.String "t") ]))
      | Trace.Park { round; node; wake } ->
          emit
            (ev
               (common ~name:"parked" ~cat:"fiber" ~ph:"X" ~ts:round ~pid:2
                  ~tid:node
                  [
                    ("dur", Json.Int (max 1 (wake - round)));
                    ("args", Json.Obj [ ("wake", Json.Int wake) ]);
                  ]))
      | Trace.Phase_open { round; label } ->
          emit
            (ev (common ~name:label ~cat:"phase" ~ph:"B" ~ts:round ~pid:0
                   ~tid:0 []))
      | Trace.Phase_close { round; label } ->
          emit
            (ev (common ~name:label ~cat:"phase" ~ph:"E" ~ts:round ~pid:0
                   ~tid:0 []))
      | Trace.Span_open { round; label } ->
          emit
            (ev (common ~name:label ~cat:"span" ~ph:"B" ~ts:round ~pid:0
                   ~tid:1 []))
      | Trace.Span_close { round; label } ->
          emit
            (ev (common ~name:label ~cat:"span" ~ph:"E" ~ts:round ~pid:0
                   ~tid:1 []))
      | Trace.Fast_forward { round; rounds } ->
          emit
            (ev
               (common ~name:"fast-forward" ~cat:"sim" ~ph:"X" ~ts:round
                  ~pid:0 ~tid:0
                  [
                    ("dur", Json.Int rounds);
                    ("args", Json.Obj [ ("rounds", Json.Int rounds) ]);
                  ]))
      | Trace.Shard { round; domains; max_stepped; stepped } ->
          emit
            (ev
               (common ~name:"shard" ~cat:"host" ~ph:"C" ~ts:round ~pid:3
                  ~tid:0
                  [
                    ( "args",
                      Json.Obj
                        [
                          ("domains", Json.Int domains);
                          ("max_stepped", Json.Int max_stepped);
                          ("stepped", Json.Int stepped);
                        ] );
                  ])))
    v.Ctrace.events;
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev !out));
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("format", Json.String "planartrace/perfetto");
            ("n", Json.Int v.Ctrace.n);
            ("m", Json.Int v.Ctrace.m);
            ("bandwidth", Json.Int v.Ctrace.bandwidth);
            ("recorded", Json.Int v.Ctrace.totals.Trace.recorded);
            ("overwritten", Json.Int v.Ctrace.totals.Trace.overwritten);
            ("sampled_out", Json.Int v.Ctrace.totals.Trace.sampled_out);
          ] );
    ]

let write path view =
  let j = of_view view in
  if path = "-" then begin
    print_string (Json.to_string j);
    print_newline ()
  end
  else Json.write_file path j
