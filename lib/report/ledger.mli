(** Provenance run ledger: an append-only JSONL file ([runs.jsonl])
    with one locked ["runs.ledger/v1"] record per completed
    [planartest] / [bench] run.

    Appends are crash-safe ({!Obs.Fsatomic.append_line}: one
    [write(2)] on an [O_APPEND] descriptor), so concurrent writers
    never interleave bytes and a crash can tear at most the final
    line — which {!load} skips and counts.

    Record key set, in order: [schema ts tool run_id fingerprint
    property config verdict digest rounds nominal_rounds messages
    total_bits wall_s host].  [config] is a flat string→string
    object of the run's knobs (eps, seed, domains, mode, …).

    The [digest] field hashes only the domain-/fast-forward-/mode-
    invariant outcome of the run — see {!digest_core} — so every run
    of the same {!Checkpoint.fingerprint} must carry the same digest;
    a mismatch means the engine's determinism contract broke
    ([planarmon history] exits 1 on it).  Wall-clock lives outside
    the digest and is only trended. *)

val schema : string
(** ["runs.ledger/v1"]. *)

type record = {
  ts : float;  (** append wall-clock, Unix epoch seconds *)
  tool : string;  (** ["planartest"] | ["bench"] *)
  run_id : string;
  fingerprint : string;  (** {!Checkpoint.fingerprint} string *)
  property : string;
  config : (string * string) list;
  verdict : string;  (** ["accept"] | ["reject"] | ["degraded"] | bench outcome *)
  digest : string;
      (** {!digest_core} hex for tester runs; [bench] writes the MD5 of
          its timing-stripped report core instead (same invariance
          contract: equal for every run of one fingerprint) *)
  rounds : int;
  nominal_rounds : int;
  messages : int;
  total_bits : int;
  wall_s : float;
  host : string;
}

val digest_core :
  property:string ->
  verdict:string ->
  rounds:int ->
  nominal_rounds:int ->
  messages:int ->
  total_bits:int ->
  fast_forwarded_rounds:int ->
  dropped:int ->
  duplicated:int ->
  delayed:int ->
  crashed_nodes:int ->
  string
(** MD5 hex of the canonical outcome core.  Every argument is
    byte-identical across [--domains], fast-forward and [--mode] by
    the engine contract; wall-clock and observer configuration are
    deliberately excluded. *)

val to_json : record -> Congest.Telemetry.Json.t
val of_json : Congest.Telemetry.Json.t -> (record, string) result

val append : path:string -> record -> unit
(** Append one record as a single JSONL line.  Raises [Sys_error] /
    [Unix.Unix_error] on IO failure. *)

val load : string -> record list * int
(** [load path] is [(records, skipped)] — chronological records plus
    the count of unparseable or wrong-schema lines skipped (torn
    final line included).  A missing file is [([], 0)]. *)
