(* Provenance run ledger: one JSONL record per completed run, appended
   crash-safely through [Obs.Fsatomic.append_line].  The file is the
   repo's perf/correctness trajectory across runs — `planarmon history`
   groups it by fingerprint and flags determinism drift.

   A record's [digest] hashes only the domain-/fast-forward-/mode-
   invariant core of the run's outcome (verdict + simulated accounting),
   never wall-clock or observer configuration: two runs of the same
   fingerprint must agree on it byte-for-byte, or the engine's
   determinism contract broke. *)

module Json = Congest.Telemetry.Json

let schema = "runs.ledger/v1"

type record = {
  ts : float;  (** append wall-clock, Unix epoch seconds *)
  tool : string;  (** "planartest" | "bench" *)
  run_id : string;
  fingerprint : string;
  property : string;
  config : (string * string) list;
  verdict : string;
  digest : string;
  rounds : int;
  nominal_rounds : int;
  messages : int;
  total_bits : int;
  wall_s : float;
  host : string;
}

let digest_core ~property ~verdict ~rounds ~nominal_rounds ~messages
    ~total_bits ~fast_forwarded_rounds ~dropped ~duplicated ~delayed
    ~crashed_nodes =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf
          "%s|%s|rounds=%d|nominal=%d|msgs=%d|bits=%d|ff=%d|dropped=%d|dup=%d|delayed=%d|crashed=%d"
          property verdict rounds nominal_rounds messages total_bits
          fast_forwarded_rounds dropped duplicated delayed crashed_nodes))

let to_json r =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("ts", Json.Float r.ts);
      ("tool", Json.String r.tool);
      ("run_id", Json.String r.run_id);
      ("fingerprint", Json.String r.fingerprint);
      ("property", Json.String r.property);
      ( "config",
        Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) r.config) );
      ("verdict", Json.String r.verdict);
      ("digest", Json.String r.digest);
      ("rounds", Json.Int r.rounds);
      ("nominal_rounds", Json.Int r.nominal_rounds);
      ("messages", Json.Int r.messages);
      ("total_bits", Json.Int r.total_bits);
      ("wall_s", Json.Float r.wall_s);
      ("host", Json.String r.host);
    ]

let append ~path r = Obs.Fsatomic.append_line path (Json.to_string (to_json r))

let of_json j =
  let ( let* ) = Result.bind in
  match j with
  | Json.Obj members ->
      let str k =
        match List.assoc_opt k members with
        | Some (Json.String s) -> Ok s
        | _ -> Error (Printf.sprintf "member %S missing or not a string" k)
      in
      let int k =
        match List.assoc_opt k members with
        | Some (Json.Int i) -> Ok i
        | _ -> Error (Printf.sprintf "member %S missing or not an int" k)
      in
      let num k =
        match List.assoc_opt k members with
        | Some (Json.Float f) -> Ok f
        | Some (Json.Int i) -> Ok (float_of_int i)
        | _ -> Error (Printf.sprintf "member %S missing or not a number" k)
      in
      let* s = str "schema" in
      if s <> schema then Error (Printf.sprintf "unknown schema %S" s)
      else
        let* ts = num "ts" in
        let* tool = str "tool" in
        let* run_id = str "run_id" in
        let* fingerprint = str "fingerprint" in
        let* property = str "property" in
        let* config =
          match List.assoc_opt "config" members with
          | Some (Json.Obj kvs) ->
              List.fold_left
                (fun acc (k, v) ->
                  let* acc = acc in
                  match v with
                  | Json.String s -> Ok ((k, s) :: acc)
                  | _ ->
                      Error
                        (Printf.sprintf "config member %S is not a string" k))
                (Ok []) kvs
              |> Result.map List.rev
          | _ -> Error "member \"config\" missing or not an object"
        in
        let* verdict = str "verdict" in
        let* digest = str "digest" in
        let* rounds = int "rounds" in
        let* nominal_rounds = int "nominal_rounds" in
        let* messages = int "messages" in
        let* total_bits = int "total_bits" in
        let* wall_s = num "wall_s" in
        let* host = str "host" in
        Ok
          {
            ts;
            tool;
            run_id;
            fingerprint;
            property;
            config;
            verdict;
            digest;
            rounds;
            nominal_rounds;
            messages;
            total_bits;
            wall_s;
            host;
          }
  | _ -> Error "record is not a JSON object"

let load path =
  if not (Sys.file_exists path) then ([], 0)
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let records = ref [] in
        let skipped = ref 0 in
        (try
           while true do
             let line = input_line ic in
             if String.trim line <> "" then
               match Json_parse.of_string line with
               | Ok j -> (
                   match of_json j with
                   | Ok r -> records := r :: !records
                   | Error _ -> incr skipped)
               | Error _ ->
                   (* A torn final line from a crashed writer parses as
                      invalid JSON; skipping it is the documented reader
                      contract. *)
                   incr skipped
           done
         with End_of_file -> ());
        (List.rev !records, !skipped))
  end
