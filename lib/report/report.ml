module Json = Congest.Telemetry.Json
module Json_parse = Json_parse
module Ctrace = Ctrace
module Perfetto = Perfetto
module Checkpoint = Checkpoint
module Critpath_report = Critpath_report
module Ledger = Ledger
module PT = Tester.Planarity_tester

let stats_schema = "planartest.stats/v1"
let stats_schema_v2 = "planartest.stats/v2"
let stats_schema_v3 = "planartest.stats/v3"
let bench_schema = "bench.planarity/v1"
let metrics_schema = "metrics/v1"
let critpath_schema = Critpath_report.schema
let heartbeat_schema = Obs.Heartbeat.schema
let ledger_schema = Ledger.schema

let known_schemas =
  [ stats_schema; stats_schema_v2; stats_schema_v3; bench_schema;
    metrics_schema; critpath_schema; heartbeat_schema; ledger_schema ]

let check_schema j =
  match j with
  | Json.Obj members -> (
      match List.assoc_opt "schema" members with
      | Some (Json.String s) when List.mem s known_schemas -> Ok s
      | Some (Json.String s) ->
          Error
            (Printf.sprintf
               "unknown schema version %S (this build knows: %s)" s
               (String.concat ", " known_schemas))
      | Some _ -> Error "\"schema\" member is not a string"
      | None -> Error "document has no \"schema\" member")
  | _ -> Error "document is not a JSON object"

let host_block (tr : Congest.Trace.t) =
  let tot = Congest.Trace.totals tr in
  let phase_json (p : Congest.Trace.host_phase) =
    Json.Obj
      [
        ("label", Json.String p.Congest.Trace.label);
        ("wall_s", Json.Float p.Congest.Trace.wall_s);
        ("minor_words", Json.Float p.Congest.Trace.minor_words);
        ("major_words", Json.Float p.Congest.Trace.major_words);
        ("minor_collections", Json.Int p.Congest.Trace.minor_collections);
        ("major_collections", Json.Int p.Congest.Trace.major_collections);
        ("par_rounds", Json.Int p.Congest.Trace.par_rounds);
        ("stepped", Json.Int p.Congest.Trace.stepped);
        ("max_stepped", Json.Int p.Congest.Trace.max_stepped);
        ("max_domains", Json.Int p.Congest.Trace.max_domains);
      ]
  in
  Json.Obj
    [
      ( "phases",
        Json.List (List.map phase_json (Congest.Trace.host_phases tr)) );
      ( "trace",
        Json.Obj
          [
            ("recorded", Json.Int tot.Congest.Trace.recorded);
            ("overwritten", Json.Int tot.Congest.Trace.overwritten);
            ("sampled_out", Json.Int tot.Congest.Trace.sampled_out);
          ] );
    ]

(* Shared emitter behind [tester_stats] and [harness_stats].  [property]
   is [None] for planarity documents — their key set is a locked golden
   contract, byte-identical to pre-harness builds — and [Some name] for
   the newer testers, which add the one ["property"] member after
   ["seed"] (a v1 consumer that ignores unknown keys is unaffected). *)
let stats_doc ~n ~m ~eps ~seed ~domains ?property ?telemetry ?faults ?host
    ~verdict:(v : Tester.Harness.verdict) ~rounds ~nominal_rounds ~messages
    ~total_bits ~fast_forwarded_rounds ~dropped ~duplicated ~delayed
    ~crashed_nodes () =
  let verdict, rejections, degraded_reason =
    match v with
    | Tester.Harness.Accept -> ("accept", [], None)
    | Tester.Harness.Reject l -> ("reject", l, None)
    | Tester.Harness.Degraded msg -> ("degraded", [], Some msg)
  in
  (* v1, byte-compatible with the pre-faults emitter, is produced whenever
     no fault policy is supplied.  A [Degraded] verdict can only arise
     under a policy, so v1 documents keep their two-value verdict.  The
     host profiling block bumps to v3; with profiling off the v1/v2
     output is byte-identical to earlier builds. *)
  let property_slot =
    match property with
    | None -> []
    | Some p -> [ ("property", Json.String p) ]
  in
  let base =
    [
      ( "schema",
        Json.String
          (match (host, faults) with
          | Some _, _ -> stats_schema_v3
          | None, None -> stats_schema
          | None, Some _ -> stats_schema_v2) );
      ("graph", Json.Obj [ ("n", Json.Int n); ("m", Json.Int m) ]);
      ("eps", Json.Float eps);
      ("seed", Json.Int seed);
    ]
    @ property_slot
    @ [
        ("domains", Json.Int domains);
        ("verdict", Json.String verdict);
        ( "rejections",
          Json.List
            (List.map
               (fun (node, reason) ->
                 Json.Obj
                   [ ("node", Json.Int node); ("reason", Json.String reason) ])
               rejections) );
        ("rounds", Json.Int rounds);
        ("nominal_rounds", Json.Int nominal_rounds);
        ("messages", Json.Int messages);
        ("total_bits", Json.Int total_bits);
        ("fast_forwarded_rounds", Json.Int fast_forwarded_rounds);
      ]
  in
  let faults_block =
    match faults with
    | None -> []
    | Some p ->
        [
          ( "faults",
            Json.Obj
              [
                ("spec", Json.String (Congest.Faults.to_spec p));
                ("seed", Json.Int p.Congest.Faults.seed);
                ("dropped", Json.Int dropped);
                ("duplicated", Json.Int duplicated);
                ("delayed", Json.Int delayed);
                ("crashed_nodes", Json.Int crashed_nodes);
                ( "degraded_reason",
                  match degraded_reason with
                  | Some msg -> Json.String msg
                  | None -> Json.Null );
              ] );
        ]
  in
  let host_slot =
    match host with None -> [] | Some tr -> [ ("host", host_block tr) ]
  in
  let telemetry_slot =
    [
      ( "telemetry",
        match telemetry with
        | Some tel -> Congest.Telemetry.to_json tel
        | None -> Json.Null );
    ]
  in
  Json.Obj (base @ faults_block @ host_slot @ telemetry_slot)

let tester_stats ~n ~m ~eps ~seed ~domains ?telemetry ?faults ?host
    (r : PT.report) =
  stats_doc ~n ~m ~eps ~seed ~domains ?telemetry ?faults ?host
    ~verdict:r.PT.verdict ~rounds:r.PT.rounds
    ~nominal_rounds:r.PT.nominal_rounds ~messages:r.PT.messages
    ~total_bits:r.PT.total_bits
    ~fast_forwarded_rounds:r.PT.fast_forwarded_rounds ~dropped:r.PT.dropped
    ~duplicated:r.PT.duplicated ~delayed:r.PT.delayed
    ~crashed_nodes:r.PT.crashed_nodes ()

let harness_stats ~n ~m ~eps ~seed ~domains ~property ?telemetry ?faults ?host
    (t : Tester.Harness.totals) =
  stats_doc ~n ~m ~eps ~seed ~domains ~property ?telemetry ?faults ?host
    ~verdict:t.Tester.Harness.verdict ~rounds:t.Tester.Harness.rounds
    ~nominal_rounds:t.Tester.Harness.nominal_rounds
    ~messages:t.Tester.Harness.messages
    ~total_bits:t.Tester.Harness.total_bits
    ~fast_forwarded_rounds:t.Tester.Harness.fast_forwarded_rounds
    ~dropped:t.Tester.Harness.dropped
    ~duplicated:t.Tester.Harness.duplicated
    ~delayed:t.Tester.Harness.delayed
    ~crashed_nodes:t.Tester.Harness.crashed_nodes ()

let bench_envelope ~quick ~jobs ~domains experiments =
  Json.Obj
    [
      ("schema", Json.String bench_schema);
      ("quick", Json.Bool quick);
      ("jobs", Json.Int jobs);
      ("domains", Json.Int domains);
      ("experiments", Json.List experiments);
    ]

(* [metrics/v1]: the {!Obs.Metrics} snapshot as a stable JSON document.
   Families arrive sorted by name and series by label values (the
   registry guarantees it), so two snapshots of identical simulated
   behaviour render byte-identically.  Histogram buckets carry
   *cumulative* counts, mirroring OpenMetrics [le] semantics; ["count"]
   includes the implicit [+Inf] bucket. *)
let metrics_json ?stable_only ?registry () =
  let module M = Obs.Metrics in
  let series_json (s : M.series) =
    let labels =
      Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) s.M.labels)
    in
    match s.M.value with
    | M.Counter_v v -> Json.Obj [ ("labels", labels); ("value", Json.Int v) ]
    | M.Gauge_v v -> Json.Obj [ ("labels", labels); ("value", Json.Float v) ]
    | M.Histogram_v h ->
        Json.Obj
          [
            ("labels", labels);
            ( "buckets",
              Json.List
                (List.init (Array.length h.M.le) (fun i ->
                     Json.Obj
                       [
                         ("le", Json.Int h.M.le.(i));
                         ("count", Json.Int h.M.cumulative.(i));
                       ])) );
            ("sum", Json.Int h.M.sum);
            ("count", Json.Int h.M.total);
          ]
  in
  let family_json (fam : M.family) =
    Json.Obj
      [
        ("name", Json.String fam.M.name);
        ( "kind",
          Json.String
            (match fam.M.kind with
            | M.Counter_k -> "counter"
            | M.Gauge_k -> "gauge"
            | M.Histogram_k -> "histogram") );
        ("help", Json.String fam.M.help);
        ("stable", Json.Bool fam.M.stable);
        ("series", Json.List (List.map series_json fam.M.series));
      ]
  in
  Json.Obj
    [
      ("schema", Json.String metrics_schema);
      ( "metrics",
        Json.List (List.map family_json (M.snapshot ?stable_only ?registry ()))
      );
    ]

let write path j =
  if path = "-" then begin
    print_string (Json.to_string j);
    print_newline ()
  end
  else Json.write_file path j

(* The one atomic-publication path for whole documents a concurrent
   reader may be tailing (planarmon watch --out, checkpoints via
   [Checkpoint.save], the heartbeat inside obs itself).  Delegates to
   [Obs.Fsatomic] — the implementation lives in obs because obs cannot
   depend on report. *)
let write_atomic path contents = Obs.Fsatomic.write path contents

let write_atomic_json path j = write_atomic path (Json.to_string j ^ "\n")
