module Json = Congest.Telemetry.Json
module PT = Tester.Planarity_tester

let stats_schema = "planartest.stats/v1"
let stats_schema_v2 = "planartest.stats/v2"
let bench_schema = "bench.planarity/v1"

let tester_stats ~n ~m ~eps ~seed ~domains ?telemetry ?faults (r : PT.report) =
  let verdict, rejections, degraded_reason =
    match r.PT.verdict with
    | PT.Accept -> ("accept", [], None)
    | PT.Reject l -> ("reject", l, None)
    | PT.Degraded msg -> ("degraded", [], Some msg)
  in
  (* v1, byte-compatible with the pre-faults emitter, is produced whenever
     no fault policy is supplied.  A [Degraded] verdict can only arise
     under a policy, so v1 documents keep their two-value verdict. *)
  let base =
    [
      ( "schema",
        Json.String
          (match faults with None -> stats_schema | Some _ -> stats_schema_v2)
      );
      ("graph", Json.Obj [ ("n", Json.Int n); ("m", Json.Int m) ]);
      ("eps", Json.Float eps);
      ("seed", Json.Int seed);
      ("domains", Json.Int domains);
      ("verdict", Json.String verdict);
      ( "rejections",
        Json.List
          (List.map
             (fun (node, reason) ->
               Json.Obj
                 [ ("node", Json.Int node); ("reason", Json.String reason) ])
             rejections) );
      ("rounds", Json.Int r.PT.rounds);
      ("nominal_rounds", Json.Int r.PT.nominal_rounds);
      ("messages", Json.Int r.PT.messages);
      ("total_bits", Json.Int r.PT.total_bits);
      ("fast_forwarded_rounds", Json.Int r.PT.fast_forwarded_rounds);
    ]
  in
  let faults_block =
    match faults with
    | None -> []
    | Some p ->
        [
          ( "faults",
            Json.Obj
              [
                ("spec", Json.String (Congest.Faults.to_spec p));
                ("seed", Json.Int p.Congest.Faults.seed);
                ("dropped", Json.Int r.PT.dropped);
                ("duplicated", Json.Int r.PT.duplicated);
                ("delayed", Json.Int r.PT.delayed);
                ("crashed_nodes", Json.Int r.PT.crashed_nodes);
                ( "degraded_reason",
                  match degraded_reason with
                  | Some msg -> Json.String msg
                  | None -> Json.Null );
              ] );
        ]
  in
  let telemetry_slot =
    [
      ( "telemetry",
        match telemetry with
        | Some tel -> Congest.Telemetry.to_json tel
        | None -> Json.Null );
    ]
  in
  Json.Obj (base @ faults_block @ telemetry_slot)

let bench_envelope ~quick ~jobs ~domains experiments =
  Json.Obj
    [
      ("schema", Json.String bench_schema);
      ("quick", Json.Bool quick);
      ("jobs", Json.Int jobs);
      ("domains", Json.Int domains);
      ("experiments", Json.List experiments);
    ]

let write path j =
  if path = "-" then begin
    print_string (Json.to_string j);
    print_newline ()
  end
  else Json.write_file path j
