module Json = Congest.Telemetry.Json
module PT = Tester.Planarity_tester

let stats_schema = "planartest.stats/v1"
let bench_schema = "bench.planarity/v1"

let tester_stats ~n ~m ~eps ~seed ~domains ?telemetry (r : PT.report) =
  let verdict, rejections =
    match r.PT.verdict with
    | PT.Accept -> ("accept", [])
    | PT.Reject l -> ("reject", l)
  in
  Json.Obj
    [
      ("schema", Json.String stats_schema);
      ("graph", Json.Obj [ ("n", Json.Int n); ("m", Json.Int m) ]);
      ("eps", Json.Float eps);
      ("seed", Json.Int seed);
      ("domains", Json.Int domains);
      ("verdict", Json.String verdict);
      ( "rejections",
        Json.List
          (List.map
             (fun (node, reason) ->
               Json.Obj
                 [ ("node", Json.Int node); ("reason", Json.String reason) ])
             rejections) );
      ("rounds", Json.Int r.PT.rounds);
      ("nominal_rounds", Json.Int r.PT.nominal_rounds);
      ("messages", Json.Int r.PT.messages);
      ("total_bits", Json.Int r.PT.total_bits);
      ("fast_forwarded_rounds", Json.Int r.PT.fast_forwarded_rounds);
      ( "telemetry",
        match telemetry with
        | Some tel -> Congest.Telemetry.to_json tel
        | None -> Json.Null );
    ]

let bench_envelope ~quick ~jobs ~domains experiments =
  Json.Obj
    [
      ("schema", Json.String bench_schema);
      ("quick", Json.Bool quick);
      ("jobs", Json.Int jobs);
      ("domains", Json.Int domains);
      ("experiments", Json.List experiments);
    ]

let write path j =
  if path = "-" then begin
    print_string (Json.to_string j);
    print_newline ()
  end
  else Json.write_file path j
