(** Versioned on-disk storage for tester checkpoints.

    File layout: the 8-byte magic ["PLNRCK01"], a 16-byte MD5 digest of
    the body, then the body — [Marshal] bytes of the pair (parameter
    fingerprint, {!Tester.Planarity_tester.snapshot}).  Saves are atomic
    (temp file + rename), so an interrupted save leaves the previous
    checkpoint readable.  Loads verify magic, checksum and fingerprint
    and raise [Failure] with a description on any mismatch — a stale or
    foreign file never resumes silently.

    The fingerprint covers exactly the parameters that change the
    result: the {!Graphlib.Graph.fingerprint}, [eps], [seed], [alpha]
    and the canonical fault spec.  [domains] and [fast_forward] are
    excluded on purpose — accounting is identical for any value, so a
    checkpoint taken at [--domains 1] resumes fine at [--domains 8]. *)

(** Canonical parameter fingerprint stored in (and demanded of) a
    checkpoint file.  [property] (default ["planarity"]) guards against
    resuming one tester's Stage I into another; the default contributes
    no suffix, so planarity fingerprints — and existing checkpoint
    files — are unchanged from pre-harness builds. *)
val fingerprint :
  ?property:string ->
  Graphlib.Graph.t ->
  eps:float ->
  seed:int ->
  alpha:int ->
  faults:Congest.Faults.policy option ->
  string

(** [save path ~fingerprint s] writes [s] atomically. *)
val save :
  string -> fingerprint:string -> Tester.Planarity_tester.snapshot -> unit

(** [load path ~fingerprint] is [None] when [path] does not exist
    (fresh start), [Some snapshot] on a valid file, and raises [Failure]
    on a truncated, corrupt or mismatched one. *)
val load :
  string ->
  fingerprint:string ->
  Tester.Planarity_tester.snapshot option

(** [stage1 ~path ?every ?after_save g ~eps ~seed ~alpha ~faults] wires
    the container into a {!Tester.Harness.checkpoint} (the type
    {!Tester.Planarity_tester.checkpoint} equals transparently): [load]
    reads [path] (missing file = fresh start), [save] writes it
    atomically after every [every]-th completed Stage I phase (default
    1).  [after_save] is called with the number of saves performed so
    far — the hook CLI harnesses use to simulate a kill after the n-th
    checkpoint.  [property] feeds the {!fingerprint} (default
    ["planarity"]). *)
val stage1 :
  path:string ->
  ?every:int ->
  ?after_save:(int -> unit) ->
  ?property:string ->
  Graphlib.Graph.t ->
  eps:float ->
  seed:int ->
  alpha:int ->
  faults:Congest.Faults.policy option ->
  Tester.Planarity_tester.checkpoint
