module Trace = Congest.Trace

let magic = "CTRACE01"

(* Version 2 added the Resume events' causal wake slots (cause, sender,
   send round) and the Run_end event (kind 11).  Version-1 files still
   decode: their resumes surface as [Wake_unknown] with no parent. *)
let version = 2

type view = {
  version : int;
  n : int;
  m : int;
  bandwidth : int;
  config : Trace.config;
  totals : Trace.totals;
  sim_phases : Trace.sim_phase list;
  host_phases : Trace.host_phase list;
  events : Trace.event array;
}

(* Wire codes mirror the constructor order of [Trace.event] and
   [Trace.fault_kind]; they are part of the format and never renumbered. *)
let fault_code = function
  | Trace.Drop -> 0
  | Trace.Duplicate -> 1
  | Trace.Delay -> 2
  | Trace.Truncate -> 3
  | Trace.Crash -> 4
  | Trace.Down_drop -> 5

let fault_of_code = function
  | 0 -> Trace.Drop
  | 1 -> Trace.Duplicate
  | 2 -> Trace.Delay
  | 3 -> Trace.Truncate
  | 4 -> Trace.Crash
  | 5 -> Trace.Down_drop
  | k -> failwith (Printf.sprintf "Ctrace: bad fault kind code %d" k)

let cause_code = function
  | Trace.Wake_unknown -> 0
  | Trace.Wake_deliver -> 1
  | Trace.Wake_deadline -> 2

let cause_of_code = function
  | 0 -> Trace.Wake_unknown
  | 1 -> Trace.Wake_deliver
  | 2 -> Trace.Wake_deadline
  | k -> failwith (Printf.sprintf "Ctrace: bad wake cause code %d" k)

(* {1 Encoding} *)

let put_int b x = Buffer.add_int64_le b (Int64.of_int x)
let put_float b x = Buffer.add_int64_le b (Int64.bits_of_float x)

let put_string b s =
  put_int b (String.length s);
  Buffer.add_string b s

let encode t =
  let b = Buffer.create 65536 in
  Buffer.add_string b magic;
  put_int b version;
  let n, m, bw = match Trace.meta t with Some x -> x | None -> (-1, -1, -1) in
  put_int b n;
  put_int b m;
  put_int b bw;
  let cfg = Trace.config t in
  put_int b cfg.Trace.capacity;
  put_int b cfg.Trace.sample_messages;
  put_int b cfg.Trace.sample_fibers;
  put_int b cfg.Trace.sample_spans;
  let tot = Trace.totals t in
  put_int b tot.Trace.rounds;
  put_int b tot.Trace.frames;
  put_int b tot.Trace.bits;
  put_int b tot.Trace.messages;
  put_int b tot.Trace.fast_forwarded;
  put_int b tot.Trace.dropped;
  put_int b tot.Trace.duplicated;
  put_int b tot.Trace.delayed;
  put_int b tot.Trace.crashed;
  put_int b tot.Trace.recorded;
  put_int b tot.Trace.overwritten;
  put_int b tot.Trace.sampled_out;
  (* Intern every label (phase aggregates + labelled ring events) into one
     string table, written before everything that references it. *)
  let tbl = Hashtbl.create 16 in
  let names = ref [] in
  let count = ref 0 in
  let intern s =
    match Hashtbl.find_opt tbl s with
    | Some i -> i
    | None ->
        let i = !count in
        incr count;
        Hashtbl.add tbl s i;
        names := s :: !names;
        i
  in
  let sim = Trace.sim_phases t and host = Trace.host_phases t in
  List.iter (fun (p : Trace.sim_phase) -> ignore (intern p.Trace.label)) sim;
  List.iter (fun (p : Trace.host_phase) -> ignore (intern p.Trace.label)) host;
  let n_events = ref 0 in
  Trace.iter_events t (fun ev ->
      incr n_events;
      match ev with
      | Trace.Phase_open { label; _ }
      | Trace.Phase_close { label; _ }
      | Trace.Span_open { label; _ }
      | Trace.Span_close { label; _ } ->
          ignore (intern label)
      | _ -> ());
  put_int b !count;
  List.iter (put_string b) (List.rev !names);
  put_int b (List.length sim);
  List.iter
    (fun (p : Trace.sim_phase) ->
      put_int b (intern p.Trace.label);
      put_int b p.Trace.rounds;
      put_int b p.Trace.bits;
      put_int b p.Trace.frames;
      put_int b p.Trace.messages;
      put_int b p.Trace.fast_forwarded)
    sim;
  put_int b (List.length host);
  List.iter
    (fun (p : Trace.host_phase) ->
      put_int b (intern p.Trace.label);
      put_float b p.Trace.wall_s;
      put_float b p.Trace.minor_words;
      put_float b p.Trace.major_words;
      put_int b p.Trace.minor_collections;
      put_int b p.Trace.major_collections;
      put_int b p.Trace.par_rounds;
      put_int b p.Trace.stepped;
      put_int b p.Trace.max_stepped;
      put_int b p.Trace.max_domains)
    host;
  put_int b !n_events;
  let slot k t0 a b' c d e =
    put_int b k;
    put_int b t0;
    put_int b a;
    put_int b b';
    put_int b c;
    put_int b d;
    put_int b e
  in
  Trace.iter_events t (fun ev ->
      match ev with
      | Trace.Round { round; bits; frames; messages; stepped } ->
          slot 0 round bits frames messages stepped 0
      | Trace.Message { round; sent; sender; dest; edge; bits } ->
          slot 1 round sent sender dest edge bits
      | Trace.Fault { round; kind; sender; dest; edge; info } ->
          slot 2 round (fault_code kind) sender dest edge info
      | Trace.Resume { round; node; cause; sender; sent } ->
          slot 3 round node (cause_code cause) sender sent 0
      | Trace.Park { round; node; wake } -> slot 4 round node wake 0 0 0
      | Trace.Phase_open { round; label } ->
          slot 5 round (intern label) 0 0 0 0
      | Trace.Phase_close { round; label } ->
          slot 6 round (intern label) 0 0 0 0
      | Trace.Span_open { round; label } -> slot 7 round (intern label) 0 0 0 0
      | Trace.Span_close { round; label } ->
          slot 8 round (intern label) 0 0 0 0
      | Trace.Fast_forward { round; rounds } -> slot 9 round rounds 0 0 0 0
      | Trace.Shard { round; domains; max_stepped; stepped } ->
          slot 10 round domains max_stepped stepped 0 0
      | Trace.Run_end { round; rounds } -> slot 11 round rounds 0 0 0 0);
  Buffer.contents b

(* {1 Decoding} *)

type cursor = { data : string; mutable pos : int }

let need cur k what =
  if cur.pos + k > String.length cur.data then
    failwith (Printf.sprintf "Ctrace: truncated file (reading %s)" what)

let get_int cur what =
  need cur 8 what;
  let v = Int64.to_int (String.get_int64_le cur.data cur.pos) in
  cur.pos <- cur.pos + 8;
  v

let get_float cur what =
  need cur 8 what;
  let v = Int64.float_of_bits (String.get_int64_le cur.data cur.pos) in
  cur.pos <- cur.pos + 8;
  v

let get_string cur what =
  let len = get_int cur what in
  if len < 0 then failwith (Printf.sprintf "Ctrace: bad %s length" what);
  need cur len what;
  let s = String.sub cur.data cur.pos len in
  cur.pos <- cur.pos + len;
  s

let decode data =
  if String.length data < String.length magic
     || String.sub data 0 (String.length magic) <> magic
  then failwith "Ctrace: bad magic (not a .ctrace file)";
  let cur = { data; pos = String.length magic } in
  let v = get_int cur "version" in
  if v <> 1 && v <> version then
    failwith
      (Printf.sprintf
         "Ctrace: unknown format version %d (this build reads 1-%d)" v version);
  (* Record literals and [Array.init]/[List.init] evaluate their parts in
     unspecified order, so every multi-field read below is sequenced with
     explicit [let]s / loops. *)
  let n = get_int cur "n" in
  let m = get_int cur "m" in
  let bandwidth = get_int cur "bandwidth" in
  let capacity = get_int cur "capacity" in
  let sample_messages = get_int cur "sample_messages" in
  let sample_fibers = get_int cur "sample_fibers" in
  let sample_spans = get_int cur "sample_spans" in
  let config = { Trace.capacity; sample_messages; sample_fibers; sample_spans }
  in
  let rounds = get_int cur "totals.rounds" in
  let frames = get_int cur "totals.frames" in
  let bits = get_int cur "totals.bits" in
  let messages = get_int cur "totals.messages" in
  let fast_forwarded = get_int cur "totals.fast_forwarded" in
  let dropped = get_int cur "totals.dropped" in
  let duplicated = get_int cur "totals.duplicated" in
  let delayed = get_int cur "totals.delayed" in
  let crashed = get_int cur "totals.crashed" in
  let recorded = get_int cur "totals.recorded" in
  let overwritten = get_int cur "totals.overwritten" in
  let sampled_out = get_int cur "totals.sampled_out" in
  let totals =
    {
      Trace.rounds;
      frames;
      bits;
      messages;
      fast_forwarded;
      dropped;
      duplicated;
      delayed;
      crashed;
      recorded;
      overwritten;
      sampled_out;
    }
  in
  let read_list n f =
    let rec go i acc = if i = n then List.rev acc else go (i + 1) (f () :: acc)
    in
    go 0 []
  in
  let n_labels = get_int cur "label count" in
  let labels =
    Array.of_list (read_list n_labels (fun () -> get_string cur "label"))
  in
  let label i =
    if i < 0 || i >= n_labels then
      failwith (Printf.sprintf "Ctrace: label id %d out of range" i)
    else labels.(i)
  in
  let n_sim = get_int cur "sim phase count" in
  let sim_phases =
    read_list n_sim (fun () ->
        let l = label (get_int cur "sim phase label") in
        let rounds = get_int cur "sim phase rounds" in
        let bits = get_int cur "sim phase bits" in
        let frames = get_int cur "sim phase frames" in
        let messages = get_int cur "sim phase messages" in
        let ff = get_int cur "sim phase ff" in
        {
          Trace.label = l;
          rounds;
          bits;
          frames;
          messages;
          fast_forwarded = ff;
        })
  in
  let n_host = get_int cur "host phase count" in
  let host_phases =
    read_list n_host (fun () ->
        let l = label (get_int cur "host phase label") in
        let wall_s = get_float cur "host phase wall" in
        let minor_words = get_float cur "host phase minor_words" in
        let major_words = get_float cur "host phase major_words" in
        let minor_collections = get_int cur "host phase minor_collections" in
        let major_collections = get_int cur "host phase major_collections" in
        let par_rounds = get_int cur "host phase par_rounds" in
        let stepped = get_int cur "host phase stepped" in
        let max_stepped = get_int cur "host phase max_stepped" in
        let max_domains = get_int cur "host phase max_domains" in
        {
          Trace.label = l;
          wall_s;
          minor_words;
          major_words;
          minor_collections;
          major_collections;
          par_rounds;
          stepped;
          max_stepped;
          max_domains;
        })
  in
  let n_events = get_int cur "event count" in
  let events =
    Array.of_list
      (read_list n_events (fun () ->
        let kind = get_int cur "event kind" in
        let t0 = get_int cur "event time" in
        let a = get_int cur "event a" in
        let b = get_int cur "event b" in
        let c = get_int cur "event c" in
        let d = get_int cur "event d" in
        let e = get_int cur "event e" in
        match kind with
        | 0 ->
            Trace.Round
              { round = t0; bits = a; frames = b; messages = c; stepped = d }
        | 1 ->
            Trace.Message
              { round = t0; sent = a; sender = b; dest = c; edge = d;
                bits = e }
        | 2 ->
            Trace.Fault
              { round = t0; kind = fault_of_code a; sender = b; dest = c;
                edge = d; info = e }
        | 3 ->
            if v >= 2 then
              Trace.Resume
                { round = t0; node = a; cause = cause_of_code b; sender = c;
                  sent = d }
            else
              Trace.Resume
                { round = t0; node = a; cause = Trace.Wake_unknown;
                  sender = -1; sent = -1 }
        | 4 -> Trace.Park { round = t0; node = a; wake = b }
        | 5 -> Trace.Phase_open { round = t0; label = label a }
        | 6 -> Trace.Phase_close { round = t0; label = label a }
        | 7 -> Trace.Span_open { round = t0; label = label a }
        | 8 -> Trace.Span_close { round = t0; label = label a }
        | 9 -> Trace.Fast_forward { round = t0; rounds = a }
        | 10 ->
            Trace.Shard
              { round = t0; domains = a; max_stepped = b; stepped = c }
        | 11 when v >= 2 -> Trace.Run_end { round = t0; rounds = a }
        | k -> failwith (Printf.sprintf "Ctrace: bad event kind %d" k)))
  in
  if cur.pos <> String.length data then
    failwith "Ctrace: trailing bytes after event stream";
  { version = v; n; m; bandwidth; config; totals; sim_phases; host_phases;
    events }

let write path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode t))

let read path =
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  decode data

let of_trace t = decode (encode t)
