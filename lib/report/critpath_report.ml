(* Bridge between the engine-side trace and the engine-agnostic
   Obs.Critpath analyzer, plus the locked [critpath/v1] JSON document.
   Obs cannot depend on Congest, so the event mapping lives here. *)

module Trace = Congest.Trace
module Json = Congest.Telemetry.Json
module C = Obs.Critpath

let schema = "critpath/v1"

let cause_of_trace = function
  | Trace.Wake_unknown -> C.Unknown
  | Trace.Wake_deliver -> C.Deliver
  | Trace.Wake_deadline -> C.Deadline

(* Analyzer input from a view's surviving ring: deliveries, steps with
   their causal slots, phase switches and run boundaries; everything
   else (faults, parks, spans, counters) is irrelevant to the DAG. *)
let events_of_view (v : Ctrace.view) =
  Array.to_list v.Ctrace.events
  |> List.filter_map (fun e ->
         match e with
         | Trace.Message { round; sent; sender; dest; edge; _ } ->
             Some (C.Message { round; sent; sender; dest; edge })
         | Trace.Resume { round; node; cause; sender; sent } ->
             Some
               (C.Resume
                  { round; node; cause = cause_of_trace cause; sender; sent })
         | Trace.Phase_open { label; _ } -> Some (C.Phase label)
         | Trace.Run_end { round; _ } -> Some (C.Run_end { round })
         | _ -> None)

let lossy_view (v : Ctrace.view) =
  v.Ctrace.totals.Trace.overwritten > 0
  || v.Ctrace.totals.Trace.sampled_out > 0

let analyze (v : Ctrace.view) =
  C.analyze ~lossy:(lossy_view v) ~n:v.Ctrace.n (events_of_view v)

let hop_kind_name = function
  | C.Deliver_hop -> "deliver"
  | C.Timer_hop -> "timer"
  | C.Run_hop -> "run"

let hop_json (h : C.hop) =
  Json.Obj
    [
      ("kind", Json.String (hop_kind_name h.C.kind));
      ("from_node", Json.Int h.C.from_node);
      ("from_round", Json.Int h.C.from_round);
      ("node", Json.Int h.C.node);
      ("round", Json.Int h.C.round);
      ("edge", Json.Int h.C.edge);
      ("rounds", Json.Int h.C.rounds);
      ("excess", Json.Int h.C.excess);
      ("phase", Json.String h.C.phase);
    ]

let phase_json (p : C.phase_profile) =
  Json.Obj
    [
      ("phase", Json.String p.C.phase);
      ("hops", Json.Int p.C.hops);
      ("deliver_rounds", Json.Int p.C.deliver_rounds);
      ("timer_rounds", Json.Int p.C.timer_rounds);
      ("excess_rounds", Json.Int p.C.excess_rounds);
    ]

let edge_json (b : C.edge_blame) =
  Json.Obj
    [
      ("src", Json.Int b.C.src);
      ("dst", Json.Int b.C.dst);
      ("edge", Json.Int b.C.edge);
      ("hops", Json.Int b.C.hops);
      ("rounds", Json.Int b.C.rounds);
      ("excess", Json.Int b.C.excess);
    ]

let rec take k = function
  | [] -> []
  | _ when k <= 0 -> []
  | x :: rest -> x :: take (k - 1) rest

(* [critpath/v1].  [~top] bounds the blame table only — the hop list is
   always the full path, so two runs of the same workload can be
   byte-compared end to end. *)
let to_json ?(top = 10) (r : C.report) =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("path_rounds", Json.Int r.C.path_rounds);
      ("start_round", Json.Int r.C.start_round);
      ("end_round", Json.Int r.C.end_round);
      ("total_rounds", Json.Int r.C.total_rounds);
      ("steps", Json.Int r.C.steps);
      ("deliver_hops", Json.Int r.C.deliver_hops);
      ("deliver_rounds", Json.Int r.C.deliver_rounds);
      ("timer_rounds", Json.Int r.C.timer_rounds);
      ("excess_rounds", Json.Int r.C.excess_rounds);
      ("stitch_rounds", Json.Int r.C.stitch_rounds);
      ("contracted_rounds", Json.Int r.C.contracted_rounds);
      ("lossy", Json.Bool r.C.lossy);
      ("phases", Json.List (List.map phase_json r.C.phases));
      ("edges", Json.List (List.map edge_json (take top r.C.edges)));
      ("hops", Json.List (List.map hop_json r.C.hops));
    ]
