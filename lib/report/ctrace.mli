(** Compact binary serialization of {!Congest.Trace} recordings.

    A [.ctrace] file is a versioned snapshot of everything a trace knows:
    graph meta, recording config, exact aggregates ({!Congest.Trace.totals},
    per-phase sim/host profiles) and the surviving ring events.  All
    integers are little-endian 64-bit; floats are IEEE-754 bit patterns in
    the same slots; labels are interned in one string table.  The format is
    self-contained — a reader needs no access to the graph. *)

(** Format magic ["CTRACE01"] (8 bytes, version in the suffix). *)
val magic : string

val version : int

(** Everything read back from a [.ctrace] file.  [n]/[m]/[bandwidth] are
    [-1] when the trace never saw an engine run. *)
type view = {
  version : int;
  n : int;
  m : int;
  bandwidth : int;
  config : Congest.Trace.config;
  totals : Congest.Trace.totals;
  sim_phases : Congest.Trace.sim_phase list;
  host_phases : Congest.Trace.host_phase list;
  events : Congest.Trace.event array;  (** surviving ring, oldest first *)
}

(** [write path t] snapshots [t] to [path].  Call {!Congest.Trace.finish}
    first so the last phase's host profile is closed. *)
val write : string -> Congest.Trace.t -> unit

(** [read path] parses a [.ctrace] file.  Raises [Failure] with a clear
    message on a bad magic, an unknown version, or a truncated file. *)
val read : string -> view

(** [of_trace t] is the view [write]-then-[read] would produce, without
    touching the filesystem. *)
val of_trace : Congest.Trace.t -> view
