(** Deterministic, seeded fault injection for the CONGEST engine.

    A {!policy} describes benign network misbehaviour — message drops,
    duplications, bounded delays, truncations — plus a schedule of node
    crash-stop / crash-recover events.  The engine consults the policy at
    {e delivery} time (the serial, deterministically ordered half of a
    round), so the injected fault schedule is a pure function of
    [(policy, directed edge, round, per-edge message index)] and is
    byte-identical for every [?domains] count and for [fast_forward]
    on/off, extending the PR 2 determinism contract.

    Protocols are never told about faults: a dropped or truncated message
    is silence, a crashed node simply stops participating — the
    CONGEST-faithful model.  Every injected fault is charged honestly in
    {!Stats} ([dropped] / [duplicated] / [delayed] / [crashed_nodes]) and
    {!Telemetry}. *)

type crash = {
  node : int;  (** node id to crash *)
  from_round : int;  (** first round (1-based) the node is down; clamped to >= 1 *)
  until_round : int;
      (** first round the node is back up; [max_int] = crash-stop forever *)
}

type policy = {
  seed : int;  (** root seed of the splittable fault PRNG *)
  drop : float;  (** per-message drop probability *)
  duplicate : float;  (** per-message duplication probability *)
  delay : float;  (** per-message delay probability *)
  max_delay : int;  (** delayed messages arrive 1..max_delay rounds late *)
  truncate : float;
      (** per-message truncation probability; a truncated message is
          charged on the wire but never delivered (surfaces as silence,
          counted under [dropped] — never as silent corruption) *)
  crashes : crash list;
}

val none : policy
(** The identity policy: nothing ever fires.  Running with [~faults:none]
    is byte-identical to running without [?faults]. *)

val is_none : policy -> bool
(** [true] iff no fault of any kind can ever fire under this policy. *)

val active : policy option -> bool
(** [active f] is [true] iff [f] is [Some p] with [not (is_none p)]. *)

val make :
  ?seed:int ->
  ?drop:float ->
  ?duplicate:float ->
  ?delay:float ->
  ?max_delay:int ->
  ?truncate:float ->
  ?crashes:crash list ->
  unit ->
  policy
(** Build a policy; probabilities are validated to lie in [[0, 1]] with
    [drop +. duplicate +. delay +. truncate <= 1.0], [max_delay >= 1].
    @raise Invalid_argument on out-of-range parameters. *)

val of_spec : string -> (policy, string) result
(** Parse a command-line fault SPEC: comma-separated [key=value] fields.

    Keys: [drop], [dup], [delay], [trunc] (probabilities in [[0,1]]);
    [maxdelay] (positive int, default 3); [seed] (int, default 0);
    [crash=NODE\@FROM] (crash-stop) or [crash=NODE\@FROM-UNTIL]
    (crash-recover at round UNTIL); [crash] may repeat.

    Example: ["drop=0.1,dup=0.02,delay=0.05,maxdelay=4,seed=7,crash=3\@10-20"]. *)

val to_spec : policy -> string
(** Render a policy back into a canonical SPEC string ([of_spec]-parsable). *)

type outcome =
  | Deliver
  | Drop
  | Duplicate
  | Delay of int  (** deliver this many rounds late (>= 1) *)
  | Truncate

val draw : policy -> edge:int -> round:int -> k:int -> outcome
(** The fault decision for the [k]-th message carried by directed edge
    [edge] during round [round].  Pure: depends only on the arguments and
    [policy] — independent of domain count, scheduling and fast-forward. *)

val crash_schedule : policy -> n:int -> (int array * int array) option
(** [crash_schedule p ~n] precomputes per-node crash windows for an
    [n]-node graph: [Some (from, until)] where node [v] is down during
    rounds [from.(v) <= r < until.(v)] ([from.(v) = max_int] if [v] never
    crashes).  [None] when the policy schedules no crash on any node in
    range.  Later [crashes] entries for the same node win. *)

exception Degraded of string
(** Raised (by higher layers, e.g. [Partition.Prims]) when a protocol run
    under an active fault policy could not produce a trustworthy result.
    The planarity tester converts it into an explicit [Degraded] verdict —
    never a silent flip to [Reject]. *)
