let int_bits ~universe =
  let u = max universe 2 in
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  go 0 (u - 1)

let id_bits n = int_bits ~universe:(max n 2)

let default_bandwidth n = (8 * id_bits n) + 64

(* --- framing / fragmentation ----------------------------------------- *)

type frame = { seq : int; total : int; payload : string }

let header_bits = 32
let max_frames = 1 lsl 16
let frame_bits f = header_bits + (8 * String.length f.payload)

let fragment ~bandwidth s =
  if bandwidth < header_bits + 8 then
    invalid_arg
      (Printf.sprintf
         "Bits.fragment: bandwidth %d leaves no room for a payload byte \
          (need >= %d)"
         bandwidth (header_bits + 8));
  let chunk = (bandwidth - header_bits) / 8 in
  let len = String.length s in
  let total = max 1 ((len + chunk - 1) / chunk) in
  if total >= max_frames then
    invalid_arg
      (Printf.sprintf "Bits.fragment: payload needs %d frames (max %d)" total
         (max_frames - 1));
  List.init total (fun seq ->
      let off = seq * chunk in
      { seq; total; payload = String.sub s off (min chunk (len - off)) })

let reassemble frames =
  match frames with
  | [] -> None
  | { total; _ } :: _ ->
      let n = List.length frames in
      if total <> n || List.exists (fun f -> f.total <> total) frames then None
      else begin
        let slots = Array.make n None in
        let dup = ref false in
        List.iter
          (fun f ->
            if f.seq < 0 || f.seq >= n || slots.(f.seq) <> None then
              dup := true
            else slots.(f.seq) <- Some f.payload)
          frames;
        if !dup then None
        else
          let parts = Array.map Option.get slots in
          (* Every non-final chunk must be full-sized and equal; the final
             chunk must fit inside one of them.  A frame set that violates
             this cannot be [fragment] output, so a splice of two
             different payloads' frames is rejected rather than glued. *)
          let shape_ok =
            if n = 1 then true
            else
              let l0 = String.length parts.(0) in
              l0 >= 1
              && Array.for_all
                   (fun p -> String.length p = l0)
                   (Array.sub parts 0 (n - 1))
              && String.length parts.(n - 1) >= 1
              && String.length parts.(n - 1) <= l0
          in
          if shape_ok then Some (String.concat "" (Array.to_list parts))
          else None
      end
