type t = {
  mutable rounds : int;
  mutable charged_rounds : int;
  mutable messages : int;
  mutable total_bits : int;
  mutable max_edge_bits : int;
  mutable oversized : int;
  mutable fast_forwarded_rounds : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable delayed : int;
  mutable crashed_nodes : int;
  bandwidth : int;
}

let create ~bandwidth =
  {
    rounds = 0;
    charged_rounds = 0;
    messages = 0;
    total_bits = 0;
    max_edge_bits = 0;
    oversized = 0;
    fast_forwarded_rounds = 0;
    dropped = 0;
    duplicated = 0;
    delayed = 0;
    crashed_nodes = 0;
    bandwidth;
  }

let copy t = { t with rounds = t.rounds }

let charge t k = t.charged_rounds <- t.charged_rounds + k

let frames ~bandwidth bits =
  if bits <= bandwidth then 1 else (bits + bandwidth - 1) / bandwidth

let add_into acc s =
  acc.rounds <- acc.rounds + s.rounds;
  acc.charged_rounds <- acc.charged_rounds + s.charged_rounds;
  acc.messages <- acc.messages + s.messages;
  acc.total_bits <- acc.total_bits + s.total_bits;
  acc.max_edge_bits <- max acc.max_edge_bits s.max_edge_bits;
  acc.oversized <- acc.oversized + s.oversized;
  acc.fast_forwarded_rounds <-
    acc.fast_forwarded_rounds + s.fast_forwarded_rounds;
  acc.dropped <- acc.dropped + s.dropped;
  acc.duplicated <- acc.duplicated + s.duplicated;
  acc.delayed <- acc.delayed + s.delayed;
  acc.crashed_nodes <- acc.crashed_nodes + s.crashed_nodes

let faults_fired t =
  t.dropped > 0 || t.duplicated > 0 || t.delayed > 0 || t.crashed_nodes > 0

let pp fmt t =
  Format.fprintf fmt
    "rounds=%d charged=%d messages=%d bits=%d max-edge-bits=%d oversized=%d \
     fast-forwarded=%d bandwidth=%d"
    t.rounds t.charged_rounds t.messages t.total_bits t.max_edge_bits
    t.oversized t.fast_forwarded_rounds t.bandwidth;
  if faults_fired t then
    Format.fprintf fmt " dropped=%d duplicated=%d delayed=%d crashed=%d"
      t.dropped t.duplicated t.delayed t.crashed_nodes
