module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let rec to_buffer buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if Float.is_finite f then
          (* Shortest representation that round-trips. *)
          Buffer.add_string buf (Printf.sprintf "%.17g" f)
        else Buffer.add_string buf "null"
    | String s -> escape buf s
    | List l ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            to_buffer buf x)
          l;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            escape buf k;
            Buffer.add_char buf ':';
            to_buffer buf v)
          fields;
        Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 256 in
    to_buffer buf j;
    Buffer.contents buf

  let write_file path j =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        let buf = Buffer.create 4096 in
        to_buffer buf j;
        Buffer.add_char buf '\n';
        Buffer.output_buffer oc buf)
end

(* Growable int vector; the per-round series. *)
module Ivec = struct
  type t = { mutable a : int array; mutable len : int }

  let create () = { a = [||]; len = 0 }

  let push v x =
    let cap = Array.length v.a in
    if v.len = cap then begin
      let na = Array.make (max 16 (2 * cap)) 0 in
      Array.blit v.a 0 na 0 v.len;
      v.a <- na
    end;
    v.a.(v.len) <- x;
    v.len <- v.len + 1

  let to_json v =
    let rec build i acc =
      if i < 0 then acc else build (i - 1) (Json.Int v.a.(i) :: acc)
    in
    Json.List (build (v.len - 1) [])
end

type phase_rec = {
  label : string;
  mutable rounds : int;
  mutable frames : int;
  mutable bits : int;
  mutable messages : int;
  mutable stepped : int;
  mutable parallel_rounds : int;
  mutable fast_forwarded : int;
  mutable max_domains : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable delayed : int;
  mutable crashed : int;
  bits_series : Ivec.t;
  frames_series : Ivec.t;
  msgs_series : Ivec.t;
  stepped_series : Ivec.t;
}

type t = {
  series : bool;
  mutable cur : phase_rec;
  mutable closed : phase_rec list;  (* reverse chronological *)
}

let fresh_phase label =
  {
    label;
    rounds = 0;
    frames = 0;
    bits = 0;
    messages = 0;
    stepped = 0;
    parallel_rounds = 0;
    fast_forwarded = 0;
    max_domains = 1;
    dropped = 0;
    duplicated = 0;
    delayed = 0;
    crashed = 0;
    bits_series = Ivec.create ();
    frames_series = Ivec.create ();
    msgs_series = Ivec.create ();
    stepped_series = Ivec.create ();
  }

let create ?(series = true) () = { series; cur = fresh_phase "run"; closed = [] }

let phase t label =
  if t.cur.rounds > 0 then t.closed <- t.cur :: t.closed;
  t.cur <- fresh_phase label

let copy_ivec (v : Ivec.t) = { Ivec.a = Array.copy v.Ivec.a; len = v.Ivec.len }

let copy_phase p =
  {
    p with
    bits_series = copy_ivec p.bits_series;
    frames_series = copy_ivec p.frames_series;
    msgs_series = copy_ivec p.msgs_series;
    stepped_series = copy_ivec p.stepped_series;
  }

let copy t =
  { t with cur = copy_phase t.cur; closed = List.map copy_phase t.closed }

let restore_into dst ~from =
  let c = copy from in
  dst.cur <- c.cur;
  dst.closed <- c.closed

let tick ?(stepped = 0) ?(domains = 1) ?(dropped = 0) ?(duplicated = 0)
    ?(delayed = 0) ?(crashed = 0) t ~bits ~frames ~messages =
  let p = t.cur in
  p.rounds <- p.rounds + 1;
  p.frames <- p.frames + frames;
  p.bits <- p.bits + bits;
  p.messages <- p.messages + messages;
  p.stepped <- p.stepped + stepped;
  p.dropped <- p.dropped + dropped;
  p.duplicated <- p.duplicated + duplicated;
  p.delayed <- p.delayed + delayed;
  p.crashed <- p.crashed + crashed;
  if domains > 1 then p.parallel_rounds <- p.parallel_rounds + 1;
  if domains > p.max_domains then p.max_domains <- domains;
  if t.series then begin
    Ivec.push p.bits_series bits;
    Ivec.push p.frames_series frames;
    Ivec.push p.msgs_series messages;
    Ivec.push p.stepped_series stepped
  end

let fast_forward t ~rounds =
  let p = t.cur in
  p.fast_forwarded <- p.fast_forwarded + rounds;
  (* A fast-forwarded round is accounted exactly like the quiescent round
     the engine proved it to be: zero bits, one frame, zero messages, zero
     nodes stepped.  The per-phase aggregates and series therefore stay
     byte-identical whether or not fast-forwarding fired. *)
  for _ = 1 to rounds do
    tick t ~bits:0 ~frames:1 ~messages:0
  done

type phase_view = {
  label : string;
  rounds : int;
  frames : int;
  bits : int;
  messages : int;
  stepped : int;
  parallel_rounds : int;
  fast_forwarded : int;
  max_domains : int;
  dropped : int;
  duplicated : int;
  delayed : int;
  crashed : int;
}

let all_phases t =
  List.rev (if t.cur.rounds > 0 then t.cur :: t.closed else t.closed)

let phases t =
  List.map
    (fun (p : phase_rec) ->
      {
        label = p.label;
        rounds = p.rounds;
        frames = p.frames;
        bits = p.bits;
        messages = p.messages;
        stepped = p.stepped;
        parallel_rounds = p.parallel_rounds;
        fast_forwarded = p.fast_forwarded;
        max_domains = p.max_domains;
        dropped = p.dropped;
        duplicated = p.duplicated;
        delayed = p.delayed;
        crashed = p.crashed;
      })
    (all_phases t)

let stats_json (s : Stats.t) =
  Json.Obj
    [
      ("rounds", Json.Int s.Stats.rounds);
      ("charged_rounds", Json.Int s.Stats.charged_rounds);
      ("messages", Json.Int s.Stats.messages);
      ("total_bits", Json.Int s.Stats.total_bits);
      ("max_edge_bits", Json.Int s.Stats.max_edge_bits);
      ("oversized", Json.Int s.Stats.oversized);
      ("fast_forwarded_rounds", Json.Int s.Stats.fast_forwarded_rounds);
      ("dropped", Json.Int s.Stats.dropped);
      ("duplicated", Json.Int s.Stats.duplicated);
      ("delayed", Json.Int s.Stats.delayed);
      ("crashed_nodes", Json.Int s.Stats.crashed_nodes);
      ("bandwidth", Json.Int s.Stats.bandwidth);
    ]

let to_json t =
  let phase_json (p : phase_rec) =
    let base =
      [
        ("label", Json.String p.label);
        ("rounds", Json.Int p.rounds);
        ("frames", Json.Int p.frames);
        ("bits", Json.Int p.bits);
        ("messages", Json.Int p.messages);
        ("stepped", Json.Int p.stepped);
        ("parallel_rounds", Json.Int p.parallel_rounds);
        ("fast_forwarded", Json.Int p.fast_forwarded);
        ("max_domains", Json.Int p.max_domains);
        ("dropped", Json.Int p.dropped);
        ("duplicated", Json.Int p.duplicated);
        ("delayed", Json.Int p.delayed);
        ("crashed", Json.Int p.crashed);
      ]
    in
    let series =
      if t.series then
        [
          ( "series",
            Json.Obj
              [
                ("bits", Ivec.to_json p.bits_series);
                ("frames", Ivec.to_json p.frames_series);
                ("messages", Ivec.to_json p.msgs_series);
                ("stepped", Ivec.to_json p.stepped_series);
              ] );
        ]
      else []
    in
    Json.Obj (base @ series)
  in
  Json.Obj [ ("phases", Json.List (List.map phase_json (all_phases t))) ]
