(** Helpers for message-size accounting in the CONGEST model. *)

(** [int_bits ~universe] is the number of bits needed to address a value in
    [0 .. universe - 1] (at least 1). *)
val int_bits : universe:int -> int

(** Bits of one vertex id in an [n]-vertex network. *)
val id_bits : int -> int

(** [default_bandwidth n] is the per-edge per-round budget used when the
    caller does not pass one: [Theta (log n)]. *)
val default_bandwidth : int -> int

(** {1 Framing / fragmentation}

    A payload larger than the per-round bandwidth must cross an edge as a
    sequence of frames, one per round.  Each frame carries a
    {!header_bits}-bit header (sequence number + frame count, 16 bits
    each) plus a payload chunk sized so that {!frame_bits} never exceeds
    the bandwidth — the engine therefore never flags a well-formed frame
    as oversized, and fault-layer truncation of a frame surfaces as a
    {e missing} frame ({!reassemble} returns [None]), never as silent
    payload corruption. *)

type frame = {
  seq : int;  (** 0-based position of this frame in the sequence *)
  total : int;  (** number of frames the payload was split into *)
  payload : string;  (** this frame's chunk of the payload bytes *)
}

(** Fixed per-frame header cost: 32 bits (16-bit [seq], 16-bit [total]). *)
val header_bits : int

(** Wire cost of one frame: [header_bits + 8 * length payload]. *)
val frame_bits : frame -> int

(** [fragment ~bandwidth s] splits [s] into frames whose {!frame_bits}
    each fit in [bandwidth].  The empty string yields one empty frame, so
    every payload round-trips.  @raise Invalid_argument if [bandwidth <
    header_bits + 8] (no room for a single payload byte) or the payload
    needs [>= 2^16] frames (the header's [total] field would overflow). *)
val fragment : bandwidth:int -> string -> frame list

(** [reassemble frames] restores the original payload from a permutation
    of [fragment]'s output, or returns [None] if the frame set is not
    exactly that: a missing or duplicated sequence number, inconsistent
    [total] fields, a [total] that does not match the frame count, or a
    non-final frame shorter than the final one allows.  Lossy delivery
    (drop / truncation) therefore yields [None] — detectable silence —
    never a wrong payload. *)
val reassemble : frame list -> string option
