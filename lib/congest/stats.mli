(** Execution statistics of a CONGEST run.

    [rounds] counts synchronous rounds as executed by the engine.
    [charged_rounds] is the bandwidth-honest cost: a round in which some
    edge carried [k > 1] frames of [bandwidth] bits is charged [k] rounds
    (modelling the pipelining a real CONGEST algorithm would need), and
    substituted subroutines may add explicit charges. *)

type t = {
  mutable rounds : int;
  mutable charged_rounds : int;
  mutable messages : int;
  mutable total_bits : int;
  mutable max_edge_bits : int;  (** max bits on one edge in one round *)
  mutable oversized : int;  (** (round, edge) pairs exceeding bandwidth *)
  mutable fast_forwarded_rounds : int;
      (** of [rounds], how many were provably quiescent and advanced in O(1)
          by the engine instead of being stepped; included in [rounds] and
          [charged_rounds], so nominal accounting is unchanged *)
  mutable dropped : int;
      (** messages the fault layer destroyed (drops, truncations, and
          deliveries to/from a crashed node); still charged on the wire *)
  mutable duplicated : int;  (** extra copies injected by the fault layer *)
  mutable delayed : int;  (** messages the fault layer deferred by >= 1 round *)
  mutable crashed_nodes : int;
      (** crash events that actually took effect during the run *)
  bandwidth : int;
}

val create : bandwidth:int -> t

(** Independent snapshot of the counters. *)
val copy : t -> t

(** [charge t k] adds [k] rounds of substituted-subroutine cost. *)
val charge : t -> int -> unit

(** [frames ~bandwidth bits] is the number of [bandwidth]-bit frames needed
    to carry [bits] on one edge in one round (at least 1). *)
val frames : bandwidth:int -> int -> int

(** [add_into acc s] accumulates the counters of [s] into [acc] (used when
    an algorithm is a sequence of engine runs). *)
val add_into : t -> t -> unit

(** [faults_fired t] is [true] iff any fault-layer counter is non-zero —
    i.e. the run's outcome may have been influenced by injected faults. *)
val faults_fired : t -> bool

val pp : Format.formatter -> t -> unit
