type config = {
  capacity : int;
  sample_messages : int;
  sample_fibers : int;
  sample_spans : int;
}

let default_config =
  { capacity = 65536; sample_messages = 1; sample_fibers = 1; sample_spans = 1 }

type fault_kind = Drop | Duplicate | Delay | Truncate | Crash | Down_drop

type wake_cause = Wake_unknown | Wake_deliver | Wake_deadline

type event =
  | Round of { round : int; bits : int; frames : int; messages : int;
               stepped : int }
  | Message of { round : int; sent : int; sender : int; dest : int;
                 edge : int; bits : int }
  | Fault of { round : int; kind : fault_kind; sender : int; dest : int;
               edge : int; info : int }
  | Resume of { round : int; node : int; cause : wake_cause; sender : int;
                sent : int }
  | Park of { round : int; node : int; wake : int }
  | Phase_open of { round : int; label : string }
  | Phase_close of { round : int; label : string }
  | Span_open of { round : int; label : string }
  | Span_close of { round : int; label : string }
  | Fast_forward of { round : int; rounds : int }
  | Shard of { round : int; domains : int; max_stepped : int;
               stepped : int }
  | Run_end of { round : int; rounds : int }

type totals = {
  rounds : int;
  frames : int;
  bits : int;
  messages : int;
  fast_forwarded : int;
  dropped : int;
  duplicated : int;
  delayed : int;
  crashed : int;
  recorded : int;
  overwritten : int;
  sampled_out : int;
}

type sim_phase = {
  label : string;
  rounds : int;
  bits : int;
  frames : int;
  messages : int;
  fast_forwarded : int;
}

type host_phase = {
  label : string;
  wall_s : float;
  minor_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  par_rounds : int;
  stepped : int;
  max_stepped : int;
  max_domains : int;
}

(* Event slot layout: [kind; time; a; b; c; d; e].  Kind codes are the
   constructor order of [event]; fault kind codes the order of
   [fault_kind]; wake-cause codes the order of [wake_cause].  The same
   codes are the wire format of [Report.Ctrace]. *)
let slot = 7

(* Every event the ring or the samplers lose is a hole an offline
   analyzer (critpath) cannot see through; surfacing the count as a
   host-side metric lets planarmon and the CLIs warn loudly instead of
   under-reporting silently.  Host-side because ring eviction depends on
   the host event mix (Shard events vary with --domains). *)
let m_dropped =
  Obs.Metrics.counter ~stable:false
    ~help:"Trace events lost to ring overwrite or per-category sampling"
    "trace_dropped_events"

type t = {
  mutable cfg : config;  (* mutable only for [restore_into] *)
  mutable ev : int array;  (* ring, cfg.capacity * slot ints *)
  mutable written : int;  (* events ever pushed (ring index = mod cap) *)
  (* Label intern table: spans/phases carry an id, not a string. *)
  labels : (string, int) Hashtbl.t;
  mutable label_names : string array;
  mutable label_count : int;
  mutable base : int;  (* absolute round at which the current run starts *)
  mutable meta : (int * int * int) option;
  (* Exact aggregates (never sampled, never evicted): *)
  mutable t_rounds : int;
  mutable t_frames : int;
  mutable t_bits : int;
  mutable t_messages : int;
  mutable t_ff : int;
  mutable t_dropped : int;
  mutable t_duplicated : int;
  mutable t_delayed : int;
  mutable t_crashed : int;
  mutable t_sampled_out : int;
  mutable msg_seen : int;
  mutable span_seen : int;
  (* Current phase, sim side: *)
  mutable p_label : int;
  mutable p_rounds : int;
  mutable p_bits : int;
  mutable p_frames : int;
  mutable p_messages : int;
  mutable p_ff : int;
  (* Current phase, host side: *)
  mutable p_wall0 : float;
  mutable p_gc0 : Gc.stat;
  mutable p_par_rounds : int;
  mutable p_stepped : int;
  mutable p_max_stepped : int;
  mutable p_max_domains : int;
  mutable sim_closed : sim_phase list;  (* reverse chronological *)
  mutable host_closed : host_phase list;
  mutable finished : bool;
}

let intern t s =
  match Hashtbl.find_opt t.labels s with
  | Some id -> id
  | None ->
      let id = t.label_count in
      if id = Array.length t.label_names then begin
        let na = Array.make (max 8 (2 * id)) "" in
        Array.blit t.label_names 0 na 0 id;
        t.label_names <- na
      end;
      t.label_names.(id) <- s;
      t.label_count <- id + 1;
      Hashtbl.add t.labels s id;
      id

let create ?(config = default_config) () =
  let cfg =
    {
      capacity = max 1 config.capacity;
      sample_messages = max 1 config.sample_messages;
      sample_fibers = max 1 config.sample_fibers;
      sample_spans = max 1 config.sample_spans;
    }
  in
  let t =
    {
      cfg;
      ev = Array.make (cfg.capacity * slot) 0;
      written = 0;
      labels = Hashtbl.create 16;
      label_names = Array.make 8 "";
      label_count = 0;
      base = 0;
      meta = None;
      t_rounds = 0;
      t_frames = 0;
      t_bits = 0;
      t_messages = 0;
      t_ff = 0;
      t_dropped = 0;
      t_duplicated = 0;
      t_delayed = 0;
      t_crashed = 0;
      t_sampled_out = 0;
      msg_seen = 0;
      span_seen = 0;
      p_label = 0;
      p_rounds = 0;
      p_bits = 0;
      p_frames = 0;
      p_messages = 0;
      p_ff = 0;
      p_wall0 = Unix.gettimeofday ();
      p_gc0 = Gc.quick_stat ();
      p_par_rounds = 0;
      p_stepped = 0;
      p_max_stepped = 0;
      p_max_domains = 1;
      sim_closed = [];
      host_closed = [];
      finished = false;
    }
  in
  t.p_label <- intern t "run";
  t

let config t = t.cfg

(* Deep snapshot for checkpointing: every recorded field, safe to Marshal
   (ints, strings, lists and one [Gc.stat] record — no closures). *)
let copy t =
  {
    t with
    ev = Array.copy t.ev;
    labels = Hashtbl.copy t.labels;
    label_names = Array.copy t.label_names;
  }

let restore_into dst ~from =
  dst.cfg <- from.cfg;
  dst.ev <- Array.copy from.ev;
  dst.written <- from.written;
  Hashtbl.reset dst.labels;
  Hashtbl.iter (fun k v -> Hashtbl.add dst.labels k v) from.labels;
  dst.label_names <- Array.copy from.label_names;
  dst.label_count <- from.label_count;
  dst.base <- from.base;
  dst.meta <- from.meta;
  dst.t_rounds <- from.t_rounds;
  dst.t_frames <- from.t_frames;
  dst.t_bits <- from.t_bits;
  dst.t_messages <- from.t_messages;
  dst.t_ff <- from.t_ff;
  dst.t_dropped <- from.t_dropped;
  dst.t_duplicated <- from.t_duplicated;
  dst.t_delayed <- from.t_delayed;
  dst.t_crashed <- from.t_crashed;
  dst.t_sampled_out <- from.t_sampled_out;
  dst.msg_seen <- from.msg_seen;
  dst.span_seen <- from.span_seen;
  dst.p_label <- from.p_label;
  dst.p_rounds <- from.p_rounds;
  dst.p_bits <- from.p_bits;
  dst.p_frames <- from.p_frames;
  dst.p_messages <- from.p_messages;
  dst.p_ff <- from.p_ff;
  dst.p_par_rounds <- from.p_par_rounds;
  dst.p_stepped <- from.p_stepped;
  dst.p_max_stepped <- from.p_max_stepped;
  dst.p_max_domains <- from.p_max_domains;
  dst.sim_closed <- from.sim_closed;
  dst.host_closed <- from.host_closed;
  dst.finished <- from.finished;
  (* Host-side deltas restart at the restore point: wall clock and GC
     state do not survive a process boundary, so the open phase's host
     profile measures only post-restore work (same rule as
     [Telemetry.restore_into]). *)
  dst.p_wall0 <- Unix.gettimeofday ();
  dst.p_gc0 <- Gc.quick_stat ()

let push t kind time a b c d e =
  let i = t.written mod t.cfg.capacity * slot in
  t.ev.(i) <- kind;
  t.ev.(i + 1) <- time;
  t.ev.(i + 2) <- a;
  t.ev.(i + 3) <- b;
  t.ev.(i + 4) <- c;
  t.ev.(i + 5) <- d;
  t.ev.(i + 6) <- e;
  t.written <- t.written + 1;
  if t.written > t.cfg.capacity then Obs.Metrics.inc m_dropped

let sampled_out t k =
  t.t_sampled_out <- t.t_sampled_out + k;
  Obs.Metrics.inc ~by:k m_dropped

let set_meta t ~n ~m ~bandwidth =
  if t.meta = None then t.meta <- Some (n, m, bandwidth)

let meta t = t.meta

let round_tick t ~round ~bits ~frames ~messages ~stepped =
  t.t_rounds <- t.t_rounds + 1;
  t.t_frames <- t.t_frames + frames;
  t.t_bits <- t.t_bits + bits;
  t.t_messages <- t.t_messages + messages;
  t.p_rounds <- t.p_rounds + 1;
  t.p_bits <- t.p_bits + bits;
  t.p_frames <- t.p_frames + frames;
  t.p_messages <- t.p_messages + messages;
  t.p_stepped <- t.p_stepped + stepped;
  push t 0 (t.base + round) bits frames messages stepped 0

let message t ~round ~sent ~sender ~dest ~edge ~bits =
  let k = t.msg_seen in
  t.msg_seen <- k + 1;
  if k mod t.cfg.sample_messages = 0 then
    push t 1 (t.base + round) (t.base + sent) sender dest edge bits
  else sampled_out t 1

let fault_code = function
  | Drop -> 0
  | Duplicate -> 1
  | Delay -> 2
  | Truncate -> 3
  | Crash -> 4
  | Down_drop -> 5

let fault_of_code = function
  | 0 -> Drop
  | 1 -> Duplicate
  | 2 -> Delay
  | 3 -> Truncate
  | 4 -> Crash
  | _ -> Down_drop

let fault t ~round ~kind ~sender ~dest ~edge ~info =
  (match kind with
  | Drop | Truncate | Down_drop -> t.t_dropped <- t.t_dropped + 1
  | Duplicate -> t.t_duplicated <- t.t_duplicated + 1
  | Delay -> t.t_delayed <- t.t_delayed + 1
  | Crash -> t.t_crashed <- t.t_crashed + 1);
  push t 2 (t.base + round) (fault_code kind) sender dest edge info

let want_fiber t node = node mod t.cfg.sample_fibers = 0

let cause_code = function
  | Wake_unknown -> 0
  | Wake_deliver -> 1
  | Wake_deadline -> 2

let cause_of_code = function 1 -> Wake_deliver | 2 -> Wake_deadline
  | _ -> Wake_unknown

let fiber_resume t ~round ~node ~cause ~sender ~sent =
  if want_fiber t node then
    (* [sent] is stored on the absolute timeline like [Message.sent]; -1
       (no causal delivery) stays -1 so decode can tell it apart. *)
    let abs_sent = if sent < 0 then -1 else t.base + sent in
    push t 3 (t.base + round) node (cause_code cause) sender abs_sent 0
  else sampled_out t 1

let fiber_park t ~round ~node ~wake =
  if want_fiber t node then push t 4 (t.base + round) node (t.base + wake) 0 0 0
  else sampled_out t 1

let shard t ~round ~domains ~max_stepped ~stepped =
  t.p_par_rounds <- t.p_par_rounds + 1;
  t.p_max_stepped <- t.p_max_stepped + max_stepped;
  if domains > t.p_max_domains then t.p_max_domains <- domains;
  push t 10 (t.base + round) domains max_stepped stepped 0 0

let fast_forward t ~round ~rounds =
  t.t_rounds <- t.t_rounds + rounds;
  t.t_frames <- t.t_frames + rounds;
  t.t_ff <- t.t_ff + rounds;
  t.p_rounds <- t.p_rounds + rounds;
  t.p_frames <- t.p_frames + rounds;
  t.p_ff <- t.p_ff + rounds;
  push t 9 (t.base + round) rounds 0 0 0 0

let run_end t ~rounds =
  (* Recorded before the base moves so the event's timestamp is the
     run's final absolute round; critpath uses it to stitch the
     happens-before chains of consecutive engine runs into one path. *)
  push t 11 (t.base + rounds) rounds 0 0 0 0;
  t.base <- t.base + rounds

(* Closing a phase captures the host-side deltas.  A phase with no
   simulated rounds is dropped — both views, so they stay aligned —
   mirroring [Telemetry.phase]. *)
let close_phase t =
  let wall = Unix.gettimeofday () in
  let gc = Gc.quick_stat () in
  if t.p_rounds > 0 then begin
    let label = t.label_names.(t.p_label) in
    push t 6 t.base t.p_label 0 0 0 0;
    t.sim_closed <-
      {
        label;
        rounds = t.p_rounds;
        bits = t.p_bits;
        frames = t.p_frames;
        messages = t.p_messages;
        fast_forwarded = t.p_ff;
      }
      :: t.sim_closed;
    t.host_closed <-
      {
        label;
        wall_s = wall -. t.p_wall0;
        minor_words = gc.Gc.minor_words -. t.p_gc0.Gc.minor_words;
        major_words = gc.Gc.major_words -. t.p_gc0.Gc.major_words;
        minor_collections =
          gc.Gc.minor_collections - t.p_gc0.Gc.minor_collections;
        major_collections =
          gc.Gc.major_collections - t.p_gc0.Gc.major_collections;
        par_rounds = t.p_par_rounds;
        stepped = t.p_stepped;
        max_stepped = t.p_max_stepped;
        max_domains = t.p_max_domains;
      }
      :: t.host_closed
  end;
  t.p_rounds <- 0;
  t.p_bits <- 0;
  t.p_frames <- 0;
  t.p_messages <- 0;
  t.p_ff <- 0;
  t.p_wall0 <- wall;
  t.p_gc0 <- gc;
  t.p_par_rounds <- 0;
  t.p_stepped <- 0;
  t.p_max_stepped <- 0;
  t.p_max_domains <- 1

let phase t label =
  close_phase t;
  t.p_label <- intern t label;
  t.finished <- false;
  push t 5 t.base t.p_label 0 0 0 0

let span t label f =
  let k = t.span_seen in
  t.span_seen <- k + 1;
  if k mod t.cfg.sample_spans = 0 then begin
    let id = intern t label in
    push t 7 t.base id 0 0 0 0;
    Fun.protect ~finally:(fun () -> push t 8 t.base id 0 0 0 0) f
  end
  else begin
    sampled_out t 2;
    f ()
  end

let finish t =
  if not t.finished then begin
    close_phase t;
    t.finished <- true
  end

let totals t =
  {
    rounds = t.t_rounds;
    frames = t.t_frames;
    bits = t.t_bits;
    messages = t.t_messages;
    fast_forwarded = t.t_ff;
    dropped = t.t_dropped;
    duplicated = t.t_duplicated;
    delayed = t.t_delayed;
    crashed = t.t_crashed;
    recorded = t.written;
    overwritten = max 0 (t.written - t.cfg.capacity);
    sampled_out = t.t_sampled_out;
  }

let with_open_phase t view closed =
  if t.p_rounds > 0 then List.rev (view :: closed) else List.rev closed

let sim_phases t =
  with_open_phase t
    {
      label = t.label_names.(t.p_label);
      rounds = t.p_rounds;
      bits = t.p_bits;
      frames = t.p_frames;
      messages = t.p_messages;
      fast_forwarded = t.p_ff;
    }
    t.sim_closed

let host_phases t =
  with_open_phase t
    {
      label = t.label_names.(t.p_label);
      wall_s = Unix.gettimeofday () -. t.p_wall0;
      minor_words =
        (Gc.quick_stat ()).Gc.minor_words -. t.p_gc0.Gc.minor_words;
      major_words =
        (Gc.quick_stat ()).Gc.major_words -. t.p_gc0.Gc.major_words;
      minor_collections =
        (Gc.quick_stat ()).Gc.minor_collections
        - t.p_gc0.Gc.minor_collections;
      major_collections =
        (Gc.quick_stat ()).Gc.major_collections
        - t.p_gc0.Gc.major_collections;
      par_rounds = t.p_par_rounds;
      stepped = t.p_stepped;
      max_stepped = t.p_max_stepped;
      max_domains = t.p_max_domains;
    }
    t.host_closed

let decode t i =
  let i = i mod t.cfg.capacity * slot in
  let time = t.ev.(i + 1)
  and a = t.ev.(i + 2)
  and b = t.ev.(i + 3)
  and c = t.ev.(i + 4)
  and d = t.ev.(i + 5)
  and e = t.ev.(i + 6) in
  match t.ev.(i) with
  | 0 -> Round { round = time; bits = a; frames = b; messages = c; stepped = d }
  | 1 ->
      Message { round = time; sent = a; sender = b; dest = c; edge = d;
                bits = e }
  | 2 ->
      Fault { round = time; kind = fault_of_code a; sender = b; dest = c;
              edge = d; info = e }
  | 3 ->
      Resume { round = time; node = a; cause = cause_of_code b; sender = c;
               sent = d }
  | 4 -> Park { round = time; node = a; wake = b }
  | 5 -> Phase_open { round = time; label = t.label_names.(a) }
  | 6 -> Phase_close { round = time; label = t.label_names.(a) }
  | 7 -> Span_open { round = time; label = t.label_names.(a) }
  | 8 -> Span_close { round = time; label = t.label_names.(a) }
  | 9 -> Fast_forward { round = time; rounds = a }
  | 10 -> Shard { round = time; domains = a; max_stepped = b; stepped = c }
  | 11 -> Run_end { round = time; rounds = a }
  | k -> invalid_arg (Printf.sprintf "Trace.decode: bad kind %d" k)

let iter_events t f =
  let first = max 0 (t.written - t.cfg.capacity) in
  for i = first to t.written - 1 do
    f (decode t i)
  done
