type crash = { node : int; from_round : int; until_round : int }

type policy = {
  seed : int;
  drop : float;
  duplicate : float;
  delay : float;
  max_delay : int;
  truncate : float;
  crashes : crash list;
}

let none =
  {
    seed = 0;
    drop = 0.0;
    duplicate = 0.0;
    delay = 0.0;
    max_delay = 3;
    truncate = 0.0;
    crashes = [];
  }

let is_none p =
  p.drop = 0.0 && p.duplicate = 0.0 && p.delay = 0.0 && p.truncate = 0.0
  && p.crashes = []

let active = function None -> false | Some p -> not (is_none p)

let make ?(seed = 0) ?(drop = 0.0) ?(duplicate = 0.0) ?(delay = 0.0)
    ?(max_delay = 3) ?(truncate = 0.0) ?(crashes = []) () =
  let prob name x =
    if not (x >= 0.0 && x <= 1.0) then
      invalid_arg (Printf.sprintf "Faults.make: %s must be in [0,1]" name)
  in
  prob "drop" drop;
  prob "duplicate" duplicate;
  prob "delay" delay;
  prob "truncate" truncate;
  if drop +. duplicate +. delay +. truncate > 1.0 then
    invalid_arg "Faults.make: probabilities must sum to <= 1";
  if max_delay < 1 then invalid_arg "Faults.make: max_delay must be >= 1";
  List.iter
    (fun c ->
      if c.node < 0 then invalid_arg "Faults.make: crash node must be >= 0";
      if c.until_round <> max_int && c.until_round <= c.from_round then
        invalid_arg "Faults.make: crash recovery must come after the crash")
    crashes;
  (* Crash rounds start at 1: round 0 is [Ctx.start], before any delivery,
     and a node "crashed at round 0" is better modelled by removing it from
     the input graph. *)
  let crashes =
    List.map (fun c -> { c with from_round = max 1 c.from_round }) crashes
  in
  { seed; drop; duplicate; delay; max_delay; truncate; crashes }

(* ------------------------------------------------------------------ *)
(* SPEC parsing                                                        *)
(* ------------------------------------------------------------------ *)

let of_spec s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let fields =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun f -> f <> "")
  in
  let float_of name v =
    match float_of_string_opt v with
    | Some x when x >= 0.0 && x <= 1.0 -> Ok x
    | _ -> err "faults: %s wants a probability in [0,1], got %S" name v
  in
  let rec go acc = function
    | [] -> Ok acc
    | f :: rest -> (
        match String.index_opt f '=' with
        | None -> err "faults: expected key=value, got %S" f
        | Some i -> (
            let key = String.sub f 0 i in
            let v = String.sub f (i + 1) (String.length f - i - 1) in
            let prob set =
              match float_of key v with
              | Ok x -> go (set acc x) rest
              | Error _ as e -> e
            in
            match key with
            | "drop" -> prob (fun p x -> { p with drop = x })
            | "dup" -> prob (fun p x -> { p with duplicate = x })
            | "delay" -> prob (fun p x -> { p with delay = x })
            | "trunc" -> prob (fun p x -> { p with truncate = x })
            | "maxdelay" -> (
                match int_of_string_opt v with
                | Some d when d >= 1 -> go { acc with max_delay = d } rest
                | _ -> err "faults: maxdelay wants a positive int, got %S" v)
            | "seed" -> (
                match int_of_string_opt v with
                | Some sd -> go { acc with seed = sd } rest
                | None -> err "faults: seed wants an int, got %S" v)
            | "crash" -> (
                (* NODE@FROM or NODE@FROM-UNTIL *)
                match String.index_opt v '@' with
                | None -> err "faults: crash wants NODE@FROM[-UNTIL], got %S" v
                | Some j -> (
                    let node = String.sub v 0 j in
                    let when_ =
                      String.sub v (j + 1) (String.length v - j - 1)
                    in
                    let from_s, until_s =
                      match String.index_opt when_ '-' with
                      | None -> (when_, None)
                      | Some k ->
                          ( String.sub when_ 0 k,
                            Some
                              (String.sub when_ (k + 1)
                                 (String.length when_ - k - 1)) )
                    in
                    match
                      ( int_of_string_opt node,
                        int_of_string_opt from_s,
                        Option.map int_of_string_opt until_s )
                    with
                    | Some node, Some from_round, (None | Some (Some _)) ->
                        let until_round =
                          match until_s with
                          | None -> max_int
                          | Some u -> int_of_string u
                        in
                        if node < 0 then
                          err "faults: crash node must be >= 0, got %d" node
                        else if until_round <> max_int && until_round <= from_round
                        then
                          err
                            "faults: crash recovery round must exceed the \
                             crash round in %S"
                            v
                        else
                          go
                            {
                              acc with
                              crashes =
                                acc.crashes @ [ { node; from_round; until_round } ];
                            }
                            rest
                    | _ -> err "faults: crash wants NODE@FROM[-UNTIL], got %S" v)
                )
            | _ -> err "faults: unknown key %S" key))
  in
  match go none fields with
  | Error _ as e -> e
  | Ok p -> (
      try
        Ok
          (make ~seed:p.seed ~drop:p.drop ~duplicate:p.duplicate ~delay:p.delay
             ~max_delay:p.max_delay ~truncate:p.truncate ~crashes:p.crashes ())
      with Invalid_argument m -> Error m)

let to_spec p =
  let b = Buffer.create 64 in
  let sep () = if Buffer.length b > 0 then Buffer.add_char b ',' in
  let fprob k x =
    if x <> 0.0 then (
      sep ();
      Buffer.add_string b (Printf.sprintf "%s=%g" k x))
  in
  fprob "drop" p.drop;
  fprob "dup" p.duplicate;
  fprob "delay" p.delay;
  fprob "trunc" p.truncate;
  if p.delay <> 0.0 && p.max_delay <> none.max_delay then (
    sep ();
    Buffer.add_string b (Printf.sprintf "maxdelay=%d" p.max_delay));
  if p.seed <> 0 then (
    sep ();
    Buffer.add_string b (Printf.sprintf "seed=%d" p.seed));
  List.iter
    (fun c ->
      sep ();
      if c.until_round = max_int then
        Buffer.add_string b (Printf.sprintf "crash=%d@%d" c.node c.from_round)
      else
        Buffer.add_string b
          (Printf.sprintf "crash=%d@%d-%d" c.node c.from_round c.until_round))
    p.crashes;
  if Buffer.length b = 0 then "none" else Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Splittable PRNG                                                     *)
(* ------------------------------------------------------------------ *)

(* splitmix64 finalizer: each message's stream position is the hash of
   (seed, edge, round, k), so the draw for a given message is a pure
   function of its identity — no shared mutable generator state, hence no
   dependence on domain count or scheduling order. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let golden = 0x9e3779b97f4a7c15L

let hash4 a b c d =
  let open Int64 in
  let h = mix64 (add (of_int a) golden) in
  let h = mix64 (add (logxor h (of_int b)) golden) in
  let h = mix64 (add (logxor h (of_int c)) golden) in
  mix64 (add (logxor h (of_int d)) golden)

(* Uniform in [0,1) from the top 53 bits. *)
let u01 h = Int64.to_float (Int64.shift_right_logical h 11) *. 0x1p-53

type outcome = Deliver | Drop | Duplicate | Delay of int | Truncate

let draw p ~edge ~round ~k =
  let h = hash4 p.seed edge round k in
  let u = u01 h in
  if u < p.drop then Drop
  else if u < p.drop +. p.duplicate then Duplicate
  else if u < p.drop +. p.duplicate +. p.delay then
    (* A second independent draw picks the lateness in 1..max_delay. *)
    let h2 = mix64 (Int64.add h golden) in
    Delay (1 + Int64.to_int (Int64.rem (Int64.shift_right_logical h2 1)
                               (Int64.of_int p.max_delay)))
  else if u < p.drop +. p.duplicate +. p.delay +. p.truncate then Truncate
  else Deliver

let crash_schedule p ~n =
  let relevant = List.filter (fun c -> c.node < n) p.crashes in
  if relevant = [] then None
  else begin
    let from = Array.make n max_int in
    let until = Array.make n max_int in
    List.iter
      (fun c ->
        from.(c.node) <- c.from_round;
        until.(c.node) <- c.until_round)
      relevant;
    Some (from, until)
  end

exception Degraded of string
