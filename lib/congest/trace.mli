(** Event-level tracing of engine runs.

    A [Trace.t] attached to {!Engine.Make.run} records a bounded,
    allocation-light ring buffer of typed events: message send/deliver
    pairs, fault-layer firings, fiber resume/park transitions, phase and
    span open/close markers, fast-forwarded quiescent spans, and
    domain-shard round boundaries.  Where {!Telemetry} aggregates a
    per-phase series, a trace answers {e which edge} and {e which round}:
    it is the instrument behind the [.ctrace] format, the Perfetto
    export, and the [planartrace] analyzer.

    {1 Time base}

    Event timestamps are {e absolute simulated rounds}: the engine's
    per-run round counter plus the rounds of every earlier run recorded
    into the same trace, so a protocol built from many short engine runs
    (Stage I) gets one continuous timeline.

    {1 Determinism}

    Every simulated-event category (rounds, messages, faults, fibers,
    phases, spans, fast-forward) is recorded from the serial half of a
    round on the coordinating domain, in the deterministic order the
    engine contract fixes — the simulated event stream is byte-identical
    for every [?domains] count.  Host-side categories (domain-shard
    boundaries, wall-clock/GC phase profiles) measure the actual
    execution and legitimately differ between runs; they are kept in
    separate event kinds and separate aggregates so analyzers can assert
    "simulated accounting identical, host metrics differ"
    ([planartrace diff]).

    {1 Cost}

    Recording is allocation-free in steady state: events are fixed-width
    slots in a preallocated ring (oldest overwritten when full, with the
    overwrite count kept honestly in {!totals}), and per-category
    sampling keeps full-size runs cheap.  Aggregates ({!totals},
    {!sim_phases}, {!host_phases}) are exact regardless of ring overflow
    or sampling.  A [t] is single-run / single-domain state, like
    {!Telemetry.t}. *)

type t

type config = {
  capacity : int;  (** ring capacity in events (>= 1) *)
  sample_messages : int;
      (** record every [k]-th message send/deliver pair (1 = all) *)
  sample_fibers : int;
      (** record resume/park for nodes with [id mod k = 0] (1 = all) *)
  sample_spans : int;  (** record every [k]-th {!span} pair (1 = all) *)
}

(** 65536 events, every message, every fiber, every span. *)
val default_config : config

val create : ?config:config -> unit -> t

val config : t -> config

(** Deep snapshot of everything recorded so far — ring, labels, exact
    totals, open-phase accumulators.  Safe to [Marshal]; used by
    [Report.Checkpoint] so a resumed [--trace] run reproduces the full
    run's aggregates. *)
val copy : t -> t

(** [restore_into dst ~from] overwrites [dst] with [from]'s recorded
    state (ring, labels, totals, phases, base round).  Host-side deltas
    (wall clock, GC) restart at the restore point — they cannot span a
    process boundary — so only simulated aggregates are byte-identical
    across a kill/resume, which is exactly what [planartrace diff]
    compares. *)
val restore_into : t -> from:t -> unit

(** Kind of fault-layer event (see {!Faults}). *)
type fault_kind =
  | Drop
  | Duplicate
  | Delay  (** [info] = deferral in rounds *)
  | Truncate
  | Crash  (** a crash event took effect at a running node *)
  | Down_drop  (** a message lost because an endpoint was down *)

(** Why a parked fiber resumed — the causal parent slot of every
    {!Resume} event, recorded by the engine's serial delivery half.
    Constant constructors only, so recording stays allocation-free. *)
type wake_cause =
  | Wake_unknown  (** pre-causal traces (ctrace v1) or unsampled *)
  | Wake_deliver
      (** an inbox arrival; [sender]/[sent] name the earliest frame
          delivered to the node this round *)
  | Wake_deadline  (** the node's own park deadline expired *)

(** Decoded trace event.  [round] is the absolute simulated round. *)
type event =
  | Round of { round : int; bits : int; frames : int; messages : int;
               stepped : int }
      (** one simulated round's accounting (always recorded) *)
  | Message of { round : int; sent : int; sender : int; dest : int;
                 edge : int; bits : int }
      (** a frame sent at round [sent] and delivered at [round];
          [edge] is the directed edge id *)
  | Fault of { round : int; kind : fault_kind; sender : int; dest : int;
               edge : int; info : int }
  | Resume of { round : int; node : int; cause : wake_cause; sender : int;
                sent : int }
      (** a parked fiber resumed this round; on [Wake_deliver] the
          causally-first frame it woke on was sent by [sender] at
          absolute round [sent] ([-1]/[-1] otherwise) *)
  | Park of { round : int; node : int; wake : int }
      (** a fiber parked until round [wake] (or an earlier arrival) *)
  | Phase_open of { round : int; label : string }
  | Phase_close of { round : int; label : string }
  | Span_open of { round : int; label : string }
  | Span_close of { round : int; label : string }
  | Fast_forward of { round : int; rounds : int }
      (** [rounds] provably-quiescent rounds skipped starting after
          [round] *)
  | Shard of { round : int; domains : int; max_stepped : int;
               stepped : int }
      (** {b host-side}: the round's stepping was sharded across
          [domains] domains; the most loaded one resumed [max_stepped]
          of the [stepped] fibers *)
  | Run_end of { round : int; rounds : int }
      (** one engine run finished at absolute round [round] after
          [rounds] simulated rounds; the next event's run starts here
          (critpath stitches happens-before chains across it) *)

(** Exact whole-trace counters, immune to ring overflow and sampling. *)
type totals = {
  rounds : int;  (** simulated rounds (fast-forwarded spans included) *)
  frames : int;  (** charged frames (= charged rounds) *)
  bits : int;
  messages : int;
  fast_forwarded : int;
  dropped : int;
  duplicated : int;
  delayed : int;
  crashed : int;
  recorded : int;  (** events written to the ring *)
  overwritten : int;  (** of [recorded], how many the ring evicted *)
  sampled_out : int;  (** events skipped by per-category sampling *)
}

(** Exact per-phase simulated accounting (the [planartrace diff]
    anchor); empty phases are dropped, mirroring {!Telemetry.phase}. *)
type sim_phase = {
  label : string;
  rounds : int;
  bits : int;
  frames : int;
  messages : int;
  fast_forwarded : int;
}

(** Host-side profile of one phase: wall-clock and GC deltas between the
    phase's open and close, plus domain-shard load data.  Never mixed
    into simulated accounting. *)
type host_phase = {
  label : string;
  wall_s : float;
  minor_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  par_rounds : int;  (** rounds whose stepping was sharded *)
  stepped : int;  (** fibers resumed across the phase *)
  max_stepped : int;
      (** sum over sharded rounds of the most loaded domain's fiber
          count — [max_stepped * domains / stepped] ~ load imbalance *)
  max_domains : int;
}

(** {1 Recording — engine-side hooks} *)

(** [set_meta t ~n ~m ~bandwidth] records the graph shape and bandwidth;
    first call wins (all runs of one trace share a graph). *)
val set_meta : t -> n:int -> m:int -> bandwidth:int -> unit

(** [(n, m, bandwidth)] when a run has been recorded. *)
val meta : t -> (int * int * int) option

val round_tick :
  t -> round:int -> bits:int -> frames:int -> messages:int -> stepped:int ->
  unit

val message :
  t -> round:int -> sent:int -> sender:int -> dest:int -> edge:int ->
  bits:int -> unit

val fault :
  t -> round:int -> kind:fault_kind -> sender:int -> dest:int -> edge:int ->
  info:int -> unit

(** [want_fiber t node] pre-checks the fiber sampling gate so the engine
    can skip building its resume-candidate scratch for sampled-out
    nodes. *)
val want_fiber : t -> int -> bool

(** [fiber_resume t ~round ~node ~cause ~sender ~sent] records a resume
    with its causal parent: on {!Wake_deliver}, [sender]/[sent] name the
    earliest-sent frame delivered to [node] this round ([sent] is
    run-relative here; the ring stores it on the absolute timeline).
    Pass [(-1)]/[(-1)] for the other causes. *)
val fiber_resume :
  t -> round:int -> node:int -> cause:wake_cause -> sender:int -> sent:int ->
  unit

val fiber_park : t -> round:int -> node:int -> wake:int -> unit
val shard : t -> round:int -> domains:int -> max_stepped:int -> stepped:int -> unit
val fast_forward : t -> round:int -> rounds:int -> unit

(** [run_end t ~rounds] closes one engine run, recording a {!Run_end}
    event at the run's final absolute round: the next run's round 0 is
    this trace's absolute round [base + rounds]. *)
val run_end : t -> rounds:int -> unit

(** {1 Recording — protocol-side labels} *)

(** [phase t label] closes the current phase (initially an implicit
    ["run"]) and opens a new one, capturing host wall-clock/GC deltas
    for the closed phase. *)
val phase : t -> string -> unit

(** [span t label f] wraps [f ()] in a span open/close event pair
    (sampled per {!config.sample_spans}); the span label is interned
    once.  [f]'s result (or exception) passes through. *)
val span : t -> string -> (unit -> 'a) -> 'a

(** [finish t] closes the current phase; call once after the last run.
    Idempotent. *)
val finish : t -> unit

(** {1 Reading} *)

val totals : t -> totals

(** Chronological; exact even when the ring overflowed. *)
val sim_phases : t -> sim_phase list

(** Chronological, aligned 1:1 with {!sim_phases}. *)
val host_phases : t -> host_phase list

(** Surviving ring events, oldest first. *)
val iter_events : t -> (event -> unit) -> unit
