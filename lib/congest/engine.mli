(** Round-synchronous CONGEST simulator.

    Node programs are ordinary OCaml functions written in direct style; the
    effect handler behind {!Make.sync} suspends a node until the next round
    and delivers its inbox.  All nodes run in lockstep: a round consists of
    every live node executing until its next [sync], with the messages it
    sent becoming visible to its neighbors when their [sync] returns.

    Bandwidth is accounted per directed edge per round.  Rather than
    fragmenting payloads, the engine charges a round in which some edge
    carried [k] frames as [k] rounds in {!Stats.t.charged_rounds} — the cost
    an actual CONGEST execution would pay by pipelining.

    The delivery path is allocation-free in steady state: bit totals live
    in a preallocated per-directed-edge counter array (reset through a
    touched-edge worklist), messages move through per-node buffers reused
    across rounds, and the engine keeps worklists of live nodes and active
    senders so a round costs O(live nodes + messages), not O(n).

    {1 Concurrency and determinism}

    With [run ~domains:d] (d > 1), the stepping half of each round is
    sharded across [d] OCaml domains; delivery, bandwidth charging and all
    bookkeeping stay on the calling domain.  The contract:

    - {b Sharding.}  The node-id-sorted live worklist is cut into [d]
      contiguous blocks; domain [i] steps block [i] in ascending id order.
      Rounds with fewer live nodes than a small threshold are stepped by
      the calling domain alone (same code path, one block).
    - {b Arenas.}  Any state a node program can mutate that is not indexed
      by its own node id — the active-senders worklist, the rejection log,
      an escaping exception — is written to the stepping domain's private
      arena.  State indexed by node id (outboxes, inboxes, continuations,
      wake rounds, outputs, RNG states) has a single writer per round
      because blocks are disjoint.
    - {b Barrier merge.}  After all blocks finish, the calling domain
      merges arenas in index order 0..d-1.  Because blocks are contiguous
      ascending id ranges, concatenating the arenas' sender lists yields
      the exact globally-ascending sender order of the serial engine, so
      inbox contents, per-edge bit totals, frame charges, the rejection
      log, and the choice of which exception propagates (the lowest
      failing node id) are all {e byte-identical for every d}, including
      [d = 1].  Only wall-clock time and the telemetry utilization fields
      ([parallel_rounds], [max_domains]) depend on [d].
    - {b Synchronization.}  One mutex/condition barrier per phase; its
      acquire/release pairs carry every cross-domain happens-before edge.
      Node programs never need locks and must not touch shared mutable
      state other than through this module's API.
    - {b Worker team.}  Worker domains are spawned once per process (on
      the first sharded round) and reused by every subsequent run —
      protocols built from thousands of short runs never pay a
      spawn/join per run.  A single run drives the team at a time; a
      concurrent run that finds the team busy steps serially, which by
      the merge argument above changes nothing observable.

    {b Fast-forward.}  When a round ends with no frame in flight (no node
    queued a send) and every live fiber is parked in a {!Make.wait} whose
    wake round is strictly in the future, the intervening rounds are
    provably empty: nothing to deliver, one frame charged, nobody resumed.
    [run ~fast_forward:true] (the default) advances [rounds],
    [charged_rounds] and the round counter over that span in O(1) instead
    of simulating it, records the span in
    {!Stats.t.fast_forwarded_rounds}, and emits the same per-round
    telemetry the stepped rounds would have produced.  The round in which
    the earliest waiter expires is always simulated normally, so nominal
    and charged accounting are unchanged.

    {b Fault injection.}  [run ?faults] consults a {!Faults.policy} at
    delivery time — the serial, deterministically ordered half of a round
    — to drop, duplicate, delay or truncate individual messages and to
    crash-stop / crash-recover nodes at scheduled rounds.  Because every
    decision is a pure function of [(policy, directed edge, round,
    per-edge message index)], the injected schedule inherits the full
    determinism contract: byte-identical [Stats] / [Telemetry] / outputs
    for every [?domains] count and for [fast_forward] on/off.  Protocols
    observe faults only as silence (lost or late messages, unresponsive
    neighbors), which is the CONGEST-faithful model; every fault is
    charged in {!Stats.t.dropped} / [duplicated] / [delayed] /
    [crashed_nodes].  Two visible semantic changes under an active
    policy: an inbox is no longer guaranteed sorted by sender (a delayed
    message arrives before the round's fresh ones), and a run containing
    a crash-stopped node returns [completed = false] (the node cannot
    produce an output). *)

module type MESSAGE = sig
  type t

  (** Size of the message on the wire, in bits. *)
  val bits : t -> int
end

(** Raised {e into} node programs still suspended at a [sync] when a run
    ends early (strict-mode overflow, node exception, or [max_rounds]), so
    their stacks unwind and finalizers run.  Node programs should let it
    propagate. *)
exception Stopped

module Make (Msg : MESSAGE) : sig
  type ctx
  (** Handle to a node's identity and mailboxes, usable only inside a node
      program. *)

  val my_id : ctx -> int
  val n_nodes : ctx -> int
  val degree : ctx -> int

  (** Sorted neighbor ids (shared array — do not mutate). *)
  val neighbors : ctx -> int array

  (** [(neighbor, edge id)] pairs, sorted by neighbor. *)
  val incident : ctx -> (int * int) array

  (** Per-node deterministic random state (derived from the run seed). *)
  val rng : ctx -> Random.State.t

  (** [send ctx ~dest msg] queues [msg] on the edge to neighbor [dest] for
      delivery at the end of the current round.  Raises [Invalid_argument]
      if [dest] is not a neighbor. *)
  val send : ctx -> dest:int -> Msg.t -> unit

  (** [broadcast ctx msg] sends [msg] to every neighbor. *)
  val broadcast : ctx -> Msg.t -> unit

  (** Ends the node's round.  Returns the messages received this round as
      [(sender, message)] pairs sorted by sender; several messages from
      the same sender arrive in reverse send order. *)
  val sync : ctx -> (int * Msg.t) list

  (** [wait ctx k] ends the node's round and parks it until the first
      round in which its inbox is non-empty — returning that inbox, like
      {!sync} — or unconditionally after [k] rounds, returning [[]].
      [wait ctx 1] is exactly [sync ctx]; [k <= 0] returns [[]] without
      ending the round.  Rounds spent parked cost the engine nothing per
      parked node, and a round in which {e every} live node is parked with
      no message in flight is fast-forwarded in O(1) (see the module
      preamble), so protocols should prefer one [wait budget] over a
      budget-length [sync] loop when they only react to arrivals. *)
  val wait : ctx -> int -> (int * Msg.t) list

  (** [idle ctx k] parks for exactly [k] rounds, discarding any arrivals
      (equivalent to [k] ignored syncs, but fast-forwardable). *)
  val idle : ctx -> int -> unit

  (** Current round number (starts at 0, increments at each [sync]). *)
  val round : ctx -> int

  (** Record a one-sided-error rejection at this node; the program may keep
      running. *)
  val reject : ctx -> string -> unit

  val stats : ctx -> Stats.t

  type 'o result = {
    outputs : 'o option array;
        (** per node; [None] if the node did not finish before [max_rounds] *)
    rejections : (int * int * string) list;
        (** full log: [(round, node, reason)] in chronological order.  The
            same node re-recording the same reason in a later round yields
            a separate entry (use {!distinct_rejections} for display). *)
    failures : (int * int * exn) list;
        (** [(round, node, exn)] for every node program that raised, in
            chronological order — non-empty only with [~on_error:`Record]
            (the default [`Propagate] re-raises instead).  The set of
            recorded failures is independent of the [?domains] count. *)
    stats : Stats.t;
    completed : bool;
        (** all nodes ran to completion (false when [max_rounds] hit, a
            node crash-stopped, or a failure was recorded) *)
  }

  (** Deduplicated display view of a rejection log: distinct
      [(node, reason)] pairs, sorted. *)
  val distinct_rejections : (int * int * string) list -> (int * string) list

  type pool
  (** Preallocated delivery state (message buffers, per-edge bit counters,
      worklists) for one graph, reusable across {!run} calls so protocols
      built from many short runs avoid the O(n + m) per-run allocation
      bill.  A pool is single-domain and serves one run at a time; passing
      a busy pool (nested run) or one built for a different graph value
      makes {!run} fall back to fresh allocation. *)

  (** [pool g] preallocates run state for [g].  Also publishes the
      [congest_graph_*_bytes] / [congest_pool_*_bytes] gauges read by the
      M1 memory gate. *)
  val pool : Graphlib.Graph.t -> pool

  (** Analytic resident cost of a pool, in bytes, split the way the M1
      memory experiment reports it: [node_bytes] covers the
      vertex-indexed arrays, [edge_bytes] the edge-indexed arrays (16
      bytes/edge fault-free; twice that once a faulted run has sized the
      per-edge fault index), and [slab_bytes] the growable message slabs,
      whose capacity tracks the peak per-round traffic rather than n or
      m.  Slot bytes only — message payloads are shared values and not
      counted. *)
  type footprint = { node_bytes : int; edge_bytes : int; slab_bytes : int }

  val footprint : pool -> footprint

  (** [run g program] executes [program] at every node of [g].

      On every early exit — a strict-mode bandwidth failure, an exception
      escaping a node program, or hitting [max_rounds] — all still-suspended
      nodes are discontinued with {!Stopped} before [run] returns or
      re-raises, so no live continuation (or its finalizers) is abandoned.

      @param seed     determinism seed for the per-node random states.
      @param bandwidth per-edge per-round bit budget
             (default {!Bits.default_bandwidth}).
      @param strict raise [Failure] on the first (edge, round) pair whose
             traffic exceeds [bandwidth], instead of charging extra rounds
             (default [false]).
      @param max_rounds safety limit; exceeding it stops the run with
             [completed = false].  Fast-forwarded spans are capped so the
             run stops at exactly [max_rounds] simulated rounds.
      @param telemetry when given, one {!Telemetry.tick} is recorded per
             simulated round (bits, frames, messages, fibers stepped,
             domains used); fast-forwarded rounds are recorded through
             {!Telemetry.fast_forward}.
      @param trace when given, typed per-event records (message
             deliveries, fault firings, fiber resume/park, fast-forward
             spans, per-round accounting, domain-shard boundaries) are
             appended to the {!Trace.t} ring.  Simulated-event categories
             are recorded from the serial half of a round in deterministic
             order — byte-identical for every [?domains] count; host-side
             categories (shard boundaries) reflect the actual execution.
             Fiber resume/park events are predicted on the coordinating
             domain from the same resume predicate the stepper uses, so
             they too are domain-count invariant.  Tracing is independent
             of [?telemetry]; with the argument omitted the engine's hot
             path pays a single branch per event site.
      @param domains shard node stepping across this many OCaml domains
             (default 1 = serial).  All accounting is byte-identical for
             every value — see {e Concurrency and determinism} above.
             Worker domains come from a process-wide team spawned lazily
             on the first round large enough to shard; the team is
             shared across runs (one run drives it at a time, concurrent
             runs step serially) and joined at process exit.
      @param fast_forward advance provably-quiescent round spans in O(1)
             (default [true]).  [false] is the measurement baseline: it
             also reverts {!wait} to legacy per-round stepping (every
             waiting fiber resumed every round), reproducing the
             pre-optimisation engine.  Accounting is identical either
             way; only {!Stats.t.fast_forwarded_rounds} records that the
             shortcut was taken.
      @param faults inject deterministic message/node faults drawn from
             the policy's splittable PRNG (default: none).  See
             {e Fault injection} in the module preamble.  Passing
             {!Faults.none} is byte-identical to omitting the argument.
      @param on_error what to do when a node program raises.
             [`Propagate] (the default) discontinues every other node and
             re-raises the exception of the lowest failing node id —
             historical behavior.  [`Record] contains the failure: the
             node dies (its output stays [None]), the round keeps
             stepping, and {e all} failing nodes are reported in
             [result.failures] — the recorded set is the same for every
             [?domains] count, closing the only-one-exception-observable
             gap of [`Propagate].
      @param on_round host-side observer called on the coordinator after
             each completed round — [f 1] per stepped round, [f delta]
             after a fast-forwarded quiescent span of [delta] rounds.
             Runs strictly between rounds (quiescent state) and must not
             touch simulated state; with a pure observer the simulated
             stream is byte-identical with or without the hook.  Drives
             {!Obs.Heartbeat}.
      @param pool reuse preallocated delivery state (must come from
             [pool g] on the same graph value). *)
  val run :
    ?seed:int ->
    ?bandwidth:int ->
    ?strict:bool ->
    ?max_rounds:int ->
    ?telemetry:Telemetry.t ->
    ?trace:Trace.t ->
    ?domains:int ->
    ?fast_forward:bool ->
    ?faults:Faults.policy ->
    ?on_round:(int -> unit) ->
    ?on_error:[ `Propagate | `Record ] ->
    ?pool:pool ->
    Graphlib.Graph.t ->
    (ctx -> 'o) ->
    'o result
end
