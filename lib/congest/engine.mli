(** Round-synchronous CONGEST simulator.

    Node programs are ordinary OCaml functions written in direct style; the
    effect handler behind {!Make.sync} suspends a node until the next round
    and delivers its inbox.  All nodes run in lockstep: a round consists of
    every live node executing until its next [sync], with the messages it
    sent becoming visible to its neighbors when their [sync] returns.

    Bandwidth is accounted per directed edge per round.  Rather than
    fragmenting payloads, the engine charges a round in which some edge
    carried [k] frames as [k] rounds in {!Stats.t.charged_rounds} — the cost
    an actual CONGEST execution would pay by pipelining.

    The delivery path is allocation-free in steady state: bit totals live
    in a preallocated per-directed-edge counter array (reset through a
    touched-edge worklist), messages move through per-node buffers reused
    across rounds, and the engine keeps worklists of live nodes and active
    senders so a round costs O(live nodes + messages), not O(n). *)

module type MESSAGE = sig
  type t

  (** Size of the message on the wire, in bits. *)
  val bits : t -> int
end

(** Raised {e into} node programs still suspended at a [sync] when a run
    ends early (strict-mode overflow, node exception, or [max_rounds]), so
    their stacks unwind and finalizers run.  Node programs should let it
    propagate. *)
exception Stopped

module Make (Msg : MESSAGE) : sig
  type ctx
  (** Handle to a node's identity and mailboxes, usable only inside a node
      program. *)

  val my_id : ctx -> int
  val n_nodes : ctx -> int
  val degree : ctx -> int

  (** Sorted neighbor ids (shared array — do not mutate). *)
  val neighbors : ctx -> int array

  (** [(neighbor, edge id)] pairs, sorted by neighbor. *)
  val incident : ctx -> (int * int) array

  (** Per-node deterministic random state (derived from the run seed). *)
  val rng : ctx -> Random.State.t

  (** [send ctx ~dest msg] queues [msg] on the edge to neighbor [dest] for
      delivery at the end of the current round.  Raises [Invalid_argument]
      if [dest] is not a neighbor. *)
  val send : ctx -> dest:int -> Msg.t -> unit

  (** [broadcast ctx msg] sends [msg] to every neighbor. *)
  val broadcast : ctx -> Msg.t -> unit

  (** Ends the node's round.  Returns the messages received this round as
      [(sender, message)] pairs sorted by sender; several messages from
      the same sender arrive in reverse send order. *)
  val sync : ctx -> (int * Msg.t) list

  (** [idle ctx k] syncs [k] times, discarding inboxes. *)
  val idle : ctx -> int -> unit

  (** Current round number (starts at 0, increments at each [sync]). *)
  val round : ctx -> int

  (** Record a one-sided-error rejection at this node; the program may keep
      running. *)
  val reject : ctx -> string -> unit

  val stats : ctx -> Stats.t

  type 'o result = {
    outputs : 'o option array;
        (** per node; [None] if the node did not finish before [max_rounds] *)
    rejections : (int * int * string) list;
        (** full log: [(round, node, reason)] in chronological order.  The
            same node re-recording the same reason in a later round yields
            a separate entry (use {!distinct_rejections} for display). *)
    stats : Stats.t;
    completed : bool;  (** all nodes ran to completion *)
  }

  (** Deduplicated display view of a rejection log: distinct
      [(node, reason)] pairs, sorted. *)
  val distinct_rejections : (int * int * string) list -> (int * string) list

  type pool
  (** Preallocated delivery state (message buffers, per-edge bit counters,
      worklists) for one graph, reusable across {!run} calls so protocols
      built from many short runs avoid the O(n + m) per-run allocation
      bill.  A pool is single-domain and serves one run at a time; passing
      a busy pool (nested run) or one built for a different graph value
      makes {!run} fall back to fresh allocation. *)

  (** [pool g] preallocates run state for [g]. *)
  val pool : Graphlib.Graph.t -> pool

  (** [run g program] executes [program] at every node of [g].

      On every early exit — a strict-mode bandwidth failure, an exception
      escaping a node program, or hitting [max_rounds] — all still-suspended
      nodes are discontinued with {!Stopped} before [run] returns or
      re-raises, so no live continuation (or its finalizers) is abandoned.

      @param seed     determinism seed for the per-node random states.
      @param bandwidth per-edge per-round bit budget
             (default {!Bits.default_bandwidth}).
      @param strict raise [Failure] on the first (edge, round) pair whose
             traffic exceeds [bandwidth], instead of charging extra rounds
             (default [false]).
      @param max_rounds safety limit; exceeding it stops the run with
             [completed = false].
      @param telemetry when given, one {!Telemetry.tick} is recorded per
             simulated round (bits, frames, messages).
      @param pool reuse preallocated delivery state (must come from
             [pool g] on the same graph value). *)
  val run :
    ?seed:int ->
    ?bandwidth:int ->
    ?strict:bool ->
    ?max_rounds:int ->
    ?telemetry:Telemetry.t ->
    ?pool:pool ->
    Graphlib.Graph.t ->
    (ctx -> 'o) ->
    'o result
end
