open Graphlib

module M = struct
  type t = Level of int | Leader of int | Count of int | Child of bool

  let bits = function
    | Level v | Leader v | Count v -> 4 + Bits.int_bits ~universe:(abs v + 2)
    | Child _ -> 5
end

module E = Engine.Make (M)
module C = Compiled.Make (M)

type bfs_result = { parent : int array; level : int array; rounds : int }

(* Each protocol below exists twice: the fiber program (the reference)
   and a compiled twin that runs the same per-round logic as flat array
   passes — one [resume] per node per round instead of one fiber
   suspend/resume.  The twins replicate the fiber send order exactly
   (broadcasts in port order, [Child] replies in neighbor order), so
   Stats and Telemetry are byte-identical; the differential tests in
   test/test_congest.ml hold them to that. *)

let bfs_tree_fiber g ~root ~rounds_bound =
  let n = Graph.n g in
  let parent = Array.make n (-1) in
  let level = Array.make n (-1) in
  let res =
    E.run g (fun ctx ->
        let v = E.my_id ctx in
        (if v = root then begin
           level.(v) <- 0;
           E.broadcast ctx (M.Level 0)
         end);
        for _ = 1 to rounds_bound do
          List.iter
            (fun (from, msg) ->
              match msg with
              | M.Level d ->
                  if level.(v) < 0 then begin
                    level.(v) <- d + 1;
                    parent.(v) <- from;
                    E.broadcast ctx (M.Level (d + 1))
                  end
              | _ -> assert false)
            (E.sync ctx)
        done)
  in
  { parent; level; rounds = res.E.stats.Stats.rounds }

let bfs_tree_compiled g ~root ~rounds_bound =
  let n = Graph.n g in
  let parent = Array.make n (-1) in
  let level = Array.make n (-1) in
  let rem = Array.make n rounds_bound in
  let res =
    C.run g
      ~start:(fun ctx v ->
        (if v = root then begin
           level.(v) <- 0;
           C.broadcast ctx (M.Level 0)
         end);
        if rounds_bound <= 0 then C.Halt else C.Park 1)
      ~resume:(fun ctx v inbox ->
        List.iter
          (fun (from, msg) ->
            match msg with
            | M.Level d ->
                if level.(v) < 0 then begin
                  level.(v) <- d + 1;
                  parent.(v) <- from;
                  C.broadcast ctx (M.Level (d + 1))
                end
            | _ -> assert false)
          inbox;
        rem.(v) <- rem.(v) - 1;
        if rem.(v) = 0 then C.Halt else C.Park 1)
  in
  { parent; level; rounds = res.C.stats.Stats.rounds }

let bfs_tree ?(mode = Compiled.Fiber) g ~root ~rounds_bound =
  if Compiled.pick mode ~faults:false then
    bfs_tree_compiled g ~root ~rounds_bound
  else bfs_tree_fiber g ~root ~rounds_bound

let elect_min_id_fiber g ~rounds_bound =
  let n = Graph.n g in
  let leader = Array.init n (fun v -> v) in
  ignore
    (E.run g (fun ctx ->
         let v = E.my_id ctx in
         E.broadcast ctx (M.Leader v);
         for _ = 1 to rounds_bound do
           let improved = ref false in
           List.iter
             (fun (_, msg) ->
               match msg with
               | M.Leader c ->
                   if c < leader.(v) then begin
                     leader.(v) <- c;
                     improved := true
                   end
               | _ -> assert false)
             (E.sync ctx);
           if !improved then E.broadcast ctx (M.Leader leader.(v))
         done));
  leader

let elect_min_id_compiled g ~rounds_bound =
  let n = Graph.n g in
  let leader = Array.init n (fun v -> v) in
  let rem = Array.make n rounds_bound in
  ignore
    (C.run g
       ~start:(fun ctx v ->
         C.broadcast ctx (M.Leader v);
         if rounds_bound <= 0 then C.Halt else C.Park 1)
       ~resume:(fun ctx v inbox ->
         let improved = ref false in
         List.iter
           (fun (_, msg) ->
             match msg with
             | M.Leader c ->
                 if c < leader.(v) then begin
                   leader.(v) <- c;
                   improved := true
                 end
             | _ -> assert false)
           inbox;
         if !improved then C.broadcast ctx (M.Leader leader.(v));
         rem.(v) <- rem.(v) - 1;
         if rem.(v) = 0 then C.Halt else C.Park 1));
  leader

let elect_min_id ?(mode = Compiled.Fiber) g ~rounds_bound =
  if Compiled.pick mode ~faults:false then
    elect_min_id_compiled g ~rounds_bound
  else elect_min_id_fiber g ~rounds_bound

(* Flood-echo on a general graph: the wave builds a BFS tree; on adoption a
   node tells its parent [Child true] and every other neighbor
   [Child false], so each node knows when all neighbor relations are
   resolved and all child counts are in. *)
let count_nodes_fiber g ~root ~rounds_bound =
  let n = Graph.n g in
  let parent = Array.make n (-2) in
  let total = ref 0 in
  let res =
    E.run g (fun ctx ->
        let v = E.my_id ctx in
        let unknown = ref (E.degree ctx) in
        let children_pending = ref 0 in
        let sum = ref 1 in
        let sent = ref false in
        (* Every neighbor sends exactly one [Child] message (when it
           adopts); [unknown] resolves purely by receiving them. *)
        let adopt from d =
          parent.(v) <- from;
          E.broadcast ctx (M.Level (d + 1));
          Array.iter
            (fun w ->
              if w = from then E.send ctx ~dest:w (M.Child true)
              else E.send ctx ~dest:w (M.Child false))
            (E.neighbors ctx)
        in
        (if v = root then adopt (-1) (-1));
        for _ = 1 to rounds_bound do
          List.iter
            (fun (from, msg) ->
              match msg with
              | M.Level d -> if parent.(v) = -2 then adopt from d
              | M.Child true ->
                  decr unknown;
                  incr children_pending
              | M.Child false -> decr unknown
              | M.Count c ->
                  sum := !sum + c;
                  decr children_pending
              | _ -> assert false)
            (E.sync ctx);
          if
            !unknown = 0 && !children_pending = 0 && (not !sent)
            && parent.(v) >= -1
          then begin
            sent := true;
            if parent.(v) >= 0 then E.send ctx ~dest:parent.(v) (M.Count !sum)
            else total := !sum
          end
        done)
  in
  (!total, res.E.stats.Stats.rounds)

let count_nodes_compiled g ~root ~rounds_bound =
  let n = Graph.n g in
  let parent = Array.make n (-2) in
  let unknown = Array.init n (fun v -> Graph.degree g v) in
  let children_pending = Array.make n 0 in
  let sum = Array.make n 1 in
  let sent = Bytes.make n '\000' in
  let rem = Array.make n rounds_bound in
  let total = ref 0 in
  (* [Level] broadcast first, then one [Child] per neighbor in port
     order — the fiber twin's exact send sequence. *)
  let adopt ctx v from d =
    parent.(v) <- from;
    C.broadcast ctx (M.Level (d + 1));
    Graph.iter_incident g v (fun w e ->
        C.send_port ctx ~dest:w ~eid:e (M.Child (w = from)))
  in
  let res =
    C.run g
      ~start:(fun ctx v ->
        (if v = root then adopt ctx v (-1) (-1));
        if rounds_bound <= 0 then C.Halt else C.Park 1)
      ~resume:(fun ctx v inbox ->
        List.iter
          (fun (from, msg) ->
            match msg with
            | M.Level d -> if parent.(v) = -2 then adopt ctx v from d
            | M.Child true ->
                unknown.(v) <- unknown.(v) - 1;
                children_pending.(v) <- children_pending.(v) + 1
            | M.Child false -> unknown.(v) <- unknown.(v) - 1
            | M.Count c ->
                sum.(v) <- sum.(v) + c;
                children_pending.(v) <- children_pending.(v) - 1
            | _ -> assert false)
          inbox;
        (if
           unknown.(v) = 0
           && children_pending.(v) = 0
           && Bytes.get sent v = '\000'
           && parent.(v) >= -1
         then begin
           Bytes.set sent v '\001';
           if parent.(v) >= 0 then C.send ctx ~dest:parent.(v) (M.Count sum.(v))
           else total := sum.(v)
         end);
        rem.(v) <- rem.(v) - 1;
        if rem.(v) = 0 then C.Halt else C.Park 1)
  in
  (!total, res.C.stats.Stats.rounds)

let count_nodes ?(mode = Compiled.Fiber) g ~root ~rounds_bound =
  if Compiled.pick mode ~faults:false then
    count_nodes_compiled g ~root ~rounds_bound
  else count_nodes_fiber g ~root ~rounds_bound
