(** Machine-readable observability for engine runs.

    A [Telemetry.t] attached to {!Engine.Make.run} (and threaded through
    higher layers via [Partition.State]) records, for every simulated
    round, the bits delivered, the frames charged on the most loaded
    directed edge, and the number of messages.  Rounds are grouped into
    named phases opened by {!phase}, so a caller such as
    [Partition.Stage1] can label each partition phase and Stage II can
    label its own work; the result is a per-phase round/bit/frame series
    that serializes to JSON alongside the final {!Stats.t}.

    Recording is allocation-light: each series is a growable [int] array,
    amortized O(1) per round, and a [t] is single-run / single-domain
    state (attach a fresh one per run when fanning runs across domains). *)

(** Minimal JSON document type and printer (the toolchain has no JSON
    library; this is the serialization used by [bench --json] and
    [planartest --stats-json]). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  (** Compact rendering (no insignificant whitespace), RFC 8259 string
      escaping; [Float] values that are not finite render as [null]. *)
  val to_buffer : Buffer.t -> t -> unit

  val to_string : t -> string

  (** [write_file path j] writes [j] followed by a newline. *)
  val write_file : string -> t -> unit
end

type t

(** [create ()] starts with one implicit phase labelled ["run"].
    [series:false] keeps only per-phase aggregates (constant memory). *)
val create : ?series:bool -> unit -> t

(** [phase t label] closes the current phase and opens a new one.  An
    empty current phase (no rounds recorded) is dropped rather than
    serialized. *)
val phase : t -> string -> unit

(** Deep copy of everything recorded so far — safe to marshal or keep
    while the original keeps ticking.  (Telemetry state is plain data:
    records, strings and int arrays; no closures.) *)
val copy : t -> t

(** [restore_into dst ~from] overwrites [dst]'s recorded state with a
    deep copy of [from]'s, as if [dst] had recorded [from]'s history
    itself.  Used by checkpoint resume to splice the pre-interruption
    series back into a fresh recorder; [dst]'s [series] setting is
    kept. *)
val restore_into : t -> from:t -> unit

(** [tick t ~bits ~frames ~messages] records one simulated round:
    [bits] delivered in total, [frames] charged for the most loaded
    directed edge (>= 1), [messages] delivered.  Called by the engine.
    [stepped] is the number of node fibers actually resumed this round
    (defaults to 0 for callers that do not track it); [domains] is the
    number of domains that participated in stepping the round (1 when
    the round ran serially).  [dropped] / [duplicated] / [delayed] /
    [crashed] record fault-layer events charged to this round (all
    default to 0; see {!Faults}). *)
val tick :
  ?stepped:int ->
  ?domains:int ->
  ?dropped:int ->
  ?duplicated:int ->
  ?delayed:int ->
  ?crashed:int ->
  t ->
  bits:int ->
  frames:int ->
  messages:int ->
  unit

(** [fast_forward t ~rounds] records [rounds] provably-quiescent rounds
    that the engine advanced in O(1) instead of stepping.  Each is
    accounted exactly like the empty round it replaces (0 bits, 1 frame,
    0 messages, 0 stepped), so aggregates and series are byte-identical
    whether or not fast-forwarding fired; the count is additionally
    tracked in the phase's [fast_forwarded] field. *)
val fast_forward : t -> rounds:int -> unit

type phase_view = {
  label : string;
  rounds : int;  (** simulated rounds recorded in this phase *)
  frames : int;  (** sum of per-round frame charges (= charged rounds) *)
  bits : int;
  messages : int;
  stepped : int;  (** total node fibers resumed across the phase *)
  parallel_rounds : int;  (** rounds stepped by more than one domain *)
  fast_forwarded : int;  (** of [rounds], how many were fast-forwarded *)
  max_domains : int;  (** peak domains used on any round (>= 1) *)
  dropped : int;  (** fault layer: messages destroyed in this phase *)
  duplicated : int;  (** fault layer: extra copies injected *)
  delayed : int;  (** fault layer: messages deferred by >= 1 round *)
  crashed : int;  (** fault layer: crash events taking effect *)
}

(** Phases in chronological order, empty phases dropped. *)
val phases : t -> phase_view list

(** JSON view of a {!Stats.t}. *)
val stats_json : Stats.t -> Json.t

(** Full JSON view: [{"phases": [{"label", "rounds", "frames", "bits",
    "messages", "stepped", "parallel_rounds", "fast_forwarded",
    "max_domains", "dropped", "duplicated", "delayed", "crashed",
    "series"?: {"bits", "frames", "messages", "stepped"}}]}].  The
    ["series"] member is present iff the telemetry was created with
    [series:true]; each series has one entry per recorded round. *)
val to_json : t -> Json.t
