(** Classic CONGEST building blocks on the simulator, provided both as
    reusable substrate and as validation targets for the engine (their
    round complexities are textbook facts the tests pin down). *)

(** Result of {!bfs_tree}: parent pointers and levels of a BFS tree rooted
    at the source ([-1] parent at the root and at unreached nodes). *)
type bfs_result = {
  parent : int array;
  level : int array;  (** [-1] when unreached *)
  rounds : int;
}

(** [bfs_tree g ~root ~rounds_bound] floods from [root] for
    [rounds_bound] rounds (use an eccentricity upper bound, e.g. [n]).
    [?mode] (default [Fiber]) selects the execution engine; the compiled
    path produces byte-identical results and {!Congest.Stats} (see
    {!Compiled}). *)
val bfs_tree :
  ?mode:Compiled.mode ->
  Graphlib.Graph.t ->
  root:int ->
  rounds_bound:int ->
  bfs_result

(** Leader election by min-id flooding: every node learns the smallest id
    in its component in (at most) [rounds_bound] rounds; returns the
    per-node leader. *)
val elect_min_id :
  ?mode:Compiled.mode -> Graphlib.Graph.t -> rounds_bound:int -> int array

(** Flood-echo from [root]: counts the nodes of [root]'s component using a
    spanning-tree convergecast; returns (count, rounds). *)
val count_nodes :
  ?mode:Compiled.mode ->
  Graphlib.Graph.t ->
  root:int ->
  rounds_bound:int ->
  int * int
