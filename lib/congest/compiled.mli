(** Fiber-free compiled execution for lockstep protocol shapes.

    The general {!Engine} runs one effect-handler fiber per node, which is
    what makes arbitrary node programs (nested waits, exceptions, local
    recursion) expressible — but the suspend/resume machinery dominates
    the inner rounds of the protocols this repository actually runs.
    Stage I's primitives and the {!Protocols} helpers are all of one
    restricted shape: a node does some work at start-up, parks for a known
    number of rounds, and is re-entered once per delivery or deadline with
    its inbox.  That shape needs no fiber at all: this module executes it
    as flat array passes over the CSR substrate — one pass per simulated
    round, no continuations, no per-node stacks, no allocation beyond the
    messages themselves.

    {b Byte-identity contract.}  For the same graph and the same
    (deterministic, fault-free) protocol, a compiled run produces
    {!Stats.t} and {!Telemetry} output byte-identical to the fiber engine
    at the same [fast_forward] setting: the delivery order (ascending
    sender, reverse send order within a sender), the inbox construction,
    bandwidth charging ([max_edge_bits], [oversized], frame counts), round
    and fast-forward accounting, and the per-round telemetry ticks all
    replicate {!Engine}'s serial half exactly.  The differential suite in
    [test/test_prop.ml] and the [make compiled] CI leg enforce this.

    Compiled execution is serial by construction (a round is a single
    array pass; there is nothing left to parallelize at the per-round cost
    this module reaches), so telemetry's host-side [max_domains] is 1 —
    exactly what the fiber engine reports at [~domains:1].

    Event tracing ([?trace]) is implemented natively: the array passes
    emit the same message/resume/park/round/fast-forward event stream
    the fiber engine records from its serial half — including the
    causal wake slots — so a compiled [.ctrace] is byte-identical to a
    serial fiber one.  Fault injection is deliberately not: it perturbs
    the lockstep assumptions, so {!pick} returns [false] under faults
    and callers fall back to the fiber engine. *)

(** Execution-mode knob threaded through [Stage1], [Planarity_tester] and
    the CLIs ([planartest --mode], [bench --mode]). *)
type mode =
  | Fiber  (** always the general effect-handler engine (the default) *)
  | Compiled
      (** compiled array passes where the protocol shape allows; silently
          falls back to the fiber engine under faults, and for general
          [run_program]-style node programs *)
  | Auto  (** [Compiled] when faults are off, else [Fiber] *)

(** [pick mode ~faults] decides whether a protocol-shaped run should
    take the compiled path.  [Fiber] never does; [Compiled] and [Auto]
    do exactly when no fault policy is active (tracing is supported
    natively, so it no longer forces the fiber path). *)
val pick : mode -> faults:bool -> bool

val mode_to_string : mode -> string

(** Accepted spellings: ["fiber"], ["compiled"], ["auto"]. *)
val mode_of_string : string -> mode option

(** Per-mode run counters, shared by both engines: the fiber engine
    increments them with label ["fiber"], compiled runs with
    ["compiled"].  Stable — simulated round counts are ff- and
    domain-invariant — so they appear in the metrics stable projection;
    they are the one family where a fiber-mode and a compiled-mode run of
    the same workload differ (by the mode label only, never the values). *)
val m_mode_runs : Obs.Metrics.counter

val m_mode_rounds : Obs.Metrics.counter

module type MESSAGE = sig
  type t

  val bits : t -> int
end

module Make (Msg : MESSAGE) : sig
  (** What a node does next, returned by the [start] / [resume] hooks:
      [Park k] re-enters the node at the first round with a non-empty
      inbox, or unconditionally after [k] rounds ([k] is clamped to
      [>= 1], like the engine's [wait]); [Halt] ends the node. *)
  type step = Halt | Park of int

  (** Per-run execution context handed to the hooks; carries the current
      node implicitly, so hooks must only use it synchronously. *)
  type ctx

  (** Preallocated per-graph delivery state, reusable across runs (the
      compiled analogue of [Engine.pool], minus fiber storage).  One run
      at a time; a busy pool falls back to fresh allocation. *)
  type pool

  val pool : Graphlib.Graph.t -> pool

  (** Queue a message to a neighbor (binary-search edge lookup, exactly
      like [Engine.send]).  @raise Invalid_argument on a non-neighbor. *)
  val send : ctx -> dest:int -> Msg.t -> unit

  (** [send_port ctx ~dest ~eid msg] queues on a known incident edge id —
      no search; for callers iterating an incidence structure.  The
      directed-edge accounting is identical to {!send}. *)
  val send_port : ctx -> dest:int -> eid:int -> Msg.t -> unit

  (** Broadcast to all neighbors in port (neighbor-ascending) order,
      matching [Engine.broadcast]. *)
  val broadcast : ctx -> Msg.t -> unit

  (** Current round (0 during start-up, [r >= 1] inside round [r]'s
      resume pass) — same clock as [Engine.round]. *)
  val round : ctx -> int

  (** Record rejection evidence, like [Engine.reject]. *)
  val reject : ctx -> string -> unit

  type result = {
    rejections : (int * int * string) list;
        (** (round, node, reason), chronological *)
    stats : Stats.t;
    completed : bool;  (** false iff [max_rounds] was exhausted *)
  }

  (** [run g ~start ~resume] drives every node through its [start] hook
      (ascending id order, round 0), then simulates rounds until every
      node has halted: deliveries, bandwidth charging, telemetry ticks,
      fast-forward over quiescent spans and [max_rounds] cut-off all
      follow [Engine.run]'s serial semantics byte-for-byte.  [resume] is
      invoked per node (ascending) with the round's inbox — possibly [[]]
      when the park deadline expired with no traffic.  An exception from
      a hook aborts the run after the round's accounting, exactly where
      the fiber engine's propagate mode re-raises.  With [?trace]
      attached, the run records the same event stream (messages with
      causal wake slots, predicted resume/park pairs, round ticks,
      fast-forward spans, run end) the fiber engine would at
      [~domains:1].  Defaults match [Engine.run]: bandwidth
      [Bits.default_bandwidth n], max_rounds 1_000_000, fast-forward
      on. *)
  val run :
    ?bandwidth:int ->
    ?max_rounds:int ->
    ?telemetry:Telemetry.t ->
    ?trace:Trace.t ->
    ?fast_forward:bool ->
    ?on_round:(int -> unit) ->
    ?pool:pool ->
    Graphlib.Graph.t ->
    start:(ctx -> int -> step) ->
    resume:(ctx -> int -> (int * Msg.t) list -> step) ->
    result
  (** [?on_round] is the same host-side per-round observer as
      [Engine.run]'s: [f 1] per stepped round, [f delta] per
      fast-forwarded span.  Must not touch simulated state. *)
end
