open Graphlib

type mode = Fiber | Compiled | Auto

let pick mode ~faults =
  match mode with
  | Fiber -> false
  | Compiled | Auto -> not faults

let mode_to_string = function
  | Fiber -> "fiber"
  | Compiled -> "compiled"
  | Auto -> "auto"

let mode_of_string = function
  | "fiber" -> Some Fiber
  | "compiled" -> Some Compiled
  | "auto" -> Some Auto
  | _ -> None

(* Per-mode counters, incremented once per run by whichever engine
   executed it (the fiber engine references these with label "fiber").
   Stable: simulated round counts are ff- and domain-invariant. *)
let m_mode_runs =
  Obs.Metrics.counter ~label_names:[ "mode" ]
    ~help:"Engine runs by execution mode" "congest_mode_runs"

let m_mode_rounds =
  Obs.Metrics.counter ~label_names:[ "mode" ]
    ~help:"Simulated rounds by execution mode" "congest_mode_rounds"

(* The run-level families below are the same ones [Engine] registers —
   registration is idempotent, so both engines share one set of series
   and a compiled run is indistinguishable from a serial fiber run in
   every family except the mode-labelled pair above.  The strings must
   stay byte-identical to engine.ml's. *)
let m_runs =
  Obs.Metrics.counter ~help:"Engine runs completed" "congest_runs"

let m_incomplete_runs =
  Obs.Metrics.counter
    ~help:"Engine runs that stopped early (max_rounds, crash culls or \
           recorded node failures)"
    "congest_incomplete_runs"

let m_rounds =
  Obs.Metrics.counter ~help:"Simulated rounds executed" "congest_rounds"

let m_charged_rounds =
  Obs.Metrics.counter
    ~help:"Rounds charged to the CONGEST budget (incl. fragmentation frames)"
    "congest_charged_rounds"

let m_messages =
  Obs.Metrics.counter ~help:"Messages delivered" "congest_messages"

let m_bits = Obs.Metrics.counter ~help:"Total bits delivered" "congest_bits"

let m_oversized =
  Obs.Metrics.counter
    ~help:"Edge-rounds exceeding the bandwidth (fragmented into frames)"
    "congest_oversized_edges"

let m_ff_rounds =
  Obs.Metrics.counter ~stable:false
    ~help:"Quiescent rounds skipped by fast-forward (subset of congest_rounds)"
    "congest_fast_forwarded_rounds"

let m_faults =
  Obs.Metrics.counter ~label_names:[ "kind" ]
    ~help:"Fault-injection firings by kind" "congest_faults"

let m_crashed =
  Obs.Metrics.counter ~help:"Crash-stop events charged to nodes"
    "congest_crashed_nodes"

let m_run_wall =
  Obs.Metrics.counter ~stable:false ~label_names:[ "domains" ]
    ~help:"Host wall clock spent inside Engine.run, microseconds, by \
           requested domain count"
    "congest_run_wall_us"

module type MESSAGE = sig
  type t

  val bits : t -> int
end

module Make (Msg : MESSAGE) = struct
  type step = Halt | Park of int

  (* The compiled analogue of [Engine.pool]: the same flat delivery
     state (per-directed-edge bit counters, the sender worklist with
     contiguous send spans, the LIFO inbox slab) minus everything fibers
     needed — no continuation array, no arenas, no per-step effect
     dispatch.  The slab layout is copied deliberately: identical push
     and drain order is what makes inboxes byte-identical to the fiber
     engine's. *)
  type pool = {
    pgraph : Graph.t;
    edge_bits : int array;  (* per directed edge, reset by the charge pass *)
    queued : Bytes.t;  (* '\001' iff already in [senders] *)
    senders : int array;  (* nodes with queued sends, ascending *)
    soff : int array;  (* soff.(i): sender i's first entry in s_* *)
    mutable senders_len : int;
    mutable s_dest : int array;
    mutable s_eids : int array;  (* directed edge ids *)
    mutable s_msgs : Msg.t array;
    mutable s_len : int;
    receivers : int array;  (* nodes with a non-empty inbox *)
    mutable receivers_len : int;
    live : int array;  (* parked nodes, ascending, compacted per round *)
    wake : int array;  (* absolute resume deadline per parked node *)
    (* Causal parent of the round's first delivery per node (sender and
       send round of the frame that flipped [ib_head] from empty), for
       the trace's Resume wake-cause slots — same contract as the fiber
       pool's twin fields.  Lazily allocated by the first traced run. *)
    mutable wake_sender : int array;
    mutable wake_sent : int array;
    ib_head : int array;
    mutable ib_sender : int array;
    mutable ib_next : int array;
    mutable ib_msgs : Msg.t array;
    mutable ib_len : int;
    mutable in_use : bool;
  }

  let pool g =
    let n = Graph.n g in
    {
      pgraph = g;
      edge_bits = Array.make (2 * Graph.m g) 0;
      queued = Bytes.make n '\000';
      senders = Array.make (max 1 n) 0;
      soff = Array.make (max 1 n) 0;
      senders_len = 0;
      s_dest = [||];
      s_eids = [||];
      s_msgs = [||];
      s_len = 0;
      receivers = Array.make (max 1 n) 0;
      receivers_len = 0;
      live = Array.make (max 1 n) 0;
      wake = Array.make (max 1 n) 0;
      wake_sender = [||];
      wake_sent = [||];
      ib_head = Array.make (max 1 n) (-1);
      ib_sender = [||];
      ib_next = [||];
      ib_msgs = [||];
      ib_len = 0;
      in_use = false;
    }

  (* Clear leftovers from a previous (possibly abandoned) run, touching
     only what that run actually dirtied. *)
  let reset_pool p =
    for i = 0 to p.senders_len - 1 do
      Bytes.unsafe_set p.queued p.senders.(i) '\000'
    done;
    for j = 0 to p.s_len - 1 do
      p.edge_bits.(p.s_eids.(j)) <- 0
    done;
    p.senders_len <- 0;
    p.s_len <- 0;
    for i = 0 to p.receivers_len - 1 do
      p.ib_head.(p.receivers.(i)) <- -1
    done;
    p.receivers_len <- 0;
    p.ib_len <- 0

  let push_send p dest de msg =
    let cap = Array.length p.s_dest in
    if p.s_len = cap then begin
      let ncap = max 4 (2 * cap) in
      let nd = Array.make ncap 0 and ne = Array.make ncap 0 in
      let nm = Array.make ncap msg in
      Array.blit p.s_dest 0 nd 0 p.s_len;
      Array.blit p.s_eids 0 ne 0 p.s_len;
      Array.blit p.s_msgs 0 nm 0 p.s_len;
      p.s_dest <- nd;
      p.s_eids <- ne;
      p.s_msgs <- nm
    end;
    p.s_dest.(p.s_len) <- dest;
    p.s_eids.(p.s_len) <- de;
    p.s_msgs.(p.s_len) <- msg;
    p.s_len <- p.s_len + 1

  let push_inbox p ~sender ~dest msg =
    let cap = Array.length p.ib_sender in
    if p.ib_len = cap then begin
      let ncap = max 4 (2 * cap) in
      let ns = Array.make ncap 0 and nn = Array.make ncap 0 in
      let nm = Array.make ncap msg in
      Array.blit p.ib_sender 0 ns 0 p.ib_len;
      Array.blit p.ib_next 0 nn 0 p.ib_len;
      Array.blit p.ib_msgs 0 nm 0 p.ib_len;
      p.ib_sender <- ns;
      p.ib_next <- nn;
      p.ib_msgs <- nm
    end;
    let s = p.ib_len in
    p.ib_sender.(s) <- sender;
    p.ib_next.(s) <- p.ib_head.(dest);
    p.ib_msgs.(s) <- msg;
    p.ib_head.(dest) <- s;
    p.ib_len <- s + 1

  type engine = {
    graph : Graph.t;
    p : pool;
    estats : Stats.t;
    telemetry : Telemetry.t option;
    ff : bool;
    mutable reject_log : (int * int * string) list;  (* reverse chron. *)
    mutable current_round : int;
  }

  type ctx = { mutable cur : int; eng : engine }

  let round c = c.eng.current_round

  let reject c reason =
    c.eng.reject_log <- (c.eng.current_round, c.cur, reason) :: c.eng.reject_log

  (* Node [c.cur] runs once per round, so its sends stay contiguous from
     the offset recorded on first use — same invariant as the fiber
     engine's arenas. *)
  let send_de c dest de msg =
    let p = c.eng.p in
    if Bytes.unsafe_get p.queued c.cur = '\000' then begin
      Bytes.unsafe_set p.queued c.cur '\001';
      p.senders.(p.senders_len) <- c.cur;
      p.soff.(p.senders_len) <- p.s_len;
      p.senders_len <- p.senders_len + 1
    end;
    push_send p dest de msg

  let send c ~dest msg =
    let e =
      try Graph.find_edge c.eng.graph c.cur dest
      with Not_found ->
        invalid_arg
          (Printf.sprintf "Compiled.send: %d is not a neighbor of %d" dest
             c.cur)
    in
    send_de c dest ((2 * e) + if c.cur < dest then 0 else 1) msg

  let send_port c ~dest ~eid msg =
    send_de c dest ((2 * eid) + if c.cur < dest then 0 else 1) msg

  let broadcast c msg =
    let id = c.cur in
    Graph.iter_incident c.eng.graph id (fun dest e ->
        send_de c dest ((2 * e) + if id < dest then 0 else 1) msg)

  type result = {
    rejections : (int * int * string) list;
    stats : Stats.t;
    completed : bool;
  }

  let run ?bandwidth ?(max_rounds = 1_000_000) ?telemetry ?trace
      ?(fast_forward = true) ?on_round ?pool:opool g ~start ~resume =
    let n = Graph.n g in
    let m_t0 = if Obs.Metrics.enabled () then Unix.gettimeofday () else 0.0 in
    let bw =
      match bandwidth with Some b -> b | None -> Bits.default_bandwidth n
    in
    (match trace with
    | Some tr -> Trace.set_meta tr ~n ~m:(Graph.m g) ~bandwidth:bw
    | None -> ());
    let p, owned =
      match opool with
      | Some p when p.pgraph == g && not p.in_use ->
          reset_pool p;
          (p, true)
      | _ -> (pool g, false)
    in
    p.in_use <- true;
    let traced = trace <> None in
    if traced && Array.length p.wake_sender < n then begin
      p.wake_sender <- Array.make (max 1 n) (-1);
      p.wake_sent <- Array.make (max 1 n) (-1)
    end;
    let eng =
      {
        graph = g;
        p;
        estats = Stats.create ~bandwidth:bw;
        telemetry;
        ff = fast_forward;
        reject_log = [];
        current_round = 0;
      }
    in
    let ctx = { cur = -1; eng } in
    let wake = p.wake in
    (* The live list: parked nodes in ascending id order, compacted in
       place each round — the array analogue of the fiber engine's
       run-queue, and the source of the identical resume order. *)
    let live = p.live in
    let live_len = ref 0 in
    let min_wake = ref max_int in
    let completed = ref true in
    let running = ref true in
    (* Chains are LIFO; prepending while walking head-to-tail rebuilds
       push order (ascending sender, reverse send order within a sender)
       — byte-identical to [Engine.build_inbox]. *)
    let build_inbox v =
      let head = p.ib_head.(v) in
      if head < 0 then []
      else begin
        let acc = ref [] in
        let s = ref head in
        while !s >= 0 do
          acc := (p.ib_sender.(!s), p.ib_msgs.(!s)) :: !acc;
          s := p.ib_next.(!s)
        done;
        p.ib_head.(v) <- -1;
        !acc
      end
    in
    (* Resume/park trace events, predicted before/after the step loop in
       ascending id order — the same two-pass shape as the fiber
       engine's prescan/postscan, so the fiber event stream is
       byte-identical across modes.  Candidates are the due nodes with
       fast-forward on and every live node with it off (the fiber
       baseline resumes every waiting fiber every round). *)
    let fiber_scratch = ref [||] in
    let trace_prescan tr =
      if Array.length !fiber_scratch = 0 then
        fiber_scratch := Array.make (max 1 n) 0;
      let sc = !fiber_scratch in
      let cnt = ref 0 in
      for i = 0 to !live_len - 1 do
        let v = live.(i) in
        if (not eng.ff) || p.ib_head.(v) >= 0 || wake.(v) <= eng.current_round
        then begin
          (* Prefer-arrival rule, as in the fiber engine: any delivery
             this round outranks an expired deadline. *)
          if p.ib_head.(v) >= 0 then
            Trace.fiber_resume tr ~round:eng.current_round ~node:v
              ~cause:Trace.Wake_deliver ~sender:p.wake_sender.(v)
              ~sent:p.wake_sent.(v)
          else
            Trace.fiber_resume tr ~round:eng.current_round ~node:v
              ~cause:Trace.Wake_deadline ~sender:(-1) ~sent:(-1);
          sc.(!cnt) <- v;
          incr cnt
        end
      done;
      !cnt
    in
    (* Entries the step loop nulled out (halted or failed) are skipped;
       with fast-forward off a surviving fiber's park deadline is the
       next round (the fiber baseline re-suspends with [Suspend 1]),
       except candidates past a failed hook, which were never stepped
       and keep last round's deadline. *)
    let trace_postscan tr cnt ~failed_ci =
      let sc = !fiber_scratch in
      for i = 0 to cnt - 1 do
        let v = sc.(i) in
        if v >= 0 then
          let wk =
            if eng.ff then wake.(v)
            else if i > failed_ci then eng.current_round
            else eng.current_round + 1
          in
          Trace.fiber_park tr ~round:eng.current_round ~node:v ~wake:wk
      done
    in
    let one_round () =
      eng.estats.Stats.rounds <- eng.estats.Stats.rounds + 1;
      eng.current_round <- eng.current_round + 1;
      let round_bits = ref 0 and round_msgs = ref 0 in
      (* Deliver: senders ascending, each sender's span in reverse send
         order — the fiber engine's exact serial delivery order. *)
      for i = 0 to p.senders_len - 1 do
        let v = p.senders.(i) in
        Bytes.unsafe_set p.queued v '\000';
        let lo = p.soff.(i) in
        let hi = if i + 1 < p.senders_len then p.soff.(i + 1) else p.s_len in
        for j = hi - 1 downto lo do
          let dest = p.s_dest.(j) and de = p.s_eids.(j) in
          let msg = p.s_msgs.(j) in
          let b = Msg.bits msg in
          eng.estats.messages <- eng.estats.messages + 1;
          eng.estats.total_bits <- eng.estats.total_bits + b;
          incr round_msgs;
          round_bits := !round_bits + b;
          p.edge_bits.(de) <- p.edge_bits.(de) + b;
          if p.ib_head.(dest) < 0 then begin
            p.receivers.(p.receivers_len) <- dest;
            p.receivers_len <- p.receivers_len + 1;
            if traced then begin
              p.wake_sender.(dest) <- v;
              p.wake_sent.(dest) <- eng.current_round - 1
            end
          end;
          push_inbox p ~sender:v ~dest msg;
          (match trace with
          | Some tr ->
              Trace.message tr ~round:eng.current_round
                ~sent:(eng.current_round - 1) ~sender:v ~dest ~edge:de ~bits:b
          | None -> ())
        done
      done;
      (* Charge bandwidth per directed edge by re-scanning the same
         entries; zeroing [edge_bits] doubles as the visited mark. *)
      let max_frames = ref 1 in
      for i = 0 to p.senders_len - 1 do
        let lo = p.soff.(i) in
        let hi = if i + 1 < p.senders_len then p.soff.(i + 1) else p.s_len in
        for j = hi - 1 downto lo do
          let de = p.s_eids.(j) in
          let b = p.edge_bits.(de) in
          if b <> 0 then begin
            p.edge_bits.(de) <- 0;
            if b > eng.estats.Stats.max_edge_bits then
              eng.estats.Stats.max_edge_bits <- b;
            if b > bw then begin
              eng.estats.Stats.oversized <- eng.estats.Stats.oversized + 1;
              let frames = Stats.frames ~bandwidth:bw b in
              if frames > !max_frames then max_frames := frames
            end
          end
        done
      done;
      p.senders_len <- 0;
      p.s_len <- 0;
      eng.estats.Stats.charged_rounds <-
        eng.estats.Stats.charged_rounds + !max_frames;
      (* Step: ascending id order over the live list.  With fast-forward
         on, only due nodes (inbox or deadline) count as stepped — the
         fiber engine resumes exactly those; with it off, the legacy
         baseline steps every waiting node each round (the node's own
         hook still only runs on arrival or deadline, exactly like
         [Engine.wait]'s internal loop). *)
      let fib_cnt =
        match trace with Some tr -> trace_prescan tr | None -> 0
      in
      let stepped = ref 0 in
      let kept = ref 0 in
      let failure = ref None in
      let sc = !fiber_scratch in
      let ci = ref 0 in
      let failed_ci = ref max_int in
      min_wake := max_int;
      let keep v =
        live.(!kept) <- v;
        incr kept;
        if wake.(v) < !min_wake then min_wake := wake.(v)
      in
      (try
         for i = 0 to !live_len - 1 do
           let v = live.(i) in
           let due = p.ib_head.(v) >= 0 || wake.(v) <= eng.current_round in
           if not eng.ff then incr stepped;
           if due then begin
             let inbox = build_inbox v in
             if eng.ff then incr stepped;
             ctx.cur <- v;
             if traced then begin
               (* Halted or failed unless the hook parks again; the
                  candidate order of this loop matches the prescan's
                  exactly (nothing stepped so far changed an unvisited
                  node's due-ness), so [ci] walks the same scratch. *)
               sc.(!ci) <- -1;
               incr ci
             end;
             match resume ctx v inbox with
             | Park k ->
                 wake.(v) <- eng.current_round + max 1 k;
                 if traced then sc.(!ci - 1) <- v;
                 keep v
             | Halt -> ()
           end
           else begin
             if traced && not eng.ff then incr ci;
             keep v
           end
         done
       with e ->
         failure := Some e;
         if traced then failed_ci := !ci - 1);
      live_len := !kept;
      (match eng.telemetry with
      | Some tel ->
          Telemetry.tick tel ~stepped:!stepped ~domains:1 ~bits:!round_bits
            ~frames:!max_frames ~messages:!round_msgs
      | None -> ());
      (match trace with
      | Some tr ->
          trace_postscan tr fib_cnt ~failed_ci:!failed_ci;
          Trace.round_tick tr ~round:eng.current_round ~bits:!round_bits
            ~frames:!max_frames ~messages:!round_msgs ~stepped:!stepped
      | None -> ());
      (* A hook exception aborts after the round's accounting — the same
         point the fiber engine's propagate mode re-raises (after the
         telemetry tick and trace emission, before the inbox recycle;
         the next run's [reset_pool] clears the leftovers). *)
      (match !failure with Some e -> raise e | None -> ());
      (* Recycle the inbox chains (messages delivered to already-halted
         nodes were never consumed by [build_inbox]). *)
      for i = 0 to p.receivers_len - 1 do
        p.ib_head.(p.receivers.(i)) <- -1
      done;
      p.receivers_len <- 0;
      p.ib_len <- 0
    in
    let maybe_fast_forward () =
      if eng.ff && p.senders_len = 0 && !min_wake < max_int then begin
        let delta = !min_wake - eng.current_round - 1 in
        let budget = max_rounds - eng.estats.Stats.rounds in
        let delta = if delta > budget then budget else delta in
        if delta > 0 then begin
          eng.estats.Stats.rounds <- eng.estats.Stats.rounds + delta;
          eng.estats.Stats.charged_rounds <-
            eng.estats.Stats.charged_rounds + delta;
          eng.estats.Stats.fast_forwarded_rounds <-
            eng.estats.Stats.fast_forwarded_rounds + delta;
          eng.current_round <- eng.current_round + delta;
          (match eng.telemetry with
          | Some tel -> Telemetry.fast_forward tel ~rounds:delta
          | None -> ());
          (match trace with
          | Some tr ->
              Trace.fast_forward tr ~round:(eng.current_round - delta)
                ~rounds:delta
          | None -> ());
          (* Host-side observer, same contract as the fiber engine's. *)
          match on_round with Some f -> f delta | None -> ()
        end
      end
    in
    (try
       (* Start phase: ascending id order, no telemetry tick — like the
          fiber engine's start-up. *)
       for v = 0 to n - 1 do
         ctx.cur <- v;
         match start ctx v with
         | Park k ->
             let w = max 1 k in
             wake.(v) <- w;
             live.(!live_len) <- v;
             incr live_len;
             if w < !min_wake then min_wake := w
         | Halt -> ()
       done;
       (match trace with
       | Some tr ->
           (* Initial parks; with fast-forward off the fiber baseline's
              first suspension is always [Suspend 1], deadline round 1. *)
           for i = 0 to !live_len - 1 do
             let v = live.(i) in
             Trace.fiber_park tr ~round:0 ~node:v
               ~wake:(if eng.ff then wake.(v) else 1)
           done
       | None -> ());
       while !running && !live_len > 0 do
         if eng.estats.Stats.rounds >= max_rounds then begin
           running := false;
           completed := false
         end
         else begin
           maybe_fast_forward ();
           if eng.estats.Stats.rounds >= max_rounds then begin
             running := false;
             completed := false
           end
           else begin
             one_round ();
             match on_round with Some f -> f 1 | None -> ()
           end
         end
       done;
       if owned then p.in_use <- false;
       match trace with
       | Some tr -> Trace.run_end tr ~rounds:eng.current_round
       | None -> ()
     with e ->
       if owned then p.in_use <- false;
       (match trace with
       | Some tr -> Trace.run_end tr ~rounds:eng.current_round
       | None -> ());
       raise e);
    if Obs.Metrics.enabled () then begin
      let s = eng.estats in
      Obs.Metrics.inc m_runs;
      if not !completed then Obs.Metrics.inc m_incomplete_runs;
      Obs.Metrics.inc ~by:s.Stats.rounds m_rounds;
      Obs.Metrics.inc ~by:s.Stats.charged_rounds m_charged_rounds;
      Obs.Metrics.inc ~by:s.Stats.messages m_messages;
      Obs.Metrics.inc ~by:s.Stats.total_bits m_bits;
      Obs.Metrics.inc ~by:s.Stats.oversized m_oversized;
      Obs.Metrics.inc ~by:s.Stats.fast_forwarded_rounds m_ff_rounds;
      Obs.Metrics.inc ~labels:[ "dropped" ] ~by:s.Stats.dropped m_faults;
      Obs.Metrics.inc ~labels:[ "duplicated" ] ~by:s.Stats.duplicated m_faults;
      Obs.Metrics.inc ~labels:[ "delayed" ] ~by:s.Stats.delayed m_faults;
      Obs.Metrics.inc ~by:s.Stats.crashed_nodes m_crashed;
      Obs.Metrics.inc ~labels:[ "compiled" ] m_mode_runs;
      Obs.Metrics.inc ~labels:[ "compiled" ] ~by:s.Stats.rounds m_mode_rounds;
      let dt_us =
        int_of_float ((Unix.gettimeofday () -. m_t0) *. 1e6) |> max 0
      in
      Obs.Metrics.inc ~labels:[ "1" ] ~by:dt_us m_run_wall
    end;
    {
      rejections = List.rev eng.reject_log;
      stats = eng.estats;
      completed = !completed;
    }
end
