open Graphlib

module type MESSAGE = sig
  type t

  val bits : t -> int
end

exception Stopped

(* Breaks out of a shard's stepping loop after a node program raised; never
   escapes this module. *)
exception Shard_stop

(* Run-level metrics, recorded once per [run] from the coordinator after
   the last round — never on the per-round hot path.  Everything marked
   stable is a pure function of (program, graph, seed, faults): the same
   numbers for any [?domains] and for fast-forward on/off, per the PR 2
   determinism contract.  Registration is idempotent, so every
   [Make] instantiation shares the same families. *)
let m_runs =
  Obs.Metrics.counter ~help:"Engine runs completed" "congest_runs"

let m_incomplete_runs =
  Obs.Metrics.counter
    ~help:"Engine runs that stopped early (max_rounds, crash culls or \
           recorded node failures)"
    "congest_incomplete_runs"

let m_rounds =
  Obs.Metrics.counter ~help:"Simulated rounds executed" "congest_rounds"

let m_charged_rounds =
  Obs.Metrics.counter
    ~help:"Rounds charged to the CONGEST budget (incl. fragmentation frames)"
    "congest_charged_rounds"

let m_messages =
  Obs.Metrics.counter ~help:"Messages delivered" "congest_messages"

let m_bits = Obs.Metrics.counter ~help:"Total bits delivered" "congest_bits"

let m_oversized =
  Obs.Metrics.counter
    ~help:"Edge-rounds exceeding the bandwidth (fragmented into frames)"
    "congest_oversized_edges"

let m_ff_rounds =
  (* Not stable: the whole point of this counter is to differ between
     fast-forward on and off (it counts the skipped spans), so it cannot
     be part of the ff-invariant projection. *)
  Obs.Metrics.counter ~stable:false
    ~help:"Quiescent rounds skipped by fast-forward (subset of congest_rounds)"
    "congest_fast_forwarded_rounds"

let m_faults =
  Obs.Metrics.counter ~label_names:[ "kind" ]
    ~help:"Fault-injection firings by kind" "congest_faults"

let m_crashed =
  Obs.Metrics.counter ~help:"Crash-stop events charged to nodes"
    "congest_crashed_nodes"

let m_run_wall =
  Obs.Metrics.counter ~stable:false ~label_names:[ "domains" ]
    ~help:"Host wall clock spent inside Engine.run, microseconds, by \
           requested domain count"
    "congest_run_wall_us"

(* Memory-substrate gauges, set at every pool creation (the M1 gate reads
   them after a run): analytic bytes of the vertex- and edge-indexed
   arrays at creation time — a pure function of (n, m), hence stable. *)
let m_graph_node_bytes =
  Obs.Metrics.gauge ~help:"Graph CSR bytes in vertex-indexed arrays"
    "congest_graph_node_bytes"

let m_graph_edge_bytes =
  Obs.Metrics.gauge ~help:"Graph CSR bytes in edge-indexed arrays"
    "congest_graph_edge_bytes"

let m_pool_node_bytes =
  Obs.Metrics.gauge
    ~help:"Engine pool bytes in vertex-indexed arrays, at pool creation"
    "congest_pool_node_bytes"

let m_pool_edge_bytes =
  Obs.Metrics.gauge
    ~help:"Engine pool bytes in edge-indexed arrays, at pool creation"
    "congest_pool_edge_bytes"

module Make (Msg : MESSAGE) = struct
  (* Per-domain stepping state.  During a round, each domain steps a
     disjoint block of nodes; everything a node program can mutate that is
     not indexed by its own id (the senders worklist, queued sends, the
     rejection log, a raised exception) lands in the stepping domain's
     arena and is merged by the coordinating domain, in arena order, after
     the barrier.  Blocks partition the node-id-sorted worklists into
     contiguous ascending ranges, so concatenating arenas 0..D-1
     reproduces exactly the order a serial engine would have produced.

     Sends live in one flat growable buffer per arena ([s_dest] / [s_eids]
     / [s_msgs]) instead of a per-node outbox: a node steps exactly once
     per round, so its sends are contiguous, starting at the offset
     [aoff.(i)] recorded when sender [i] first queued.  That turns 2n
     boxed buffer records into three arrays per arena and lets the charge
     pass recover "which directed edges carried traffic" by re-scanning
     the entries, with no 2m-sized side table. *)
  type arena = {
    asenders : int array;  (* nodes with queued sends, ascending *)
    mutable asenders_len : int;
    aoff : int array;  (* aoff.(i): sender i's first entry in s_* *)
    mutable s_dest : int array;
    mutable s_eids : int array;  (* directed edge ids *)
    mutable s_msgs : Msg.t array;
    mutable s_len : int;
    mutable arejects : (int * int * string) list;  (* reverse chron. *)
    mutable afailed : (int * exn) option;  (* lowest failing node in block *)
    mutable afails : (int * int * exn) list;
        (* all failing nodes in block ([`Record] mode), reverse chron. *)
    mutable astepped : int;  (* fibers resumed this phase *)
    mutable akept : int;  (* nodes still live after this phase *)
    mutable aculled : int;  (* crash-stopped nodes dropped this phase *)
    mutable amin_wake : int;  (* min wake round over kept nodes *)
  }

  let fresh_arena n =
    {
      asenders = Array.make (max 1 n) 0;
      asenders_len = 0;
      aoff = Array.make (max 1 n) 0;
      s_dest = [||];
      s_eids = [||];
      s_msgs = [||];
      s_len = 0;
      arejects = [];
      afailed = None;
      afails = [];
      astepped = 0;
      akept = 0;
      aculled = 0;
      amin_wake = max_int;
    }

  (* [s_msgs] is created from the first message pushed, so no dummy
     [Msg.t] is ever needed. *)
  let push_send a dest de msg =
    let cap = Array.length a.s_dest in
    if a.s_len = cap then begin
      let ncap = max 4 (2 * cap) in
      let nd = Array.make ncap 0 and ne = Array.make ncap 0 in
      let nm = Array.make ncap msg in
      Array.blit a.s_dest 0 nd 0 a.s_len;
      Array.blit a.s_eids 0 ne 0 a.s_len;
      Array.blit a.s_msgs 0 nm 0 a.s_len;
      a.s_dest <- nd;
      a.s_eids <- ne;
      a.s_msgs <- nm
    end;
    a.s_dest.(a.s_len) <- dest;
    a.s_eids.(a.s_len) <- de;
    a.s_msgs.(a.s_len) <- msg;
    a.s_len <- a.s_len + 1

  (* Preallocated per-graph delivery state, reusable across runs so that a
     protocol built from many short engine runs (Stage I's primitives) does
     not pay an O(n + m) allocation bill per run.  One run at a time; a
     nested [run] on a busy pool silently falls back to fresh allocation. *)
  type pool = {
    pgraph : Graph.t;
    (* Per-directed-edge bit totals for the round being delivered.  The
       directed edge u->v of undirected edge e=(a,b), a<b, has id [2e]
       when u=a and [2e+1] when u=b.  Entries are reset by the charge
       pass re-scanning the arenas' send entries (plus [extra_touched]
       for delayed re-deliveries), so a round costs O(edges carrying
       traffic), not O(m). *)
    edge_bits : int array;
    (* Directed edges charged by delayed (re)deliveries this round — the
       only traffic the send-entry re-scan cannot see.  Tiny: bounded by
       the delayed messages landing this round. *)
    mutable extra_touched : int array;
    mutable extra_len : int;
    (* Per-directed-edge message index for the round being delivered (the
       [k] of [Faults.draw]); reset by the same charge re-scan.  Lazily
       sized to 2m by the first faulted run so fault-free pools stay 16
       bytes/edge. *)
    mutable fidx : int array;
    queued : Bytes.t;  (* '\001' iff already in some arena's senders list *)
    receivers : int array;  (* nodes with a non-empty inbox *)
    mutable receivers_len : int;
    (* Worklist of nodes still suspended at a [wait]; ascending id order
       (nodes only ever leave), so each round costs O(live + messages)
       rather than O(n). *)
    live : int array;
    (* Absolute round at which a suspended node resumes even with an empty
       inbox; written at suspension time, so no reset is needed. *)
    wake : int array;
    (* Causal parent of the round's first inbox delivery per node —
       (sender, send round) of the frame that flipped [ib_head] from
       empty — feeding the trace's Resume wake-cause slots.  Valid only
       while [ib_head.(v) >= 0]; lazily allocated by the first traced
       run so untraced pools pay nothing. *)
    mutable wake_sender : int array;
    mutable wake_sent : int array;
    arena_of : int array;  (* node -> index of the arena stepping it *)
    (* Parked continuations; [none_k] (an immediate sentinel compared
       with [==]) marks "not parked", avoiding an [option] box per
       suspended node per round. *)
    conts : ((int * Msg.t) list, unit) Effect.Deep.continuation array;
    (* Inbox slab: deliveries for the round land in one growable set of
       parallel arrays, chained per destination through [ib_next] from
       [ib_head.(dest)] (-1 = empty).  Chains are LIFO, so walking one
       while prepending rebuilds push order.  Only the stepping domain
       that owns [dest] ever consumes its chain; the slab itself is
       written exclusively by the coordinator during delivery. *)
    ib_head : int array;
    mutable ib_sender : int array;
    mutable ib_next : int array;
    mutable ib_msgs : Msg.t array;
    mutable ib_len : int;
    mutable arenas : arena array;  (* grown on demand to the run's D *)
    mutable in_use : bool;
  }

  let none_k : ((int * Msg.t) list, unit) Effect.Deep.continuation =
    Obj.magic 0

  let push_inbox p ~sender ~dest msg =
    let cap = Array.length p.ib_sender in
    if p.ib_len = cap then begin
      let ncap = max 4 (2 * cap) in
      let ns = Array.make ncap 0 and nn = Array.make ncap 0 in
      let nm = Array.make ncap msg in
      Array.blit p.ib_sender 0 ns 0 p.ib_len;
      Array.blit p.ib_next 0 nn 0 p.ib_len;
      Array.blit p.ib_msgs 0 nm 0 p.ib_len;
      p.ib_sender <- ns;
      p.ib_next <- nn;
      p.ib_msgs <- nm
    end;
    let s = p.ib_len in
    p.ib_sender.(s) <- sender;
    p.ib_next.(s) <- p.ib_head.(dest);
    p.ib_msgs.(s) <- msg;
    p.ib_head.(dest) <- s;
    p.ib_len <- s + 1

  let push_extra p de =
    let cap = Array.length p.extra_touched in
    if p.extra_len = cap then begin
      let na = Array.make (max 8 (2 * cap)) 0 in
      Array.blit p.extra_touched 0 na 0 p.extra_len;
      p.extra_touched <- na
    end;
    p.extra_touched.(p.extra_len) <- de;
    p.extra_len <- p.extra_len + 1

  (* One slot of the delayed-message ring: the ring has [max_delay + 1]
     slots indexed by due round mod its width, so every pending due round
     maps to its own slot (delays are 1..max_delay rounds).  Entries are
     appended in enqueue order, which is exactly the global sequence
     order the old sorted-list implementation reconstructed — and only
     the bucket due this round is ever drained, making heavy delay specs
     linear instead of quadratic. *)
  type dslot = {
    mutable q_sent : int array;  (* send round, for trace events *)
    mutable q_sender : int array;
    mutable q_dest : int array;
    mutable q_de : int array;
    mutable q_msgs : Msg.t array;
    mutable q_len : int;
    mutable q_due : int;  (* due round of the queued entries; -1 if empty *)
  }

  let fresh_dslot () =
    {
      q_sent = [||];
      q_sender = [||];
      q_dest = [||];
      q_de = [||];
      q_msgs = [||];
      q_len = 0;
      q_due = -1;
    }

  let push_dslot s ~sent ~sender ~dest ~de msg =
    let cap = Array.length s.q_sent in
    if s.q_len = cap then begin
      let ncap = max 4 (2 * cap) in
      let nt = Array.make ncap 0
      and ns = Array.make ncap 0
      and nd = Array.make ncap 0
      and ne = Array.make ncap 0 in
      let nm = Array.make ncap msg in
      Array.blit s.q_sent 0 nt 0 s.q_len;
      Array.blit s.q_sender 0 ns 0 s.q_len;
      Array.blit s.q_dest 0 nd 0 s.q_len;
      Array.blit s.q_de 0 ne 0 s.q_len;
      Array.blit s.q_msgs 0 nm 0 s.q_len;
      s.q_sent <- nt;
      s.q_sender <- ns;
      s.q_dest <- nd;
      s.q_de <- ne;
      s.q_msgs <- nm
    end;
    s.q_sent.(s.q_len) <- sent;
    s.q_sender.(s.q_len) <- sender;
    s.q_dest.(s.q_len) <- dest;
    s.q_de.(s.q_len) <- de;
    s.q_msgs.(s.q_len) <- msg;
    s.q_len <- s.q_len + 1

  (* Analytic resident cost of a pool, split the way the M1 memory gate
     reports it: vertex-indexed arrays, edge-indexed arrays, and the
     growable message slabs (send buffers + inbox slab + delay-touched
     scratch), whose capacity tracks the peak per-round traffic rather
     than n or m.  Slot bytes only; message payloads are shared values
     and not counted. *)
  type footprint = { node_bytes : int; edge_bytes : int; slab_bytes : int }

  let footprint p =
    let w = 8 in
    let node = ref (Bytes.length p.queued) in
    node :=
      !node
      + w
        * (Array.length p.receivers + Array.length p.live
         + Array.length p.wake + Array.length p.arena_of
         + Array.length p.conts + Array.length p.ib_head
         + Array.length p.wake_sender + Array.length p.wake_sent);
    Array.iter
      (fun a ->
        node := !node + (w * (Array.length a.asenders + Array.length a.aoff)))
      p.arenas;
    let edge = w * (Array.length p.edge_bits + Array.length p.fidx) in
    let slab =
      ref
        (w
        * (Array.length p.ib_sender + Array.length p.ib_next
         + Array.length p.ib_msgs + Array.length p.extra_touched))
    in
    Array.iter
      (fun a ->
        slab :=
          !slab
          + w
            * (Array.length a.s_dest + Array.length a.s_eids
             + Array.length a.s_msgs))
      p.arenas;
    { node_bytes = !node; edge_bytes = edge; slab_bytes = !slab }

  let pool g =
    let n = Graph.n g in
    let p =
      {
        pgraph = g;
        edge_bits = Array.make (2 * Graph.m g) 0;
        extra_touched = [||];
        extra_len = 0;
        fidx = [||];
        queued = Bytes.make n '\000';
        receivers = Array.make n 0;
        receivers_len = 0;
        live = Array.make n 0;
        wake = Array.make n 0;
        wake_sender = [||];
        wake_sent = [||];
        arena_of = Array.make n 0;
        conts = Array.make n none_k;
        ib_head = Array.make n (-1);
        ib_sender = [||];
        ib_next = [||];
        ib_msgs = [||];
        ib_len = 0;
        arenas = [| fresh_arena n |];
        in_use = false;
      }
    in
    if Obs.Metrics.enabled () then begin
      let gn, ge = Graph.storage_bytes g in
      Obs.Metrics.set m_graph_node_bytes (float_of_int gn);
      Obs.Metrics.set m_graph_edge_bytes (float_of_int ge);
      let f = footprint p in
      Obs.Metrics.set m_pool_node_bytes (float_of_int f.node_bytes);
      Obs.Metrics.set m_pool_edge_bytes (float_of_int f.edge_bytes)
    end;
    p

  let ensure_arenas p d =
    let cur = Array.length p.arenas in
    if cur < d then begin
      let n = Bytes.length p.queued in
      let na =
        Array.init d (fun i -> if i < cur then p.arenas.(i) else fresh_arena n)
      in
      p.arenas <- na
    end

  (* Clear whatever the previous run left behind (undelivered final-round
     sends, or mid-round state abandoned by an exception) by replaying
     the same send entries the charge pass would have scanned; cost is
     proportional to the leftovers, not to n + m, and every step is
     idempotent so any partially-reset state is safe.  [conts] needs no
     sweep: every exit path of [run] leaves it all-[none_k]. *)
  let reset_pool p =
    let have_fidx = Array.length p.fidx > 0 in
    Array.iter
      (fun a ->
        for i = 0 to a.asenders_len - 1 do
          Bytes.unsafe_set p.queued a.asenders.(i) '\000'
        done;
        for j = 0 to a.s_len - 1 do
          let de = a.s_eids.(j) in
          p.edge_bits.(de) <- 0;
          if have_fidx then p.fidx.(de) <- 0
        done;
        a.asenders_len <- 0;
        a.s_len <- 0;
        a.arejects <- [];
        a.afailed <- None;
        a.afails <- [])
      p.arenas;
    for i = 0 to p.extra_len - 1 do
      let de = p.extra_touched.(i) in
      p.edge_bits.(de) <- 0;
      if have_fidx then p.fidx.(de) <- 0
    done;
    p.extra_len <- 0;
    for i = 0 to p.receivers_len - 1 do
      p.ib_head.(p.receivers.(i)) <- -1
    done;
    p.receivers_len <- 0;
    p.ib_len <- 0

  type engine = {
    graph : Graph.t;
    seed : int;
    p : pool;
    estats : Stats.t;
    telemetry : Telemetry.t option;
    ff : bool;  (* park fibers across rounds + skip quiescent spans *)
    mutable reject_log : (int * int * string) list;
        (* (round, node, reason), reverse chronological *)
    mutable fail_log : (int * int * exn) list;
        (* (round, node, exn) in [`Record] mode, reverse chronological *)
    mutable current_round : int;
  }

  (* The per-node random state is created on first use: most node
     programs are deterministic, and eagerly seeding n states dominated
     the fixed cost of short engine runs.  Laziness does not change the
     stream a program that does call {!rng} observes. *)
  type ctx = { id : int; mutable crng : Random.State.t option; eng : engine }

  (* [Suspend k] parks the fiber until the first round with a non-empty
     inbox, or unconditionally after [k] rounds (k >= 1). *)
  type _ Effect.t += Suspend : int -> (int * Msg.t) list Effect.t

  let my_id c = c.id
  let n_nodes c = Graph.n c.eng.graph
  let degree c = Graph.degree c.eng.graph c.id
  let neighbors c = Graph.neighbors c.eng.graph c.id
  let incident c = Graph.incident c.eng.graph c.id
  let round c = c.eng.current_round
  let stats c = c.eng.estats

  let rng c =
    match c.crng with
    | Some r -> r
    | None ->
        let r = Random.State.make [| c.eng.seed; c.id; 0x5eed |] in
        c.crng <- Some r;
        r

  (* Within one domain nodes run one at a time in ascending id order
     (both at start-up and when resumed), so appending on first use keeps
     each arena's senders list sorted — and because a node steps at most
     once per round, its sends stay contiguous from the offset recorded
     here. *)
  let send_de c dest de msg =
    let p = c.eng.p in
    let a = p.arenas.(p.arena_of.(c.id)) in
    if Bytes.unsafe_get p.queued c.id = '\000' then begin
      Bytes.unsafe_set p.queued c.id '\001';
      a.asenders.(a.asenders_len) <- c.id;
      a.aoff.(a.asenders_len) <- a.s_len;
      a.asenders_len <- a.asenders_len + 1
    end;
    push_send a dest de msg

  let send c ~dest msg =
    let e =
      try Graph.find_edge c.eng.graph c.id dest
      with Not_found ->
        invalid_arg
          (Printf.sprintf "Engine.send: %d is not a neighbor of %d" dest c.id)
    in
    send_de c dest ((2 * e) + if c.id < dest then 0 else 1) msg

  let broadcast c msg =
    (* Port order is neighbor-ascending, matching a [send] per neighbor,
       but with no neighbor-array allocation and no binary search. *)
    let id = c.id in
    Graph.iter_incident c.eng.graph id (fun dest e ->
        send_de c dest ((2 * e) + if id < dest then 0 else 1) msg)

  (* With fast-forwarding off the engine reverts to legacy per-round
     stepping — one suspension per round, every waiting fiber resumed
     every round — which is the measurement baseline the optimisation is
     compared against.  Observable behaviour is identical: a parked fiber
     resumes on the first non-empty inbox or at the deadline, and so does
     this loop. *)
  let wait c k =
    if k <= 0 then []
    else if c.eng.ff then Effect.perform (Suspend k)
    else begin
      let deadline = c.eng.current_round + k in
      let rec loop () =
        let inbox = Effect.perform (Suspend 1) in
        if inbox <> [] || c.eng.current_round >= deadline then inbox
        else loop ()
      in
      loop ()
    end

  let sync c = wait c 1

  let idle c k =
    let deadline = c.eng.current_round + k in
    let rec loop () =
      let left = deadline - c.eng.current_round in
      if left > 0 then begin
        ignore (wait c left);
        loop ()
      end
    in
    loop ()

  let reject c reason =
    let p = c.eng.p in
    let a = p.arenas.(p.arena_of.(c.id)) in
    a.arejects <- (c.eng.current_round, c.id, reason) :: a.arejects

  type 'o result = {
    outputs : 'o option array;
    rejections : (int * int * string) list;
    failures : (int * int * exn) list;
        (* (round, node, exn), chronological; non-empty only in [`Record]
           mode — see [?on_error] *)
    stats : Stats.t;
    completed : bool;
  }

  let distinct_rejections l =
    List.sort_uniq compare (List.map (fun (_, v, reason) -> (v, reason)) l)

  (* Below this many live nodes, a round is stepped by the coordinating
     domain alone: the work is too small to amortize a barrier. *)
  let par_threshold = 16

  (* Process-wide worker team, shared by every run of this engine
     instance.  Protocols built from many short engine runs (Stage I
     issues thousands) cannot afford a spawn/join per run, so workers are
     spawned once, block between epochs, and are joined by an [at_exit]
     hook.  Exactly one run drives the team at a time — [owner] is held
     for the run's whole duration; a concurrent run that fails to get it
     steps serially, which changes nothing observable (accounting is
     invariant under the domain count). *)
  type team = {
    tm : Mutex.t;
    tgo : Condition.t;
    tdone : Condition.t;
    mutable tsize : int;  (* workers spawned (= length of tdoms) *)
    mutable tready : int;  (* workers that recorded their start epoch *)
    mutable tepoch : int;
    mutable tdone_count : int;
    mutable twork : int -> unit;  (* set per epoch by the owning run *)
    mutable tquit : bool;
    mutable tdoms : unit Domain.t list;
  }

  let team_owner = Mutex.create ()
  let the_team : team option ref = ref None  (* mutated under [team_owner] *)

  let team_worker t d () =
    Mutex.lock t.tm;
    (* Record the epoch this worker starts at, and announce readiness:
       [team_ensure] waits for it, so an epoch bumped after [team_ensure]
       returns is guaranteed to be seen (and answered) by this worker. *)
    let seen = ref t.tepoch in
    t.tready <- t.tready + 1;
    Condition.broadcast t.tdone;
    Mutex.unlock t.tm;
    let stop = ref false in
    while not !stop do
      Mutex.lock t.tm;
      while t.tepoch = !seen && not t.tquit do
        Condition.wait t.tgo t.tm
      done;
      if t.tquit then stop := true else seen := t.tepoch;
      Mutex.unlock t.tm;
      if not !stop then begin
        t.twork d;
        Mutex.lock t.tm;
        t.tdone_count <- t.tdone_count + 1;
        if t.tdone_count = t.tsize then Condition.broadcast t.tdone;
        Mutex.unlock t.tm
      end
    done

  let team_shutdown () =
    match !the_team with
    | None -> ()
    | Some t ->
        Mutex.lock t.tm;
        t.tquit <- true;
        Condition.broadcast t.tgo;
        Mutex.unlock t.tm;
        List.iter Domain.join t.tdoms;
        the_team := None

  (* Called with [team_owner] held and no epoch in flight.  Returns a
     team with >= [nworkers] workers (indices 1..), growing or creating
     it as needed, and only after every worker is ready to observe the
     next epoch. *)
  let team_ensure nworkers =
    let t =
      match !the_team with
      | Some t -> t
      | None ->
          let t =
            {
              tm = Mutex.create ();
              tgo = Condition.create ();
              tdone = Condition.create ();
              tsize = 0;
              tready = 0;
              tepoch = 0;
              tdone_count = 0;
              twork = ignore;
              tquit = false;
              tdoms = [];
            }
          in
          the_team := Some t;
          at_exit team_shutdown;
          t
    in
    if t.tsize < nworkers then begin
      let doms = ref [] in
      for d = t.tsize + 1 to nworkers do
        doms := Domain.spawn (team_worker t d) :: !doms
      done;
      Mutex.lock t.tm;
      t.tdoms <- !doms @ t.tdoms;
      t.tsize <- nworkers;
      while t.tready < t.tsize do
        Condition.wait t.tdone t.tm
      done;
      Mutex.unlock t.tm
    end;
    t

  let run ?(seed = 0) ?bandwidth ?(strict = false) ?(max_rounds = 1_000_000)
      ?telemetry ?trace ?(domains = 1) ?(fast_forward = true) ?faults
      ?on_round ?(on_error = `Propagate) ?pool:opool g program =
    let n = Graph.n g in
    let m_t0 = if Obs.Metrics.enabled () then Unix.gettimeofday () else 0.0 in
    let bw =
      match bandwidth with Some b -> b | None -> Bits.default_bandwidth n
    in
    (match trace with
    | Some tr -> Trace.set_meta tr ~n ~m:(Graph.m g) ~bandwidth:bw
    | None -> ());
    let d_req = if domains < 1 then 1 else domains in
    let record_errors = on_error = `Record in
    (* Fault layer.  All decisions happen during delivery — the serial,
       deterministically ordered half of a round — so the injected
       schedule is a pure function of (policy, directed edge, round,
       per-edge message index): byte-identical for any domain count and
       for fast-forward on/off. *)
    let fpol =
      match faults with Some f when not (Faults.is_none f) -> Some f | _ -> None
    in
    let crash_from, crash_until =
      match fpol with
      | Some f -> (
          match Faults.crash_schedule f ~n with
          | Some (cf, cu) -> (cf, cu)
          | None -> ([||], [||]))
      | None -> ([||], [||])
    in
    let has_crash = Array.length crash_from > 0 in
    let p, owned =
      match opool with
      | Some p when p.pgraph == g && not p.in_use ->
          reset_pool p;
          (p, true)
      | _ -> (pool g, false)
    in
    ensure_arenas p d_req;
    p.in_use <- true;
    let traced = trace <> None in
    if traced && Array.length p.wake_sender < n then begin
      p.wake_sender <- Array.make (max 1 n) (-1);
      p.wake_sent <- Array.make (max 1 n) (-1)
    end;
    let arenas = p.arenas in
    let eng =
      {
        graph = g;
        seed;
        p;
        estats = Stats.create ~bandwidth:bw;
        telemetry;
        ff = fast_forward;
        reject_log = [];
        fail_log = [];
        current_round = 0;
      }
    in
    (* Is node [v] down at the round currently being processed?  Reads
       only immutable schedule arrays and [current_round] (stable during
       a phase), so it is safe from worker domains. *)
    let is_crashed v =
      has_crash
      && crash_from.(v) <= eng.current_round
      && eng.current_round < crash_until.(v)
    in
    (* Crash-start events, sorted by round, for honest [crashed_nodes]
       accounting (an event only counts if the node is still running when
       the crash takes effect). *)
    let crash_starts =
      if not has_crash then [||]
      else begin
        let l = ref [] in
        for v = 0 to n - 1 do
          if crash_from.(v) <> max_int then l := (crash_from.(v), v) :: !l
        done;
        let a = Array.of_list !l in
        Array.sort compare a;
        a
      end
    in
    let crash_start_i = ref 0 in
    (* Messages the fault layer deferred, bucketed by due round in a ring
       of [max_delay + 1] slots.  Run-local contents; the slots themselves
       are cheap (empty arrays) and anything still queued when the run
       ends is lost, like any other in-flight frame. *)
    let dq =
      match fpol with
      | Some f -> Array.init (f.Faults.max_delay + 1) (fun _ -> fresh_dslot ())
      | None -> [||]
    in
    let dq_count = ref 0 in
    let dq_min = ref max_int in
    (* The per-edge fault index is pool-owned so repeated faulted runs on
       the same pool do not pay a fresh 2m allocation each ([fidx] is
       reset by the charge re-scan, entry by entry). *)
    (match fpol with
    | Some _ ->
        if Array.length p.fidx < 2 * Graph.m g then
          p.fidx <- Array.make (2 * Graph.m g) 0
    | None -> ());
    let next_k de =
      let k = p.fidx.(de) in
      p.fidx.(de) <- k + 1;
      k
    in
    let outputs = Array.make n None in
    let conts = p.conts in
    (* Every exit path must run this: a node suspended at [wait] when the
       run ends (strict-mode overflow, node exception, [max_rounds]) is
       discontinued with [Stopped] so its stack unwinds and finalizers
       ([Fun.protect] etc.) run.  [Stopped] itself is swallowed by the
       per-node handler; any exception a node raises while unwinding is
       dropped here so every node still gets finalized.  Postcondition:
       [conts] is all-[none_k], even if a node caught [Stopped] and tried
       to wait again. *)
    let finalize () =
      for v = 0 to n - 1 do
        let k = conts.(v) in
        if k != none_k then begin
          conts.(v) <- none_k;
          (try Effect.Deep.discontinue k Stopped with _ -> ());
          conts.(v) <- none_k
        end
      done
    in
    let start v =
      let ctx = { id = v; crng = None; eng } in
      Effect.Deep.match_with
        (fun () -> outputs.(v) <- Some (program ctx))
        ()
        {
          retc = (fun () -> ());
          exnc = (fun e -> match e with Stopped -> () | e -> raise e);
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Suspend k ->
                  Some
                    (fun (cont : (a, unit) Effect.Deep.continuation) ->
                      p.wake.(v) <- eng.current_round + max 1 k;
                      conts.(v) <- cont)
              | _ -> None);
        }
    in
    let live = p.live in
    let live_len = ref 0 in
    (* Chains are LIFO; prepending while walking head-to-tail rebuilds
       push order (ascending sender, reverse send order within a sender —
       the pre-rewrite inbox order).  Consumes the chain: only the
       stepping domain that owns [v] calls this, and the barrier's
       happens-before edge covers its reads of the coordinator-written
       slab. *)
    let build_inbox v =
      let head = p.ib_head.(v) in
      if head < 0 then []
      else begin
        let acc = ref [] in
        let s = ref head in
        while !s >= 0 do
          acc := (p.ib_sender.(!s), p.ib_msgs.(!s)) :: !acc;
          s := p.ib_next.(!s)
        done;
        p.ib_head.(v) <- -1;
        !acc
      end
    in
    (* Run start-up for nodes [lo, hi) with arena [d].  On a node
       exception: in [`Propagate] mode, record the (lowest) failing node
       and stop this block — exactly what a serial start loop does for
       its prefix; in [`Record] mode, log the failure, let the node die
       and keep stepping the block, so every failing node is observed
       regardless of the domain count. *)
    let start_range d lo hi =
      let a = arenas.(d) in
      a.astepped <- 0;
      a.afailed <- None;
      a.afails <- [];
      try
        for v = lo to hi - 1 do
          p.arena_of.(v) <- d;
          (try start v
           with e ->
             if record_errors then
               a.afails <- (eng.current_round, v, e) :: a.afails
             else begin
               a.afailed <- Some (v, e);
               raise Shard_stop
             end);
          a.astepped <- a.astepped + 1
        done
      with Shard_stop -> ()
    in
    (* Step the live-list slice [lo, hi) with arena [d]: resume each node
       whose inbox is non-empty or whose wake round has arrived, and
       compact the survivors to the front of the slice.  Nodes are visited
       in ascending id order, so each arena's sends/rejects come out in
       serial order for its block. *)
    let step_range d lo hi =
      let a = arenas.(d) in
      a.astepped <- 0;
      a.afailed <- None;
      a.afails <- [];
      a.aculled <- 0;
      a.amin_wake <- max_int;
      let kept = ref lo in
      let keep v =
        live.(!kept) <- v;
        incr kept;
        if p.wake.(v) < a.amin_wake then a.amin_wake <- p.wake.(v)
      in
      (* A crashed node is frozen: not resumed even when its wake round
         has passed, so it observes nothing until recovery.  Its earliest
         possible resume round is max(wake, recovery), which is what
         bounds fast-forward.  A crash-stopped node (no recovery) can
         never resume — cull it from the live list so the run can still
         terminate; its fiber is discontinued by [finalize]. *)
      let keep_crashed v =
        live.(!kept) <- v;
        incr kept;
        let w = p.wake.(v) in
        let w = if w < crash_until.(v) then crash_until.(v) else w in
        if w < a.amin_wake then a.amin_wake <- w
      in
      (try
         for i = lo to hi - 1 do
           let v = live.(i) in
           if is_crashed v then begin
             if crash_until.(v) = max_int then a.aculled <- a.aculled + 1
             else keep_crashed v
           end
           else if p.ib_head.(v) >= 0 || p.wake.(v) <= eng.current_round
           then begin
             let k = conts.(v) in
             if k != none_k then begin
               conts.(v) <- none_k;
               p.arena_of.(v) <- d;
               let inbox = build_inbox v in
               a.astepped <- a.astepped + 1;
               (try Effect.Deep.continue k inbox
                with e ->
                  if record_errors then
                    a.afails <- (eng.current_round, v, e) :: a.afails
                  else begin
                    a.afailed <- Some (v, e);
                    raise Shard_stop
                  end);
               if conts.(v) != none_k then keep v
             end
           end
           else keep v
         done
       with Shard_stop -> ());
      a.akept <- !kept - lo
    in
    (* Sharded phase execution over the process-wide team.  Each phase is
       one epoch: the coordinator publishes the task under the team
       mutex, takes block 0 itself, and waits for every worker.  The
       mutex acquire/release pairs around each epoch establish the
       happens-before edges that make every per-node write visible across
       domains; there is no other cross-domain communication.  The team
       is acquired lazily on the first round big enough to shard, held
       for the rest of the run, and released on every exit path. *)
    let nworkers = d_req - 1 in
    let task_start = ref false in
    let task_len = ref 0 in
    let block d len =
      (d * len / d_req, (d + 1) * len / d_req)
    in
    let exec d =
      let len = !task_len in
      let lo, hi = block d len in
      if !task_start then start_range d lo hi else step_range d lo hi
    in
    (* Published to the team each epoch.  Workers beyond this run's
       domain count no-op; an engine bug or OOM on a worker is recorded
       in its arena rather than deadlocking the barrier (a real node
       failure recorded by the shard takes precedence in
       [check_failures]). *)
    let work d =
      if d < d_req then
        try exec d
        with e ->
          if arenas.(d).afailed = None then
            arenas.(d).afailed <- Some (max_int, e)
    in
    let my_team = ref None in
    let acquire_team () =
      match !my_team with
      | Some t -> Some t
      | None ->
          (* Another run (a concurrent tester in a different domain) may
             hold the team; stepping serially instead is observationally
             identical. *)
          if Mutex.try_lock team_owner then begin
            let t = team_ensure nworkers in
            my_team := Some t;
            Some t
          end
          else None
    in
    let release_team () =
      if !my_team <> None then begin
        my_team := None;
        Mutex.unlock team_owner
      end
    in
    (* Execute one phase (start-up or a round's stepping) over [len]
       items, sharded when worthwhile; returns the number of domains
       used.  Accounting is invariant: the merge reads arenas 0..D-1 in
       order, so any D (including the serial fallback, D = 1 with arena
       0) yields byte-identical engine state. *)
    let run_phase ~start len =
      if nworkers > 0 && len >= par_threshold then begin
        match acquire_team () with
        | None ->
            if start then start_range 0 0 len else step_range 0 0 len;
            1
        | Some t ->
            task_start := start;
            task_len := len;
            Mutex.lock t.tm;
            t.tdone_count <- 0;
            t.twork <- work;
            t.tepoch <- t.tepoch + 1;
            Condition.broadcast t.tgo;
            Mutex.unlock t.tm;
            exec 0;
            Mutex.lock t.tm;
            while t.tdone_count < t.tsize do
              Condition.wait t.tdone t.tm
            done;
            Mutex.unlock t.tm;
            min d_req len
      end
      else begin
        if start then start_range 0 0 len else step_range 0 0 len;
        1
      end
    in
    (* Post-phase merges, all on the coordinating domain. *)
    let check_failures () =
      let best = ref None in
      for d = 0 to d_req - 1 do
        match arenas.(d).afailed with
        | None -> ()
        | Some (v, _) as f -> (
            match !best with
            | Some (bv, _) when bv <= v -> ()
            | _ -> best := f)
      done;
      match !best with Some (_, e) -> raise e | None -> ()
    in
    let merge_failures () =
      if record_errors then
        for d = 0 to d_req - 1 do
          let a = arenas.(d) in
          match a.afails with
          | [] -> ()
          | f ->
              if Obs.Log.would_log Obs.Log.Debug then
                List.iter
                  (fun (r, v, e) ->
                    Obs.Log.debugf ~node:v
                      ~fields:[ ("round", Obs.Log.I r) ]
                      "node program raised (recorded): %s"
                      (Printexc.to_string e))
                  (List.rev f);
              eng.fail_log <- f @ eng.fail_log;
              a.afails <- []
        done
    in
    let merge_rejects () =
      (* Arena d's list is reverse-chronological for its ascending block;
         prepending blocks 0..D-1 in order leaves the highest block at the
         head — the same reverse-chronological global log a serial round
         produces. *)
      for d = 0 to d_req - 1 do
        let a = arenas.(d) in
        match a.arejects with
        | [] -> ()
        | r ->
            eng.reject_log <- r @ eng.reject_log;
            a.arejects <- []
      done
    in
    let total_stepped nd =
      let s = ref 0 in
      for d = 0 to nd - 1 do
        s := !s + arenas.(d).astepped
      done;
      !s
    in
    let pending_sends () =
      let s = ref 0 in
      for d = 0 to d_req - 1 do
        s := !s + arenas.(d).asenders_len
      done;
      !s
    in
    (* Earliest wake round over still-live nodes; [max_int] when dead.
       Updated after every phase, it both gates fast-forward and bounds
       how far it may jump. *)
    let min_wake = ref max_int in
    let completed = ref true in
    let culled = ref 0 in
    let running = ref true in
    (* Fiber resume/park trace events are predicted on the coordinating
       domain, never recorded from workers: before a step phase, scan the
       live worklist with the exact resume predicate [step_range] uses
       (ascending id order — the serial order); after the barrier, a
       candidate whose continuation survived parked again.  This keeps the
       fiber event stream byte-identical for every domain count. *)
    let fiber_scratch = ref [||] in
    let trace_prescan tr =
      if Array.length !fiber_scratch = 0 then
        fiber_scratch := Array.make (max 1 n) 0;
      let sc = !fiber_scratch in
      let cnt = ref 0 in
      for i = 0 to !live_len - 1 do
        let v = live.(i) in
        if
          (not (is_crashed v))
          && conts.(v) != none_k
          && (p.ib_head.(v) >= 0 || p.wake.(v) <= eng.current_round)
        then begin
          (* Prefer-arrival rule: a resume with any delivery this round
             is blamed on the first-delivered frame even if its deadline
             also expired — the only attribution that is invariant under
             fast-forward (ff-off spin wakes are pure Deadline resumes,
             arrival rounds look identical either way). *)
          if p.ib_head.(v) >= 0 then
            Trace.fiber_resume tr ~round:eng.current_round ~node:v
              ~cause:Trace.Wake_deliver ~sender:p.wake_sender.(v)
              ~sent:p.wake_sent.(v)
          else
            Trace.fiber_resume tr ~round:eng.current_round ~node:v
              ~cause:Trace.Wake_deadline ~sender:(-1) ~sent:(-1);
          sc.(!cnt) <- v;
          incr cnt
        end
      done;
      !cnt
    in
    let trace_postscan tr cnt =
      let sc = !fiber_scratch in
      for i = 0 to cnt - 1 do
        let v = sc.(i) in
        if conts.(v) != none_k then
          Trace.fiber_park tr ~round:eng.current_round ~node:v
            ~wake:p.wake.(v)
      done
    in
    let one_round () =
      eng.estats.Stats.rounds <- eng.estats.Stats.rounds + 1;
      eng.current_round <- eng.current_round + 1;
      let round_bits = ref 0 and round_msgs = ref 0 in
      let round_dropped = ref 0
      and round_duplicated = ref 0
      and round_delayed = ref 0
      and round_crashed = ref 0 in
      (* Crash events taking effect now (or during a span the engine
         fast-forwarded over — node state cannot have changed since, so
         the count is identical whether or not the span was skipped). *)
      if has_crash then
        while
          !crash_start_i < Array.length crash_starts
          && fst crash_starts.(!crash_start_i) <= eng.current_round
        do
          let r, v = crash_starts.(!crash_start_i) in
          if conts.(v) != none_k then begin
            eng.estats.crashed_nodes <- eng.estats.crashed_nodes + 1;
            incr round_crashed;
            match trace with
            | Some tr ->
                Trace.fault tr ~round:r ~kind:Trace.Crash ~sender:v ~dest:v
                  ~edge:(-1)
                  ~info:(if crash_until.(v) = max_int then -1
                         else crash_until.(v) - r)
            | None -> ()
          end;
          incr crash_start_i
        done;
      (* Deliver: drain arena senders (ascending blocks, each ascending)
         into the inbox slab, summing bits per directed edge.  Each
         sender's entry span is drained in reverse send order, which
         makes every inbox chain rebuild to exactly the order the
         pre-rewrite engine produced (sorted by sender, same-sender
         messages in reverse send order).  Send entries are NOT consumed
         here — the charge pass below re-scans them in the same order to
         recover the touched edges, then resets the buffers (always
         before the step phase queues new sends). *)
      (match fpol with
      | None ->
          for d = 0 to d_req - 1 do
            let a = arenas.(d) in
            for i = 0 to a.asenders_len - 1 do
              let v = a.asenders.(i) in
              Bytes.unsafe_set p.queued v '\000';
              let lo = a.aoff.(i) in
              let hi =
                if i + 1 < a.asenders_len then a.aoff.(i + 1) else a.s_len
              in
              for j = hi - 1 downto lo do
                let dest = a.s_dest.(j) and de = a.s_eids.(j) in
                let msg = a.s_msgs.(j) in
                let b = Msg.bits msg in
                eng.estats.messages <- eng.estats.messages + 1;
                eng.estats.total_bits <- eng.estats.total_bits + b;
                incr round_msgs;
                round_bits := !round_bits + b;
                p.edge_bits.(de) <- p.edge_bits.(de) + b;
                if p.ib_head.(dest) < 0 then begin
                  p.receivers.(p.receivers_len) <- dest;
                  p.receivers_len <- p.receivers_len + 1;
                  if traced then begin
                    p.wake_sender.(dest) <- v;
                    p.wake_sent.(dest) <- eng.current_round - 1
                  end
                end;
                push_inbox p ~sender:v ~dest msg;
                (match trace with
                | Some tr ->
                    Trace.message tr ~round:eng.current_round
                      ~sent:(eng.current_round - 1) ~sender:v ~dest ~edge:de
                      ~bits:b
                | None -> ())
              done
            done
          done
      | Some fp ->
          (* Fault-aware delivery.  Decisions are per message, drawn from
             the splittable PRNG keyed by (edge, round, per-edge index);
             the iteration order below is the deterministic serial order,
             so the schedule is invariant under the domain count. *)
          let charge_wire de b =
            eng.estats.messages <- eng.estats.messages + 1;
            eng.estats.total_bits <- eng.estats.total_bits + b;
            incr round_msgs;
            round_bits := !round_bits + b;
            p.edge_bits.(de) <- p.edge_bits.(de) + b
          in
          let drop_one () =
            eng.estats.dropped <- eng.estats.dropped + 1;
            incr round_dropped
          in
          let trace_fault kind ~sender ~dest ~de ~info =
            match trace with
            | Some tr ->
                Trace.fault tr ~round:eng.current_round ~kind ~sender ~dest
                  ~edge:de ~info
            | None -> ()
          in
          let deliver ~sent ~de ~bits sender dest msg =
            (* A message reaching a node that is down is lost — the
               CONGEST-faithful model is silence, never an error. *)
            if is_crashed dest then begin
              drop_one ();
              trace_fault Trace.Down_drop ~sender ~dest ~de ~info:0
            end
            else begin
              if p.ib_head.(dest) < 0 then begin
                p.receivers.(p.receivers_len) <- dest;
                p.receivers_len <- p.receivers_len + 1;
                if traced then begin
                  p.wake_sender.(dest) <- sender;
                  p.wake_sent.(dest) <- sent
                end
              end;
              push_inbox p ~sender ~dest msg;
              match trace with
              | Some tr ->
                  Trace.message tr ~round:eng.current_round ~sent ~sender ~dest
                    ~edge:de ~bits
              | None -> ()
            end
          in
          (* Deferred messages due this round arrive first, in original
             send order, then fresh sends — so under delays an inbox is
             no longer guaranteed to be sorted by sender.  Bits are
             charged at the round the frame actually occupies. *)
          if !dq_min <= eng.current_round then begin
            (* Exact [dq_min] maintenance plus the fast-forward cap mean
               the only due entries live in this round's bucket, already
               in enqueue (= global sequence) order. *)
            let slot = dq.(eng.current_round mod Array.length dq) in
            assert (
              !dq_min = eng.current_round
              && slot.q_len > 0
              && slot.q_due = eng.current_round);
            for j = 0 to slot.q_len - 1 do
              let de = slot.q_de.(j) in
              let msg = slot.q_msgs.(j) in
              let b = Msg.bits msg in
              (* The send-entry re-scan cannot see this arc; remember it
                 for the charge pass (first touch wins, matching the old
                 touched-list order: deferred arrivals precede fresh
                 sends). *)
              if p.edge_bits.(de) = 0 then push_extra p de;
              charge_wire de b;
              deliver ~sent:slot.q_sent.(j) ~de ~bits:b slot.q_sender.(j)
                slot.q_dest.(j) msg
            done;
            dq_count := !dq_count - slot.q_len;
            slot.q_len <- 0;
            slot.q_due <- -1;
            if !dq_count = 0 then dq_min := max_int
            else begin
              dq_min := max_int;
              Array.iter
                (fun s -> if s.q_len > 0 && s.q_due < !dq_min then
                    dq_min := s.q_due)
                dq
            end
          end;
          for d = 0 to d_req - 1 do
            let a = arenas.(d) in
            for i = 0 to a.asenders_len - 1 do
              let v = a.asenders.(i) in
              Bytes.unsafe_set p.queued v '\000';
              let lo = a.aoff.(i) in
              let hi =
                if i + 1 < a.asenders_len then a.aoff.(i + 1) else a.s_len
              in
              for j = hi - 1 downto lo do
                let dest = a.s_dest.(j) and de = a.s_eids.(j) in
                let msg = a.s_msgs.(j) in
                let b = Msg.bits msg in
                let sent = eng.current_round - 1 in
                if is_crashed v then begin
                  (* The sender went down with this frame still queued:
                     nothing ever reaches the wire. *)
                  drop_one ();
                  trace_fault Trace.Down_drop ~sender:v ~dest ~de ~info:0
                end
                else
                  match
                    Faults.draw fp ~edge:de ~round:eng.current_round
                      ~k:(next_k de)
                  with
                  | Faults.Deliver ->
                      charge_wire de b;
                      deliver ~sent ~de ~bits:b v dest msg
                  | Faults.Drop ->
                      charge_wire de b;
                      drop_one ();
                      trace_fault Trace.Drop ~sender:v ~dest ~de ~info:0
                  | Faults.Truncate ->
                      (* A truncated frame occupies at most one full
                         bandwidth slot on the wire and is undecodable at
                         the receiver: silence, never corruption. *)
                      charge_wire de (if b < bw then b else bw);
                      drop_one ();
                      trace_fault Trace.Truncate ~sender:v ~dest ~de ~info:b
                  | Faults.Duplicate ->
                      charge_wire de b;
                      charge_wire de b;
                      eng.estats.duplicated <- eng.estats.duplicated + 1;
                      incr round_duplicated;
                      trace_fault Trace.Duplicate ~sender:v ~dest ~de ~info:0;
                      deliver ~sent ~de ~bits:b v dest msg;
                      deliver ~sent ~de ~bits:b v dest msg
                  | Faults.Delay dl ->
                      eng.estats.delayed <- eng.estats.delayed + 1;
                      incr round_delayed;
                      trace_fault Trace.Delay ~sender:v ~dest ~de ~info:dl;
                      let due = eng.current_round + dl in
                      let slot = dq.(due mod Array.length dq) in
                      assert (slot.q_len = 0 || slot.q_due = due);
                      if slot.q_len = 0 then slot.q_due <- due;
                      push_dslot slot ~sent ~sender:v ~dest ~de msg;
                      incr dq_count;
                      if due < !dq_min then dq_min := due
              done
            done
          done);
      (* Charge bandwidth per directed edge by re-scanning what was
         delivered: deferred-arrival arcs first ([extra_touched]), then
         the send entries in the exact drain order above.  Zeroing
         [edge_bits] doubles as the visited mark, so an arc is charged at
         its first touch — the same position the old explicit touched
         list gave it (and the same arc a strict-mode overflow names).
         The scan also resets [fidx] and finally the send buffers
         themselves, always before the step phase queues new sends. *)
      let max_frames = ref 1 in
      let charge_de de =
        let b = p.edge_bits.(de) in
        if b <> 0 then begin
          p.edge_bits.(de) <- 0;
          if b > eng.estats.max_edge_bits then eng.estats.max_edge_bits <- b;
          if b > bw then begin
            if strict then begin
              Obs.Log.warnf
                ~fields:
                  [ ("round", Obs.Log.I eng.current_round);
                    ("edge", Obs.Log.I de); ("bits", Obs.Log.I b);
                    ("bandwidth", Obs.Log.I bw) ]
                "bandwidth exceeded in strict mode";
              failwith
                (Printf.sprintf
                   "Engine: %d bits on one edge in one round exceeds the \
                    %d-bit bandwidth (strict mode)"
                   b bw)
            end;
            eng.estats.oversized <- eng.estats.oversized + 1;
            let frames = Stats.frames ~bandwidth:bw b in
            if frames > !max_frames then max_frames := frames
          end
        end
      in
      let faulted = fpol <> None in
      for i = 0 to p.extra_len - 1 do
        charge_de p.extra_touched.(i)
      done;
      p.extra_len <- 0;
      for d = 0 to d_req - 1 do
        let a = arenas.(d) in
        for i = 0 to a.asenders_len - 1 do
          let lo = a.aoff.(i) in
          let hi = if i + 1 < a.asenders_len then a.aoff.(i + 1) else a.s_len in
          for j = hi - 1 downto lo do
            let de = a.s_eids.(j) in
            if faulted then p.fidx.(de) <- 0;
            charge_de de
          done
        done;
        a.asenders_len <- 0;
        a.s_len <- 0
      done;
      eng.estats.charged_rounds <- eng.estats.charged_rounds + !max_frames;
      (* Step the live nodes (sharded when worthwhile). *)
      let fib_cnt =
        match trace with Some tr -> trace_prescan tr | None -> 0
      in
      let nd_used = run_phase ~start:false !live_len in
      (match eng.telemetry with
      | Some tel ->
          Telemetry.tick tel ~stepped:(total_stepped nd_used) ~domains:nd_used
            ~dropped:!round_dropped ~duplicated:!round_duplicated
            ~delayed:!round_delayed ~crashed:!round_crashed ~bits:!round_bits
            ~frames:!max_frames ~messages:!round_msgs
      | None -> ());
      (match trace with
      | Some tr ->
          trace_postscan tr fib_cnt;
          let stepped = total_stepped nd_used in
          Trace.round_tick tr ~round:eng.current_round ~bits:!round_bits
            ~frames:!max_frames ~messages:!round_msgs ~stepped;
          if nd_used > 1 then begin
            let mx = ref 0 in
            for d = 0 to nd_used - 1 do
              if arenas.(d).astepped > !mx then mx := arenas.(d).astepped
            done;
            Trace.shard tr ~round:eng.current_round ~domains:nd_used
              ~max_stepped:!mx ~stepped
          end
      | None -> ());
      check_failures ();
      merge_failures ();
      merge_rejects ();
      if has_crash then
        for d = 0 to nd_used - 1 do
          culled := !culled + arenas.(d).aculled
        done;
      (* Compact the surviving blocks into a prefix of [live] (ascending
         blits over ascending blocks — plain memmove). *)
      let dst = ref arenas.(0).akept in
      if nd_used > 1 then
        for d = 1 to nd_used - 1 do
          let lo, _ = block d !live_len in
          let a = arenas.(d) in
          if a.akept > 0 && !dst <> lo then Array.blit live lo live !dst a.akept;
          dst := !dst + a.akept
        done;
      live_len := !dst;
      min_wake := max_int;
      for d = 0 to nd_used - 1 do
        if arenas.(d).amin_wake < !min_wake then min_wake := arenas.(d).amin_wake
      done;
      (* Inbox chains of nodes that finished earlier were never consumed:
         drop them (idempotent for chains [build_inbox] already cleared)
         and recycle the slab so the next round appends from slot 0. *)
      for i = 0 to p.receivers_len - 1 do
        p.ib_head.(p.receivers.(i)) <- -1
      done;
      p.receivers_len <- 0;
      p.ib_len <- 0
    in
    (* Quiescent-round fast-forward: with no frame in flight anywhere and
       every live fiber parked on a wake round strictly in the future, the
       next [min_wake - current_round - 1] rounds are provably empty —
       deliver nothing, charge one frame, resume nobody.  Advance the
       counters in O(1) instead of simulating them; the round in which the
       earliest waiter expires is still simulated normally.  Nominal and
       charged accounting are exactly what the stepped rounds would have
       produced. *)
    let maybe_fast_forward () =
      (* Under faults, a deferred message's due round bounds the skip just
         like the earliest waiter does: the round a delayed frame lands in
         must be simulated.  (Crash windows need no extra cap: a frozen
         node's effective wake already accounts for its recovery, and
         crash events landing in a skipped quiescent span are observably
         identical to the unskipped execution.) *)
      let wake_target = if !dq_min < !min_wake then !dq_min else !min_wake in
      if fast_forward && pending_sends () = 0 && wake_target < max_int then begin
        let delta = wake_target - eng.current_round - 1 in
        let budget = max_rounds - eng.estats.Stats.rounds in
        let delta = if delta > budget then budget else delta in
        if delta > 0 then begin
          eng.estats.Stats.rounds <- eng.estats.Stats.rounds + delta;
          eng.estats.Stats.charged_rounds <-
            eng.estats.Stats.charged_rounds + delta;
          eng.estats.Stats.fast_forwarded_rounds <-
            eng.estats.Stats.fast_forwarded_rounds + delta;
          eng.current_round <- eng.current_round + delta;
          (match eng.telemetry with
          | Some tel -> Telemetry.fast_forward tel ~rounds:delta
          | None -> ());
          (match trace with
          | Some tr ->
              Trace.fast_forward tr ~round:(eng.current_round - delta)
                ~rounds:delta
          | None -> ());
          (* Host-side observer; runs on the coordinator in a quiescent
             span, after all accounting for the skip is settled. *)
          match on_round with Some f -> f delta | None -> ()
        end
      end
    in
    (try
       let (_ : int) = run_phase ~start:true n in
       check_failures ();
       merge_failures ();
       merge_rejects ();
       live_len := 0;
       min_wake := max_int;
       for v = 0 to n - 1 do
         if conts.(v) != none_k then begin
           live.(!live_len) <- v;
           incr live_len;
           if p.wake.(v) < !min_wake then min_wake := p.wake.(v)
         end
       done;
       (match trace with
       | Some tr ->
           for i = 0 to !live_len - 1 do
             let v = live.(i) in
             Trace.fiber_park tr ~round:0 ~node:v ~wake:p.wake.(v)
           done
       | None -> ());
       while !running && !live_len > 0 do
         if eng.estats.Stats.rounds >= max_rounds then begin
           running := false;
           completed := false
         end
         else begin
           maybe_fast_forward ();
           if eng.estats.Stats.rounds >= max_rounds then begin
             running := false;
             completed := false
           end
           else begin
             one_round ();
             match on_round with Some f -> f 1 | None -> ()
           end
         end
       done;
       (* Crash events inside a span the final fast-forward jumped over
          were never seen by [one_round]; count them now (before
          [finalize] kills the fibers the liveness check reads) so the
          tally matches a round-by-round execution. *)
       if has_crash then
         while
           !crash_start_i < Array.length crash_starts
           && fst crash_starts.(!crash_start_i) <= eng.current_round
         do
           let r, v = crash_starts.(!crash_start_i) in
           if conts.(v) != none_k then begin
             eng.estats.crashed_nodes <- eng.estats.crashed_nodes + 1;
             match trace with
             | Some tr ->
                 Trace.fault tr ~round:r ~kind:Trace.Crash ~sender:v ~dest:v
                   ~edge:(-1)
                   ~info:(if crash_until.(v) = max_int then -1
                          else crash_until.(v) - r)
             | None -> ()
           end;
           incr crash_start_i
         done;
       (* Every fiber still parked — a node suspended when [max_rounds]
          hit, or a crash-stopped node culled from the live list — is
          discontinued here so finalizers run (a no-op on a clean exit:
          [conts] is already all-[None]). *)
       finalize ();
       release_team ();
       if owned then p.in_use <- false;
       match trace with
       | Some tr -> Trace.run_end tr ~rounds:eng.current_round
       | None -> ()
     with e ->
       finalize ();
       release_team ();
       if owned then p.in_use <- false;
       (match trace with
       | Some tr -> Trace.run_end tr ~rounds:eng.current_round
       | None -> ());
       raise e);
    if !culled > 0 || eng.fail_log <> [] then completed := false;
    if Obs.Metrics.enabled () then begin
      let s = eng.estats in
      Obs.Metrics.inc m_runs;
      if not !completed then Obs.Metrics.inc m_incomplete_runs;
      Obs.Metrics.inc ~by:s.Stats.rounds m_rounds;
      Obs.Metrics.inc ~by:s.Stats.charged_rounds m_charged_rounds;
      Obs.Metrics.inc ~by:s.Stats.messages m_messages;
      Obs.Metrics.inc ~by:s.Stats.total_bits m_bits;
      Obs.Metrics.inc ~by:s.Stats.oversized m_oversized;
      Obs.Metrics.inc ~by:s.Stats.fast_forwarded_rounds m_ff_rounds;
      Obs.Metrics.inc ~labels:[ "dropped" ] ~by:s.Stats.dropped m_faults;
      Obs.Metrics.inc ~labels:[ "duplicated" ] ~by:s.Stats.duplicated m_faults;
      Obs.Metrics.inc ~labels:[ "delayed" ] ~by:s.Stats.delayed m_faults;
      Obs.Metrics.inc ~by:s.Stats.crashed_nodes m_crashed;
      Obs.Metrics.inc ~labels:[ "fiber" ] Compiled.m_mode_runs;
      Obs.Metrics.inc ~labels:[ "fiber" ] ~by:s.Stats.rounds
        Compiled.m_mode_rounds;
      let dt_us =
        int_of_float ((Unix.gettimeofday () -. m_t0) *. 1e6) |> max 0
      in
      Obs.Metrics.inc ~labels:[ string_of_int d_req ] ~by:dt_us m_run_wall
    end;
    {
      outputs;
      rejections = List.rev eng.reject_log;
      failures = List.rev eng.fail_log;
      stats = eng.estats;
      completed = !completed;
    }
end
