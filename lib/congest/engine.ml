open Graphlib

module type MESSAGE = sig
  type t

  val bits : t -> int
end

exception Stopped

module Make (Msg : MESSAGE) = struct
  (* Reusable message buffer: parallel arrays instead of lists so the
     steady-state delivery path allocates nothing.  [ids] holds the
     destination (outboxes) or sender (inboxes); [eids] holds the directed
     edge id (outboxes only).  [msgs] is created from the first message
     pushed, so no dummy [Msg.t] is ever needed. *)
  type buf = {
    mutable ids : int array;
    mutable eids : int array;
    mutable msgs : Msg.t array;
    mutable len : int;
  }

  let fresh_buf () = { ids = [||]; eids = [||]; msgs = [||]; len = 0 }

  let push b id eid msg =
    let cap = Array.length b.ids in
    if b.len = cap then begin
      let ncap = max 4 (2 * cap) in
      let nids = Array.make ncap 0 and neids = Array.make ncap 0 in
      let nmsgs = Array.make ncap msg in
      Array.blit b.ids 0 nids 0 b.len;
      Array.blit b.eids 0 neids 0 b.len;
      Array.blit b.msgs 0 nmsgs 0 b.len;
      b.ids <- nids;
      b.eids <- neids;
      b.msgs <- nmsgs
    end;
    b.ids.(b.len) <- id;
    b.eids.(b.len) <- eid;
    b.msgs.(b.len) <- msg;
    b.len <- b.len + 1

  (* Preallocated per-graph delivery state, reusable across runs so that a
     protocol built from many short engine runs (Stage I's primitives) does
     not pay an O(n + m) allocation bill per run.  Single-domain, one run
     at a time; a nested or cross-domain [run] on a busy pool silently
     falls back to fresh allocation. *)
  type pool = {
    pgraph : Graph.t;
    outbox : buf array;  (* per node, queued sends for this round *)
    inbox : buf array;  (* per node, deliveries, reused across rounds *)
    (* Per-directed-edge bit totals for the round being delivered.  The
       directed edge u->v of undirected edge e=(a,b), a<b, has id [2e]
       when u=a and [2e+1] when u=b.  Entries are reset through
       [touched], so a round costs O(edges carrying traffic), not O(m). *)
    edge_bits : int array;
    touched : int array;  (* directed edge ids with traffic this round *)
    mutable touched_len : int;
    senders : int array;  (* nodes with a non-empty outbox, ascending *)
    mutable senders_len : int;
    queued : bool array;  (* membership bit for [senders] *)
    receivers : int array;  (* nodes with a non-empty inbox *)
    mutable receivers_len : int;
    (* Worklist of nodes still suspended at a [sync]; ascending id order
       (nodes only ever leave), so each round costs O(live + messages)
       rather than O(n). *)
    live : int array;
    conts : ((int * Msg.t) list, unit) Effect.Deep.continuation option array;
    mutable in_use : bool;
  }

  let pool g =
    let n = Graph.n g in
    {
      pgraph = g;
      outbox = Array.init n (fun _ -> fresh_buf ());
      inbox = Array.init n (fun _ -> fresh_buf ());
      edge_bits = Array.make (2 * Graph.m g) 0;
      touched = Array.make (2 * Graph.m g) 0;
      touched_len = 0;
      senders = Array.make n 0;
      senders_len = 0;
      queued = Array.make n false;
      receivers = Array.make n 0;
      receivers_len = 0;
      live = Array.make n 0;
      conts = Array.make n None;
      in_use = false;
    }

  (* Clear whatever the previous run left behind (undelivered final-round
     sends, or mid-round state abandoned by an exception); cost is
     proportional to the leftovers, not to n + m.  [conts] needs no sweep:
     every exit path of [run] leaves it all-[None]. *)
  let reset_pool p =
    for i = 0 to p.senders_len - 1 do
      let v = p.senders.(i) in
      p.queued.(v) <- false;
      p.outbox.(v).len <- 0
    done;
    p.senders_len <- 0;
    for i = 0 to p.receivers_len - 1 do
      p.inbox.(p.receivers.(i)).len <- 0
    done;
    p.receivers_len <- 0;
    for i = 0 to p.touched_len - 1 do
      p.edge_bits.(p.touched.(i)) <- 0
    done;
    p.touched_len <- 0

  type engine = {
    graph : Graph.t;
    seed : int;
    p : pool;
    estats : Stats.t;
    telemetry : Telemetry.t option;
    mutable reject_log : (int * int * string) list;
        (* (round, node, reason), reverse chronological *)
    mutable current_round : int;
  }

  (* The per-node random state is created on first use: most node
     programs are deterministic, and eagerly seeding n states dominated
     the fixed cost of short engine runs.  Laziness does not change the
     stream a program that does call {!rng} observes. *)
  type ctx = { id : int; mutable crng : Random.State.t option; eng : engine }

  type _ Effect.t += Sync : (int * Msg.t) list Effect.t

  let my_id c = c.id
  let n_nodes c = Graph.n c.eng.graph
  let degree c = Graph.degree c.eng.graph c.id
  let neighbors c = Graph.neighbors c.eng.graph c.id
  let incident c = Graph.incident c.eng.graph c.id
  let round c = c.eng.current_round
  let stats c = c.eng.estats

  let rng c =
    match c.crng with
    | Some r -> r
    | None ->
        let r = Random.State.make [| c.eng.seed; c.id; 0x5eed |] in
        c.crng <- Some r;
        r

  let send c ~dest msg =
    let p = c.eng.p in
    let e =
      try Graph.find_edge c.eng.graph c.id dest
      with Not_found ->
        invalid_arg
          (Printf.sprintf "Engine.send: %d is not a neighbor of %d" dest c.id)
    in
    let de = (2 * e) + if c.id < dest then 0 else 1 in
    (* Nodes only run one at a time and in ascending id order (both at
       start-up and when resumed), so appending on first use keeps
       [senders] sorted. *)
    if not p.queued.(c.id) then begin
      p.queued.(c.id) <- true;
      p.senders.(p.senders_len) <- c.id;
      p.senders_len <- p.senders_len + 1
    end;
    push p.outbox.(c.id) dest de msg

  let broadcast c msg =
    Array.iter (fun dest -> send c ~dest msg) (neighbors c)

  let sync _c = Effect.perform Sync

  let idle c k =
    for _ = 1 to k do
      ignore (sync c)
    done

  let reject c reason =
    c.eng.reject_log <-
      (c.eng.current_round, c.id, reason) :: c.eng.reject_log

  type 'o result = {
    outputs : 'o option array;
    rejections : (int * int * string) list;
    stats : Stats.t;
    completed : bool;
  }

  let distinct_rejections l =
    List.sort_uniq compare (List.map (fun (_, v, reason) -> (v, reason)) l)

  let run ?(seed = 0) ?bandwidth ?(strict = false) ?(max_rounds = 1_000_000)
      ?telemetry ?pool:opool g program =
    let n = Graph.n g in
    let bw =
      match bandwidth with Some b -> b | None -> Bits.default_bandwidth n
    in
    let p, owned =
      match opool with
      | Some p when p.pgraph == g && not p.in_use ->
          reset_pool p;
          (p, true)
      | _ -> (pool g, false)
    in
    p.in_use <- true;
    let eng =
      {
        graph = g;
        seed;
        p;
        estats = Stats.create ~bandwidth:bw;
        telemetry;
        reject_log = [];
        current_round = 0;
      }
    in
    let outputs = Array.make n None in
    let conts = p.conts in
    (* Every exit path must run this: a node suspended at [sync] when the
       run ends (strict-mode overflow, node exception, [max_rounds]) is
       discontinued with [Stopped] so its stack unwinds and finalizers
       ([Fun.protect] etc.) run.  [Stopped] itself is swallowed by the
       per-node handler; any exception a node raises while unwinding is
       dropped here so every node still gets finalized.  Postcondition:
       [conts] is all-[None], even if a node caught [Stopped] and tried to
       sync again. *)
    let finalize () =
      for v = 0 to n - 1 do
        match conts.(v) with
        | None -> ()
        | Some k ->
            conts.(v) <- None;
            (try Effect.Deep.discontinue k Stopped with _ -> ());
            conts.(v) <- None
      done
    in
    let start v =
      let ctx = { id = v; crng = None; eng } in
      Effect.Deep.match_with
        (fun () -> outputs.(v) <- Some (program ctx))
        ()
        {
          retc = (fun () -> ());
          exnc = (fun e -> match e with Stopped -> () | e -> raise e);
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Sync ->
                  Some
                    (fun (k : (a, unit) Effect.Deep.continuation) ->
                      conts.(v) <- Some k)
              | _ -> None);
        }
    in
    let live = p.live in
    let live_len = ref 0 in
    let completed = ref true in
    let running = ref true in
    let one_round () =
      eng.estats.Stats.rounds <- eng.estats.Stats.rounds + 1;
      eng.current_round <- eng.current_round + 1;
      (* Deliver: drain outboxes into inboxes, summing bits per directed
         edge.  Senders are processed in ascending id order and each
         outbox in reverse send order, which makes every inbox buffer
         sorted by sender with same-sender messages in the order the
         pre-rewrite engine produced (stable sort over a prepend-built
         list, i.e. reverse send order). *)
      let round_bits = ref 0 and round_msgs = ref 0 in
      for i = 0 to p.senders_len - 1 do
        let v = p.senders.(i) in
        p.queued.(v) <- false;
        let ob = p.outbox.(v) in
        for j = ob.len - 1 downto 0 do
          let dest = ob.ids.(j) and de = ob.eids.(j) in
          let msg = ob.msgs.(j) in
          let b = Msg.bits msg in
          eng.estats.messages <- eng.estats.messages + 1;
          eng.estats.total_bits <- eng.estats.total_bits + b;
          incr round_msgs;
          round_bits := !round_bits + b;
          if p.edge_bits.(de) = 0 then begin
            p.touched.(p.touched_len) <- de;
            p.touched_len <- p.touched_len + 1
          end;
          p.edge_bits.(de) <- p.edge_bits.(de) + b;
          let ib = p.inbox.(dest) in
          if ib.len = 0 then begin
            p.receivers.(p.receivers_len) <- dest;
            p.receivers_len <- p.receivers_len + 1
          end;
          push ib v 0 msg
        done;
        ob.len <- 0
      done;
      p.senders_len <- 0;
      (* Charge bandwidth per directed edge. *)
      let max_frames = ref 1 in
      for i = 0 to p.touched_len - 1 do
        let de = p.touched.(i) in
        let b = p.edge_bits.(de) in
        p.edge_bits.(de) <- 0;
        if b > eng.estats.max_edge_bits then eng.estats.max_edge_bits <- b;
        if b > bw then begin
          if strict then
            failwith
              (Printf.sprintf
                 "Engine: %d bits on one edge in one round exceeds the \
                  %d-bit bandwidth (strict mode)"
                 b bw);
          eng.estats.oversized <- eng.estats.oversized + 1;
          let frames = Stats.frames ~bandwidth:bw b in
          if frames > !max_frames then max_frames := frames
        end
      done;
      p.touched_len <- 0;
      eng.estats.charged_rounds <- eng.estats.charged_rounds + !max_frames;
      (match eng.telemetry with
      | Some tel ->
          Telemetry.tick tel ~bits:!round_bits ~frames:!max_frames
            ~messages:!round_msgs
      | None -> ());
      (* Resume the live nodes with their inboxes. *)
      let kept = ref 0 in
      for i = 0 to !live_len - 1 do
        let v = live.(i) in
        match conts.(v) with
        | None -> ()
        | Some k ->
            conts.(v) <- None;
            let ib = p.inbox.(v) in
            let inbox =
              if ib.len = 0 then []
              else begin
                let acc = ref [] in
                for j = ib.len - 1 downto 0 do
                  acc := (ib.ids.(j), ib.msgs.(j)) :: !acc
                done;
                ib.len <- 0;
                !acc
              end
            in
            Effect.Deep.continue k inbox;
            (match conts.(v) with
            | None -> ()
            | Some _ ->
                live.(!kept) <- v;
                incr kept)
      done;
      live_len := !kept;
      (* Inboxes of nodes that finished earlier were never consumed:
         drop them so the buffers start the next round empty. *)
      for i = 0 to p.receivers_len - 1 do
        p.inbox.(p.receivers.(i)).len <- 0
      done;
      p.receivers_len <- 0
    in
    (try
       for v = 0 to n - 1 do
         start v;
         match conts.(v) with
         | None -> ()
         | Some _ ->
             live.(!live_len) <- v;
             incr live_len
       done;
       while !running && !live_len > 0 do
         if eng.estats.Stats.rounds >= max_rounds then begin
           running := false;
           completed := false;
           finalize ()
         end
         else one_round ()
       done;
       if owned then p.in_use <- false
     with e ->
       finalize ();
       if owned then p.in_use <- false;
       raise e);
    {
      outputs;
      rejections = List.rev eng.reject_log;
      stats = eng.estats;
      completed = !completed;
    }
end
