(* Unit tests for the shared tester harness (lib/tester/harness.ml):
   verdict plumbing driven by synthetic Stage II callbacks, Degraded
   propagation under fault injection, checkpoint parameter validation,
   and the eps-rescaling clamp boundary cases for both budgets. *)

open Graphlib
module H = Tester.Harness
module S = Partition.State

let check = Alcotest.check
let cb = Alcotest.bool
let cf = Alcotest.float 1e-12
let q = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* effective_eps clamp                                                  *)
(* ------------------------------------------------------------------ *)

let test_effective_eps_edge_budget () =
  let g = Generators.grid 6 6 in
  let n = float_of_int (Graph.n g) and m = float_of_int (Graph.m g) in
  check cf "midrange: eps * m / n" (0.3 *. m /. n) (H.effective_eps g ~eps:0.3);
  check cf "tiny eps floors at 1/n" (1.0 /. n) (H.effective_eps g ~eps:1e-9);
  check cf "huge eps caps at 0.999" 0.999 (H.effective_eps g ~eps:10.0);
  (* default budget is Edge_budget *)
  check cf "default = Edge_budget"
    (H.effective_eps ~budget:H.Edge_budget g ~eps:0.3)
    (H.effective_eps g ~eps:0.3)

let test_effective_eps_vertex_budget () =
  let g = Generators.grid 6 6 in
  let n = float_of_int (Graph.n g) in
  check cf "midrange passes through" 0.3
    (H.effective_eps ~budget:H.Vertex_budget g ~eps:0.3);
  check cf "zero eps floors at 1/n" (1.0 /. n)
    (H.effective_eps ~budget:H.Vertex_budget g ~eps:0.0);
  check cf "huge eps caps at 0.999" 0.999
    (H.effective_eps ~budget:H.Vertex_budget g ~eps:5.0)

let test_effective_eps_degenerate () =
  (* empty graph: eps is returned unchanged, no division by n *)
  check cf "n = 0 passes eps through" 0.42
    (H.effective_eps (Graph.make ~n:0 []) ~eps:0.42);
  (* edgeless graph with vertices: raw = 0, floored at 1/n *)
  check cf "m = 0 floors at 1/n" 0.25
    (H.effective_eps (Graph.make ~n:4 []) ~eps:0.3);
  (* single node: 1/n = 1.0 > 0.999, so the cap wins over the floor *)
  check cf "n = 1 cap beats floor" 0.999
    (H.effective_eps (Graph.make ~n:1 []) ~eps:0.3)

(* The documented invariant, fuzzed: eps' * n >= 1 and eps' <= 0.999 for
   every budget, and Minor_free_testers.effective_eps is exactly the
   Edge_budget clamp (the PR that introduced the harness re-routed it). *)
let prop_effective_eps_invariant =
  QCheck.Test.make ~name:"effective_eps: eps' * n >= 1, eps' <= 0.999"
    ~count:200
    QCheck.(
      triple (int_range 0 3) (int_range 1 80)
        (pair (int_range 0 10000) (int_range 0 40)))
    (fun (family, n, (seed, e)) ->
      let rng = Random.State.make [| seed; 977 |] in
      let g =
        match family mod 4 with
        | 0 -> Generators.apollonian rng (max 4 n)
        | 1 ->
            let side = max 2 (int_of_float (sqrt (float_of_int (max 4 n)))) in
            Generators.grid side side
        | 2 -> Generators.random_tree rng (max 2 n)
        | _ -> Graph.make ~n []
      in
      let eps = float_of_int e /. 20.0 in
      List.for_all
        (fun budget ->
          let eps' = H.effective_eps ~budget g ~eps in
          let n = Graph.n g in
          (* 1/n is not exactly representable, so the product can land an
             ulp below 1.0 — the documented invariant holds up to
             rounding.  At n = 1 the two clamps conflict (1/n = 1.0 is
             above the 0.999 cap) and the cap wins. *)
          (n = 0
          || (eps' *. float_of_int n >= 1.0 -. 1e-9 && eps' <= 0.999)
          || eps' = 0.999)
          || QCheck.Test.fail_reportf "clamp violated: n=%d eps=%.3f eps'=%f"
               n eps eps')
        [ H.Edge_budget; H.Vertex_budget ]
      && (let a = Tester.Minor_free_testers.effective_eps g ~eps in
          let b = H.effective_eps ~budget:H.Edge_budget g ~eps in
          a = b
          || QCheck.Test.fail_reportf
               "Minor_free_testers.effective_eps %f <> Edge_budget clamp %f" a
               b))

(* ------------------------------------------------------------------ *)
(* verdict plumbing with synthetic Stage II callbacks                   *)
(* ------------------------------------------------------------------ *)

let test_accept_surfaces_stage2_result () =
  let g = Generators.grid 5 5 in
  let r, t =
    H.run ~property:"unit" ~stage2:(fun _ ~eps:_ ~seed:_ -> 42) g ~eps:0.3
  in
  check (Alcotest.option Alcotest.int) "stage2 result surfaced" (Some 42) r;
  (match t.H.verdict with
  | H.Accept -> ()
  | _ -> Alcotest.fail "expected Accept on a quiet Stage II");
  check cb "Stage_one result present" true (t.H.stage1 <> None)

let test_reject_evidence_sorted_deduped () =
  let g = Generators.grid 5 5 in
  let stage2 st ~eps:_ ~seed:_ =
    st.S.rejections <- [ (7, "b"); (3, "a"); (7, "b") ]
  in
  let r, t = H.run ~property:"unit" ~stage2 g ~eps:0.3 in
  check cb "stage2 ran" true (r <> None);
  match t.H.verdict with
  | H.Reject l ->
      check
        (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
        "evidence sorted and deduplicated"
        [ (3, "a"); (7, "b") ]
        l
  | _ -> Alcotest.fail "expected Reject"

let test_degraded_exception_propagates () =
  (* Congest.Faults.Degraded escaping Stage II becomes the verdict even
     on a fault-free run (the escape hatch is unconditional). *)
  let g = Generators.grid 5 5 in
  let stage2 _ ~eps:_ ~seed:_ = raise (Congest.Faults.Degraded "gave up") in
  let r, t = H.run ~property:"unit" ~stage2 g ~eps:0.3 in
  check cb "no stage2 result" true (r = None);
  match t.H.verdict with
  | H.Degraded msg -> check Alcotest.string "message preserved" "gave up" msg
  | _ -> Alcotest.fail "expected Degraded"

let test_rejection_under_fired_faults_degrades () =
  (* Synthetic rejection evidence while a drop policy demonstrably fired
     must never surface as Reject — one-sided error by construction. *)
  let g = Generators.grid 8 8 in
  let faults =
    Congest.Faults.make ~seed:11 ~drop:0.4 ~duplicate:0.0 ~delay:0.0
      ~max_delay:1 ~truncate:0.0 ~crashes:[] ()
  in
  let stage2 st ~eps:_ ~seed:_ =
    st.S.rejections <- (0, "synthetic") :: st.S.rejections
  in
  let _, t = H.run ~faults ~property:"unit" ~stage2 g ~eps:0.3 in
  check cb "faults actually fired" true (t.H.dropped > 0);
  match t.H.verdict with
  | H.Degraded _ -> ()
  | H.Accept -> Alcotest.fail "synthetic evidence vanished"
  | H.Reject _ -> Alcotest.fail "rejection trusted while faults fired"

let test_plain_exception_without_faults_escapes () =
  (* Without a fault policy there is nothing to blame: an unexpected
     Stage II exception propagates to the caller instead of being
     laundered into Degraded. *)
  let g = Generators.grid 4 4 in
  let stage2 _ ~eps:_ ~seed:_ = failwith "stage2 bug" in
  Alcotest.check_raises "escapes" (Failure "stage2 bug") (fun () ->
      ignore (H.run ~property:"unit" ~stage2 g ~eps:0.3))

(* ------------------------------------------------------------------ *)
(* checkpoint parameter validation                                      *)
(* ------------------------------------------------------------------ *)

let dummy_checkpoint every =
  { H.every; save = (fun _ -> ()); load = (fun () -> None) }

let noop_stage2 _ ~eps:_ ~seed:_ = ()

let test_checkpoint_every_validated () =
  let g = Generators.grid 4 4 in
  Alcotest.check_raises "every = 0 rejected"
    (Invalid_argument
       "Tester.Harness.run (unit): checkpoint.every must be >= 1") (fun () ->
      ignore
        (H.run
           ~checkpoint:(dummy_checkpoint 0)
           ~property:"unit" ~stage2:noop_stage2 g ~eps:0.3))

let test_checkpoint_requires_stage_one () =
  let g = Generators.grid 4 4 in
  Alcotest.check_raises "Exponential_shifts rejected"
    (Invalid_argument
       "Tester.Harness.run (unit): checkpointing requires the Stage_one \
        partition (Exponential_shifts clusters centrally, with no phase \
        boundaries to checkpoint at)") (fun () ->
      ignore
        (H.run ~partition:H.Exponential_shifts
           ~checkpoint:(dummy_checkpoint 1)
           ~property:"unit" ~stage2:noop_stage2 g ~eps:0.3))

let test_exponential_shifts_has_no_stage1 () =
  let g = Generators.grid 5 5 in
  let r, t =
    H.run ~partition:H.Exponential_shifts ~property:"unit"
      ~stage2:(fun _ ~eps:_ ~seed:_ -> "ok")
      g ~eps:0.3
  in
  check (Alcotest.option Alcotest.string) "stage2 still runs" (Some "ok") r;
  check cb "no Stage I result" true (t.H.stage1 = None)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "tester_harness"
    [
      ( "effective_eps",
        [
          Alcotest.test_case "edge budget" `Quick
            test_effective_eps_edge_budget;
          Alcotest.test_case "vertex budget" `Quick
            test_effective_eps_vertex_budget;
          Alcotest.test_case "degenerate graphs" `Quick
            test_effective_eps_degenerate;
          q prop_effective_eps_invariant;
        ] );
      ( "verdict",
        [
          Alcotest.test_case "accept surfaces result" `Quick
            test_accept_surfaces_stage2_result;
          Alcotest.test_case "reject sorted+dedup" `Quick
            test_reject_evidence_sorted_deduped;
          Alcotest.test_case "Degraded exception" `Quick
            test_degraded_exception_propagates;
          Alcotest.test_case "faulty rejection degrades" `Quick
            test_rejection_under_fired_faults_degrades;
          Alcotest.test_case "plain exception escapes" `Quick
            test_plain_exception_without_faults_escapes;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "every >= 1" `Quick test_checkpoint_every_validated;
          Alcotest.test_case "Stage_one only" `Quick
            test_checkpoint_requires_stage_one;
          Alcotest.test_case "Exponential_shifts runs" `Quick
            test_exponential_shifts_has_no_stage1;
        ] );
    ]
