(* Property-based differential suite (qcheck, with shrinking).

   Three pillars, all driven by random graphs:

   - Stage I run on the simulator agrees with the centralized reference
     implementation (lib/partition/reference.ml) and leaves a partition
     state satisfying every structural invariant.

   - The tester's one-sided error survives the fault layer: on planar
     families the verdict is Accept or Degraded — never Reject — with
     faults off or on.

   - Stats accounting is a pure function of the input: identical across
     engine domain counts (1..PROP_DOMAINS, default 4), fast-forward
     on/off, and any fault seed — the PR 2 determinism contract extended
     to fault injection.

   - The compiled execution mode (Congest.Compiled) is observationally
     equal to the fiber engine: verdict, stats fingerprint and telemetry
     JSON agree for every mode x fast-forward combination.

   Plus a fuzz of the Bits framing path: fragment/reassemble round-trips,
   frames always fit the bandwidth, and any lossy or spliced frame set
   reassembles to None (detectable silence), never to a wrong payload.

   Reproducibility: the qcheck random state comes from QCHECK_SEED when
   set (CI pins it); failures print shrunk counterexamples. *)

open Graphlib
module PT = Tester.Planarity_tester
module S = Partition.State

let max_domains =
  match Sys.getenv_opt "PROP_DOMAINS" with
  | Some s -> ( match int_of_string_opt s with Some d when d >= 1 -> d | _ -> 4)
  | None -> 4

(* --- generators ----------------------------------------------------- *)

(* A graph family keyed by small ints so qcheck can shrink the choice. *)
let graph_of ~family ~n ~seed =
  let rng = Random.State.make [| seed; 977 |] in
  match family mod 4 with
  | 0 -> Generators.apollonian rng (max 4 n)
  | 1 ->
      let side = max 2 (int_of_float (sqrt (float_of_int (max 4 n)))) in
      Generators.grid side side
  | 2 -> Generators.random_planar rng ~n:(max 4 n) ~m:(2 * n)
  | _ -> Generators.gnp rng (max 4 n) (3.0 /. float_of_int (max 4 n))

let planar_graph_of ~family ~n ~seed =
  (* families 0..2 are planar by construction *)
  graph_of ~family:(family mod 3) ~n ~seed

let family_name f =
  match f mod 4 with
  | 0 -> "apollonian"
  | 1 -> "grid"
  | 2 -> "random_planar"
  | _ -> "gnp"

(* A fault policy from three small shrinkable ints: a seed, an intensity
   knob (0 = none) and a crash selector. *)
let policy_of ~fseed ~intensity ~crash ~n =
  if intensity = 0 then None
  else
    let p = float_of_int (intensity mod 8) /. 40.0 in
    let crashes =
      if crash mod 3 = 0 then []
      else
        [
          (let from_round = 2 + (crash mod 5) in
           {
             Congest.Faults.node = crash mod max 1 n;
             from_round;
             until_round =
               (if crash mod 2 = 0 then max_int
                else from_round + 1 + (crash mod 9));
           });
        ]
    in
    Some
      (Congest.Faults.make ~seed:fseed ~drop:p ~duplicate:(p /. 2.0)
         ~delay:(p /. 2.0) ~max_delay:3 ~truncate:(p /. 4.0) ~crashes ())

(* --- 1. Stage I differential vs the centralized reference ----------- *)

let prop_stage1_matches_reference =
  QCheck.Test.make
    ~name:"Stage I on the simulator == centralized reference (+ invariants)"
    ~count:25
    QCheck.(triple (int_range 0 3) (int_range 8 80) (int_range 0 10000))
    (fun (family, n, seed) ->
      let g = graph_of ~family ~n ~seed in
      let eps = 0.25 +. float_of_int (seed mod 4) /. 10.0 in
      let d = Partition.Stage1.run g ~eps in
      S.check_invariants d.Partition.Stage1.state;
      let r = Partition.Reference.run g ~eps in
      let dist_part =
        Array.map (fun nd -> nd.S.part_root) d.Partition.Stage1.state.S.nodes
      in
      let dist_cuts =
        List.map
          (fun p -> p.Partition.Stage1.cut_after)
          d.Partition.Stage1.phases
      in
      if
        dist_part = r.Partition.Reference.part
        && dist_cuts = r.Partition.Reference.cuts
        && (d.Partition.Stage1.rejected <> []) = r.Partition.Reference.rejected
      then true
      else
        QCheck.Test.fail_reportf
          "divergence on %s n=%d seed=%d eps=%.2f" (family_name family) n seed
          eps)

(* --- 2. one-sided error, faults off and on --------------------------- *)

let prop_planar_never_rejects =
  QCheck.Test.make
    ~name:"planar input never rejects (faults off or on)" ~count:25
    QCheck.(
      pair
        (triple (int_range 0 2) (int_range 8 80) (int_range 0 10000))
        (triple (int_range 0 1000) (int_range 0 7) (int_range 0 20)))
    (fun ((family, n, seed), (fseed, intensity, crash)) ->
      let g = planar_graph_of ~family ~n ~seed in
      let faults = policy_of ~fseed ~intensity ~crash ~n:(Graph.n g) in
      let r = PT.run ?faults g ~eps:0.3 ~seed in
      match r.PT.verdict with
      | PT.Accept | PT.Degraded _ -> true
      | PT.Reject l ->
          QCheck.Test.fail_reportf
            "planar %s n=%d seed=%d faults=%s rejected at %d node(s)"
            (family_name family) n seed
            (match faults with
            | Some p -> Congest.Faults.to_spec p
            | None -> "off")
            (List.length l))

(* --- 3. stats accounting is domain/ff/fault-seed invariant ----------- *)

(* Everything except [fast_forwarded_rounds] (0 by construction with the
   optimisation off) must be identical. *)
let fingerprint (r : PT.report) =
  ( (match r.PT.verdict with
    | PT.Accept -> "accept"
    | PT.Reject l -> Printf.sprintf "reject:%d" (List.length l)
    | PT.Degraded m -> "degraded:" ^ m),
    (r.PT.rounds, r.PT.nominal_rounds, r.PT.messages, r.PT.total_bits),
    (r.PT.dropped, r.PT.duplicated, r.PT.delayed, r.PT.crashed_nodes) )

let prop_stats_invariance =
  QCheck.Test.make
    ~name:
      (Printf.sprintf
         "report invariant across domains 1..%d x ff on/off x fault seeds"
         max_domains)
    ~count:8
    QCheck.(
      pair
        (triple (int_range 0 3) (int_range 8 48) (int_range 0 10000))
        (triple (int_range 0 1000) (int_range 0 7) (int_range 0 20)))
    (fun ((family, n, seed), (fseed, intensity, crash)) ->
      let g = graph_of ~family ~n ~seed in
      let faults = policy_of ~fseed ~intensity ~crash ~n:(Graph.n g) in
      let base =
        fingerprint (PT.run ?faults ~domains:1 ~fast_forward:true g ~eps:0.3 ~seed)
      in
      let rec domains_list d = if d > max_domains then [] else d :: domains_list (d + 1) in
      List.for_all
        (fun domains ->
          List.for_all
            (fun fast_forward ->
              let fp =
                fingerprint
                  (PT.run ?faults ~domains ~fast_forward g ~eps:0.3 ~seed)
              in
              if fp = base then true
              else
                QCheck.Test.fail_reportf
                  "report differs: %s n=%d seed=%d faults=%s domains=%d \
                   ff=%b"
                  (family_name family) n seed
                  (match faults with
                  | Some p -> Congest.Faults.to_spec p
                  | None -> "off")
                  domains fast_forward)
            [ true; false ])
        (domains_list 1))

(* --- 3b. compiled hot path == fiber engine --------------------------- *)

(* The execution mode must be invisible in every observable: verdict,
   full stats fingerprint INCLUDING fast_forwarded_rounds (both engines
   make the same fast-forward decisions), and the per-round telemetry
   JSON.  Run on planar and far inputs so both accepting and rejecting
   Stage I paths cross the compiled primitives. *)
let prop_compiled_matches_fiber =
  QCheck.Test.make
    ~name:"compiled mode == fiber mode (verdict + stats + telemetry JSON)"
    ~count:12
    QCheck.(
      triple (int_range 0 3) (int_range 8 60) (int_range 0 10000))
    (fun (family, n, seed) ->
      let g = graph_of ~family ~n ~seed in
      let eps = 0.25 +. float_of_int (seed mod 4) /. 10.0 in
      let observe mode fast_forward =
        let telemetry = Congest.Telemetry.create () in
        let r =
          PT.run ~telemetry ~domains:1 ~fast_forward ~mode g ~eps ~seed
        in
        ( fingerprint r,
          r.PT.fast_forwarded_rounds,
          Congest.Telemetry.Json.to_string (Congest.Telemetry.to_json telemetry)
        )
      in
      List.for_all
        (fun fast_forward ->
          let base = observe Congest.Compiled.Fiber fast_forward in
          List.for_all
            (fun mode ->
              if observe mode fast_forward = base then true
              else
                QCheck.Test.fail_reportf
                  "mode %s diverges from fiber: %s n=%d seed=%d eps=%.2f ff=%b"
                  (Congest.Compiled.mode_to_string mode)
                  (family_name family) n seed eps fast_forward)
            [ Congest.Compiled.Compiled; Congest.Compiled.Auto ])
        [ true; false ])

(* --- 4. fuzz the framing / fragmentation path ------------------------ *)

let payload_gen =
  (* sizes from empty up to several thousand bytes, pseudo-random content
     derived from a shrinkable (len, seed) pair *)
  QCheck.map
    (fun (len, seed) ->
      String.init len (fun i -> Char.chr ((seed + (i * 131)) land 0xff)))
    QCheck.(pair (int_range 0 4096) (int_range 0 1000))

let bandwidth_gen = QCheck.int_range (Congest.Bits.header_bits + 8) 512

let prop_fragment_roundtrip =
  QCheck.Test.make ~name:"fragment/reassemble round-trips; frames fit B"
    ~count:200
    QCheck.(pair payload_gen bandwidth_gen)
    (fun (s, bandwidth) ->
      let frames = Congest.Bits.fragment ~bandwidth s in
      List.iter
        (fun f ->
          if Congest.Bits.frame_bits f > bandwidth then
            QCheck.Test.fail_reportf "frame_bits %d > bandwidth %d (len %d)"
              (Congest.Bits.frame_bits f) bandwidth (String.length s))
        frames;
      (* order independence: reassembly accepts any permutation *)
      let shuffled =
        List.sort
          (fun a b ->
            compare
              (a.Congest.Bits.seq * 7919 mod 131)
              (b.Congest.Bits.seq * 7919 mod 131))
          frames
      in
      match Congest.Bits.reassemble shuffled with
      | Some s' when s' = s -> true
      | Some _ -> QCheck.Test.fail_report "reassembled to a different payload"
      | None -> QCheck.Test.fail_report "reassemble refused its own frames")

let prop_fragment_loss_detected =
  QCheck.Test.make
    ~name:"missing or duplicated frame => None, never silent corruption"
    ~count:200
    QCheck.(triple payload_gen bandwidth_gen (int_range 0 100000))
    (fun (s, bandwidth, pick) ->
      let frames = Congest.Bits.fragment ~bandwidth s in
      let k = List.length frames in
      let drop_i = pick mod k in
      let lossy = List.filteri (fun i _ -> i <> drop_i) frames in
      (match Congest.Bits.reassemble lossy with
      | Some s' when k = 1 && s' = "" && s = "" ->
          (* dropping the only frame of "" leaves [] -> None anyway *)
          QCheck.Test.fail_report "empty frame set reassembled"
      | Some _ -> QCheck.Test.fail_report "lossy frame set reassembled"
      | None -> ());
      let dup =
        match frames with f :: _ -> f :: frames | [] -> assert false
      in
      match Congest.Bits.reassemble dup with
      | Some _ -> QCheck.Test.fail_report "duplicated frame set reassembled"
      | None -> true)

let prop_fragment_splice_detected =
  QCheck.Test.make
    ~name:"frames spliced from two payloads never reassemble silently"
    ~count:100
    QCheck.(triple payload_gen payload_gen bandwidth_gen)
    (fun (a, b, bandwidth) ->
      let fa = Congest.Bits.fragment ~bandwidth a in
      let fb = Congest.Bits.fragment ~bandwidth b in
      (* steal frame 0 of [b] into [a]'s set (replacing a's frame 0): the
         result must either be rejected or decode to a's bytes with b's
         first chunk — which equals neither original unless the chunks
         coincide, in which case it IS a valid fragmentation. *)
      match (fa, fb) with
      | f0a :: rest, f0b :: _ when f0a.Congest.Bits.total = f0b.Congest.Bits.total
        -> (
          let spliced = f0b :: rest in
          match Congest.Bits.reassemble spliced with
          | None -> true
          | Some s ->
              (* only legitimate if the splice reconstructs a byte string
                 consistent with the frame set it was handed *)
              let expected =
                String.concat ""
                  (List.map
                     (fun f -> f.Congest.Bits.payload)
                     (List.sort
                        (fun x y ->
                          compare x.Congest.Bits.seq y.Congest.Bits.seq)
                        spliced))
              in
              s = expected
              || QCheck.Test.fail_report "splice decoded to unrelated bytes")
      | _ -> true)

(* --- 5. Faults.draw purity / spec round-trip -------------------------- *)

let prop_spec_roundtrip =
  QCheck.Test.make ~name:"Faults spec parse/render round-trips" ~count:100
    QCheck.(triple (int_range 0 1000) (int_range 0 7) (int_range 0 20))
    (fun (fseed, intensity, crash) ->
      match policy_of ~fseed ~intensity ~crash ~n:50 with
      | None -> true
      | Some p -> (
          let spec = Congest.Faults.to_spec p in
          match Congest.Faults.of_spec spec with
          | Ok p' ->
              Congest.Faults.to_spec p' = spec
              || QCheck.Test.fail_reportf "unstable spec %s" spec
          | Error e ->
              QCheck.Test.fail_reportf "own spec %s rejected: %s" spec e))

(* --- graph construction: dedup semantics and streaming equality ------ *)

(* [of_edges_dedup], [Builder.finish_dedup] and a list-level reference
   filter must agree exactly — same edges, same edge-id order — which
   [fingerprint] checks in one comparison. *)
let prop_of_edges_dedup =
  QCheck.Test.make
    ~name:"of_edges_dedup == filtered make == Builder.finish_dedup"
    ~count:300
    QCheck.(
      pair (int_range 1 24)
        (small_list (pair (int_range 0 23) (int_range 0 23))))
    (fun (n, edges) ->
      let edges = List.filter (fun (u, v) -> u < n && v < n) edges in
      let reference =
        let seen = Hashtbl.create 16 in
        List.filter
          (fun (u, v) ->
            u <> v
            &&
            let k = (min u v, max u v) in
            if Hashtbl.mem seen k then false
            else begin
              Hashtbl.add seen k ();
              true
            end)
          edges
      in
      let a = Graph.of_edges_dedup ~n edges in
      let b = Graph.make ~n reference in
      let c =
        let bld = Graph.Builder.create ~n () in
        List.iter (fun (u, v) -> Graph.Builder.add bld u v) edges;
        Graph.Builder.finish_dedup bld
      in
      (Graph.fingerprint a = Graph.fingerprint b
      && Graph.fingerprint a = Graph.fingerprint c
      && Graph.m a = List.length reference)
      || QCheck.Test.fail_reportf "dedup mismatch: n=%d, %d raw edges" n
           (List.length edges))

(* The streaming paths (generators building through [Graph.Builder], and
   the line-by-line Gio reader) must produce bit-for-bit the same
   structure as materializing the edge list and calling [make]. *)
let prop_streaming_vs_materialized =
  QCheck.Test.make
    ~name:"streamed construction fingerprints == materialized make"
    ~count:60
    QCheck.(triple (int_range 0 3) (int_range 8 120) (int_range 0 10000))
    (fun (family, n, seed) ->
      let g = graph_of ~family ~n ~seed in
      let edges =
        List.rev (Graph.fold_edges (fun acc _ u v -> (u, v) :: acc) [] g)
      in
      let materialized = Graph.make ~n:(Graph.n g) edges in
      let round_tripped = Gio.of_string (Gio.to_string g) in
      (Graph.fingerprint g = Graph.fingerprint materialized
      && Graph.fingerprint g = Graph.fingerprint round_tripped)
      || QCheck.Test.fail_reportf "fingerprint divergence on %s n=%d seed=%d"
           (family_name family) n seed)

(* --- 6. the property portfolio on the shared harness ----------------- *)

module H = Tester.Harness

let verdict_tag = function
  | H.Accept -> "accept"
  | H.Reject l -> Printf.sprintf "reject:%d" (List.length l)
  | H.Degraded m -> "degraded:" ^ m

(* Same contract as [fingerprint] above, on Harness totals: everything
   except [fast_forwarded_rounds] must be a pure function of the input. *)
let totals_fingerprint (t : H.totals) =
  ( verdict_tag t.H.verdict,
    (t.H.rounds, t.H.nominal_rounds, t.H.messages, t.H.total_bits),
    (t.H.dropped, t.H.duplicated, t.H.delayed, t.H.crashed_nodes) )

(* Differential one-sided contract vs lib/partition/reference.ml: a
   holding input is never rejected, and any rejection is backed by the
   centralized reference agreeing the property fails.  (Accepting a
   violating-but-close input is allowed — that is what eps-far means.) *)
let prop_bipartite_matches_reference =
  QCheck.Test.make
    ~name:"bipartiteness tester vs centralized reference (one-sided)"
    ~count:30
    QCheck.(triple (int_range 0 3) (int_range 8 64) (int_range 0 10000))
    (fun (family, n, seed) ->
      let g = graph_of ~family ~n ~seed in
      let _, t = Tester.Bipartite_tester.run ~seed g ~eps:0.3 in
      match t.H.verdict with
      | H.Accept -> true
      | H.Degraded m ->
          QCheck.Test.fail_reportf "degraded without faults: %s" m
      | H.Reject _ when not (Partition.Reference.is_bipartite g) -> true
      | H.Reject l ->
          QCheck.Test.fail_reportf
            "rejected a bipartite %s n=%d seed=%d at %d node(s)"
            (family_name family) n seed (List.length l))

let prop_cycle_free_matches_reference =
  QCheck.Test.make
    ~name:"cycle-freeness tester vs centralized reference (one-sided)"
    ~count:30
    QCheck.(triple (int_range 0 3) (int_range 8 64) (int_range 0 10000))
    (fun (family, n, seed) ->
      let g = graph_of ~family ~n ~seed in
      let _, t = Tester.Cycle_free_tester.run ~seed g ~eps:0.3 in
      match t.H.verdict with
      | H.Accept -> true
      | H.Degraded m ->
          QCheck.Test.fail_reportf "degraded without faults: %s" m
      | H.Reject _ when not (Partition.Reference.is_cycle_free g) -> true
      | H.Reject l ->
          QCheck.Test.fail_reportf
            "rejected a forest %s n=%d seed=%d at %d node(s)"
            (family_name family) n seed (List.length l))

let prop_bipartite_holding_never_rejects =
  QCheck.Test.make
    ~name:"bipartite input never rejects (faults off or on)" ~count:25
    QCheck.(
      pair
        (pair (int_range 8 80) (int_range 0 10000))
        (triple (int_range 0 1000) (int_range 0 7) (int_range 0 20)))
    (fun ((n, seed), (fseed, intensity, crash)) ->
      let rng = Random.State.make [| seed; 1289 |] in
      let g = Generators.bipartite_perturbed rng (max 4 n) in
      let faults = policy_of ~fseed ~intensity ~crash ~n:(Graph.n g) in
      let _, t = Tester.Bipartite_tester.run ?faults ~seed g ~eps:0.3 in
      match t.H.verdict with
      | H.Accept | H.Degraded _ -> true
      | H.Reject l ->
          QCheck.Test.fail_reportf
            "bipartite n=%d seed=%d faults=%s rejected at %d node(s)" n seed
            (match faults with
            | Some p -> Congest.Faults.to_spec p
            | None -> "off")
            (List.length l))

let prop_cycle_free_holding_never_rejects =
  QCheck.Test.make
    ~name:"forest input never rejects (faults off or on)" ~count:25
    QCheck.(
      pair
        (pair (int_range 8 80) (int_range 0 10000))
        (triple (int_range 0 1000) (int_range 0 7) (int_range 0 20)))
    (fun ((n, seed), (fseed, intensity, crash)) ->
      let rng = Random.State.make [| seed; 2477 |] in
      let g = Generators.forest_close rng (max 2 n) in
      let faults = policy_of ~fseed ~intensity ~crash ~n:(Graph.n g) in
      let _, t = Tester.Cycle_free_tester.run ?faults ~seed g ~eps:0.3 in
      match t.H.verdict with
      | H.Accept | H.Degraded _ -> true
      | H.Reject l ->
          QCheck.Test.fail_reportf
            "forest n=%d seed=%d faults=%s rejected at %d node(s)" n seed
            (match faults with
            | Some p -> Congest.Faults.to_spec p
            | None -> "off")
            (List.length l))

(* Certified-far soundness, faults off.  Both instances plant more
   violations than eps*m/2 — the most edges Stage I's cut can remove —
   so an intact odd cycle / cyclic part survives in some part and the
   rejection is deterministic, not statistical.  The generators' own
   soundness is checked against the references on the way. *)
let prop_far_instances_reject =
  QCheck.Test.make
    ~name:"certified-far instances reject deterministically (faults off)"
    ~count:20
    QCheck.(pair (int_range 9 120) (int_range 0 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 3671 |] in
      let side = max 3 (int_of_float (sqrt (float_of_int n))) in
      let per_axis = ((side - 2) / 2) + 1 in
      let odd = Generators.odd_cycle_planted rng ~n ~k:(per_axis * per_axis) in
      let k = max 1 (n / 2) in
      let chorded = Generators.forest_plus_edges rng ~n ~k in
      if Partition.Reference.is_bipartite odd then
        QCheck.Test.fail_reportf "odd_cycle_planted n=%d is bipartite" n
      else if Partition.Reference.excess_edges chorded <> k then
        QCheck.Test.fail_reportf "forest_plus_edges n=%d k=%d: excess %d" n k
          (Partition.Reference.excess_edges chorded)
      else
        let _, tb = Tester.Bipartite_tester.run ~seed odd ~eps:0.1 in
        let _, tc = Tester.Cycle_free_tester.run ~seed chorded ~eps:0.1 in
        match (tb.H.verdict, tc.H.verdict) with
        | H.Reject _, H.Reject _ -> true
        | vb, vc ->
            QCheck.Test.fail_reportf
              "far instance accepted: n=%d seed=%d bipartite=%s cycle-free=%s"
              n seed (verdict_tag vb) (verdict_tag vc))

let prop_portfolio_invariance =
  QCheck.Test.make
    ~name:
      (Printf.sprintf
         "bipartite/cycle-free totals invariant across domains 1..%d x ff \
          x mode"
         max_domains)
    ~count:6
    QCheck.(triple (int_range 0 3) (int_range 8 40) (int_range 0 10000))
    (fun (family, n, seed) ->
      let g = graph_of ~family ~n ~seed in
      let runs =
        [
          ( "bipartite",
            fun ~domains ~fast_forward ~mode ->
              snd
                (Tester.Bipartite_tester.run ~seed ~domains ~fast_forward
                   ~mode g ~eps:0.3) );
          ( "cycle-free",
            fun ~domains ~fast_forward ~mode ->
              snd
                (Tester.Cycle_free_tester.run ~seed ~domains ~fast_forward
                   ~mode g ~eps:0.3) );
        ]
      in
      let rec doms d = if d > max_domains then [] else d :: doms (d + 1) in
      List.for_all
        (fun (prop, run) ->
          let base =
            totals_fingerprint
              (run ~domains:1 ~fast_forward:true ~mode:Congest.Compiled.Fiber)
          in
          List.for_all
            (fun domains ->
              List.for_all
                (fun fast_forward ->
                  List.for_all
                    (fun mode ->
                      let fp =
                        totals_fingerprint (run ~domains ~fast_forward ~mode)
                      in
                      if fp = base then true
                      else
                        QCheck.Test.fail_reportf
                          "%s totals differ: %s n=%d seed=%d domains=%d \
                           ff=%b mode=%s"
                          prop (family_name family) n seed domains
                          fast_forward
                          (Congest.Compiled.mode_to_string mode))
                    [ Congest.Compiled.Fiber; Congest.Compiled.Compiled ])
                [ true; false ])
            (doms 1))
        runs)

let () =
  let to_alcotest = QCheck_alcotest.to_alcotest in
  Alcotest.run "prop"
    [
      ( "graphlib",
        [
          to_alcotest prop_of_edges_dedup;
          to_alcotest prop_streaming_vs_materialized;
        ] );
      ( "partition",
        [ to_alcotest prop_stage1_matches_reference ] );
      ( "tester",
        [
          to_alcotest prop_planar_never_rejects;
          to_alcotest prop_stats_invariance;
          to_alcotest prop_compiled_matches_fiber;
        ] );
      ( "portfolio",
        [
          to_alcotest prop_bipartite_matches_reference;
          to_alcotest prop_cycle_free_matches_reference;
          to_alcotest prop_bipartite_holding_never_rejects;
          to_alcotest prop_cycle_free_holding_never_rejects;
          to_alcotest prop_far_instances_reject;
          to_alcotest prop_portfolio_invariance;
        ] );
      ( "bits-fuzz",
        [
          to_alcotest prop_fragment_roundtrip;
          to_alcotest prop_fragment_loss_detected;
          to_alcotest prop_fragment_splice_detected;
        ] );
      ("faults", [ to_alcotest prop_spec_roundtrip ]);
    ]
